//! Deterministic observability for the workspace: metrics, latency
//! histograms, span tracing, and exporters.
//!
//! Every substrate in this repository carries a bit-determinism contract
//! (parallel ≡ serial, warm ≡ cold, restored ≡ original). Telemetry must
//! not bend that contract, so this crate is built around one hard rule:
//!
//! > **Instrumentation never feeds back into computation.** Counters,
//! > spans, and histograms are write-only from the instrumented code's
//! > point of view; whether the layer is enabled or disabled, every
//! > digested result (decision digests, sweep JSON, fuzz verdicts) stays
//! > bit-identical. The `obs_overhead` bench and the CI invariance gate
//! > hold the workspace to it.
//!
//! The surface has three parts:
//!
//! * [`registry`] — process-wide named [`Counter`]s and [`Gauge`]s plus
//!   published [`LatencyHistogram`]s. Recording is a relaxed atomic add
//!   behind a relaxed-load enabled check — no lock is ever taken on a hot
//!   path. Counter totals are deterministic under parallelism because
//!   addition commutes.
//! * [`hist`] — [`LatencyHistogram`], a log-linear (HDR-style) histogram
//!   with bounded relative error and an **exact associative merge**
//!   (element-wise bucket addition), so per-shard/per-worker histograms
//!   fold into one whole with no sketch error from the merge itself.
//! * [`span`](mod@span) — wall-clock span timing into thread-local buffers (flushed
//!   on thread exit), plus point events. When the layer is disabled a
//!   span is a single relaxed atomic load and branch.
//!
//! [`export`] renders the collected state as a Chrome trace-event JSON
//! file (loadable in Perfetto / `chrome://tracing`), a JSONL event
//! stream, or a Prometheus text-format snapshot. See
//! `docs/OBSERVABILITY.md` for the metric catalog and a Perfetto
//! walkthrough.
//!
//! # Example
//!
//! ```
//! use eirs_obs::{self as obs, LazyCounter};
//!
//! static SOLVES: LazyCounter = LazyCounter::new("example.solves");
//!
//! obs::set_enabled(true);
//! {
//!     let _span = obs::span("solve", "example");
//!     SOLVES.inc();
//! }
//! let snap = obs::snapshot();
//! assert!(snap.counter("example.solves") >= 1);
//! assert!(obs::export::prometheus_text(&snap).contains("example_solves"));
//! obs::set_enabled(false);
//! ```

use std::sync::atomic::{AtomicBool, Ordering};

pub mod export;
pub mod hist;
pub mod registry;
pub mod span;

pub use hist::LatencyHistogram;
pub use registry::{publish_histogram, snapshot, Counter, Gauge, LazyCounter, LazyGauge, Snapshot};
pub use span::{event, span, take_events, SpanGuard, TraceEvent};

/// Global enable flag. Relaxed ordering is sufficient: the flag only
/// gates telemetry, never computation, so there is nothing to synchronize
/// with.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Whether the observability layer is recording. This is the disabled-path
/// cost of every instrumentation site: one relaxed atomic load and a
/// branch.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns recording on or off process-wide. The CLI sets this when
/// `--metrics-out` or `--trace-out` is given; benches toggle it to
/// measure both paths. Enabling or disabling never changes any computed
/// result — only whether telemetry accumulates.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Resets all recorded state (counter values, gauges, published
/// histograms, buffered trace events) without unregistering metric names.
/// Intended for benches and tests that need a clean slate between runs.
pub fn reset() {
    registry::reset_values();
    span::clear();
}

/// Serializes tests that toggle the global enable flag (the flag is
/// process-wide; concurrent toggling tests would race each other).
#[cfg(test)]
pub(crate) fn test_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[cfg(test)]
use std::sync::Mutex;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enabled_flag_round_trips() {
        let _guard = test_lock();
        let before = enabled();
        set_enabled(true);
        assert!(enabled());
        set_enabled(false);
        assert!(!enabled());
        set_enabled(before);
    }
}
