//! Wall-clock span and event tracing into thread-local buffers.
//!
//! A [`span`] measures a region of code: the guard stamps the start on
//! construction and pushes a complete event (Chrome phase `X`) with its
//! duration on drop. An [`event`] is a zero-duration point marker
//! (phase `i`). Both are no-ops — one relaxed load and a branch — when
//! the layer is disabled.
//!
//! Events accumulate in a per-thread buffer (no lock on the hot path)
//! and migrate to a global list when the buffer fills or the thread
//! exits; the workspace's worker threads are scoped, so they are gone —
//! and flushed — before any exporter runs. [`take_events`] drains the
//! global list plus the calling thread's buffer, sorted by timestamp so
//! export order is stable.
//!
//! Timestamps are wall-clock nanoseconds from a process-wide anchor.
//! They are telemetry only: nothing computed from them flows back into
//! any digested result.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// A typed argument value attached to a span or event.
#[derive(Debug, Clone, PartialEq)]
pub enum ArgValue {
    /// A floating-point argument.
    Num(f64),
    /// An unsigned integer argument.
    Int(u64),
    /// A string argument.
    Str(String),
    /// A boolean argument.
    Bool(bool),
}

impl From<f64> for ArgValue {
    fn from(v: f64) -> Self {
        ArgValue::Num(v)
    }
}
impl From<u64> for ArgValue {
    fn from(v: u64) -> Self {
        ArgValue::Int(v)
    }
}
impl From<usize> for ArgValue {
    fn from(v: usize) -> Self {
        ArgValue::Int(v as u64)
    }
}
impl From<u32> for ArgValue {
    fn from(v: u32) -> Self {
        ArgValue::Int(v as u64)
    }
}
impl From<bool> for ArgValue {
    fn from(v: bool) -> Self {
        ArgValue::Bool(v)
    }
}
impl From<&str> for ArgValue {
    fn from(v: &str) -> Self {
        ArgValue::Str(v.to_string())
    }
}
impl From<String> for ArgValue {
    fn from(v: String) -> Self {
        ArgValue::Str(v)
    }
}

/// One recorded span or point event.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Event name (the timeline label).
    pub name: String,
    /// Category tag (Chrome trace `cat`; one per subsystem).
    pub cat: &'static str,
    /// Start timestamp, nanoseconds since the process trace anchor.
    pub ts_ns: u64,
    /// Duration in nanoseconds; `None` for point events.
    pub dur_ns: Option<u64>,
    /// Logical thread id (stable small integers, assigned per thread).
    pub tid: u64,
    /// Attached `key: value` arguments.
    pub args: Vec<(&'static str, ArgValue)>,
}

/// Nanoseconds since the process-wide trace anchor (first use).
fn now_ns() -> u64 {
    static ANCHOR: OnceLock<Instant> = OnceLock::new();
    ANCHOR.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

fn global_events() -> &'static Mutex<Vec<TraceEvent>> {
    static GLOBAL: OnceLock<Mutex<Vec<TraceEvent>>> = OnceLock::new();
    GLOBAL.get_or_init(|| Mutex::new(Vec::new()))
}

/// Per-thread buffer capacity before spilling to the global list.
const SPILL_AT: usize = 1024;

struct ThreadBuf {
    tid: u64,
    events: Vec<TraceEvent>,
}

impl ThreadBuf {
    fn flush(&mut self) {
        if !self.events.is_empty() {
            global_events()
                .lock()
                .expect("obs trace buffer poisoned")
                .append(&mut self.events);
        }
    }
}

impl Drop for ThreadBuf {
    fn drop(&mut self) {
        self.flush();
    }
}

thread_local! {
    static BUF: RefCell<ThreadBuf> = {
        static NEXT_TID: AtomicU64 = AtomicU64::new(0);
        RefCell::new(ThreadBuf {
            tid: NEXT_TID.fetch_add(1, Ordering::Relaxed),
            events: Vec::new(),
        })
    };
}

fn push(mut ev: TraceEvent) {
    BUF.with(|b| {
        let mut b = b.borrow_mut();
        ev.tid = b.tid;
        b.events.push(ev);
        if b.events.len() >= SPILL_AT {
            b.flush();
        }
    });
}

/// An in-flight span (or pending point event). Records on drop; inert
/// when the layer was disabled at construction.
pub struct SpanGuard {
    inner: Option<TraceEvent>,
}

impl SpanGuard {
    /// Attaches an argument (no-op on an inert guard).
    pub fn arg(&mut self, key: &'static str, value: impl Into<ArgValue>) {
        if let Some(ev) = &mut self.inner {
            ev.args.push((key, value.into()));
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(mut ev) = self.inner.take() {
            if ev.dur_ns.is_some() {
                ev.dur_ns = Some(now_ns().saturating_sub(ev.ts_ns));
            }
            push(ev);
        }
    }
}

/// Opens a timed span; the returned guard records a complete event with
/// the region's duration when dropped.
#[inline]
pub fn span(name: impl Into<String>, cat: &'static str) -> SpanGuard {
    if !crate::enabled() {
        return SpanGuard { inner: None };
    }
    SpanGuard {
        inner: Some(TraceEvent {
            name: name.into(),
            cat,
            ts_ns: now_ns(),
            dur_ns: Some(0),
            tid: 0,
            args: Vec::new(),
        }),
    }
}

/// Records a point event at the current timestamp. Attach arguments via
/// the returned guard; the event lands when the guard drops.
#[inline]
pub fn event(name: impl Into<String>, cat: &'static str) -> SpanGuard {
    if !crate::enabled() {
        return SpanGuard { inner: None };
    }
    SpanGuard {
        inner: Some(TraceEvent {
            name: name.into(),
            cat,
            ts_ns: now_ns(),
            dur_ns: None,
            tid: 0,
            args: Vec::new(),
        }),
    }
}

/// Drains every buffered event (the global list plus the calling
/// thread's buffer), sorted by timestamp then thread id. Worker threads
/// flush automatically when they exit, so calling this after joining
/// them observes everything.
pub fn take_events() -> Vec<TraceEvent> {
    BUF.with(|b| b.borrow_mut().flush());
    let mut events =
        std::mem::take(&mut *global_events().lock().expect("obs trace buffer poisoned"));
    events.sort_by_key(|a| (a.ts_ns, a.tid));
    events
}

/// Discards every buffered event.
pub fn clear() {
    drop(take_events());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_record_duration_and_args_when_enabled() {
        let _guard = crate::test_lock();
        crate::set_enabled(true);
        {
            let mut s = span("test.span.work", "test");
            s.arg("cells", 7u64);
            s.arg("warm", true);
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        event("test.span.point", "test").arg("score", 1.25);
        crate::set_enabled(false);
        let events = take_events();
        let work = events
            .iter()
            .find(|e| e.name == "test.span.work")
            .expect("span recorded");
        assert!(work.dur_ns.unwrap() >= 500_000, "{:?}", work.dur_ns);
        assert_eq!(work.args[0], ("cells", ArgValue::Int(7)));
        assert_eq!(work.args[1], ("warm", ArgValue::Bool(true)));
        let point = events
            .iter()
            .find(|e| e.name == "test.span.point")
            .expect("event recorded");
        assert_eq!(point.dur_ns, None);
        assert_eq!(point.args[0], ("score", ArgValue::Num(1.25)));
    }

    #[test]
    fn disabled_spans_record_nothing() {
        let _guard = crate::test_lock();
        crate::set_enabled(false);
        clear();
        {
            let mut s = span("test.span.silent", "test");
            s.arg("ignored", 1u64);
        }
        assert!(take_events().iter().all(|e| e.name != "test.span.silent"));
    }

    #[test]
    fn worker_thread_events_survive_thread_exit() {
        let _guard = crate::test_lock();
        crate::set_enabled(true);
        std::thread::scope(|scope| {
            scope.spawn(|| {
                let _s = span("test.span.worker", "test");
            });
        });
        crate::set_enabled(false);
        assert!(take_events().iter().any(|e| e.name == "test.span.worker"));
    }
}
