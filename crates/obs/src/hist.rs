//! Log-linear (HDR-style) latency histograms with exact associative merge.
//!
//! A [`LatencyHistogram`] buckets non-negative integer values (typically
//! nanoseconds) into log-linear bins: values below 2·2^P are recorded
//! exactly, and each higher octave is split into 2^P linear sub-buckets,
//! bounding the relative quantization error at 2^-P regardless of
//! magnitude. With `P = 5` that is ≈ 3% worst-case error over the full
//! `u64` range, in at most ~1.9k buckets.
//!
//! The crucial property for this workspace is that **merge is exact**:
//! two histograms merge by element-wise bucket addition, which is
//! associative and commutative, so per-shard histograms folded in any
//! order — or a histogram of the concatenated stream recorded whole —
//! produce bit-identical bucket vectors and therefore identical
//! quantiles. (Contrast the P² sketches in `eirs_sim::quantile`, which
//! are order-dependent and cannot be merged.) The `obs_layer` tests
//! property-check associativity, shard-order invariance, and
//! merged-equals-whole against a sorted reference.

/// Sub-bucket precision: each octave splits into `2^PRECISION_BITS`
/// linear bins, giving relative error ≤ `2^-PRECISION_BITS` ≈ 3.1%.
const PRECISION_BITS: u32 = 5;
const SUB_BUCKETS: u64 = 1 << PRECISION_BITS;

/// A mergeable log-linear histogram over `u64` values.
///
/// Buckets grow on demand, so an empty histogram is a few machine words.
/// Equality compares full recorded state (bucket vector, count, sum,
/// min/max); because buckets only grow when a value lands in them, equal
/// contents imply equal vectors.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct LatencyHistogram {
    /// Bucket counts, indexed by [`bucket_index`]. The vector always ends
    /// at the highest non-empty bucket.
    buckets: Vec<u64>,
    /// Total recorded observations.
    count: u64,
    /// Exact sum of recorded values (u128: 10^7 observations of 10^11 ns
    /// would overflow u64).
    sum: u128,
    /// Exact minimum recorded value (`u64::MAX` when empty).
    min: u64,
    /// Exact maximum recorded value (0 when empty).
    max: u64,
}

/// The bucket index for value `v`: identity below `2·2^P`, log-linear
/// above.
#[inline]
fn bucket_index(v: u64) -> usize {
    if v < 2 * SUB_BUCKETS {
        v as usize
    } else {
        let msb = 63 - v.leading_zeros();
        let shift = msb - PRECISION_BITS;
        ((shift as u64 * SUB_BUCKETS) + (v >> shift)) as usize
    }
}

/// Inclusive lower bound of bucket `index` (inverse of [`bucket_index`]).
#[inline]
fn bucket_lower(index: usize) -> u64 {
    let index = index as u64;
    if index < 2 * SUB_BUCKETS {
        index
    } else {
        let group = index >> PRECISION_BITS;
        let sub = index & (SUB_BUCKETS - 1);
        (SUB_BUCKETS + sub) << (group - 1)
    }
}

/// Scale for recording seconds as integer ticks (nanosecond resolution).
const SECONDS_SCALE: f64 = 1e9;

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: Vec::new(),
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one observation of `v`.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.record_n(v, 1);
    }

    /// Records `n` observations of `v`.
    pub fn record_n(&mut self, v: u64, n: u64) {
        if n == 0 {
            return;
        }
        let idx = bucket_index(v);
        if idx >= self.buckets.len() {
            self.buckets.resize(idx + 1, 0);
        }
        self.buckets[idx] += n;
        self.count += n;
        self.sum += v as u128 * n as u128;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Records a non-negative duration in seconds at nanosecond
    /// resolution (negative, NaN, or infinite inputs clamp to the range
    /// ends — telemetry never panics).
    #[inline]
    pub fn record_seconds(&mut self, seconds: f64) {
        // `as u64` saturates: NaN → 0, +inf → u64::MAX.
        self.record((seconds * SECONDS_SCALE).round() as u64);
    }

    /// Total observations recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact sum of recorded values.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Exact minimum recorded value, or `None` when empty.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Exact maximum recorded value, or `None` when empty.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Exact mean of recorded values (`NaN` when empty).
    pub fn mean(&self) -> f64 {
        self.sum as f64 / self.count as f64
    }

    /// Mean in seconds for histograms recorded via [`record_seconds`].
    ///
    /// [`record_seconds`]: LatencyHistogram::record_seconds
    pub fn mean_seconds(&self) -> f64 {
        self.mean() / SECONDS_SCALE
    }

    /// The value at quantile `q ∈ [0, 1]`: the midpoint of the bucket
    /// holding the `⌈q·count⌉`-th smallest observation, clamped to the
    /// exact observed `[min, max]`. Relative error is bounded by the
    /// bucket width (≈ 3%). Returns `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (idx, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                let lo = bucket_lower(idx);
                let hi = bucket_lower(idx + 1);
                let mid = lo + (hi - lo) / 2;
                return Some(mid.clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }

    /// Quantile in seconds for histograms recorded via
    /// [`record_seconds`](LatencyHistogram::record_seconds); `NaN` when
    /// empty.
    pub fn quantile_seconds(&self, q: f64) -> f64 {
        self.quantile(q)
            .map_or(f64::NAN, |v| v as f64 / SECONDS_SCALE)
    }

    /// Folds `other` into `self` by element-wise bucket addition. Exact:
    /// associative, commutative, and equal to having recorded both
    /// streams into one histogram.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        if other.buckets.len() > self.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Non-empty buckets as `(lower, upper_exclusive, count)` triples,
    /// lowest first — the export surface for Prometheus and JSON.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(idx, &n)| (bucket_lower(idx), bucket_lower(idx + 1), n))
    }

    /// Serializes to one line of text (`count sum min max i:n i:n ...`) —
    /// the snapshot-file round-trip format used by `eirs-serve`.
    pub fn encode(&self) -> String {
        let mut out = format!("{} {} {} {}", self.count, self.sum, self.min, self.max);
        for (idx, &n) in self.buckets.iter().enumerate() {
            if n > 0 {
                out.push_str(&format!(" {idx}:{n}"));
            }
        }
        out
    }

    /// Parses the [`encode`](LatencyHistogram::encode) format.
    pub fn decode(s: &str) -> Result<Self, String> {
        let mut fields = s.split_whitespace();
        let mut scalar = |name: &str| -> Result<u128, String> {
            fields
                .next()
                .ok_or_else(|| format!("histogram: missing {name}"))?
                .parse::<u128>()
                .map_err(|e| format!("histogram {name}: {e}"))
        };
        let count = scalar("count")? as u64;
        let sum = scalar("sum")?;
        let min = scalar("min")? as u64;
        let max = scalar("max")? as u64;
        let mut h = LatencyHistogram::new();
        for pair in fields {
            let (idx, n) = pair
                .split_once(':')
                .ok_or_else(|| format!("histogram: malformed bucket '{pair}'"))?;
            let idx: usize = idx
                .parse()
                .map_err(|e| format!("histogram bucket index: {e}"))?;
            let n: u64 = n
                .parse()
                .map_err(|e| format!("histogram bucket count: {e}"))?;
            if n == 0 {
                return Err("histogram: zero bucket in encoding".into());
            }
            if idx >= h.buckets.len() {
                h.buckets.resize(idx + 1, 0);
            }
            h.buckets[idx] += n;
        }
        let bucket_total: u64 = h.buckets.iter().sum();
        if bucket_total != count {
            return Err(format!(
                "histogram: bucket total {bucket_total} != count {count}"
            ));
        }
        h.count = count;
        h.sum = sum;
        h.min = if count == 0 { u64::MAX } else { min };
        h.max = max;
        Ok(h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_monotone_and_continuous() {
        // Lower bounds must invert the index map and indices must never
        // decrease as values grow.
        let mut prev = 0usize;
        for v in 0..4096u64 {
            let idx = bucket_index(v);
            assert!(idx >= prev, "index decreased at {v}");
            assert!(bucket_lower(idx) <= v && v < bucket_lower(idx + 1), "{v}");
            prev = idx;
        }
        for &v in &[u64::MAX, u64::MAX / 2, 1 << 40, (1 << 40) + 12345] {
            let idx = bucket_index(v);
            assert!(bucket_lower(idx) <= v);
        }
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = LatencyHistogram::new();
        for v in 0..64 {
            h.record(v);
        }
        for q in [0.0, 0.25, 0.5, 0.99, 1.0] {
            let got = h.quantile(q).unwrap();
            let exact = ((q * 64.0).ceil() as u64).clamp(1, 64) - 1;
            assert_eq!(got, exact, "q={q}");
        }
    }

    #[test]
    fn quantile_relative_error_is_bounded() {
        let mut h = LatencyHistogram::new();
        let mut all: Vec<u64> = Vec::new();
        let mut x = 17u64;
        for _ in 0..10_000 {
            // Cheap LCG spread over several octaves.
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let v = (x >> 33) % 1_000_000;
            h.record(v);
            all.push(v);
        }
        all.sort_unstable();
        for q in [0.5, 0.9, 0.99, 0.999] {
            let exact =
                all[(((q * all.len() as f64).ceil() as usize).max(1) - 1).min(all.len() - 1)];
            let got = h.quantile(q).unwrap();
            let rel = (got as f64 - exact as f64).abs() / (exact as f64).max(1.0);
            assert!(rel < 0.04, "q={q}: {got} vs {exact} (rel {rel})");
        }
    }

    #[test]
    fn merge_equals_recording_the_whole_stream() {
        let mut whole = LatencyHistogram::new();
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        for v in [0u64, 1, 63, 64, 65, 1000, 123456, 1 << 40] {
            whole.record(v);
            if v % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b;
        ba.merge(&a);
        assert_eq!(ab, whole);
        assert_eq!(ba, whole);
    }

    #[test]
    fn encode_decode_round_trips() {
        let mut h = LatencyHistogram::new();
        for v in [5u64, 5, 900, 12345678, 1 << 50] {
            h.record(v);
        }
        let restored = LatencyHistogram::decode(&h.encode()).unwrap();
        assert_eq!(restored, h);
        let empty = LatencyHistogram::new();
        assert_eq!(LatencyHistogram::decode(&empty.encode()).unwrap(), empty);
        assert!(LatencyHistogram::decode("1 0 0 0 0:2").is_err());
        assert!(LatencyHistogram::decode("not a histogram").is_err());
    }

    #[test]
    fn seconds_round_trip_through_nanosecond_ticks() {
        let mut h = LatencyHistogram::new();
        h.record_seconds(0.5);
        h.record_seconds(1.5);
        assert_eq!(h.count(), 2);
        assert!((h.mean_seconds() - 1.0).abs() < 1e-6);
        let p100 = h.quantile_seconds(1.0);
        assert!((p100 - 1.5).abs() / 1.5 < 0.04, "{p100}");
    }

    #[test]
    fn empty_histogram_reports_none() {
        let h = LatencyHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.quantile(0.5), None);
        assert!(h.quantile_seconds(0.5).is_nan());
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
    }
}
