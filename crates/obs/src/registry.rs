//! Process-wide metric registry: named counters, gauges, and published
//! histograms.
//!
//! Registration (first touch of a name) takes a mutex; every touch after
//! that is lock-free. The intended pattern is a `static` [`LazyCounter`]
//! / [`LazyGauge`] per instrumentation site: the first `add` resolves the
//! name to a leaked `&'static` cell under the registry lock and caches it
//! in a `OnceLock`, so the steady-state hot path is one relaxed load of
//! the enable flag, one `OnceLock` load, and one relaxed `fetch_add` — no
//! locks, no allocation.
//!
//! Determinism: counter updates are commutative additions on relaxed
//! atomics, so totals are independent of thread interleaving; and because
//! nothing in the workspace ever *reads* a metric to make a decision,
//! the registry cannot perturb any digested result.

use crate::hist::LatencyHistogram;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// A monotonically increasing metric cell.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds `n` (relaxed; commutative, so thread order is irrelevant).
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-write-wins floating-point metric cell (stored as bits).
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// Sets the gauge.
    #[inline]
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// The global name → cell tables. Cells are leaked so call sites can hold
/// `&'static` references; `reset_values` zeroes them without dropping.
#[derive(Default)]
struct Registry {
    counters: BTreeMap<&'static str, &'static Counter>,
    gauges: BTreeMap<&'static str, &'static Gauge>,
    histograms: BTreeMap<String, LatencyHistogram>,
}

fn registry() -> &'static Mutex<Registry> {
    static REGISTRY: OnceLock<Mutex<Registry>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Registry::default()))
}

/// Resolves (registering on first use) the counter cell for `name`.
pub fn counter(name: &'static str) -> &'static Counter {
    let mut reg = registry().lock().expect("obs registry poisoned");
    reg.counters
        .entry(name)
        .or_insert_with(|| Box::leak(Box::default()))
}

/// Resolves (registering on first use) the gauge cell for `name`.
pub fn gauge(name: &'static str) -> &'static Gauge {
    let mut reg = registry().lock().expect("obs registry poisoned");
    reg.gauges
        .entry(name)
        .or_insert_with(|| Box::leak(Box::default()))
}

/// Merges a locally accumulated histogram into the registry under
/// `name`. This is the cold-path half of the per-shard discipline:
/// shards record into their own [`LatencyHistogram`]s lock-free, then
/// publish once at the end of a run; the registry merge is exact.
pub fn publish_histogram(name: &str, h: &LatencyHistogram) {
    if h.is_empty() {
        return;
    }
    let mut reg = registry().lock().expect("obs registry poisoned");
    reg.histograms.entry(name.to_string()).or_default().merge(h);
}

/// A `static`-friendly counter handle: `const`-constructible, gated on
/// the global enable flag, resolving its registry cell once on first use.
///
/// ```
/// use eirs_obs::LazyCounter;
/// static HITS: LazyCounter = LazyCounter::new("example.hits");
/// eirs_obs::set_enabled(true);
/// HITS.inc();
/// eirs_obs::set_enabled(false);
/// HITS.inc(); // disabled: a relaxed load and a branch, nothing recorded
/// ```
pub struct LazyCounter {
    name: &'static str,
    cell: OnceLock<&'static Counter>,
}

impl LazyCounter {
    /// A handle for the counter registered as `name`.
    pub const fn new(name: &'static str) -> Self {
        Self {
            name,
            cell: OnceLock::new(),
        }
    }

    /// Adds `n` when the layer is enabled; otherwise a branch.
    #[inline]
    pub fn add(&self, n: u64) {
        if crate::enabled() {
            self.cell.get_or_init(|| counter(self.name)).add(n);
        }
    }

    /// Adds one when the layer is enabled.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }
}

/// A `static`-friendly gauge handle; see [`LazyCounter`].
pub struct LazyGauge {
    name: &'static str,
    cell: OnceLock<&'static Gauge>,
}

impl LazyGauge {
    /// A handle for the gauge registered as `name`.
    pub const fn new(name: &'static str) -> Self {
        Self {
            name,
            cell: OnceLock::new(),
        }
    }

    /// Sets the gauge when the layer is enabled.
    #[inline]
    pub fn set(&self, v: f64) {
        if crate::enabled() {
            self.cell.get_or_init(|| gauge(self.name)).set(v);
        }
    }
}

/// A point-in-time copy of every registered metric, sorted by name
/// (export order is therefore deterministic).
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// `(name, value)` for every registered counter.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` for every registered gauge.
    pub gauges: Vec<(String, f64)>,
    /// `(name, histogram)` for every published histogram.
    pub histograms: Vec<(String, LatencyHistogram)>,
}

impl Snapshot {
    /// The value of counter `name` (0 when unregistered).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |(_, v)| *v)
    }

    /// The value of gauge `name`, if registered.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// The published histogram `name`, if any.
    pub fn histogram(&self, name: &str) -> Option<&LatencyHistogram> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }
}

/// Copies the current value of every registered metric.
pub fn snapshot() -> Snapshot {
    let reg = registry().lock().expect("obs registry poisoned");
    Snapshot {
        counters: reg
            .counters
            .iter()
            .map(|(&n, c)| (n.to_string(), c.get()))
            .collect(),
        gauges: reg
            .gauges
            .iter()
            .map(|(&n, g)| (n.to_string(), g.get()))
            .collect(),
        histograms: reg
            .histograms
            .iter()
            .map(|(n, h)| (n.clone(), h.clone()))
            .collect(),
    }
}

/// Zeroes every counter and gauge and drops published histograms,
/// keeping registrations (and the `&'static` cells handed out) valid.
pub(crate) fn reset_values() {
    let mut reg = registry().lock().expect("obs registry poisoned");
    for c in reg.counters.values() {
        c.0.store(0, Ordering::Relaxed);
    }
    for g in reg.gauges.values() {
        g.0.store(0, Ordering::Relaxed);
    }
    reg.histograms.clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_register_once_and_accumulate() {
        let c1 = counter("test.registry.alpha");
        let c2 = counter("test.registry.alpha");
        assert!(std::ptr::eq(c1, c2));
        let before = c1.get();
        c1.add(3);
        c2.inc();
        assert_eq!(c1.get(), before + 4);
        assert!(snapshot().counter("test.registry.alpha") >= 4);
    }

    #[test]
    fn gauges_hold_last_write() {
        let g = gauge("test.registry.gauge");
        g.set(2.5);
        assert_eq!(g.get(), 2.5);
        assert_eq!(snapshot().gauge("test.registry.gauge"), Some(2.5));
    }

    #[test]
    fn lazy_counter_is_gated_on_the_enable_flag() {
        let _guard = crate::test_lock();
        static GATED: LazyCounter = LazyCounter::new("test.registry.gated");
        crate::set_enabled(false);
        GATED.inc();
        let before = snapshot().counter("test.registry.gated");
        crate::set_enabled(true);
        GATED.add(2);
        crate::set_enabled(false);
        assert_eq!(snapshot().counter("test.registry.gated"), before + 2);
    }

    #[test]
    fn published_histograms_merge_exactly() {
        let mut a = LatencyHistogram::new();
        a.record(10);
        let mut b = LatencyHistogram::new();
        b.record(1000);
        publish_histogram("test.registry.hist", &a);
        publish_histogram("test.registry.hist", &b);
        let snap = snapshot();
        let h = snap.histogram("test.registry.hist").unwrap();
        assert!(h.count() >= 2);
        publish_histogram("test.registry.empty", &LatencyHistogram::new());
        assert!(snap.histogram("test.registry.empty").is_none());
    }
}
