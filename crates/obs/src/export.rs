//! Exporters: Chrome trace-event JSON, JSONL event streams, and
//! Prometheus text format — plus a small JSON well-formedness checker
//! used by the benches to validate emitted traces.
//!
//! All exporters are pure functions of a [`Snapshot`] and/or a slice of
//! [`TraceEvent`]s, so they can run after the instrumented work is done
//! and never touch a hot path.

use crate::registry::Snapshot;
use crate::span::{ArgValue, TraceEvent};
use std::fmt::Write as _;

/// Escapes `s` as the contents of a JSON string literal.
fn escape_json(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Renders a finite `f64` (JSON has no NaN/inf; those become `null`).
fn json_num(v: f64, out: &mut String) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

fn write_args(args: &[(&'static str, ArgValue)], out: &mut String) {
    out.push('{');
    for (i, (k, v)) in args.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('"');
        escape_json(k, out);
        out.push_str("\":");
        match v {
            ArgValue::Num(x) => json_num(*x, out),
            ArgValue::Int(x) => {
                let _ = write!(out, "{x}");
            }
            ArgValue::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            ArgValue::Str(s) => {
                out.push('"');
                escape_json(s, out);
                out.push('"');
            }
        }
    }
    out.push('}');
}

/// One Chrome trace-event object (without trailing comma).
fn write_chrome_event(ev: &TraceEvent, out: &mut String) {
    out.push_str("{\"name\":\"");
    escape_json(&ev.name, out);
    out.push_str("\",\"cat\":\"");
    escape_json(ev.cat, out);
    let ph = if ev.dur_ns.is_some() { "X" } else { "i" };
    let _ = write!(
        out,
        "\",\"ph\":\"{ph}\",\"pid\":1,\"tid\":{},\"ts\":{}",
        ev.tid,
        ev.ts_ns as f64 / 1e3
    );
    if let Some(dur) = ev.dur_ns {
        let _ = write!(out, ",\"dur\":{}", dur as f64 / 1e3);
    }
    if ph == "i" {
        // Instant events need a scope; "t" = thread.
        out.push_str(",\"s\":\"t\"");
    }
    if !ev.args.is_empty() {
        out.push_str(",\"args\":");
        write_args(&ev.args, out);
    }
    out.push('}');
}

/// Renders spans plus the metric snapshot as Chrome trace-event JSON
/// (the object form, loadable in Perfetto or `chrome://tracing`).
/// Counters and gauges become `ph:"C"` counter samples stamped at the
/// trace end, so route hit rates and the like show up as counter tracks
/// alongside the span timeline.
pub fn chrome_trace_json(events: &[TraceEvent], snap: &Snapshot) -> String {
    let mut out = String::with_capacity(events.len() * 96 + 1024);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    let mut first = true;
    let mut sep = |out: &mut String| {
        if !std::mem::take(&mut first) {
            out.push(',');
        }
    };
    for ev in events {
        sep(&mut out);
        write_chrome_event(ev, &mut out);
    }
    let end_ts = events.iter().map(|e| e.ts_ns).max().unwrap_or(0) as f64 / 1e3;
    for (name, value) in &snap.counters {
        sep(&mut out);
        out.push_str("{\"name\":\"");
        escape_json(name, &mut out);
        let _ = write!(
            out,
            "\",\"cat\":\"metric\",\"ph\":\"C\",\"pid\":1,\"tid\":0,\"ts\":{end_ts},\
             \"args\":{{\"value\":{value}}}}}"
        );
    }
    for (name, value) in &snap.gauges {
        sep(&mut out);
        out.push_str("{\"name\":\"");
        escape_json(name, &mut out);
        let _ = write!(
            out,
            "\",\"cat\":\"metric\",\"ph\":\"C\",\"pid\":1,\"tid\":0,\"ts\":{end_ts},\
             \"args\":{{\"value\":"
        );
        json_num(*value, &mut out);
        out.push_str("}}");
    }
    out.push_str("]}");
    out
}

/// Renders events as JSONL: one self-contained JSON object per line
/// (`ts_ns`, `name`, `cat`, `tid`, optional `dur_ns`, optional `args`).
pub fn jsonl(events: &[TraceEvent]) -> String {
    let mut out = String::with_capacity(events.len() * 96);
    for ev in events {
        out.push_str("{\"ts_ns\":");
        let _ = write!(out, "{}", ev.ts_ns);
        out.push_str(",\"name\":\"");
        escape_json(&ev.name, &mut out);
        out.push_str("\",\"cat\":\"");
        escape_json(ev.cat, &mut out);
        let _ = write!(out, "\",\"tid\":{}", ev.tid);
        if let Some(dur) = ev.dur_ns {
            let _ = write!(out, ",\"dur_ns\":{dur}");
        }
        if !ev.args.is_empty() {
            out.push_str(",\"args\":");
            write_args(&ev.args, &mut out);
        }
        out.push_str("}\n");
    }
    out
}

/// A metric name as a Prometheus identifier: `eirs_` prefix, and every
/// character outside `[a-zA-Z0-9_]` becomes `_`.
fn prom_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 5);
    out.push_str("eirs_");
    for c in name.chars() {
        out.push(if c.is_ascii_alphanumeric() { c } else { '_' });
    }
    out
}

/// Renders the snapshot in Prometheus text exposition format. Histogram
/// values are nanosecond ticks; bucket boundaries, `_sum`, and the
/// quantile gauges are exported in **seconds**, matching Prometheus
/// conventions for latency metrics.
pub fn prometheus_text(snap: &Snapshot) -> String {
    let mut out = String::new();
    for (name, value) in &snap.counters {
        let n = prom_name(name);
        let _ = writeln!(out, "# TYPE {n} counter\n{n} {value}");
    }
    for (name, value) in &snap.gauges {
        let n = prom_name(name);
        let _ = writeln!(out, "# TYPE {n} gauge");
        let _ = writeln!(out, "{n} {value}");
    }
    for (name, hist) in &snap.histograms {
        let n = prom_name(name);
        let _ = writeln!(out, "# TYPE {n} histogram");
        let mut cum = 0u64;
        for (_, upper, count) in hist.nonzero_buckets() {
            cum += count;
            let _ = writeln!(out, "{n}_bucket{{le=\"{}\"}} {cum}", upper as f64 / 1e9);
        }
        let _ = writeln!(out, "{n}_bucket{{le=\"+Inf\"}} {}", hist.count());
        let _ = writeln!(out, "{n}_sum {}", hist.sum() as f64 / 1e9);
        let _ = writeln!(out, "{n}_count {}", hist.count());
    }
    out
}

/// Checks that `s` is one well-formed JSON value (with optional
/// surrounding whitespace). Used by the `obs_overhead` bench and tests
/// to validate exported Chrome traces without an external JSON crate.
pub fn validate_json(s: &str) -> Result<(), String> {
    let bytes = s.as_bytes();
    let mut pos = 0usize;
    skip_ws(bytes, &mut pos);
    parse_value(bytes, &mut pos, 0)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing content at byte {pos}"));
    }
    Ok(())
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize, depth: usize) -> Result<(), String> {
    if depth > 128 {
        return Err("nesting too deep".into());
    }
    match b.get(*pos) {
        Some(b'{') => {
            *pos += 1;
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(());
            }
            loop {
                skip_ws(b, pos);
                parse_string(b, pos)?;
                skip_ws(b, pos);
                expect(b, pos, b':')?;
                skip_ws(b, pos);
                parse_value(b, pos, depth + 1)?;
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(());
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(());
            }
            loop {
                skip_ws(b, pos);
                parse_value(b, pos, depth + 1)?;
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(());
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                }
            }
        }
        Some(b'"') => parse_string(b, pos),
        Some(b't') => parse_literal(b, pos, "true"),
        Some(b'f') => parse_literal(b, pos, "false"),
        Some(b'n') => parse_literal(b, pos, "null"),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(b, pos),
        Some(c) => Err(format!("unexpected byte '{}' at {pos}", *c as char)),
        None => Err("unexpected end of input".into()),
    }
}

fn expect(b: &[u8], pos: &mut usize, want: u8) -> Result<(), String> {
    if b.get(*pos) == Some(&want) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {pos}", want as char))
    }
}

fn parse_literal(b: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("invalid literal at byte {pos}"))
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<(), String> {
    expect(b, pos, b'"')?;
    while let Some(&c) = b.get(*pos) {
        match c {
            b'"' => {
                *pos += 1;
                return Ok(());
            }
            b'\\' => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *pos += 1,
                    Some(b'u') => {
                        if b.len() < *pos + 5
                            || !b[*pos + 1..*pos + 5].iter().all(u8::is_ascii_hexdigit)
                        {
                            return Err(format!("bad \\u escape at byte {pos}"));
                        }
                        *pos += 5;
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
            }
            c if c < 0x20 => return Err(format!("raw control byte in string at {pos}")),
            _ => *pos += 1,
        }
    }
    Err("unterminated string".into())
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<(), String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let digits = |b: &[u8], pos: &mut usize| {
        let s = *pos;
        while b.get(*pos).is_some_and(u8::is_ascii_digit) {
            *pos += 1;
        }
        *pos > s
    };
    if !digits(b, pos) {
        return Err(format!("bad number at byte {start}"));
    }
    if b.get(*pos) == Some(&b'.') {
        *pos += 1;
        if !digits(b, pos) {
            return Err(format!("bad number at byte {start}"));
        }
    }
    if matches!(b.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(b.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        if !digits(b, pos) {
            return Err(format!("bad number at byte {start}"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hist::LatencyHistogram;

    fn sample_events() -> Vec<TraceEvent> {
        vec![
            TraceEvent {
                name: "solve \"cell\"".into(),
                cat: "sweep",
                ts_ns: 1_500,
                dur_ns: Some(2_000),
                tid: 3,
                args: vec![
                    ("mu_e", ArgValue::Num(1.25)),
                    ("warm", ArgValue::Bool(true)),
                ],
            },
            TraceEvent {
                name: "opt.eval".into(),
                cat: "opt",
                ts_ns: 9_000,
                dur_ns: None,
                tid: 0,
                args: vec![("score", ArgValue::Num(f64::NAN))],
            },
        ]
    }

    fn sample_snapshot() -> Snapshot {
        let mut h = LatencyHistogram::new();
        h.record(1_000);
        h.record(2_000_000);
        Snapshot {
            counters: vec![("markov.warm.rank1_accepted".into(), 42)],
            gauges: vec![("opt.best_score".into(), 3.5)],
            histograms: vec![("serve.response".into(), h)],
        }
    }

    #[test]
    fn chrome_trace_is_well_formed_and_carries_counters() {
        let out = chrome_trace_json(&sample_events(), &sample_snapshot());
        validate_json(&out).expect("valid JSON");
        assert!(out.contains("\"ph\":\"X\""));
        assert!(out.contains("\"ph\":\"i\""));
        assert!(out.contains("\"ph\":\"C\""));
        assert!(out.contains("markov.warm.rank1_accepted"));
        assert!(out.contains("solve \\\"cell\\\""));
    }

    #[test]
    fn jsonl_lines_each_validate() {
        let out = jsonl(&sample_events());
        for line in out.lines() {
            validate_json(line).expect("valid JSONL line");
        }
        assert_eq!(out.lines().count(), 2);
    }

    #[test]
    fn prometheus_text_has_counter_gauge_and_histogram_series() {
        let out = prometheus_text(&sample_snapshot());
        assert!(out.contains("# TYPE eirs_markov_warm_rank1_accepted counter"));
        assert!(out.contains("eirs_markov_warm_rank1_accepted 42"));
        assert!(out.contains("# TYPE eirs_opt_best_score gauge"));
        assert!(out.contains("# TYPE eirs_serve_response histogram"));
        assert!(out.contains("eirs_serve_response_bucket{le=\"+Inf\"} 2"));
        assert!(out.contains("eirs_serve_response_count 2"));
    }

    #[test]
    fn validator_accepts_and_rejects_correctly() {
        for ok in [
            "{}",
            "[]",
            " { \"a\" : [1, -2.5e3, true, null, \"x\\u00e9\"] } ",
            "3.25",
            "\"plain\"",
        ] {
            validate_json(ok).unwrap_or_else(|e| panic!("{ok}: {e}"));
        }
        for bad in [
            "{",
            "[1,]",
            "{\"a\":}",
            "01x",
            "\"unterminated",
            "{} {}",
            "",
        ] {
            assert!(validate_json(bad).is_err(), "accepted: {bad}");
        }
    }
}
