//! M/M/k queue: Erlang-B/C and stationary response-time metrics.
//!
//! Under Inelastic-First, inelastic jobs have preemptive priority and each
//! occupies one server, so the inelastic class is exactly an M/M/k
//! (Appendix D, Observation "inelastic jobs under IF see an M/M/k"). The
//! Erlang-C probability is computed through the numerically stable recursive
//! Erlang-B form, which is safe for hundreds of servers.

/// An M/M/k queue with Poisson(λ) arrivals, Exp(µ) service, `k` servers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MMk {
    lambda: f64,
    mu: f64,
    k: u32,
}

impl MMk {
    /// New M/M/k; requires `λ ≥ 0`, `µ > 0`, `k ≥ 1`.
    pub fn new(lambda: f64, mu: f64, k: u32) -> Self {
        assert!(lambda >= 0.0 && lambda.is_finite());
        assert!(mu > 0.0 && mu.is_finite());
        assert!(k >= 1);
        Self { lambda, mu, k }
    }

    /// Arrival rate λ.
    pub fn lambda(&self) -> f64 {
        self.lambda
    }

    /// Per-server service rate µ.
    pub fn mu(&self) -> f64 {
        self.mu
    }

    /// Number of servers k.
    pub fn k(&self) -> u32 {
        self.k
    }

    /// Offered load `a = λ/µ` (in Erlangs).
    pub fn offered_load(&self) -> f64 {
        self.lambda / self.mu
    }

    /// Utilization `ρ = λ/(kµ)`.
    pub fn rho(&self) -> f64 {
        self.lambda / (self.k as f64 * self.mu)
    }

    /// `true` when the queue is stable (`ρ < 1`).
    pub fn is_stable(&self) -> bool {
        self.rho() < 1.0
    }

    /// Erlang-B blocking probability for `m` servers at this offered load,
    /// via the standard recursion `B(0)=1`, `B(m) = aB(m−1)/(m + aB(m−1))`.
    pub fn erlang_b(&self, m: u32) -> f64 {
        let a = self.offered_load();
        let mut b = 1.0;
        for j in 1..=m {
            b = a * b / (j as f64 + a * b);
        }
        b
    }

    /// Erlang-C probability that an arrival must wait,
    /// `C = B / (1 − ρ(1 − B))` with `B = ErlangB(k, a)`. Requires stability.
    pub fn erlang_c(&self) -> f64 {
        assert!(self.is_stable(), "M/M/k unstable: rho = {}", self.rho());
        let b = self.erlang_b(self.k);
        let rho = self.rho();
        b / (1.0 - rho * (1.0 - b))
    }

    /// Mean waiting time in queue `E[T_Q] = C / (kµ − λ)`.
    pub fn mean_wait(&self) -> f64 {
        self.erlang_c() / (self.k as f64 * self.mu - self.lambda)
    }

    /// Mean response time `E[T] = 1/µ + E[T_Q]`.
    pub fn mean_response_time(&self) -> f64 {
        1.0 / self.mu + self.mean_wait()
    }

    /// Mean number in system `E[N] = λ E[T]` (Little's law).
    pub fn mean_number_in_system(&self) -> f64 {
        self.lambda * self.mean_response_time()
    }

    /// Stationary probability of `n` jobs in system, from the standard
    /// product-form solution (computed in log space for large k).
    pub fn prob_n(&self, n: u32) -> f64 {
        assert!(self.is_stable());
        let a = self.offered_load();
        let rho = self.rho();
        // log p0: p0 = [ sum_{j<k} a^j/j! + a^k/(k!(1-rho)) ]^{-1}
        let mut terms: Vec<f64> = Vec::with_capacity(self.k as usize + 1);
        let mut log_term = 0.0; // log(a^0/0!)
        terms.push(log_term);
        for j in 1..self.k {
            log_term += a.ln() - (j as f64).ln();
            terms.push(log_term);
        }
        // a^k / (k! (1-rho)):
        let mut log_k_term = 0.0;
        for j in 1..=self.k {
            log_k_term += a.ln() - (j as f64).ln();
        }
        terms.push(log_k_term - (1.0 - rho).ln());
        let max = terms.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let log_sum = max + terms.iter().map(|t| (t - max).exp()).sum::<f64>().ln();
        let log_p0 = -log_sum;
        // p_n = p0 a^n/n!          for n <= k
        //     = p0 a^k/k! rho^{n-k} for n > k
        let log_pn = if n <= self.k {
            let mut lt = 0.0;
            for j in 1..=n {
                lt += a.ln() - (j as f64).ln();
            }
            log_p0 + lt
        } else {
            log_p0 + log_k_term + (n - self.k) as f64 * rho.ln()
        };
        log_pn.exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn k1_reduces_to_mm1() {
        let q = MMk::new(0.6, 1.0, 1);
        // Erlang-C for k=1 is rho.
        assert!((q.erlang_c() - 0.6).abs() < 1e-12);
        let mm1 = crate::mm1::MM1::new(0.6, 1.0);
        assert!((q.mean_response_time() - mm1.mean_response_time()).abs() < 1e-12);
    }

    #[test]
    fn erlang_b_known_value() {
        // Classic table value: a = 2 Erlangs, m = 3 → B = (a^3/3!)/sum = 4/19.
        let q = MMk::new(2.0, 1.0, 3);
        assert!((q.erlang_b(3) - 4.0 / 19.0).abs() < 1e-12);
    }

    #[test]
    fn erlang_c_known_value() {
        // k=2, a=1 (rho=0.5): C = B/(1-rho(1-B)), B = (1/2)/(1+1+1/2) = 0.2
        // → C = 0.2/(1-0.5*0.8) = 1/3.
        let q = MMk::new(1.0, 1.0, 2);
        assert!((q.erlang_c() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn response_time_k2_closed_form() {
        // For k=2: E[T] = 1/µ + C/(2µ-λ) with C as above.
        let q = MMk::new(1.0, 1.0, 2);
        let want = 1.0 + (1.0 / 3.0) / (2.0 - 1.0);
        assert!((q.mean_response_time() - want).abs() < 1e-12);
    }

    #[test]
    fn stationary_distribution_sums_to_one_and_matches_mean() {
        let q = MMk::new(3.0, 1.0, 4);
        let total: f64 = (0..4000).map(|n| q.prob_n(n)).sum();
        assert!((total - 1.0).abs() < 1e-10, "total {total}");
        let mean: f64 = (0..4000).map(|n| n as f64 * q.prob_n(n)).sum();
        assert!(
            (mean - q.mean_number_in_system()).abs() < 1e-8,
            "mean {mean} vs {}",
            q.mean_number_in_system()
        );
    }

    #[test]
    fn large_k_is_numerically_stable() {
        let q = MMk::new(180.0, 1.0, 200);
        let c = q.erlang_c();
        assert!(c.is_finite() && (0.0..=1.0).contains(&c));
        let t = q.mean_response_time();
        assert!(t >= 1.0 && t.is_finite());
        let total: f64 = (0..4000).map(|n| q.prob_n(n)).sum();
        assert!((total - 1.0).abs() < 1e-8);
    }

    #[test]
    fn erlang_c_exceeds_erlang_b() {
        // Standard ordering: C >= B for the same (k, a).
        for (lam, k) in [(1.5, 2u32), (3.0, 4), (7.0, 8)] {
            let q = MMk::new(lam, 1.0, k);
            assert!(q.erlang_c() >= q.erlang_b(k));
        }
    }

    #[test]
    #[should_panic(expected = "unstable")]
    fn unstable_panics() {
        MMk::new(5.0, 1.0, 4).erlang_c();
    }

    #[test]
    fn zero_arrivals_give_bare_service_time() {
        let q = MMk::new(0.0, 2.0, 4);
        assert!((q.mean_response_time() - 0.5).abs() < 1e-12);
        assert_eq!(q.mean_number_in_system(), 0.0);
    }
}
