//! Two-phase Coxian distributions and closed-form three-moment fitting.
//!
//! The busy-period transformation (paper Section 5.2, Observation 3) replaces
//! the special "busy period" transitions of the collapsed Markov chain with a
//! two-phase Coxian whose first three moments match the M/M/1 busy period,
//! following the moment-matching approach of Osogami & Harchol-Balter
//! (Performance Evaluation 2006).
//!
//! A Coxian-2 starts in phase 1 (rate `µ1`); on phase-1 completion it either
//! finishes (probability `1 − q`) or continues into phase 2 (rate `µ2`) and
//! finishes there. Eliminating `q` from the three raw-moment equations leaves
//! a quadratic in `a = 1/µ1`:
//!
//! ```text
//! (m1² − m2/2)·a² + (m3/6 − m1·m2/2)·a + (m2²/4 − m1·m3/6) = 0
//! b = (m2/2 − a·m1) / (m1 − a),    q = (m1 − a)/b,
//! ```
//!
//! with the feasible root satisfying `0 < a ≤ m1`, `b > 0`, `0 ≤ q ≤ 1`.
//! M/M/1 busy periods always admit such a root (their `CV² = (1+ρ)/(1−ρ) ≥ 1`
//! and `m1·m3 ≥ (3/2)·m2²`), degenerating to a single exponential as `ρ → 0`.

use crate::moments::Moments;
use eirs_numerics::roots::solve_quadratic;
use rand::RngCore;

/// A two-phase Coxian distribution.
///
/// Phase 1 has rate `mu1`; with probability `q` the job continues into phase
/// 2 (rate `mu2`), otherwise it completes. `q = 0` degenerates to
/// `Exp(mu1)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Coxian2 {
    mu1: f64,
    mu2: f64,
    q: f64,
}

/// Why a three-moment Coxian-2 fit failed.
#[derive(Debug, Clone, PartialEq)]
pub enum CoxianFitError {
    /// Moments violate nonnegativity/Jensen/Cauchy–Schwarz feasibility.
    InfeasibleMoments(Moments),
    /// Moments are feasible for *some* distribution but not representable by
    /// a two-phase Coxian (e.g. `CV²` below 1/2).
    NotRepresentable(Moments),
}

impl std::fmt::Display for CoxianFitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoxianFitError::InfeasibleMoments(m) => {
                write!(
                    f,
                    "moments {m:?} are not moments of a nonnegative random variable"
                )
            }
            CoxianFitError::NotRepresentable(m) => {
                write!(f, "moments {m:?} are not representable by a 2-phase Coxian")
            }
        }
    }
}

impl std::error::Error for CoxianFitError {}

impl Coxian2 {
    /// Builds a Coxian-2 from raw parameters.
    pub fn new(mu1: f64, mu2: f64, q: f64) -> Self {
        assert!(mu1 > 0.0 && mu1.is_finite(), "mu1 must be positive");
        assert!(mu2 > 0.0 && mu2.is_finite(), "mu2 must be positive");
        assert!((0.0..=1.0).contains(&q), "q must lie in [0,1], got {q}");
        Self { mu1, mu2, q }
    }

    /// A degenerate single-phase Coxian: `Exp(rate)`.
    pub fn exponential(rate: f64) -> Self {
        Self::new(rate, rate, 0.0)
    }

    /// Phase-1 rate.
    pub fn mu1(&self) -> f64 {
        self.mu1
    }

    /// Phase-2 rate.
    pub fn mu2(&self) -> f64 {
        self.mu2
    }

    /// Continuation probability from phase 1 into phase 2.
    pub fn q(&self) -> f64 {
        self.q
    }

    /// `true` when the distribution is a bare exponential (`q == 0`).
    pub fn is_exponential(&self) -> bool {
        self.q == 0.0
    }

    /// Transition rates `(γ1, γ2, γ3)` used in the transformed Markov chains
    /// (Figures 3c and 7c): `γ1 = (1−q)µ1` (phase 1 → done),
    /// `γ2 = q·µ1` (phase 1 → phase 2), `γ3 = µ2` (phase 2 → done).
    pub fn gamma_rates(&self) -> (f64, f64, f64) {
        ((1.0 - self.q) * self.mu1, self.q * self.mu1, self.mu2)
    }

    /// Mean `1/µ1 + q/µ2`.
    pub fn mean(&self) -> f64 {
        1.0 / self.mu1 + self.q / self.mu2
    }

    /// First three raw moments, in closed form.
    pub fn moments(&self) -> Moments {
        let a = 1.0 / self.mu1;
        let b = 1.0 / self.mu2;
        let q = self.q;
        let m1 = a + q * b;
        let m2 = 2.0 * (a * a + q * a * b + q * b * b);
        let m3 = 6.0 * (a * a * a + q * a * a * b + q * a * b * b + q * b * b * b);
        Moments::new(m1, m2, m3)
    }

    /// Draws one value.
    pub fn sample(&self, rng: &mut dyn RngCore) -> f64 {
        let u = crate::distributions::uniform_open01(rng);
        let mut x = -u.ln() / self.mu1;
        let cont: f64 = rand::Rng::random(&mut *rng);
        if cont < self.q {
            let v = crate::distributions::uniform_open01(rng);
            x += -v.ln() / self.mu2;
        }
        x
    }
}

/// Relative tolerance below which `CV²` is treated as exactly 1 and the fit
/// degenerates to a single exponential.
const EXP_DEGENERACY_TOL: f64 = 1e-9;

/// Fits a two-phase Coxian to the given first three raw moments.
///
/// Returns the matched [`Coxian2`]; moments of the result reproduce the
/// inputs to floating-point accuracy whenever a representation exists. For
/// `CV² = 1` (and the matching exponential third moment) the fit returns the
/// degenerate `Exp(1/m1)`.
pub fn fit_coxian2(target: Moments) -> Result<Coxian2, CoxianFitError> {
    if !target.is_feasible() {
        return Err(CoxianFitError::InfeasibleMoments(target));
    }
    let Moments { m1, m2, m3 } = target;

    // Exponential degeneracy: CV² == 1 forces q = 0 (with m3 then pinned to
    // 6 m1³; anything else is not Coxian-2-representable at CV² = 1).
    if (target.cv2() - 1.0).abs() < EXP_DEGENERACY_TOL {
        if (m3 - 6.0 * m1 * m1 * m1).abs() / (6.0 * m1 * m1 * m1) < 1e-6 {
            return Ok(Coxian2::exponential(1.0 / m1));
        }
        return Err(CoxianFitError::NotRepresentable(target));
    }

    let ca = m1 * m1 - m2 / 2.0;
    let cb = m3 / 6.0 - m1 * m2 / 2.0;
    let cc = m2 * m2 / 4.0 - m1 * m3 / 6.0;

    for a in solve_quadratic(ca, cb, cc) {
        if !(a > 0.0 && a.is_finite()) {
            continue;
        }
        if a >= m1 {
            // q·b = m1 − a ≤ 0: only the exact boundary a == m1 (pure
            // exponential) is usable, and that case was handled above.
            continue;
        }
        let b = (m2 / 2.0 - a * m1) / (m1 - a);
        if !(b > 0.0 && b.is_finite()) {
            continue;
        }
        let q = (m1 - a) / b;
        if !(0.0..=1.0 + 1e-12).contains(&q) {
            continue;
        }
        let cox = Coxian2::new(1.0 / a, 1.0 / b, q.min(1.0));
        return Ok(cox);
    }
    Err(CoxianFitError::NotRepresentable(target))
}

/// Fits a Coxian-2 to the busy period of the given M/M/1 queue — the exact
/// operation used by the busy-period transformation.
pub fn fit_busy_period(queue: &crate::mm1::MM1) -> Result<Coxian2, CoxianFitError> {
    fit_coxian2(queue.busy_period_moments())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mm1::MM1;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn assert_moments_match(cox: &Coxian2, target: &Moments, tol: f64) {
        let got = cox.moments();
        assert!(
            (got.m1 - target.m1).abs() / target.m1 < tol,
            "m1 {} vs {}",
            got.m1,
            target.m1
        );
        assert!(
            (got.m2 - target.m2).abs() / target.m2 < tol,
            "m2 {} vs {}",
            got.m2,
            target.m2
        );
        assert!(
            (got.m3 - target.m3).abs() / target.m3 < tol,
            "m3 {} vs {}",
            got.m3,
            target.m3
        );
    }

    #[test]
    fn busy_period_fit_round_trips_across_loads() {
        for rho in [0.05, 0.1, 0.25, 0.5, 0.7, 0.9, 0.95, 0.99] {
            let q = MM1::new(rho, 1.0);
            let target = q.busy_period_moments();
            let cox = fit_busy_period(&q).unwrap_or_else(|e| panic!("rho={rho}: {e}"));
            assert_moments_match(&cox, &target, 1e-8);
            assert!((0.0..=1.0).contains(&cox.q()));
        }
    }

    #[test]
    fn busy_period_fit_with_nonunit_service_rates() {
        // Both transformations use scaled queues (kµ service rates).
        for (lam, mu) in [(0.5, 4.0), (3.0, 4.0), (0.2, 16.0), (10.0, 12.0)] {
            let q = MM1::new(lam, mu);
            let cox = fit_busy_period(&q).unwrap();
            assert_moments_match(&cox, &q.busy_period_moments(), 1e-8);
        }
    }

    #[test]
    fn zero_arrival_rate_degenerates_to_exponential() {
        let q = MM1::new(0.0, 5.0);
        let cox = fit_busy_period(&q).unwrap();
        assert!(cox.is_exponential());
        assert!((cox.mu1() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn erlang2_is_recovered_exactly() {
        // Erlang(2, rate 1) = Coxian-2 with µ1 = µ2 = 1, q = 1.
        let target = Moments::new(2.0, 6.0, 24.0);
        let cox = fit_coxian2(target).unwrap();
        assert!((cox.mu1() - 1.0).abs() < 1e-9, "mu1 {}", cox.mu1());
        assert!((cox.mu2() - 1.0).abs() < 1e-9, "mu2 {}", cox.mu2());
        assert!((cox.q() - 1.0).abs() < 1e-9, "q {}", cox.q());
    }

    #[test]
    fn hyperexponential_moments_are_matched() {
        let h = crate::distributions::HyperExponential::balanced(1.0, 5.0);
        let target = crate::distributions::SizeDistribution::moments(&h);
        let cox = fit_coxian2(target).unwrap();
        assert_moments_match(&cox, &target, 1e-8);
    }

    #[test]
    fn infeasible_moments_are_rejected() {
        // Violates Jensen: m2 < m1².
        let err = fit_coxian2(Moments::new(1.0, 0.5, 1.0)).unwrap_err();
        assert!(matches!(err, CoxianFitError::InfeasibleMoments(_)));
    }

    #[test]
    fn low_variability_is_not_representable() {
        // Erlang(10) has CV² = 0.1 < 1/2: no Coxian-2 representation.
        let e = crate::distributions::Erlang::new(10, 1.0);
        let target = crate::distributions::SizeDistribution::moments(&e);
        let err = fit_coxian2(target).unwrap_err();
        assert!(matches!(err, CoxianFitError::NotRepresentable(_)));
    }

    #[test]
    fn gamma_rates_partition_mu1() {
        let cox = Coxian2::new(2.0, 3.0, 0.25);
        let (g1, g2, g3) = cox.gamma_rates();
        assert!((g1 + g2 - 2.0).abs() < 1e-12);
        assert!((g1 - 1.5).abs() < 1e-12);
        assert!((g2 - 0.5).abs() < 1e-12);
        assert!((g3 - 3.0).abs() < 1e-12);
    }

    #[test]
    fn sampling_mean_matches_analytic() {
        let q = MM1::new(0.6, 1.0);
        let cox = fit_busy_period(&q).unwrap();
        let mut rng = StdRng::seed_from_u64(42);
        let n = 400_000;
        let mut acc = 0.0;
        for _ in 0..n {
            acc += cox.sample(&mut rng);
        }
        let emp = acc / n as f64;
        let want = cox.mean();
        assert!((emp - want).abs() / want < 0.02, "emp {emp} vs {want}");
    }

    #[test]
    fn mean_is_first_moment() {
        let cox = Coxian2::new(1.5, 0.7, 0.4);
        assert!((cox.mean() - cox.moments().m1).abs() < 1e-12);
    }

    #[test]
    fn exponential_constructor_has_exponential_moments() {
        let cox = Coxian2::exponential(2.0);
        let m = cox.moments();
        assert!((m.m1 - 0.5).abs() < 1e-12);
        assert!((m.cv2() - 1.0).abs() < 1e-12);
    }
}
