//! M/M/1 queue: stationary metrics and busy-period moments.
//!
//! Under Elastic-First, elastic jobs form an M/M/1 with arrival rate `λ_E`
//! and service rate `k·µ_E` (Observation 1 of the paper). Both busy-period
//! transformations (Section 5.2 and Appendix D) replace a starved region of
//! the Markov chain with the busy period of an M/M/1, so the first three
//! busy-period moments are the load-bearing formulas here:
//!
//! ```text
//! E[B]   = 1 / (µ − λ)
//! E[B²]  = 2 / (µ² (1 − ρ)³)
//! E[B³]  = 6 (1 + ρ) / (µ³ (1 − ρ)⁵)
//! ```
//!
//! The unit tests cross-check these against numerical derivatives of the
//! busy-period Laplace–Stieltjes transform
//! `B*(s) = (λ + µ + s − √((λ+µ+s)² − 4λµ)) / (2λ)`.

use crate::moments::Moments;

/// An M/M/1 queue with Poisson(λ) arrivals and Exp(µ) service.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MM1 {
    lambda: f64,
    mu: f64,
}

impl MM1 {
    /// New M/M/1; requires `λ ≥ 0`, `µ > 0`.
    pub fn new(lambda: f64, mu: f64) -> Self {
        assert!(
            lambda >= 0.0 && lambda.is_finite(),
            "need λ ≥ 0, got {lambda}"
        );
        assert!(mu > 0.0 && mu.is_finite(), "need µ > 0, got {mu}");
        Self { lambda, mu }
    }

    /// Arrival rate λ.
    pub fn lambda(&self) -> f64 {
        self.lambda
    }

    /// Service rate µ.
    pub fn mu(&self) -> f64 {
        self.mu
    }

    /// Utilization `ρ = λ/µ`.
    pub fn rho(&self) -> f64 {
        self.lambda / self.mu
    }

    /// `true` when the queue is stable (`ρ < 1`).
    pub fn is_stable(&self) -> bool {
        self.rho() < 1.0
    }

    /// Mean response time `E[T] = 1/(µ − λ)`. Requires stability.
    pub fn mean_response_time(&self) -> f64 {
        assert!(self.is_stable(), "M/M/1 unstable: rho = {}", self.rho());
        1.0 / (self.mu - self.lambda)
    }

    /// Mean number in system `E[N] = ρ/(1 − ρ)`.
    pub fn mean_number_in_system(&self) -> f64 {
        let rho = self.rho();
        assert!(rho < 1.0, "M/M/1 unstable: rho = {rho}");
        rho / (1.0 - rho)
    }

    /// Stationary P(N = n) = (1 − ρ) ρⁿ.
    pub fn prob_n(&self, n: u64) -> f64 {
        let rho = self.rho();
        assert!(rho < 1.0);
        (1.0 - rho) * rho.powi(n as i32)
    }

    /// First three raw moments of the busy period (time from an arrival to
    /// an empty system until the system next empties). Requires stability
    /// and `λ ≥ 0`; for `λ = 0` the busy period is a bare service time.
    pub fn busy_period_moments(&self) -> Moments {
        assert!(self.is_stable(), "busy period undefined for rho >= 1");
        let mu = self.mu;
        let rho = self.rho();
        let om = 1.0 - rho;
        Moments::new(
            1.0 / (mu * om),
            2.0 / (mu * mu * om.powi(3)),
            6.0 * (1.0 + rho) / (mu * mu * mu * om.powi(5)),
        )
    }

    /// Laplace–Stieltjes transform of the busy period, `E[e^{-sB}]`, valid
    /// for `s ≥ 0`. For `λ = 0` this degenerates to the service LST
    /// `µ/(µ+s)`.
    pub fn busy_period_lst(&self, s: f64) -> f64 {
        assert!(s >= 0.0);
        if self.lambda == 0.0 {
            return self.mu / (self.mu + s);
        }
        let a = self.lambda + self.mu + s;
        (a - (a * a - 4.0 * self.lambda * self.mu).sqrt()) / (2.0 * self.lambda)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn textbook_response_time() {
        // λ=1, µ=2: E[T] = 1/(2-1) = 1, E[N] = 1.
        let q = MM1::new(1.0, 2.0);
        assert!((q.mean_response_time() - 1.0).abs() < 1e-14);
        assert!((q.mean_number_in_system() - 1.0).abs() < 1e-14);
    }

    #[test]
    fn littles_law_holds() {
        let q = MM1::new(0.7, 1.0);
        let t = q.mean_response_time();
        let n = q.mean_number_in_system();
        assert!((n - q.lambda() * t).abs() < 1e-12);
    }

    #[test]
    fn stationary_distribution_sums_to_one() {
        let q = MM1::new(0.8, 1.0);
        let total: f64 = (0..2000).map(|n| q.prob_n(n)).sum();
        assert!((total - 1.0).abs() < 1e-12);
        let mean: f64 = (0..2000).map(|n| n as f64 * q.prob_n(n)).sum();
        assert!((mean - q.mean_number_in_system()).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "unstable")]
    fn unstable_queue_panics_on_response_time() {
        MM1::new(2.0, 1.0).mean_response_time();
    }

    #[test]
    fn busy_period_mean_is_classical() {
        // E[B] = 1/(µ-λ).
        let q = MM1::new(0.5, 2.0);
        let m = q.busy_period_moments();
        assert!((m.m1 - 1.0 / 1.5).abs() < 1e-14);
    }

    #[test]
    fn busy_period_cv2_is_one_plus_rho_over_one_minus_rho() {
        for rho in [0.1, 0.3, 0.5, 0.7, 0.9] {
            let q = MM1::new(rho, 1.0);
            let m = q.busy_period_moments();
            let want = (1.0 + rho) / (1.0 - rho);
            assert!(
                (m.cv2() - want).abs() < 1e-10,
                "rho={rho}: cv2 {} vs {want}",
                m.cv2()
            );
        }
    }

    #[test]
    fn busy_period_moments_match_lst_derivatives() {
        // Raw moments are (-1)^n d^n/ds^n B*(s) at s = 0. With
        // B*(s) = (A - sqrt(D))/(2λ), A = λ+µ+s, D = A² - 4λµ, the exact
        // derivatives are B' = (1 - A·D^{-1/2})/(2λ), B'' = 2µ/D^{3/2},
        // B''' = -6µA/D^{5/2}; evaluate them at s = 0 where D = (µ-λ)².
        for (lambda, mu) in [(0.3, 1.0), (0.6, 1.3), (1.8, 2.0), (0.05, 1.0)] {
            let q = MM1::new(lambda, mu);
            let m = q.busy_period_moments();
            let a0 = lambda + mu;
            let d0 = mu - lambda;
            let d1 = (1.0 - a0 / d0) / (2.0 * lambda);
            let d2 = 2.0 * mu / d0.powi(3);
            let d3 = -6.0 * mu * a0 / d0.powi(5);
            assert!(((-d1) - m.m1).abs() / m.m1 < 1e-12, "λ={lambda} µ={mu}: m1");
            assert!((d2 - m.m2).abs() / m.m2 < 1e-12, "λ={lambda} µ={mu}: m2");
            assert!(((-d3) - m.m3).abs() / m.m3 < 1e-12, "λ={lambda} µ={mu}: m3");
        }
    }

    #[test]
    fn busy_period_mean_matches_numerical_lst_slope() {
        // One genuinely independent numerical check at moderate load, where
        // the finite-difference bias is negligible.
        let q = MM1::new(0.4, 1.0);
        let h = 1e-6;
        let slope = (q.busy_period_lst(2.0 * h) - q.busy_period_lst(0.0)) / (2.0 * h);
        let m1 = q.busy_period_moments().m1;
        assert!(
            ((-slope) - m1).abs() / m1 < 1e-3,
            "slope {slope} vs m1 {m1}"
        );
    }

    #[test]
    fn busy_period_lst_at_zero_is_one() {
        let q = MM1::new(0.4, 1.0);
        assert!((q.busy_period_lst(0.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zero_arrival_busy_period_is_service_time() {
        let q = MM1::new(0.0, 3.0);
        let m = q.busy_period_moments();
        assert!((m.m1 - 1.0 / 3.0).abs() < 1e-14);
        assert!((m.cv2() - 1.0).abs() < 1e-12);
        assert!((q.busy_period_lst(1.0) - 3.0 / 4.0).abs() < 1e-14);
    }
}
