//! Raw moments and derived statistics of nonnegative random variables.

/// The first three raw moments `E[X]`, `E[X^2]`, `E[X^3]` of a nonnegative
/// random variable.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Moments {
    /// First raw moment `E[X]`.
    pub m1: f64,
    /// Second raw moment `E[X^2]`.
    pub m2: f64,
    /// Third raw moment `E[X^3]`.
    pub m3: f64,
}

impl Moments {
    /// Bundles three raw moments.
    pub fn new(m1: f64, m2: f64, m3: f64) -> Self {
        Self { m1, m2, m3 }
    }

    /// Variance `E[X^2] - E[X]^2`.
    pub fn variance(&self) -> f64 {
        self.m2 - self.m1 * self.m1
    }

    /// Squared coefficient of variation `Var[X] / E[X]^2`.
    pub fn cv2(&self) -> f64 {
        self.variance() / (self.m1 * self.m1)
    }

    /// Normalized second moment `m2 / m1^2` (Osogami–Harchol-Balter's `m_2`).
    pub fn normalized_m2(&self) -> f64 {
        self.m2 / (self.m1 * self.m1)
    }

    /// Normalized third moment `m3 / (m1 · m2)` (OH's `m_3`).
    pub fn normalized_m3(&self) -> f64 {
        self.m3 / (self.m1 * self.m2)
    }

    /// Estimates raw moments from data.
    pub fn from_samples(samples: &[f64]) -> Self {
        assert!(
            !samples.is_empty(),
            "cannot estimate moments of an empty sample"
        );
        let n = samples.len() as f64;
        let mut s1 = 0.0;
        let mut s2 = 0.0;
        let mut s3 = 0.0;
        for &x in samples {
            s1 += x;
            s2 += x * x;
            s3 += x * x * x;
        }
        Self {
            m1: s1 / n,
            m2: s2 / n,
            m3: s3 / n,
        }
    }

    /// `true` when the moments could belong to a nonnegative random
    /// variable and are suitable inputs for phase-type fitting: positive,
    /// ordered by Jensen (`m2 ≥ m1^2`, `m3 ≥ m2^2/m1` by Cauchy–Schwarz on
    /// `X^{1/2}·X^{3/2}`).
    pub fn is_feasible(&self) -> bool {
        self.m1 > 0.0 && self.m2 >= self.m1 * self.m1 && self.m1 * self.m3 >= self.m2 * self.m2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exponential_moments_have_cv2_one() {
        // Exp(rate 2): m1 = 1/2, m2 = 2/4, m3 = 6/8.
        let m = Moments::new(0.5, 0.5, 0.75);
        assert!((m.cv2() - 1.0).abs() < 1e-12);
        assert!(m.is_feasible());
    }

    #[test]
    fn from_samples_recovers_deterministic() {
        let m = Moments::from_samples(&[2.0, 2.0, 2.0]);
        assert_eq!(m.m1, 2.0);
        assert_eq!(m.m2, 4.0);
        assert_eq!(m.m3, 8.0);
        assert!(m.variance().abs() < 1e-12);
    }

    #[test]
    fn infeasible_moments_are_rejected() {
        // m2 < m1^2 violates Jensen.
        assert!(!Moments::new(1.0, 0.5, 1.0).is_feasible());
        // m3 too small violates Cauchy–Schwarz.
        assert!(!Moments::new(1.0, 2.0, 1.0).is_feasible());
    }

    #[test]
    fn normalized_moments() {
        let m = Moments::new(2.0, 12.0, 120.0);
        assert!((m.normalized_m2() - 3.0).abs() < 1e-12);
        assert!((m.normalized_m3() - 5.0).abs() < 1e-12);
    }
}
