//! General (continuous) phase-type distributions.
//!
//! A phase-type (PH) distribution is the absorption time of a CTMC with
//! transient phases `1..p`, initial distribution `α`, and sub-generator
//! `T` (absorption rates are the deficit `t⁰ = −T·1`). PH distributions
//! are the general machinery behind the two-phase Coxian used by the
//! busy-period transformation; this module provides the full class so
//! downstream users can plug richer fits into the same chains:
//!
//! * raw moments in closed form, `E[Xⁿ] = n!·α(−T)⁻ⁿ·1`,
//! * survival function via uniformization, `P(X > t) = α·e^{Tt}·1`,
//! * exact sampling by simulating the phase process.

use crate::moments::Moments;
use eirs_numerics::lu::LuDecomposition;
use eirs_numerics::Matrix;
use rand::RngCore;

/// A continuous phase-type distribution `PH(α, T)`.
#[derive(Debug, Clone)]
pub struct PhaseType {
    alpha: Vec<f64>,
    t: Matrix,
    /// Absorption rate from each phase: `t0 = −T·1`.
    exit: Vec<f64>,
}

impl PhaseType {
    /// Builds and validates `PH(α, T)`: `α ≥ 0` summing to 1 (no atom at
    /// zero), `T` square with nonnegative off-diagonals, negative
    /// diagonals, and nonpositive row sums with at least one strictly
    /// negative (so absorption is reachable).
    pub fn new(alpha: Vec<f64>, t: Matrix) -> Self {
        let p = alpha.len();
        assert!(p > 0, "need at least one phase");
        assert!(t.is_square() && t.rows() == p, "T must be p x p");
        let total: f64 = alpha.iter().sum();
        assert!(
            (total - 1.0).abs() < 1e-9,
            "alpha must sum to 1, got {total}"
        );
        assert!(alpha.iter().all(|&a| a >= 0.0));
        let mut exit = Vec::with_capacity(p);
        for i in 0..p {
            assert!(
                t[(i, i)] < 0.0,
                "diagonal of T must be negative (phase {i})"
            );
            let mut row_sum = 0.0;
            for j in 0..p {
                if i != j {
                    assert!(t[(i, j)] >= 0.0, "off-diagonal T[{i},{j}] must be >= 0");
                }
                row_sum += t[(i, j)];
            }
            assert!(row_sum <= 1e-12, "row {i} of T sums to {row_sum} > 0");
            exit.push((-row_sum).max(0.0));
        }
        Self { alpha, t, exit }
    }

    /// `Exp(rate)` as a single-phase PH.
    pub fn exponential(rate: f64) -> Self {
        assert!(rate > 0.0);
        Self::new(vec![1.0], Matrix::from_rows(&[&[-rate]]))
    }

    /// Erlang(`shape`, `rate`) as a chain of phases.
    pub fn erlang(shape: usize, rate: f64) -> Self {
        assert!(shape >= 1 && rate > 0.0);
        let mut t = Matrix::zeros(shape, shape);
        for i in 0..shape {
            t[(i, i)] = -rate;
            if i + 1 < shape {
                t[(i, i + 1)] = rate;
            }
        }
        let mut alpha = vec![0.0; shape];
        alpha[0] = 1.0;
        Self::new(alpha, t)
    }

    /// A two-phase Coxian as a PH.
    pub fn from_coxian2(cox: &crate::coxian::Coxian2) -> Self {
        let (mu1, mu2, q) = (cox.mu1(), cox.mu2(), cox.q());
        let t = Matrix::from_rows(&[&[-mu1, q * mu1], &[0.0, -mu2]]);
        Self::new(vec![1.0, 0.0], t)
    }

    /// Hyperexponential mixture `(p_i, rate_i)` as a parallel PH.
    pub fn hyperexponential(probs: &[f64], rates: &[f64]) -> Self {
        assert_eq!(probs.len(), rates.len());
        let p = probs.len();
        let mut t = Matrix::zeros(p, p);
        for (i, &r) in rates.iter().enumerate() {
            assert!(r > 0.0);
            t[(i, i)] = -r;
        }
        Self::new(probs.to_vec(), t)
    }

    /// Number of phases.
    pub fn phases(&self) -> usize {
        self.alpha.len()
    }

    /// The initial phase distribution `α`.
    pub fn initial_distribution(&self) -> &[f64] {
        &self.alpha
    }

    /// The sub-generator `T` (absorption rates are `t⁰ = −T·1`).
    pub fn sub_generator(&self) -> &Matrix {
        &self.t
    }

    /// The same distribution served `speed` times faster: `PH(α, speed·T)`,
    /// so every moment scales by `1/speedⁿ`. This is how an elastic job's
    /// phase-type size becomes a completion-time distribution on `k`
    /// servers.
    pub fn time_scaled(&self, speed: f64) -> Self {
        assert!(speed > 0.0 && speed.is_finite());
        let mut t = self.t.clone();
        for v in t.as_mut_slice() {
            *v *= speed;
        }
        Self::new(self.alpha.clone(), t)
    }

    /// Raw moments `E[X], E[X²], E[X³]` via `E[Xⁿ] = n!·α(−T)⁻ⁿ·1`,
    /// computed with repeated linear solves (no explicit inverse).
    pub fn moments(&self) -> Moments {
        let neg_t = -&self.t;
        let lu = LuDecomposition::new(&neg_t).expect("T is nonsingular by construction");
        // v1 = (−T)^{-1} 1 ; v2 = (−T)^{-1} v1 ; v3 = (−T)^{-1} v2.
        let ones = vec![1.0; self.phases()];
        let v1 = lu.solve(&ones).expect("solve");
        let v2 = lu.solve(&v1).expect("solve");
        let v3 = lu.solve(&v2).expect("solve");
        let dot = |v: &[f64]| -> f64 { self.alpha.iter().zip(v).map(|(a, x)| a * x).sum() };
        Moments::new(dot(&v1), 2.0 * dot(&v2), 6.0 * dot(&v3))
    }

    /// Mean `E[X]`.
    pub fn mean(&self) -> f64 {
        self.moments().m1
    }

    /// Survival function `P(X > t) = α·e^{Tt}·1` by uniformization.
    pub fn survival(&self, time: f64) -> f64 {
        assert!(time >= 0.0);
        if time == 0.0 {
            return 1.0;
        }
        let p = self.phases();
        let lam = (0..p).map(|i| -self.t[(i, i)]).fold(0.0, f64::max) * 1.000001;
        // Substochastic DTMC step: v ← v (I + T/Λ), applied to α.
        let step = |v: &[f64]| -> Vec<f64> {
            let mut out = vec![0.0; p];
            for (i, &mass) in v.iter().enumerate() {
                if mass == 0.0 {
                    continue;
                }
                for (j, slot) in out.iter_mut().enumerate() {
                    let entry = if i == j {
                        1.0 + self.t[(i, i)] / lam
                    } else {
                        self.t[(i, j)] / lam
                    };
                    if entry != 0.0 {
                        *slot += mass * entry;
                    }
                }
            }
            out
        };
        let lt = lam * time;
        let mut log_pmf = -lt;
        let mut v = self.alpha.clone();
        let mut acc = 0.0;
        let mut weight_acc = 0.0;
        let mut k = 0u64;
        loop {
            let w = log_pmf.exp();
            let alive: f64 = v.iter().sum();
            acc += w * alive;
            weight_acc += w;
            if 1.0 - weight_acc < 1e-13 || alive < 1e-300 {
                break;
            }
            k += 1;
            log_pmf += lt.ln() - (k as f64).ln();
            v = step(&v);
            if k as f64 > lt + 12.0 * lt.sqrt() + 64.0 {
                break;
            }
        }
        acc.clamp(0.0, 1.0)
    }

    /// Draws one value by simulating the phase process.
    pub fn sample(&self, rng: &mut dyn RngCore) -> f64 {
        use crate::distributions::exp_inverse_cdf;
        // Pick the initial phase.
        let u: f64 = rand::Rng::random(&mut *rng);
        let mut phase = self.alpha.len() - 1;
        let mut cum = 0.0;
        for (i, &a) in self.alpha.iter().enumerate() {
            cum += a;
            if u < cum {
                phase = i;
                break;
            }
        }
        let mut total = 0.0;
        loop {
            let hold = -self.t[(phase, phase)];
            total += exp_inverse_cdf(crate::distributions::uniform_open01(rng), hold);
            // Choose the next phase or absorption.
            let pick: f64 = rand::Rng::random(&mut *rng);
            let mut threshold = self.exit[phase] / hold;
            if pick < threshold {
                return total;
            }
            let mut next = phase;
            for j in 0..self.phases() {
                if j == phase {
                    continue;
                }
                threshold += self.t[(phase, j)] / hold;
                if pick < threshold {
                    next = j;
                    break;
                }
            }
            assert_ne!(next, phase, "no outgoing transition chosen");
            phase = next;
        }
    }
}

/// Phase-type distributions plug straight into the simulator as job-size
/// distributions: exact sampling by phase simulation, closed-form moments.
/// This is the bridge the workload scenario engine uses for Coxian /
/// Erlang / hyperexponential *service* in the DES.
impl crate::distributions::SizeDistribution for PhaseType {
    fn sample(&self, rng: &mut dyn RngCore) -> f64 {
        PhaseType::sample(self, rng)
    }

    fn mean(&self) -> f64 {
        PhaseType::mean(self)
    }

    fn moments(&self) -> Moments {
        PhaseType::moments(self)
    }

    fn label(&self) -> String {
        format!("PH({} phases, mean={:.3})", self.phases(), self.mean())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn exponential_ph_moments() {
        let ph = PhaseType::exponential(2.0);
        let m = ph.moments();
        assert!((m.m1 - 0.5).abs() < 1e-12);
        assert!((m.m2 - 0.5).abs() < 1e-12);
        assert!((m.m3 - 0.75).abs() < 1e-12);
    }

    #[test]
    fn erlang_ph_moments_match_distribution_module() {
        let ph = PhaseType::erlang(3, 1.5);
        let reference = crate::distributions::SizeDistribution::moments(
            &crate::distributions::Erlang::new(3, 1.5),
        );
        let m = ph.moments();
        assert!((m.m1 - reference.m1).abs() < 1e-12);
        assert!((m.m2 - reference.m2).abs() < 1e-12);
        assert!((m.m3 - reference.m3).abs() < 1e-12);
    }

    #[test]
    fn coxian_conversion_preserves_moments() {
        let cox = crate::coxian::Coxian2::new(2.0, 0.5, 0.3);
        let ph = PhaseType::from_coxian2(&cox);
        let want = cox.moments();
        let got = ph.moments();
        assert!((got.m1 - want.m1).abs() < 1e-12);
        assert!((got.m2 - want.m2).abs() < 1e-12);
        assert!((got.m3 - want.m3).abs() < 1e-12);
    }

    #[test]
    fn hyperexponential_ph_moments() {
        let probs = [0.3, 0.7];
        let rates = [0.5, 2.0];
        let ph = PhaseType::hyperexponential(&probs, &rates);
        let want = crate::distributions::SizeDistribution::moments(
            &crate::distributions::HyperExponential::new(probs.to_vec(), rates.to_vec()),
        );
        let got = ph.moments();
        assert!((got.m1 - want.m1).abs() < 1e-12);
        assert!((got.m2 - want.m2).abs() < 1e-10);
    }

    #[test]
    fn exponential_survival_is_closed_form() {
        let ph = PhaseType::exponential(1.5);
        for t in [0.0, 0.2, 1.0, 3.0] {
            let want = (-1.5f64 * t).exp();
            let got = ph.survival(t);
            assert!((got - want).abs() < 1e-9, "t={t}: {got} vs {want}");
        }
    }

    #[test]
    fn erlang_survival_is_poisson_tail() {
        // P(Erlang(2, r) > t) = e^{-rt}(1 + rt).
        let r = 2.0;
        let ph = PhaseType::erlang(2, r);
        for t in [0.1, 0.5, 1.0, 2.5] {
            let want = (-r * t).exp() * (1.0 + r * t);
            let got = ph.survival(t);
            assert!((got - want).abs() < 1e-9, "t={t}: {got} vs {want}");
        }
    }

    #[test]
    fn survival_is_monotone_and_bounded() {
        let cox = crate::coxian::Coxian2::new(1.0, 3.0, 0.6);
        let ph = PhaseType::from_coxian2(&cox);
        let mut last = 1.0;
        for t in [0.0, 0.5, 1.0, 2.0, 4.0, 8.0] {
            let s = ph.survival(t);
            assert!((0.0..=1.0).contains(&s));
            assert!(s <= last + 1e-12, "survival must be nonincreasing");
            last = s;
        }
    }

    #[test]
    fn sampling_mean_matches_analytic() {
        let ph = PhaseType::erlang(4, 2.0);
        let mut rng = StdRng::seed_from_u64(11);
        let n = 200_000;
        let mut acc = 0.0;
        for _ in 0..n {
            acc += ph.sample(&mut rng);
        }
        let emp = acc / n as f64;
        assert!((emp - 2.0).abs() < 0.02, "{emp}");
    }

    #[test]
    fn time_scaling_divides_moments() {
        let ph = PhaseType::erlang(3, 2.0);
        let fast = ph.time_scaled(4.0);
        let (m, f) = (ph.moments(), fast.moments());
        assert!((f.m1 - m.m1 / 4.0).abs() < 1e-12);
        assert!((f.m2 - m.m2 / 16.0).abs() < 1e-12);
        assert!((f.m3 - m.m3 / 64.0).abs() < 1e-12);
    }

    #[test]
    fn size_distribution_impl_exposes_ph_machinery() {
        use crate::distributions::SizeDistribution;
        let ph: Box<dyn SizeDistribution> = Box::new(PhaseType::erlang(2, 4.0));
        assert!((ph.mean() - 0.5).abs() < 1e-12);
        assert!(ph.label().starts_with("PH(2 phases"));
        let mut rng = StdRng::seed_from_u64(3);
        let n = 50_000;
        let emp: f64 = (0..n).map(|_| ph.sample(&mut rng)).sum::<f64>() / n as f64;
        assert!((emp - 0.5).abs() < 0.01, "{emp}");
    }

    #[test]
    #[should_panic(expected = "alpha must sum to 1")]
    fn rejects_bad_alpha() {
        PhaseType::new(
            vec![0.5, 0.4],
            Matrix::from_rows(&[&[-1.0, 0.0], &[0.0, -1.0]]),
        );
    }

    #[test]
    #[should_panic(expected = "diagonal of T must be negative")]
    fn rejects_bad_diagonal() {
        PhaseType::new(vec![1.0], Matrix::from_rows(&[&[0.0]]));
    }
}
