//! Job-size distributions for analysis and simulation.
//!
//! The optimality proofs of the paper assume exponential sizes, but the
//! Theorem 3 sample-path argument is distribution-free; the simulator
//! therefore accepts any [`SizeDistribution`]. All samplers draw from a
//! caller-supplied RNG so that coupled experiments can replay identical
//! randomness across policies.

use crate::moments::Moments;
use rand::RngCore;

/// A nonnegative job-size distribution: sampling plus closed-form moments.
pub trait SizeDistribution: Send + Sync + std::fmt::Debug {
    /// Draws one size.
    fn sample(&self, rng: &mut dyn RngCore) -> f64;

    /// Mean size `E[S]`.
    fn mean(&self) -> f64;

    /// First three raw moments.
    fn moments(&self) -> Moments;

    /// Short human-readable name for reports.
    fn label(&self) -> String;
}

/// Uniform draw in the open interval `(0, 1)`, safe for `-ln(u)`.
#[inline]
pub fn uniform_open01(rng: &mut dyn RngCore) -> f64 {
    // `random::<f64>()` yields values in [0, 1); reflect to (0, 1].. then the
    // complement keeps us away from both endpoints in practice.
    let u: f64 = rand::Rng::random(&mut *rng);
    // Map 0.0 (possible) to a tiny positive value instead of -inf logs.
    if u <= 0.0 {
        f64::MIN_POSITIVE
    } else {
        u
    }
}

/// The exponential inverse CDF `F⁻¹(1−u) = −ln(u)/rate` for `u ∈ (0, 1]`.
///
/// Every exponential sampler in the workspace — job sizes, Poisson and MAP
/// interarrival times, phase-type holding times — funnels through this one
/// helper so the trace, MAP, and Poisson paths stay numerically consistent
/// (callers choose how they map raw uniforms into `(0, 1]`, which keeps
/// their historical bit-exact streams intact).
#[inline]
pub fn exp_inverse_cdf(u: f64, rate: f64) -> f64 {
    debug_assert!(u > 0.0 && u <= 1.0, "u = {u} outside (0, 1]");
    debug_assert!(rate > 0.0, "rate = {rate} must be positive");
    -u.ln() / rate
}

/// Exponential distribution with the given rate (mean `1/rate`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exponential {
    rate: f64,
}

impl Exponential {
    /// Exponential with rate `rate > 0`.
    pub fn new(rate: f64) -> Self {
        assert!(
            rate > 0.0 && rate.is_finite(),
            "rate must be positive, got {rate}"
        );
        Self { rate }
    }

    /// Exponential with mean `mean > 0`.
    pub fn with_mean(mean: f64) -> Self {
        Self::new(1.0 / mean)
    }

    /// The rate parameter.
    pub fn rate(&self) -> f64 {
        self.rate
    }
}

impl SizeDistribution for Exponential {
    fn sample(&self, rng: &mut dyn RngCore) -> f64 {
        exp_inverse_cdf(uniform_open01(rng), self.rate)
    }

    fn mean(&self) -> f64 {
        1.0 / self.rate
    }

    fn moments(&self) -> Moments {
        let m = 1.0 / self.rate;
        Moments::new(m, 2.0 * m * m, 6.0 * m * m * m)
    }

    fn label(&self) -> String {
        format!("Exp(rate={})", self.rate)
    }
}

/// Deterministic (point-mass) size.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Deterministic {
    value: f64,
}

impl Deterministic {
    /// Point mass at `value ≥ 0`.
    pub fn new(value: f64) -> Self {
        assert!(value >= 0.0 && value.is_finite());
        Self { value }
    }
}

impl SizeDistribution for Deterministic {
    fn sample(&self, _rng: &mut dyn RngCore) -> f64 {
        self.value
    }

    fn mean(&self) -> f64 {
        self.value
    }

    fn moments(&self) -> Moments {
        Moments::new(self.value, self.value.powi(2), self.value.powi(3))
    }

    fn label(&self) -> String {
        format!("Det({})", self.value)
    }
}

/// Continuous uniform on `[lo, hi]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UniformSize {
    lo: f64,
    hi: f64,
}

impl UniformSize {
    /// Uniform on `[lo, hi]`, `0 ≤ lo < hi`.
    pub fn new(lo: f64, hi: f64) -> Self {
        assert!(lo >= 0.0 && hi > lo && hi.is_finite());
        Self { lo, hi }
    }
}

impl SizeDistribution for UniformSize {
    fn sample(&self, rng: &mut dyn RngCore) -> f64 {
        let u: f64 = rand::Rng::random(&mut *rng);
        self.lo + u * (self.hi - self.lo)
    }

    fn mean(&self) -> f64 {
        0.5 * (self.lo + self.hi)
    }

    fn moments(&self) -> Moments {
        // E[X^n] = (hi^{n+1} - lo^{n+1}) / ((n+1)(hi - lo)).
        let span = self.hi - self.lo;
        let p = |n: i32| (self.hi.powi(n + 1) - self.lo.powi(n + 1)) / ((n + 1) as f64 * span);
        Moments::new(p(1), p(2), p(3))
    }

    fn label(&self) -> String {
        format!("Uniform[{}, {}]", self.lo, self.hi)
    }
}

/// Erlang distribution: sum of `shape` i.i.d. exponentials with rate `rate`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Erlang {
    shape: u32,
    rate: f64,
}

impl Erlang {
    /// Erlang with integer shape `shape ≥ 1` and rate `rate > 0`.
    pub fn new(shape: u32, rate: f64) -> Self {
        assert!(shape >= 1);
        assert!(rate > 0.0 && rate.is_finite());
        Self { shape, rate }
    }
}

impl SizeDistribution for Erlang {
    fn sample(&self, rng: &mut dyn RngCore) -> f64 {
        // Product-of-uniforms form: -ln(Π u_i)/rate needs one log.
        let mut prod = 1.0;
        for _ in 0..self.shape {
            prod *= uniform_open01(rng);
        }
        exp_inverse_cdf(prod.max(f64::MIN_POSITIVE), self.rate)
    }

    fn mean(&self) -> f64 {
        self.shape as f64 / self.rate
    }

    fn moments(&self) -> Moments {
        let n = self.shape as f64;
        let r = self.rate;
        Moments::new(
            n / r,
            n * (n + 1.0) / (r * r),
            n * (n + 1.0) * (n + 2.0) / (r * r * r),
        )
    }

    fn label(&self) -> String {
        format!("Erlang(shape={}, rate={})", self.shape, self.rate)
    }
}

/// Hyperexponential: a probabilistic mixture of exponentials (CV² ≥ 1).
#[derive(Debug, Clone, PartialEq)]
pub struct HyperExponential {
    probs: Vec<f64>,
    rates: Vec<f64>,
}

impl HyperExponential {
    /// Mixture with branch probabilities `probs` (summing to 1) and branch
    /// rates `rates`.
    pub fn new(probs: Vec<f64>, rates: Vec<f64>) -> Self {
        assert_eq!(probs.len(), rates.len());
        assert!(!probs.is_empty());
        let total: f64 = probs.iter().sum();
        assert!(
            (total - 1.0).abs() < 1e-9,
            "probabilities must sum to 1, got {total}"
        );
        assert!(probs.iter().all(|&p| p >= 0.0));
        assert!(rates.iter().all(|&r| r > 0.0));
        Self { probs, rates }
    }

    /// Balanced two-branch hyperexponential with the given mean and CV² ≥ 1
    /// ("balanced means" parameterization: `p1/µ1 = p2/µ2`).
    pub fn balanced(mean: f64, cv2: f64) -> Self {
        assert!(mean > 0.0);
        assert!(cv2 >= 1.0, "hyperexponential needs CV^2 >= 1, got {cv2}");
        if (cv2 - 1.0).abs() < 1e-12 {
            return Self::new(vec![1.0], vec![1.0 / mean]);
        }
        let p1 = 0.5 * (1.0 + ((cv2 - 1.0) / (cv2 + 1.0)).sqrt());
        let p2 = 1.0 - p1;
        let r1 = 2.0 * p1 / mean;
        let r2 = 2.0 * p2 / mean;
        Self::new(vec![p1, p2], vec![r1, r2])
    }
}

impl SizeDistribution for HyperExponential {
    fn sample(&self, rng: &mut dyn RngCore) -> f64 {
        let u: f64 = rand::Rng::random(&mut *rng);
        let mut acc = 0.0;
        for (p, r) in self.probs.iter().zip(&self.rates) {
            acc += p;
            if u < acc {
                return exp_inverse_cdf(uniform_open01(rng), *r);
            }
        }
        let r = *self.rates.last().expect("non-empty");
        exp_inverse_cdf(uniform_open01(rng), r)
    }

    fn mean(&self) -> f64 {
        self.probs.iter().zip(&self.rates).map(|(p, r)| p / r).sum()
    }

    fn moments(&self) -> Moments {
        let mut m = [0.0; 3];
        for (p, r) in self.probs.iter().zip(&self.rates) {
            let mean = 1.0 / r;
            m[0] += p * mean;
            m[1] += p * 2.0 * mean * mean;
            m[2] += p * 6.0 * mean * mean * mean;
        }
        Moments::new(m[0], m[1], m[2])
    }

    fn label(&self) -> String {
        format!("H{}(mean={:.3})", self.probs.len(), self.mean())
    }
}

/// Bounded Pareto on `[lo, hi]` with tail index `alpha` — the classic
/// high-variability workload model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoundedPareto {
    alpha: f64,
    lo: f64,
    hi: f64,
}

impl BoundedPareto {
    /// Bounded Pareto with shape `alpha > 0` on `[lo, hi]`, `0 < lo < hi`.
    pub fn new(alpha: f64, lo: f64, hi: f64) -> Self {
        assert!(alpha > 0.0 && lo > 0.0 && hi > lo);
        Self { alpha, lo, hi }
    }

    fn raw_moment(&self, n: f64) -> f64 {
        let a = self.alpha;
        let (l, h) = (self.lo, self.hi);
        let norm = 1.0 - (l / h).powf(a);
        if (n - a).abs() < 1e-12 {
            // Degenerate n == alpha: the integral is logarithmic.
            a * l.powf(a) * (h / l).ln() / norm
        } else {
            a * l.powf(a) / norm * (h.powf(n - a) - l.powf(n - a)) / (n - a)
        }
    }
}

impl SizeDistribution for BoundedPareto {
    fn sample(&self, rng: &mut dyn RngCore) -> f64 {
        // Inverse CDF: F(x) = (1 - (lo/x)^a) / (1 - (lo/hi)^a).
        let u: f64 = rand::Rng::random(&mut *rng);
        let a = self.alpha;
        let tail = (self.lo / self.hi).powf(a);
        let base = 1.0 - u * (1.0 - tail);
        self.lo / base.powf(1.0 / a)
    }

    fn mean(&self) -> f64 {
        self.raw_moment(1.0)
    }

    fn moments(&self) -> Moments {
        Moments::new(
            self.raw_moment(1.0),
            self.raw_moment(2.0),
            self.raw_moment(3.0),
        )
    }

    fn label(&self) -> String {
        format!("BP(alpha={}, [{}, {}])", self.alpha, self.lo, self.hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const N: usize = 200_000;

    fn empirical_mean(dist: &dyn SizeDistribution, seed: u64) -> f64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut acc = 0.0;
        for _ in 0..N {
            acc += dist.sample(&mut rng);
        }
        acc / N as f64
    }

    #[test]
    fn exponential_sample_mean_matches() {
        let d = Exponential::new(2.5);
        let m = empirical_mean(&d, 1);
        assert!((m - 0.4).abs() < 0.01, "got {m}");
    }

    #[test]
    fn exponential_moments_formulae() {
        let d = Exponential::with_mean(2.0);
        let m = d.moments();
        assert!((m.m1 - 2.0).abs() < 1e-12);
        assert!((m.m2 - 8.0).abs() < 1e-12);
        assert!((m.m3 - 48.0).abs() < 1e-12);
        assert!((m.cv2() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn deterministic_is_constant() {
        let d = Deterministic::new(3.0);
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(d.sample(&mut rng), 3.0);
        assert_eq!(d.moments().variance(), 0.0);
    }

    #[test]
    fn uniform_moments_and_samples() {
        let d = UniformSize::new(1.0, 3.0);
        let m = d.moments();
        assert!((m.m1 - 2.0).abs() < 1e-12);
        assert!((m.m2 - 13.0 / 3.0).abs() < 1e-12);
        assert!((m.m3 - 10.0).abs() < 1e-12);
        let emp = empirical_mean(&d, 2);
        assert!((emp - 2.0).abs() < 0.01);
    }

    #[test]
    fn erlang_moments_and_samples() {
        let d = Erlang::new(3, 1.5);
        let m = d.moments();
        assert!((m.m1 - 2.0).abs() < 1e-12);
        assert!((m.m2 - 12.0 / 2.25).abs() < 1e-12);
        let emp = empirical_mean(&d, 3);
        assert!((emp - 2.0).abs() < 0.02);
        // Erlang(3) has CV^2 = 1/3.
        assert!((m.cv2() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn hyperexponential_balanced_hits_target_mean_and_cv2() {
        for cv2 in [1.0, 2.0, 5.0, 20.0] {
            let d = HyperExponential::balanced(3.0, cv2);
            let m = d.moments();
            assert!((m.m1 - 3.0).abs() < 1e-9, "mean for cv2={cv2}");
            assert!(
                (m.cv2() - cv2).abs() < 1e-9,
                "cv2 for cv2={cv2}: got {}",
                m.cv2()
            );
        }
    }

    #[test]
    fn hyperexponential_sampling_matches_mean() {
        let d = HyperExponential::balanced(1.0, 4.0);
        let emp = empirical_mean(&d, 4);
        assert!((emp - 1.0).abs() < 0.03, "got {emp}");
    }

    #[test]
    fn bounded_pareto_moments_match_samples() {
        let d = BoundedPareto::new(1.5, 1.0, 1000.0);
        let m = d.moments();
        let emp = empirical_mean(&d, 5);
        assert!(
            (emp - m.m1).abs() / m.m1 < 0.05,
            "emp {emp} vs analytic {}",
            m.m1
        );
        assert!(m.cv2() > 1.0);
    }

    #[test]
    fn bounded_pareto_samples_respect_bounds() {
        let d = BoundedPareto::new(2.0, 0.5, 10.0);
        let mut rng = StdRng::seed_from_u64(6);
        for _ in 0..10_000 {
            let x = d.sample(&mut rng);
            assert!((0.5..=10.0).contains(&x), "sample {x} out of bounds");
        }
    }

    #[test]
    fn bounded_pareto_alpha_equal_moment_degenerate_case() {
        // alpha == 2 makes the second raw moment logarithmic.
        let d = BoundedPareto::new(2.0, 1.0, 100.0);
        let m2 = d.moments().m2;
        // Hand computation: a L^a ln(H/L) / (1 - (L/H)^a) = 2 ln(100)/(1-1e-4).
        let expect = 2.0 * (100.0f64).ln() / (1.0 - 1e-4);
        assert!((m2 - expect).abs() < 1e-9);
    }

    #[test]
    fn all_moments_feasible() {
        let dists: Vec<Box<dyn SizeDistribution>> = vec![
            Box::new(Exponential::new(1.0)),
            Box::new(UniformSize::new(0.0, 2.0)),
            Box::new(Erlang::new(4, 2.0)),
            Box::new(HyperExponential::balanced(1.0, 9.0)),
            Box::new(BoundedPareto::new(1.2, 0.1, 50.0)),
        ];
        for d in &dists {
            assert!(
                d.moments().is_feasible(),
                "{} produced infeasible moments",
                d.label()
            );
        }
    }
}
