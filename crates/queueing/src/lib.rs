//! Classical queueing substrate for the `eirs` reproduction.
//!
//! Berg et al. (SPAA 2020) lean on three classical ingredients that this
//! crate provides from scratch:
//!
//! * **M/M/1 theory** ([`mm1`]) — Elastic-First serves elastic jobs as an
//!   M/M/1 with service rate `k·µ_E`; both busy-period transformations need
//!   the first three moments of the M/M/1 busy period.
//! * **M/M/k theory** ([`mmk`]) — under Inelastic-First the inelastic class
//!   is exactly an M/M/k (Erlang-C).
//! * **Phase-type machinery** ([`distributions`], [`coxian`]) — the
//!   busy-period transformation of Section 5.2 replaces a 2D-infinite region
//!   of the Markov chain by a two-phase Coxian matched to the first three
//!   busy-period moments (in the closed-form style of Osogami &
//!   Harchol-Balter 2006).
//!
//! The [`distributions`] module also backs the discrete-event simulator with
//! a small library of job-size distributions (the sample-path results of the
//! paper are distribution-free, and the tests exercise that), and [`map`]
//! provides Markovian arrival processes for the workload scenario engine.
//!
//! # Example: classical formulas and their phase-type generalizations
//!
//! ```
//! use eirs_queueing::{MapProcess, PhaseType, MM1};
//!
//! // M/M/1 at load 1/2: E[T] = 1/(µ − λ) = 2.
//! let queue = MM1::new(0.5, 1.0);
//! assert!((queue.mean_response_time() - 2.0).abs() < 1e-12);
//!
//! // A one-phase MAP *is* the Poisson process — same rate, bit for bit.
//! let poisson = MapProcess::poisson(0.5);
//! assert_eq!(poisson.arrival_rate().to_bits(), 0.5f64.to_bits());
//!
//! // Erlang(3) as a phase-type distribution: mean 3/rate, CV² = 1/3.
//! let erlang = PhaseType::erlang(3, 1.5);
//! let moments = erlang.moments();
//! assert!((moments.m1 - 2.0).abs() < 1e-12);
//! assert!((moments.cv2() - 1.0 / 3.0).abs() < 1e-12);
//! ```

pub mod coxian;
pub mod distributions;
pub mod map;
pub mod mm1;
pub mod mmk;
pub mod moments;
pub mod phase_type;

pub use coxian::{fit_coxian2, Coxian2, CoxianFitError};
pub use distributions::{
    exp_inverse_cdf, BoundedPareto, Deterministic, Erlang, Exponential, HyperExponential,
    SizeDistribution, UniformSize,
};
pub use map::{MapError, MapProcess};
pub use mm1::MM1;
pub use mmk::MMk;
pub use moments::Moments;
pub use phase_type::PhaseType;
