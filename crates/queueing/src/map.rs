//! Markovian arrival processes (MAPs).
//!
//! A MAP generalizes the Poisson process with a hidden phase: a CTMC on
//! `p` phases whose transitions are split into a matrix `D0` of *silent*
//! phase changes and a matrix `D1` of *arrival-generating* transitions
//! (`D0 + D1` is a conservative generator). Poisson is the one-phase
//! special case (`D0 = [-λ]`, `D1 = [λ]`); the Markov-modulated Poisson
//! process (MMPP) is the diagonal-`D1` case where arrivals never move the
//! phase. MAPs produce correlated, bursty interarrival times while staying
//! analytically tractable — the workload scenario engine pairs them with
//! phase-type service into MAP/PH/1 QBD chains (see `eirs_markov::qbd`)
//! and cross-checks those chains against the discrete-event simulator.

use eirs_numerics::lu::LuDecomposition;
use eirs_numerics::Matrix;

/// A validated MAP `(D0, D1)` on `p ≥ 1` phases.
///
/// `D1 ≥ 0` elementwise, `D0` has nonnegative off-diagonals and strictly
/// negative diagonals, and every row of `D0 + D1` sums to zero.
#[derive(Debug, Clone, PartialEq)]
pub struct MapProcess {
    d0: Matrix,
    d1: Matrix,
}

/// Validation failures when building a [`MapProcess`].
#[derive(Debug, Clone, PartialEq)]
pub enum MapError {
    /// Shapes disagree or `p = 0`.
    Dimension(String),
    /// An entry violated the sign constraints, or a row of `D0 + D1` does
    /// not sum to zero.
    Invalid(String),
}

impl std::fmt::Display for MapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MapError::Dimension(msg) => write!(f, "MAP dimension error: {msg}"),
            MapError::Invalid(msg) => write!(f, "invalid MAP: {msg}"),
        }
    }
}

impl std::error::Error for MapError {}

impl MapProcess {
    /// Builds and validates a MAP from its two rate matrices.
    pub fn new(d0: Matrix, d1: Matrix) -> Result<Self, MapError> {
        let p = d0.rows();
        if p == 0 {
            return Err(MapError::Dimension("need at least one phase".into()));
        }
        if !d0.is_square() || !d1.is_square() || d1.rows() != p {
            return Err(MapError::Dimension(format!(
                "D0 is {}x{}, D1 is {}x{}",
                d0.rows(),
                d0.cols(),
                d1.rows(),
                d1.cols()
            )));
        }
        for a in 0..p {
            let mut row = 0.0;
            for b in 0..p {
                let (v0, v1) = (d0[(a, b)], d1[(a, b)]);
                if !v0.is_finite() || !v1.is_finite() {
                    return Err(MapError::Invalid(format!("non-finite entry in row {a}")));
                }
                if v1 < 0.0 {
                    return Err(MapError::Invalid(format!("D1[{a},{b}] = {v1} < 0")));
                }
                if a != b && v0 < 0.0 {
                    return Err(MapError::Invalid(format!("D0[{a},{b}] = {v0} < 0")));
                }
                row += v0 + v1;
            }
            if row.abs() > 1e-9 {
                return Err(MapError::Invalid(format!(
                    "row {a} of D0 + D1 sums to {row}, expected 0"
                )));
            }
            if d0[(a, a)] >= 0.0 {
                return Err(MapError::Invalid(format!(
                    "D0[{a},{a}] = {} must be negative (every phase needs an exit)",
                    d0[(a, a)]
                )));
            }
        }
        Ok(Self { d0, d1 })
    }

    /// The Poisson process of rate `lambda` as a one-phase MAP. The rate is
    /// stored verbatim, so [`MapProcess::arrival_rate`] returns `lambda`
    /// bit-identically — the degeneracy the scenario property tests pin.
    pub fn poisson(lambda: f64) -> Self {
        assert!(lambda > 0.0 && lambda.is_finite());
        Self {
            d0: Matrix::from_rows(&[&[-lambda]]),
            d1: Matrix::from_rows(&[&[lambda]]),
        }
    }

    /// A two-phase Markov-modulated Poisson process: the phase flips
    /// `0 → 1` at rate `r01` and `1 → 0` at rate `r10`; arrivals are
    /// Poisson at rate `a0` in phase 0 and `a1` in phase 1 and never move
    /// the phase (`D1` diagonal).
    pub fn mmpp2(r01: f64, r10: f64, a0: f64, a1: f64) -> Self {
        assert!(r01 > 0.0 && r10 > 0.0, "modulation rates must be positive");
        assert!(a0 >= 0.0 && a1 >= 0.0 && a0 + a1 > 0.0);
        let d0 = Matrix::from_rows(&[&[-(r01 + a0), r01], &[r10, -(r10 + a1)]]);
        let d1 = Matrix::from_rows(&[&[a0, 0.0], &[0.0, a1]]);
        Self::new(d0, d1).expect("mmpp2 construction is valid by construction")
    }

    /// Number of phases `p`.
    pub fn phases(&self) -> usize {
        self.d0.rows()
    }

    /// The silent-transition matrix `D0`.
    pub fn d0(&self) -> &Matrix {
        &self.d0
    }

    /// The arrival-transition matrix `D1`.
    pub fn d1(&self) -> &Matrix {
        &self.d1
    }

    /// Stationary distribution `π` of the phase process (the generator
    /// `Q = D0 + D1`): solves `πQ = 0`, `Σπ = 1` by dense LU with the last
    /// balance equation replaced by normalization.
    pub fn stationary_phases(&self) -> Vec<f64> {
        let p = self.phases();
        if p == 1 {
            return vec![1.0];
        }
        // Aᵀπ = e_last with A = Q columns 0..p-1 plus the all-ones column.
        let mut a = Matrix::zeros(p, p);
        for row in 0..p {
            for col in 0..p - 1 {
                // Transposed balance equation: Σ_row π_row Q[row][col] = 0.
                a[(col, row)] = self.d0[(row, col)] + self.d1[(row, col)];
            }
            a[(p - 1, row)] = 1.0;
        }
        let mut rhs = vec![0.0; p];
        rhs[p - 1] = 1.0;
        let lu = LuDecomposition::new(&a).expect("irreducible phase generator");
        lu.solve(&rhs).expect("stationary solve")
    }

    /// Stationary arrival rate `λ = π D1 1`. For a one-phase MAP this is
    /// exactly `D1[0,0]` (no arithmetic), so `MapProcess::poisson(λ)`
    /// round-trips `λ` bit-identically.
    pub fn arrival_rate(&self) -> f64 {
        if self.phases() == 1 {
            return self.d1[(0, 0)];
        }
        let pi = self.stationary_phases();
        let mut rate = 0.0;
        for (a, &mass) in pi.iter().enumerate() {
            for b in 0..self.phases() {
                rate += mass * self.d1[(a, b)];
            }
        }
        rate
    }

    /// The same MAP with time run `speed` times faster (`speed·D0`,
    /// `speed·D1`): burst structure and interarrival correlations are
    /// preserved while the arrival rate scales linearly. This is how the
    /// scenario engine normalizes a MAP shape to a target offered load.
    pub fn time_scaled(&self, speed: f64) -> Self {
        assert!(speed > 0.0 && speed.is_finite());
        let scale = |m: &Matrix| {
            let mut out = m.clone();
            for v in out.as_mut_slice() {
                *v *= speed;
            }
            out
        };
        Self {
            d0: scale(&self.d0),
            d1: scale(&self.d1),
        }
    }

    /// Rescales so the stationary arrival rate is exactly `target`
    /// (time scaling by `target / arrival_rate()`).
    pub fn scaled_to_rate(&self, target: f64) -> Self {
        assert!(target > 0.0 && target.is_finite());
        self.time_scaled(target / self.arrival_rate())
    }

    /// Index of dispersion of counts at infinite horizon for an MMPP-2 —
    /// a standard burstiness summary (1 for Poisson, > 1 when modulated).
    /// Only defined for the [`MapProcess::mmpp2`] shape.
    pub fn mmpp2_burstiness(r01: f64, r10: f64, a0: f64, a1: f64) -> f64 {
        let pi0 = r10 / (r01 + r10);
        let pi1 = 1.0 - pi0;
        let lambda = pi0 * a0 + pi1 * a1;
        // Fischer & Meier-Hellstern (1993), asymptotic IDC of the MMPP-2.
        1.0 + 2.0 * pi0 * pi1 * (a0 - a1).powi(2) / (lambda * (r01 + r10))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_round_trips_rate_bit_identically() {
        for lambda in [0.1, 1.0, 2.618_033_988_75, 1234.5] {
            let map = MapProcess::poisson(lambda);
            assert_eq!(map.arrival_rate().to_bits(), lambda.to_bits());
            assert_eq!(map.phases(), 1);
            assert_eq!(map.stationary_phases(), vec![1.0]);
        }
    }

    #[test]
    fn mmpp2_stationary_rate_matches_hand_computation() {
        // π = (r10, r01)/(r01+r10) = (2/3, 1/3); λ = 2/3·9 + 1/3·1 = 19/3.
        let map = MapProcess::mmpp2(1.0, 2.0, 9.0, 1.0);
        let pi = map.stationary_phases();
        assert!((pi[0] - 2.0 / 3.0).abs() < 1e-12, "{pi:?}");
        assert!((pi[1] - 1.0 / 3.0).abs() < 1e-12);
        assert!((map.arrival_rate() - 19.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn scaling_hits_target_rate_and_preserves_shape() {
        let map = MapProcess::mmpp2(1.0, 2.0, 9.0, 1.0);
        let scaled = map.scaled_to_rate(2.5);
        assert!((scaled.arrival_rate() - 2.5).abs() < 1e-12);
        // Phase proportions are unchanged by time scaling.
        let (a, b) = (map.stationary_phases(), scaled.stationary_phases());
        assert!((a[0] - b[0]).abs() < 1e-12);
        // Rate ratio between phases is unchanged.
        let ratio = scaled.d1()[(0, 0)] / scaled.d1()[(1, 1)];
        assert!((ratio - 9.0).abs() < 1e-9);
    }

    #[test]
    fn burstiness_is_one_for_equal_rates_and_grows_with_contrast() {
        let flat = MapProcess::mmpp2_burstiness(1.0, 1.0, 3.0, 3.0);
        assert!((flat - 1.0).abs() < 1e-12);
        let bursty = MapProcess::mmpp2_burstiness(1.0, 1.0, 9.0, 1.0);
        assert!(bursty > 2.0, "{bursty}");
    }

    #[test]
    fn rejects_malformed_maps() {
        // Row sums must cancel.
        assert!(
            MapProcess::new(Matrix::from_rows(&[&[-1.0]]), Matrix::from_rows(&[&[2.0]])).is_err()
        );
        // Negative arrival rates.
        assert!(
            MapProcess::new(Matrix::from_rows(&[&[1.0]]), Matrix::from_rows(&[&[-1.0]])).is_err()
        );
        // Shape mismatch.
        assert!(MapProcess::new(Matrix::zeros(2, 2), Matrix::zeros(1, 1)).is_err());
    }
}
