//! Minimal micro-benchmark timer (criterion is unavailable offline).
//!
//! Methodology: a warm-up pass, then `samples` timed passes of
//! `iters_per_sample` iterations each; the reported statistic is the
//! **median** of per-iteration times (robust to scheduler noise on shared
//! machines), with min/max retained for dispersion. Results print as an
//! aligned table and can be serialized through [`crate::json`].

use std::hint::black_box;
use std::time::Instant;

/// One benchmark measurement.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Benchmark label.
    pub label: String,
    /// Median seconds per iteration.
    pub median_s: f64,
    /// Fastest sample (seconds per iteration).
    pub min_s: f64,
    /// Slowest sample (seconds per iteration).
    pub max_s: f64,
    /// Iterations per sample.
    pub iters: u64,
    /// Timed samples.
    pub samples: u64,
}

impl Measurement {
    /// Human-readable per-iteration time.
    pub fn pretty_time(&self) -> String {
        pretty_seconds(self.median_s)
    }
}

/// Formats seconds adaptively (s / ms / µs / ns).
pub fn pretty_seconds(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.3} µs", s * 1e6)
    } else {
        format!("{:.1} ns", s * 1e9)
    }
}

/// Benchmark runner with fixed sample counts.
#[derive(Debug, Clone)]
pub struct Bench {
    samples: u64,
    results: Vec<Measurement>,
}

impl Default for Bench {
    fn default() -> Self {
        Self::new()
    }
}

/// Warns (once per process, to stderr) when benchmarks are about to run
/// on a single core: parallel-speedup numbers recorded that way are
/// meaningless for the perf trajectory, and the committed artifacts carry
/// a `single_core` metadata flag for exactly this situation.
pub fn warn_if_single_core() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        if cores <= 1 {
            eprintln!(
                "warning: running benchmarks on a single core; parallel speedups will be ~1x \
                 and recorded BENCH_*.json artifacts will be tagged single_core=true. \
                 Re-run on a multi-core host for meaningful scaling numbers."
            );
        }
    });
}

impl Bench {
    /// A runner with the default 7 samples per benchmark.
    pub fn new() -> Self {
        Self::with_samples(7)
    }

    /// Overrides the number of timed samples.
    pub fn with_samples(samples: u64) -> Self {
        assert!(samples >= 1);
        warn_if_single_core();
        Self {
            samples,
            results: Vec::new(),
        }
    }

    /// Times `f`, running it `iters` times per sample. The closure's result
    /// is passed through [`black_box`] so the optimizer cannot elide work.
    pub fn time<R>(&mut self, label: &str, iters: u64, f: impl FnMut() -> R) -> &Measurement {
        self.time_min_of(label, iters, 1, f)
    }

    /// Like [`Bench::time`], but each recorded sample is the **fastest of
    /// `reps` back-to-back timed passes**. For CPU-bound deterministic work
    /// the true cost is the floor of the timing distribution — everything
    /// above it is scheduler/interrupt interference — so min-of-reps per
    /// sample plus the median across samples estimates that floor robustly
    /// on noisy shared machines. Use for headline measurements that gate
    /// recorded artifacts; plain [`Bench::time`] is fine for ratios where
    /// both sides see the same noise.
    pub fn time_min_of<R>(
        &mut self,
        label: &str,
        iters: u64,
        reps: u64,
        mut f: impl FnMut() -> R,
    ) -> &Measurement {
        assert!(iters >= 1);
        assert!(reps >= 1);
        // Warm-up: one untimed sample.
        for _ in 0..iters {
            black_box(f());
        }
        let mut per_iter: Vec<f64> = (0..self.samples)
            .map(|_| {
                (0..reps)
                    .map(|_| {
                        let start = Instant::now();
                        for _ in 0..iters {
                            black_box(f());
                        }
                        start.elapsed().as_secs_f64() / iters as f64
                    })
                    .fold(f64::INFINITY, f64::min)
            })
            .collect();
        per_iter.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        let m = Measurement {
            label: label.to_string(),
            median_s: per_iter[per_iter.len() / 2],
            min_s: per_iter[0],
            max_s: *per_iter.last().expect("at least one sample"),
            iters,
            samples: self.samples,
        };
        println!(
            "  {:<44} {:>12}   (min {}, max {}, {} x {} iters)",
            m.label,
            m.pretty_time(),
            pretty_seconds(m.min_s),
            pretty_seconds(m.max_s),
            m.samples,
            m.iters,
        );
        self.results.push(m);
        self.results.last().expect("just pushed")
    }

    /// All measurements so far, in run order.
    pub fn results(&self) -> &[Measurement] {
        &self.results
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timing_runs_and_orders_statistics() {
        let mut b = Bench::with_samples(3);
        let m = b.time("spin", 10, || (0..100u64).sum::<u64>()).clone();
        assert_eq!(m.samples, 3);
        assert!(m.min_s <= m.median_s && m.median_s <= m.max_s);
        assert!(m.min_s > 0.0);
        assert_eq!(b.results().len(), 1);
    }

    #[test]
    fn pretty_formatting_picks_units() {
        assert!(pretty_seconds(2.0).ends_with(" s"));
        assert!(pretty_seconds(2e-3).ends_with("ms"));
        assert!(pretty_seconds(2e-6).ends_with("µs"));
        assert!(pretty_seconds(2e-9).ends_with("ns"));
    }
}
