//! Shared infrastructure for the figure/table regeneration harnesses.
//!
//! Each bench target in this crate regenerates one table or figure of
//! Berg et al. (SPAA 2020) and prints the same rows/series the paper
//! reports (as aligned text, since the original artifacts are MATLAB
//! plots). `cargo bench -p eirs-bench` therefore *is* the reproduction run;
//! see `EXPERIMENTS.md` at the workspace root for the recorded outputs.

use parking_lot::Mutex;

/// Renders one row of an aligned text table.
pub fn row(cells: &[String], widths: &[usize]) -> String {
    let mut out = String::new();
    for (cell, w) in cells.iter().zip(widths) {
        out.push_str(&format!("{cell:<width$}", width = w + 2));
    }
    out.trim_end().to_string()
}

/// Prints a titled section separator.
pub fn section(title: &str) {
    println!();
    println!("==== {title} ====");
}

/// Maps `f` over `items` on `threads` scoped worker threads, preserving
/// input order. The figure sweeps are embarrassingly parallel; crossbeam's
/// scoped threads let the closures borrow locals without `'static` bounds.
pub fn parallel_map<T, R, F>(items: Vec<T>, threads: usize, f: F) -> Vec<R>
where
    T: Send + Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    assert!(threads >= 1);
    let n = items.len();
    let mut slots: Vec<Option<R>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);
    let results = Mutex::new(slots);
    let work: Vec<(usize, T)> = items.into_iter().enumerate().collect();
    let next = std::sync::atomic::AtomicUsize::new(0);

    crossbeam::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|_| loop {
                let idx = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if idx >= work.len() {
                    break;
                }
                let (slot, item) = &work[idx];
                let r = f(item);
                results.lock()[*slot] = Some(r);
            });
        }
    })
    .expect("worker thread panicked");

    results
        .into_inner()
        .into_iter()
        .map(|r| r.expect("every slot filled"))
        .collect()
}

/// Number of worker threads to use for sweeps on this machine.
pub fn default_threads() -> usize {
    std::thread::available_parallelism().map_or(2, |n| n.get())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_map_preserves_order() {
        let items: Vec<u64> = (0..100).collect();
        let doubled = parallel_map(items, 4, |&x| x * 2);
        for (i, v) in doubled.iter().enumerate() {
            assert_eq!(*v, 2 * i as u64);
        }
    }

    #[test]
    fn parallel_map_single_thread_works() {
        let out = parallel_map(vec![1, 2, 3], 1, |&x| x + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn row_alignment() {
        let r = row(&["a".into(), "bb".into()], &[3, 3]);
        assert_eq!(r, "a    bb");
    }
}
