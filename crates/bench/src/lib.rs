//! Shared infrastructure for the figure/table regeneration harnesses.
//!
//! Each bench target in this crate regenerates one table or figure of
//! Berg et al. (SPAA 2020) and prints the same rows/series the paper
//! reports (as aligned text, since the original artifacts are MATLAB
//! plots). `cargo bench -p eirs-bench` therefore *is* the reproduction run;
//! see `EXPERIMENTS.md` at the workspace root for the recorded outputs.
//!
//! Also here: [`harness`], the dependency-free micro-benchmark timer used
//! by `perf_substrates` and `sweep_speedup` (the offline build environment
//! rules out criterion), and [`json`], a minimal writer for the
//! `BENCH_*.json` perf-trajectory artifacts.

use eirs_numerics::parallel;

pub mod harness;
pub mod json;

/// Renders one row of an aligned text table.
pub fn row(cells: &[String], widths: &[usize]) -> String {
    let mut out = String::new();
    for (cell, w) in cells.iter().zip(widths) {
        out.push_str(&format!("{cell:<width$}", width = w + 2));
    }
    out.trim_end().to_string()
}

/// Prints a titled section separator.
pub fn section(title: &str) {
    println!();
    println!("==== {title} ====");
}

/// Maps `f` over `items` on `threads` scoped worker threads, preserving
/// input order. Delegates to the workspace's sweep substrate
/// (`eirs_numerics::parallel`), which the figure sweeps share.
pub fn parallel_map<T, R, F>(items: Vec<T>, threads: usize, f: F) -> Vec<R>
where
    T: Send + Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    assert!(threads >= 1);
    parallel::par_map_ordered(&items, threads, f)
}

/// Number of worker threads to use for sweeps on this machine
/// (`EIRS_THREADS` or all available cores).
pub fn default_threads() -> usize {
    parallel::num_threads()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_map_preserves_order() {
        let items: Vec<u64> = (0..100).collect();
        let doubled = parallel_map(items, 4, |&x| x * 2);
        for (i, v) in doubled.iter().enumerate() {
            assert_eq!(*v, 2 * i as u64);
        }
    }

    #[test]
    fn parallel_map_single_thread_works() {
        let out = parallel_map(vec![1, 2, 3], 1, |&x| x + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn row_alignment() {
        let r = row(&["a".into(), "bb".into()], &[3, 3]);
        assert_eq!(r, "a    bb");
    }
}
