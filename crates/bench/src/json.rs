//! Minimal JSON writer for the `BENCH_*.json` perf-trajectory artifacts.
//!
//! The workspace has no serde; benchmark reports are shallow
//! string/number/object/array structures, so a small value enum with a
//! deterministic (insertion-ordered) serializer is all that is needed.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// Boolean.
    Bool(bool),
    /// Any finite number (non-finite serializes as `null`).
    Num(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An empty object.
    pub fn object() -> Json {
        Json::Obj(Vec::new())
    }

    /// Adds or replaces key `k` (objects only; panics otherwise).
    pub fn set(&mut self, k: &str, v: impl Into<Json>) -> &mut Self {
        let Json::Obj(entries) = self else {
            panic!("Json::set on a non-object");
        };
        if let Some(slot) = entries.iter_mut().find(|(key, _)| key == k) {
            slot.1 = v.into();
        } else {
            entries.push((k.to_string(), v.into()));
        }
        self
    }

    /// Serializes with two-space indentation.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        let pad = "  ".repeat(indent + 1);
        let close = "  ".repeat(indent);
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Num(x) => {
                if !x.is_finite() {
                    out.push_str("null");
                } else if x.fract() == 0.0 && x.abs() < 1e15 {
                    let _ = write!(out, "{}", *x as i64);
                } else {
                    let _ = write!(out, "{x}");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    out.push_str(&pad);
                    item.write(out, indent + 1);
                    out.push_str(if i + 1 < items.len() { ",\n" } else { "\n" });
                }
                out.push_str(&close);
                out.push(']');
            }
            Json::Obj(entries) => {
                if entries.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (k, v)) in entries.iter().enumerate() {
                    out.push_str(&pad);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                    out.push_str(if i + 1 < entries.len() { ",\n" } else { "\n" });
                }
                out.push_str(&close);
                out.push('}');
            }
        }
    }
}

/// Writes `s` as a quoted, escaped JSON string (shared by values and
/// object keys).
fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Num(v)
    }
}

impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::Num(v as f64)
    }
}

impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::Num(v as f64)
    }
}

impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}

impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}

impl From<Vec<Json>> for Json {
    fn from(v: Vec<Json>) -> Json {
        Json::Arr(v)
    }
}

/// The standard machine/threading metadata block every `BENCH_*.json`
/// artifact should embed: the thread count the bench **actually drove**
/// (`bench_threads`), the default sweep worker count
/// ([`eirs_core::sweep::threads`]), detected parallelism, the
/// `EIRS_THREADS` environment override if any, and a `single_core` flag.
/// Readers of the perf trajectory use it to tell real regressions from
/// "this run happened on a 1-core container" (the PR-1 `BENCH_sweeps.json`
/// was silently recorded on one). Benches that fan out with explicit
/// thread counts must report them via [`run_metadata_with_threads`] —
/// `available_parallelism` alone says what the machine *could* do, not
/// what the run *did*.
pub fn run_metadata() -> Json {
    run_metadata_with_threads(eirs_core::sweep::threads())
}

/// [`run_metadata`] for a bench that drove an explicit worker count
/// (e.g. a scaling table's maximum). `single_core` is true when either
/// the machine has one core or the bench itself never went parallel.
///
/// `degenerate_scaling` is the sharper flag: the bench *claimed* to fan
/// out (`bench_threads > 1`) but the host had one core, so every "N
/// thread" row is a serial run wearing a parallel label. The PR-1
/// `BENCH_sweeps.json` shipped exactly such a table; artifact readers
/// must discard scaling rows whenever this is true. Recording one also
/// warns loudly on stderr (once per process).
pub fn run_metadata_with_threads(bench_threads: usize) -> Json {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let threads = eirs_core::sweep::threads();
    let degenerate = cores <= 1 && bench_threads > 1;
    if degenerate {
        warn_degenerate_scaling(bench_threads, cores);
    }
    let mut o = Json::object();
    o.set("bench_threads", bench_threads)
        .set("sweep_threads", threads)
        .set("available_parallelism", cores)
        .set(
            "threads_env",
            std::env::var(eirs_numerics::parallel::THREADS_ENV).map_or(Json::Null, Json::from),
        )
        .set("single_core", cores <= 1 || bench_threads <= 1)
        .set("degenerate_scaling", degenerate);
    o
}

/// The loud half of the `degenerate_scaling` flag (once per process —
/// scaling benches record one metadata block per table row).
fn warn_degenerate_scaling(bench_threads: usize, cores: usize) {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        eprintln!(
            "warning: thread-scaling rows recorded on a {cores}-core host: this bench drove \
             {bench_threads} worker(s) with no parallelism available, so its speedup numbers \
             are meaningless. The artifact is tagged degenerate_scaling=true — discard the \
             scaling table and re-run on a multi-core host."
        );
    });
}

impl From<&crate::harness::Measurement> for Json {
    fn from(m: &crate::harness::Measurement) -> Json {
        let mut o = Json::object();
        o.set("label", m.label.as_str())
            .set("median_s", m.median_s)
            .set("min_s", m.min_s)
            .set("max_s", m.max_s)
            .set("iters", m.iters)
            .set("samples", m.samples);
        o
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serializes_nested_structures_deterministically() {
        let mut o = Json::object();
        o.set("name", "sweep")
            .set("speedup", 4.25)
            .set("threads", 8u64)
            .set("runs", vec![Json::Num(1.0), Json::Bool(true), Json::Null]);
        let s = o.pretty();
        assert!(s.contains("\"name\": \"sweep\""));
        assert!(s.contains("\"speedup\": 4.25"));
        assert!(s.contains("\"threads\": 8"));
        assert!(s.ends_with("}\n"));
        // Integral floats print without a fraction.
        assert!(s.contains("1,"));
    }

    #[test]
    fn escapes_strings() {
        let s = Json::Str("a\"b\\c\nd".into()).pretty();
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\"\n");
    }

    #[test]
    fn escapes_object_keys() {
        let mut o = Json::object();
        o.set("cfg \"fast\"\n", 1.0);
        let s = o.pretty();
        assert!(s.contains("\"cfg \\\"fast\\\"\\n\": 1"), "{s}");
    }

    #[test]
    fn run_metadata_reports_threading_context() {
        let m = run_metadata();
        let Json::Obj(entries) = &m else {
            panic!("metadata must be an object");
        };
        let keys: Vec<&str> = entries.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(
            keys,
            [
                "bench_threads",
                "sweep_threads",
                "available_parallelism",
                "threads_env",
                "single_core",
                "degenerate_scaling"
            ]
        );
        let lookup = |k: &str| entries.iter().find(|(key, _)| key == k).unwrap().1.clone();
        assert!(matches!(lookup("bench_threads"), Json::Num(n) if n >= 1.0));
        assert!(matches!(lookup("sweep_threads"), Json::Num(n) if n >= 1.0));
        assert!(matches!(lookup("available_parallelism"), Json::Num(n) if n >= 1.0));
        assert!(matches!(lookup("single_core"), Json::Bool(_)));
        assert!(matches!(lookup("degenerate_scaling"), Json::Bool(_)));
    }

    #[test]
    fn degenerate_scaling_flags_parallel_claims_on_one_core() {
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        let flag = |bench_threads: usize| {
            let Json::Obj(entries) = run_metadata_with_threads(bench_threads) else {
                panic!("metadata must be an object");
            };
            match &entries
                .iter()
                .find(|(key, _)| key == "degenerate_scaling")
                .unwrap()
                .1
            {
                Json::Bool(b) => *b,
                other => panic!("degenerate_scaling must be a bool, got {other:?}"),
            }
        };
        // A serial bench is never degenerate, whatever the host.
        assert!(!flag(1));
        // A parallel claim is degenerate exactly when the host is 1-core.
        assert_eq!(flag(4), cores <= 1);
    }

    #[test]
    fn run_metadata_records_the_thread_count_the_bench_drove() {
        let Json::Obj(entries) = run_metadata_with_threads(4) else {
            panic!("metadata must be an object");
        };
        let lookup = |k: &str| entries.iter().find(|(key, _)| key == k).unwrap().1.clone();
        assert!(matches!(lookup("bench_threads"), Json::Num(n) if n == 4.0));
        // A bench that drove one worker is single-core by definition,
        // whatever the machine could have done.
        let Json::Obj(serial) = run_metadata_with_threads(1) else {
            panic!("metadata must be an object");
        };
        let v = serial
            .iter()
            .find(|(key, _)| key == "single_core")
            .unwrap()
            .1
            .clone();
        assert!(matches!(v, Json::Bool(true)));
    }

    #[test]
    fn set_replaces_existing_keys() {
        let mut o = Json::object();
        o.set("x", 1.0).set("x", 2.0);
        assert_eq!(o, {
            let mut e = Json::object();
            e.set("x", 2.0);
            e
        });
    }
}
