//! FIG5 — Figure 5(a–c): absolute mean response time under IF and EF as a
//! function of µ_I, with µ_E = 1, k = 4, λ_I = λ_E, for ρ ∈ {0.5, 0.7, 0.9}.
//!
//! Expected shape (paper): both curves fall as µ_I grows (inelastic jobs
//! shrink); EF is flat-ish in the far-left region at low µ_I where it wins;
//! the curves cross exactly once, left of µ_I = 1, and IF dominates to the
//! right of the dotted µ_I = µ_E line. The gap is largest at the extremes.
//!
//! Run: `cargo bench -p eirs-bench --bench fig5_response_time`

use eirs_bench::{default_threads, parallel_map, section};
use eirs_core::experiments::{figure5_curve, figure5_mu_i_values};

fn main() {
    let k = 4;
    let mu_values = figure5_mu_i_values();
    let rhos = [0.5, 0.7, 0.9];

    let curves = parallel_map(rhos.to_vec(), default_threads().min(3), |&rho| {
        (
            rho,
            figure5_curve(k, rho, &mu_values).expect("analysis succeeds"),
        )
    });

    for (rho, curve) in &curves {
        section(&format!(
            "Figure 5: E[T] vs µ_I (µ_E = 1, k = {k}, rho = {rho}, λ_I = λ_E)"
        ));
        println!("  µ_I       E[T] IF      E[T] EF      winner");
        let mut crossover: Option<f64> = None;
        let mut last_sign = None;
        for p in curve {
            let winner = if p.mrt_if < p.mrt_ef { "IF" } else { "EF" };
            let sign = p.mrt_if < p.mrt_ef;
            if let Some(prev) = last_sign {
                if prev != sign {
                    crossover = Some(p.mu_i);
                }
            }
            last_sign = Some(sign);
            let marker = if (p.mu_i - 1.0).abs() < 1e-9 {
                "  <- µ_I = µ_E"
            } else {
                ""
            };
            println!(
                "  {:<9.2} {:<12.4} {:<12.4} {winner}{marker}",
                p.mu_i, p.mrt_if, p.mrt_ef
            );
        }
        match crossover {
            Some(x) => println!("  crossover at µ_I ≈ {x:.2} (paper: left of µ_I = 1)"),
            None => println!("  no crossover in range (IF dominates throughout)"),
        }
    }
}
