//! OPEN1 — extension experiment: candidate policy families for the paper's
//! open question (Section 6: "find optimal policies when elastic jobs are
//! smaller on average than inelastic jobs").
//!
//! Two one-parameter families interpolate between IF and EF:
//!
//! * **Reserve(r)** — always keep `r` servers for elastic jobs when any are
//!   present (`Reserve(0) = IF`, `Reserve(k) = EF`);
//! * **ElasticThreshold(m)** — run IF until the elastic backlog reaches `m`,
//!   then flip to EF.
//!
//! Each family member is evaluated exactly on the truncated chain and
//! compared against the MDP optimum. Result: simple static families close
//! most, but not all, of the gap — evidence that the optimal policy in this
//! regime is genuinely state-dependent.
//!
//! Run: `cargo bench -p eirs-bench --bench open_regime`

use eirs_bench::{default_threads, parallel_map, section};
use eirs_core::params::SystemParams;
use eirs_mdp::{evaluate_policy, solve_optimal, MdpConfig};
use eirs_sim::policy::{AllocationPolicy, ElasticThresholdPolicy, ReservePolicy};

fn policy_mean_response(cfg: &MdpConfig, policy: &dyn AllocationPolicy, lambda: f64) -> f64 {
    let k = cfg.k;
    let f = move |i: usize, j: usize| {
        let a = policy.allocate(i, j, k);
        (a.inelastic, a.elastic)
    };
    evaluate_policy(cfg, &f, 1e-9, 600_000).expect("evaluation converges") / lambda
}

fn main() {
    let k = 4u32;
    section(&format!(
        "Open regime (µ_I < µ_E): static families vs the MDP optimum, k = {k}"
    ));

    let cases = vec![(0.25f64, 1.0f64, 0.7f64), (0.25, 1.0, 0.9), (0.5, 1.5, 0.8)];
    let rows = parallel_map(cases, default_threads(), |&(mu_i, mu_e, rho)| {
        let p = SystemParams::with_equal_lambdas(k, mu_i, mu_e, rho).expect("stable");
        let cfg = MdpConfig {
            k,
            lambda_i: p.lambda_i,
            lambda_e: p.lambda_e,
            mu_i,
            mu_e,
            max_i: 70,
            max_j: 70,
            allow_idling: false,
        };
        let lambda = p.total_lambda();
        let opt = solve_optimal(&cfg, 1e-9, 700_000).expect("VI converges");
        let t_opt = opt.mean_response(lambda);
        let reserves: Vec<(u32, f64)> = (0..=k)
            .map(|r| {
                (
                    r,
                    policy_mean_response(&cfg, &ReservePolicy { reserve: r }, lambda),
                )
            })
            .collect();
        let thresholds: Vec<(usize, f64)> = [1usize, 2, 3, 5, 8]
            .iter()
            .map(|&m| {
                (
                    m,
                    policy_mean_response(&cfg, &ElasticThresholdPolicy { threshold: m }, lambda),
                )
            })
            .collect();
        (mu_i, mu_e, rho, t_opt, reserves, thresholds)
    });

    for (mu_i, mu_e, rho, t_opt, reserves, thresholds) in &rows {
        println!("\n  µ_I = {mu_i}, µ_E = {mu_e}, rho = {rho}:   E[T] optimal = {t_opt:.4}");
        println!("    family member        E[T]      gap vs optimal");
        for (r, t) in reserves {
            let label = match *r {
                0 => format!("Reserve({r}) = IF"),
                x if x == *reserves.last().map(|(r, _)| r).expect("non-empty") => {
                    format!("Reserve({r}) = EF")
                }
                _ => format!("Reserve({r})"),
            };
            println!(
                "    {label:<20} {t:<9.4} {:+.2}%",
                100.0 * (t / t_opt - 1.0)
            );
        }
        for (m, t) in thresholds {
            println!(
                "    ElasticThresh({m:<2})    {t:<9.4} {:+.2}%",
                100.0 * (t / t_opt - 1.0)
            );
        }
        let best_static = reserves
            .iter()
            .map(|(_, t)| *t)
            .chain(thresholds.iter().map(|(_, t)| *t))
            .fold(f64::INFINITY, f64::min);
        println!(
            "    best static family member is {:.2}% above the state-dependent optimum",
            100.0 * (best_static / t_opt - 1.0)
        );
        assert!(
            best_static >= *t_opt - 1e-6,
            "a static policy beat the optimum"
        );
    }

    println!(
        "\n  Takeaway: interpolating families recover most of IF's shortfall in\n\
         the µ_I < µ_E regime, but a residual gap to the MDP optimum remains —\n\
         consistent with the paper leaving the optimal policy open."
    );
}
