//! PERF / COVERAGE — the scenario fuzzer and the streaming trace path.
//!
//! Measures, on the current machine:
//!
//! 1. a seeded fuzz sweep through the built-in oracles (spec parsing,
//!    analysis-vs-DES differential, digest stability, exact accounting),
//!    recording cells fuzzed, tractable differentials, disagreements,
//!    and the evaluations spent minimizing any flagged cell;
//! 2. a large binary arrival trace (1.5M arrivals in the full run)
//!    **streamed** to disk through [`BinaryTraceWriter`] — never held in
//!    memory — then replayed through [`ServeEngine`] via the chunked
//!    [`BinaryTraceReader`]. The bench reads `VmHWM` from
//!    `/proc/self/status` before and after the long replay and asserts
//!    peak RSS grew by far less than the trace's on-disk size: replay
//!    memory is bounded by the chunk buffer, independent of trace
//!    length;
//! 3. a format-agreement gate: the shared 50k-arrival prefix written to
//!    both the binary and the text format replays to the **same decision
//!    digest**, so the compact format cannot drift from the canonical
//!    text traces.
//!
//! Results print as text and are written to `BENCH_fuzz.json` at the
//! workspace root. Set `EIRS_BENCH_SMOKE=1` for a tiny smoke pass (CI):
//! every section executes and every correctness gate still asserts, but
//! the artifact is not rewritten.
//!
//! Run: `cargo bench -p eirs-bench --bench fuzz_coverage`

use eirs_bench::harness::{pretty_seconds, Bench};
use eirs_bench::json::Json;
use eirs_bench::section;
use eirs_core::fuzz::{self, FuzzConfig};
use eirs_queueing::Exponential;
use eirs_serve::{CompiledTable, EngineConfig, ServeEngine};
use eirs_sim::arrivals::{ArrivalSource, ArrivalTrace, PoissonStream};
use eirs_sim::policy::FairShare;
use eirs_sim::trace::BinaryTraceWriter;
use std::path::{Path, PathBuf};

fn smoke() -> bool {
    std::env::var_os("EIRS_BENCH_SMOKE").is_some_and(|v| !v.is_empty() && v != "0")
}

/// Peak resident set size of this process in bytes (`VmHWM` from
/// `/proc/self/status`), or `None` off Linux.
fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb * 1024)
}

fn temp_path(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("eirs-fuzz-bench-{}-{name}", std::process::id()))
}

/// Streams `n` Poisson arrivals to `path` through the binary writer,
/// duplicating the first `prefix` of them into `prefix_bin`/`prefix_txt`.
/// Memory use is O(prefix), never O(n).
fn stream_trace(n: u64, prefix: usize, path: &Path, prefix_bin: &Path, prefix_txt: &Path) -> f64 {
    let mut source = PoissonStream::new(
        0.9,
        0.7,
        Box::new(Exponential::new(1.0)),
        Box::new(Exponential::new(0.8)),
        42,
    );
    let mut writer = BinaryTraceWriter::create(path).expect("create trace");
    let mut head = Vec::with_capacity(prefix);
    let mut horizon = 0.0;
    for i in 0..n {
        let a = source.next_arrival().expect("poisson stream is infinite");
        horizon = a.time;
        if (i as usize) < prefix {
            head.push(a);
        }
        writer.push(&a).expect("push arrival");
    }
    writer.finish().expect("finish trace");
    let head = ArrivalTrace::new(head);
    eirs_sim::trace::save_binary(&head, prefix_bin).expect("save prefix binary");
    head.save(prefix_txt).expect("save prefix text");
    horizon
}

/// Replays `path` (any on-disk format) through a fresh [`ServeEngine`]
/// and returns the decision digest.
fn replay_digest(path: &Path, until: f64) -> u64 {
    let table = CompiledTable::compile(Box::new(FairShare), 4, 32, 32);
    let config = EngineConfig::new(4).route_shards(4).workers(1).batch(512);
    let mut engine = ServeEngine::new(table, config);
    let mut source = eirs_sim::trace::open_trace_source(path).expect("open trace");
    engine.run(source.as_mut(), until);
    engine.drain();
    engine.decision_digest()
}

fn main() {
    let smoke = smoke();
    let mut report = Json::object();
    report.set("schema", "eirs-bench-fuzz/v1");
    report.set("hardware", eirs_bench::json::run_metadata_with_threads(1));
    if smoke {
        section("EIRS_BENCH_SMOKE: tiny smoke pass, artifact will not be rewritten");
    }

    // ---- 1. Fuzz sweep through the built-in oracles -------------------
    let budget = if smoke { 6 } else { 40 };
    section(&format!(
        "scenario fuzz sweep (seed 1, {budget} cells, built-in oracles)"
    ));
    let cfg = FuzzConfig {
        budget,
        seed: 1,
        threads: 1,
        // Bench fidelity: enough departures that the differential is
        // meaningful, small enough to time repeatably.
        replications: 2,
        departures: if smoke { 300 } else { 2000 },
        warmup: if smoke { 30 } else { 200 },
        ..FuzzConfig::default()
    };
    let mut bench = Bench::with_samples(if smoke { 1 } else { 3 });
    let sweep = bench
        .time("fuzz_sweep", 1, || fuzz::fuzz_run(&cfg, &[]))
        .clone();
    let run = fuzz::fuzz_run(&cfg, &[]);
    println!(
        "  cells: {}   tractable differentials: {}   disagreements: {}   shrink evals: {}",
        run.cells.len(),
        run.tractable,
        run.flagged,
        run.shrink_evals
    );
    assert_eq!(run.flagged, 0, "committed bench seed must fuzz clean");
    let mut fz = Json::object();
    fz.set("cells_fuzzed", run.cells.len())
        .set("tractable_differentials", run.tractable)
        .set("disagreements", run.flagged)
        .set("minimization_evals", run.shrink_evals)
        .set("sweep", &sweep);
    report.set("fuzz_sweep", fz);

    // ---- 2. Bounded-memory replay of a large binary trace -------------
    let arrivals: u64 = if smoke { 60_000 } else { 1_500_000 };
    let prefix = 50_000.min(arrivals as usize / 2);
    section(&format!(
        "streamed binary trace: {arrivals} arrivals, bounded-memory ServeEngine replay"
    ));
    let big = temp_path("big.bt");
    let pre_bin = temp_path("prefix.bt");
    let pre_txt = temp_path("prefix.trace");
    let horizon = stream_trace(arrivals, prefix, &big, &pre_bin, &pre_txt);
    let file_bytes = std::fs::metadata(&big).expect("trace written").len();

    // Warm up every allocation pool on the short prefix, then take the
    // high-water mark: any growth during the long replay is attributable
    // to the long trace itself.
    let prefix_digest_bin = replay_digest(&pre_bin, f64::INFINITY);
    let rss_before = peak_rss_bytes();
    let mut bench = Bench::with_samples(if smoke { 1 } else { 3 });
    let replay = bench
        .time("binary_replay_serve", 1, || {
            replay_digest(&big, horizon + 1.0)
        })
        .clone();
    let rss_after = peak_rss_bytes();
    match (rss_before, rss_after) {
        (Some(before), Some(after)) => {
            let grew = after.saturating_sub(before);
            println!(
                "  trace file: {:.1} MB   peak-RSS growth during replay: {:.1} MB",
                file_bytes as f64 / 1e6,
                grew as f64 / 1e6
            );
            // The chunk buffer is ~100 KB; allow generous allocator slack
            // but stay far under the trace size, which is what loading
            // the file whole would cost.
            assert!(
                grew < 16 * 1024 * 1024 && (grew as f64) < 0.5 * file_bytes as f64,
                "replay peak RSS grew by {grew} bytes on a {file_bytes}-byte trace — \
                 replay memory must be bounded, independent of trace length"
            );
            let mut mem = Json::object();
            mem.set("trace_bytes", file_bytes)
                .set("trace_arrivals", arrivals)
                .set("peak_rss_growth_bytes", grew)
                .set("bounded", true);
            report.set("replay_memory", mem);
        }
        _ => println!("  /proc/self/status unavailable; skipping RSS assertion"),
    }
    println!(
        "  replay: {} ({:.0} arrivals/s)",
        pretty_seconds(replay.median_s),
        arrivals as f64 / replay.median_s
    );
    report.set("binary_replay", &replay);

    // ---- 3. Binary prefix digest == text-format digest ----------------
    section("format agreement: binary prefix replay == text replay");
    let prefix_digest_txt = replay_digest(&pre_txt, f64::INFINITY);
    assert_eq!(
        prefix_digest_bin, prefix_digest_txt,
        "binary and text replays of the shared prefix diverged"
    );
    println!("  {prefix} shared arrivals, digest 0x{prefix_digest_bin:016x} in both formats");
    let mut agree = Json::object();
    agree
        .set("prefix_arrivals", prefix)
        .set("digest", format!("0x{prefix_digest_bin:016x}"))
        .set("formats_agree", true);
    report.set("format_agreement", agree);

    for p in [&big, &pre_bin, &pre_txt] {
        let _ = std::fs::remove_file(p);
    }

    // ---- Write the artifact -------------------------------------------
    if smoke {
        println!();
        println!("smoke mode: skipping BENCH_fuzz.json rewrite");
        return;
    }
    let out_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_fuzz.json");
    std::fs::write(out_path, report.pretty()).expect("write BENCH_fuzz.json");
    println!();
    println!("wrote {out_path}");
}
