//! FIG4 — Figure 4(a–c): heat maps of the relative performance of IF vs EF
//! over the (µ_I, µ_E) grid at k = 4 and ρ ∈ {0.5, 0.7, 0.9}, λ_I = λ_E.
//!
//! Paper rendering: red circles where IF dominates, blue + where EF
//! dominates. Here: `o` = IF wins, `+` = EF wins, `=` = tie. The expected
//! shape: IF wins everywhere on and right of the µ_I = µ_E diagonal (its
//! optimality region, Theorem 5); an EF-winning region appears left of the
//! diagonal and *grows with load*.
//!
//! Run: `cargo bench -p eirs-bench --bench fig4_heatmaps`

use eirs_bench::{default_threads, parallel_map, section};
use eirs_core::experiments::{figure4_heatmap, figure4_mu_grid, Winner};

fn main() {
    let k = 4;
    let rhos = [0.5, 0.7, 0.9];
    let grid = figure4_mu_grid();

    let maps = parallel_map(rhos.to_vec(), default_threads().min(3), |&rho| {
        (rho, figure4_heatmap(k, rho).expect("analysis succeeds"))
    });

    for (rho, cells) in &maps {
        section(&format!(
            "Figure 4: winner heat map, k = {k}, rho = {rho} (o = IF, + = EF)"
        ));
        // Rows: µ_E from high to low (paper's y axis); columns: µ_I ascending.
        print!("  µ_E\\µ_I |");
        for mu_i in &grid {
            print!("{mu_i:>5.2}");
        }
        println!();
        println!("  --------+{}", "-".repeat(5 * grid.len()));
        for mu_e in grid.iter().rev() {
            print!("  {mu_e:>7.2} |");
            for mu_i in &grid {
                let cell = cells
                    .iter()
                    .find(|c| (c.mu_i - mu_i).abs() < 1e-9 && (c.mu_e - mu_e).abs() < 1e-9)
                    .expect("cell computed");
                print!("{:>5}", cell.comparison.winner.cell());
            }
            println!();
        }
        let ef_cells = cells
            .iter()
            .filter(|c| c.comparison.winner == Winner::ElasticFirst)
            .count();
        println!(
            "  EF-dominant cells: {ef_cells}/{} ({:.1}%)",
            cells.len(),
            100.0 * ef_cells as f64 / cells.len() as f64
        );
        // Theorem 5 sanity inside the harness: no EF win at µ_I ≥ µ_E.
        let violations = cells
            .iter()
            .filter(|c| c.mu_i >= c.mu_e && c.comparison.winner == Winner::ElasticFirst)
            .count();
        assert_eq!(violations, 0, "EF won in the IF-optimal region");
    }

    println!();
    println!(
        "Expected from the paper: the EF region (+) lies strictly left of the\n\
         µ_I = µ_E diagonal and grows as rho increases from 0.5 to 0.9."
    );
}
