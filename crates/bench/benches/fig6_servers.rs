//! FIG6 — Figure 6(a, b): mean response time under IF and EF as the number
//! of servers k grows at constant load ρ = 0.9, for the two extreme rate
//! pairs of Figure 5(c): (µ_I, µ_E) = (0.25, 1) and (3.25, 1).
//!
//! Expected shape (paper): E[T] falls with k for both policies, but the
//! *gap between the policies stays large even at k = 16* — in panel (a)
//! (µ_I = 0.25) EF wins throughout, in panel (b) (µ_I = 3.25) IF wins
//! throughout.
//!
//! Run: `cargo bench -p eirs-bench --bench fig6_servers`

use eirs_bench::section;
use eirs_core::experiments::figure6_curve;

fn main() {
    let rho = 0.9;
    let ks: Vec<u32> = (2..=16).collect();
    for (panel, mu_i, mu_e, expect) in [('a', 0.25, 1.0, "EF"), ('b', 3.25, 1.0, "IF")] {
        section(&format!(
            "Figure 6({panel}): E[T] vs k at rho = {rho}, µ_I = {mu_i}, µ_E = {mu_e}"
        ));
        let curve = figure6_curve(&ks, rho, mu_i, mu_e).expect("analysis succeeds");
        println!("  k      E[T] IF      E[T] EF      gap (worse/better)");
        for p in &curve {
            let (lo, hi) = if p.mrt_if < p.mrt_ef {
                (p.mrt_if, p.mrt_ef)
            } else {
                (p.mrt_ef, p.mrt_if)
            };
            println!(
                "  {:<6} {:<12.4} {:<12.4} {:.2}x",
                p.k,
                p.mrt_if,
                p.mrt_ef,
                hi / lo
            );
        }
        let last = curve.last().expect("non-empty");
        let winner = if last.mrt_if < last.mrt_ef {
            "IF"
        } else {
            "EF"
        };
        println!("  winner at k = 16: {winner} (paper: {expect})");
        assert_eq!(winner, expect, "Figure 6({panel}) winner changed");
        let (lo, hi) = if last.mrt_if < last.mrt_ef {
            (last.mrt_if, last.mrt_ef)
        } else {
            (last.mrt_ef, last.mrt_if)
        };
        println!(
            "  gap at k = 16 remains {:.2}x — the paper's point that scale does\n\
             not substitute for the right allocation policy.",
            hi / lo
        );
    }
}
