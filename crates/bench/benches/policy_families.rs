//! POLICY FAMILIES — the cross-substrate agreement record.
//!
//! For every shipped policy family (strict-priority EF/IF, elastic
//! threshold, switching curve, weighted water-filling, fair share, and the
//! MDP-optimal `TabularPolicy`) this harness evaluates the **same policy
//! on three independent substrates**:
//!
//! 1. the policy-generic QBD analysis (`eirs_core::analysis::analyze_policy`),
//!    fanned over the parameter points through the parallel sweep engine;
//! 2. DES replications on decorrelated seed streams (mean ± 95% CI);
//! 3. the truncated-grid CTMC evaluator (`eirs_mdp::evaluate_allocation_policy`).
//!
//! and records the agreement into `BENCH_policy_families.json`. The
//! substrates share nothing beyond the policy's allocation map, so
//! agreement is a strong mutual check — the machine-readable version of
//! the acceptance criterion "analytical mean response time agrees with
//! DES within replication confidence intervals".
//!
//! Run: `cargo bench -p eirs-bench --bench policy_families`

use eirs_bench::json::{run_metadata, Json};
use eirs_bench::{row, section};
use eirs_core::analysis::AnalyzeOptions;
use eirs_core::experiments::policy_sweep;
use eirs_core::policy::{parse_policy, AllocationPolicy};
use eirs_core::SystemParams;
use eirs_mdp::{evaluate_allocation_policy, solve_optimal, MdpConfig};
use eirs_sim::replicate::run_markovian_replications;
use eirs_sim::stats::ReplicationStats;

const K: u32 = 4;
/// The open `µ_I < µ_E` regime (Section 6), where the families actually
/// differ and the MDP-optimal policy is not IF.
const MU_I: f64 = 0.5;
const MU_E: f64 = 1.0;
const RHOS: [f64; 2] = [0.5, 0.7];
const REPS: usize = 8;
const DEPARTURES: u64 = 200_000;

fn des_interval(policy: &dyn AllocationPolicy, p: &SystemParams, seed: u64) -> (f64, f64) {
    let reports = run_markovian_replications(
        policy,
        p.k,
        p.lambda_i,
        p.lambda_e,
        p.mu_i,
        p.mu_e,
        seed,
        REPS,
        DEPARTURES / 10,
        DEPARTURES,
    );
    let stats: ReplicationStats = reports.iter().map(|r| r.mean_response).collect();
    let ci = stats.confidence_interval();
    (ci.mean, ci.half_width)
}

fn mdp_grid_response(policy: &dyn AllocationPolicy, p: &SystemParams) -> f64 {
    let cfg = MdpConfig {
        k: p.k,
        lambda_i: p.lambda_i,
        lambda_e: p.lambda_e,
        mu_i: p.mu_i,
        mu_e: p.mu_e,
        max_i: 70,
        max_j: 70,
        allow_idling: false,
    };
    let g = evaluate_allocation_policy(&cfg, policy, 1e-8, 400_000).expect("grid evaluation");
    g / p.total_lambda()
}

fn main() {
    let specs = [
        "if",
        "ef",
        "fairshare",
        "threshold:3",
        "curve:2+1i",
        "waterfill:2",
    ];
    let opts = AnalyzeOptions {
        phase_cap: 48,
        ..AnalyzeOptions::default()
    };
    let points: Vec<SystemParams> = RHOS
        .iter()
        .map(|&rho| SystemParams::with_equal_lambdas(K, MU_I, MU_E, rho).expect("stable"))
        .collect();

    let mut report = Json::object();
    report.set("schema", "eirs-bench-policy-families/v1");
    report.set("hardware", run_metadata());
    let mut rows_json = Vec::new();

    section(&format!(
        "policy families, cross-substrate agreement (k = {K}, µI = {MU_I}, µE = {MU_E})"
    ));
    let widths = [26, 5, 10, 18, 10, 9, 9];
    println!(
        "{}",
        row(
            &[
                "policy".into(),
                "rho".into(),
                "analysis".into(),
                "des (95% CI)".into(),
                "mdp-grid".into(),
                "in CI".into(),
                "|a-g|/g".into(),
            ],
            &widths
        )
    );

    let mut policies: Vec<Box<dyn AllocationPolicy>> = specs
        .iter()
        .map(|s| parse_policy(s).expect("registry spec"))
        .collect();
    // The MDP-optimal policy per load, through the TabularPolicy bridge.
    // (Solved on the same grid the evaluator uses, so boundary artifacts
    // cancel; the analysis and DES see the clamped extension.)
    for p in &points {
        let cfg = MdpConfig {
            k: p.k,
            lambda_i: p.lambda_i,
            lambda_e: p.lambda_e,
            mu_i: p.mu_i,
            mu_e: p.mu_e,
            max_i: 70,
            max_j: 70,
            allow_idling: false,
        };
        let opt = solve_optimal(&cfg, 1e-8, 400_000).expect("MDP solve");
        policies.push(Box::new(opt.tabular_policy()));
    }

    for (pi, policy) in policies.iter().enumerate() {
        // MDP tabular policies are load-specific: evaluate each only at
        // the point it was solved for.
        let point_set: Vec<&SystemParams> = if pi < specs.len() {
            points.iter().collect()
        } else {
            vec![&points[pi - specs.len()]]
        };
        let owned: Vec<SystemParams> = point_set.iter().map(|p| **p).collect();
        let analyzed = policy_sweep(policy.as_ref(), &owned, &opts).expect("analysis");
        for (p, a) in owned.iter().zip(&analyzed) {
            let analytic = a.analysis.mean_response;
            let (des_mean, des_hw) = des_interval(policy.as_ref(), p, 42 + pi as u64);
            let grid = mdp_grid_response(policy.as_ref(), p);
            let in_ci = (analytic - des_mean).abs() <= des_hw;
            let grid_rel = (analytic - grid).abs() / grid;
            println!(
                "{}",
                row(
                    &[
                        policy.name(),
                        format!("{:.2}", p.load()),
                        format!("{analytic:.4}"),
                        format!("{des_mean:.4} +- {des_hw:.4}"),
                        format!("{grid:.4}"),
                        format!("{in_ci}"),
                        format!("{grid_rel:.1e}"),
                    ],
                    &widths
                )
            );
            let mut r = Json::object();
            r.set("policy", policy.name())
                .set("rho", p.load())
                .set("analysis_mean_response", analytic)
                .set("des_mean_response", des_mean)
                .set("des_ci_half_width", des_hw)
                .set("mdp_grid_mean_response", grid)
                .set("analysis_inside_des_ci", in_ci)
                .set("analysis_vs_grid_rel_err", grid_rel);
            rows_json.push(r);
        }
    }

    report.set("k", K as u64);
    report.set("mu_i", MU_I);
    report.set("mu_e", MU_E);
    report.set("des_replications", REPS);
    report.set("des_departures_each", DEPARTURES);
    report.set("rows", rows_json);

    let out_path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_policy_families.json"
    );
    std::fs::write(out_path, report.pretty()).expect("write BENCH_policy_families.json");
    println!();
    println!("wrote {out_path}");
}
