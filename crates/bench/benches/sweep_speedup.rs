//! PERF — the sweep-engine and hot-path speedup record.
//!
//! Measures, on the current machine:
//!
//! 1. the Figure 4 heat-map grid (3 loads × 196 (µ_I, µ_E) cells, two QBD
//!    analyses per cell) serially and through the parallel sweep engine,
//!    verifying on the way that the parallel cells are **bit-identical**
//!    to the serial ones;
//! 2. single-threaded QBD `R`-matrix solves: the allocation-free workspace
//!    path vs the allocation-per-step reference implementation;
//! 3. parallel vs serial simulation replications (per-replication seed
//!    streams).
//!
//! Results print as text and are written to `BENCH_sweeps.json` at the
//! workspace root so the perf trajectory is recorded PR over PR.
//!
//! Run: `cargo bench -p eirs-bench --bench sweep_speedup`

use eirs_bench::harness::{pretty_seconds, Bench};
use eirs_bench::json::Json;
use eirs_bench::section;
use eirs_core::experiments::{figure4_heatmap_serial, figure4_heatmap_with_threads, HeatMapCell};
use eirs_markov::{Qbd, QbdWorkspace, RSolver};
use eirs_numerics::Matrix;
use eirs_sim::des::run_markovian;
use eirs_sim::policy::InelasticFirst;
use eirs_sim::replicate::run_replications_with_threads;

const RHOS: [f64; 3] = [0.5, 0.7, 0.9];
const K: u32 = 4;

fn grid_cells(threads: usize) -> Vec<HeatMapCell> {
    RHOS.iter()
        .flat_map(|&rho| {
            if threads == 1 {
                figure4_heatmap_serial(K, rho).expect("grid solves")
            } else {
                figure4_heatmap_with_threads(K, rho, threads).expect("grid solves")
            }
        })
        .collect()
}

fn cells_bit_identical(a: &[HeatMapCell], b: &[HeatMapCell]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(x, y)| {
            x.comparison.mrt_if.to_bits() == y.comparison.mrt_if.to_bits()
                && x.comparison.mrt_ef.to_bits() == y.comparison.mrt_ef.to_bits()
                && x.comparison.winner == y.comparison.winner
        })
}

/// An M/E_p/1 QBD (Erlang-p service tracked by phase): phase dimension `p`,
/// stable for `lambda < mu`. Exercises the R iterations at a controllable
/// phase dimension.
fn erlang_qbd(p: usize, lambda: f64, mu: f64) -> Qbd {
    let stage_rate = p as f64 * mu;
    let a0 = Matrix::identity(p).scaled(lambda);
    let mut a1 = Matrix::zeros(p, p);
    for i in 0..p - 1 {
        a1[(i, i + 1)] = stage_rate;
    }
    let mut a2 = Matrix::zeros(p, p);
    a2[(p - 1, 0)] = stage_rate;
    let mut u0 = Matrix::zeros(p, p);
    for i in 0..p {
        u0[(i, 0)] = lambda;
    }
    Qbd::new(vec![u0], vec![Matrix::zeros(p, p)], vec![], a0, a1, a2).expect("valid blocks")
}

fn main() {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let sweep_threads = eirs_bench::default_threads();
    let mut report = Json::object();
    report.set("schema", "eirs-bench-sweeps/v1");
    report.set("hardware", eirs_bench::json::run_metadata());

    // ---- 1. Figure 4 grid: serial vs parallel sweep -------------------
    section(&format!(
        "Figure 4 grid sweep (k = {K}, rho in {RHOS:?}, 588 cells, 1176 QBD analyses)"
    ));
    let serial_cells = grid_cells(1);
    let parallel_cells = grid_cells(sweep_threads);
    let identical = cells_bit_identical(&serial_cells, &parallel_cells);
    println!("  parallel output bit-identical to serial: {identical}");
    assert!(identical, "parallel sweep diverged from serial");

    let mut bench = Bench::with_samples(5);
    let serial = bench
        .time("figure4_grid_serial", 1, || grid_cells(1))
        .clone();
    let parallel = bench
        .time(
            &format!("figure4_grid_parallel_t{sweep_threads}"),
            1,
            || grid_cells(sweep_threads),
        )
        .clone();
    let parallel8 = bench
        .time("figure4_grid_parallel_t8", 1, || grid_cells(8))
        .clone();
    let speedup = serial.median_s / parallel.median_s;
    let speedup8 = serial.median_s / parallel8.median_s;
    println!(
        "  speedup: {speedup:.2}x at {sweep_threads} threads, {speedup8:.2}x at 8 threads \
         (machine has {cores} cores)"
    );
    let mut fig4 = Json::object();
    fig4.set("cells", serial_cells.len())
        .set("qbd_analyses", 2 * serial_cells.len())
        .set("bit_identical", identical)
        .set("serial", &serial)
        .set("parallel", &parallel)
        .set("parallel_8_threads", &parallel8)
        .set("speedup_at_sweep_threads", speedup)
        .set("speedup_at_8_threads", speedup8);
    report.set("figure4_grid", fig4);

    // ---- 2. Single-threaded QBD solve: workspace vs reference ---------
    section("QBD R solve, single thread: allocation-free workspace vs reference");
    let mut qbd_rows = Vec::new();
    let cases: [(&str, RSolver, usize, u64); 4] = [
        ("fp", RSolver::FixedPoint, 6, 30),
        ("lr", RSolver::LogarithmicReduction, 6, 200),
        ("lr", RSolver::LogarithmicReduction, 18, 60),
        ("lr", RSolver::LogarithmicReduction, 34, 20),
    ];
    for (tag, solver, p, iters) in cases {
        let qbd = erlang_qbd(p, 0.8, 1.0);
        let mut ws = QbdWorkspace::new(p);
        let mut b = Bench::with_samples(5);
        let reference = b
            .time(&format!("qbd_{tag}_reference_p{p}"), iters, || {
                qbd.solve_r_reference(solver).unwrap()
            })
            .clone();
        let workspace = b
            .time(&format!("qbd_{tag}_workspace_p{p}"), iters, || {
                qbd.solve_r_with_workspace(solver, &mut ws).unwrap()
            })
            .clone();
        let speedup = reference.median_s / workspace.median_s;
        println!("  {tag} p = {p}: {speedup:.2}x over reference");
        let mut row = Json::object();
        row.set("solver", tag)
            .set("phases", p)
            .set("reference", &reference)
            .set("workspace", &workspace)
            .set("speedup", speedup);
        qbd_rows.push(row);
    }
    report.set("qbd_single_thread", qbd_rows);

    // ---- 3. Parallel simulation replications --------------------------
    section("simulation replications: parallel vs serial (8 x 50k departures)");
    let replicate = |threads: usize| {
        run_replications_with_threads(42, 8, threads, |seed| {
            run_markovian(&InelasticFirst, 4, 1.2, 0.9, 1.0, 0.7, seed, 5_000, 50_000).mean_response
        })
    };
    let serial_reports = replicate(1);
    let parallel_reports = replicate(sweep_threads);
    let rep_identical = serial_reports
        .iter()
        .zip(&parallel_reports)
        .all(|(a, b)| a.to_bits() == b.to_bits());
    assert!(rep_identical, "parallel replications diverged from serial");
    println!("  parallel replications bit-identical to serial: {rep_identical}");
    let mut b = Bench::with_samples(3);
    let rep_serial = b.time("replications_serial", 1, || replicate(1)).clone();
    let rep_parallel = b
        .time(
            &format!("replications_parallel_t{sweep_threads}"),
            1,
            || replicate(sweep_threads),
        )
        .clone();
    let rep_speedup = rep_serial.median_s / rep_parallel.median_s;
    println!("  speedup: {rep_speedup:.2}x at {sweep_threads} threads");
    let mut rep = Json::object();
    rep.set("replications", 8u64)
        .set("departures_each", 50_000u64)
        .set("bit_identical", rep_identical)
        .set("serial", &rep_serial)
        .set("parallel", &rep_parallel)
        .set("speedup", rep_speedup);
    report.set("replications", rep);

    // ---- Targets vs this machine --------------------------------------
    // The PR-1 perf targets assume a multi-core runner: >= 4x on the
    // Figure 4 grid at 8 threads needs >= 8 physical cores. Record how the
    // current hardware relates to the targets so the committed artifact is
    // interpretable wherever it was produced.
    let mut targets = Json::object();
    targets
        .set("figure4_grid_parallel_target_speedup", 4.0)
        .set("figure4_grid_parallel_target_threads", 8u64)
        .set("figure4_grid_parallel_target_requires_cores", 8u64)
        .set("qbd_single_thread_target_speedup", 1.5)
        .set(
            "parallel_note",
            if cores >= 8 {
                "machine satisfies the 8-core assumption of the parallel target"
            } else {
                "machine has fewer cores than the 8-core parallel target assumes; \
                 parallel speedups above reflect hardware, not the engine — rerun \
                 `cargo bench -p eirs-bench --bench sweep_speedup` on a multi-core \
                 host to measure real scaling"
            },
        )
        .set(
            "qbd_single_thread_note",
            "the workspace-vs-reference ratio is hardware-independent: \
             allocation overhead dominates only at small phase dimensions \
             (the Figure 4 grid runs at p = k + 2 = 6, where the measured \
             gain is ~1.3-1.4x); at p >= 18 the solve is flop-bound and the \
             allocation-free path is at parity, short of the 1.5x target — \
             see qbd_single_thread rows for the per-dimension record",
        );
    report.set("targets", targets);

    // ---- Write the artifact -------------------------------------------
    let out_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sweeps.json");
    std::fs::write(out_path, report.pretty()).expect("write BENCH_sweeps.json");
    println!();
    println!(
        "wrote {out_path} (grid serial {} -> parallel {})",
        pretty_seconds(serial.median_s),
        pretty_seconds(parallel.median_s)
    );
}
