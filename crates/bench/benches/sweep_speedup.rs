//! PERF — the sweep-engine and hot-path speedup record.
//!
//! Measures, on the current machine:
//!
//! 1. the Figure 4 heat-map grid (3 loads × 196 (µ_I, µ_E) cells, two QBD
//!    analyses per cell) as a **1/2/4/8-thread scaling table**, for both
//!    the cold driver and the warm-started driver (each grid row seeds the
//!    next cell's R solve from its neighbor), verifying on the way that
//!    every parallel run is **bit-identical** to its serial counterpart;
//! 2. the warm-vs-cold serial ablation and the combined improvement over
//!    the committed PR-1 serial baseline;
//! 3. kernel micro-ablations: the L1-tiled `mul_into` vs the retained
//!    naive reference, and the panel-blocked LU vs the retained unblocked
//!    reference, at dimensions past the tile/panel sizes;
//! 4. single-threaded QBD `R`-matrix solves: the allocation-free workspace
//!    path vs the allocation-per-step reference implementation;
//! 5. parallel vs serial simulation replications (per-replication seed
//!    streams).
//!
//! Results print as text and are written to `BENCH_sweeps.json` at the
//! workspace root so the perf trajectory is recorded PR over PR. Set
//! `EIRS_BENCH_SMOKE=1` to run a tiny-iteration smoke pass (CI): every
//! section executes, correctness gates still assert, but the artifact is
//! **not** rewritten, so a 1-sample run never pollutes the trajectory.
//!
//! Run: `cargo bench -p eirs-bench --bench sweep_speedup`

use eirs_bench::harness::{pretty_seconds, Bench, Measurement};
use eirs_bench::json::Json;
use eirs_bench::section;
use eirs_core::experiments::{
    figure4_heatmap_serial, figure4_heatmap_warm_serial, figure4_heatmap_warm_with_threads,
    figure4_heatmap_with_threads, HeatMapCell,
};
use eirs_markov::{Qbd, QbdWorkspace, RSolver};
use eirs_numerics::lu::LuDecomposition;
use eirs_numerics::Matrix;
use eirs_sim::des::run_markovian;
use eirs_sim::policy::InelasticFirst;
use eirs_sim::replicate::run_replications_with_threads;

const RHOS: [f64; 3] = [0.5, 0.7, 0.9];
const K: u32 = 4;

/// Thread counts of the scaling table; the metadata block reports the
/// maximum as the thread count this bench drove.
const SCALING_THREADS: [usize; 4] = [1, 2, 4, 8];

/// Median serial time of the Figure 4 grid in the committed PR-1
/// `BENCH_sweeps.json` (same grid, same cell count, cold solver, no
/// workspace pooling). The combined-improvement row below is measured
/// against this number.
const PR1_BASELINE_SERIAL_MEDIAN_S: f64 = 0.022564941;

fn smoke() -> bool {
    std::env::var_os("EIRS_BENCH_SMOKE").is_some_and(|v| !v.is_empty() && v != "0")
}

fn grid_cells(threads: usize, warm: bool) -> Vec<HeatMapCell> {
    RHOS.iter()
        .flat_map(|&rho| match (warm, threads) {
            (false, 1) => figure4_heatmap_serial(K, rho).expect("grid solves"),
            (false, t) => figure4_heatmap_with_threads(K, rho, t).expect("grid solves"),
            (true, 1) => figure4_heatmap_warm_serial(K, rho).expect("grid solves"),
            (true, t) => figure4_heatmap_warm_with_threads(K, rho, t).expect("grid solves"),
        })
        .collect()
}

fn cells_bit_identical(a: &[HeatMapCell], b: &[HeatMapCell]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(x, y)| {
            x.comparison.mrt_if.to_bits() == y.comparison.mrt_if.to_bits()
                && x.comparison.mrt_ef.to_bits() == y.comparison.mrt_ef.to_bits()
                && x.comparison.winner == y.comparison.winner
        })
}

/// An M/E_p/1 QBD (Erlang-p service tracked by phase): phase dimension `p`,
/// stable for `lambda < mu`. Exercises the R iterations at a controllable
/// phase dimension.
fn erlang_qbd(p: usize, lambda: f64, mu: f64) -> Qbd {
    let stage_rate = p as f64 * mu;
    let a0 = Matrix::identity(p).scaled(lambda);
    let mut a1 = Matrix::zeros(p, p);
    for i in 0..p - 1 {
        a1[(i, i + 1)] = stage_rate;
    }
    let mut a2 = Matrix::zeros(p, p);
    a2[(p - 1, 0)] = stage_rate;
    let mut u0 = Matrix::zeros(p, p);
    for i in 0..p {
        u0[(i, 0)] = lambda;
    }
    Qbd::new(vec![u0], vec![Matrix::zeros(p, p)], vec![], a0, a1, a2).expect("valid blocks")
}

/// Deterministic dense test matrix for the kernel ablations.
fn kernel_matrix(rows: usize, cols: usize, seed: &mut u64) -> Matrix {
    let mut m = Matrix::zeros(rows, cols);
    for i in 0..rows {
        for j in 0..cols {
            *seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            m[(i, j)] = ((*seed >> 11) as f64) / ((1u64 << 52) as f64) - 1.0;
        }
    }
    m
}

fn main() {
    let smoke = smoke();
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let samples = if smoke { 1 } else { 5 };
    let max_threads = *SCALING_THREADS.last().unwrap();
    let mut report = Json::object();
    report.set("schema", "eirs-bench-sweeps/v2");
    report.set(
        "hardware",
        eirs_bench::json::run_metadata_with_threads(max_threads),
    );
    if smoke {
        section("EIRS_BENCH_SMOKE: tiny-iteration smoke pass, artifact will not be rewritten");
    }

    // ---- 1. Figure 4 grid: cold/warm × 1/2/4/8-thread scaling table ---
    section(&format!(
        "Figure 4 grid sweep (k = {K}, rho in {RHOS:?}, 588 cells, 1176 QBD analyses)"
    ));
    let serial_cold = grid_cells(1, false);
    let serial_warm = grid_cells(1, true);
    for &t in &SCALING_THREADS[1..] {
        let cold_ok = cells_bit_identical(&serial_cold, &grid_cells(t, false));
        let warm_ok = cells_bit_identical(&serial_warm, &grid_cells(t, true));
        assert!(cold_ok, "cold parallel sweep diverged from serial at t={t}");
        assert!(warm_ok, "warm parallel sweep diverged from serial at t={t}");
    }
    println!("  parallel output bit-identical to serial (cold and warm): true");

    // Headline grid timings gate the recorded artifact, so each sample is
    // the min of 3 back-to-back reps (see `Bench::time_min_of`): the grid
    // is deterministic CPU-bound work, and the min-of-reps floor is the
    // statistic that survives bursty scheduler noise on shared hosts.
    let grid_reps = if smoke { 1 } else { 3 };
    let mut bench = Bench::with_samples(samples);
    let mut cold_runs: Vec<Measurement> = Vec::new();
    let mut warm_runs: Vec<Measurement> = Vec::new();
    for &t in &SCALING_THREADS {
        cold_runs.push(
            bench
                .time_min_of(&format!("figure4_grid_cold_t{t}"), 1, grid_reps, || {
                    grid_cells(t, false)
                })
                .clone(),
        );
    }
    for &t in &SCALING_THREADS {
        warm_runs.push(
            bench
                .time_min_of(&format!("figure4_grid_warm_t{t}"), 1, grid_reps, || {
                    grid_cells(t, true)
                })
                .clone(),
        );
    }
    let warm_over_cold_serial = cold_runs[0].median_s / warm_runs[0].median_s;
    let improvement_vs_pr1 = PR1_BASELINE_SERIAL_MEDIAN_S / warm_runs[0].median_s;

    println!("  threads  cold median   speedup   warm median   speedup");
    let mut scaling_rows = Vec::new();
    for (i, &t) in SCALING_THREADS.iter().enumerate() {
        let cold_speedup = cold_runs[0].median_s / cold_runs[i].median_s;
        let warm_speedup = warm_runs[0].median_s / warm_runs[i].median_s;
        println!(
            "  {t:>7}  {:>11}  {cold_speedup:>6.2}x  {:>11}  {warm_speedup:>6.2}x",
            pretty_seconds(cold_runs[i].median_s),
            pretty_seconds(warm_runs[i].median_s),
        );
        let mut row = Json::object();
        row.set("threads", t)
            .set("cold", &cold_runs[i])
            .set("warm", &warm_runs[i])
            .set("cold_speedup_vs_serial", cold_speedup)
            .set("warm_speedup_vs_serial", warm_speedup);
        scaling_rows.push(row);
    }
    println!(
        "  warm-start ablation (serial): {warm_over_cold_serial:.2}x over cold; \
         combined vs PR-1 baseline ({PR1_BASELINE_SERIAL_MEDIAN_S} s): {improvement_vs_pr1:.2}x \
         (machine has {cores} cores)"
    );
    let mut fig4 = Json::object();
    fig4.set("cells", serial_cold.len())
        .set("qbd_analyses", 2 * serial_cold.len())
        .set("bit_identical", true)
        .set("scaling", scaling_rows)
        .set("warm_over_cold_serial", warm_over_cold_serial)
        .set("pr1_baseline_serial_median_s", PR1_BASELINE_SERIAL_MEDIAN_S)
        .set("improvement_vs_pr1_baseline", improvement_vs_pr1);
    report.set("figure4_grid", fig4);

    // ---- 2. Kernel ablations: tiled mul, panel-blocked LU -------------
    section("kernel ablations: tiled vs naive mul_into, blocked vs unblocked LU");
    let mut seed = 0x5EED_u64;
    let mut mul_rows = Vec::new();
    let mul_dims: [(usize, usize, usize, u64); 2] = [(64, 64, 64, 40), (160, 160, 160, 4)];
    for (m, k, n, iters) in mul_dims {
        let iters = if smoke { 1 } else { iters };
        let a = kernel_matrix(m, k, &mut seed);
        let b = kernel_matrix(k, n, &mut seed);
        let mut out = Matrix::zeros(m, n);
        let mut bk = Bench::with_samples(samples);
        let naive = bk
            .time(&format!("mul_naive_{m}x{k}x{n}"), iters, || {
                a.mul_into_naive(&b, &mut out)
            })
            .clone();
        let tiled = bk
            .time(&format!("mul_tiled_{m}x{k}x{n}"), iters, || {
                a.mul_into(&b, &mut out)
            })
            .clone();
        let speedup = naive.median_s / tiled.median_s;
        println!("  mul {m}x{k}x{n}: tiled {speedup:.2}x over naive");
        let mut row = Json::object();
        row.set("dims", format!("{m}x{k}x{n}"))
            .set("naive", &naive)
            .set("tiled", &tiled)
            .set("speedup", speedup);
        mul_rows.push(row);
    }
    let mut lu_rows = Vec::new();
    let lu_dims: [(usize, u64); 2] = [(96, 20), (320, 2)];
    for (n, iters) in lu_dims {
        let iters = if smoke { 1 } else { iters };
        let a = kernel_matrix(n, n, &mut seed);
        let mut bk = Bench::with_samples(samples);
        let unblocked = bk
            .time(&format!("lu_unblocked_n{n}"), iters, || {
                LuDecomposition::new_unblocked(&a).unwrap()
            })
            .clone();
        let blocked = bk
            .time(&format!("lu_blocked_n{n}"), iters, || {
                LuDecomposition::new(&a).unwrap()
            })
            .clone();
        let speedup = unblocked.median_s / blocked.median_s;
        println!("  lu n={n}: blocked {speedup:.2}x over unblocked");
        let mut row = Json::object();
        row.set("n", n)
            .set("unblocked", &unblocked)
            .set("blocked", &blocked)
            .set("speedup", speedup);
        lu_rows.push(row);
    }
    let mut kernels = Json::object();
    kernels.set("mul", mul_rows).set("lu", lu_rows);
    report.set("kernel_ablations", kernels);

    // ---- 3. Single-threaded QBD solve: workspace vs reference ---------
    section("QBD R solve, single thread: allocation-free workspace vs reference");
    let mut qbd_rows = Vec::new();
    let cases: [(&str, RSolver, usize, u64); 4] = [
        ("fp", RSolver::FixedPoint, 6, 30),
        ("lr", RSolver::LogarithmicReduction, 6, 200),
        ("lr", RSolver::LogarithmicReduction, 18, 60),
        ("lr", RSolver::LogarithmicReduction, 34, 20),
    ];
    for (tag, solver, p, iters) in cases {
        let iters = if smoke { 1 } else { iters };
        let qbd = erlang_qbd(p, 0.8, 1.0);
        let mut ws = QbdWorkspace::new(p);
        let mut b = Bench::with_samples(samples);
        let reference = b
            .time(&format!("qbd_{tag}_reference_p{p}"), iters, || {
                qbd.solve_r_reference(solver).unwrap()
            })
            .clone();
        let workspace = b
            .time(&format!("qbd_{tag}_workspace_p{p}"), iters, || {
                qbd.solve_r_with_workspace(solver, &mut ws).unwrap()
            })
            .clone();
        let speedup = reference.median_s / workspace.median_s;
        println!("  {tag} p = {p}: {speedup:.2}x over reference");
        let mut row = Json::object();
        row.set("solver", tag)
            .set("phases", p)
            .set("reference", &reference)
            .set("workspace", &workspace)
            .set("speedup", speedup);
        qbd_rows.push(row);
    }
    report.set("qbd_single_thread", qbd_rows);

    // ---- 4. Parallel simulation replications --------------------------
    let departures: u64 = if smoke { 2_000 } else { 50_000 };
    section(&format!(
        "simulation replications: parallel vs serial (8 x {departures} departures)"
    ));
    let replicate = |threads: usize| {
        run_replications_with_threads(42, 8, threads, |seed| {
            run_markovian(
                &InelasticFirst,
                4,
                1.2,
                0.9,
                1.0,
                0.7,
                seed,
                departures / 10,
                departures,
            )
            .mean_response
        })
    };
    let serial_reports = replicate(1);
    let parallel_reports = replicate(max_threads);
    let rep_identical = serial_reports
        .iter()
        .zip(&parallel_reports)
        .all(|(a, b)| a.to_bits() == b.to_bits());
    assert!(rep_identical, "parallel replications diverged from serial");
    println!("  parallel replications bit-identical to serial: {rep_identical}");
    let mut b = Bench::with_samples(samples.min(3));
    let rep_serial = b.time("replications_serial", 1, || replicate(1)).clone();
    let rep_parallel = b
        .time(&format!("replications_parallel_t{max_threads}"), 1, || {
            replicate(max_threads)
        })
        .clone();
    let rep_speedup = rep_serial.median_s / rep_parallel.median_s;
    println!("  speedup: {rep_speedup:.2}x at {max_threads} threads");
    let mut rep = Json::object();
    rep.set("replications", 8u64)
        .set("departures_each", departures)
        .set("bit_identical", rep_identical)
        .set("serial", &rep_serial)
        .set("parallel", &rep_parallel)
        .set("speedup", rep_speedup);
    report.set("replications", rep);

    // ---- Targets vs this machine --------------------------------------
    // The parallel targets assume a multi-core runner; the serial targets
    // (warm-start ablation, combined improvement vs the PR-1 baseline) are
    // hardware-independent ratios. Record how the current hardware relates
    // to the targets so the committed artifact is interpretable wherever
    // it was produced.
    let mut targets = Json::object();
    targets
        .set("figure4_serial_improvement_target", 2.0)
        .set("figure4_serial_improvement_measured", improvement_vs_pr1)
        .set("figure4_grid_parallel_target_speedup", 4.0)
        .set("figure4_grid_parallel_target_threads", 8u64)
        .set("figure4_grid_parallel_target_requires_cores", 8u64)
        .set(
            "parallel_note",
            if cores >= 8 {
                "machine satisfies the 8-core assumption of the parallel target"
            } else {
                "machine has fewer cores than the 8-core parallel target assumes; \
                 the scaling table above reflects hardware, not the engine — rerun \
                 `cargo bench -p eirs-bench --bench sweep_speedup` on a multi-core \
                 host to measure real scaling"
            },
        )
        .set(
            "serial_note",
            "warm_over_cold_serial and improvement_vs_pr1_baseline are \
             single-thread ratios and hold on any machine: warm starts seed \
             each R solve from the neighboring grid cell and workspace \
             pooling removes per-cell allocation from the solve path",
        );
    report.set("targets", targets);

    // ---- Write the artifact -------------------------------------------
    if smoke {
        println!();
        println!("smoke mode: skipping BENCH_sweeps.json rewrite");
        return;
    }
    let out_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sweeps.json");
    std::fs::write(out_path, report.pretty()).expect("write BENCH_sweeps.json");
    println!();
    println!(
        "wrote {out_path} (grid cold serial {} -> warm serial {}, {improvement_vs_pr1:.2}x vs PR-1 baseline)",
        pretty_seconds(cold_runs[0].median_s),
        pretty_seconds(warm_runs[0].median_s)
    );
}
