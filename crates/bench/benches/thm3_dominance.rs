//! THM3 — supporting evidence for the Theorem 3 sample-path argument:
//! Inelastic-First pathwise-minimizes total work W(t) and inelastic work
//! W_I(t) among class-P policies, on every coupled arrival sequence.
//!
//! The harness couples IF against EF, fair-share, and a batch of random
//! class-P policies on shared traces (including non-exponential sizes —
//! the proof is distribution-free) and reports the number of trajectory
//! comparisons checked and the worst margin observed.
//!
//! Run: `cargo bench -p eirs-bench --bench thm3_dominance`

use eirs_bench::section;
use eirs_queueing::distributions::{BoundedPareto, Exponential, SizeDistribution, UniformSize};
use eirs_sim::coupling::{dominates_throughout, WorkTrajectory};
use eirs_sim::policy::{AllocationPolicy, ElasticFirst, FairShare, InelasticFirst, TablePolicy};
use eirs_sim::{Arrival, ArrivalTrace, JobClass};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_trace(seed: u64, n: usize, dist: &dyn SizeDistribution) -> ArrivalTrace {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut t = 0.0;
    ArrivalTrace::new(
        (0..n)
            .map(|_| {
                t += -(1.0 - rng.random::<f64>()).ln() * 0.4;
                let class = if rng.random::<f64>() < 0.5 {
                    JobClass::Inelastic
                } else {
                    JobClass::Elastic
                };
                Arrival {
                    time: t,
                    class,
                    size: dist.sample(&mut rng),
                }
            })
            .collect(),
    )
}

fn main() {
    section("Theorem 3: coupled work dominance of Inelastic-First over class P");
    let distributions: Vec<(&str, Box<dyn SizeDistribution>)> = vec![
        ("Exp(1)", Box::new(Exponential::new(1.0))),
        ("Uniform[0.1, 3]", Box::new(UniformSize::new(0.1, 3.0))),
        (
            "BoundedPareto(1.3)",
            Box::new(BoundedPareto::new(1.3, 0.2, 50.0)),
        ),
    ];
    let k = 4;
    println!("  size law             competitor        traces  epochs checked  violations");
    for (dist_name, dist) in &distributions {
        let competitors: Vec<(String, Box<dyn AllocationPolicy>)> = {
            let mut v: Vec<(String, Box<dyn AllocationPolicy>)> = vec![
                ("Elastic-First".into(), Box::new(ElasticFirst)),
                ("Fair-Share".into(), Box::new(FairShare)),
            ];
            for s in 0..5u64 {
                v.push((
                    format!("RandomP#{s}"),
                    Box::new(TablePolicy::random_class_p(s)),
                ));
            }
            v
        };
        for (comp_name, policy) in &competitors {
            let mut violations = 0usize;
            let mut epochs = 0usize;
            let traces = 30u64;
            for seed in 0..traces {
                let trace = random_trace(seed * 7 + 1, 300, dist.as_ref());
                let w_if = WorkTrajectory::record(&InelasticFirst, &trace, k);
                let w_p = WorkTrajectory::record(policy.as_ref(), &trace, k);
                epochs += w_if.samples().len() + w_p.samples().len();
                if dominates_throughout(&w_if, &w_p, 1e-7).is_some() {
                    violations += 1;
                }
            }
            println!("  {dist_name:<20} {comp_name:<17} {traces:<7} {epochs:<15} {violations}");
            assert_eq!(
                violations, 0,
                "dominance violated: {dist_name} vs {comp_name}"
            );
        }
    }
    println!(
        "\n  Zero violations across every distribution, competitor, and epoch —\n\
         the pathwise inequality W_IF(t) ≤ W_π(t), W_I,IF(t) ≤ W_I,π(t) of\n\
         Theorem 3, checked at every kink of every coupled trajectory."
    );
}
