//! FAULTS — the fault-tolerance record: graceful degradation under
//! capacity loss and crash-recovery replay cost.
//!
//! Measures, on the current machine:
//!
//! 1. the **degradation curve**: the same offered stream served under
//!    maintenance-drain schedules taking 0, 1, … k−1 servers out per
//!    cycle — mean response time, shed (rejection) rate, and the share
//!    of degraded decisions as a function of the capacity lost, with
//!    the digest asserted worker-count invariant at every point;
//! 2. **crash-recovery replay**: a journaled run snapshotted at ⅓ and
//!    killed at ⅔ of the workload, then recovered from snapshot +
//!    write-ahead journal — recovery wall time vs replaying the whole
//!    stream from scratch, with the recovered digest asserted equal to
//!    the uninterrupted run's.
//!
//! Results print as text and are written to `BENCH_faults.json` at the
//! workspace root so the fault-tolerance trajectory is recorded PR
//! over PR.
//!
//! Run: `cargo bench -p eirs-bench --bench fault_tolerance`

use eirs_bench::harness::{pretty_seconds, Bench};
use eirs_bench::json::Json;
use eirs_bench::section;
use eirs_core::SystemParams;
use eirs_queueing::Exponential;
use eirs_serve::{
    recover, run_journaled, ChurnConfig, CompiledTable, EngineConfig, Journal, JournalWriter,
    RunControls, ServeEngine,
};
use eirs_sim::arrivals::{Arrival, ArrivalTrace};
use eirs_sim::availability::FaultSpec;
use eirs_sim::policy::{AllocationPolicy, SwitchingCurvePolicy};

const K: u32 = 4;
const ROUTE_SHARDS: usize = 4;
const RHO_PER_SHARD: f64 = 0.7;
const GRID: usize = 48;
/// Simulated horizon of the prerecorded stream.
const HORIZON: f64 = 4_000.0;
/// Fault schedules are generated past the stream so late drains count.
const FAULT_HORIZON: f64 = 5_000.0;

fn policy() -> Box<dyn AllocationPolicy> {
    Box::new(SwitchingCurvePolicy {
        intercept: 2,
        slope: 0.5,
    })
}

fn table() -> CompiledTable {
    CompiledTable::compile(policy(), K, GRID, GRID)
}

/// Prerecords the offered stream: `ROUTE_SHARDS` x the single-cluster
/// rate, so every shard runs at load `RHO_PER_SHARD` after hash routing.
fn record_stream() -> Vec<Arrival> {
    let p = SystemParams::with_equal_lambdas(K, 1.0, 1.0, RHO_PER_SHARD).expect("stable params");
    let scale = ROUTE_SHARDS as f64;
    let mut stream = eirs_sim::PoissonStream::new(
        p.lambda_i * scale,
        p.lambda_e * scale,
        Box::new(Exponential::new(p.mu_i)),
        Box::new(Exponential::new(p.mu_e)),
        7,
    );
    ArrivalTrace::record(&mut stream, HORIZON)
        .arrivals()
        .to_vec()
}

fn engine_config(churn: Option<ChurnConfig>) -> EngineConfig {
    let mut config = EngineConfig::new(K).route_shards(ROUTE_SHARDS).batch(1024);
    if let Some(c) = churn {
        // Tight enough that deep drains actually shed load; the curve
        // should show the admission controller working, not just queues.
        config = config.churn(c).shed_limit(16);
    }
    config
}

fn replay(arrivals: &[Arrival], config: EngineConfig) -> ServeEngine {
    let mut engine = ServeEngine::new(table(), config);
    engine.ingest_batch(arrivals);
    engine.drain();
    engine
}

fn main() {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let workers = cores.clamp(2, ROUTE_SHARDS);
    let mut report = Json::object();
    report.set("schema", "eirs-bench-faults/v1");
    report.set("hardware", eirs_bench::json::run_metadata());

    let arrivals = record_stream();

    // ---- 1. Degradation curve over capacity loss ----------------------
    section(&format!(
        "degradation curve (k = {K}, {ROUTE_SHARDS} route shards, rho {RHO_PER_SHARD} per shard, \
         drain period 50 / down 10)"
    ));
    println!(
        "  prerecorded stream: {} arrivals over {HORIZON} time units",
        arrivals.len()
    );
    let baseline = replay(&arrivals, engine_config(None));
    let base_t = baseline.metrics_total().mean_response();
    let mut curve = Vec::new();
    for down in 0..K {
        let churn = if down == 0 {
            None
        } else {
            Some(ChurnConfig {
                spec: FaultSpec::parse(&format!("drain:period=50,down=10,servers={down}"))
                    .expect("valid drain spec"),
                seed: 11,
                horizon: FAULT_HORIZON,
            })
        };
        let config = engine_config(churn);
        let engine = replay(&arrivals, config);
        // The curve is only meaningful if degraded operation keeps the
        // determinism contract: workers must not change the digest.
        let parallel = replay(&arrivals, config.workers(workers));
        assert_eq!(
            parallel.decision_digest(),
            engine.decision_digest(),
            "parallel replay diverged at {down} servers down"
        );
        let m = engine.metrics_total();
        let loss = down as f64 / K as f64;
        let shed_rate = m.rejections as f64 / m.arrivals as f64;
        let degraded_share = m.degraded_decisions as f64 / m.decisions as f64;
        let stretch = m.mean_response() / base_t;
        println!(
            "  {down}/{K} servers draining: mean T {:.4} ({stretch:.3}x), shed {:.4}, \
             degraded {:.3}, {} preempt-restarts",
            m.mean_response(),
            shed_rate,
            degraded_share,
            m.preemptions
        );
        assert_eq!(
            m.completions + m.rejections,
            m.arrivals,
            "every arrival is served or accounted as shed at {down} down"
        );
        let mut row = Json::object();
        row.set("servers_down", down as u64)
            .set("capacity_loss", loss)
            .set("mean_response", m.mean_response())
            .set("response_stretch", stretch)
            .set("shed_rate", shed_rate)
            .set("degraded_share", degraded_share)
            .set("preemptions", m.preemptions)
            .set("rejections", m.rejections)
            .set("completions", m.completions)
            .set("worker_invariant", true);
        curve.push(row);
    }
    report.set("degradation_curve", curve);

    // ---- 2. Crash-recovery replay cost --------------------------------
    section("crash recovery (snapshot at 1/3, kill at 2/3, WAL replay)");
    let churn = Some(ChurnConfig {
        spec: FaultSpec::parse("crash:mtbf=120,mttr=15").expect("valid crash spec"),
        seed: 13,
        horizon: FAULT_HORIZON,
    });
    let config = engine_config(churn);
    let reference = replay(&arrivals, config);
    let n = arrivals.len() as u64;
    let (snapshot_at, kill_after) = (n / 3, 2 * n / 3);

    // One journaled, killed run; its WAL + snapshot feed every timed
    // recovery below (recovery is read-only over both).
    let mut crashed = ServeEngine::new(table(), config);
    let trace = ArrivalTrace::new(arrivals.clone());
    let mut source = trace.stream();
    let mut wal = JournalWriter::create(Vec::new(), &crashed).expect("journal to memory");
    let outcome = run_journaled(
        &mut crashed,
        &mut source,
        f64::INFINITY,
        &mut wal,
        RunControls {
            snapshot_at: Some(snapshot_at),
            kill_after: Some(kill_after),
        },
    )
    .expect("journal to memory");
    assert!(outcome.killed, "the controlled run must be killed");
    let snap = outcome.snapshot.expect("snapshot precedes the kill");
    drop(crashed);
    let bytes = wal.into_inner().expect("flush memory journal");
    let journal =
        Journal::load_prefix(&mut std::io::Cursor::new(&bytes)).expect("WAL parses after kill");
    println!(
        "  journal: {} entries ({} bytes); snapshot at {snapshot_at}, killed at {kill_after}",
        journal.entries.len(),
        bytes.len()
    );

    let mut bench = Bench::with_samples(5);
    let scratch = bench
        .time("replay_from_scratch", 1, || replay(&arrivals, config))
        .clone();
    let recovery = bench
        .time("recover_snapshot_plus_wal", 1, || {
            let mut engine = recover(table(), config, &snap, &journal).expect("recovery succeeds");
            let resume = engine.ingested() as usize;
            engine.ingest_batch(&arrivals[resume..]);
            engine.drain();
            engine
        })
        .clone();
    // Correctness of the timed path: recover once more and compare.
    let mut recovered = recover(table(), config, &snap, &journal).expect("recovery succeeds");
    let resume = recovered.ingested() as usize;
    recovered.ingest_batch(&arrivals[resume..]);
    recovered.drain();
    assert_eq!(
        recovered.decision_digest(),
        reference.decision_digest(),
        "recovered digest diverged from the uninterrupted run"
    );
    assert_eq!(recovered.metrics_total(), reference.metrics_total());
    println!(
        "  from scratch: {}   recover + finish: {}  ({:.2}x)",
        pretty_seconds(scratch.median_s),
        pretty_seconds(recovery.median_s),
        scratch.median_s / recovery.median_s
    );
    println!("  recovered digest bit-identical to uninterrupted run: true");

    let mut rec = Json::object();
    rec.set("arrivals", n)
        .set("snapshot_at", snapshot_at)
        .set("kill_after", kill_after)
        .set("journal_entries", journal.entries.len())
        .set("journal_bytes", bytes.len())
        .set("replay_from_scratch", &scratch)
        .set("recover_and_finish", &recovery)
        .set("speedup_vs_scratch", scratch.median_s / recovery.median_s)
        .set("recovered_bit_identical", true);
    report.set("recovery", rec);

    let out_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_faults.json");
    std::fs::write(out_path, report.pretty()).expect("write BENCH_faults.json");
    println!("\nwrote {out_path}");
}
