//! POLICY OPTIMIZER — per-workload optimality gaps and baseline
//! improvements for the search subsystem (`eirs-opt`).
//!
//! Two records, matching what is provable per workload:
//!
//! 1. **Poisson×exponential instances** spanning `ρ` and `k`: the search
//!    runs against the exact analytic objective and its best-found mean
//!    response is certified against `eirs_mdp::solve_optimal`'s MDP
//!    optimum. The acceptance bar is an optimality gap ≤ 1% on every
//!    instance.
//! 2. **Intractable workloads** (bursty batches, frozen trace-file
//!    replay): the search runs against the CRN-paired DES objective and
//!    the best-found policy is compared to the EF/IF baselines with a
//!    paired 95% CI (`eirs_sim::coupling::paired_comparison`); the bar is
//!    beating the *best* baseline with the whole interval below zero
//!    (exactly zero width for the deterministic trace replay, which is an
//!    exact comparison on that path).
//!
//! Results go to `BENCH_policy_optimizer.json`.
//!
//! Run: `cargo bench -p eirs-bench --bench policy_optimizer`

use eirs_bench::json::{run_metadata, Json};
use eirs_bench::section;
use eirs_core::analysis::{analyze_policy_with, AnalyzeOptions};
use eirs_core::scenario::{ArrivalSpec, ServiceSpec, Workload};
use eirs_core::SystemParams;
use eirs_opt::objective::{AnalyticObjective, DesObjective, Objective};
use eirs_opt::optim::{optimize_refined, Budget, Method, OptReport};
use eirs_opt::space::{ParamSpace, SwitchingCurveFamily, TabularFamily, ThresholdFamily};
use eirs_opt::{certify_against_mdp, improvement_over_baselines};
use eirs_sim::arrivals::{ArrivalTrace, BurstyStream};
use eirs_sim::policy::{ElasticFirst, InelasticFirst};

const SEED: u64 = 42;

fn opts() -> AnalyzeOptions {
    AnalyzeOptions {
        phase_cap: 48,
        ..AnalyzeOptions::default()
    }
}

/// Two-stage search: the family-appropriate global method, then a
/// coordinate-pattern polish from the incumbent (`refine` extra budget).
fn search(
    space: &dyn ParamSpace,
    objective: &dyn Objective,
    budget: usize,
    refine: usize,
) -> OptReport {
    optimize_refined(
        space,
        objective,
        Method::Auto,
        &Budget {
            max_evals: budget,
            seed: SEED,
        },
        refine,
    )
    .expect("search")
}

fn main() {
    let mut report = Json::object();
    report.set("schema", "eirs-bench-policy-optimizer/v1");
    report.set("hardware", run_metadata());
    report.set("seed", SEED);

    // ── Part 1: Poisson×exp instances, certified against the MDP ──────
    section("policy optimizer vs MDP optimum (Poisson x exp)");
    println!(
        "{:<12} {:>2} {:>5} {:>5} {:>5}  {:<12} {:>6}  {:>9} {:>9} {:>8}  {:>7}",
        "instance",
        "k",
        "rho",
        "mu_i",
        "mu_e",
        "family",
        "evals",
        "found",
        "mdp_opt",
        "gap%",
        "IF-opt"
    );

    struct PoissonInstance {
        name: &'static str,
        k: u32,
        rho: f64,
        mu_i: f64,
        mu_e: f64,
        family: Box<dyn ParamSpace>,
        budget: usize,
        refine: usize,
        grid: usize,
    }
    let instances = vec![
        PoissonInstance {
            name: "if-regime",
            k: 2,
            rho: 0.5,
            mu_i: 1.5,
            mu_e: 1.0,
            family: Box::new(ThresholdFamily { max_threshold: 16 }),
            budget: 20,
            refine: 0,
            grid: 48,
        },
        PoissonInstance {
            name: "boundary",
            k: 4,
            rho: 0.7,
            mu_i: 1.0,
            mu_e: 1.0,
            family: Box::new(SwitchingCurveFamily {
                max_intercept: 16,
                max_slope: 4.0,
            }),
            budget: 60,
            refine: 0,
            grid: 48,
        },
        PoissonInstance {
            name: "open-mid",
            k: 3,
            rho: 0.6,
            mu_i: 0.5,
            mu_e: 1.0,
            family: Box::new(TabularFamily {
                k: 3,
                grid_i: 3,
                grid_j: 3,
            }),
            budget: 300,
            refine: 300,
            grid: 48,
        },
        PoissonInstance {
            name: "open-high",
            k: 4,
            rho: 0.8,
            mu_i: 0.5,
            mu_e: 1.0,
            family: Box::new(TabularFamily {
                k: 4,
                grid_i: 4,
                grid_j: 4,
            }),
            budget: 500,
            refine: 600,
            grid: 48,
        },
    ];

    let mut poisson_rows = Vec::new();
    let mut worst_gap = 0.0f64;
    for inst in &instances {
        let params = SystemParams::with_equal_lambdas(inst.k, inst.mu_i, inst.mu_e, inst.rho)
            .expect("stable instance");
        let objective = AnalyticObjective::poisson_exp(params, opts());
        let r = search(inst.family.as_ref(), &objective, inst.budget, inst.refine);
        let cert = certify_against_mdp(&params, r.best_value, inst.grid).expect("certify");
        let ef = analyze_policy_with(&ElasticFirst, &params, &opts())
            .expect("EF")
            .mean_response;
        let if_ = analyze_policy_with(&InelasticFirst, &params, &opts())
            .expect("IF")
            .mean_response;
        let best_baseline = ef.min(if_);
        let improvement = (best_baseline - r.best_value) / best_baseline;
        worst_gap = worst_gap.max(cert.optimality_gap);

        println!(
            "{:<12} {:>2} {:>5} {:>5} {:>5}  {:<12} {:>6}  {:>9.4} {:>9.4} {:>8.3}  {:>7}",
            inst.name,
            inst.k,
            inst.rho,
            inst.mu_i,
            inst.mu_e,
            r.family,
            r.evaluations,
            r.best_value,
            cert.mdp_mean_response,
            100.0 * cert.optimality_gap,
            if cert.mdp_matches_inelastic_first {
                "yes"
            } else {
                "no"
            }
        );

        let mut row = Json::object();
        row.set("instance", inst.name)
            .set("k", inst.k as u64)
            .set("rho", inst.rho)
            .set("mu_i", inst.mu_i)
            .set("mu_e", inst.mu_e)
            .set("family", r.family.clone())
            .set("optimizer", r.optimizer.clone())
            .set("evaluations", r.evaluations)
            .set("best_policy", r.best_policy.clone())
            .set("best_params", r.best_params.clone())
            .set("best_mean_response", r.best_value)
            .set("ef_mean_response", ef)
            .set("if_mean_response", if_)
            .set("improvement_over_best_baseline", improvement)
            .set("mdp_mean_response", cert.mdp_mean_response)
            .set("mdp_grid", cert.grid)
            .set("optimality_gap", cert.optimality_gap)
            .set("gap_within_1pct", cert.optimality_gap <= 0.01)
            .set(
                "mdp_matches_inelastic_first",
                cert.mdp_matches_inelastic_first,
            );
        poisson_rows.push(row);
    }
    println!();
    println!(
        "worst optimality gap: {:.3}%   (acceptance bar: <= 1%)",
        100.0 * worst_gap
    );
    report.set("poisson_certified", poisson_rows);
    report.set("worst_optimality_gap", worst_gap);

    // ── Part 2: intractable workloads, paired improvement over EF/IF ──
    section("policy optimizer vs EF/IF baselines (intractable workloads)");

    // A frozen trace file: record a bursty sample path once and replay it
    // verbatim — classified Intractable (DES-only), and every comparison
    // on it is exact (the same path, zero-width "CI").
    let trace_params = SystemParams::with_equal_lambdas(3, 1.0, 1.0, 0.75).expect("stable");
    let trace_departures: u64 = 60_000;
    let trace_path = std::env::temp_dir().join("eirs_policy_optimizer_bench.trace");
    let trace_workload = Workload::new(
        ArrivalSpec::TraceFile {
            path: trace_path.clone(),
        },
        ServiceSpec::Exponential,
        ServiceSpec::Exponential,
    )
    .named("trace");
    {
        // Record past the replay consumption horizon (`horizon_hint` is
        // the consumers' formula; the 1.25 is recording-side slack).
        let horizon = 1.25
            * trace_workload.horizon_hint(&trace_params, trace_departures / 10, trace_departures);
        let mut source = BurstyStream::new(
            trace_params.total_lambda() / 4.0,
            1.0 - 1.0 / 4.0,
            0.5,
            Box::new(eirs_queueing::Exponential::new(trace_params.mu_i)),
            Box::new(eirs_queueing::Exponential::new(trace_params.mu_e)),
            SEED,
        );
        let trace = ArrivalTrace::record(&mut source, horizon);
        trace.save(&trace_path).expect("write bench trace");
    }

    struct DesInstance {
        name: &'static str,
        workload: Workload,
        params: SystemParams,
        family: TabularFamily,
        budget: usize,
        refine: usize,
        replications: usize,
        departures: u64,
        exact_replay: bool,
    }
    let des_instances = vec![
        DesInstance {
            name: "bursty",
            workload: Workload::new(
                ArrivalSpec::Bursty { mean_burst: 4.0 },
                ServiceSpec::Exponential,
                ServiceSpec::Exponential,
            )
            .named("bursty"),
            params: SystemParams::with_equal_lambdas(4, 0.7, 1.0, 0.7).expect("stable"),
            family: TabularFamily {
                k: 4,
                grid_i: 2,
                grid_j: 2,
            },
            budget: 100,
            refine: 60,
            replications: 8,
            departures: 60_000,
            exact_replay: false,
        },
        DesInstance {
            name: "trace",
            workload: trace_workload,
            params: trace_params,
            family: TabularFamily {
                k: 3,
                grid_i: 2,
                grid_j: 2,
            },
            budget: 100,
            refine: 60,
            replications: 2,
            departures: trace_departures,
            exact_replay: true,
        },
    ];

    let mut des_rows = Vec::new();
    let mut all_beat = true;
    for inst in &des_instances {
        let objective = DesObjective::new(
            inst.workload.clone(),
            inst.params,
            SEED,
            inst.replications,
            inst.departures,
        );
        let r = search(&inst.family, &objective, inst.budget, inst.refine);
        let best_policy = inst.family.decode(&r.best_x);
        let cert = improvement_over_baselines(
            &inst.workload,
            &inst.params,
            best_policy.as_ref(),
            SEED,
            inst.replications.max(2),
            inst.departures,
        )
        .expect("improvement certificate");
        all_beat &= cert.beats_best_baseline;

        println!(
            "{:<8} k={} rho={:.2} mu_i={} mu_e={}  {} evals  found E[T] = {:.4}",
            inst.name,
            inst.params.k,
            inst.params.load(),
            inst.params.mu_i,
            inst.params.mu_e,
            r.evaluations,
            cert.best_found_mean_response
        );
        for b in &cert.baselines {
            println!(
                "         vs {:<16} E[T] = {:.4}   paired diff {:+.4} +- {:.4}{}",
                b.name,
                b.mean_response,
                b.diff_mean,
                b.diff_ci_half_width,
                if b.improves { "  (improves)" } else { "" }
            );
        }
        println!(
            "         beats best baseline under the paired 95% CI: {}",
            if cert.beats_best_baseline {
                "yes"
            } else {
                "NO"
            }
        );

        let mut row = Json::object();
        row.set("workload", inst.name)
            .set("k", inst.params.k as u64)
            .set("rho", inst.params.load())
            .set("mu_i", inst.params.mu_i)
            .set("mu_e", inst.params.mu_e)
            .set("family", r.family.clone())
            .set("optimizer", r.optimizer.clone())
            .set("evaluations", r.evaluations)
            .set("best_policy", r.best_policy.clone())
            .set("best_params", r.best_params.clone())
            .set("best_mean_response", cert.best_found_mean_response)
            .set("des_replications", inst.replications)
            .set("des_departures_each", inst.departures)
            .set("exact_replay", inst.exact_replay);
        let mut baselines = Vec::new();
        for b in &cert.baselines {
            let mut o = Json::object();
            o.set("policy", b.name.clone())
                .set("mean_response", b.mean_response)
                .set("paired_diff_mean", b.diff_mean)
                .set("paired_diff_ci_half_width", b.diff_ci_half_width)
                .set("improves", b.improves);
            baselines.push(o);
        }
        row.set("baselines", baselines)
            .set("beats_best_baseline", cert.beats_best_baseline);
        des_rows.push(row);
    }
    println!();
    println!(
        "all intractable instances beat the best fixed baseline: {}",
        if all_beat { "yes" } else { "NO" }
    );
    report.set("intractable_improvement", des_rows);
    report.set("all_intractable_beat_best_baseline", all_beat);
    let _ = std::fs::remove_file(&trace_path);

    let out_path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_policy_optimizer.json"
    );
    std::fs::write(out_path, report.pretty()).expect("write BENCH_policy_optimizer.json");
    println!("wrote {out_path}");
}
