//! OPT1 — numerical optimality maps (Theorems 1/5 + the Section 6 open
//! question).
//!
//! Solves the truncated average-cost MDP across the (µ_I, µ_E) plane and
//! reports, per point: the optimal E[T], IF's and EF's E[T], whether IF is
//! optimal (it must be for µ_I ≥ µ_E), and how much is left on the table
//! in the open µ_I < µ_E regime where neither IF nor EF is optimal.
//!
//! Run: `cargo bench -p eirs-bench --bench mdp_optimality`

use eirs_bench::{default_threads, parallel_map, section};
use eirs_core::params::SystemParams;
use eirs_mdp::{ef_allocation, evaluate_policy, if_allocation, solve_optimal, MdpConfig};

fn main() {
    let k = 2u32;
    let rho = 0.7;
    let grid: Vec<(f64, f64)> = [0.25, 0.5, 1.0, 2.0]
        .iter()
        .flat_map(|&mu_i| [0.5, 1.0, 2.0].iter().map(move |&mu_e| (mu_i, mu_e)))
        .collect();

    section(&format!(
        "MDP optimality map (k = {k}, rho = {rho}, λ_I = λ_E, truncation 60x60)"
    ));
    println!("  µ_I   µ_E   | E[T] opt   E[T] IF    E[T] EF   | IF gap%  EF gap%  IF optimal?");

    let rows = parallel_map(grid, default_threads(), |&(mu_i, mu_e)| {
        let p = SystemParams::with_equal_lambdas(k, mu_i, mu_e, rho).expect("stable");
        let cfg = MdpConfig {
            k,
            lambda_i: p.lambda_i,
            lambda_e: p.lambda_e,
            mu_i,
            mu_e,
            max_i: 60,
            max_j: 60,
            allow_idling: false,
        };
        let opt = solve_optimal(&cfg, 1e-9, 600_000).expect("VI converges");
        let g_if = evaluate_policy(&cfg, &if_allocation(k), 1e-9, 600_000).expect("eval IF");
        let g_ef = evaluate_policy(&cfg, &ef_allocation(k), 1e-9, 600_000).expect("eval EF");
        let lambda = p.total_lambda();
        (
            mu_i,
            mu_e,
            opt.average_cost / lambda,
            g_if / lambda,
            g_ef / lambda,
        )
    });

    for (mu_i, mu_e, t_opt, t_if, t_ef) in &rows {
        let if_gap = 100.0 * (t_if / t_opt - 1.0);
        let ef_gap = 100.0 * (t_ef / t_opt - 1.0);
        let if_optimal = if_gap < 0.05;
        println!(
            "  {mu_i:<5.2} {mu_e:<5.2} | {t_opt:<10.4} {t_if:<10.4} {t_ef:<9.4} | {if_gap:<8.2} {ef_gap:<8.2} {if_optimal}"
        );
        if mu_i >= mu_e {
            assert!(
                if_gap < 0.1,
                "Theorem 5 violated numerically at (µI={mu_i}, µE={mu_e})"
            );
        }
    }

    println!(
        "\n  µ_I ≥ µ_E rows: IF gap ≈ 0 — Theorems 1 and 5, numerically.\n\
         µ_I < µ_E rows: IF leaves up to tens of percent on the table, and\n\
         EF does not close the gap either — the optimal policy in that\n\
         regime is the paper's open question (our `hpc_malleable` example\n\
         prints its state-dependent structure)."
    );
}
