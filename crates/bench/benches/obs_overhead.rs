//! PERF — the observability tax: what `eirs_obs` costs when it is off
//! (the shipped default) and when it is on, plus the invariance gates.
//!
//! Measures, on the current machine:
//!
//! 1. the **disabled-path** probe: one relaxed atomic load per
//!    instrumentation site, timed directly and expressed as a share of
//!    a serve decision — the "≤ 2% of serve throughput" budget;
//! 2. serve replay throughput with telemetry off vs on, with the
//!    decision digests asserted **bit-identical** both ways (the
//!    observability-invariance contract), and the enabled-path cost
//!    per decision;
//! 3. a figure-4 warm sweep with telemetry on: the exported Chrome
//!    trace must be well-formed JSON carrying the warm-route counters,
//!    and the sweep's cells must be bit-identical to the telemetry-off
//!    run.
//!
//! Results print as text and are written to `BENCH_obs.json` at the
//! workspace root. Set `EIRS_BENCH_SMOKE=1` for a tiny smoke pass (CI):
//! every gate still runs, the artifact is not rewritten.
//!
//! Run: `cargo bench -p eirs-bench --bench obs_overhead`

use eirs_bench::harness::{pretty_seconds, Bench};
use eirs_bench::json::Json;
use eirs_bench::section;
use eirs_core::experiments::{figure4_heatmap_warm_with_threads, HeatMapCell};
use eirs_core::SystemParams;
use eirs_queueing::Exponential;
use eirs_serve::{CompiledTable, EngineConfig, ServeEngine};
use eirs_sim::arrivals::{Arrival, ArrivalTrace};
use eirs_sim::policy::{AllocationPolicy, SwitchingCurvePolicy};
use std::hint::black_box;

const K: u32 = 4;
const ROUTE_SHARDS: usize = 8;
const RHO: f64 = 0.7;

fn smoke() -> bool {
    std::env::var_os("EIRS_BENCH_SMOKE").is_some_and(|v| !v.is_empty() && v != "0")
}

fn policy() -> Box<dyn AllocationPolicy> {
    Box::new(SwitchingCurvePolicy {
        intercept: 2,
        slope: 0.5,
    })
}

fn record_stream(horizon: f64) -> Vec<Arrival> {
    let p = SystemParams::with_equal_lambdas(K, 1.0, 1.0, RHO).expect("stable params");
    let scale = ROUTE_SHARDS as f64;
    let mut stream = eirs_sim::PoissonStream::new(
        p.lambda_i * scale,
        p.lambda_e * scale,
        Box::new(Exponential::new(p.mu_i)),
        Box::new(Exponential::new(p.mu_e)),
        7,
    );
    ArrivalTrace::record(&mut stream, horizon)
        .arrivals()
        .to_vec()
}

fn replay(arrivals: &[Arrival]) -> ServeEngine {
    let config = EngineConfig::new(K).route_shards(ROUTE_SHARDS).batch(4096);
    let mut engine = ServeEngine::new(CompiledTable::compile(policy(), K, 64, 64), config);
    for chunk in arrivals.chunks(4096) {
        engine.ingest_batch(chunk);
    }
    engine.drain();
    engine
}

/// Compares two heat maps bit for bit (both float fields of every cell).
fn cells_identical(a: &[HeatMapCell], b: &[HeatMapCell]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(x, y)| {
            x.mu_i.to_bits() == y.mu_i.to_bits()
                && x.mu_e.to_bits() == y.mu_e.to_bits()
                && x.comparison.mrt_if.to_bits() == y.comparison.mrt_if.to_bits()
                && x.comparison.mrt_ef.to_bits() == y.comparison.mrt_ef.to_bits()
                && x.comparison.winner == y.comparison.winner
        })
}

fn main() {
    eirs_obs::set_enabled(false);
    eirs_obs::reset();
    let smoke = smoke();
    let mut report = Json::object();
    report.set("schema", "eirs-bench-obs/v1");
    report.set("hardware", eirs_bench::json::run_metadata());

    // ---- 1. The disabled-path probe -----------------------------------
    // Every instrumentation site compiles down to one relaxed load of
    // the global enable flag when telemetry is off. Time that probe
    // directly, then express it against the measured per-decision time:
    // the serve hot path has exactly one probe per decision.
    section("disabled-path probe cost (one relaxed load per site)");
    let mut bench = Bench::with_samples(if smoke { 2 } else { 5 });
    let probes: u64 = if smoke { 1_000_000 } else { 50_000_000 };
    let probe = bench
        .time("enabled_probe", 1, || {
            let mut hits = 0u64;
            for _ in 0..probes {
                if black_box(eirs_obs::enabled()) {
                    hits += 1;
                }
            }
            hits
        })
        .clone();
    let probe_ns = probe.median_s / probes as f64 * 1e9;
    println!("  probe: {probe_ns:.3} ns per enabled() check");

    // ---- 2. Serve replay: telemetry off vs on --------------------------
    section("serve replay, telemetry off vs on (digests must agree)");
    let arrivals = record_stream(if smoke { 400.0 } else { 8_000.0 });
    println!("  prerecorded stream: {} arrivals", arrivals.len());
    let off_engine = replay(&arrivals);
    eirs_obs::set_enabled(true);
    let on_engine = replay(&arrivals);
    eirs_obs::set_enabled(false);
    let digests_equal = on_engine.decision_digest() == off_engine.decision_digest()
        && on_engine.shard_digests() == off_engine.shard_digests();
    println!("  decision digests identical with telemetry on: {digests_equal}");
    assert!(digests_equal, "telemetry perturbed the decision stream");
    let latency = on_engine.decision_latency();
    assert!(
        latency.count() > 0,
        "enabled run must populate the decision-latency histogram"
    );
    assert_eq!(
        off_engine.decision_latency().count(),
        0,
        "disabled run must not time decisions"
    );

    let decisions = off_engine.metrics_total().decisions as f64;
    let off = bench
        .time("replay_obs_off", 1, || replay(&arrivals))
        .clone();
    eirs_obs::set_enabled(true);
    let on = bench.time("replay_obs_on", 1, || replay(&arrivals)).clone();
    eirs_obs::set_enabled(false);
    let off_dps = decisions / off.median_s;
    let on_dps = decisions / on.median_s;
    let decision_ns = off.median_s / decisions * 1e9;
    let enabled_cost_ns = (on.median_s - off.median_s) / decisions * 1e9;
    // One probe per decision: the disabled-path tax on serve throughput.
    let disabled_overhead_pct = 100.0 * probe_ns / decision_ns;
    println!(
        "  off: {:.2}M decisions/sec ({decision_ns:.1} ns/decision)",
        off_dps / 1e6
    );
    println!(
        "  on:  {:.2}M decisions/sec ({enabled_cost_ns:+.1} ns/decision enabled cost, \
         p50 recorded latency {})",
        on_dps / 1e6,
        pretty_seconds(latency.quantile(0.5).unwrap_or(0) as f64 * 1e-9)
    );
    println!("  disabled-path overhead: {disabled_overhead_pct:.3}% of a decision (budget 2%)");
    if !smoke {
        assert!(
            disabled_overhead_pct <= 2.0,
            "disabled-path probe costs {disabled_overhead_pct:.2}% of a serve decision"
        );
    }
    let mut serve_json = Json::object();
    serve_json
        .set("arrivals", arrivals.len())
        .set("decisions", decisions as u64)
        .set("digests_identical_on_vs_off", digests_equal)
        .set("probe_ns", probe_ns)
        .set("decision_ns_obs_off", decision_ns)
        .set("disabled_overhead_pct", disabled_overhead_pct)
        .set(
            "disabled_overhead_within_2pct",
            disabled_overhead_pct <= 2.0,
        )
        .set("obs_off", &off)
        .set("obs_on", &on)
        .set("obs_off_decisions_per_sec", off_dps)
        .set("obs_on_decisions_per_sec", on_dps)
        .set("enabled_cost_ns_per_decision", enabled_cost_ns)
        .set("enabled_latency_p50_ns", latency.quantile(0.5).unwrap_or(0))
        .set(
            "enabled_latency_p99_ns",
            latency.quantile(0.99).unwrap_or(0),
        );
    report.set("serve", serve_json);

    // ---- 3. Figure-4 warm sweep: trace export + bit-identity -----------
    section("figure-4 warm sweep: exported trace validates, output is invariant");
    let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    let reference = figure4_heatmap_warm_with_threads(K, RHO, threads).expect("analysis succeeds");
    eirs_obs::reset();
    eirs_obs::set_enabled(true);
    let traced = figure4_heatmap_warm_with_threads(K, RHO, threads).expect("analysis succeeds");
    eirs_obs::set_enabled(false);
    let events = eirs_obs::take_events();
    let snap = eirs_obs::snapshot();
    let identical = cells_identical(&reference, &traced);
    println!("  sweep output bit-identical with telemetry on: {identical}");
    assert!(identical, "telemetry perturbed the warm sweep");

    let trace_json = eirs_obs::export::chrome_trace_json(&events, &snap);
    eirs_obs::export::validate_json(&trace_json)
        .expect("exported Chrome trace must be well-formed JSON");
    let warm_attempts = snap.counter("markov.warm.attempts");
    let warm_accepted =
        snap.counter("markov.warm.rank1_accepted") + snap.counter("markov.warm.refine_accepted");
    assert!(
        warm_attempts > 0,
        "warm sweep must exercise the warm solver route"
    );
    assert!(
        trace_json.contains("markov.warm.attempts"),
        "trace must carry the warm-route counters"
    );
    let hit_rate = warm_accepted as f64 / warm_attempts as f64;
    println!(
        "  trace: {} events, {} bytes, valid JSON; warm hit rate {warm_accepted}/{warm_attempts} \
         ({:.1}%)",
        events.len(),
        trace_json.len(),
        100.0 * hit_rate
    );
    let mut sweep_json = Json::object();
    sweep_json
        .set("cells", traced.len())
        .set("output_bit_identical", identical)
        .set("trace_events", events.len())
        .set("trace_bytes", trace_json.len())
        .set("trace_valid_json", true)
        .set("warm_attempts", warm_attempts)
        .set("warm_accepted", warm_accepted)
        .set("warm_hit_rate", hit_rate);
    report.set("figure4_warm", sweep_json);

    if smoke {
        section("EIRS_BENCH_SMOKE: tiny smoke pass, artifact will not be rewritten");
        return;
    }
    let out_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_obs.json");
    std::fs::write(out_path, report.pretty()).expect("write BENCH_obs.json");
    println!("\nwrote {out_path}");
}
