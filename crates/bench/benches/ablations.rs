//! ABL1 — ablations of the design choices behind the reproduction:
//!
//! 1. **Coxian busy-period fit accuracy** — how well the two-phase Coxian
//!    matches M/M/1 busy-period moments across loads (it is exact on the
//!    first three by construction; we report the induced response-time
//!    error against simulation, the quantity the paper bounds at ~1%).
//! 2. **Idling ablation (Appendix B)** — enlarging the MDP action space
//!    with idling actions never lowers the optimal cost.
//! 3. **R-solver ablation** — logarithmic reduction vs fixed-point
//!    iteration on the paper's own QBD blocks: identical R, very different
//!    convergence behavior.
//!
//! Run: `cargo bench -p eirs-bench --bench ablations`

use eirs_bench::section;
use eirs_core::params::SystemParams;
use eirs_core::validation::validate_point;
use eirs_mdp::{solve_optimal, MdpConfig};
use eirs_queueing::coxian::fit_busy_period;
use eirs_queueing::MM1;
use std::time::Instant;

fn main() {
    section("Ablation 1: Coxian-2 busy-period fit across loads");
    println!("  rho    E[B] fit err   E[B²] fit err   E[B³] fit err   q       CV²(B)");
    for rho in [0.1, 0.3, 0.5, 0.7, 0.9, 0.95, 0.99] {
        let q = MM1::new(rho, 1.0);
        let target = q.busy_period_moments();
        let cox = fit_busy_period(&q).expect("busy periods are Coxian-2 representable");
        let got = cox.moments();
        println!(
            "  {rho:<6.2} {:<14.2e} {:<15.2e} {:<15.2e} {:<7.4} {:.2}",
            (got.m1 - target.m1).abs() / target.m1,
            (got.m2 - target.m2).abs() / target.m2,
            (got.m3 - target.m3).abs() / target.m3,
            cox.q(),
            target.cv2(),
        );
    }
    println!("  (moment errors are at machine precision: the fit is exact by construction)");

    println!("\n  End-to-end effect on E[T] (analysis vs long simulation):");
    println!("  rho    IF err%   EF err%");
    for rho in [0.5, 0.7, 0.8] {
        let p = SystemParams::with_equal_lambdas(4, 0.5, 1.0, rho).expect("stable");
        let row = validate_point(&p, 20_000_000, 99).expect("validates");
        println!(
            "  {rho:<6.2} {:<9.3} {:<9.3}",
            100.0 * row.rel_err_if(),
            100.0 * row.rel_err_ef()
        );
    }

    section("Ablation 2: idling actions never help (Appendix B)");
    println!("  µ_I   µ_E   | E[N] non-idling  E[N] with idling  difference");
    for (mu_i, mu_e) in [(1.0, 1.0), (0.5, 1.0), (2.0, 1.0), (0.25, 1.0)] {
        let p = SystemParams::with_equal_lambdas(2, mu_i, mu_e, 0.6).expect("stable");
        let base = MdpConfig {
            k: 2,
            lambda_i: p.lambda_i,
            lambda_e: p.lambda_e,
            mu_i,
            mu_e,
            max_i: 40,
            max_j: 40,
            allow_idling: false,
        };
        let idling = MdpConfig {
            allow_idling: true,
            ..base
        };
        let g0 = solve_optimal(&base, 1e-9, 600_000)
            .expect("VI converges")
            .average_cost;
        let g1 = solve_optimal(&idling, 1e-9, 600_000)
            .expect("VI converges")
            .average_cost;
        println!(
            "  {mu_i:<5.2} {mu_e:<5.2} | {g0:<16.6} {g1:<17.6} {:+.2e}",
            g1 - g0
        );
        assert!((g0 - g1).abs() < 1e-5, "idling changed the optimum");
    }

    section("Ablation 3: R-matrix solvers on the paper's IF chain blocks");
    println!("  rho    max|R_LR - R_FP|   t(log-reduction)   t(fixed-point)");
    for rho in [0.5, 0.8, 0.95] {
        let p = SystemParams::with_equal_lambdas(8, 1.0, 1.0, rho).expect("stable");
        // Rebuild the IF elastic-chain blocks via the public analysis path:
        // time the two solvers through a representative M/Cox-style QBD.
        let cox = fit_busy_period(&MM1::new(p.lambda_i, 8.0 * p.mu_i)).expect("fit");
        let (g1, g2, g3) = cox.gamma_rates();
        let k = 8usize;
        let phases = k + 2;
        let mut local = eirs_numerics::Matrix::zeros(phases, phases);
        for i in 0..k {
            if i + 1 < k {
                local[(i, i + 1)] = p.lambda_i;
            } else {
                local[(i, k)] = p.lambda_i;
            }
            if i >= 1 {
                local[(i, i - 1)] = i as f64 * p.mu_i;
            }
        }
        local[(k, k - 1)] = g1;
        local[(k, k + 1)] = g2;
        local[(k + 1, k - 1)] = g3;
        let up = eirs_numerics::Matrix::diag(&vec![p.lambda_e; phases]);
        let mut a2 = eirs_numerics::Matrix::zeros(phases, phases);
        for i in 0..k {
            a2[(i, i)] = (k - i) as f64 * p.mu_e;
        }
        let qbd =
            eirs_markov::Qbd::new(vec![up.clone()], vec![local.clone()], vec![], up, local, a2)
                .expect("valid QBD");
        let t0 = Instant::now();
        let r_lr = qbd
            .solve_r(eirs_markov::RSolver::LogarithmicReduction)
            .expect("LR solves");
        let t_lr = t0.elapsed();
        let t0 = Instant::now();
        let r_fp = qbd
            .solve_r(eirs_markov::RSolver::FixedPoint)
            .expect("FP solves");
        let t_fp = t0.elapsed();
        println!(
            "  {rho:<6.2} {:<18.2e} {:<18.1?} {:?}",
            r_lr.max_abs_diff(&r_fp),
            t_lr,
            t_fp
        );
    }
    println!(
        "\n  The solvers agree to ~1e-10; logarithmic reduction converges\n\
         quadratically and stays fast as rho → 1 while the fixed point slows\n\
         with spectral radius — why it is the default."
    );
}
