//! VAL1 — the Section 5 validation claim: "We compared our analysis with
//! simulation, and all numbers agree within 1%."
//!
//! For a spread of parameter points covering every regime of Figure 4 this
//! harness prints analytic vs simulated mean response time for both
//! policies and the relative errors. Simulation is the state-level CTMC
//! simulator (exact dynamics, Monte-Carlo noise only).
//!
//! Run: `cargo bench -p eirs-bench --bench validation_table`

use eirs_bench::{default_threads, parallel_map, section};
use eirs_core::params::SystemParams;
use eirs_core::validation::validate_point;

fn main() {
    // (k, µ_I, µ_E, ρ): spans µ_I >/=/< µ_E, three loads, three cluster sizes.
    let points = vec![
        (4u32, 2.0, 1.0, 0.5),
        (4, 2.0, 1.0, 0.7),
        (4, 1.0, 1.0, 0.5),
        (4, 1.0, 1.0, 0.7),
        (4, 1.0, 1.0, 0.9),
        (4, 0.5, 1.5, 0.5),
        (4, 0.5, 1.5, 0.7),
        (4, 0.25, 1.0, 0.7),
        (2, 3.0, 1.0, 0.7),
        (8, 1.0, 2.0, 0.7),
        (16, 0.5, 1.0, 0.5),
    ];
    // Longer runs at higher load (autocorrelation ~ 1/(1-rho)^2).
    let jumps_for = |rho: f64| if rho >= 0.85 { 40_000_000 } else { 10_000_000 };

    section("Validation: analysis vs state-level simulation (mean response time)");
    println!(
        "  k   µ_I   µ_E   rho   | E[T]IF ana  E[T]IF sim  err%  | E[T]EF ana  E[T]EF sim  err%"
    );

    let rows = parallel_map(points, default_threads(), |&(k, mu_i, mu_e, rho)| {
        let p = SystemParams::with_equal_lambdas(k, mu_i, mu_e, rho).expect("stable");
        let seed = (k as u64) * 1000 + (mu_i * 100.0) as u64 + (rho * 10.0) as u64;
        (
            k,
            mu_i,
            mu_e,
            rho,
            validate_point(&p, jumps_for(rho), seed).expect("validates"),
        )
    });

    let mut worst: f64 = 0.0;
    for (k, mu_i, mu_e, rho, row) in &rows {
        let (ei, ee) = (100.0 * row.rel_err_if(), 100.0 * row.rel_err_ef());
        worst = worst.max(row.rel_err_if()).max(row.rel_err_ef());
        println!(
            "  {k:<3} {mu_i:<5.2} {mu_e:<5.2} {rho:<5.2} | {:<11.4} {:<11.4} {ei:<5.2} | {:<11.4} {:<11.4} {ee:<5.2}",
            row.analytic_if, row.simulated_if, row.analytic_ef, row.simulated_ef
        );
    }
    println!(
        "\n  worst relative error: {:.2}% (paper claim: within 1%; residual here\n\
         includes Monte-Carlo noise of the simulator itself)",
        100.0 * worst
    );
    assert!(worst < 0.02, "validation drifted beyond 2%");
}
