//! WORKLOAD SCENARIOS — the policy × workload agreement record.
//!
//! The paper evaluates its policies under Poisson arrivals and exponential
//! service only. This harness runs every shipped workload scenario family
//! (Poisson baseline, Markov-modulated MAP, batch-bursty, trace-file
//! replay, and the non-exponential service shapes) against a spread of
//! policy families, recording for each `(workload, policy)` pair:
//!
//! 1. DES replications on decorrelated seed streams (mean ± 95% CI) —
//!    always available;
//! 2. the matching analytic chain, where one exists: the policy-generic
//!    QBD (Poisson×exp), the MAP-phase-extended QBD (MAP×exp), or the
//!    MAP/PH/1 chain (elastic-only phase-type service);
//!
//! and whether the analysis landed inside the replication CI — the
//! machine-readable version of the acceptance criterion "for every
//! analytically tractable (workload, policy) pair the analysis result
//! lands inside the DES replication CI". Results go to
//! `BENCH_workload_scenarios.json`.
//!
//! Run: `cargo bench -p eirs-bench --bench workload_scenarios`

use eirs_bench::json::{run_metadata, Json};
use eirs_bench::{row, section};
use eirs_core::analysis::AnalyzeOptions;
use eirs_core::experiments::{scenario_sweep, ScenarioSweepConfig};
use eirs_core::policy::parse_policy;
use eirs_core::scenario;
use eirs_core::SystemParams;

const K: u32 = 4;
/// The open `µ_I < µ_E` regime (Section 6), where policies actually
/// differ; same operating point as the `policy_families` bench.
const MU_I: f64 = 0.5;
const MU_E: f64 = 1.0;
const RHO: f64 = 0.6;
const REPS: usize = 8;
const DEPARTURES: u64 = 200_000;

fn main() {
    let params = SystemParams::with_equal_lambdas(K, MU_I, MU_E, RHO).expect("stable");
    let workloads = scenario::registry();
    let policy_specs = ["if", "ef", "fairshare", "threshold:3", "waterfill:2"];
    let policies: Vec<_> = policy_specs
        .iter()
        .map(|s| parse_policy(s).expect("registry spec"))
        .collect();
    let opts = AnalyzeOptions {
        phase_cap: 48,
        ..AnalyzeOptions::default()
    };
    let cfg = ScenarioSweepConfig {
        replications: REPS,
        departures: DEPARTURES,
        warmup: DEPARTURES / 10,
        base_seed: 42,
    };

    section(&format!(
        "workload scenarios, analysis vs DES (k = {K}, µI = {MU_I}, µE = {MU_E}, ρ = {RHO})"
    ));
    let widths = [20, 26, 12, 10, 18, 6];
    println!(
        "{}",
        row(
            &[
                "workload".into(),
                "policy".into(),
                "tractability".into(),
                "analysis".into(),
                "des (95% CI)".into(),
                "in CI".into(),
            ],
            &widths
        )
    );

    let points =
        scenario_sweep(&workloads, &policies, &params, &opts, &cfg).expect("scenario sweep");

    let mut rows_json = Vec::new();
    let mut tractable = 0usize;
    let mut inside = 0usize;
    for pt in &points {
        let analysis_cell = pt
            .analysis_mean_response
            .map(|m| format!("{m:.4}"))
            .unwrap_or_else(|| "-".into());
        let in_ci_cell = match pt.analysis_inside_ci {
            Some(true) => "yes".to_string(),
            Some(false) => "NO".to_string(),
            None => "-".into(),
        };
        println!(
            "{}",
            row(
                &[
                    pt.workload.clone(),
                    pt.policy.clone(),
                    format!("{:?}", pt.tractability),
                    analysis_cell,
                    format!("{:.4} +- {:.4}", pt.des_mean_response, pt.des_ci_half_width),
                    in_ci_cell,
                ],
                &widths
            )
        );
        if let Some(ok) = pt.analysis_inside_ci {
            tractable += 1;
            if ok {
                inside += 1;
            }
        }
        let mut r = Json::object();
        r.set("workload", pt.workload.clone())
            .set("policy", pt.policy.clone())
            .set("tractability", format!("{:?}", pt.tractability))
            .set("des_mean_response", pt.des_mean_response)
            .set("des_ci_half_width", pt.des_ci_half_width)
            .set("des_replications", pt.des_replications as u64);
        r.set(
            "analysis_mean_response",
            pt.analysis_mean_response.map_or(Json::Null, Json::from),
        );
        r.set(
            "analysis_inside_des_ci",
            pt.analysis_inside_ci.map_or(Json::Null, Json::from),
        );
        rows_json.push(r);
    }

    println!();
    println!(
        "tractable pairs: {tractable} of {}   analysis inside CI: {inside}/{tractable}",
        points.len()
    );

    let mut report = Json::object();
    report.set("schema", "eirs-bench-workload-scenarios/v1");
    report.set("hardware", run_metadata());
    report.set("k", K as u64);
    report.set("mu_i", MU_I);
    report.set("mu_e", MU_E);
    report.set("rho", RHO);
    report.set("des_replications", REPS as u64);
    report.set("des_departures_each", DEPARTURES);
    report.set("tractable_pairs", tractable as u64);
    report.set("tractable_pairs_inside_ci", inside as u64);
    report.set("rows", rows_json);

    let out_path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_workload_scenarios.json"
    );
    std::fs::write(out_path, report.pretty()).expect("write BENCH_workload_scenarios.json");
    println!("wrote {out_path}");
}
