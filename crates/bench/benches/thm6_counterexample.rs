//! THM6 — the Theorem 6 counterexample table: exact expected total response
//! times for IF and EF in the closed system (k = 2, two inelastic + one
//! elastic job, no arrivals) as the rate ratio µ_E/µ_I varies, plus a
//! Monte-Carlo confirmation at the paper's point µ_E = 2µ_I.
//!
//! Paper values at µ_E = 2µ_I (µ_I = 1): E[ΣT^IF] = 35/12 ≈ 2.9167,
//! E[ΣT^EF] = 33/12 = 2.75.
//!
//! Run: `cargo bench -p eirs-bench --bench thm6_counterexample`

use eirs_bench::section;
use eirs_core::counterexample::{expected_total_response_closed, theorem6_values};
use eirs_queueing::distributions::SizeDistribution;
use eirs_queueing::Exponential;
use eirs_sim::des::{DesConfig, Simulation};
use eirs_sim::policy::{AllocationPolicy, ElasticFirst, InelasticFirst};
use eirs_sim::stats::ReplicationStats;
use eirs_sim::{ArrivalTrace, JobClass};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn monte_carlo(
    policy: &dyn AllocationPolicy,
    mu_i: f64,
    mu_e: f64,
    reps: u64,
    seed: u64,
) -> ReplicationStats {
    let di = Exponential::new(mu_i);
    let de = Exponential::new(mu_e);
    let mut rng = StdRng::seed_from_u64(seed);
    let empty = ArrivalTrace::default();
    let mut stats = ReplicationStats::new();
    for _ in 0..reps {
        let mut sim = Simulation::new(DesConfig::drain(2));
        sim.preload([
            (JobClass::Inelastic, di.sample(&mut rng)),
            (JobClass::Inelastic, di.sample(&mut rng)),
            (JobClass::Elastic, de.sample(&mut rng)),
        ]);
        let mut s = empty.stream();
        stats.push(sim.run(policy, &mut s).total_response);
    }
    stats
}

fn main() {
    section("Theorem 6: exact E[ΣT], k = 2, start (2 inelastic, 1 elastic), no arrivals");
    println!("  µ_E/µ_I    E[ΣT] IF      E[ΣT] EF      better");
    for ratio in [0.5, 0.75, 1.0, 1.25, 1.5, 2.0, 3.0, 4.0, 8.0] {
        let g_if = expected_total_response_closed(&InelasticFirst, 2, 2, 1, 1.0, ratio).unwrap();
        let g_ef = expected_total_response_closed(&ElasticFirst, 2, 2, 1, 1.0, ratio).unwrap();
        let better = if g_ef < g_if - 1e-12 {
            "EF"
        } else if g_if < g_ef - 1e-12 {
            "IF"
        } else {
            "tie"
        };
        println!("  {ratio:<10.2} {g_if:<13.6} {g_ef:<13.6} {better}");
    }

    section("Paper's exact point: µ_E = 2µ_I (µ_I = 1)");
    let (want_if, want_ef) = theorem6_values(1.0);
    let got_if = expected_total_response_closed(&InelasticFirst, 2, 2, 1, 1.0, 2.0).unwrap();
    let got_ef = expected_total_response_closed(&ElasticFirst, 2, 2, 1, 1.0, 2.0).unwrap();
    println!("  IF: computed {got_if:.6}  paper 35/12 = {want_if:.6}");
    println!("  EF: computed {got_ef:.6}  paper 33/12 = {want_ef:.6}");
    assert!((got_if - want_if).abs() < 1e-12);
    assert!((got_ef - want_ef).abs() < 1e-12);

    section("Monte-Carlo confirmation (100k replications each)");
    let mc_if = monte_carlo(&InelasticFirst, 1.0, 2.0, 100_000, 1);
    let mc_ef = monte_carlo(&ElasticFirst, 1.0, 2.0, 100_000, 2);
    let ci_if = mc_if.confidence_interval();
    let ci_ef = mc_ef.confidence_interval();
    println!(
        "  IF: {:.4} ± {:.4} (exact {want_if:.4})",
        ci_if.mean, ci_if.half_width
    );
    println!(
        "  EF: {:.4} ± {:.4} (exact {want_ef:.4})",
        ci_ef.mean, ci_ef.half_width
    );
    assert!(ci_ef.mean < ci_if.mean, "EF must beat IF");
    println!("\n  IF is NOT optimal when µ_I < µ_E — exactly Theorem 6.");
}
