//! ROB1 — extension experiment: robustness of the IF-vs-EF comparison to
//! the exponential-size assumption.
//!
//! Theorems 1/5 prove IF optimal for exponential sizes with `µ_I ≥ µ_E`.
//! The work-dominance half of the argument (Theorem 3) is distribution-
//! free, but the step from work to *number in system* (Lemma 4) uses
//! memorylessness — so the paper's optimality claim does not automatically
//! extend to general sizes. This harness measures, by simulation, whether
//! the *ranking* survives when sizes are deterministic (CV² = 0) or
//! hyperexponential (CV² = 5), and under bursty (batch-Poisson) arrivals.
//!
//! Run: `cargo bench -p eirs-bench --bench robustness`

use eirs_bench::section;
use eirs_queueing::distributions::{Deterministic, HyperExponential, SizeDistribution};
use eirs_queueing::Exponential;
use eirs_sim::arrivals::{BurstyStream, PoissonStream};
use eirs_sim::des::{DesConfig, Simulation};
use eirs_sim::policy::{AllocationPolicy, ElasticFirst, FairShare, InelasticFirst};

fn run_with_sizes(
    policy: &dyn AllocationPolicy,
    k: u32,
    lambda_each: f64,
    size_i: Box<dyn SizeDistribution>,
    size_e: Box<dyn SizeDistribution>,
    seed: u64,
) -> f64 {
    let mut source = PoissonStream::new(lambda_each, lambda_each, size_i, size_e, seed);
    let sim = Simulation::new(DesConfig::steady_state(k, 50_000, 400_000));
    sim.run(policy, &mut source).mean_response
}

fn main() {
    let k = 4;
    // The common case: inelastic jobs 2x smaller (mean 0.5 vs 1.0), ρ = 0.7.
    let (mean_i, mean_e) = (0.5, 1.0);
    let lambda_each = k as f64 * 0.7 / (mean_i + mean_e);

    section("Size-distribution robustness (k = 4, rho = 0.7, E[S_I] = 0.5, E[S_E] = 1)");
    println!("  size law (both classes)   E[T] IF    E[T] EF    E[T] FairShare  IF wins?");
    type DistPair = (
        &'static str,
        Box<dyn Fn() -> Box<dyn SizeDistribution>>,
        Box<dyn Fn() -> Box<dyn SizeDistribution>>,
    );
    let cases: Vec<DistPair> = vec![
        (
            "Exponential (CV2 = 1)",
            Box::new(move || Box::new(Exponential::with_mean(mean_i)) as Box<dyn SizeDistribution>),
            Box::new(move || Box::new(Exponential::with_mean(mean_e)) as Box<dyn SizeDistribution>),
        ),
        (
            "Deterministic (CV2 = 0)",
            Box::new(move || Box::new(Deterministic::new(mean_i)) as Box<dyn SizeDistribution>),
            Box::new(move || Box::new(Deterministic::new(mean_e)) as Box<dyn SizeDistribution>),
        ),
        (
            "Hyperexp (CV2 = 5)",
            Box::new(move || {
                Box::new(HyperExponential::balanced(mean_i, 5.0)) as Box<dyn SizeDistribution>
            }),
            Box::new(move || {
                Box::new(HyperExponential::balanced(mean_e, 5.0)) as Box<dyn SizeDistribution>
            }),
        ),
    ];
    for (label, mk_i, mk_e) in &cases {
        let t_if = run_with_sizes(&InelasticFirst, k, lambda_each, mk_i(), mk_e(), 1);
        let t_ef = run_with_sizes(&ElasticFirst, k, lambda_each, mk_i(), mk_e(), 1);
        let t_fs = run_with_sizes(&FairShare, k, lambda_each, mk_i(), mk_e(), 1);
        println!(
            "  {label:<26} {t_if:<10.4} {t_ef:<10.4} {t_fs:<15.4} {}",
            t_if < t_ef
        );
        assert!(
            t_if < t_ef,
            "{label}: IF should keep its advantage with smaller inelastic jobs"
        );
    }

    section("Arrival-process robustness: bursty traffic (geometric bursts, mean 3)");
    println!("  burstiness                E[T] IF    E[T] EF    IF wins?");
    for (label, continue_prob) in [("Poisson (bursts of 1)", 0.0), ("mean burst 3", 2.0 / 3.0)] {
        let run_bursty = |policy: &dyn AllocationPolicy| {
            // Keep the job rate constant while growing bursts.
            let mean_burst = 1.0 / (1.0 - continue_prob);
            let burst_rate = 2.0 * lambda_each / mean_burst;
            let mut source = BurstyStream::new(
                burst_rate,
                continue_prob,
                0.5,
                Box::new(Exponential::with_mean(mean_i)),
                Box::new(Exponential::with_mean(mean_e)),
                7,
            );
            let sim = Simulation::new(DesConfig::steady_state(k, 50_000, 400_000));
            sim.run(policy, &mut source).mean_response
        };
        let t_if = run_bursty(&InelasticFirst);
        let t_ef = run_bursty(&ElasticFirst);
        println!("  {label:<26} {t_if:<10.4} {t_ef:<10.4} {}", t_if < t_ef);
        assert!(t_if < t_ef, "{label}: ranking flipped");
    }

    println!(
        "\n  The IF advantage in the µ_I ≥ µ_E regime is not an artifact of\n\
         memorylessness: it survives zero-variance and high-variance sizes\n\
         and bursty arrivals in these experiments (the work-dominance half\n\
         of the proof is distribution-free, which is why)."
    );
}
