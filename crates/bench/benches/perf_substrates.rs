//! PERF — micro-benchmarks of the substrates: how fast are the pieces
//! that every figure harness leans on?
//!
//! Run: `cargo bench -p eirs-bench --bench perf_substrates`

use eirs_bench::harness::Bench;
use eirs_bench::section;
use eirs_core::params::SystemParams;
use eirs_core::{analyze_elastic_first, analyze_inelastic_first};
use eirs_queueing::coxian::fit_busy_period;
use eirs_queueing::MM1;
use eirs_sim::ctmc::{simulate_state_level, CtmcSimConfig};
use eirs_sim::des::run_markovian;
use eirs_sim::policy::InelasticFirst;
use eirs_srpt::{srpt_k_schedule, BatchInstance};

fn main() {
    let mut bench = Bench::new();

    section("analysis (busy-period transformation + QBD solve)");
    for k in [4u32, 16, 64] {
        let p = SystemParams::with_equal_lambdas(k, 0.5, 1.0, 0.8).unwrap();
        bench.time(&format!("analyze_if_k{k}"), 10, || {
            analyze_inelastic_first(&p).unwrap()
        });
        bench.time(&format!("analyze_ef_k{k}"), 10, || {
            analyze_elastic_first(&p).unwrap()
        });
    }

    section("coxian busy-period fit");
    let q = MM1::new(0.9, 1.0);
    bench.time("coxian_busy_period_fit", 1000, || {
        fit_busy_period(&q).unwrap()
    });

    section("simulators");
    let mut sim_bench = Bench::with_samples(3);
    sim_bench.time("state_level_1M_jumps", 1, || {
        simulate_state_level(
            &InelasticFirst,
            CtmcSimConfig {
                k: 4,
                lambda_i: 1.0,
                lambda_e: 0.8,
                mu_i: 1.0,
                mu_e: 0.8,
                jumps: 1_000_000,
                warmup_jumps: 0,
                seed: 1,
            },
        )
    });
    sim_bench.time("job_level_100k_departures", 1, || {
        run_markovian(&InelasticFirst, 4, 1.0, 0.8, 1.0, 0.8, 1, 0, 100_000)
    });

    section("srpt batch schedules");
    for n in [100usize, 1000] {
        let inst = BatchInstance::random_uniform(n, 8, 10.0, 7);
        bench.time(&format!("schedule_n{n}"), 20, || {
            srpt_k_schedule(&inst, 1.0)
        });
    }
}
