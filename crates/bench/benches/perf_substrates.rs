//! Criterion micro-benchmarks of the substrates: how fast are the pieces
//! that every figure harness leans on?
//!
//! Run: `cargo bench -p eirs-bench --bench perf_substrates`

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use eirs_core::params::SystemParams;
use eirs_core::{analyze_elastic_first, analyze_inelastic_first};
use eirs_queueing::coxian::fit_busy_period;
use eirs_queueing::MM1;
use eirs_sim::ctmc::{simulate_state_level, CtmcSimConfig};
use eirs_sim::des::run_markovian;
use eirs_sim::policy::InelasticFirst;
use eirs_srpt::{srpt_k_schedule, BatchInstance};
use std::hint::black_box;

fn bench_analysis(c: &mut Criterion) {
    let mut group = c.benchmark_group("analysis");
    for k in [4u32, 16, 64] {
        let p = SystemParams::with_equal_lambdas(k, 0.5, 1.0, 0.8).unwrap();
        group.bench_function(format!("analyze_if_k{k}"), |b| {
            b.iter(|| analyze_inelastic_first(black_box(&p)).unwrap())
        });
        group.bench_function(format!("analyze_ef_k{k}"), |b| {
            b.iter(|| analyze_elastic_first(black_box(&p)).unwrap())
        });
    }
    group.finish();
}

fn bench_coxian_fit(c: &mut Criterion) {
    let q = MM1::new(0.9, 1.0);
    c.bench_function("coxian_busy_period_fit", |b| {
        b.iter(|| fit_busy_period(black_box(&q)).unwrap())
    });
}

fn bench_simulators(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulators");
    group.sample_size(10);
    group.bench_function("state_level_1M_jumps", |b| {
        b.iter(|| {
            simulate_state_level(
                &InelasticFirst,
                CtmcSimConfig {
                    k: 4,
                    lambda_i: 1.0,
                    lambda_e: 0.8,
                    mu_i: 1.0,
                    mu_e: 0.8,
                    jumps: 1_000_000,
                    warmup_jumps: 0,
                    seed: 1,
                },
            )
        })
    });
    group.bench_function("job_level_100k_departures", |b| {
        b.iter(|| run_markovian(&InelasticFirst, 4, 1.0, 0.8, 1.0, 0.8, 1, 0, 100_000))
    });
    group.finish();
}

fn bench_srpt(c: &mut Criterion) {
    let mut group = c.benchmark_group("srpt");
    for n in [100usize, 1000] {
        let inst = BatchInstance::random_uniform(n, 8, 10.0, 7);
        group.bench_function(format!("schedule_n{n}"), |b| {
            b.iter_batched(
                || inst.clone(),
                |i| srpt_k_schedule(black_box(&i), 1.0),
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_analysis, bench_coxian_fit, bench_simulators, bench_srpt);
criterion_main!(benches);
