//! EXT1 — extension experiment for the paper's Section 6 generalization:
//! more than two classes, each with a parallelizability cap (bounded
//! elasticity).
//!
//! Three checks:
//!
//! 1. **Reduction**: with two classes and caps `(1, k)` the generalized
//!    model reproduces the paper's EF/IF numbers (vs the QBD analysis).
//! 2. **Order sweep**: all priority orders over a three-class workload,
//!    evaluated exactly on the truncated CTMC — cap-ascending order
//!    (Least-Flexible-First, the IF generalization) wins when less
//!    flexible classes are smaller.
//! 3. **Bounded elasticity sweep**: the elastic class's cap varies from 1
//!    to k, interpolating the two-class model between "two inelastic
//!    classes" and the paper's fully elastic case.
//!
//! Run: `cargo bench -p eirs-bench --bench multiclass_extension`

use eirs_bench::section;
use eirs_core::params::SystemParams;
use eirs_multiclass::{
    evaluate_multiclass, least_flexible_first, ClassSpec, MultiSystem, PriorityOrder,
};

fn main() {
    section("Reduction: two classes with caps (1, k) = the paper's model");
    let p2 = SystemParams::with_equal_lambdas(2, 1.0, 1.0, 0.6).expect("stable");
    let s2 = MultiSystem::two_class(2, p2.lambda_i, p2.lambda_e, p2.mu_i, p2.mu_e);
    let lff = least_flexible_first(&s2);
    let multi = evaluate_multiclass(&s2, &lff, &[70, 70], 1e-9, 400_000).expect("converges");
    let qbd = eirs_core::analyze_inelastic_first(&p2).expect("analysis");
    println!(
        "  E[T] multiclass engine: {:.6}   E[T] QBD analysis: {:.6}   rel diff {:.4}%",
        multi.overall_mean_response,
        qbd.mean_response,
        100.0 * (multi.overall_mean_response - qbd.mean_response).abs() / qbd.mean_response
    );
    assert!((multi.overall_mean_response - qbd.mean_response).abs() / qbd.mean_response < 0.01);

    section("Priority-order sweep over a 3-class workload (k = 8)");
    let system = MultiSystem::new(
        8,
        vec![
            ClassSpec::exponential("rigid-small", 2.0, 2.0, 1),
            ClassSpec::exponential("semi-medium", 1.0, 1.0, 4),
            ClassSpec::exponential("fluid-large", 0.5, 0.25, 8),
        ],
    );
    println!("  rho = {:.2}", system.load());
    let names = ["rigid", "semi", "fluid"];
    println!("  order                   E[T]      E[T_rigid]  E[T_semi]  E[T_fluid]");
    let mut results = Vec::new();
    for perm in [
        [0usize, 1, 2],
        [0, 2, 1],
        [1, 0, 2],
        [1, 2, 0],
        [2, 0, 1],
        [2, 1, 0],
    ] {
        let label = format!("{}>{}>{}", names[perm[0]], names[perm[1]], names[perm[2]]);
        let policy = PriorityOrder::new(perm.to_vec(), label.clone());
        let a =
            evaluate_multiclass(&system, &policy, &[50, 40, 30], 1e-7, 300_000).expect("converges");
        println!(
            "  {label:<23} {:<9.4} {:<11.4} {:<10.4} {:<9.4}",
            a.overall_mean_response, a.mean_response[0], a.mean_response[1], a.mean_response[2]
        );
        results.push((label, a.overall_mean_response));
    }
    let best = results
        .iter()
        .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
        .expect("non-empty");
    println!(
        "  best order: {} — cap-ascending, the IF generalization",
        best.0
    );
    assert_eq!(best.0, "rigid>semi>fluid");

    section("Bounded elasticity: sweeping the 'elastic' cap from 1 to k (k = 8)");
    println!("  cap    E[T] LFF    (fully elastic at cap = 8; two rigid classes at cap = 1)");
    for cap in [1u32, 2, 4, 6, 8] {
        let s = MultiSystem::new(
            8,
            vec![
                ClassSpec::exponential("inelastic", 2.0, 2.0, 1),
                ClassSpec::exponential("elastic", 1.0, 0.5, cap),
            ],
        );
        let p = least_flexible_first(&s);
        let a = evaluate_multiclass(&s, &p, &[60, 50], 1e-7, 300_000).expect("converges");
        println!("  {cap:<6} {:<10.4}", a.overall_mean_response);
    }
    println!(
        "\n  E[T] falls monotonically as the cap rises: extra flexibility is\n\
         pure upside under Least-Flexible-First, shrinking toward the paper's\n\
         fully elastic case at cap = k."
    );
}
