//! PERF — the online serving record: compiled-table decision throughput
//! and latency, single-worker vs sharded, plus the exactness gates.
//!
//! Measures, on the current machine:
//!
//! 1. full replay of a prerecorded Poisson stream through the sharded
//!    engine, single worker vs all-core workers — events/sec and
//!    decisions/sec, with the sharded digest asserted **bit-identical**
//!    to the single-worker digest;
//! 2. amortized per-decision latency percentiles (p50/p99 over
//!    1024-event batch means — see the inline note on why decisions are
//!    not timed individually);
//! 3. compiled-table lookups vs direct policy dispatch on the same
//!    state sequence;
//! 4. the DES exactness gate: the compiled-table server replaying a
//!    recorded trace reproduces the simulator's allocation sequence
//!    exactly (asserted, recorded as a boolean);
//! 5. the networked front end over loopback TCP: concurrent-client
//!    round-trip throughput, request-latency tails (p50/p95/p99), and
//!    the wall-clock pause of a mid-stream atomic policy hot-swap.
//!
//! Results print as text and are written to `BENCH_serve.json` at the
//! workspace root so the perf trajectory is recorded PR over PR.
//!
//! Run: `cargo bench -p eirs-bench --bench serve_throughput`

use eirs_bench::harness::{pretty_seconds, Bench};
use eirs_bench::json::Json;
use eirs_bench::section;
use eirs_core::SystemParams;
use eirs_queueing::Exponential;
use eirs_serve::engine::digest_decisions;
use eirs_serve::replay::des_decision_log;
use eirs_serve::{CompiledTable, EngineConfig, ServeEngine};
use eirs_sim::arrivals::{Arrival, ArrivalTrace};
use eirs_sim::policy::{AllocationPolicy, SwitchingCurvePolicy, TablePolicy};
use std::hint::black_box;

const K: u32 = 4;
const ROUTE_SHARDS: usize = 8;
const RHO_PER_SHARD: f64 = 0.7;
const GRID: usize = 64;
/// Simulated horizon of the prerecorded stream (~450k arrivals).
const HORIZON: f64 = 20_000.0;

fn policy() -> Box<dyn AllocationPolicy> {
    Box::new(SwitchingCurvePolicy {
        intercept: 2,
        slope: 0.5,
    })
}

fn table() -> CompiledTable {
    CompiledTable::compile(policy(), K, GRID, GRID)
}

/// Prerecords the offered stream: `ROUTE_SHARDS` x the single-cluster
/// rate, so every shard runs at load `RHO_PER_SHARD` after hash routing.
fn record_stream() -> Vec<Arrival> {
    let p = SystemParams::with_equal_lambdas(K, 1.0, 1.0, RHO_PER_SHARD).expect("stable params");
    let scale = ROUTE_SHARDS as f64;
    let mut stream = eirs_sim::PoissonStream::new(
        p.lambda_i * scale,
        p.lambda_e * scale,
        Box::new(Exponential::new(p.mu_i)),
        Box::new(Exponential::new(p.mu_e)),
        7,
    );
    ArrivalTrace::record(&mut stream, HORIZON)
        .arrivals()
        .to_vec()
}

fn replay(arrivals: &[Arrival], workers: usize, batch: usize) -> ServeEngine {
    let config = EngineConfig::new(K)
        .route_shards(ROUTE_SHARDS)
        .workers(workers)
        .batch(batch);
    let mut engine = ServeEngine::new(table(), config);
    for chunk in arrivals.chunks(batch) {
        engine.ingest_batch(chunk);
    }
    engine.drain();
    engine
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

fn main() {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let workers = cores.clamp(1, ROUTE_SHARDS);
    let mut report = Json::object();
    report.set("schema", "eirs-bench-serve/v1");
    report.set("hardware", eirs_bench::json::run_metadata());

    // ---- 1. Full-replay throughput: single worker vs sharded ----------
    section(&format!(
        "serve replay (k = {K}, {ROUTE_SHARDS} route shards, rho {RHO_PER_SHARD} per shard)"
    ));
    let arrivals = record_stream();
    println!(
        "  prerecorded stream: {} arrivals over {HORIZON} time units",
        arrivals.len()
    );

    let reference = replay(&arrivals, 1, 4096);
    let totals = reference.metrics_total();
    let sharded = replay(&arrivals, workers, 4096);
    let identical = sharded.decision_digest() == reference.decision_digest()
        && sharded.shard_digests() == reference.shard_digests();
    println!("  sharded replay bit-identical to single-worker: {identical}");
    assert!(
        identical,
        "sharded replay diverged from single-worker replay"
    );

    let mut bench = Bench::with_samples(5);
    let single = bench
        .time("replay_single_worker", 1, || replay(&arrivals, 1, 4096))
        .clone();
    let multi = bench
        .time(&format!("replay_sharded_t{workers}"), 1, || {
            replay(&arrivals, workers, 4096)
        })
        .clone();
    let decisions = totals.decisions as f64;
    let events = totals.events() as f64;
    let single_dps = decisions / single.median_s;
    let multi_dps = decisions / multi.median_s;
    println!(
        "  single worker: {:.2}M decisions/sec ({:.2}M events/sec)",
        single_dps / 1e6,
        events / single.median_s / 1e6
    );
    println!(
        "  {workers} workers:     {:.2}M decisions/sec ({:.2}M events/sec, {:.2}x)",
        multi_dps / 1e6,
        events / multi.median_s / 1e6,
        single.median_s / multi.median_s
    );
    let sustained = single_dps.max(multi_dps);
    assert!(
        sustained >= 1e6,
        "engine sustains only {sustained:.0} decisions/sec (target 1M)"
    );

    let mut replay_json = Json::object();
    replay_json
        .set("arrivals", totals.arrivals)
        .set("events", totals.events())
        .set("decisions", totals.decisions)
        .set("route_shards", ROUTE_SHARDS)
        .set("sharded_bit_identical", identical)
        .set("single_worker", &single)
        .set("sharded", &multi)
        .set("sharded_workers", workers)
        .set("single_worker_decisions_per_sec", single_dps)
        .set("sharded_decisions_per_sec", multi_dps)
        .set("single_worker_events_per_sec", events / single.median_s)
        .set("sharded_events_per_sec", events / multi.median_s)
        .set("sustains_1m_decisions_per_sec", sustained >= 1e6);
    report.set("replay", replay_json);

    // ---- 2. Per-decision latency over batch ingestion -----------------
    // Timed at batch granularity: each sample is one 1024-event batch's
    // elapsed time divided by the decisions it made, so the percentiles
    // are over batch *means* — a single slow decision inside a batch is
    // averaged away. (Timing every decision individually would put the
    // ~20ns Instant overhead on a ~60ns operation and measure the clock.)
    section("amortized decision latency (percentiles over 1024-event batch means)");
    let config = EngineConfig::new(K).route_shards(ROUTE_SHARDS).batch(1024);
    let mut engine = ServeEngine::new(table(), config);
    let mut samples: Vec<f64> = Vec::new();
    let mut last_decisions = 0u64;
    for chunk in arrivals.chunks(1024) {
        let start = std::time::Instant::now();
        engine.ingest_batch(chunk);
        let elapsed = start.elapsed().as_secs_f64();
        let now = engine.metrics_total().decisions;
        if now > last_decisions {
            samples.push(elapsed / (now - last_decisions) as f64);
        }
        last_decisions = now;
    }
    engine.drain();
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let (p50, p99) = (percentile(&samples, 0.50), percentile(&samples, 0.99));
    println!(
        "  amortized per-decision latency: p50 {} / p99 {}  ({} batch means)",
        pretty_seconds(p50),
        pretty_seconds(p99),
        samples.len()
    );
    let mut latency = Json::object();
    latency
        .set(
            "definition",
            "percentiles over per-batch mean decision latency (not per-decision tails)",
        )
        .set("batch", 1024u64)
        .set("batches", samples.len())
        .set("p50_batch_mean_s", p50)
        .set("p99_batch_mean_s", p99);
    report.set("decision_latency", latency);

    // ---- 3. Compiled lookup vs dispatching into the policy -------------
    // The baseline is what a server without a compiler would do: call the
    // boxed policy through the trait object on every decision. The
    // hash-based class-P family stands in for "a policy that computes".
    section("table lookup vs boxed policy dispatch (hash-based class-P)");
    let states: Vec<(usize, usize)> = (0..40_000)
        .map(|n| ((n * 7) % (GRID + 1), (n * 13) % (GRID + 1)))
        .collect();
    let boxed: Box<dyn AllocationPolicy> = Box::new(TablePolicy::random_class_p(7));
    let compiled = CompiledTable::compile(Box::new(TablePolicy::random_class_p(7)), K, GRID, GRID);
    let lookup = bench
        .time("compiled_lookup_40k_states", 10, || {
            states
                .iter()
                .map(|&(i, j)| black_box(compiled.lookup(i, j)).total())
                .sum::<f64>()
        })
        .clone();
    let direct = bench
        .time("boxed_allocate_40k_states", 10, || {
            states
                .iter()
                .map(|&(i, j)| black_box(boxed.allocate(i, j, K)).total())
                .sum::<f64>()
        })
        .clone();
    println!(
        "  speedup from compilation: {:.2}x",
        direct.median_s / lookup.median_s
    );
    let mut lk = Json::object();
    lk.set("states", states.len())
        .set("compiled", &lookup)
        .set("direct", &direct)
        .set("speedup", direct.median_s / lookup.median_s);
    report.set("lookup", lk);

    // ---- 4. DES exactness gate -----------------------------------------
    section("DES replay exactness gate");
    let p = SystemParams::with_equal_lambdas(K, 1.0, 1.0, RHO_PER_SHARD).expect("stable params");
    let trace = ArrivalTrace::record_poisson(
        p.lambda_i,
        p.lambda_e,
        Box::new(Exponential::new(p.mu_i)),
        Box::new(Exponential::new(p.mu_e)),
        99,
        500.0,
    );
    let raw = policy();
    let des_log = des_decision_log(raw.as_ref(), K, &trace);
    let cfg = EngineConfig::new(K).route_shards(1).record_decisions(true);
    let mut server = ServeEngine::new(table(), cfg);
    let mut source = trace.stream();
    server.run(&mut source, f64::INFINITY);
    let served = server.decision_log();
    let exact = served.len() == des_log.len()
        && digest_decisions(&served) == digest_decisions(&des_log)
        && served == des_log;
    println!(
        "  compiled-table server reproduces the DES allocation sequence: {exact} \
         ({} decisions)",
        des_log.len()
    );
    assert!(exact, "server decision sequence diverged from the DES");
    let mut gate = Json::object();
    gate.set("trace_arrivals", trace.len())
        .set("decisions", des_log.len())
        .set("des_replay_exact", exact);
    report.set("des_exactness", gate);

    // ---- 5. Networked front end: concurrent clients over loopback ------
    // Round-trip numbers (frame encode, TCP, queue hand-off, batched
    // engine, decision frame back), not engine-only throughput — which is
    // why they sit orders of magnitude under section 1.
    section("networked serving (loopback TCP, concurrent clients, hot-swap pause)");
    let net_arrivals: Vec<Arrival> = arrivals.iter().take(120_000).copied().collect();
    let clients = workers.clamp(1, 4);
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("local addr").to_string();
    let net_engine = ServeEngine::new(
        table(),
        EngineConfig::new(K).route_shards(ROUTE_SHARDS).batch(1024),
    );
    let swap_at = net_arrivals.len() as u64 / 2;
    let compile = |spec: &str| -> Result<CompiledTable, String> {
        Ok(CompiledTable::compile(
            eirs_core::policy::parse_policy(spec)?,
            K,
            GRID,
            GRID,
        ))
    };
    let net_start = std::time::Instant::now();
    let (net_report, client_report) = std::thread::scope(|scope| {
        let server = scope.spawn(|| {
            eirs_net::serve(
                listener,
                net_engine,
                None,
                vec![eirs_net::SwapTrigger {
                    at_seq: swap_at,
                    spec: "threshold:3".into(),
                }],
                eirs_net::NetConfig::default(),
                &compile,
            )
            .expect("networked serve")
        });
        let client = eirs_net::run_client(
            &addr,
            &net_arrivals,
            &eirs_net::ClientConfig {
                clients,
                swap: None,
            },
        )
        .expect("client");
        (server.join().expect("server thread"), client)
    });
    let net_wall = net_start.elapsed().as_secs_f64();
    assert!(
        net_report.accounting_balanced(),
        "exact accounting violated: {net_report:?}"
    );
    assert_eq!(net_report.generation, 1, "hot-swap did not install");
    let rps = client_report.decisions as f64 / net_wall;
    let lat = &client_report.latency;
    println!(
        "  {clients} clients: {} requests in {:.2} s ({:.0}k round-trips/sec)",
        client_report.decisions,
        net_wall,
        rps / 1e3
    );
    println!(
        "  request latency: p50 {} / p95 {} / p99 {}",
        pretty_seconds(lat.quantile_seconds(0.5)),
        pretty_seconds(lat.quantile_seconds(0.95)),
        pretty_seconds(lat.quantile_seconds(0.99)),
    );
    let pause = net_report
        .swap_pause_seconds
        .first()
        .copied()
        .unwrap_or(0.0);
    println!(
        "  hot-swap pause at seq {swap_at}: {}",
        pretty_seconds(pause)
    );
    let mut netj = Json::object();
    netj.set("clients", clients as u64)
        .set("requests", client_report.decisions)
        .set("wall_s", net_wall)
        .set("requests_per_sec", rps)
        .set("latency_p50_s", lat.quantile_seconds(0.5))
        .set("latency_p95_s", lat.quantile_seconds(0.95))
        .set("latency_p99_s", lat.quantile_seconds(0.99))
        .set("swap_pause_s", pause)
        .set("swap_generation", net_report.generation as u64)
        .set("accounting_balanced", net_report.accounting_balanced());
    report.set("networked", netj);

    let out_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json");
    std::fs::write(out_path, report.pretty()).expect("write BENCH_serve.json");
    println!("\nwrote {out_path}");
}
