//! APXA — Appendix A: the generalized SRPT-k 4-approximation.
//!
//! For batches of jobs with parallelizability caps arriving at time 0,
//! prints the observed ratio of SRPT-k's total response time to the LP
//! lower bound across instance families, and verifies the dual-fitting
//! certificate (Lemmas 8–11) on every instance.
//!
//! Run: `cargo bench -p eirs-bench --bench appendix_srpt`

use eirs_bench::section;
use eirs_srpt::{verify_dual_fitting, BatchInstance};

fn family_stats(name: &str, instances: Vec<BatchInstance>) {
    let mut worst: f64 = 0.0;
    let mut sum = 0.0;
    let n = instances.len();
    for inst in &instances {
        let r = verify_dual_fitting(inst);
        assert!(r.is_feasible(1e-9), "{name}: dual infeasible");
        assert!(r.lemma8_holds(1e-9), "{name}: Lemma 8 violated");
        assert!(r.weak_duality_holds(1e-9), "{name}: weak duality violated");
        assert!(r.approx_ratio <= 4.0 + 1e-9, "{name}: ratio above 4");
        worst = worst.max(r.approx_ratio);
        sum += r.approx_ratio;
    }
    println!(
        "  {name:<26} {n:>4} instances   mean ratio {:<7.3} worst {:<7.3} (bound: 4)",
        sum / n as f64,
        worst
    );
}

fn main() {
    section("Appendix A: SRPT-k total response time vs LP lower bound");
    println!("  instance family            count        C1/LP*  stats");

    family_stats(
        "uniform sizes, mixed caps",
        (0..40)
            .map(|s| BatchInstance::random_uniform(200, 8, 10.0, s))
            .collect(),
    );
    family_stats(
        "heavy-tailed (alpha=1.3)",
        (0..40)
            .map(|s| BatchInstance::random_heavy_tailed(200, 8, 1.3, 100 + s))
            .collect(),
    );
    family_stats(
        "heavy-tailed (alpha=0.9)",
        (0..40)
            .map(|s| BatchInstance::random_heavy_tailed(200, 8, 0.9, 200 + s))
            .collect(),
    );
    family_stats(
        "elastic/inelastic mixture",
        (0..40)
            .map(|s| BatchInstance::random_elastic_inelastic(200, 8, 0.5, 300 + s))
            .collect(),
    );
    family_stats(
        "few huge + many tiny",
        (0..40)
            .map(|s| {
                let mut inst = BatchInstance::random_uniform(150, 4, 0.2, 400 + s);
                for big in 0..5 {
                    inst.jobs.push(eirs_srpt::BatchJob {
                        size: 50.0 + big as f64,
                        cap: 1 + (big % 4) as u32,
                    });
                }
                inst
            })
            .collect(),
    );
    family_stats(
        "all-sequential (caps = 1)",
        (0..20)
            .map(|s| {
                let mut inst = BatchInstance::random_uniform(200, 8, 10.0, 500 + s);
                for j in &mut inst.jobs {
                    j.cap = 1;
                }
                inst
            })
            .collect(),
    );

    println!(
        "\n  Every instance also carried a verified dual-fitting certificate:\n\
         feasible (α, β), Σα − ∫β ≥ C₂/2, and dual ≤ LP* — the full chain of\n\
         the Theorem 9 proof, machine-checked."
    );
}
