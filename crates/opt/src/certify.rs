//! Certification of search results: how good is "best found"?
//!
//! Two notions, matching what is provable per workload:
//!
//! * **Poisson×exponential** — the truncated-grid MDP
//!   (`eirs_mdp::solve_optimal`) computes the optimal mean response time
//!   over *all* stationary policies, so [`certify_against_mdp`] reports
//!   the exact optimality gap of the search result, plus whether the MDP
//!   optimum has the paper's Inelastic-First structure on the grid
//!   interior (Theorem 5's regime).
//! * **Everything else** (bursty, trace-driven, non-exponential service)
//!   — no computable optimum exists, so [`improvement_over_baselines`]
//!   reports the improvement over the strongest fixed baseline (EF and
//!   IF), with a common-random-numbers **paired** confidence interval
//!   from [`eirs_sim::coupling::paired_comparison`]: the difference CI
//!   sheds the shared arrival noise, so far fewer replications resolve
//!   whether the found policy is genuinely better.

use eirs_core::scenario::Workload;
use eirs_core::SystemParams;
use eirs_mdp::{solve_optimal, MdpConfig};
use eirs_sim::des::{DesConfig, Simulation};
use eirs_sim::policy::{AllocationPolicy, ElasticFirst, InelasticFirst};
use eirs_sim::replicate::run_replications;
use eirs_sim::stats::ReplicationStats;

/// Optimality certificate for a Poisson×exponential instance.
#[derive(Debug, Clone)]
pub struct MdpCertificate {
    /// Mean response time of the best-found policy (as scored by the
    /// search objective).
    pub best_found_mean_response: f64,
    /// The MDP optimum's mean response time (`E[N*] / λ`, Little's law).
    pub mdp_mean_response: f64,
    /// Relative optimality gap `max(0, (found − opt) / opt)`. Clamped at
    /// zero: the truncated grid rejects boundary arrivals, so its optimum
    /// can sit a hair *below* the true infinite-space value.
    pub optimality_gap: f64,
    /// Whether the MDP-optimal policy allocates like Inelastic-First on
    /// the interior window `(i, j) ≤ (window, window)`.
    pub mdp_matches_inelastic_first: bool,
    /// Interior window used for the structure check.
    pub window: usize,
    /// Truncation grid (`i, j ≤ grid`).
    pub grid: usize,
    /// Value-iteration sweeps the solver needed.
    pub iterations: usize,
}

/// Solves the truncated MDP at `params` and certifies
/// `best_found_mean_response` against its optimum. `grid` is the
/// truncation bound in both coordinates; the structure check uses the
/// interior window `min(12, grid / 3)` (boundary actions react to the
/// truncation and deep states carry no probability mass — see
/// [`eirs_mdp::MdpSolution::matches_inelastic_first`]).
pub fn certify_against_mdp(
    params: &SystemParams,
    best_found_mean_response: f64,
    grid: usize,
) -> Result<MdpCertificate, String> {
    if grid < 6 {
        return Err(format!(
            "certification grid {grid} is too coarse (need at least 6)"
        ));
    }
    let cfg = MdpConfig {
        k: params.k,
        lambda_i: params.lambda_i,
        lambda_e: params.lambda_e,
        mu_i: params.mu_i,
        mu_e: params.mu_e,
        max_i: grid,
        max_j: grid,
        allow_idling: false,
    };
    let solution = solve_optimal(&cfg, 1e-9, 1_000_000).map_err(|e| e.to_string())?;
    let mdp_mean_response = solution.mean_response(params.total_lambda());
    let window = (grid / 3).min(12);
    let gap = ((best_found_mean_response - mdp_mean_response) / mdp_mean_response).max(0.0);
    Ok(MdpCertificate {
        best_found_mean_response,
        mdp_mean_response,
        optimality_gap: gap,
        mdp_matches_inelastic_first: solution.matches_inelastic_first(params.k, window, window),
        window,
        grid,
        iterations: solution.iterations,
    })
}

/// One baseline's paired comparison against the found policy.
#[derive(Debug, Clone)]
pub struct BaselineReport {
    /// Baseline display name.
    pub name: String,
    /// Baseline mean response time over the paired replications.
    pub mean_response: f64,
    /// Paired difference `found − baseline` (negative = improvement).
    pub diff_mean: f64,
    /// 95% half-width of the paired difference.
    pub diff_ci_half_width: f64,
    /// `true` when the whole 95% interval sits below zero.
    pub improves: bool,
}

/// Improvement certificate for workloads with no computable optimum.
#[derive(Debug, Clone)]
pub struct ImprovementCertificate {
    /// Mean response time of the found policy over the paired runs.
    pub best_found_mean_response: f64,
    /// Per-baseline paired comparisons (EF and IF).
    pub baselines: Vec<BaselineReport>,
    /// `true` when the found policy beats even the *best* baseline with
    /// 95% confidence (the acceptance bar for intractable workloads).
    pub beats_best_baseline: bool,
}

/// Runs CRN-paired comparisons of `found` against EF and IF on
/// `workload` (`replications` paired runs of `departures` measured
/// departures each, warm-up `departures / 10`) and reports whether the
/// found policy improves on the strongest baseline at 95% confidence.
///
/// The pairing follows `eirs_sim::coupling::paired_comparison` — each
/// replication rebuilds the arrival source from the same seed for every
/// policy, so all three see bit-identical traffic — but runs the found
/// policy **once** per seed and pairs it against both baselines, rather
/// than re-simulating it per comparison.
pub fn improvement_over_baselines(
    workload: &Workload,
    params: &SystemParams,
    found: &dyn AllocationPolicy,
    base_seed: u64,
    replications: usize,
    departures: u64,
) -> Result<ImprovementCertificate, String> {
    assert!(replications >= 2, "paired CIs need >= 2 replications");
    let warmup = departures / 10;
    let horizon = workload.horizon_hint(params, warmup, departures);
    // Surface source-construction errors before the panicking closure
    // below runs.
    workload.build_source(params, base_seed, horizon)?;

    let baselines: [(&str, &dyn AllocationPolicy); 2] = [
        ("Elastic-First", &ElasticFirst),
        ("Inelastic-First", &InelasticFirst),
    ];
    // runs[r] = [found, EF, IF] on replication r's shared sample path.
    let runs = run_replications(base_seed, replications, |seed| {
        let run_one = |policy: &dyn AllocationPolicy| {
            let mut source = workload
                .build_source(params, seed, horizon)
                .expect("source construction validated above");
            Simulation::new(DesConfig::steady_state(params.k, warmup, departures))
                .run(policy, source.as_mut())
        };
        [
            run_one(found),
            run_one(baselines[0].1),
            run_one(baselines[1].1),
        ]
    });
    for triple in &runs {
        for report in triple {
            let measured = report.completed[0] + report.completed[1];
            if measured < departures {
                return Err(format!(
                    "arrival source exhausted mid-comparison \
                     ({measured} of {departures} departures; trace too short?)"
                ));
            }
        }
    }
    let mean_of =
        |slot: usize| runs.iter().map(|t| t[slot].mean_response).sum::<f64>() / runs.len() as f64;
    let found_mean = mean_of(0);
    let mut reports = Vec::with_capacity(baselines.len());
    for (slot, (name, _)) in baselines.iter().enumerate() {
        let diff: ReplicationStats = runs
            .iter()
            .map(|t| t[0].mean_response - t[slot + 1].mean_response)
            .collect();
        let ci = diff.confidence_interval();
        reports.push(BaselineReport {
            name: name.to_string(),
            mean_response: mean_of(slot + 1),
            diff_mean: ci.mean,
            diff_ci_half_width: ci.half_width,
            improves: ci.mean + ci.half_width < 0.0,
        });
    }
    let best_baseline = reports
        .iter()
        .min_by(|a, b| {
            a.mean_response
                .partial_cmp(&b.mean_response)
                .expect("finite means")
        })
        .expect("two baselines");
    let beats_best_baseline = best_baseline.improves;
    Ok(ImprovementCertificate {
        best_found_mean_response: found_mean,
        baselines: reports,
        beats_best_baseline,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use eirs_core::analysis::{analyze_policy_with, AnalyzeOptions};
    use eirs_core::scenario::{ArrivalSpec, ServiceSpec};

    #[test]
    fn certificate_is_tight_for_if_in_the_provably_optimal_regime() {
        // µ_I ≥ µ_E: Theorem 5 says IF is optimal, so certifying IF's own
        // analytic mean response must produce a (near-)zero gap and an
        // IF-structured MDP optimum.
        let p = SystemParams::with_equal_lambdas(2, 1.5, 1.0, 0.5).unwrap();
        let analytic = analyze_policy_with(&InelasticFirst, &p, &AnalyzeOptions::default())
            .unwrap()
            .mean_response;
        let cert = certify_against_mdp(&p, analytic, 48).unwrap();
        assert!(
            cert.optimality_gap < 5e-3,
            "gap {} (found {}, mdp {})",
            cert.optimality_gap,
            cert.best_found_mean_response,
            cert.mdp_mean_response
        );
        assert!(cert.mdp_matches_inelastic_first);
    }

    #[test]
    fn certificate_flags_a_genuinely_bad_policy() {
        // EF in the IF-optimal regime has a visible gap.
        let p = SystemParams::with_equal_lambdas(2, 2.0, 1.0, 0.6).unwrap();
        let ef = analyze_policy_with(&ElasticFirst, &p, &AnalyzeOptions::default())
            .unwrap()
            .mean_response;
        let cert = certify_against_mdp(&p, ef, 48).unwrap();
        assert!(cert.optimality_gap > 0.01, "gap {}", cert.optimality_gap);
    }

    #[test]
    fn improvement_certificate_resolves_ef_against_the_baselines() {
        // In the open µ_I < µ_E regime EF beats IF at this operating
        // point; certifying EF itself must report a significant win over
        // IF and a (trivially) non-significant "win" over EF.
        let p = SystemParams::with_equal_lambdas(4, 0.5, 1.0, 0.6).unwrap();
        let w = Workload::new(
            ArrivalSpec::Bursty { mean_burst: 3.0 },
            ServiceSpec::Exponential,
            ServiceSpec::Exponential,
        );
        let cert = improvement_over_baselines(&w, &p, &ElasticFirst, 11, 6, 20_000).unwrap();
        assert_eq!(cert.baselines.len(), 2);
        let vs_if = cert
            .baselines
            .iter()
            .find(|b| b.name == "Inelastic-First")
            .unwrap();
        let vs_ef = cert
            .baselines
            .iter()
            .find(|b| b.name == "Elastic-First")
            .unwrap();
        assert!(vs_if.diff_mean < 0.0, "{vs_if:?}");
        // Against itself the paired difference is exactly zero.
        assert_eq!(vs_ef.diff_mean, 0.0, "{vs_ef:?}");
        assert!(!vs_ef.improves);
        assert!(!cert.beats_best_baseline);
    }
}
