//! Re-optimization from live observed traffic: the control-plane half
//! of the serve layer's observe → re-optimize → hot-swap loop.
//!
//! A serving engine counts per-class arrivals as it runs
//! (`ShardMetrics::arrivals_inelastic` / `arrivals_elastic` in
//! `eirs_serve`). This module turns those counters into arrival-rate
//! estimates ([`ObservedLoad`]), re-runs the policy search against the
//! estimated model, and renders the winner as a **parseable policy
//! spec** (the CLI `--policy` grammar) — exactly what a hot-swap
//! journal record needs so replay can recompile the same table.
//!
//! The module deliberately takes plain counters, not serve-layer types:
//! `eirs_opt` stays independent of `eirs_serve` (the serve crate and
//! the network front end depend on *this* crate, not the other way
//! around).

use crate::objective::AnalyticObjective;
use crate::optim::{optimize, Budget, Method, OptReport};
use crate::space::parse_family;
use eirs_core::analysis::AnalyzeOptions;
use eirs_core::SystemParams;

/// Per-stream arrival-rate estimates from live counters. "Stream" is
/// one routed substream (one route shard): each shard is an independent
/// `k`-server system, so the policy search models a single shard under
/// its own offered load.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ObservedLoad {
    /// Estimated inelastic arrival rate `λ̂_I` per stream.
    pub lambda_inelastic: f64,
    /// Estimated elastic arrival rate `λ̂_E` per stream.
    pub lambda_elastic: f64,
}

impl ObservedLoad {
    /// Maximum-likelihood rate estimates from merged counters:
    /// `arrivals_*` arrivals observed across all streams over
    /// `total_stream_time` (the **sum** of per-stream clocks, so the
    /// estimate is per stream regardless of how many streams fed it).
    pub fn from_counts(
        arrivals_inelastic: u64,
        arrivals_elastic: u64,
        total_stream_time: f64,
    ) -> Result<Self, String> {
        if total_stream_time <= 0.0 || !total_stream_time.is_finite() {
            return Err(format!(
                "cannot estimate arrival rates over stream time {total_stream_time}"
            ));
        }
        Ok(Self {
            lambda_inelastic: arrivals_inelastic as f64 / total_stream_time,
            lambda_elastic: arrivals_elastic as f64 / total_stream_time,
        })
    }
}

/// What a re-optimization produced: the search report plus the winning
/// policy rendered as a parseable spec.
#[derive(Debug, Clone)]
pub struct ReoptimizeOutcome {
    /// The underlying search report (best value, evaluations, trace).
    pub report: OptReport,
    /// The optimized policy in the CLI `--policy` grammar (e.g.
    /// `threshold:3`, `curve:2+0.5i`) — round-trips through
    /// `parse_policy`, so a hot-swap journaled with this spec replays
    /// bit-identically.
    pub spec: String,
}

/// Re-runs the policy search for `family_spec` (the `--family` grammar:
/// `threshold`, `curve`, `waterfill`, `reserve`) against the paper's
/// Poisson×exponential model at the observed load, returning the best
/// policy as a parseable spec. Errors if the family cannot be rendered
/// as a spec (`tabular`), the estimated load is infeasible (`ρ ≥ 1`),
/// or the search itself fails.
pub fn reoptimize(
    family_spec: &str,
    k: u32,
    load: &ObservedLoad,
    mu_inelastic: f64,
    mu_elastic: f64,
    budget: &Budget,
) -> Result<ReoptimizeOutcome, String> {
    let space = parse_family(family_spec, k)?;
    let params = SystemParams::new(
        k,
        load.lambda_inelastic,
        load.lambda_elastic,
        mu_inelastic,
        mu_elastic,
    )
    .map_err(|e| format!("observed load is not optimizable: {e}"))?;
    let objective = AnalyticObjective::poisson_exp(params, AnalyzeOptions::default());
    let report = optimize(space.as_ref(), &objective, Method::Auto, budget)?;
    let spec = render_spec(&space.name(), &report.best_x)?;
    Ok(ReoptimizeOutcome { report, spec })
}

/// Renders an optimized point as a parseable policy spec. Inverse of
/// the decode mapping each family applies: thresholds and reserves
/// round to integers, the curve rounds its intercept, water-filling
/// exponentiates its log₂-weight.
pub fn render_spec(family: &str, x: &[f64]) -> Result<String, String> {
    let coord = |n: usize| -> Result<f64, String> {
        x.get(n)
            .copied()
            .ok_or_else(|| format!("family '{family}' point has no coordinate {n}"))
    };
    match family {
        "threshold" => Ok(format!("threshold:{}", coord(0)?.round() as usize)),
        "curve" => Ok(format!(
            "curve:{}+{}i",
            coord(0)?.round() as usize,
            coord(1)?
        )),
        "waterfill" => Ok(format!("waterfill:{}", coord(0)?.exp2())),
        "reserve" => Ok(format!("reserve:{}", coord(0)?.round() as u32)),
        other => Err(format!(
            "family '{other}' has no parseable policy-spec rendering (hot-swap needs one of \
             threshold, curve, waterfill, reserve)"
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eirs_core::policy::parse_policy;

    #[test]
    fn observed_load_estimates_per_stream_rates() {
        let load = ObservedLoad::from_counts(90, 60, 300.0).unwrap();
        assert!((load.lambda_inelastic - 0.3).abs() < 1e-12);
        assert!((load.lambda_elastic - 0.2).abs() < 1e-12);
        assert!(ObservedLoad::from_counts(1, 1, 0.0).is_err());
        assert!(ObservedLoad::from_counts(1, 1, f64::NAN).is_err());
    }

    #[test]
    fn rendered_specs_round_trip_through_the_policy_grammar() {
        for (family, x, expect) in [
            ("threshold", vec![2.6], "threshold:3"),
            ("curve", vec![1.9, 0.5], "curve:2+0.5i"),
            ("waterfill", vec![1.0], "waterfill:2"),
            ("reserve", vec![0.2], "reserve:0"),
        ] {
            let spec = render_spec(family, &x).unwrap();
            assert_eq!(spec, expect);
            parse_policy(&spec).unwrap_or_else(|e| panic!("{spec}: {e}"));
        }
        assert!(render_spec("tabular", &[0.0]).is_err());
        assert!(render_spec("curve", &[1.0]).is_err(), "missing slope");
    }

    #[test]
    fn reoptimize_finds_a_spec_policy_for_observed_traffic() {
        // Light inelastic load, heavier elastic load on a 2-server shard.
        let load = ObservedLoad::from_counts(50, 80, 400.0).unwrap();
        let out = reoptimize(
            "threshold",
            2,
            &load,
            1.0,
            1.0,
            &Budget {
                max_evals: 8,
                seed: 1,
            },
        )
        .unwrap();
        assert!(out.spec.starts_with("threshold:"), "{}", out.spec);
        assert!(out.report.best_value.is_finite());
        parse_policy(&out.spec).unwrap();
        // An overloaded estimate is refused up front, not deep in the
        // solver.
        let hot = ObservedLoad::from_counts(5000, 5000, 400.0).unwrap();
        let err = reoptimize("threshold", 2, &hot, 1.0, 1.0, &Budget::default()).unwrap_err();
        assert!(err.contains("not optimizable"), "{err}");
    }
}
