//! Objective backends: how a candidate policy is scored.
//!
//! Both backends return the stationary mean response time `E[T]` (lower
//! is better) and evaluate whole candidate batches through the
//! [`eirs_core::sweep`] parallel engine, so every optimizer generation
//! fans out over the sweep workers:
//!
//! * [`AnalyticObjective`] — exact evaluation via the scenario engine's
//!   tractability dispatcher ([`Workload::analyze`]): the policy-generic
//!   QBD for Poisson×exp, the MAP-phase-extended QBD for MAP×exp, or the
//!   MAP/PH/1 chain for elastic-only phase-type traffic. Errors when no
//!   analytic route applies.
//! * [`DesObjective`] — simulation fallback for intractable workloads
//!   (bursty batches, trace replay, non-exponential service under
//!   two-class traffic). Every candidate is scored on the **same**
//!   fixed replication seed set, so all randomness is common across
//!   candidates (the batch form of `eirs_sim::coupling`'s paired
//!   comparisons): candidate differences are variance-reduced and the
//!   whole search is deterministic under a fixed base seed.
//!
//! [`objective_for`] picks the backend by probing tractability with a
//! representative policy of the family under search.

use eirs_core::analysis::AnalyzeOptions;
use eirs_core::scenario::{Tractability, Workload};
use eirs_core::{sweep, SystemParams};
use eirs_sim::policy::AllocationPolicy;
use eirs_sim::replicate::replication_seeds;

/// Scores batches of candidate policies; lower values are better.
pub trait Objective: Sync {
    /// Backend name for reports (`analysis` or `des`).
    fn name(&self) -> String;

    /// Mean response time of each candidate, fanned out in parallel over
    /// the sweep workers. One `Err` fails the whole batch (optimizers
    /// propagate it), so a search never silently continues on garbage.
    fn evaluate_batch(&self, policies: &[Box<dyn AllocationPolicy>]) -> Vec<Result<f64, String>>;
}

/// Exact analytic evaluation via the tractability dispatcher.
#[derive(Debug, Clone)]
pub struct AnalyticObjective {
    workload: Workload,
    params: SystemParams,
    opts: AnalyzeOptions,
}

impl AnalyticObjective {
    /// Analytic objective for `workload` at `params`.
    pub fn new(workload: Workload, params: SystemParams, opts: AnalyzeOptions) -> Self {
        Self {
            workload,
            params,
            opts,
        }
    }

    /// Convenience constructor for the paper's Poisson×exponential model.
    pub fn poisson_exp(params: SystemParams, opts: AnalyzeOptions) -> Self {
        use eirs_core::scenario::{ArrivalSpec, ServiceSpec};
        Self::new(
            Workload::new(
                ArrivalSpec::Poisson,
                ServiceSpec::Exponential,
                ServiceSpec::Exponential,
            ),
            params,
            opts,
        )
    }
}

impl Objective for AnalyticObjective {
    fn name(&self) -> String {
        "analysis".into()
    }

    fn evaluate_batch(&self, policies: &[Box<dyn AllocationPolicy>]) -> Vec<Result<f64, String>> {
        sweep::sweep(policies, |policy| {
            match self
                .workload
                .analyze(policy.as_ref(), &self.params, &self.opts)
            {
                Ok(Some(a)) => Ok(a.mean_response),
                Ok(None) => Err(format!(
                    "workload '{}' has no analytic route for policy '{}'",
                    self.workload.name,
                    policy.name()
                )),
                Err(e) => Err(format!("{}: {e}", policy.name())),
            }
        })
    }
}

/// Common-random-numbers DES evaluation: every candidate runs the same
/// fixed seed set, so candidate comparisons are paired.
#[derive(Debug, Clone)]
pub struct DesObjective {
    workload: Workload,
    params: SystemParams,
    seeds: Vec<u64>,
    warmup: u64,
    departures: u64,
}

impl DesObjective {
    /// DES objective with `replications` runs of `departures` measured
    /// departures each (warm-up `departures / 10`), on seed streams
    /// derived once from `base_seed` and shared by every candidate.
    /// Deterministic trace-replay workloads collapse to one replication —
    /// every seed replays the same path.
    pub fn new(
        workload: Workload,
        params: SystemParams,
        base_seed: u64,
        replications: usize,
        departures: u64,
    ) -> Self {
        let n = if workload.is_deterministic() {
            1
        } else {
            replications.max(1)
        };
        Self {
            workload,
            params,
            seeds: replication_seeds(base_seed, n),
            warmup: departures / 10,
            departures,
        }
    }

    /// The shared replication seed set (one entry per replication).
    pub fn seeds(&self) -> &[u64] {
        &self.seeds
    }
}

impl Objective for DesObjective {
    fn name(&self) -> String {
        "des".into()
    }

    fn evaluate_batch(&self, policies: &[Box<dyn AllocationPolicy>]) -> Vec<Result<f64, String>> {
        // Fan (candidate, seed) pairs out together: a small optimizer
        // generation with several replications each still fills the
        // workers. Ordered sweep + fixed-order averaging keeps the result
        // bit-identical across thread counts.
        let pairs: Vec<(usize, u64)> = (0..policies.len())
            .flat_map(|c| self.seeds.iter().map(move |&s| (c, s)))
            .collect();
        let runs = sweep::sweep(&pairs, |&(c, seed)| {
            self.workload
                .simulate(
                    policies[c].as_ref(),
                    &self.params,
                    seed,
                    self.warmup,
                    self.departures,
                )
                .map(|r| r.mean_response)
        });
        let per = self.seeds.len();
        (0..policies.len())
            .map(|c| {
                let mut sum = 0.0;
                for run in &runs[c * per..(c + 1) * per] {
                    match run {
                        Ok(m) => sum += m,
                        Err(e) => return Err(format!("{}: {e}", policies[c].name())),
                    }
                }
                Ok(sum / per as f64)
            })
            .collect()
    }
}

/// Configuration of the DES fallback used by [`objective_for`].
#[derive(Debug, Clone, Copy)]
pub struct DesBudget {
    /// Base seed for the shared replication streams.
    pub base_seed: u64,
    /// Replications per candidate evaluation.
    pub replications: usize,
    /// Measured departures per replication.
    pub departures: u64,
}

impl Default for DesBudget {
    fn default() -> Self {
        Self {
            base_seed: 42,
            replications: 6,
            departures: 50_000,
        }
    }
}

/// Picks the scoring backend for `(workload, params)`: the exact analytic
/// chain when the tractability dispatcher finds a route for `probe` (a
/// representative policy of the family under search — tractability can
/// depend on the policy's shape), otherwise the CRN-paired DES.
pub fn objective_for(
    workload: &Workload,
    params: &SystemParams,
    probe: &dyn AllocationPolicy,
    opts: &AnalyzeOptions,
    des: &DesBudget,
) -> Box<dyn Objective> {
    match workload.tractability(probe, params) {
        Tractability::Intractable => Box::new(DesObjective::new(
            workload.clone(),
            *params,
            des.base_seed,
            des.replications,
            des.departures,
        )),
        _ => Box::new(AnalyticObjective::new(workload.clone(), *params, *opts)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eirs_core::analysis::analyze_policy_with;
    use eirs_core::policy::{ElasticThresholdPolicy, InelasticFirst};
    use eirs_core::scenario::{ArrivalSpec, ServiceSpec};

    fn params() -> SystemParams {
        SystemParams::with_equal_lambdas(3, 0.5, 1.0, 0.5).unwrap()
    }

    fn opts() -> AnalyzeOptions {
        AnalyzeOptions {
            phase_cap: 24,
            ..AnalyzeOptions::default()
        }
    }

    #[test]
    fn analytic_objective_matches_direct_analysis_bitwise() {
        let obj = AnalyticObjective::poisson_exp(params(), opts());
        let policies: Vec<Box<dyn AllocationPolicy>> = vec![
            Box::new(InelasticFirst),
            Box::new(ElasticThresholdPolicy { threshold: 3 }),
        ];
        let got = obj.evaluate_batch(&policies);
        for (policy, value) in policies.iter().zip(&got) {
            let direct = analyze_policy_with(policy.as_ref(), &params(), &opts()).unwrap();
            assert_eq!(
                value.as_ref().unwrap().to_bits(),
                direct.mean_response.to_bits()
            );
        }
    }

    #[test]
    fn analytic_objective_reports_intractable_workloads() {
        let bursty = Workload::new(
            ArrivalSpec::Bursty { mean_burst: 4.0 },
            ServiceSpec::Exponential,
            ServiceSpec::Exponential,
        );
        let obj = AnalyticObjective::new(bursty, params(), opts());
        let policies: Vec<Box<dyn AllocationPolicy>> = vec![Box::new(InelasticFirst)];
        assert!(obj.evaluate_batch(&policies)[0].is_err());
    }

    #[test]
    fn des_objective_is_deterministic_and_paired() {
        let w = Workload::new(
            ArrivalSpec::Bursty { mean_burst: 3.0 },
            ServiceSpec::Exponential,
            ServiceSpec::Exponential,
        );
        let obj = DesObjective::new(w, params(), 7, 3, 4_000);
        let policies: Vec<Box<dyn AllocationPolicy>> = vec![
            Box::new(InelasticFirst),
            Box::new(InelasticFirst), // identical candidate
        ];
        let a = obj.evaluate_batch(&policies);
        let b = obj.evaluate_batch(&policies);
        let v0 = *a[0].as_ref().unwrap();
        // Same candidate, same shared seeds: identical scores (CRN), and
        // re-evaluation is bit-stable.
        assert_eq!(v0.to_bits(), a[1].as_ref().unwrap().to_bits());
        assert_eq!(v0.to_bits(), b[0].as_ref().unwrap().to_bits());
        assert!(v0.is_finite() && v0 > 0.0);
    }

    #[test]
    fn objective_dispatch_follows_tractability() {
        let poisson = Workload::new(
            ArrivalSpec::Poisson,
            ServiceSpec::Exponential,
            ServiceSpec::Exponential,
        );
        let bursty = Workload::new(
            ArrivalSpec::Bursty { mean_burst: 4.0 },
            ServiceSpec::Exponential,
            ServiceSpec::Exponential,
        );
        let p = params();
        let des = DesBudget::default();
        assert_eq!(
            objective_for(&poisson, &p, &InelasticFirst, &opts(), &des).name(),
            "analysis"
        );
        assert_eq!(
            objective_for(&bursty, &p, &InelasticFirst, &opts(), &des).name(),
            "des"
        );
    }
}
