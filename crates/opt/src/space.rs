//! Parameter spaces: each searchable policy family as a boxed, bounded
//! parameter vector.
//!
//! A [`ParamSpace`] turns one policy family into the optimizer's
//! currency — a point `x ∈ ℝᵈ` inside per-coordinate box bounds, with
//! [`ParamSpace::decode`] mapping any in-bounds point to an
//! [`AllocationPolicy`] the substrates understand. Coordinates may be
//! marked integer ([`ParamBound::integer`]); the optimizers keep their
//! internal state continuous and rounding happens in [`ParamSpace::clamp`]
//! on the way to every evaluation, so discrete families (thresholds,
//! reserves, switching-curve intercepts) and continuous ones
//! (water-filling weights, tabular shares) share one interface.
//!
//! Shipped families mirror `eirs_core::policy`'s registry:
//!
//! | spec | family | dims |
//! |------|--------|------|
//! | `threshold[:max]` | [`ThresholdFamily`] | 1 (integer) |
//! | `curve[:max]` | [`SwitchingCurveFamily`] | 2 (integer intercept, continuous slope) |
//! | `waterfill` | [`WaterFillingFamily`] | 1 (continuous log₂ weight) |
//! | `reserve` | [`ReserveFamily`] | 1 (integer) |
//! | `tabular[:IxJ]` | [`TabularFamily`] | I·J (continuous shares) |

use eirs_core::policy::{
    AllocationPolicy, ElasticThresholdPolicy, ReservePolicy, SwitchingCurvePolicy, TabularPolicy,
    WeightedWaterFilling,
};

/// Box bounds of one parameter-vector coordinate.
#[derive(Debug, Clone, PartialEq)]
pub struct ParamBound {
    /// Coordinate name (for reports: `intercept`, `slope`, …).
    pub name: String,
    /// Inclusive lower bound.
    pub lo: f64,
    /// Inclusive upper bound.
    pub hi: f64,
    /// `true` when the coordinate is integer-valued: [`ParamSpace::clamp`]
    /// rounds it to the nearest in-bounds integer before decoding.
    pub integer: bool,
}

impl ParamBound {
    /// A continuous coordinate.
    pub fn continuous(name: &str, lo: f64, hi: f64) -> Self {
        assert!(lo < hi, "{name}: empty bound [{lo}, {hi}]");
        Self {
            name: name.into(),
            lo,
            hi,
            integer: false,
        }
    }

    /// An integer coordinate (bounds are themselves integral).
    pub fn integer(name: &str, lo: i64, hi: i64) -> Self {
        assert!(lo < hi, "{name}: empty bound [{lo}, {hi}]");
        Self {
            name: name.into(),
            lo: lo as f64,
            hi: hi as f64,
            integer: true,
        }
    }
}

/// A policy family exposed as a bounded parameter vector.
pub trait ParamSpace: Send + Sync {
    /// Family name for reports (`threshold`, `curve`, …).
    fn name(&self) -> String;

    /// Per-coordinate bounds; the dimension is `bounds().len()`.
    fn bounds(&self) -> Vec<ParamBound>;

    /// A reasonable in-bounds starting point for local optimizers.
    fn initial(&self) -> Vec<f64>;

    /// Decodes an **in-bounds** point (see [`ParamSpace::clamp`]) into a
    /// policy. Implementations may assume `x` was clamped.
    fn decode(&self, x: &[f64]) -> Box<dyn AllocationPolicy>;

    /// Number of coordinates.
    fn dim(&self) -> usize {
        self.bounds().len()
    }

    /// `true` when every coordinate is continuous.
    fn all_continuous(&self) -> bool {
        self.bounds().iter().all(|b| !b.integer)
    }

    /// Projects an arbitrary point into the feasible box: clamps each
    /// coordinate to its bounds and rounds integer coordinates. Every
    /// evaluation goes through this, so optimizers are free to propose
    /// out-of-bounds or fractional points.
    fn clamp(&self, x: &[f64]) -> Vec<f64> {
        let bounds = self.bounds();
        assert_eq!(x.len(), bounds.len(), "{}: wrong dimension", self.name());
        x.iter()
            .zip(&bounds)
            .map(|(&v, b)| {
                let v = v.clamp(b.lo, b.hi);
                if b.integer {
                    v.round().clamp(b.lo, b.hi)
                } else {
                    v
                }
            })
            .collect()
    }

    /// Human-readable rendering of a (clamped) point: `intercept=3,
    /// slope=0.50`.
    fn describe(&self, x: &[f64]) -> String {
        self.bounds()
            .iter()
            .zip(x)
            .map(|(b, &v)| {
                if b.integer {
                    format!("{}={}", b.name, v as i64)
                } else {
                    format!("{}={v:.4}", b.name)
                }
            })
            .collect::<Vec<_>>()
            .join(", ")
    }
}

/// The 1-D elastic-threshold family `threshold ∈ [1, max_threshold]`
/// (decodes to [`ElasticThresholdPolicy`]). Large thresholds behave like
/// Inelastic-First, `threshold = 1` like Elastic-First.
#[derive(Debug, Clone, Copy)]
pub struct ThresholdFamily {
    /// Largest searchable threshold.
    pub max_threshold: usize,
}

impl ParamSpace for ThresholdFamily {
    fn name(&self) -> String {
        "threshold".into()
    }

    fn bounds(&self) -> Vec<ParamBound> {
        vec![ParamBound::integer(
            "threshold",
            1,
            self.max_threshold.max(2) as i64,
        )]
    }

    fn initial(&self) -> Vec<f64> {
        vec![(self.max_threshold.max(2) as f64 / 2.0).round()]
    }

    fn decode(&self, x: &[f64]) -> Box<dyn AllocationPolicy> {
        Box::new(ElasticThresholdPolicy {
            threshold: x[0].round() as usize,
        })
    }
}

/// The 2-D switching-curve family: EF-mode whenever
/// `j ≥ intercept + slope·i` (decodes to [`SwitchingCurvePolicy`]).
/// This is the shape the MDP-optimal policy takes in the paper's open
/// `µ_I < µ_E` regime, so it is the default certification family.
#[derive(Debug, Clone, Copy)]
pub struct SwitchingCurveFamily {
    /// Largest searchable intercept.
    pub max_intercept: usize,
    /// Largest searchable slope.
    pub max_slope: f64,
}

impl ParamSpace for SwitchingCurveFamily {
    fn name(&self) -> String {
        "curve".into()
    }

    fn bounds(&self) -> Vec<ParamBound> {
        vec![
            ParamBound::integer("intercept", 1, self.max_intercept.max(2) as i64),
            ParamBound::continuous("slope", 0.0, self.max_slope.max(0.5)),
        ]
    }

    fn initial(&self) -> Vec<f64> {
        vec![(self.max_intercept.max(2) as f64 / 2.0).round(), 0.5]
    }

    fn decode(&self, x: &[f64]) -> Box<dyn AllocationPolicy> {
        Box::new(SwitchingCurvePolicy {
            intercept: x[0].round() as usize,
            slope: x[1],
        })
    }
}

/// The 1-D weighted water-filling family, parameterized by the **log₂**
/// of the elastic weight so the search space is symmetric around the
/// fair-share point `w = 1` (decodes to [`WeightedWaterFilling`]).
#[derive(Debug, Clone, Copy)]
pub struct WaterFillingFamily {
    /// Search `log₂ w ∈ [−max_log2_weight, max_log2_weight]`.
    pub max_log2_weight: f64,
}

impl ParamSpace for WaterFillingFamily {
    fn name(&self) -> String {
        "waterfill".into()
    }

    fn bounds(&self) -> Vec<ParamBound> {
        let m = self.max_log2_weight.max(1.0);
        vec![ParamBound::continuous("log2_weight", -m, m)]
    }

    fn initial(&self) -> Vec<f64> {
        vec![0.0]
    }

    fn decode(&self, x: &[f64]) -> Box<dyn AllocationPolicy> {
        Box::new(WeightedWaterFilling {
            elastic_weight: x[0].exp2(),
        })
    }
}

/// The 1-D reserve family `reserve ∈ [0, k]` (decodes to
/// [`ReservePolicy`]): `0` is Inelastic-First, `k` Elastic-First.
#[derive(Debug, Clone, Copy)]
pub struct ReserveFamily {
    /// Cluster size the reserve interpolates over.
    pub k: u32,
}

impl ParamSpace for ReserveFamily {
    fn name(&self) -> String {
        "reserve".into()
    }

    fn bounds(&self) -> Vec<ParamBound> {
        vec![ParamBound::integer("reserve", 0, self.k.max(1) as i64)]
    }

    fn initial(&self) -> Vec<f64> {
        vec![(self.k as f64 / 2.0).round()]
    }

    fn decode(&self, x: &[f64]) -> Box<dyn AllocationPolicy> {
        Box::new(ReservePolicy {
            reserve: x[0].round() as u32,
        })
    }
}

/// The tabular-perturbation family: one continuous coordinate per state
/// `(i, j) ∈ [1, grid_i] × [1, grid_j]` giving the *fraction* of
/// `min(i, k)` servers handed to inelastic jobs there (elastic jobs soak
/// up the remainder — the policy stays work conserving by construction).
/// States beyond the grid clamp to the edge, `j = 0` serves all inelastic
/// jobs, and `i = 0` gives everything to the elastic class. Fraction `1`
/// everywhere is Inelastic-First, `0` everywhere Elastic-First; interior
/// points are fractional allocations no closed family expresses — the
/// highest-resolution (and highest-dimension) space, meant for the
/// cross-entropy optimizer.
#[derive(Debug, Clone, Copy)]
pub struct TabularFamily {
    /// Cluster size the decoded tables target.
    pub k: u32,
    /// Inelastic-queue grid depth (`i ≤ grid_i` parameterized).
    pub grid_i: usize,
    /// Elastic-queue grid depth (`j ≤ grid_j` parameterized).
    pub grid_j: usize,
}

impl TabularFamily {
    fn share_index(&self, i: usize, j: usize) -> usize {
        debug_assert!((1..=self.grid_i).contains(&i) && (1..=self.grid_j).contains(&j));
        (i - 1) * self.grid_j + (j - 1)
    }
}

impl ParamSpace for TabularFamily {
    fn name(&self) -> String {
        "tabular".into()
    }

    fn bounds(&self) -> Vec<ParamBound> {
        let mut bounds = Vec::with_capacity(self.grid_i * self.grid_j);
        for i in 1..=self.grid_i {
            for j in 1..=self.grid_j {
                bounds.push(ParamBound::continuous(&format!("share[{i},{j}]"), 0.0, 1.0));
            }
        }
        bounds
    }

    fn initial(&self) -> Vec<f64> {
        // Start from Inelastic-First (share 1 everywhere): the provably
        // optimal corner in half the parameter space, and a strong
        // starting point in the open regime.
        vec![1.0; self.grid_i * self.grid_j]
    }

    fn decode(&self, x: &[f64]) -> Box<dyn AllocationPolicy> {
        let k = self.k;
        let kf = k as f64;
        let shares = x.to_vec();
        let family = *self;
        // The decoded table extends to at least `k` rows: parameters
        // beyond the grid reuse the edge share, but `min(i, k)` keeps
        // growing until `i = k`, and `TabularPolicy`'s own edge-clamping
        // stores absolute server counts — a table cut off before `i = k`
        // would under-serve deep inelastic queues.
        let table_i = self.grid_i.max(k as usize);
        Box::new(TabularPolicy::from_fn(
            format!("TabularSearch(k={k},{}x{})", self.grid_i, self.grid_j),
            k,
            table_i,
            self.grid_j,
            move |i, j| {
                if j == 0 {
                    return ((i as f64).min(kf), 0.0);
                }
                if i == 0 {
                    return (0.0, kf);
                }
                let share = shares[family.share_index(i.min(family.grid_i), j.min(family.grid_j))];
                let inelastic = share * (i as f64).min(kf);
                (inelastic, kf - inelastic)
            },
        ))
    }
}

/// Every shipped family at representative sizes for `k` servers,
/// mirroring `eirs_core::policy::registry`.
pub fn registry(k: u32) -> Vec<Box<dyn ParamSpace>> {
    vec![
        Box::new(ThresholdFamily { max_threshold: 16 }),
        Box::new(SwitchingCurveFamily {
            max_intercept: 16,
            max_slope: 4.0,
        }),
        Box::new(WaterFillingFamily {
            max_log2_weight: 6.0,
        }),
        Box::new(ReserveFamily { k }),
        Box::new(TabularFamily {
            k,
            grid_i: 3,
            grid_j: 3,
        }),
    ]
}

/// Parses a CLI family spec into a parameter space for `k` servers.
///
/// Accepted forms: `threshold[:<max>]`, `curve[:<max_intercept>]`,
/// `waterfill`, `reserve`, `tabular[:<I>x<J>]`.
pub fn parse_family(spec: &str, k: u32) -> Result<Box<dyn ParamSpace>, String> {
    match spec {
        "threshold" => return Ok(Box::new(ThresholdFamily { max_threshold: 16 })),
        "curve" => {
            return Ok(Box::new(SwitchingCurveFamily {
                max_intercept: 16,
                max_slope: 4.0,
            }))
        }
        "waterfill" => {
            return Ok(Box::new(WaterFillingFamily {
                max_log2_weight: 6.0,
            }))
        }
        "reserve" => return Ok(Box::new(ReserveFamily { k })),
        "tabular" => {
            return Ok(Box::new(TabularFamily {
                k,
                grid_i: 3,
                grid_j: 3,
            }))
        }
        _ => {}
    }
    if let Some(raw) = spec.strip_prefix("threshold:") {
        let max: usize = raw.parse().map_err(|_| bad(spec, "threshold:<max>"))?;
        if max < 2 {
            return Err(bad(spec, "threshold:<max> (>= 2)"));
        }
        return Ok(Box::new(ThresholdFamily { max_threshold: max }));
    }
    if let Some(raw) = spec.strip_prefix("curve:") {
        let max: usize = raw
            .parse()
            .map_err(|_| bad(spec, "curve:<max_intercept>"))?;
        if max < 2 {
            return Err(bad(spec, "curve:<max_intercept> (>= 2)"));
        }
        return Ok(Box::new(SwitchingCurveFamily {
            max_intercept: max,
            max_slope: 4.0,
        }));
    }
    if let Some(raw) = spec.strip_prefix("tabular:") {
        let form = "tabular:<I>x<J>";
        let (gi, gj) = raw.split_once('x').ok_or_else(|| bad(spec, form))?;
        let grid_i: usize = gi.parse().map_err(|_| bad(spec, form))?;
        let grid_j: usize = gj.parse().map_err(|_| bad(spec, form))?;
        if grid_i == 0 || grid_j == 0 {
            return Err(bad(spec, "tabular:<I>x<J> (>= 1 each)"));
        }
        return Ok(Box::new(TabularFamily { k, grid_i, grid_j }));
    }
    Err(format!(
        "unknown family '{spec}' (expected threshold[:<max>], curve[:<max_intercept>], \
         waterfill, reserve, tabular[:<I>x<J>])"
    ))
}

fn bad(spec: &str, form: &str) -> String {
    format!("cannot parse family '{spec}' (expected {form})")
}

#[cfg(test)]
mod tests {
    use super::*;
    use eirs_core::policy::assert_feasible;

    #[test]
    fn registry_decodes_to_feasible_policies_everywhere_in_bounds() {
        let k = 4;
        for space in registry(k) {
            let bounds = space.bounds();
            // Probe the corners and the midpoint of the box.
            let corners: Vec<Vec<f64>> = vec![
                bounds.iter().map(|b| b.lo).collect(),
                bounds.iter().map(|b| b.hi).collect(),
                bounds.iter().map(|b| 0.5 * (b.lo + b.hi)).collect(),
                space.initial(),
            ];
            for x in corners {
                let policy = space.decode(&space.clamp(&x));
                for i in 0..=10usize {
                    for j in 0..=10usize {
                        assert_feasible(policy.allocate(i, j, k), i, j, k, &policy.name());
                    }
                }
            }
        }
    }

    #[test]
    fn clamp_projects_and_rounds() {
        let space = SwitchingCurveFamily {
            max_intercept: 8,
            max_slope: 2.0,
        };
        assert_eq!(space.clamp(&[3.4, 0.7]), vec![3.0, 0.7]);
        assert_eq!(space.clamp(&[-5.0, 9.0]), vec![1.0, 2.0]);
        assert_eq!(space.clamp(&[8.6, -0.2]), vec![8.0, 0.0]);
    }

    #[test]
    fn threshold_family_decodes_round_values() {
        let space = ThresholdFamily { max_threshold: 8 };
        let p = space.decode(&space.clamp(&[2.6]));
        assert_eq!(p.name(), "ElasticThreshold(3)");
    }

    #[test]
    fn waterfill_family_is_log_symmetric() {
        let space = WaterFillingFamily {
            max_log2_weight: 4.0,
        };
        let heavy = space.decode(&[2.0]);
        let light = space.decode(&[-2.0]);
        assert_eq!(heavy.name(), "WaterFilling(w=4)");
        assert_eq!(light.name(), "WaterFilling(w=0.25)");
    }

    #[test]
    fn tabular_family_interpolates_if_and_ef_at_the_corners() {
        use eirs_core::policy::{ElasticFirst, InelasticFirst};
        let space = TabularFamily {
            k: 3,
            grid_i: 2,
            grid_j: 2,
        };
        assert_eq!(space.dim(), 4);
        let as_if = space.decode(&[1.0; 4]);
        let as_ef = space.decode(&[0.0; 4]);
        for i in 0..=6usize {
            for j in 0..=6usize {
                assert_eq!(as_if.allocate(i, j, 3), InelasticFirst.allocate(i, j, 3));
                assert_eq!(as_ef.allocate(i, j, 3), ElasticFirst.allocate(i, j, 3));
            }
        }
    }

    #[test]
    fn tabular_decode_at_exactly_k_rows_round_trips_on_grid() {
        // A family whose grid has exactly k parameterized rows sits on the
        // boundary of the >= k-row extension rule: `table_i = grid_i.max(k)`
        // extends nothing, and extending anyway (deeper tables reusing the
        // edge share) must not change a single on-grid decision.
        let k = 4u32;
        let kf = k as f64;
        let space = TabularFamily {
            k,
            grid_i: k as usize,
            grid_j: 3,
        };
        // Deterministic, non-degenerate shares spread over (0, 1).
        let x: Vec<f64> = (0..space.dim())
            .map(|t| (t as f64 * 0.37 + 0.11) % 1.0)
            .collect();
        let x = space.clamp(&x);
        let decoded = space.decode(&x);
        let share_at = |i: usize, j: usize| {
            x[space.share_index(i.min(space.grid_i).max(1), j.min(space.grid_j).max(1))]
        };
        // A hand-extended reference table with 3 extra rows beyond k.
        let deeper = TabularPolicy::from_fn("deep", k, k as usize + 3, space.grid_j, |i, j| {
            if j == 0 {
                return ((i as f64).min(kf), 0.0);
            }
            if i == 0 {
                return (0.0, kf);
            }
            let inelastic = share_at(i, j) * (i as f64).min(kf);
            (inelastic, kf - inelastic)
        });
        for i in 0..=(2 * k as usize + 4) {
            for j in 0..=8usize {
                let a = decoded.allocate(i, j, k);
                let b = deeper.allocate(i, j, k);
                assert_eq!(
                    a.inelastic.to_bits(),
                    b.inelastic.to_bits(),
                    "pi_I at ({i},{j})"
                );
                assert_eq!(
                    a.elastic.to_bits(),
                    b.elastic.to_bits(),
                    "pi_E at ({i},{j})"
                );
                // On-grid decisions also match the raw share formula.
                if (1..=space.grid_i).contains(&i) && (1..=space.grid_j).contains(&j) {
                    let want = share_at(i, j) * (i as f64).min(kf);
                    assert_eq!(a.inelastic.to_bits(), want.to_bits(), "share at ({i},{j})");
                }
            }
        }
    }

    #[test]
    fn parser_round_trips_and_rejects() {
        for (spec, name, dim) in [
            ("threshold", "threshold", 1),
            ("threshold:8", "threshold", 1),
            ("curve", "curve", 2),
            ("curve:12", "curve", 2),
            ("waterfill", "waterfill", 1),
            ("reserve", "reserve", 1),
            ("tabular", "tabular", 9),
            ("tabular:2x4", "tabular", 8),
        ] {
            let space = parse_family(spec, 4).unwrap();
            assert_eq!(space.name(), name, "spec '{spec}'");
            assert_eq!(space.dim(), dim, "spec '{spec}'");
        }
        for spec in [
            "nope",
            "threshold:1",
            "threshold:x",
            "curve:0",
            "tabular:0x2",
            "tabular:2",
        ] {
            assert!(parse_family(spec, 4).is_err(), "'{spec}' should fail");
        }
    }

    #[test]
    fn describe_renders_integer_and_continuous_coordinates() {
        let space = SwitchingCurveFamily {
            max_intercept: 8,
            max_slope: 2.0,
        };
        assert_eq!(space.describe(&[3.0, 0.5]), "intercept=3, slope=0.5000");
    }
}
