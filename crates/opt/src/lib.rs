//! # eirs-opt — derivative-free policy optimization, certified against
//! the MDP.
//!
//! PRs 1–3 built substrates that *evaluate* a policy someone hands them
//! (QBD analysis, DES, MDP grid). This crate closes the loop the paper's
//! title promises — finding the **optimal** allocation — by searching the
//! shipped policy families:
//!
//! ```text
//!            ┌────────────────────────────────────────────────┐
//!            │              optimizer (optim)                 │
//!            │  golden / Nelder–Mead / pattern / cross-entropy│
//!            └───────┬────────────────────────────▲───────────┘
//!         candidates │ x ∈ ℝᵈ                     │ E[T]
//!            ┌───────▼───────┐            ┌───────┴───────────┐
//!            │  ParamSpace   │  policies  │    Objective      │
//!            │   (space)     ├───────────▶│   (objective)     │
//!            └───────────────┘            │ exact QBD chain or│
//!                                         │ CRN-paired DES    │
//!                                         └───────┬───────────┘
//!                                                 │ fan-out
//!                                         eirs_core::sweep workers
//! ```
//!
//! * [`space`] — each parameterized family (thresholds, switching
//!   curves, water-filling weights, reserves, tabular perturbations) as
//!   a bounded parameter vector with encode/decode to
//!   [`AllocationPolicy`].
//! * [`objective`] — pluggable scoring: exact mean response via the
//!   scenario engine's tractability dispatcher when the
//!   `(workload, policy)` pair is tractable, otherwise a
//!   common-random-numbers DES in which every candidate shares one seed
//!   set (variance-reduced comparisons, deterministic under a fixed
//!   seed).
//! * [`optim`] — derivative-free optimizers fanning candidate batches
//!   through the parallel sweep engine.
//! * [`certify`] — on Poisson×exp instances, the optimality gap against
//!   `eirs_mdp::solve_optimal`'s exact MDP optimum; elsewhere, the
//!   CRN-paired improvement over the best fixed EF/IF baseline.
//!
//! ## Quick start
//!
//! ```
//! use eirs_core::analysis::AnalyzeOptions;
//! use eirs_core::SystemParams;
//! use eirs_opt::objective::AnalyticObjective;
//! use eirs_opt::optim::{optimize, Budget, Method};
//! use eirs_opt::space::ThresholdFamily;
//!
//! // Small jobs are inelastic (µ_I ≥ µ_E): Theorem 5 says never defer
//! // them, so the best elastic-threshold policy is the IF-most one.
//! let params = SystemParams::with_equal_lambdas(2, 1.5, 1.0, 0.4).unwrap();
//! let opts = AnalyzeOptions { phase_cap: 24, ..AnalyzeOptions::default() };
//! let objective = AnalyticObjective::poisson_exp(params, opts);
//! let space = ThresholdFamily { max_threshold: 8 };
//! let report = optimize(&space, &objective, Method::Auto, &Budget::default()).unwrap();
//! assert_eq!(report.best_x[0], 8.0); // flat tail resolves toward IF
//! assert!(report.best_value > 0.0 && report.evaluations >= 8);
//! ```

pub mod certify;
pub mod objective;
pub mod optim;
pub mod reoptimize;
pub mod space;

pub use certify::{
    certify_against_mdp, improvement_over_baselines, BaselineReport, ImprovementCertificate,
    MdpCertificate,
};
pub use eirs_sim::policy::AllocationPolicy;
pub use objective::{objective_for, AnalyticObjective, DesBudget, DesObjective, Objective};
pub use optim::{
    optimize, optimize_refined, optimize_with_start, parse_method, Budget, Method, OptReport,
};
pub use reoptimize::{render_spec, reoptimize, ObservedLoad, ReoptimizeOutcome};
pub use space::{parse_family, registry, ParamBound, ParamSpace};
