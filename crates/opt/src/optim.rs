//! Derivative-free optimizers over a [`ParamSpace`].
//!
//! All four optimizers share one shape: propose a *batch* of candidate
//! points, score the whole batch through [`Objective::evaluate_batch`]
//! (which fans out over the `eirs_core::sweep` workers), move, repeat
//! until the evaluation budget runs out. Everything is deterministic
//! under a fixed [`Budget::seed`] — the only randomness (cross-entropy
//! sampling) flows through a seeded generator, and the evaluation
//! backends are bit-deterministic — so a search is reproducible across
//! runs and thread counts.
//!
//! * [`Method::Golden`] — 1-D families: exhaustive scan for integer
//!   coordinates (ties break toward the **larger** parameter, mirroring
//!   the MDP solver's tie-break toward Inelastic-First), golden-section
//!   for continuous ones.
//! * [`Method::NelderMead`] — downhill simplex for continuous
//!   multi-parameter families.
//! * [`Method::Coordinate`] — pattern search stepping every coordinate
//!   in both directions per round (one parallel batch of `2d`
//!   candidates), halving steps on failure; handles mixed
//!   integer/continuous coordinates.
//! * [`Method::CrossEntropy`] — population-based search for
//!   mixed/discrete and high-dimensional spaces (the tabular family).
//!
//! [`Method::Auto`] picks per the family's shape; [`optimize`] is the
//! single entry point.

use crate::objective::Objective;
use crate::space::ParamSpace;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Evaluation budget and determinism seed of one search.
#[derive(Debug, Clone, Copy)]
pub struct Budget {
    /// Target candidate evaluations (each costs one analytic solve or
    /// one CRN replication set). This bounds every *batch*: optimizers
    /// finish a started batch, so most methods spend at most one batch
    /// beyond it, while the iterated integer scan runs one budget-sized
    /// batch per narrowing round — `O(max_evals · log(range))` total on
    /// ranges much larger than the budget.
    pub max_evals: usize,
    /// Seed for any sampling the optimizer performs (cross-entropy).
    pub seed: u64,
}

impl Default for Budget {
    fn default() -> Self {
        Self {
            max_evals: 200,
            seed: 1,
        }
    }
}

/// Optimizer selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// Pick by family shape: 1-D → golden/scan, continuous multi-D →
    /// Nelder–Mead, mixed/discrete multi-D → cross-entropy.
    Auto,
    /// 1-D golden-section (continuous) or exhaustive scan (integer).
    Golden,
    /// Downhill simplex.
    NelderMead,
    /// Coordinate pattern search.
    Coordinate,
    /// Cross-entropy method.
    CrossEntropy,
}

/// Parses a CLI method spec: `auto`, `golden`, `nelder-mead`,
/// `coordinate`, `cross-entropy`.
pub fn parse_method(spec: &str) -> Result<Method, String> {
    match spec {
        "auto" => Ok(Method::Auto),
        "golden" => Ok(Method::Golden),
        "nelder-mead" => Ok(Method::NelderMead),
        "coordinate" => Ok(Method::Coordinate),
        "cross-entropy" => Ok(Method::CrossEntropy),
        other => Err(format!(
            "unknown method '{other}' (expected auto, golden, nelder-mead, coordinate, \
             cross-entropy)"
        )),
    }
}

/// Result of one search.
#[derive(Debug, Clone)]
pub struct OptReport {
    /// Family searched.
    pub family: String,
    /// Objective backend used (`analysis` or `des`).
    pub objective: String,
    /// Optimizer that ran (`golden-scan`, `nelder-mead`, …).
    pub optimizer: String,
    /// Best point found (clamped — directly decodable).
    pub best_x: Vec<f64>,
    /// `describe()` rendering of [`OptReport::best_x`].
    pub best_params: String,
    /// Display name of the decoded best policy.
    pub best_policy: String,
    /// Best objective value (mean response time `E[T]`).
    pub best_value: f64,
    /// Candidate evaluations spent.
    pub evaluations: usize,
    /// Best-so-far value after each evaluation batch.
    pub trace: Vec<f64>,
}

/// Runs `method` (resolving [`Method::Auto`] by the family's shape) on
/// `space` against `objective`, starting local methods from the family's
/// [`ParamSpace::initial`] point.
pub fn optimize(
    space: &dyn ParamSpace,
    objective: &dyn Objective,
    method: Method,
    budget: &Budget,
) -> Result<OptReport, String> {
    optimize_with_start(space, objective, method, budget, None)
}

/// Two-stage search: `method` on `budget`, then — when `refine > 0` — a
/// coordinate-pattern polish started from the incumbent on `refine`
/// extra evaluations. The merged report carries the better of the two
/// stages, the summed evaluation count, the concatenated trace, and a
/// `…+coordinate` optimizer tag. This is the shape the `policy_optimizer`
/// bench and the `eirs optimize --refine N` flag share: a global method
/// finds the right basin, the pattern search walks to its floor.
pub fn optimize_refined(
    space: &dyn ParamSpace,
    objective: &dyn Objective,
    method: Method,
    budget: &Budget,
    refine: usize,
) -> Result<OptReport, String> {
    let coarse = optimize(space, objective, method, budget)?;
    if refine == 0 {
        return Ok(coarse);
    }
    let polish = optimize_with_start(
        space,
        objective,
        Method::Coordinate,
        &Budget {
            max_evals: refine,
            seed: budget.seed,
        },
        Some(&coarse.best_x),
    )?;
    let evaluations = coarse.evaluations + polish.evaluations;
    let mut trace = coarse.trace.clone();
    trace.extend(polish.trace.iter().copied());
    let optimizer = format!("{}+coordinate", coarse.optimizer);
    let mut merged = if polish.best_value < coarse.best_value {
        polish
    } else {
        coarse
    };
    merged.evaluations = evaluations;
    merged.trace = trace;
    merged.optimizer = optimizer;
    Ok(merged)
}

/// [`optimize`] with an explicit starting point for the local methods
/// (Nelder–Mead simplex seed, pattern-search origin, cross-entropy mean).
/// This is the chaining primitive: run a global method first, then refine
/// its `best_x` with [`Method::Coordinate`] on a second budget.
pub fn optimize_with_start(
    space: &dyn ParamSpace,
    objective: &dyn Objective,
    method: Method,
    budget: &Budget,
    start: Option<&[f64]>,
) -> Result<OptReport, String> {
    let dim = space.dim();
    assert!(dim >= 1, "{}: empty parameter space", space.name());
    let method = match method {
        Method::Auto => {
            if dim == 1 {
                Method::Golden
            } else if space.all_continuous() && dim <= 8 {
                Method::NelderMead
            } else {
                Method::CrossEntropy
            }
        }
        m => m,
    };
    if method == Method::Golden && dim != 1 {
        return Err(format!(
            "golden-section needs a 1-D family; '{}' has {dim} parameters",
            space.name()
        ));
    }
    let mut search = Search::new(space, objective, start);
    match method {
        Method::Golden => {
            if space.bounds()[0].integer {
                search.integer_scan(budget)?;
            } else {
                search.golden_section(budget)?;
            }
        }
        Method::NelderMead => search.nelder_mead(budget)?,
        Method::Coordinate => search.coordinate(budget)?,
        Method::CrossEntropy => search.cross_entropy(budget)?,
        Method::Auto => unreachable!("resolved above"),
    }
    search.into_report(objective)
}

/// Relative tolerance under which two objective values count as tied.
const TIE_REL: f64 = 1e-11;

/// Shared search state: batch evaluation with clamping, best tracking,
/// and the budget/trace accounting every optimizer needs.
struct Search<'a> {
    space: &'a dyn ParamSpace,
    objective: &'a dyn Objective,
    optimizer: &'static str,
    start: Vec<f64>,
    evaluations: usize,
    trace: Vec<f64>,
    best_x: Option<Vec<f64>>,
    best_value: f64,
}

impl<'a> Search<'a> {
    fn new(space: &'a dyn ParamSpace, objective: &'a dyn Objective, start: Option<&[f64]>) -> Self {
        let start = space.clamp(start.unwrap_or(&space.initial()));
        Self {
            space,
            objective,
            optimizer: "",
            start,
            evaluations: 0,
            trace: Vec::new(),
            best_x: None,
            best_value: f64::INFINITY,
        }
    }

    /// Clamps, decodes, and scores one batch; updates the incumbent.
    /// Later candidates win ties (within [`TIE_REL`]), so an exhaustive
    /// scan ordered small→large parameters resolves flat tails toward the
    /// larger parameter.
    fn eval_batch(&mut self, xs: &[Vec<f64>]) -> Result<Vec<f64>, String> {
        // Telemetry is write-only and the search trajectory events are
        // derived *from* the decisions (never the other way around), so
        // enabling them cannot change which candidate wins.
        static C_EVALS: eirs_obs::LazyCounter = eirs_obs::LazyCounter::new("opt.evaluations");
        static C_ACCEPTED: eirs_obs::LazyCounter = eirs_obs::LazyCounter::new("opt.accepted");
        let telemetry = eirs_obs::enabled();
        let mut batch_span = eirs_obs::span("opt.eval_batch", "opt");
        batch_span.arg("optimizer", self.optimizer);
        batch_span.arg("batch", xs.len());
        let clamped: Vec<Vec<f64>> = xs.iter().map(|x| self.space.clamp(x)).collect();
        let policies: Vec<_> = clamped.iter().map(|x| self.space.decode(x)).collect();
        let scored = self.objective.evaluate_batch(&policies);
        self.evaluations += policies.len();
        C_EVALS.add(policies.len() as u64);
        let mut values = Vec::with_capacity(scored.len());
        for (x, v) in clamped.into_iter().zip(scored) {
            let v = v?;
            if !v.is_finite() {
                return Err(format!(
                    "objective returned non-finite value {v} at {}",
                    self.space.describe(&x)
                ));
            }
            let accepted = v <= self.best_value + TIE_REL * self.best_value.abs();
            if telemetry {
                let mut ev = eirs_obs::event("opt.candidate", "opt");
                ev.arg("candidate", self.space.describe(&x));
                ev.arg("score", v);
                ev.arg("accepted", accepted);
                if accepted {
                    C_ACCEPTED.inc();
                }
            }
            if accepted {
                self.best_value = v.min(self.best_value);
                self.best_x = Some(x);
            }
            values.push(v);
        }
        self.trace.push(self.best_value);
        Ok(values)
    }

    fn into_report(self, objective: &dyn Objective) -> Result<OptReport, String> {
        let best_x = self.best_x.ok_or("search evaluated no candidates")?;
        let policy = self.space.decode(&best_x);
        Ok(OptReport {
            family: self.space.name(),
            objective: objective.name(),
            optimizer: self.optimizer.into(),
            best_params: self.space.describe(&best_x),
            best_policy: policy.name(),
            best_x,
            best_value: self.best_value,
            evaluations: self.evaluations,
            trace: self.trace,
        })
    }

    /// Scan of a 1-D integer family: exhaustive when the range fits the
    /// budget, otherwise iterated coarse-to-fine — each round scans at
    /// most one budget's worth of evenly strided points, then narrows to
    /// `±stride` around the incumbent, so every batch is budget-bounded
    /// and the total is `O(budget · log(range))`. The small→large
    /// evaluation order plus the tie-break in [`Search::eval_batch`]
    /// resolves flat tails toward the larger parameter — the IF-most
    /// member in the threshold and reserve families.
    fn integer_scan(&mut self, budget: &Budget) -> Result<(), String> {
        self.optimizer = "golden-scan";
        let b = &self.space.bounds()[0];
        let (mut lo, mut hi) = (b.lo as i64, b.hi as i64);
        let per_round = budget.max_evals.max(2);
        let mut prev_stride = usize::MAX;
        loop {
            let count = (hi - lo + 1) as usize;
            // The stride must strictly decrease round over round: for
            // budgets of 2–4 the recurrence `ceil((2s+1)/per_round)` has
            // fixed points `s ≥ 2`, which would rescan the same window
            // forever.
            let stride = count
                .div_ceil(per_round)
                .min(prev_stride.saturating_sub(1))
                .max(1);
            let mut xs: Vec<Vec<f64>> = (lo..=hi).step_by(stride).map(|v| vec![v as f64]).collect();
            if xs.last().map(|x| x[0]) != Some(hi as f64) {
                xs.push(vec![hi as f64]);
            }
            self.eval_batch(&xs)?;
            if stride == 1 {
                return Ok(());
            }
            prev_stride = stride;
            // Narrow to the incumbent's bracket and rescan finer.
            let center = self.best_x.as_ref().expect("scanned")[0] as i64;
            lo = (center - stride as i64).max(b.lo as i64);
            hi = (center + stride as i64).min(b.hi as i64);
        }
    }

    /// Golden-section search on a 1-D continuous interval (unimodal
    /// objectives exact; multimodal ones get a good local minimum).
    fn golden_section(&mut self, budget: &Budget) -> Result<(), String> {
        self.optimizer = "golden-section";
        let b = &self.space.bounds()[0];
        let inv_phi = 0.618_033_988_749_894_9f64;
        let (mut lo, mut hi) = (b.lo, b.hi);
        let mut c = hi - inv_phi * (hi - lo);
        let mut d = lo + inv_phi * (hi - lo);
        let v = self.eval_batch(&[vec![c], vec![d]])?;
        let (mut fc, mut fd) = (v[0], v[1]);
        let tol = 1e-8 * (b.hi - b.lo);
        while hi - lo > tol && self.evaluations < budget.max_evals {
            if fc <= fd {
                hi = d;
                d = c;
                fd = fc;
                c = hi - inv_phi * (hi - lo);
                fc = self.eval_batch(&[vec![c]])?[0];
            } else {
                lo = c;
                c = d;
                fc = fd;
                d = lo + inv_phi * (hi - lo);
                fd = self.eval_batch(&[vec![d]])?[0];
            }
        }
        Ok(())
    }

    /// Standard downhill simplex (reflection α=1, expansion γ=2,
    /// contraction ρ=½, shrink σ=½) with clamping at evaluation time.
    fn nelder_mead(&mut self, budget: &Budget) -> Result<(), String> {
        self.optimizer = "nelder-mead";
        let bounds = self.space.bounds();
        let dim = bounds.len();
        // Initial simplex: the family's initial point plus one vertex per
        // coordinate, displaced by a quarter range (flipped if it would
        // leave the box).
        let x0 = self.start.clone();
        let mut simplex: Vec<Vec<f64>> = vec![x0.clone()];
        for (d, b) in bounds.iter().enumerate() {
            let mut x = x0.clone();
            let step = 0.25 * (b.hi - b.lo);
            x[d] = if x[d] + step <= b.hi {
                x[d] + step
            } else {
                x[d] - step
            };
            simplex.push(x);
        }
        let mut values = self.eval_batch(&simplex)?;

        while self.evaluations < budget.max_evals {
            // Order the simplex best→worst.
            let mut order: Vec<usize> = (0..simplex.len()).collect();
            order.sort_by(|&a, &b| values[a].partial_cmp(&values[b]).expect("finite"));
            simplex = order.iter().map(|&i| simplex[i].clone()).collect();
            values = order.iter().map(|&i| values[i]).collect();
            let spread = values[dim] - values[0];
            if spread <= 1e-12 * values[0].abs().max(1e-12) {
                break;
            }
            // Centroid of all but the worst vertex.
            let centroid: Vec<f64> = (0..dim)
                .map(|d| simplex[..dim].iter().map(|x| x[d]).sum::<f64>() / dim as f64)
                .collect();
            let worst = simplex[dim].clone();
            let blend = |t: f64| -> Vec<f64> {
                (0..dim)
                    .map(|d| centroid[d] + t * (centroid[d] - worst[d]))
                    .collect()
            };
            let reflected = blend(1.0);
            let fr = self.eval_batch(std::slice::from_ref(&reflected))?[0];
            if fr < values[0] {
                let expanded = blend(2.0);
                let fe = self.eval_batch(std::slice::from_ref(&expanded))?[0];
                if fe < fr {
                    simplex[dim] = expanded;
                    values[dim] = fe;
                } else {
                    simplex[dim] = reflected;
                    values[dim] = fr;
                }
            } else if fr < values[dim - 1] {
                simplex[dim] = reflected;
                values[dim] = fr;
            } else {
                let contracted = if fr < values[dim] {
                    blend(0.5)
                } else {
                    blend(-0.5)
                };
                let fk = self.eval_batch(std::slice::from_ref(&contracted))?[0];
                if fk < values[dim].min(fr) {
                    simplex[dim] = contracted;
                    values[dim] = fk;
                } else {
                    // Shrink everything toward the best vertex.
                    let best = simplex[0].clone();
                    let shrunk: Vec<Vec<f64>> = simplex[1..]
                        .iter()
                        .map(|x| (0..dim).map(|d| best[d] + 0.5 * (x[d] - best[d])).collect())
                        .collect();
                    let shrunk_values = self.eval_batch(&shrunk)?;
                    for (slot, (x, v)) in simplex[1..]
                        .iter_mut()
                        .zip(values[1..].iter_mut())
                        .zip(shrunk.into_iter().zip(shrunk_values))
                    {
                        *slot.0 = x;
                        *slot.1 = v;
                    }
                }
            }
        }
        Ok(())
    }

    /// Coordinate pattern search: each round proposes `±step` along every
    /// coordinate as **one parallel batch**, moves to the best improving
    /// candidate, and halves the steps when nothing improves. Integer
    /// coordinates floor their step at 1.
    fn coordinate(&mut self, budget: &Budget) -> Result<(), String> {
        self.optimizer = "coordinate-search";
        let bounds = self.space.bounds();
        let dim = bounds.len();
        let mut current = self.start.clone();
        let mut f_current = self.eval_batch(std::slice::from_ref(&current))?[0];
        let mut steps: Vec<f64> = bounds
            .iter()
            .map(|b| {
                let s = 0.25 * (b.hi - b.lo);
                if b.integer {
                    s.round().max(1.0)
                } else {
                    s
                }
            })
            .collect();
        while self.evaluations < budget.max_evals {
            // Propose ±step along every coordinate, dropping proposals
            // that clamp back onto the incumbent (steps off a box edge)
            // or onto each other — re-scoring a known point would burn a
            // full evaluation for nothing, notably on the DES objective.
            let mut candidates: Vec<Vec<f64>> = Vec::with_capacity(2 * dim);
            for d in 0..dim {
                for sign in [1.0, -1.0] {
                    let mut x = current.clone();
                    x[d] += sign * steps[d];
                    let x = self.space.clamp(&x);
                    if x != current && !candidates.contains(&x) {
                        candidates.push(x);
                    }
                }
            }
            if candidates.is_empty() {
                // Every proposal collapsed onto the incumbent; treat as a
                // failed round.
                if !halve_steps(&mut steps, &bounds) {
                    break;
                }
                continue;
            }
            let values = self.eval_batch(&candidates)?;
            let (best_idx, &best_val) = values
                .iter()
                .enumerate()
                .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
                .expect("non-empty batch");
            if best_val < f_current - TIE_REL * f_current.abs() {
                current = candidates[best_idx].clone();
                f_current = best_val;
                continue;
            }
            // No improvement: halve the steps, stop once all are minimal.
            if !halve_steps(&mut steps, &bounds) {
                break;
            }
        }
        Ok(())
    }

    /// Cross-entropy method: sample a Gaussian population (clamped into
    /// the box, integers rounded), refit mean/deviation to the elite
    /// quarter, repeat. Handles mixed and high-dimensional spaces where
    /// simplex geometry breaks down.
    fn cross_entropy(&mut self, budget: &Budget) -> Result<(), String> {
        self.optimizer = "cross-entropy";
        let bounds = self.space.bounds();
        let dim = bounds.len();
        let population = (4 * dim).clamp(8, budget.max_evals.max(8));
        let elite = (population / 4).max(2);
        let mut rng = StdRng::seed_from_u64(budget.seed);
        let mut mean = self.start.clone();
        let mut dev: Vec<f64> = bounds.iter().map(|b| 0.5 * (b.hi - b.lo)).collect();
        // Smoothed updates keep early generations from collapsing onto a
        // lucky sample; the deviation floor decays so late generations
        // can actually converge.
        let smoothing = 0.7;
        let mut floor: Vec<f64> = bounds.iter().map(|b| 0.05 * (b.hi - b.lo)).collect();
        while self.evaluations + population <= budget.max_evals.max(population) {
            let xs: Vec<Vec<f64>> = (0..population)
                .map(|_| {
                    (0..dim)
                        .map(|d| mean[d] + dev[d] * gaussian(&mut rng))
                        .collect()
                })
                .collect();
            let values = self.eval_batch(&xs)?;
            // Elite pool: this generation plus the incumbent — whose value
            // the search already holds (both objectives are deterministic),
            // so it rides along without being re-scored. It anchors the
            // refit, and the global best never regresses.
            let mut pool: Vec<(Vec<f64>, f64)> =
                xs.iter().map(|x| self.space.clamp(x)).zip(values).collect();
            if let Some(best) = &self.best_x {
                pool.push((best.clone(), self.best_value));
            }
            pool.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"));
            let elites = &pool[..elite];
            for d in 0..dim {
                let m: f64 = elites.iter().map(|(x, _)| x[d]).sum::<f64>() / elite as f64;
                let var: f64 =
                    elites.iter().map(|(x, _)| (x[d] - m).powi(2)).sum::<f64>() / elite as f64;
                mean[d] = smoothing * m + (1.0 - smoothing) * mean[d];
                dev[d] = (smoothing * var.sqrt() + (1.0 - smoothing) * dev[d]).max(floor[d]);
                floor[d] *= 0.8;
            }
        }
        Ok(())
    }
}

/// Halves every pattern-search step that is still above its floor
/// (integer steps never drop below 1); returns `false` when all steps are
/// already minimal — the stopping condition.
fn halve_steps(steps: &mut [f64], bounds: &[crate::space::ParamBound]) -> bool {
    let mut any_left = false;
    for (s, b) in steps.iter_mut().zip(bounds) {
        if b.integer {
            if *s > 1.0 {
                *s = (*s / 2.0).round().max(1.0);
                any_left = true;
            }
        } else if *s > 1e-6 * (b.hi - b.lo) {
            *s /= 2.0;
            any_left = true;
        }
    }
    any_left
}

/// One standard-normal draw via Box–Muller on the seeded generator.
fn gaussian(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
    let u2: f64 = rng.random();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::{ParamBound, ParamSpace};
    use eirs_sim::policy::{AllocationPolicy, ClassAllocation};
    use std::sync::Mutex;

    /// A synthetic space whose "policies" carry their own coordinates, so
    /// closed-form objectives can score them without any queueing.
    struct Synthetic {
        bounds: Vec<ParamBound>,
        initial: Vec<f64>,
    }

    struct Carrier(Vec<f64>);
    impl AllocationPolicy for Carrier {
        fn allocate(&self, _i: usize, _j: usize, _k: u32) -> ClassAllocation {
            ClassAllocation::IDLE
        }
        fn name(&self) -> String {
            format!("carrier{:?}", self.0)
        }
    }

    impl ParamSpace for Synthetic {
        fn name(&self) -> String {
            "synthetic".into()
        }
        fn bounds(&self) -> Vec<ParamBound> {
            self.bounds.clone()
        }
        fn initial(&self) -> Vec<f64> {
            self.initial.clone()
        }
        fn decode(&self, x: &[f64]) -> Box<dyn AllocationPolicy> {
            Box::new(Carrier(x.to_vec()))
        }
    }

    /// Objective computing `f` on the carried coordinates; counts calls.
    struct Closed<F: Fn(&[f64]) -> f64 + Sync> {
        f: F,
        calls: Mutex<usize>,
    }

    impl<F: Fn(&[f64]) -> f64 + Sync> Closed<F> {
        fn new(f: F) -> Self {
            Self {
                f,
                calls: Mutex::new(0),
            }
        }
    }

    impl<F: Fn(&[f64]) -> f64 + Sync> Objective for Closed<F> {
        fn name(&self) -> String {
            "closed-form".into()
        }
        fn evaluate_batch(
            &self,
            policies: &[Box<dyn AllocationPolicy>],
        ) -> Vec<Result<f64, String>> {
            *self.calls.lock().unwrap() += policies.len();
            policies
                .iter()
                .map(|p| {
                    let name = p.name();
                    let coords: Vec<f64> = name
                        .trim_start_matches("carrier[")
                        .trim_end_matches(']')
                        .split(", ")
                        .map(|s| s.parse().unwrap())
                        .collect();
                    Ok((self.f)(&coords))
                })
                .collect()
        }
    }

    fn continuous(dims: &[(f64, f64)], initial: &[f64]) -> Synthetic {
        Synthetic {
            bounds: dims
                .iter()
                .enumerate()
                .map(|(d, &(lo, hi))| ParamBound::continuous(&format!("x{d}"), lo, hi))
                .collect(),
            initial: initial.to_vec(),
        }
    }

    #[test]
    fn golden_section_finds_a_quadratic_minimum() {
        let space = continuous(&[(0.0, 10.0)], &[9.0]);
        let obj = Closed::new(|x: &[f64]| (x[0] - 3.2).powi(2) + 1.0);
        let r = optimize(&space, &obj, Method::Golden, &Budget::default()).unwrap();
        assert!((r.best_x[0] - 3.2).abs() < 1e-4, "{:?}", r.best_x);
        assert!((r.best_value - 1.0).abs() < 1e-8);
        assert_eq!(r.optimizer, "golden-section");
    }

    #[test]
    fn integer_scan_breaks_ties_toward_larger_parameters() {
        let space = Synthetic {
            bounds: vec![ParamBound::integer("t", 1, 12)],
            initial: vec![1.0],
        };
        // Flat beyond 4: the scan must settle on the largest tied value.
        let obj = Closed::new(|x: &[f64]| if x[0] < 4.0 { 10.0 - x[0] } else { 6.0 });
        let r = optimize(&space, &obj, Method::Golden, &Budget::default()).unwrap();
        assert_eq!(r.best_x[0], 12.0, "{r:?}");
        assert_eq!(r.optimizer, "golden-scan");
    }

    #[test]
    fn integer_scan_respects_small_budgets_with_refinement() {
        let space = Synthetic {
            bounds: vec![ParamBound::integer("t", 0, 63)],
            initial: vec![0.0],
        };
        let obj = Closed::new(|x: &[f64]| (x[0] - 37.0).powi(2));
        let budget = Budget {
            max_evals: 16,
            seed: 1,
        };
        let r = optimize(&space, &obj, Method::Golden, &budget).unwrap();
        assert_eq!(r.best_x[0], 37.0, "{r:?}");
        assert!(r.evaluations <= 32, "{}", r.evaluations);
    }

    #[test]
    fn integer_scan_terminates_and_converges_on_tiny_budgets() {
        // Budgets of 2–4 hit the stride recurrence's fixed points; the
        // strict-decrease guard must still terminate and find the optimum.
        let space = Synthetic {
            bounds: vec![ParamBound::integer("t", 1, 16)],
            initial: vec![1.0],
        };
        let obj = Closed::new(|x: &[f64]| (x[0] - 11.0).powi(2));
        for max_evals in [2, 3, 4] {
            let r = optimize(&space, &obj, Method::Golden, &Budget { max_evals, seed: 1 }).unwrap();
            assert_eq!(r.best_x[0], 11.0, "budget {max_evals}: {r:?}");
            assert!(r.evaluations < 100, "budget {max_evals}: {}", r.evaluations);
        }
    }

    #[test]
    fn integer_scan_stays_budget_bounded_on_huge_ranges() {
        // Range ≫ budget: each round is budget-bounded and the rounds
        // narrow geometrically, so the total stays O(budget · log range)
        // instead of exploding with the range.
        let space = Synthetic {
            bounds: vec![ParamBound::integer("t", 0, 100_000)],
            initial: vec![0.0],
        };
        let obj = Closed::new(|x: &[f64]| (x[0] - 73_123.0).powi(2));
        let budget = Budget {
            max_evals: 12,
            seed: 1,
        };
        let r = optimize(&space, &obj, Method::Golden, &budget).unwrap();
        assert_eq!(r.best_x[0], 73_123.0, "{r:?}");
        assert!(r.evaluations < 12 * 8, "{} evaluations", r.evaluations);
    }

    #[test]
    fn optimize_refined_chains_a_polish_and_merges_accounting() {
        let space = continuous(&[(-2.0, 2.0), (-2.0, 2.0)], &[1.5, -1.5]);
        let bowl = |x: &[f64]| (x[0] - 0.3).powi(2) + (x[1] + 0.7).powi(2);
        let budget = Budget {
            max_evals: 24,
            seed: 3,
        };
        let coarse = optimize(&space, &Closed::new(bowl), Method::CrossEntropy, &budget).unwrap();
        let refined = optimize_refined(
            &space,
            &Closed::new(bowl),
            Method::CrossEntropy,
            &budget,
            60,
        )
        .unwrap();
        assert!(refined.best_value <= coarse.best_value + 1e-15);
        assert!(refined.evaluations > coarse.evaluations);
        assert!(refined.trace.len() > coarse.trace.len());
        assert_eq!(refined.optimizer, "cross-entropy+coordinate");
        // Zero refine budget is the plain search.
        let plain =
            optimize_refined(&space, &Closed::new(bowl), Method::CrossEntropy, &budget, 0).unwrap();
        assert_eq!(plain.best_value.to_bits(), coarse.best_value.to_bits());
        assert_eq!(plain.optimizer, "cross-entropy");
    }

    #[test]
    fn nelder_mead_descends_a_rosenbrock_valley() {
        let space = continuous(&[(-2.0, 2.0), (-1.0, 3.0)], &[-1.2, 1.0]);
        let obj =
            Closed::new(|x: &[f64]| 100.0 * (x[1] - x[0] * x[0]).powi(2) + (1.0 - x[0]).powi(2));
        let budget = Budget {
            max_evals: 400,
            seed: 1,
        };
        let r = optimize(&space, &obj, Method::NelderMead, &budget).unwrap();
        assert!(r.best_value < 1e-3, "{r:?}");
        assert!((r.best_x[0] - 1.0).abs() < 0.1 && (r.best_x[1] - 1.0).abs() < 0.1);
    }

    #[test]
    fn coordinate_search_handles_mixed_integer_dimensions() {
        let space = Synthetic {
            bounds: vec![
                ParamBound::integer("n", 0, 20),
                ParamBound::continuous("w", 0.0, 4.0),
            ],
            initial: vec![10.0, 2.0],
        };
        let obj = Closed::new(|x: &[f64]| (x[0] - 7.0).powi(2) + 3.0 * (x[1] - 1.25).powi(2));
        let r = optimize(&space, &obj, Method::Coordinate, &Budget::default()).unwrap();
        assert_eq!(r.best_x[0], 7.0, "{r:?}");
        assert!((r.best_x[1] - 1.25).abs() < 1e-3, "{r:?}");
    }

    #[test]
    fn cross_entropy_solves_a_separable_bowl_and_is_deterministic() {
        let space = continuous(&[(-4.0, 4.0), (-4.0, 4.0), (-4.0, 4.0)], &[3.0, -3.0, 3.0]);
        let target = [1.5, -0.5, 2.0];
        let obj = Closed::new(move |x: &[f64]| {
            x.iter()
                .zip(&target)
                .map(|(a, b)| (a - b).powi(2))
                .sum::<f64>()
        });
        let budget = Budget {
            max_evals: 600,
            seed: 9,
        };
        let r1 = optimize(&space, &obj, Method::CrossEntropy, &budget).unwrap();
        let r2 = optimize(&space, &obj, Method::CrossEntropy, &budget).unwrap();
        assert!(r1.best_value < 0.05, "{r1:?}");
        assert_eq!(r1.best_x, r2.best_x, "same seed must reproduce");
        // Different seed explores differently but still converges.
        let r3 = optimize(
            &space,
            &obj,
            Method::CrossEntropy,
            &Budget {
                max_evals: 600,
                seed: 10,
            },
        )
        .unwrap();
        assert!(r3.best_value < 0.05, "{r3:?}");
    }

    #[test]
    fn auto_dispatch_matches_the_family_shape() {
        let obj = Closed::new(|x: &[f64]| x.iter().map(|v| v * v).sum());
        let d1 = continuous(&[(0.0, 1.0)], &[0.5]);
        let r = optimize(&d1, &obj, Method::Auto, &Budget::default()).unwrap();
        assert_eq!(r.optimizer, "golden-section");
        let d2 = continuous(&[(0.0, 1.0), (0.0, 1.0)], &[0.5, 0.5]);
        let r = optimize(&d2, &obj, Method::Auto, &Budget::default()).unwrap();
        assert_eq!(r.optimizer, "nelder-mead");
        let mixed = Synthetic {
            bounds: vec![
                ParamBound::integer("n", 0, 4),
                ParamBound::continuous("w", 0.0, 1.0),
            ],
            initial: vec![2.0, 0.5],
        };
        let r = optimize(&mixed, &obj, Method::Auto, &Budget::default()).unwrap();
        assert_eq!(r.optimizer, "cross-entropy");
    }

    #[test]
    fn budget_caps_evaluations_and_trace_is_monotone() {
        let space = continuous(&[(-2.0, 2.0), (-2.0, 2.0)], &[1.5, -1.5]);
        let obj = Closed::new(|x: &[f64]| x[0].powi(2) + x[1].powi(2));
        let budget = Budget {
            max_evals: 30,
            seed: 1,
        };
        let r = optimize(&space, &obj, Method::NelderMead, &budget).unwrap();
        assert!(r.evaluations <= 30 + 3, "{}", r.evaluations);
        for w in r.trace.windows(2) {
            assert!(w[1] <= w[0] + 1e-15, "trace must be non-increasing");
        }
        assert_eq!(*obj.calls.lock().unwrap(), r.evaluations);
    }

    #[test]
    fn golden_rejects_multidimensional_spaces() {
        let space = continuous(&[(0.0, 1.0), (0.0, 1.0)], &[0.5, 0.5]);
        let obj = Closed::new(|x: &[f64]| x[0] + x[1]);
        assert!(optimize(&space, &obj, Method::Golden, &Budget::default()).is_err());
    }
}
