//! Job-level discrete-event simulation of the multi-class model.
//!
//! Same exact event-driven core as the two-class simulator in `eirs-sim`:
//! allocations are constant between events, so completions are
//! `remaining / rate`. Within a class, service is FCFS with per-job caps:
//! the class's server total is handed out job by job, each receiving up to
//! `c_m` servers.

use crate::policy::{assert_feasible, MultiPolicy};
use crate::spec::MultiSystem;
use eirs_sim::quantile::TailStats;
use eirs_sim::stats::{TimeAverage, Welford};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;

/// Configuration of one multi-class run.
#[derive(Debug, Clone, Copy)]
pub struct MultiSimConfig {
    /// RNG seed.
    pub seed: u64,
    /// Departures discarded as warm-up.
    pub warmup_departures: u64,
    /// Measured departures after warm-up.
    pub departures: u64,
}

/// Per-class simulation results.
#[derive(Debug, Clone)]
pub struct ClassReport {
    /// Class name (copied from the spec).
    pub name: String,
    /// Measured departures.
    pub completed: u64,
    /// Mean response time.
    pub mean_response: f64,
    /// `(P50, P95, P99)` response-time estimates.
    pub tail_response: (f64, f64, f64),
    /// Time-average number in system.
    pub mean_in_system: f64,
}

/// Results of one multi-class run.
#[derive(Debug, Clone)]
pub struct MultiReport {
    /// Per-class metrics, in spec order.
    pub per_class: Vec<ClassReport>,
    /// Mean response time across all measured jobs.
    pub mean_response: f64,
    /// Time-average fraction of busy servers.
    pub utilization: f64,
    /// Measured time span.
    pub measured_time: f64,
}

struct MJob {
    class: usize,
    remaining: f64,
    size: f64,
    arrival: f64,
}

impl MJob {
    fn is_done(&self) -> bool {
        self.remaining <= 1e-12 * self.size.max(1.0)
    }
}

/// Runs the multi-class DES under `policy`.
pub fn simulate_multiclass(
    system: &MultiSystem,
    policy: &dyn MultiPolicy,
    cfg: MultiSimConfig,
) -> MultiReport {
    let m = system.num_classes();
    let kf = system.k as f64;
    let name = policy.name();
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut queues: Vec<VecDeque<MJob>> = (0..m).map(|_| VecDeque::new()).collect();
    let mut next_arrival: Vec<f64> = system
        .classes
        .iter()
        .map(|c| sample_exp(&mut rng, c.lambda))
        .collect();
    let mut time = 0.0f64;
    let mut total_departures = 0u64;
    let mut measuring = cfg.warmup_departures == 0;
    let mut measured = 0u64;

    let mut resp: Vec<Welford> = (0..m).map(|_| Welford::new()).collect();
    let mut tails: Vec<TailStats> = (0..m).map(|_| TailStats::new()).collect();
    let mut resp_all = Welford::new();
    let mut in_system: Vec<TimeAverage> = (0..m).map(|_| TimeAverage::new()).collect();
    let mut busy = TimeAverage::new();
    let mut counts = vec![0usize; m];
    let mut completed = vec![0u64; m];

    while measured < cfg.departures {
        for (c, q) in counts.iter_mut().zip(&queues) {
            *c = q.len();
        }
        let alloc = policy.allocate(&counts, system);
        assert_feasible(&alloc, &counts, system, &name);

        // Earliest completion across all classes, FCFS-with-caps inside.
        let mut dt_completion = f64::INFINITY;
        for (class_idx, q) in queues.iter().enumerate() {
            let mut left = alloc[class_idx];
            let cap = system.classes[class_idx].cap as f64;
            for job in q {
                if left <= 1e-15 {
                    break;
                }
                let rate = cap.min(left);
                left -= rate;
                if rate > 0.0 {
                    dt_completion = dt_completion.min(job.remaining / rate);
                }
            }
        }
        let (arr_class, dt_arrival) = next_arrival
            .iter()
            .enumerate()
            .map(|(idx, &t)| (idx, t - time))
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite times"))
            .expect("at least one class");
        let dt = dt_completion.min(dt_arrival.max(0.0));
        assert!(
            dt.is_finite(),
            "policy {name} makes no progress in state {counts:?}"
        );

        if measuring && dt > 0.0 {
            let total_alloc: f64 = alloc.iter().sum();
            for (acc, &c) in in_system.iter_mut().zip(&counts) {
                acc.add(c as f64, dt);
            }
            busy.add(total_alloc / kf, dt);
        }

        // Advance work.
        if dt > 0.0 {
            for (class_idx, q) in queues.iter_mut().enumerate() {
                let mut left = alloc[class_idx];
                let cap = system.classes[class_idx].cap as f64;
                for job in q.iter_mut() {
                    if left <= 1e-15 {
                        break;
                    }
                    let rate = cap.min(left);
                    left -= rate;
                    if rate > 0.0 {
                        job.remaining = (job.remaining - rate * dt).max(0.0);
                    }
                }
            }
            time += dt;
        }

        // Departures.
        for (class_idx, q) in queues.iter_mut().enumerate() {
            let mut idx = 0;
            while idx < q.len() {
                if q[idx].is_done() {
                    let job = q.remove(idx).expect("index in range");
                    total_departures += 1;
                    if !measuring && total_departures >= cfg.warmup_departures {
                        measuring = true;
                    } else if measuring {
                        let t = time - job.arrival;
                        resp[class_idx].push(t);
                        tails[class_idx].push(t);
                        resp_all.push(t);
                        completed[class_idx] += 1;
                        measured += 1;
                    }
                } else {
                    idx += 1;
                }
            }
        }

        // Arrival, when this event is one.
        if dt_arrival.max(0.0) <= dt_completion {
            let class = &system.classes[arr_class];
            time = time.max(next_arrival[arr_class]);
            let size = class.size.sample(&mut rng);
            queues[arr_class].push_back(MJob {
                class: arr_class,
                remaining: size,
                size,
                arrival: time,
            });
            debug_assert_eq!(
                queues[arr_class].back().expect("just pushed").class,
                arr_class
            );
            next_arrival[arr_class] = time + sample_exp(&mut rng, class.lambda);
        }
    }

    MultiReport {
        per_class: (0..m)
            .map(|idx| ClassReport {
                name: system.classes[idx].name.clone(),
                completed: completed[idx],
                mean_response: if resp[idx].count() > 0 {
                    resp[idx].mean()
                } else {
                    f64::NAN
                },
                tail_response: tails[idx].estimates(),
                mean_in_system: in_system[idx].average(),
            })
            .collect(),
        mean_response: resp_all.mean(),
        utilization: busy.average(),
        measured_time: in_system[0].elapsed(),
    }
}

fn sample_exp(rng: &mut StdRng, rate: f64) -> f64 {
    if rate == 0.0 {
        f64::INFINITY
    } else {
        -(1.0 - rng.random::<f64>()).ln() / rate
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{least_flexible_first, most_flexible_first, WaterFilling};
    use crate::spec::{ClassSpec, MultiSystem};

    fn cfg(seed: u64) -> MultiSimConfig {
        MultiSimConfig {
            seed,
            warmup_departures: 20_000,
            departures: 200_000,
        }
    }

    #[test]
    fn single_inelastic_class_is_mmk() {
        let s = MultiSystem::new(4, vec![ClassSpec::exponential("only", 3.0, 1.0, 1)]);
        let p = least_flexible_first(&s);
        let r = simulate_multiclass(&s, &p, cfg(1));
        let want = eirs_queueing::MMk::new(3.0, 1.0, 4).mean_response_time();
        let got = r.per_class[0].mean_response;
        assert!((got - want).abs() / want < 0.03, "{got} vs {want}");
    }

    #[test]
    fn single_fully_elastic_class_is_mm1_at_rate_k_mu() {
        let s = MultiSystem::new(4, vec![ClassSpec::exponential("fluid", 2.0, 1.0, 4)]);
        let p = least_flexible_first(&s);
        let r = simulate_multiclass(&s, &p, cfg(2));
        let want = eirs_queueing::MM1::new(2.0, 4.0).mean_response_time();
        let got = r.per_class[0].mean_response;
        assert!((got - want).abs() / want < 0.03, "{got} vs {want}");
    }

    #[test]
    fn two_class_reduction_matches_the_paper_simulator() {
        // Same model through eirs-sim's two-class DES and this engine.
        let (k, li, le, mi, me) = (4u32, 1.2, 0.9, 1.0, 0.7);
        let s = MultiSystem::two_class(k, li, le, mi, me);
        let p = least_flexible_first(&s);
        let r_multi = simulate_multiclass(&s, &p, cfg(3));
        let r_two = eirs_sim::des::run_markovian(
            &eirs_sim::policy::InelasticFirst,
            k,
            li,
            le,
            mi,
            me,
            4,
            20_000,
            200_000,
        );
        let rel = (r_multi.mean_response - r_two.mean_response).abs() / r_two.mean_response;
        assert!(
            rel < 0.05,
            "multi {} vs two-class {}",
            r_multi.mean_response,
            r_two.mean_response
        );
    }

    #[test]
    fn bounded_elasticity_caps_the_speedup() {
        // One job class with cap 2 on k=8: a lone job of size 2 takes 1s,
        // never less, no matter how idle the cluster is. Use a drain-style
        // check through the steady-state engine: mean response of a nearly
        // idle system approaches E[S]/cap.
        let s = MultiSystem::new(8, vec![ClassSpec::exponential("semi", 0.01, 0.5, 2)]);
        let p = least_flexible_first(&s);
        let r = simulate_multiclass(
            &s,
            &p,
            MultiSimConfig {
                seed: 5,
                warmup_departures: 100,
                departures: 20_000,
            },
        );
        // Mean size 2, cap 2 → service time 1 at negligible load.
        let got = r.per_class[0].mean_response;
        assert!((got - 1.0).abs() < 0.05, "{got}");
    }

    #[test]
    fn least_flexible_first_beats_most_flexible_when_rigid_jobs_are_small() {
        // Theorem 5's message, generalized: small rigid jobs first.
        let s = MultiSystem::new(
            8,
            vec![
                ClassSpec::exponential("rigid-small", 2.0, 2.0, 1),
                ClassSpec::exponential("semi", 1.0, 1.0, 4),
                ClassSpec::exponential("fluid-big", 0.5, 0.25, 8),
            ],
        );
        assert!(s.is_stable());
        let r_lff = simulate_multiclass(&s, &least_flexible_first(&s), cfg(6));
        let r_mff = simulate_multiclass(&s, &most_flexible_first(&s), cfg(6));
        assert!(
            r_lff.mean_response < r_mff.mean_response,
            "LFF {} vs MFF {}",
            r_lff.mean_response,
            r_mff.mean_response
        );
    }

    #[test]
    fn water_filling_runs_and_reports_consistently() {
        let s = MultiSystem::new(
            4,
            vec![
                ClassSpec::exponential("a", 1.0, 1.0, 1),
                ClassSpec::exponential("b", 0.5, 0.5, 4),
            ],
        );
        let r = simulate_multiclass(&s, &WaterFilling, cfg(7));
        // Little's law, internally: E[N_m] ≈ λ_m E[T_m].
        for (class, report) in s.classes.iter().zip(&r.per_class) {
            let expect = class.lambda * report.mean_response;
            assert!(
                (report.mean_in_system - expect).abs() / expect < 0.05,
                "{}: N {} vs λT {expect}",
                class.name,
                report.mean_in_system
            );
        }
        assert!(r.utilization > 0.0 && r.utilization <= 1.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let s = MultiSystem::two_class(2, 0.5, 0.5, 1.0, 1.0);
        let p = least_flexible_first(&s);
        let small = MultiSimConfig {
            seed: 9,
            warmup_departures: 100,
            departures: 5_000,
        };
        let a = simulate_multiclass(&s, &p, small);
        let b = simulate_multiclass(&s, &p, small);
        assert_eq!(a.mean_response, b.mean_response);
    }
}
