//! System description for the multi-class bounded-elasticity model.

use eirs_queueing::distributions::SizeDistribution;
use eirs_queueing::Exponential;

/// One job class: arrival rate, size law, and parallelizability cap.
pub struct ClassSpec {
    /// Human-readable class name for reports.
    pub name: String,
    /// Poisson arrival rate `λ_m ≥ 0`.
    pub lambda: f64,
    /// Job-size distribution (mean `E[S_m]`).
    pub size: Box<dyn SizeDistribution>,
    /// Parallelizability cap `c_m ≥ 1`: a job runs on at most `c_m` servers
    /// with linear speedup.
    pub cap: u32,
}

impl ClassSpec {
    /// A class with exponential sizes — the Markovian special case used by
    /// the analysis module.
    pub fn exponential(name: impl Into<String>, lambda: f64, mu: f64, cap: u32) -> Self {
        Self {
            name: name.into(),
            lambda,
            size: Box::new(Exponential::new(mu)),
            cap,
        }
    }

    /// Mean size `E[S_m]`.
    pub fn mean_size(&self) -> f64 {
        self.size.mean()
    }
}

impl std::fmt::Debug for ClassSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "ClassSpec({}: λ={}, E[S]={:.3}, cap={})",
            self.name,
            self.lambda,
            self.mean_size(),
            self.cap
        )
    }
}

/// A `k`-server system shared by several job classes.
#[derive(Debug)]
pub struct MultiSystem {
    /// Number of servers.
    pub k: u32,
    /// The job classes.
    pub classes: Vec<ClassSpec>,
}

impl MultiSystem {
    /// Validated constructor: `k ≥ 1`, at least one class, positive rates
    /// where required, caps clamped into `[1, k]` must be respected by the
    /// caller (`cap ≤ k` is enforced here).
    pub fn new(k: u32, classes: Vec<ClassSpec>) -> Self {
        assert!(k >= 1, "need at least one server");
        assert!(!classes.is_empty(), "need at least one class");
        for c in &classes {
            assert!(c.lambda >= 0.0 && c.lambda.is_finite(), "{}: bad λ", c.name);
            assert!(c.mean_size() > 0.0, "{}: bad mean size", c.name);
            assert!(
                c.cap >= 1 && c.cap <= k,
                "{}: cap must be in [1, k]",
                c.name
            );
        }
        Self { k, classes }
    }

    /// Number of classes `M`.
    pub fn num_classes(&self) -> usize {
        self.classes.len()
    }

    /// System load `ρ = Σ_m λ_m E[S_m] / k` (generalizes paper Eq. (1)).
    pub fn load(&self) -> f64 {
        self.classes
            .iter()
            .map(|c| c.lambda * c.mean_size())
            .sum::<f64>()
            / self.k as f64
    }

    /// `true` when `ρ < 1`.
    pub fn is_stable(&self) -> bool {
        self.load() < 1.0
    }

    /// Total arrival rate `Σ λ_m`.
    pub fn total_lambda(&self) -> f64 {
        self.classes.iter().map(|c| c.lambda).sum()
    }

    /// The paper's two-class system as a multi-class instance
    /// (class 0 = inelastic with cap 1, class 1 = elastic with cap `k`).
    pub fn two_class(k: u32, lambda_i: f64, lambda_e: f64, mu_i: f64, mu_e: f64) -> Self {
        Self::new(
            k,
            vec![
                ClassSpec::exponential("inelastic", lambda_i, mu_i, 1),
                ClassSpec::exponential("elastic", lambda_e, mu_e, k),
            ],
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_generalizes_the_two_class_formula() {
        let s = MultiSystem::two_class(4, 1.0, 1.0, 2.0, 1.0);
        // ρ = (λ_I/µ_I + λ_E/µ_E)/k = (0.5 + 1.0)/4.
        assert!((s.load() - 1.5 / 4.0).abs() < 1e-12);
        assert!(s.is_stable());
    }

    #[test]
    fn three_class_load() {
        let s = MultiSystem::new(
            8,
            vec![
                ClassSpec::exponential("a", 1.0, 1.0, 1),
                ClassSpec::exponential("b", 1.0, 0.5, 4),
                ClassSpec::exponential("c", 0.5, 0.25, 8),
            ],
        );
        assert!((s.load() - (1.0 + 2.0 + 2.0) / 8.0).abs() < 1e-12);
        assert_eq!(s.num_classes(), 3);
        assert!((s.total_lambda() - 2.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "cap must be in [1, k]")]
    fn rejects_cap_above_k() {
        MultiSystem::new(2, vec![ClassSpec::exponential("x", 1.0, 1.0, 4)]);
    }
}
