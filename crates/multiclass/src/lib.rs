//! Multi-class jobs with **bounded elasticity** — the generalization the
//! paper proposes in its conclusion (Section 6):
//!
//! > "one can consider a model where the elastic jobs are not fully elastic
//! > as in this paper, but are elastic up to a certain number of servers.
//! > More generally, we can have more than two classes of jobs with
//! > different levels of parallelizability and different job size
//! > distributions."
//!
//! This crate implements exactly that model: `M` job classes, each with a
//! Poisson arrival rate, a size distribution, and a *parallelizability cap*
//! `c_m ∈ {1, …, k}` — a job of class `m` runs on at most `c_m` servers with
//! linear speedup up to the cap. `c_m = 1` recovers the paper's inelastic
//! class; `c_m = k` recovers the fully elastic class, so the two-class model
//! is the special case `M = 2`, `c = (1, k)` (verified against `eirs-core`
//! in the tests).
//!
//! Provided tools:
//!
//! * [`spec`] — system description and load accounting;
//! * [`policy`] — allocation policies over class counts: priority orders
//!   (including **Least-Flexible-First**, the natural generalization of
//!   Inelastic-First, and its opposite), and a water-filling fair share;
//! * [`des`] — a job-level discrete-event simulator for the general model;
//! * [`analysis`] — exact policy evaluation on the truncated CTMC
//!   (exponential sizes), the numerical counterpart of the paper's
//!   open multi-class analysis problem.

pub mod analysis;
pub mod des;
pub mod policy;
pub mod spec;

pub use analysis::{evaluate_multiclass, MulticlassAnalysis};
pub use des::{simulate_multiclass, MultiReport, MultiSimConfig};
pub use policy::{
    check_feasible, least_flexible_first, most_flexible_first, FeasibilityError, MultiPolicy,
    PriorityOrder, WaterFilling,
};
pub use spec::{ClassSpec, MultiSystem};
