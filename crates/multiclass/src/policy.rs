//! Allocation policies over class counts.
//!
//! With `M` classes the state is the count vector `n = (n_1, …, n_M)`; a
//! stationary policy maps `n` to per-class server totals `π_m(n)` with
//!
//! ```text
//! π_m(n) ≤ min(n_m · c_m, k),       Σ_m π_m(n) ≤ k.
//! ```
//!
//! (A class with `n_m` jobs of cap `c_m` can absorb at most `n_m·c_m`
//! servers.) The policies here generalize the paper's:
//!
//! * [`PriorityOrder`] — strict preemptive priority by a fixed class order.
//!   Ordering by ascending cap generalizes Inelastic-First ("least flexible
//!   first"); descending generalizes Elastic-First.
//! * [`WaterFilling`] — the fair-share baseline: every job gets an equal
//!   share, except that jobs capped below the fair share release their
//!   surplus to the rest (classic water-filling).

use crate::spec::MultiSystem;

/// A stationary multi-class allocation policy.
pub trait MultiPolicy: Send + Sync {
    /// Per-class server totals in state `counts` (length `M`).
    fn allocate(&self, counts: &[usize], system: &MultiSystem) -> Vec<f64>;

    /// Display name.
    fn name(&self) -> String;
}

/// A feasibility violation found by [`check_feasible`]. The message
/// carries the offending policy, class, and quantities.
#[derive(Debug, Clone, PartialEq)]
pub struct FeasibilityError(String);

impl std::fmt::Display for FeasibilityError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for FeasibilityError {}

/// Validates an allocation against the multi-class feasibility
/// constraints, returning the first violation as an error. Use this to
/// *probe* a policy (the shared policy layer's feasibility tests do);
/// simulation hot paths use the asserting wrapper [`assert_feasible`].
pub fn check_feasible(
    alloc: &[f64],
    counts: &[usize],
    system: &MultiSystem,
    name: &str,
) -> Result<(), FeasibilityError> {
    if alloc.len() != counts.len() {
        return Err(FeasibilityError(format!(
            "{name}: allocation has {} entries for {} classes",
            alloc.len(),
            counts.len()
        )));
    }
    let kf = system.k as f64;
    let mut total = 0.0;
    for ((a, &n), class) in alloc.iter().zip(counts).zip(&system.classes) {
        if *a < -1e-12 {
            return Err(FeasibilityError(format!(
                "{name}: negative allocation {a} for {}",
                class.name
            )));
        }
        let absorb = (n as f64 * class.cap as f64).min(kf);
        if *a > absorb + 1e-9 {
            return Err(FeasibilityError(format!(
                "{name}: class {} gets {a} > absorbable {absorb}",
                class.name
            )));
        }
        total += a;
    }
    if total > kf + 1e-9 {
        return Err(FeasibilityError(format!(
            "{name}: total {total} exceeds k = {}",
            system.k
        )));
    }
    Ok(())
}

/// Validates an allocation; panics with a descriptive message on
/// violation. Thin wrapper over [`check_feasible`], called by the
/// simulator on every decision so buggy policies fail fast.
pub fn assert_feasible(alloc: &[f64], counts: &[usize], system: &MultiSystem, name: &str) {
    if let Err(e) = check_feasible(alloc, counts, system, name) {
        panic!("{e}");
    }
}

/// Strict preemptive priority by a fixed order of class indices.
#[derive(Debug, Clone)]
pub struct PriorityOrder {
    order: Vec<usize>,
    label: String,
}

impl PriorityOrder {
    /// Priority by explicit class indices, highest priority first. Must be
    /// a permutation of `0..M` (checked at allocation time against the
    /// system).
    pub fn new(order: Vec<usize>, label: impl Into<String>) -> Self {
        Self {
            order,
            label: label.into(),
        }
    }
}

impl MultiPolicy for PriorityOrder {
    fn allocate(&self, counts: &[usize], system: &MultiSystem) -> Vec<f64> {
        debug_assert_eq!(
            self.order.len(),
            counts.len(),
            "priority order must cover all classes"
        );
        let mut alloc = vec![0.0; counts.len()];
        let mut left = system.k as f64;
        for &m in &self.order {
            if left <= 0.0 {
                break;
            }
            let absorb = (counts[m] as f64) * system.classes[m].cap as f64;
            let grant = absorb.min(left);
            alloc[m] = grant;
            left -= grant;
        }
        alloc
    }

    fn name(&self) -> String {
        self.label.clone()
    }
}

/// The generalization of Inelastic-First: priority by ascending
/// parallelizability cap (ties broken by smaller mean size first, matching
/// the paper's intuition that the less flexible *and smaller* class should
/// go first).
pub fn least_flexible_first(system: &MultiSystem) -> PriorityOrder {
    let mut order: Vec<usize> = (0..system.num_classes()).collect();
    order.sort_by(|&a, &b| {
        let ca = &system.classes[a];
        let cb = &system.classes[b];
        ca.cap.cmp(&cb.cap).then(
            ca.mean_size()
                .partial_cmp(&cb.mean_size())
                .expect("finite means"),
        )
    });
    PriorityOrder::new(order, "Least-Flexible-First")
}

/// The generalization of Elastic-First: priority by descending cap.
pub fn most_flexible_first(system: &MultiSystem) -> PriorityOrder {
    let mut order: Vec<usize> = (0..system.num_classes()).collect();
    order.sort_by(|&a, &b| {
        let ca = &system.classes[a];
        let cb = &system.classes[b];
        cb.cap.cmp(&ca.cap).then(
            ca.mean_size()
                .partial_cmp(&cb.mean_size())
                .expect("finite means"),
        )
    });
    PriorityOrder::new(order, "Most-Flexible-First")
}

/// Water-filling fair share: each *job* receives an equal share of the
/// cluster, except that jobs whose cap is below the running fair share are
/// saturated at their cap and removed, raising the share for the rest.
#[derive(Debug, Clone, Copy, Default)]
pub struct WaterFilling;

impl MultiPolicy for WaterFilling {
    fn allocate(&self, counts: &[usize], system: &MultiSystem) -> Vec<f64> {
        let m = counts.len();
        let mut alloc = vec![0.0; m];
        let mut remaining_jobs: Vec<(usize, f64)> = Vec::new();
        for (idx, &n) in counts.iter().enumerate() {
            if n > 0 {
                remaining_jobs.push((idx, system.classes[idx].cap as f64));
            }
        }
        let mut budget = system.k as f64;
        let mut job_counts: Vec<f64> = counts.iter().map(|&n| n as f64).collect();
        // Iterate: saturate every class whose cap is below the fair share.
        loop {
            let total_jobs: f64 = remaining_jobs.iter().map(|&(idx, _)| job_counts[idx]).sum();
            if total_jobs == 0.0 || budget <= 1e-12 {
                break;
            }
            let share = budget / total_jobs;
            let mut saturated = Vec::new();
            for &(idx, cap) in &remaining_jobs {
                if cap <= share {
                    saturated.push(idx);
                }
            }
            if saturated.is_empty() {
                // Everyone takes the fair share.
                for &(idx, _) in &remaining_jobs {
                    alloc[idx] += share * job_counts[idx];
                }
                break;
            }
            for idx in saturated {
                let cap = system.classes[idx].cap as f64;
                alloc[idx] += cap * job_counts[idx];
                budget -= cap * job_counts[idx];
                job_counts[idx] = 0.0;
                remaining_jobs.retain(|&(i, _)| i != idx);
            }
        }
        alloc
    }

    fn name(&self) -> String {
        "Water-Filling".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{ClassSpec, MultiSystem};

    fn three_class() -> MultiSystem {
        MultiSystem::new(
            8,
            vec![
                ClassSpec::exponential("rigid", 1.0, 2.0, 1),
                ClassSpec::exponential("semi", 1.0, 1.0, 4),
                ClassSpec::exponential("fluid", 0.5, 0.5, 8),
            ],
        )
    }

    #[test]
    fn least_flexible_first_orders_by_cap() {
        let s = three_class();
        let p = least_flexible_first(&s);
        // One job of each class: rigid takes 1, semi takes 4, fluid gets 3.
        let a = p.allocate(&[1, 1, 1], &s);
        assert_eq!(a, vec![1.0, 4.0, 3.0]);
        assert_feasible(&a, &[1, 1, 1], &s, "LFF");
    }

    #[test]
    fn most_flexible_first_orders_by_cap_descending() {
        let s = three_class();
        let p = most_flexible_first(&s);
        // Fluid job absorbs everything.
        let a = p.allocate(&[1, 1, 1], &s);
        assert_eq!(a, vec![0.0, 0.0, 8.0]);
    }

    #[test]
    fn priority_respects_absorption_limits() {
        let s = three_class();
        let p = least_flexible_first(&s);
        // Five rigid jobs absorb at most 5 servers (cap 1 each).
        let a = p.allocate(&[5, 0, 1], &s);
        assert_eq!(a, vec![5.0, 0.0, 3.0]);
    }

    #[test]
    fn two_class_reduction_matches_if_and_ef() {
        let s = MultiSystem::two_class(4, 1.0, 1.0, 2.0, 1.0);
        let lff = least_flexible_first(&s);
        let mff = most_flexible_first(&s);
        use eirs_sim::policy::{AllocationPolicy, ElasticFirst, InelasticFirst};
        for i in 0..8usize {
            for j in 0..8usize {
                let a = lff.allocate(&[i, j], &s);
                let reference = InelasticFirst.allocate(i, j, 4);
                assert!(
                    (a[0] - reference.inelastic).abs() < 1e-12,
                    "LFF≠IF at ({i},{j})"
                );
                assert!((a[1] - reference.elastic).abs() < 1e-12);
                let a = mff.allocate(&[i, j], &s);
                let reference = ElasticFirst.allocate(i, j, 4);
                assert!(
                    (a[0] - reference.inelastic).abs() < 1e-12,
                    "MFF≠EF at ({i},{j})"
                );
                assert!((a[1] - reference.elastic).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn water_filling_equal_when_uncapped() {
        let s = three_class();
        // Two fluid jobs (cap 8): each gets 4.
        let a = WaterFilling.allocate(&[0, 0, 2], &s);
        assert_eq!(a, vec![0.0, 0.0, 8.0]);
    }

    #[test]
    fn water_filling_redistributes_saturated_surplus() {
        let s = three_class();
        // 2 rigid (cap 1) + 1 fluid (cap 8) on k=8: fair share 8/3 > 1, so
        // rigid saturate at 1 each; fluid gets the remaining 6.
        let a = WaterFilling.allocate(&[2, 0, 1], &s);
        assert!((a[0] - 2.0).abs() < 1e-12);
        assert!((a[2] - 6.0).abs() < 1e-12);
        assert_feasible(&a, &[2, 0, 1], &s, "WF");
    }

    #[test]
    fn water_filling_respects_intermediate_caps() {
        let s = three_class();
        // 4 semi jobs (cap 4) on k=8: share 2 each, below cap — all equal.
        let a = WaterFilling.allocate(&[0, 4, 0], &s);
        assert!((a[1] - 8.0).abs() < 1e-12);
        // 1 rigid + 1 semi: share 4; rigid saturates at 1, semi gets 7?
        // Semi cap is 4 → capped at 4. Total 5 ≤ 8 (3 idle, no one can
        // absorb more).
        let a = WaterFilling.allocate(&[1, 1, 0], &s);
        assert!((a[0] - 1.0).abs() < 1e-12);
        assert!((a[1] - 4.0).abs() < 1e-12);
    }

    #[test]
    fn check_feasible_reports_violations_without_panicking() {
        let s = three_class();
        // Oversubscription.
        let err = check_feasible(&[5.0, 4.0, 4.0], &[5, 1, 1], &s, "bad").unwrap_err();
        assert!(err.to_string().contains("exceeds k"), "{err}");
        // Absorption limit: one rigid job cannot take two servers.
        let err = check_feasible(&[2.0, 0.0, 0.0], &[1, 0, 0], &s, "bad").unwrap_err();
        assert!(err.to_string().contains("absorbable"), "{err}");
        // Negative and wrong-length allocations.
        assert!(check_feasible(&[-1.0, 0.0, 0.0], &[1, 0, 0], &s, "bad").is_err());
        assert!(check_feasible(&[0.0, 0.0], &[1, 0, 0], &s, "bad").is_err());
        // A valid allocation passes.
        assert!(check_feasible(&[1.0, 4.0, 3.0], &[1, 1, 1], &s, "ok").is_ok());
        // And the asserting wrapper still panics on violations.
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            assert_feasible(&[5.0, 4.0, 4.0], &[5, 1, 1], &s, "bad");
        }));
        assert!(caught.is_err());
    }

    #[test]
    fn empty_state_allocates_nothing() {
        let s = three_class();
        let p = least_flexible_first(&s);
        assert_eq!(p.allocate(&[0, 0, 0], &s), vec![0.0, 0.0, 0.0]);
        assert_eq!(WaterFilling.allocate(&[0, 0, 0], &s), vec![0.0, 0.0, 0.0]);
    }
}
