//! Exact policy evaluation on the truncated multi-class CTMC.
//!
//! With exponential sizes, the count vector `(n_1, …, n_M)` is a CTMC under
//! any stationary policy (the multi-class version of the paper's Figure 1
//! observation). No matrix-geometric structure survives in general — this
//! is exactly why the paper calls the multi-class analysis wide open — but
//! the truncated chain can be evaluated numerically: uniformize and iterate
//! the policy's value recursion until the average cost converges, like
//! `eirs-mdp` does for two classes.
//!
//! State space grows as `Π (N_m + 1)`, so this is practical for `M ≤ 4`
//! with per-class truncations of a few dozen.

use crate::policy::MultiPolicy;
use crate::spec::MultiSystem;

/// Mean-value results of a truncated evaluation.
#[derive(Debug, Clone)]
pub struct MulticlassAnalysis {
    /// Long-run average number in system per class, `E[N_m]`.
    pub mean_in_system: Vec<f64>,
    /// Mean response time per class by Little's law (`NaN` for `λ_m = 0`).
    pub mean_response: Vec<f64>,
    /// Overall mean response time.
    pub overall_mean_response: f64,
    /// Value-iteration sweeps used.
    pub iterations: usize,
}

/// Evaluates `policy` on the truncated chain (`n_m ≤ trunc[m]`, arrivals at
/// the boundary rejected). `tol` bounds the span of the value-difference
/// (scaled to rate), `max_iter` the sweep count.
///
/// Sizes must be exponential for the CTMC description to be exact; the
/// caller is responsible for using exponential [`crate::spec::ClassSpec`]s
/// (means are read through `mean_size()`).
pub fn evaluate_multiclass(
    system: &MultiSystem,
    policy: &dyn MultiPolicy,
    trunc: &[usize],
    tol: f64,
    max_iter: usize,
) -> Result<MulticlassAnalysis, String> {
    let m = system.num_classes();
    assert_eq!(trunc.len(), m, "one truncation bound per class");
    assert!(system.is_stable(), "system must be stable (rho < 1)");
    let mus: Vec<f64> = system.classes.iter().map(|c| 1.0 / c.mean_size()).collect();
    let lambdas: Vec<f64> = system.classes.iter().map(|c| c.lambda).collect();

    // Mixed-radix indexing over the truncated grid.
    let mut strides = vec![1usize; m];
    for idx in (0..m - 1).rev() {
        strides[idx] = strides[idx + 1] * (trunc[idx + 1] + 1);
    }
    let states: usize = trunc.iter().map(|&t| t + 1).product();

    // Uniformization: Λ = Σ λ_m + k·max µ_m.
    let lam: f64 =
        lambdas.iter().sum::<f64>() + system.k as f64 * mus.iter().cloned().fold(0.0, f64::max);

    // Precompute per-state departure rates (policy is stationary).
    let mut dep_rates: Vec<Vec<f64>> = Vec::with_capacity(states);
    let mut counts = vec![0usize; m];
    for s in 0..states {
        let mut rem = s;
        for idx in 0..m {
            counts[idx] = rem / strides[idx];
            rem %= strides[idx];
        }
        let alloc = policy.allocate(&counts, system);
        crate::policy::assert_feasible(&alloc, &counts, system, &policy.name());
        dep_rates.push(alloc.iter().zip(&mus).map(|(a, mu)| a * mu).collect());
    }

    // Cost accumulators: value iteration on total count, plus per-class
    // tallies extracted afterwards from per-class value iterations run
    // simultaneously (costs are linear, so we run M+1 value functions in
    // one sweep: one per class).
    let mut h = vec![vec![0.0f64; states]; m];
    let mut h_next = vec![vec![0.0f64; states]; m];
    let mut per_class_g = vec![0.0f64; m];

    let mut iterations = 0;
    let mut converged = false;
    while iterations < max_iter && !converged {
        iterations += 1;
        converged = true;
        for class_fn in 0..m {
            let hv = &h[class_fn];
            let hn = &mut h_next[class_fn];
            let mut min_delta = f64::INFINITY;
            let mut max_delta = f64::NEG_INFINITY;
            for s in 0..states {
                let mut rem = s;
                let mut cost = 0.0;
                let mut acc = 0.0;
                let mut exit = 0.0;
                for idx in 0..m {
                    let n = rem / strides[idx];
                    rem %= strides[idx];
                    if idx == class_fn {
                        cost = n as f64;
                    }
                    // Arrival of class idx.
                    let up = if n < trunc[idx] {
                        hv[s + strides[idx]]
                    } else {
                        hv[s]
                    };
                    acc += lambdas[idx] * up;
                    exit += lambdas[idx];
                    // Departure of class idx.
                    let d = dep_rates[s][idx];
                    if d > 0.0 {
                        debug_assert!(n > 0);
                        acc += d * hv[s - strides[idx]];
                        exit += d;
                    }
                }
                let v = (cost + acc + (lam - exit) * hv[s]) / lam;
                hn[s] = v;
                let delta = v - hv[s];
                min_delta = min_delta.min(delta);
                max_delta = max_delta.max(delta);
            }
            per_class_g[class_fn] = 0.5 * (min_delta + max_delta) * lam;
            if (max_delta - min_delta) * lam >= tol {
                converged = false;
            }
            let offset = hn[0];
            let hv = &mut h[class_fn];
            for (dst, src) in hv.iter_mut().zip(hn.iter()) {
                *dst = src - offset;
            }
        }
    }
    if !converged {
        return Err(format!(
            "value iteration did not converge within {max_iter} sweeps"
        ));
    }

    let mean_response: Vec<f64> = per_class_g
        .iter()
        .zip(&lambdas)
        .map(|(g, l)| if *l > 0.0 { g / l } else { f64::NAN })
        .collect();
    let total_lambda: f64 = lambdas.iter().sum();
    let overall = per_class_g.iter().sum::<f64>() / total_lambda;
    Ok(MulticlassAnalysis {
        mean_in_system: per_class_g,
        mean_response,
        overall_mean_response: overall,
        iterations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{least_flexible_first, most_flexible_first};
    use crate::spec::{ClassSpec, MultiSystem};

    #[test]
    fn single_class_mmk_is_recovered() {
        let s = MultiSystem::new(4, vec![ClassSpec::exponential("only", 3.0, 1.0, 1)]);
        let p = least_flexible_first(&s);
        let a = evaluate_multiclass(&s, &p, &[120], 1e-9, 400_000).unwrap();
        let want = eirs_queueing::MMk::new(3.0, 1.0, 4).mean_number_in_system();
        assert!(
            (a.mean_in_system[0] - want).abs() / want < 1e-5,
            "{} vs {want}",
            a.mean_in_system[0]
        );
    }

    #[test]
    fn two_class_reduction_matches_qbd_analysis() {
        let p2 = eirs_core::params::SystemParams::with_equal_lambdas(2, 1.0, 1.0, 0.6).unwrap();
        let s = MultiSystem::two_class(2, p2.lambda_i, p2.lambda_e, p2.mu_i, p2.mu_e);
        let lff = least_flexible_first(&s);
        let a = evaluate_multiclass(&s, &lff, &[70, 70], 1e-9, 400_000).unwrap();
        let reference = eirs_core::analyze_inelastic_first(&p2).unwrap();
        let rel =
            (a.overall_mean_response - reference.mean_response).abs() / reference.mean_response;
        assert!(
            rel < 0.01,
            "multiclass {} vs QBD {}",
            a.overall_mean_response,
            reference.mean_response
        );
    }

    #[test]
    fn two_class_mff_matches_ef_analysis() {
        let p2 = eirs_core::params::SystemParams::with_equal_lambdas(2, 1.0, 1.0, 0.6).unwrap();
        let s = MultiSystem::two_class(2, p2.lambda_i, p2.lambda_e, p2.mu_i, p2.mu_e);
        let mff = most_flexible_first(&s);
        let a = evaluate_multiclass(&s, &mff, &[70, 70], 1e-9, 400_000).unwrap();
        let reference = eirs_core::analyze_elastic_first(&p2).unwrap();
        let rel =
            (a.overall_mean_response - reference.mean_response).abs() / reference.mean_response;
        assert!(
            rel < 0.01,
            "multiclass {} vs QBD {}",
            a.overall_mean_response,
            reference.mean_response
        );
    }

    #[test]
    fn three_class_analysis_matches_simulation() {
        let s = MultiSystem::new(
            4,
            vec![
                ClassSpec::exponential("rigid", 0.8, 2.0, 1),
                ClassSpec::exponential("semi", 0.5, 1.0, 2),
                ClassSpec::exponential("fluid", 0.3, 0.5, 4),
            ],
        );
        assert!(s.is_stable());
        let p = least_flexible_first(&s);
        let a = evaluate_multiclass(&s, &p, &[40, 40, 40], 1e-8, 400_000).unwrap();
        let r = crate::des::simulate_multiclass(
            &s,
            &p,
            crate::des::MultiSimConfig {
                seed: 8,
                warmup_departures: 50_000,
                departures: 400_000,
            },
        );
        let rel = (a.overall_mean_response - r.mean_response).abs() / r.mean_response;
        assert!(
            rel < 0.03,
            "analysis {} vs DES {}",
            a.overall_mean_response,
            r.mean_response
        );
    }

    #[test]
    fn littles_law_per_class() {
        let s = MultiSystem::new(
            4,
            vec![
                ClassSpec::exponential("a", 0.8, 2.0, 1),
                ClassSpec::exponential("b", 0.4, 1.0, 4),
            ],
        );
        let p = least_flexible_first(&s);
        let a = evaluate_multiclass(&s, &p, &[60, 60], 1e-9, 400_000).unwrap();
        for idx in 0..2 {
            let n = a.mean_in_system[idx];
            let t = a.mean_response[idx];
            let lambda = s.classes[idx].lambda;
            assert!((n - lambda * t).abs() < 1e-9, "class {idx}");
        }
    }
}
