//! Finite continuous-time Markov chains.
//!
//! States are dense indices `0..n`. The stationary distribution solves the
//! global balance equations `π Q = 0`, `π·1 = 1`; we assemble `Qᵀ`, replace
//! one (redundant) balance row with the normalization row, and solve by LU.

use eirs_numerics::lu::{LinAlgError, LuDecomposition};
use eirs_numerics::Matrix;

/// A finite CTMC under construction / analysis.
#[derive(Debug, Clone)]
pub struct FiniteCtmc {
    n: usize,
    /// Off-diagonal rates, `rates[(i, j)]` = rate from i to j.
    rates: Matrix,
}

impl FiniteCtmc {
    /// An empty chain on `n` states.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "chain needs at least one state");
        Self {
            n,
            rates: Matrix::zeros(n, n),
        }
    }

    /// Number of states.
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` when the chain has no states (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Adds `rate` to the transition `from → to`. Self-loops are rejected,
    /// negative rates are rejected.
    pub fn add_rate(&mut self, from: usize, to: usize, rate: f64) {
        assert!(from < self.n && to < self.n, "state out of range");
        assert_ne!(from, to, "self-loops are not allowed in a CTMC generator");
        assert!(
            rate >= 0.0 && rate.is_finite(),
            "rates must be nonnegative, got {rate}"
        );
        self.rates[(from, to)] += rate;
    }

    /// The rate from `from` to `to` (zero when absent).
    pub fn rate(&self, from: usize, to: usize) -> f64 {
        self.rates[(from, to)]
    }

    /// Total exit rate of a state.
    pub fn exit_rate(&self, state: usize) -> f64 {
        self.rates.row(state).iter().sum()
    }

    /// The full generator matrix `Q` (off-diagonal rates, diagonal = −exit).
    pub fn generator(&self) -> Matrix {
        let mut q = self.rates.clone();
        for i in 0..self.n {
            let exit: f64 = self.rates.row(i).iter().sum();
            q[(i, i)] = -exit;
        }
        q
    }

    /// Stationary distribution via dense LU on the balance equations.
    ///
    /// Fails when the chain is reducible in a way that leaves the system
    /// singular (e.g. two closed communicating classes).
    pub fn stationary_distribution(&self) -> Result<Vec<f64>, LinAlgError> {
        let q = self.generator();
        // Solve Qᵀ πᵀ = 0 with the first row replaced by normalization.
        let mut a = q.transpose();
        for j in 0..self.n {
            a[(0, j)] = 1.0;
        }
        let mut rhs = vec![0.0; self.n];
        rhs[0] = 1.0;
        let x = LuDecomposition::new(&a)?.solve(&rhs)?;
        Ok(x)
    }

    /// Expected stationary value of a per-state function `f`.
    pub fn stationary_mean<F: Fn(usize) -> f64>(&self, f: F) -> Result<f64, LinAlgError> {
        let pi = self.stationary_distribution()?;
        Ok(pi.iter().enumerate().map(|(i, p)| p * f(i)).sum())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_state_chain_has_classical_stationary_distribution() {
        // 0 -> 1 at rate a, 1 -> 0 at rate b: π = (b, a)/(a+b).
        let (a, b) = (2.0, 3.0);
        let mut c = FiniteCtmc::new(2);
        c.add_rate(0, 1, a);
        c.add_rate(1, 0, b);
        let pi = c.stationary_distribution().unwrap();
        assert!((pi[0] - b / (a + b)).abs() < 1e-12);
        assert!((pi[1] - a / (a + b)).abs() < 1e-12);
    }

    #[test]
    fn truncated_mm1_matches_geometric() {
        // M/M/1 with λ=0.5, µ=1 truncated at 60 states: geometric to ~1e-18.
        let n = 60;
        let mut c = FiniteCtmc::new(n);
        for i in 0..n - 1 {
            c.add_rate(i, i + 1, 0.5);
            c.add_rate(i + 1, i, 1.0);
        }
        let pi = c.stationary_distribution().unwrap();
        for (i, p) in pi.iter().enumerate().take(20) {
            let want = 0.5 * 0.5f64.powi(i as i32);
            assert!((p - want).abs() < 1e-10, "state {i}: {p} vs {want}");
        }
        let mean = c.stationary_mean(|i| i as f64).unwrap();
        assert!((mean - 1.0).abs() < 1e-9, "mean {mean}");
    }

    #[test]
    fn generator_rows_sum_to_zero() {
        let mut c = FiniteCtmc::new(3);
        c.add_rate(0, 1, 1.0);
        c.add_rate(1, 2, 2.0);
        c.add_rate(2, 0, 3.0);
        c.add_rate(1, 0, 0.5);
        let q = c.generator();
        for s in q.row_sums() {
            assert!(s.abs() < 1e-14);
        }
    }

    #[test]
    fn rates_accumulate() {
        let mut c = FiniteCtmc::new(2);
        c.add_rate(0, 1, 1.0);
        c.add_rate(0, 1, 2.5);
        assert_eq!(c.rate(0, 1), 3.5);
        assert_eq!(c.exit_rate(0), 3.5);
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn rejects_self_loop() {
        FiniteCtmc::new(2).add_rate(1, 1, 1.0);
    }

    #[test]
    fn disconnected_chain_is_reported_singular() {
        // Two isolated closed classes: stationary distribution not unique.
        let mut c = FiniteCtmc::new(4);
        c.add_rate(0, 1, 1.0);
        c.add_rate(1, 0, 1.0);
        c.add_rate(2, 3, 1.0);
        c.add_rate(3, 2, 1.0);
        assert!(c.stationary_distribution().is_err());
    }
}
