//! Transient distributions of finite CTMCs via uniformization.
//!
//! The stationary solvers answer "where does the chain settle"; this module
//! answers "where is it at time `t`". Uniformization (Jensen's method)
//! converts the CTMC with generator `Q` into a DTMC `P = I + Q/Λ` observed
//! at Poisson(Λt) epochs:
//!
//! ```text
//! π(t) = Σ_{n≥0} e^{-Λt} (Λt)^n / n! · π(0) Pⁿ
//! ```
//!
//! The series is truncated adaptively once the remaining Poisson tail mass
//! is below tolerance. Used by the tests to check relaxation of the
//! two-class chain toward the stationary distribution, and available to
//! downstream users for warm-up-length estimation.

use crate::ctmc::FiniteCtmc;

/// Transient distribution `π(t)` from the initial distribution `pi0`.
///
/// `tol` bounds the neglected Poisson tail mass (default callers use
/// `1e-12`).
pub fn transient_distribution(chain: &FiniteCtmc, pi0: &[f64], t: f64, tol: f64) -> Vec<f64> {
    let n = chain.len();
    assert_eq!(pi0.len(), n, "initial distribution length mismatch");
    assert!(t >= 0.0 && t.is_finite());
    let total: f64 = pi0.iter().sum();
    assert!(
        (total - 1.0).abs() < 1e-9,
        "initial distribution must sum to 1"
    );
    if t == 0.0 {
        return pi0.to_vec();
    }

    // Uniformization rate: a hair above the largest exit rate.
    let max_exit = (0..n).map(|s| chain.exit_rate(s)).fold(0.0, f64::max);
    if max_exit == 0.0 {
        return pi0.to_vec();
    }
    let lam = max_exit * 1.000001;

    // One step of the uniformized DTMC: v ← v P, P = I + Q/Λ.
    let step = |v: &[f64]| -> Vec<f64> {
        let mut out = vec![0.0; n];
        for (s, &mass) in v.iter().enumerate() {
            if mass == 0.0 {
                continue;
            }
            let exit = chain.exit_rate(s);
            out[s] += mass * (1.0 - exit / lam);
            for (target, slot) in out.iter_mut().enumerate() {
                if target != s {
                    let rate = chain.rate(s, target);
                    if rate > 0.0 {
                        *slot += mass * rate / lam;
                    }
                }
            }
        }
        out
    };

    // Poisson(Λt) weights, accumulated until the tail is below tol.
    let lt = lam * t;
    let mut acc = vec![0.0; n];
    let mut v = pi0.to_vec();
    // log-space Poisson pmf to avoid overflow for large Λt.
    let mut log_pmf = -lt; // log P(N=0)
    let mut cumulative = 0.0;
    let mut k = 0u64;
    loop {
        let w = log_pmf.exp();
        if w > 0.0 {
            for (a, x) in acc.iter_mut().zip(&v) {
                *a += w * x;
            }
            cumulative += w;
        }
        if 1.0 - cumulative < tol {
            break;
        }
        k += 1;
        log_pmf += lt.ln() - (k as f64).ln();
        v = step(&v);
        // Hard stop far beyond the Poisson bulk (mean + 12 std devs).
        if k as f64 > lt + 12.0 * lt.sqrt() + 64.0 {
            break;
        }
    }
    // Renormalize the truncated series.
    let mass: f64 = acc.iter().sum();
    for a in &mut acc {
        *a /= mass;
    }
    acc
}

/// Expected value of a state function under `π(t)`.
pub fn transient_mean<F: Fn(usize) -> f64>(
    chain: &FiniteCtmc,
    pi0: &[f64],
    t: f64,
    tol: f64,
    f: F,
) -> f64 {
    transient_distribution(chain, pi0, t, tol)
        .iter()
        .enumerate()
        .map(|(s, p)| p * f(s))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_state(a: f64, b: f64) -> FiniteCtmc {
        let mut c = FiniteCtmc::new(2);
        c.add_rate(0, 1, a);
        c.add_rate(1, 0, b);
        c
    }

    #[test]
    fn two_state_transient_matches_closed_form() {
        // P(X(t)=1 | X(0)=0) = a/(a+b) (1 - e^{-(a+b)t}).
        let (a, b) = (2.0, 3.0);
        let chain = two_state(a, b);
        for t in [0.0, 0.1, 0.5, 1.0, 3.0] {
            let pi = transient_distribution(&chain, &[1.0, 0.0], t, 1e-13);
            let want = a / (a + b) * (1.0 - (-(a + b) * t).exp());
            assert!((pi[1] - want).abs() < 1e-10, "t={t}: {} vs {want}", pi[1]);
        }
    }

    #[test]
    fn long_horizon_converges_to_stationary() {
        let chain = two_state(1.0, 4.0);
        let pi = transient_distribution(&chain, &[0.0, 1.0], 50.0, 1e-13);
        let stat = chain.stationary_distribution().unwrap();
        for (p, s) in pi.iter().zip(&stat) {
            assert!((p - s).abs() < 1e-9, "{p} vs {s}");
        }
    }

    #[test]
    fn zero_time_returns_initial_distribution() {
        let chain = two_state(1.0, 1.0);
        let pi = transient_distribution(&chain, &[0.25, 0.75], 0.0, 1e-12);
        assert_eq!(pi, vec![0.25, 0.75]);
    }

    #[test]
    fn distribution_stays_normalized_for_large_lt() {
        // Large Λt exercises the log-space Poisson weights.
        let mut chain = FiniteCtmc::new(5);
        for s in 0..4 {
            chain.add_rate(s, s + 1, 100.0);
            chain.add_rate(s + 1, s, 80.0);
        }
        let pi0 = [1.0, 0.0, 0.0, 0.0, 0.0];
        let pi = transient_distribution(&chain, &pi0, 10.0, 1e-12);
        let total: f64 = pi.iter().sum();
        assert!((total - 1.0).abs() < 1e-9, "total {total}");
        assert!(pi.iter().all(|&p| p >= 0.0));
    }

    #[test]
    fn transient_mean_tracks_mm1_relaxation() {
        // Truncated M/M/1 from empty: E[N(t)] rises monotonically toward
        // the stationary mean.
        let n = 40;
        let mut chain = FiniteCtmc::new(n);
        for s in 0..n - 1 {
            chain.add_rate(s, s + 1, 0.5);
            chain.add_rate(s + 1, s, 1.0);
        }
        let mut pi0 = vec![0.0; n];
        pi0[0] = 1.0;
        let mut last = 0.0;
        // M/M/1 at rho = 0.5 relaxes with time constant ~1/(1-sqrt(rho))^2
        // ≈ 12, so run well past it.
        for t in [0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0] {
            let m = transient_mean(&chain, &pi0, t, 1e-12, |s| s as f64);
            assert!(m >= last - 1e-9, "E[N(t)] must be nondecreasing from empty");
            last = m;
        }
        assert!((last - 1.0).abs() < 0.01, "E[N(∞)] ≈ 1, got {last}");
    }
}
