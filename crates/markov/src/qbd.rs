//! Quasi-birth–death (QBD) chains and matrix-analytic solvers.
//!
//! A QBD is a CTMC whose states are organized into *levels* `ℓ = 0, 1, 2, …`
//! each holding `p` *phases*, where transitions only reach neighboring
//! levels. After a finite level-dependent boundary (levels `0..m-1`), the
//! transition blocks repeat:
//!
//! ```text
//! A0: level ℓ → ℓ+1     A1: within level (off-diagonal)     A2: level ℓ → ℓ−1
//! ```
//!
//! The stationary distribution then has a matrix-geometric tail
//! `π_{m+j} = π_m R^j`, where `R` is the minimal nonnegative solution of
//!
//! ```text
//! A0 + R Â1 + R² A2 = 0,       Â1 = A1 − diag(rowsums(A0 + A1 + A2)).
//! ```
//!
//! This module implements both the classical linear fixed-point iteration
//! and Latouche–Ramaswami logarithmic reduction (quadratically convergent,
//! the default), plus the boundary solve and level-distribution moments.
//! The busy-period-transformed EF and IF chains of the paper (Figures 3c
//! and 7c) are solved exactly through this interface.

use std::cell::RefCell;

use eirs_numerics::lu::{LinAlgError, LuDecomposition};
use eirs_numerics::Matrix;
use eirs_obs::LazyCounter;

/// Telemetry counter names reported by the QBD solvers (see
/// `docs/OBSERVABILITY.md` for the full catalog). Counters are recorded
/// through `eirs_obs` and only when the observability layer is enabled;
/// they never influence which route runs or what it returns.
pub mod telemetry {
    /// Cold `R` solves (direct, or reached by warm fallback).
    pub const COLD_SOLVES: &str = "markov.solve.cold";
    /// Inner iterations spent in the cold solvers (fixed-point steps or
    /// logarithmic-reduction rounds).
    pub const COLD_ITERATIONS: &str = "markov.solve.cold_iterations";
    /// Warm solves that received a usable (shape- and sign-valid) seed.
    pub const WARM_ATTEMPTS: &str = "markov.warm.attempts";
    /// Warm solves whose seed was unusable (fell straight to cold).
    pub const WARM_SEED_UNUSABLE: &str = "markov.warm.seed_unusable";
    /// Warm solves accepted through the rank-1 Sherman–Morrison
    /// scalar-Newton route.
    pub const WARM_RANK1_ACCEPTED: &str = "markov.warm.rank1_accepted";
    /// Rank-1 Newton runs restarted from `β = 0` after the seeded run
    /// converged to a root that failed certification.
    pub const WARM_RANK1_RETRIES: &str = "markov.warm.rank1_retries";
    /// Warm solves accepted through the fixed-point refinement route.
    pub const WARM_REFINE_ACCEPTED: &str = "markov.warm.refine_accepted";
    /// Refined warm results rejected by the spectral-radius
    /// certification (and therefore re-solved cold).
    pub const WARM_CERTIFY_REJECTS: &str = "markov.warm.certify_rejects";
    /// Warm attempts that fell back to the cold solver.
    pub const WARM_FALLBACK_COLD: &str = "markov.warm.fallback_cold";
    /// Newton steps inside the rank-1 scalar root-find.
    pub const WARM_NEWTON_ITERATIONS: &str = "markov.warm.newton_iterations";
    /// Fixed-point steps inside the warm refinement.
    pub const WARM_REFINE_ITERATIONS: &str = "markov.warm.refine_iterations";
}

static C_COLD_SOLVES: LazyCounter = LazyCounter::new(telemetry::COLD_SOLVES);
static C_COLD_ITER: LazyCounter = LazyCounter::new(telemetry::COLD_ITERATIONS);
static C_WARM_ATTEMPTS: LazyCounter = LazyCounter::new(telemetry::WARM_ATTEMPTS);
static C_WARM_SEED_UNUSABLE: LazyCounter = LazyCounter::new(telemetry::WARM_SEED_UNUSABLE);
static C_WARM_RANK1_ACCEPTED: LazyCounter = LazyCounter::new(telemetry::WARM_RANK1_ACCEPTED);
static C_WARM_RANK1_RETRIES: LazyCounter = LazyCounter::new(telemetry::WARM_RANK1_RETRIES);
static C_WARM_REFINE_ACCEPTED: LazyCounter = LazyCounter::new(telemetry::WARM_REFINE_ACCEPTED);
static C_WARM_CERTIFY_REJECTS: LazyCounter = LazyCounter::new(telemetry::WARM_CERTIFY_REJECTS);
static C_WARM_FALLBACK_COLD: LazyCounter = LazyCounter::new(telemetry::WARM_FALLBACK_COLD);
static C_WARM_NEWTON_ITER: LazyCounter = LazyCounter::new(telemetry::WARM_NEWTON_ITERATIONS);
static C_WARM_REFINE_ITER: LazyCounter = LazyCounter::new(telemetry::WARM_REFINE_ITERATIONS);

/// Which algorithm computes the rate matrix `R`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RSolver {
    /// Latouche–Ramaswami logarithmic reduction (quadratic convergence).
    #[default]
    LogarithmicReduction,
    /// Classical fixed-point iteration `R ← −(A0 + R²A2)Â1^{-1}`
    /// (linear convergence; kept as an independent reference).
    FixedPoint,
}

/// Errors from QBD construction or solution.
#[derive(Debug, Clone, PartialEq)]
pub enum QbdError {
    /// Block shapes are inconsistent.
    Dimension(String),
    /// The chain is not positive recurrent: `sp(R) ≥ 1`.
    Unstable {
        /// Estimated spectral radius of `R`.
        spectral_radius: f64,
    },
    /// The R iteration failed to converge.
    NotConverged {
        /// Iterations performed before giving up.
        iterations: usize,
        /// Residual `‖A0 + RÂ1 + R²A2‖_max` at exit.
        residual: f64,
    },
    /// A linear solve failed (singular boundary system, etc.).
    LinAlg(LinAlgError),
}

impl std::fmt::Display for QbdError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QbdError::Dimension(msg) => write!(f, "QBD dimension error: {msg}"),
            QbdError::Unstable { spectral_radius } => {
                write!(f, "QBD is unstable: sp(R) = {spectral_radius:.6} >= 1")
            }
            QbdError::NotConverged {
                iterations,
                residual,
            } => {
                write!(f, "R iteration did not converge after {iterations} iterations (residual {residual:.3e})")
            }
            QbdError::LinAlg(e) => write!(f, "QBD linear algebra failure: {e}"),
        }
    }
}

impl std::error::Error for QbdError {}

impl From<LinAlgError> for QbdError {
    fn from(e: LinAlgError) -> Self {
        QbdError::LinAlg(e)
    }
}

/// A level-dependent-boundary QBD.
///
/// Levels `0..m-1` are the boundary (`m = boundary_local.len() ≥ 1`), level
/// `m` and beyond repeat with blocks `(a0, a1, a2)`. Off-diagonal rates
/// only; diagonals are derived.
#[derive(Debug, Clone)]
pub struct Qbd {
    /// `U_ℓ` for `ℓ = 0..m-1`: level `ℓ → ℓ+1` (the last one feeds level `m`).
    boundary_up: Vec<Matrix>,
    /// `L_ℓ` for `ℓ = 0..m-1`: within-level off-diagonal blocks.
    boundary_local: Vec<Matrix>,
    /// `D_ℓ` for `ℓ = 1..m-1` (indexed `boundary_down[ℓ-1]`): level `ℓ → ℓ−1`.
    boundary_down: Vec<Matrix>,
    a0: Matrix,
    a1: Matrix,
    a2: Matrix,
}

impl Qbd {
    /// Builds and validates a QBD. See type-level docs for block layout.
    pub fn new(
        boundary_up: Vec<Matrix>,
        boundary_local: Vec<Matrix>,
        boundary_down: Vec<Matrix>,
        a0: Matrix,
        a1: Matrix,
        a2: Matrix,
    ) -> Result<Self, QbdError> {
        let p = a0.rows();
        let m = boundary_local.len();
        if m == 0 {
            return Err(QbdError::Dimension(
                "need at least one boundary level".into(),
            ));
        }
        if boundary_up.len() != m {
            return Err(QbdError::Dimension(format!(
                "boundary_up has {} blocks, expected {m}",
                boundary_up.len()
            )));
        }
        if boundary_down.len() + 1 != m {
            return Err(QbdError::Dimension(format!(
                "boundary_down has {} blocks, expected {}",
                boundary_down.len(),
                m - 1
            )));
        }
        let all_blocks = boundary_up
            .iter()
            .chain(&boundary_local)
            .chain(&boundary_down)
            .chain([&a0, &a1, &a2]);
        for b in all_blocks {
            if b.rows() != p || b.cols() != p {
                return Err(QbdError::Dimension(format!(
                    "block is {}x{}, expected {p}x{p}",
                    b.rows(),
                    b.cols()
                )));
            }
            if b.as_slice().iter().any(|&v| v < 0.0 || !v.is_finite()) {
                return Err(QbdError::Dimension(
                    "blocks must be nonnegative and finite".into(),
                ));
            }
        }
        Ok(Self {
            boundary_up,
            boundary_local,
            boundary_down,
            a0,
            a1,
            a2,
        })
    }

    /// Builds a QBD from a **level-homogeneous rate map**: three closures
    /// giving the off-diagonal transition rates out of `(level, phase)`
    /// states, queried as `(level, from_phase, to_phase)`.
    ///
    /// * `up(ℓ, a, b)` — rate from `(ℓ, a)` to `(ℓ+1, b)`;
    /// * `local(ℓ, a, b)` — rate from `(ℓ, a)` to `(ℓ, b)` (`a ≠ b`);
    /// * `down(ℓ, a, b)` — rate from `(ℓ, a)` to `(ℓ−1, b)` (unused at
    ///   `ℓ = 0`).
    ///
    /// Levels `0..boundary_levels-1` form the level-dependent boundary; the
    /// repeating blocks `(A0, A1, A2)` are sampled at
    /// `level = boundary_levels`, so the closures **must** be
    /// level-independent from there on (this is what "level-homogeneous"
    /// means; [`Qbd::new`] still validates shapes and nonnegativity, and a
    /// debug assertion cross-checks homogeneity one level deeper). This is
    /// the generator behind the policy-generic analysis in `eirs-core`:
    /// an allocation policy's `(π_I, π_E)` map becomes service rates, and
    /// this builder turns them into QBD blocks.
    pub fn from_rate_fns(
        phases: usize,
        boundary_levels: usize,
        up: impl Fn(usize, usize, usize) -> f64,
        local: impl Fn(usize, usize, usize) -> f64,
        down: impl Fn(usize, usize, usize) -> f64,
    ) -> Result<Self, QbdError> {
        if phases == 0 {
            return Err(QbdError::Dimension("need at least one phase".into()));
        }
        if boundary_levels == 0 {
            return Err(QbdError::Dimension(
                "need at least one boundary level".into(),
            ));
        }
        let fill = |f: &dyn Fn(usize, usize, usize) -> f64, level: usize| {
            let mut m = Matrix::zeros(phases, phases);
            for a in 0..phases {
                for b in 0..phases {
                    let v = f(level, a, b);
                    if v != 0.0 {
                        m[(a, b)] = v;
                    }
                }
            }
            m
        };
        let boundary_up: Vec<Matrix> = (0..boundary_levels).map(|l| fill(&up, l)).collect();
        let boundary_local: Vec<Matrix> = (0..boundary_levels).map(|l| fill(&local, l)).collect();
        let boundary_down: Vec<Matrix> = (1..boundary_levels).map(|l| fill(&down, l)).collect();
        let m = boundary_levels;
        let a0 = fill(&up, m);
        let a1 = fill(&local, m);
        let a2 = fill(&down, m);
        debug_assert!(
            {
                let next = m + 1;
                fill(&up, next) == a0 && fill(&local, next) == a1 && fill(&down, next) == a2
            },
            "rate map is not level-homogeneous beyond the boundary"
        );
        Self::new(boundary_up, boundary_local, boundary_down, a0, a1, a2)
    }

    /// Assembles the classical **MAP/PH/1** queue as a QBD: arrivals from a
    /// Markovian arrival process `(d0, d1)` on `p_a` phases, service times
    /// phase-type `PH(alpha, s)` on `p_s` phases, one server.
    ///
    /// Level `n` is the number of jobs in system; the phase is the pair
    /// (arrival phase `m`, service phase `j`), indexed `m·p_s + j`:
    ///
    /// * **up** — an arrival transition `d1[m][m']` (service phase kept);
    /// * **local** — a silent arrival-phase change `d0[m][m']` or an
    ///   internal service transition `s[j][j']` (at level 0 nothing is in
    ///   service, so only the arrival part runs);
    /// * **down** — a service completion `s⁰[j]·alpha[j']`, pre-drawing
    ///   the next job's initial service phase from `alpha`.
    ///
    /// The chain is level-homogeneous from level 1, so the boundary is a
    /// single level. Takes raw matrices (this crate is deliberately
    /// independent of `eirs_queueing`); `eirs_core::scenario` wires
    /// `MapProcess` and `PhaseType` values into it for the analytically
    /// tractable workload scenarios.
    pub fn map_ph1(d0: &Matrix, d1: &Matrix, alpha: &[f64], s: &Matrix) -> Result<Self, QbdError> {
        let p_a = d0.rows();
        let p_s = alpha.len();
        if !d0.is_square() || !d1.is_square() || d1.rows() != p_a {
            return Err(QbdError::Dimension("D0/D1 must be square and equal".into()));
        }
        if !s.is_square() || s.rows() != p_s {
            return Err(QbdError::Dimension(
                "service sub-generator must be p_s x p_s".into(),
            ));
        }
        if p_a == 0 || p_s == 0 {
            return Err(QbdError::Dimension("need at least one phase".into()));
        }
        let alpha_sum: f64 = alpha.iter().sum();
        if (alpha_sum - 1.0).abs() > 1e-9 || alpha.iter().any(|&a| a < 0.0) {
            return Err(QbdError::Dimension(
                "alpha must be a probability distribution".into(),
            ));
        }
        // Absorption (completion) rate out of each service phase.
        let exit: Vec<f64> = (0..p_s)
            .map(|j| -(0..p_s).map(|l| s[(j, l)]).sum::<f64>())
            .collect();
        if exit.iter().any(|&e| e < -1e-9) {
            return Err(QbdError::Dimension(
                "service sub-generator rows must sum <= 0".into(),
            ));
        }
        let phases = p_a * p_s;
        let split = |idx: usize| (idx / p_s, idx % p_s);
        Self::from_rate_fns(
            phases,
            1,
            |_, a, b| {
                let ((m, j), (m2, j2)) = (split(a), split(b));
                if j == j2 {
                    d1[(m, m2)]
                } else {
                    0.0
                }
            },
            |level, a, b| {
                if a == b {
                    return 0.0;
                }
                let ((m, j), (m2, j2)) = (split(a), split(b));
                if j == j2 && m != m2 {
                    d0[(m, m2)]
                } else if m == m2 && level >= 1 {
                    // Internal service transition; frozen below level 1.
                    s[(j, j2)]
                } else {
                    0.0
                }
            },
            |_, a, b| {
                let ((m, j), (m2, j2)) = (split(a), split(b));
                if m == m2 {
                    exit[j].max(0.0) * alpha[j2]
                } else {
                    0.0
                }
            },
        )
    }

    /// Phase dimension `p`.
    pub fn phases(&self) -> usize {
        self.a0.rows()
    }

    /// Number of boundary levels `m` (levels `0..m-1`; level `m` repeats).
    pub fn boundary_levels(&self) -> usize {
        self.boundary_local.len()
    }

    /// The repeating local block with its diagonal filled in:
    /// `Â1 = A1 − diag(rowsums(A0 + A1 + A2))`.
    fn a1_hat(&self) -> Matrix {
        let p = self.phases();
        let mut a1h = self.a1.clone();
        for i in 0..p {
            let exit: f64 = self.a0.row(i).iter().sum::<f64>()
                + self.a1.row(i).iter().sum::<f64>()
                + self.a2.row(i).iter().sum::<f64>();
            a1h[(i, i)] -= exit;
        }
        a1h
    }

    /// Computes the rate matrix `R` with the requested algorithm, using a
    /// thread-local pooled workspace: sweep workers that solve thousands
    /// of same-shaped chains through this entry point allocate nothing
    /// per solve after the first.
    pub fn solve_r(&self, solver: RSolver) -> Result<Matrix, QbdError> {
        with_pooled_workspace(self.phases(), |ws| self.solve_r_with_workspace(solver, ws))
    }

    /// Computes the rate matrix `R`, reusing `ws` as scratch storage so
    /// that the iteration allocates nothing per step. This is the hot path
    /// behind every figure sweep; callers solving many QBDs of the same
    /// phase dimension should reuse one workspace across solves.
    pub fn solve_r_with_workspace(
        &self,
        solver: RSolver,
        ws: &mut QbdWorkspace,
    ) -> Result<Matrix, QbdError> {
        let a1h = self.a1_hat();
        self.solve_r_with_workspace_prepared(&a1h, solver, ws)
    }

    /// [`Qbd::solve_r_with_workspace`] with `Â1` already computed — the
    /// warm path hands its copy through here on fallback instead of
    /// rebuilding it.
    fn solve_r_with_workspace_prepared(
        &self,
        a1h: &Matrix,
        solver: RSolver,
        ws: &mut QbdWorkspace,
    ) -> Result<Matrix, QbdError> {
        C_COLD_SOLVES.inc();
        ws.reset(self.phases());
        let r = match solver {
            RSolver::FixedPoint => self.r_fixed_point(a1h, ws)?,
            RSolver::LogarithmicReduction => self.r_logarithmic_reduction(a1h, ws)?,
        };
        // Positive recurrence check: sp(R) < 1.
        if let Err(sp) = certify_stable_r(&r, &mut ws.pv, &mut ws.pw) {
            return Err(QbdError::Unstable {
                spectral_radius: sp,
            });
        }
        Ok(r)
    }

    /// Computes `R` **warm-started** from `prev_r`, the solved rate matrix
    /// of a neighboring parameter point (e.g. the previous cell of a sweep
    /// row). Uses a thread-local pooled workspace.
    ///
    /// The warm path refines `prev_r` through the fixed-point map
    /// `R ← C0 + R²C2` (whose constants are entrywise nonnegative, so the
    /// iterates stay nonnegative from any nonnegative seed) and accepts the
    /// result only when it converges, satisfies the defining equation
    /// tightly, and has `sp(R) < 1` — the unique nonnegative solution with
    /// spectral radius below one *is* the minimal solution, so a validated
    /// warm result equals the cold one to solver tolerance (property-tested
    /// across a `(k, ρ)` grid). Any failure — wrong shape, negative or
    /// non-finite seed entries, divergence, loose residual — falls back to
    /// the cold `solver` path, so the error behavior (notably
    /// [`QbdError::Unstable`]) is identical to [`Qbd::solve_r`].
    pub fn solve_r_warm(&self, prev_r: &Matrix, solver: RSolver) -> Result<Matrix, QbdError> {
        with_pooled_workspace(self.phases(), |ws| {
            self.solve_r_warm_with_workspace(prev_r, solver, ws)
        })
    }

    /// [`Qbd::solve_r_warm`] with an explicit workspace.
    pub fn solve_r_warm_with_workspace(
        &self,
        prev_r: &Matrix,
        solver: RSolver,
        ws: &mut QbdWorkspace,
    ) -> Result<Matrix, QbdError> {
        let p = self.phases();
        let usable = prev_r.rows() == p
            && prev_r.cols() == p
            && prev_r.as_slice().iter().all(|&v| v.is_finite() && v >= 0.0);
        if usable {
            C_WARM_ATTEMPTS.inc();
            let a1h = self.a1_hat();
            ws.reset(p);
            // Chains whose down block has a single nonzero column (the
            // elastic-first family: every elastic departure re-enters the
            // same phase) admit a rank-1 reduction of the R equation that
            // converges quadratically from the neighbor's seed. Everything
            // else refines the seed through the fixed-point map, which
            // bails early when the seed is too far off to beat a cold
            // solve.
            let rank1_column = self.single_nonzero_a2_column();
            let refined = match rank1_column {
                Some(j) => self.r_rank1_newton(&a1h, j, prev_r, ws),
                None => self.r_warm_refine(&a1h, prev_r, ws),
            };
            if let Some(r) = refined {
                if certify_stable_r(&r, &mut ws.pv, &mut ws.pw).is_ok() {
                    match rank1_column {
                        Some(_) => C_WARM_RANK1_ACCEPTED.inc(),
                        None => C_WARM_REFINE_ACCEPTED.inc(),
                    }
                    return Ok(r);
                }
                C_WARM_CERTIFY_REJECTS.inc();
            }
            C_WARM_FALLBACK_COLD.inc();
            return self.solve_r_with_workspace_prepared(&a1h, solver, ws);
        }
        C_WARM_SEED_UNUSABLE.inc();
        self.solve_r_with_workspace(solver, ws)
    }

    /// Index of the single column of `A2` containing any nonzero entry, or
    /// `None` when the down block has zero or several nonzero columns.
    /// This is the structural precondition for [`Qbd::r_rank1_newton`].
    fn single_nonzero_a2_column(&self) -> Option<usize> {
        let p = self.phases();
        let mut found = None;
        for j in 0..p {
            if (0..p).any(|i| self.a2[(i, j)] != 0.0) {
                if found.is_some() {
                    return None;
                }
                found = Some(j);
            }
        }
        found
    }

    /// Warm R solve for chains whose `A2` has a single nonzero column `j`.
    ///
    /// With `a = A2·eⱼ`, the product `R·A2` is the rank-1 matrix
    /// `u·eⱼᵀ` (`u = R·a`), so `R = A0·(−Â1 − u·eⱼᵀ)^{-1}` and
    /// Sherman–Morrison collapses the quadratic matrix equation to a
    /// *scalar* root-find: writing `H = Â1^{-1}`, `w = H·a`, `α = wⱼ`, the
    /// unknown `β = (H·u)ⱼ` solves `g(β) = v(β)ⱼ − β = 0`, where `v(β)` is
    /// the solution of `(Â1 − α/(1+β)·A0)·v = −A0·w`. Newton's method on
    /// `g` reuses each step's LU for the derivative solve, and the
    /// neighbor's solved `R` seeds `β`, so convergence takes ~4–6 steps of
    /// one small refactorization plus two triangular solves each —
    /// independent of how slowly the generic fixed point would mix.
    ///
    /// The scalar equation has one root per solution of the quadratic
    /// matrix equation, and the minimal (stable) `R` corresponds to the
    /// *largest* root: `H = Â1^{-1}` is entrywise nonpositive, so `β`
    /// decreases as `R` grows, and near saturation the stable root and the
    /// companion `sp(R) = 1` root sit close together. A neighbor-seeded
    /// Newton can land on the wrong one, so every converged root is
    /// certified (`sp(R) < 1` plus a tight residual of the full quadratic
    /// equation) before acceptance; a rejected root triggers one retry
    /// from `β = 0`, which descends to the largest root. Any remaining
    /// failure returns `None` and the caller falls back cold — the same
    /// contract as every warm path, so a certified result matches the
    /// cold solver to solver tolerance.
    fn r_rank1_newton(
        &self,
        a1h: &Matrix,
        j: usize,
        seed: &Matrix,
        ws: &mut QbdWorkspace,
    ) -> Option<Matrix> {
        let p = self.phases();
        // H = Â1^{-1}, w = H·a, α = wⱼ.
        ws.lu.refactor(a1h).ok()?;
        ws.lu.inverse_into(&mut ws.w, &mut ws.col).ok()?;
        for i in 0..p {
            ws.rv[i] = self.a2[(i, j)];
        }
        for i in 0..p {
            let mut s = 0.0;
            for (hk, ak) in ws.w.row(i).iter().zip(ws.rv.iter()) {
                s += hk * ak;
            }
            ws.rw[i] = s;
        }
        let alpha = ws.rw[j];
        // Seed β from the neighbor: u₀ = R_seed·a, β₀ = (H·u₀)ⱼ.
        let mut beta_seed = {
            for i in 0..p {
                let mut s = 0.0;
                for (rk, ak) in seed.row(i).iter().zip(ws.rv.iter()) {
                    s += rk * ak;
                }
                ws.col[i] = s;
            }
            let mut s = 0.0;
            for (hk, uk) in ws.w.row(j).iter().zip(ws.col.iter()) {
                s += hk * uk;
            }
            s
        };
        if !beta_seed.is_finite() {
            beta_seed = 0.0;
        }
        let mut start = beta_seed;
        loop {
            if let Some(beta) = self.r_rank1_newton_root(a1h, j, alpha, start, ws) {
                // R = −A0·H + (A0·v)·H[j,·]/(1+β), with v = v(β) in ws.rx.
                self.a0.mul_into(&ws.w, &mut ws.r);
                ws.r.scale_mut(-1.0);
                for i in 0..p {
                    let mut s = 0.0;
                    for (ak, vk) in self.a0.row(i).iter().zip(ws.rx.iter()) {
                        s += ak * vk;
                    }
                    ws.pv[i] = s / (1.0 + beta);
                }
                for i in 0..p {
                    let coef = ws.pv[i];
                    for (rij, hjk) in ws.r.row_mut(i).iter_mut().zip(ws.w.row(j).iter()) {
                        *rij += coef * hjk;
                    }
                }
                let residual = self.r_residual_with(a1h, ws);
                if ws.r.is_finite()
                    && residual.is_finite()
                    && residual < 1e-9 * (1.0 + a1h.max_abs())
                    && certify_stable_r(&ws.r, &mut ws.pv, &mut ws.pw).is_ok()
                {
                    return Some(ws.r.clone());
                }
            }
            if start == 0.0 {
                return None;
            }
            C_WARM_RANK1_RETRIES.inc();
            start = 0.0;
        }
    }

    /// One Newton run for [`Qbd::r_rank1_newton`] from `start`: returns
    /// the converged root `β` (leaving `v(β)` in `ws.rx`), or `None` if
    /// the iteration leaves the domain or fails to converge. Each step
    /// factors `S = Â1 − α/(1+β)·A0` once and reuses the LU for both the
    /// function and derivative solves.
    fn r_rank1_newton_root(
        &self,
        a1h: &Matrix,
        j: usize,
        alpha: f64,
        start: f64,
        ws: &mut QbdWorkspace,
    ) -> Option<f64> {
        let p = self.phases();
        let mut beta = start;
        for _ in 0..24 {
            C_WARM_NEWTON_ITER.inc();
            let denom = 1.0 + beta;
            if denom.abs() <= 1e-8 {
                return None;
            }
            let c = alpha / denom;
            ws.scratch.copy_from(a1h);
            ws.scratch.add_assign_scaled(&self.a0, -c);
            ws.lu.refactor(&ws.scratch).ok()?;
            // v solves S·v = −A0·w.
            for i in 0..p {
                let mut s = 0.0;
                for (ak, wk) in self.a0.row(i).iter().zip(ws.rw.iter()) {
                    s += ak * wk;
                }
                ws.col[i] = -s;
            }
            ws.lu.solve_into(&ws.col, &mut ws.rx).ok()?;
            let g = ws.rx[j] - beta;
            if !g.is_finite() {
                return None;
            }
            if g.abs() <= 1e-13 * (1.0 + beta.abs()) {
                return Some(beta);
            }
            // g'(β) = −α/(1+β)² · (S^{-1}·A0·v)ⱼ − 1, on the same LU.
            for i in 0..p {
                let mut s = 0.0;
                for (ak, vk) in self.a0.row(i).iter().zip(ws.rx.iter()) {
                    s += ak * vk;
                }
                ws.pv[i] = s;
            }
            ws.lu.solve_into(&ws.pv, &mut ws.pw).ok()?;
            let gp = -alpha / (denom * denom) * ws.pw[j] - 1.0;
            if !gp.is_finite() || gp == 0.0 {
                return None;
            }
            let next = beta - g / gp;
            if !next.is_finite() {
                return None;
            }
            beta = next;
        }
        None
    }

    /// Fixed-point refinement from a nonnegative seed. Returns `None`
    /// unless the iteration converges *and* the residual certifies the
    /// fixed point (warm acceptance is stricter than the cold path — a bad
    /// seed must never produce a silently wrong `R`).
    fn r_warm_refine(&self, a1h: &Matrix, seed: &Matrix, ws: &mut QbdWorkspace) -> Option<Matrix> {
        ws.r.copy_from(seed);
        // Hopeless-seed pre-check, before paying for the LU and inverse of
        // Â1: the first refinement step is `step = −(A0 + R Â1 + R² A2)
        // Â1⁻¹`, so a seed whose raw residual is already large (relative
        // to ‖Â1‖, which bounds the inverse's attenuation from below by
        // 1/cond) can only produce a first-step diff far above the bail
        // threshold below. Three matrix products decide that here at a
        // small fraction of the setup cost; coarse-step sweep seeds — the
        // common miss — exit through this path. Borderline seeds fall
        // through and are still caught by the `it == 0` bail.
        let residual = self.r_residual_with(a1h, ws);
        if !(residual.is_finite() && residual < 1e-4 * (1.0 + a1h.max_abs())) {
            return None;
        }
        ws.lu.refactor(a1h).ok()?;
        ws.lu.inverse_into(&mut ws.w, &mut ws.col).ok()?;
        self.a0.mul_into(&ws.w, &mut ws.c0);
        ws.c0.scale_mut(-1.0);
        self.a2.mul_into(&ws.w, &mut ws.c2);
        ws.c2.scale_mut(-1.0);

        // The refinement map contracts linearly, so its measured rate θ
        // projects the total iteration count; a seed that projects past
        // the budget cannot beat the cold solver (logarithmic reduction
        // converges quadratically — at sweep phase dimensions the whole
        // cold solve costs what a few dozen fixed-point steps do), so the
        // refine gives up within ~1µs instead of grinding out hundreds of
        // linear-rate steps. The rate is re-estimated over an 8-step
        // window at each checkpoint because the first steps contract
        // faster than the asymptotic rate — a single early ratio projects
        // far too optimistically. Dense-step sweeps, where the seed is
        // genuinely close, converge inside the budget and warm-hit.
        const WARM_BUDGET: usize = 32;
        let mut window_diff = f64::INFINITY;
        for it in 0..WARM_BUDGET {
            C_WARM_REFINE_ITER.inc();
            Matrix::mul_into(&ws.r, &ws.r, &mut ws.m0);
            ws.m0.mul_into(&ws.c2, &mut ws.m2);
            ws.next.copy_from(&ws.c0);
            ws.next.add_assign(&ws.m2);
            let diff = ws.next.max_abs_diff(&ws.r);
            std::mem::swap(&mut ws.r, &mut ws.next);
            // Finiteness and magnitude must be checked BEFORE the
            // convergence test: `max_abs_diff` (a fold over `f64::max`)
            // silently drops NaN entries, so a diverged iterate would
            // otherwise read as diff = 0 and be "converged". A seed
            // outside the fixed point's basin of attraction blows up
            // geometrically — bail as soon as the iterate leaves any
            // plausible range for a stable chain's R.
            if !ws.r.is_finite() || ws.r.max_abs() > 1e6 {
                return None;
            }
            if diff < 1e-14 {
                let residual = self.r_residual_with(a1h, ws);
                if residual.is_finite() && residual < 1e-9 * (1.0 + a1h.max_abs()) {
                    return Some(ws.r.clone());
                }
                return None;
            }
            if it == 0 {
                // A linear-rate iteration needs θ below ~0.5 to close more
                // than six decades inside the budget; seeds displaced more
                // than this after one step never do on real chains, so the
                // refine gives up after a single ~0.3µs step rather than
                // paying nine before the first windowed projection.
                if diff > 1e-6 {
                    return None;
                }
                window_diff = diff;
            } else if it % 8 == 1 {
                let span = if it == 1 { 1.0 } else { 8.0 };
                let theta = (diff / window_diff).powf(1.0 / span);
                // NaN thetas/projections (stalled diff, 0/0) must bail too.
                if theta.is_nan() || theta >= 1.0 {
                    return None;
                }
                let projected = (1e-14_f64 / diff).ln() / theta.ln();
                if projected.is_nan() || projected > (WARM_BUDGET - 1 - it) as f64 {
                    return None;
                }
                window_diff = diff;
            }
        }
        None
    }

    /// Computes `R` with the original allocation-per-step implementation.
    ///
    /// Kept as an independent reference for differential tests (the
    /// workspace path must reproduce it bit for bit) and for the
    /// `sweep_speedup` benchmark that records the speedup of the
    /// allocation-free path. Not for production use.
    pub fn solve_r_reference(&self, solver: RSolver) -> Result<Matrix, QbdError> {
        let a1h = self.a1_hat();
        let r = match solver {
            RSolver::FixedPoint => self.r_fixed_point_reference(&a1h)?,
            RSolver::LogarithmicReduction => self.r_logarithmic_reduction_reference(&a1h)?,
        };
        let sp = spectral_radius_estimate(&r);
        if sp >= 1.0 - 1e-10 {
            return Err(QbdError::Unstable {
                spectral_radius: sp,
            });
        }
        Ok(r)
    }

    /// Fixed point `R ← C0 + R² C2` with `C0 = −A0 Â1^{-1}`,
    /// `C2 = −A2 Â1^{-1}`. The constant `Â1` is LU-factored exactly once,
    /// before the loop; each iteration then runs entirely in workspace
    /// buffers (two `mul_into`, one copy, one AXPY — zero allocations).
    fn r_fixed_point(&self, a1h: &Matrix, ws: &mut QbdWorkspace) -> Result<Matrix, QbdError> {
        // One-time factorization of the constant Â1, done before the loop.
        ws.lu.refactor(a1h)?;
        ws.lu.inverse_into(&mut ws.w, &mut ws.col)?;
        // C0 = −A0 Â1^{-1}, C2 = −A2 Â1^{-1}: the loop constants.
        self.a0.mul_into(&ws.w, &mut ws.c0);
        ws.c0.scale_mut(-1.0);
        self.a2.mul_into(&ws.w, &mut ws.c2);
        ws.c2.scale_mut(-1.0);

        ws.r.fill(0.0);
        let max_iter = 500_000;
        for it in 0..max_iter {
            C_COLD_ITER.inc();
            // R² into m0, then (R²)C2 into m2, then next = C0 + R²C2.
            Matrix::mul_into(&ws.r, &ws.r, &mut ws.m0);
            ws.m0.mul_into(&ws.c2, &mut ws.m2);
            ws.next.copy_from(&ws.c0);
            ws.next.add_assign(&ws.m2);
            let diff = ws.next.max_abs_diff(&ws.r);
            std::mem::swap(&mut ws.r, &mut ws.next);
            if diff < 1e-14 {
                return Ok(ws.r.clone());
            }
            if !ws.r.is_finite() {
                return Err(QbdError::NotConverged {
                    iterations: it,
                    residual: f64::INFINITY,
                });
            }
        }
        let residual = self.r_residual_with(a1h, ws);
        // Accept a slightly loose fixed point only if the defining equation
        // is satisfied tightly.
        if residual < 1e-9 {
            Ok(ws.r.clone())
        } else {
            Err(QbdError::NotConverged {
                iterations: max_iter,
                residual,
            })
        }
    }

    /// Reference implementation of [`Qbd::r_fixed_point`] (allocating).
    fn r_fixed_point_reference(&self, a1h: &Matrix) -> Result<Matrix, QbdError> {
        let p = self.phases();
        let a1h_inv = LuDecomposition::new(a1h)?.inverse()?;
        // R ← C0 + R² C2 with C0 = −A0 Â1^{-1}, C2 = −A2 Â1^{-1}.
        let c0 = -&self.a0.matmul(&a1h_inv);
        let c2 = -&self.a2.matmul(&a1h_inv);
        let mut r = Matrix::zeros(p, p);
        let max_iter = 500_000;
        for it in 0..max_iter {
            let r2 = r.matmul(&r);
            let next = &c0 + &r2.matmul(&c2);
            let diff = next.max_abs_diff(&r);
            r = next;
            if diff < 1e-14 {
                return Ok(r);
            }
            if !r.is_finite() {
                return Err(QbdError::NotConverged {
                    iterations: it,
                    residual: f64::INFINITY,
                });
            }
        }
        let residual = self.r_residual(&r, a1h);
        if residual < 1e-9 {
            Ok(r)
        } else {
            Err(QbdError::NotConverged {
                iterations: max_iter,
                residual,
            })
        }
    }

    /// Latouche–Ramaswami logarithmic reduction in workspace buffers: each
    /// of the ~`log₂(1/ε)` iterations performs six `mul_into`, one LU
    /// refactorization into reused storage, and one in-place inverse —
    /// zero allocations per step.
    fn r_logarithmic_reduction(
        &self,
        a1h: &Matrix,
        ws: &mut QbdWorkspace,
    ) -> Result<Matrix, QbdError> {
        // (−Â1)^{-1}, factored into the workspace decomposition.
        ws.scratch.copy_from(a1h);
        ws.scratch.scale_mut(-1.0);
        ws.lu.refactor(&ws.scratch)?;
        ws.lu.inverse_into(&mut ws.w, &mut ws.col)?;
        // Probabilistic blocks: B0 = (−Â1)^{-1} A0, B2 = (−Â1)^{-1} A2.
        ws.w.mul_into(&self.a0, &mut ws.b0);
        ws.w.mul_into(&self.a2, &mut ws.b2);
        ws.g.copy_from(&ws.b2);
        ws.t.copy_from(&ws.b0);
        ws.identity.set_identity();
        let max_iter = 200;
        for _ in 0..max_iter {
            C_COLD_ITER.inc();
            // U = B0 B2 + B2 B0.
            ws.b0.mul_into(&ws.b2, &mut ws.u);
            ws.b2.mul_into(&ws.b0, &mut ws.tmp);
            ws.u.add_assign(&ws.tmp);
            // M0 = B0², M2 = B2².
            ws.b0.mul_into(&ws.b0, &mut ws.m0);
            ws.b2.mul_into(&ws.b2, &mut ws.m2);
            // W = (I − U)^{-1}, then B0 ← W M0, B2 ← W M2. (Explicit
            // inverse + matmul beats direct LU solves here: at these block
            // sizes the vectorized matmul outruns sequential substitution,
            // and it keeps the path bit-identical to the reference.)
            ws.identity.sub_into(&ws.u, &mut ws.scratch);
            ws.lu.refactor(&ws.scratch)?;
            ws.lu.inverse_into(&mut ws.w, &mut ws.col)?;
            ws.w.mul_into(&ws.m0, &mut ws.b0);
            ws.w.mul_into(&ws.m2, &mut ws.b2);
            // G ← G + T B2,  T ← T B0.
            ws.t.mul_into(&ws.b2, &mut ws.tmp);
            ws.g.add_assign(&ws.tmp);
            let increment_max = ws.tmp.max_abs();
            ws.t.mul_into(&ws.b0, &mut ws.next);
            std::mem::swap(&mut ws.t, &mut ws.next);
            if ws.t.max_abs() < 1e-15 || increment_max < 1e-15 {
                break;
            }
            // For nearly-unstable chains logarithmic reduction can stall;
            // the residual check below catches a bad G either way.
        }
        // R = A0 · (−(Â1 + A0 G))^{-1}.
        self.a0.mul_into(&ws.g, &mut ws.tmp);
        ws.scratch.copy_from(a1h);
        ws.scratch.add_assign(&ws.tmp);
        ws.scratch.scale_mut(-1.0);
        ws.lu.refactor(&ws.scratch)?;
        ws.lu.inverse_into(&mut ws.w, &mut ws.col)?;
        self.a0.mul_into(&ws.w, &mut ws.r);
        let residual = self.r_residual_with(a1h, ws);
        if residual > 1e-8 * (1.0 + a1h.max_abs()) {
            return Err(QbdError::NotConverged {
                iterations: max_iter,
                residual,
            });
        }
        Ok(ws.r.clone())
    }

    /// Reference implementation of [`Qbd::r_logarithmic_reduction`]
    /// (allocating).
    fn r_logarithmic_reduction_reference(&self, a1h: &Matrix) -> Result<Matrix, QbdError> {
        let p = self.phases();
        let neg_a1h_inv = LuDecomposition::new(&(-a1h))?.inverse()?;
        // Probabilistic blocks: B0 = (−Â1)^{-1} A0, B2 = (−Â1)^{-1} A2.
        let mut b0 = neg_a1h_inv.matmul(&self.a0);
        let mut b2 = neg_a1h_inv.matmul(&self.a2);
        let mut g = b2.clone();
        let mut t = b0.clone();
        let identity = Matrix::identity(p);
        let max_iter = 200;
        for _ in 0..max_iter {
            let u = &b0.matmul(&b2) + &b2.matmul(&b0);
            let m0 = b0.matmul(&b0);
            let m2 = b2.matmul(&b2);
            let w = LuDecomposition::new(&(&identity - &u))?.inverse()?;
            b0 = w.matmul(&m0);
            b2 = w.matmul(&m2);
            let increment = t.matmul(&b2);
            g = &g + &increment;
            t = t.matmul(&b0);
            if t.max_abs() < 1e-15 || increment.max_abs() < 1e-15 {
                break;
            }
        }
        // R = A0 · (−(Â1 + A0 G))^{-1}.
        let inner = -&(a1h + &self.a0.matmul(&g));
        let inner_inv = LuDecomposition::new(&inner)?.inverse()?;
        let r = self.a0.matmul(&inner_inv);
        let residual = self.r_residual(&r, a1h);
        if residual > 1e-8 * (1.0 + a1h.max_abs()) {
            return Err(QbdError::NotConverged {
                iterations: max_iter,
                residual,
            });
        }
        Ok(r)
    }

    /// `‖A0 + RÂ1 + R²A2‖_max`, the defect of the R equation.
    fn r_residual(&self, r: &Matrix, a1h: &Matrix) -> f64 {
        let lhs = &(&self.a0 + &r.matmul(a1h)) + &r.matmul(r).matmul(&self.a2);
        lhs.max_abs()
    }

    /// [`Qbd::r_residual`] on `ws.r`, evaluated entirely in workspace
    /// buffers (same operations, same order, zero allocations).
    fn r_residual_with(&self, a1h: &Matrix, ws: &mut QbdWorkspace) -> f64 {
        ws.r.mul_into(a1h, &mut ws.m0); // R Â1
        Matrix::mul_into(&ws.r, &ws.r, &mut ws.m2); // R²
        ws.m2.mul_into(&self.a2, &mut ws.next); // R² A2
        ws.scratch.copy_from(&self.a0);
        ws.scratch.add_assign(&ws.m0);
        ws.scratch.add_assign(&ws.next);
        ws.scratch.max_abs()
    }

    /// Solves the QBD: computes `R`, the boundary probabilities, and wraps
    /// them in a [`QbdSolution`]. Runs on a thread-local pooled workspace,
    /// so repeated solves of same-shaped chains allocate only the returned
    /// solution.
    pub fn solve(&self) -> Result<QbdSolution, QbdError> {
        self.solve_with(RSolver::default())
    }

    /// Like [`Qbd::solve`] but with an explicit choice of R algorithm.
    pub fn solve_with(&self, solver: RSolver) -> Result<QbdSolution, QbdError> {
        with_pooled_workspace(self.phases(), |ws| self.solve_with_workspace(solver, ws))
    }

    /// Like [`Qbd::solve_with`], reusing `ws` for the R iteration and
    /// boundary-system scratch — the path for sweeps that solve many
    /// same-dimension chains.
    pub fn solve_with_workspace(
        &self,
        solver: RSolver,
        ws: &mut QbdWorkspace,
    ) -> Result<QbdSolution, QbdError> {
        let r = self.solve_r_with_workspace(solver, ws)?;
        self.boundary_solution(r, ws)
    }

    /// Warm-started [`Qbd::solve`]: seeds the R computation from `prev_r`
    /// via [`Qbd::solve_r_warm`] (cold fallback included), then runs the
    /// same boundary solve. Pooled workspace; this is the per-cell entry
    /// point of the warm sweep chains in `eirs-core`.
    pub fn solve_warm(&self, prev_r: &Matrix) -> Result<QbdSolution, QbdError> {
        with_pooled_workspace(self.phases(), |ws| {
            self.solve_warm_with_workspace(prev_r, RSolver::default(), ws)
        })
    }

    /// [`Qbd::solve_warm`] with an explicit cold-fallback algorithm and
    /// workspace.
    pub fn solve_warm_with_workspace(
        &self,
        prev_r: &Matrix,
        solver: RSolver,
        ws: &mut QbdWorkspace,
    ) -> Result<QbdSolution, QbdError> {
        let r = self.solve_r_warm_with_workspace(prev_r, solver, ws)?;
        self.boundary_solution(r, ws)
    }

    /// Boundary balance solve for a computed `R`: assembles the transposed
    /// balance system directly into the workspace's boundary scratch (same
    /// accumulation order per entry as the historical row-major build, so
    /// the solution is bit-identical to it) and solves it through the
    /// workspace LU storage — zero allocations beyond the returned
    /// [`QbdSolution`].
    fn boundary_solution(&self, r: Matrix, ws: &mut QbdWorkspace) -> Result<QbdSolution, QbdError> {
        let p = self.phases();
        let m = self.boundary_levels();
        let a1h = self.a1_hat();

        // (I − R)^{-1}, factored through the workspace LU storage.
        ws.identity.set_identity();
        ws.identity.sub_into(&r, &mut ws.scratch);
        ws.lu.refactor(&ws.scratch)?;
        let mut i_minus_r_inv = Matrix::zeros(p, p);
        ws.lu.inverse_into(&mut i_minus_r_inv, &mut ws.col)?;

        // Assemble the boundary balance system over levels 0..=m:
        // unknown row vector x = (π_0, …, π_m), one balance column per
        // state, with column 0 replaced by the normalization equation.
        // Built directly as the transpose Bᵀ (entry (row, col) of the
        // balance matrix lands at (col, row)) since that is the matrix the
        // linear solve factors.
        let n = (m + 1) * p;
        ws.boundary.reset(n);
        let bt = &mut ws.boundary.bt;
        let idx = |level: usize, phase: usize| level * p + phase;

        // Boundary levels 0..m-1.
        for level in 0..m {
            let up = &self.boundary_up[level];
            let local = &self.boundary_local[level];
            let down = if level >= 1 {
                Some(&self.boundary_down[level - 1])
            } else {
                None
            };
            for i in 0..p {
                let mut exit = 0.0;
                for j in 0..p {
                    let u = up[(i, j)];
                    if u != 0.0 {
                        bt[(idx(level + 1, j), idx(level, i))] += u;
                        exit += u;
                    }
                    let l = local[(i, j)];
                    if l != 0.0 && i != j {
                        bt[(idx(level, j), idx(level, i))] += l;
                        exit += l;
                    }
                    if let Some(d) = down {
                        let dv = d[(i, j)];
                        if dv != 0.0 {
                            bt[(idx(level - 1, j), idx(level, i))] += dv;
                            exit += dv;
                        }
                    }
                }
                bt[(idx(level, i), idx(level, i))] -= exit;
            }
        }
        // Level m: local part Â1 + R·A2 (the R closure of π_{m+1} A2), plus
        // the physical A2 flow down into level m-1.
        r.mul_into(&self.a2, &mut ws.tmp);
        for i in 0..p {
            for j in 0..p {
                let v = a1h[(i, j)] + ws.tmp[(i, j)];
                if v != 0.0 {
                    bt[(idx(m, j), idx(m, i))] += v;
                }
                let d = self.a2[(i, j)];
                if d != 0.0 {
                    bt[(idx(m - 1, j), idx(m, i))] += d;
                }
            }
        }

        // Replace the column of state (0,0) — row 0 of Bᵀ — with
        // normalization coefficients:
        // Σ_{ℓ<m} π_ℓ·1 + π_m (I−R)^{-1}·1 = 1.
        let tail_weights = i_minus_r_inv.row_sums();
        for level in 0..m {
            for i in 0..p {
                bt[(0, idx(level, i))] = 1.0;
            }
        }
        for i in 0..p {
            bt[(0, idx(m, i))] = tail_weights[i];
        }

        // Solve xᵀ from Bᵀ xᵀ = e_0.
        let boundary = &mut ws.boundary;
        boundary.lu.refactor(&boundary.bt)?;
        boundary.rhs.fill(0.0);
        boundary.rhs[0] = 1.0;
        boundary.lu.solve_into(&boundary.rhs, &mut boundary.x)?;
        let mut x = boundary.x.clone();
        // Numerical noise can leave tiny negative entries; clamp them.
        for v in &mut x {
            if *v < 0.0 {
                debug_assert!(
                    *v > -1e-8,
                    "boundary solve produced negative probability {v}"
                );
                *v = 0.0;
            }
        }
        Ok(QbdSolution {
            p,
            m,
            boundary: x,
            r,
            i_minus_r_inv,
        })
    }
}

/// Reusable scratch storage for the QBD `R`-matrix iterations.
///
/// Holds every intermediate the fixed-point and logarithmic-reduction
/// algorithms need — matrices, an LU factorization with reusable storage,
/// and a substitution column — so that a solve performs **zero heap
/// allocations per iteration**. Construct once and pass to
/// [`Qbd::solve_r_with_workspace`] (or let [`Qbd::solve_r`] build a
/// throwaway one); a workspace automatically regrows when handed a chain
/// with a different phase dimension.
#[derive(Debug, Clone)]
pub struct QbdWorkspace {
    p: usize,
    lu: LuDecomposition,
    col: Vec<f64>,
    pv: Vec<f64>,
    pw: Vec<f64>,
    /// Rank-1 warm-solver vectors: `a`/`w`/`v` of [`Qbd::r_rank1_newton`].
    rv: Vec<f64>,
    rw: Vec<f64>,
    rx: Vec<f64>,
    r: Matrix,
    next: Matrix,
    c0: Matrix,
    c2: Matrix,
    b0: Matrix,
    b2: Matrix,
    g: Matrix,
    t: Matrix,
    u: Matrix,
    tmp: Matrix,
    m0: Matrix,
    m2: Matrix,
    w: Matrix,
    scratch: Matrix,
    identity: Matrix,
    boundary: BoundaryScratch,
}

/// Scratch for the boundary balance solve: the transposed balance matrix,
/// an LU with reusable storage, and solve vectors. Sized by the boundary
/// state count `n = (m + 1) · p`, which is independent of the phase
/// dimension the rest of the workspace is keyed on — so it carries its own
/// size and survives [`QbdWorkspace::reset`].
#[derive(Debug, Clone)]
struct BoundaryScratch {
    n: usize,
    bt: Matrix,
    lu: LuDecomposition,
    rhs: Vec<f64>,
    x: Vec<f64>,
}

impl Default for BoundaryScratch {
    fn default() -> Self {
        Self {
            n: 0,
            bt: Matrix::zeros(1, 1),
            lu: LuDecomposition::identity(1),
            rhs: Vec::new(),
            x: Vec::new(),
        }
    }
}

impl BoundaryScratch {
    /// Sizes the scratch for an `n`-state boundary system and zeroes the
    /// assembly matrix (its entries are accumulated with `+=`).
    fn reset(&mut self, n: usize) {
        if self.n != n {
            self.bt = Matrix::zeros(n, n);
            self.lu = LuDecomposition::identity(n);
            self.rhs = vec![0.0; n];
            self.x = vec![0.0; n];
            self.n = n;
        } else {
            self.bt.fill(0.0);
        }
    }
}

thread_local! {
    /// Per-thread pool of workspaces, keyed by phase dimension. Sweep
    /// cells alternate between chain shapes (the figure-4 grid interleaves
    /// p = 3 elastic-first and p = k + 2 inelastic-first chains), so the
    /// pool keeps one workspace per recently seen dimension instead of
    /// thrashing a single workspace's buffers on every cell.
    static WORKSPACE_POOL: RefCell<Vec<QbdWorkspace>> = const { RefCell::new(Vec::new()) };
}

/// Upper bound on pooled workspaces per thread: enough for every chain
/// shape a mixed sweep touches, small enough to bound retained memory.
const POOL_MAX: usize = 8;

/// Runs `f` with a thread-local pooled [`QbdWorkspace`] sized for `p`
/// phases. The workspace is checked **out** of the pool for the duration
/// of `f` — nested solves each get their own — and offered back after; if
/// no pooled workspace matches the dimension, a fresh one is built rather
/// than resizing one of a dimension other sweep cells still need.
fn with_pooled_workspace<T>(p: usize, f: impl FnOnce(&mut QbdWorkspace) -> T) -> T {
    let pooled = WORKSPACE_POOL.with(|pool| {
        let mut pool = pool.borrow_mut();
        pool.iter()
            .position(|w| w.phases() == p)
            .map(|i| pool.swap_remove(i))
    });
    let mut ws = pooled.unwrap_or_else(|| QbdWorkspace::new(p));
    let out = f(&mut ws);
    WORKSPACE_POOL.with(|pool| {
        let mut pool = pool.borrow_mut();
        if pool.len() < POOL_MAX {
            pool.push(ws);
        }
    });
    out
}

impl QbdWorkspace {
    /// A workspace for chains with phase dimension `p`.
    pub fn new(p: usize) -> Self {
        let z = || Matrix::zeros(p, p);
        Self {
            p,
            lu: LuDecomposition::identity(p.max(1)),
            col: vec![0.0; p],
            pv: vec![0.0; p],
            pw: vec![0.0; p],
            rv: vec![0.0; p],
            rw: vec![0.0; p],
            rx: vec![0.0; p],
            r: z(),
            next: z(),
            c0: z(),
            c2: z(),
            b0: z(),
            b2: z(),
            g: z(),
            t: z(),
            u: z(),
            tmp: z(),
            m0: z(),
            m2: z(),
            w: z(),
            scratch: z(),
            identity: Matrix::identity(p.max(1)),
            boundary: BoundaryScratch::default(),
        }
    }

    /// Phase dimension the buffers are currently sized for.
    pub fn phases(&self) -> usize {
        self.p
    }

    /// Regrows the phase-dimension buffers when the dimension changes.
    /// The boundary scratch is sized separately (by boundary state count)
    /// and is preserved across regrows.
    fn reset(&mut self, p: usize) {
        if self.p != p || self.identity.rows() != p {
            let boundary = std::mem::take(&mut self.boundary);
            *self = Self::new(p);
            self.boundary = boundary;
        }
    }
}

/// Spectral radius estimate by power iteration on |R|.
fn spectral_radius_estimate(r: &Matrix) -> f64 {
    let p = r.rows();
    spectral_radius_estimate_into(r, &mut vec![1.0; p], &mut vec![0.0; p])
}

/// Positive-recurrence certificate for a solved rate matrix: `Ok(())` when
/// `sp(R) < 1 − 1e-10`, `Err(sp_estimate)` otherwise.
///
/// Runs the cheap norm bound first: `sp(R) ≤ ‖R‖∞`, so a maximum absolute
/// row sum under the threshold certifies stability without touching the
/// power iteration — on typical sweep grids this skips 45–140 power steps
/// per solve, a quarter of the whole R-solve cost. The bound is only
/// sufficient (a stable chain can still have `‖R‖∞ ≥ 1`); inconclusive
/// cases fall through to [`spectral_radius_estimate_into`], so the
/// `Unstable` error and its reported estimate are unchanged. `R` itself is
/// never modified, which keeps solve outputs bit-identical to the
/// always-power-iterate history.
fn certify_stable_r(r: &Matrix, v: &mut [f64], w: &mut [f64]) -> Result<(), f64> {
    let norm_inf = (0..r.rows())
        .map(|i| r.row(i).iter().map(|x| x.abs()).sum::<f64>())
        .fold(0.0, f64::max);
    if norm_inf < 1.0 - 1e-10 {
        return Ok(());
    }
    // Collatz–Wielandt early accept: a rate matrix is entrywise
    // nonnegative, and for nonnegative `R` and any strictly positive `v`,
    // `sp(R) ≤ max_i (vᵀR)_i / v_i`. A handful of power steps tighten this
    // rigorous bound far faster than the eigenvector itself converges, so
    // sweep cells whose `R` fails the row-sum shortcut certify in a few
    // mat-vec products instead of O(100) full power steps. Inconclusive
    // after the budget (or an iterate touching zero, where the bound is
    // invalid): fall through to the full estimate, so rejections — and the
    // spectral-radius value they report — are exactly as before.
    if r.as_slice().iter().all(|&x| x >= 0.0) {
        v.fill(1.0);
        for _ in 0..CW_CERT_STEPS {
            r.vecmat_into(v, w);
            let norm = w.iter().fold(0.0f64, |a, &x| a.max(x.abs()));
            if norm == 0.0 {
                // vᵀR = 0 with v > 0 means R = 0: trivially stable.
                return Ok(());
            }
            let mut bound = 0.0f64;
            let mut positive = true;
            for (wi, vi) in w.iter().zip(v.iter()) {
                // NaN iterates count as non-positive: inconclusive, fall
                // through to the power-iteration estimate.
                if vi.is_nan() || *vi <= 0.0 {
                    positive = false;
                    break;
                }
                bound = bound.max(wi / vi);
            }
            if !positive {
                break;
            }
            if bound < 1.0 - 1e-10 {
                return Ok(());
            }
            for (vi, wi) in v.iter_mut().zip(w.iter()) {
                *vi = wi / norm;
            }
        }
    }
    let sp = spectral_radius_estimate_into(r, v, w);
    if sp < 1.0 - 1e-10 {
        Ok(())
    } else {
        Err(sp)
    }
}

/// Power-step budget for the Collatz–Wielandt early accept in
/// [`certify_stable_r`]. On sweep grids the bound certifies in 2–5 steps;
/// anything still inconclusive here is near the stability boundary and
/// falls through to the full power iteration.
const CW_CERT_STEPS: usize = 12;

/// Hard cap on power-iteration steps in the spectral-radius estimate.
/// Together with the stagnation guard below this bounds the work per
/// estimate even on defective or rotation-dominated inputs, where the
/// eigenvector test alone never fires.
const SP_MAX_ITERS: usize = 500;

/// [`spectral_radius_estimate`] into caller-provided buffers: `v` and `w`
/// must have length `r.rows()`; no allocation per power-iteration step.
/// Performs the same floating-point operations in the same order as
/// allocating afresh.
///
/// Termination: the eigenvector converging (`delta < 1e-13`), the
/// eigenvalue estimate stagnating to 12 relative digits for three
/// consecutive steps (matrices with complex subdominant pairs rotate the
/// iterate forever while the norm estimate settles almost immediately),
/// or the [`SP_MAX_ITERS`] cap. Defective matrices (a Jordan block)
/// converge only harmonically and are the cap's clientele: the estimate is
/// still within O(sp/Iters) of the true radius when the cap fires.
fn spectral_radius_estimate_into(r: &Matrix, v: &mut [f64], w: &mut [f64]) -> f64 {
    v.fill(1.0);
    let mut lambda = 0.0;
    let mut stagnant = 0u32;
    for _ in 0..SP_MAX_ITERS {
        r.vecmat_into(v, w);
        let norm = w.iter().fold(0.0f64, |a, &x| a.max(x.abs()));
        if norm == 0.0 {
            return 0.0;
        }
        let mut delta: f64 = 0.0;
        for (wi, vi) in w.iter().zip(v.iter()) {
            delta = delta.max((wi / norm - vi).abs());
        }
        for (vi, wi) in v.iter_mut().zip(w.iter()) {
            *vi = wi / norm;
        }
        if (norm - lambda).abs() <= 1e-12 * norm.max(1.0) {
            stagnant += 1;
        } else {
            stagnant = 0;
        }
        lambda = norm;
        if delta < 1e-13 || stagnant >= 3 {
            break;
        }
    }
    lambda
}

/// The solved stationary distribution of a [`Qbd`].
#[derive(Debug, Clone)]
pub struct QbdSolution {
    p: usize,
    m: usize,
    /// π_0, …, π_m concatenated.
    boundary: Vec<f64>,
    r: Matrix,
    i_minus_r_inv: Matrix,
}

impl QbdSolution {
    /// Phase dimension.
    pub fn phases(&self) -> usize {
        self.p
    }

    /// First repeating level `m`.
    pub fn repeating_level(&self) -> usize {
        self.m
    }

    /// The rate matrix `R`.
    pub fn r(&self) -> &Matrix {
        &self.r
    }

    /// Stationary probability vector of level `ℓ` (phase-indexed).
    pub fn level(&self, level: usize) -> Vec<f64> {
        if level <= self.m {
            self.boundary[level * self.p..(level + 1) * self.p].to_vec()
        } else {
            let mut v = self.boundary[self.m * self.p..(self.m + 1) * self.p].to_vec();
            for _ in self.m..level {
                v = self.r.vecmat(&v);
            }
            v
        }
    }

    /// Total probability mass (should be 1; useful as a diagnostic).
    pub fn total_probability(&self) -> f64 {
        let head: f64 = self.boundary[..self.m * self.p].iter().sum();
        let pim = &self.boundary[self.m * self.p..];
        let tail: f64 = self
            .i_minus_r_inv
            .row_sums()
            .iter()
            .zip(pim)
            .map(|(w, pi)| w * pi)
            .sum();
        head + tail
    }

    /// Marginal phase distribution `Σ_ℓ π_ℓ` (sums to 1).
    pub fn marginal_phases(&self) -> Vec<f64> {
        let mut acc = vec![0.0; self.p];
        for level in 0..self.m {
            let slice = &self.boundary[level * self.p..(level + 1) * self.p];
            for (a, pi) in acc.iter_mut().zip(slice) {
                *a += pi;
            }
        }
        // Geometric tail: π_m (I−R)^{-1}, a row vector times a matrix.
        let pim = &self.boundary[self.m * self.p..];
        let tail = self.i_minus_r_inv.vecmat(pim);
        for (a, t) in acc.iter_mut().zip(&tail) {
            *a += t;
        }
        acc
    }

    /// Mean level `E[L] = Σ_ℓ ℓ · π_ℓ·1`, using the closed-form geometric
    /// tail `Σ_{j≥0} (m+j) π_m R^j = m·π_m(I−R)^{-1} + π_m R (I−R)^{-2}`.
    pub fn mean_level(&self) -> f64 {
        let mut acc = 0.0;
        for level in 1..self.m {
            let slice = &self.boundary[level * self.p..(level + 1) * self.p];
            acc += level as f64 * slice.iter().sum::<f64>();
        }
        let pim = &self.boundary[self.m * self.p..];
        // m · π_m (I−R)^{-1} 1
        let w1 = self.i_minus_r_inv.row_sums();
        let s0: f64 = pim.iter().zip(&w1).map(|(pi, w)| pi * w).sum();
        // π_m R (I−R)^{-2} 1
        let inv2 = self.i_minus_r_inv.matmul(&self.i_minus_r_inv);
        let rw = self.r.matmul(&inv2).row_sums();
        let s1: f64 = pim.iter().zip(&rw).map(|(pi, w)| pi * w).sum();
        acc + self.m as f64 * s0 + s1
    }

    /// Second moment of the level, `E[L²]`, via
    /// `Σ j² R^j = R(I+R)(I−R)^{-3}`.
    pub fn second_moment_level(&self) -> f64 {
        let mut acc = 0.0;
        for level in 1..self.m {
            let slice = &self.boundary[level * self.p..(level + 1) * self.p];
            acc += (level * level) as f64 * slice.iter().sum::<f64>();
        }
        let pim = &self.boundary[self.m * self.p..];
        let m = self.m as f64;
        let inv = &self.i_minus_r_inv;
        let inv2 = inv.matmul(inv);
        let inv3 = inv2.matmul(inv);
        let identity = Matrix::identity(self.p);
        let s0w = inv.row_sums();
        let s1w = self.r.matmul(&inv2).row_sums();
        let s2w = self
            .r
            .matmul(&(&identity + &self.r))
            .matmul(&inv3)
            .row_sums();
        let s0: f64 = pim.iter().zip(&s0w).map(|(pi, w)| pi * w).sum();
        let s1: f64 = pim.iter().zip(&s1w).map(|(pi, w)| pi * w).sum();
        let s2: f64 = pim.iter().zip(&s2w).map(|(pi, w)| pi * w).sum();
        acc + m * m * s0 + 2.0 * m * s1 + s2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// M/M/1 as a trivial QBD: one phase, one boundary level.
    fn mm1_qbd(lambda: f64, mu: f64) -> Qbd {
        Qbd::new(
            vec![Matrix::from_rows(&[&[lambda]])],
            vec![Matrix::zeros(1, 1)],
            vec![],
            Matrix::from_rows(&[&[lambda]]),
            Matrix::zeros(1, 1),
            Matrix::from_rows(&[&[mu]]),
        )
        .unwrap()
    }

    #[test]
    fn mm1_r_is_rho() {
        let qbd = mm1_qbd(0.5, 1.0);
        for solver in [RSolver::FixedPoint, RSolver::LogarithmicReduction] {
            let r = qbd.solve_r(solver).unwrap();
            assert!((r[(0, 0)] - 0.5).abs() < 1e-12, "{solver:?}: {}", r[(0, 0)]);
        }
    }

    #[test]
    fn mm1_levels_are_geometric() {
        let (lambda, mu) = (0.7, 1.0);
        let sol = mm1_qbd(lambda, mu).solve().unwrap();
        let rho: f64 = lambda / mu;
        for level in 0..20 {
            let got = sol.level(level)[0];
            let want = (1.0 - rho) * rho.powi(level as i32);
            assert!((got - want).abs() < 1e-12, "level {level}: {got} vs {want}");
        }
        assert!((sol.total_probability() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mm1_mean_and_second_moment() {
        let (lambda, mu) = (0.8, 1.0);
        let sol = mm1_qbd(lambda, mu).solve().unwrap();
        let rho: f64 = lambda / mu;
        let mean = rho / (1.0 - rho);
        let second = rho * (1.0 + rho) / ((1.0 - rho) * (1.0 - rho));
        assert!(
            (sol.mean_level() - mean).abs() < 1e-10,
            "mean {}",
            sol.mean_level()
        );
        assert!(
            (sol.second_moment_level() - second).abs() < 1e-9,
            "second {}",
            sol.second_moment_level()
        );
    }

    /// M/M/k as a QBD with k boundary levels (level = number in system).
    fn mmk_qbd(lambda: f64, mu: f64, k: usize) -> Qbd {
        let up = vec![Matrix::from_rows(&[&[lambda]]); k];
        let local = vec![Matrix::zeros(1, 1); k];
        let down = (1..k)
            .map(|l| Matrix::from_rows(&[&[l as f64 * mu]]))
            .collect();
        Qbd::new(
            up,
            local,
            down,
            Matrix::from_rows(&[&[lambda]]),
            Matrix::zeros(1, 1),
            Matrix::from_rows(&[&[k as f64 * mu]]),
        )
        .unwrap()
    }

    #[test]
    fn mmk_mean_number_matches_erlang_c() {
        for (lambda, mu, k) in [(3.0, 1.0, 4u32), (1.0, 1.0, 2), (13.0, 1.0, 16)] {
            let sol = mmk_qbd(lambda, mu, k as usize).solve().unwrap();
            let reference = eirs_queueing::MMk::new(lambda, mu, k).mean_number_in_system();
            assert!(
                (sol.mean_level() - reference).abs() / reference < 1e-9,
                "k={k}: {} vs {reference}",
                sol.mean_level()
            );
            assert!((sol.total_probability() - 1.0).abs() < 1e-10);
        }
    }

    /// M/Cox2/1: service is a two-phase Coxian; phase tracks service stage.
    /// Validated against Pollaczek–Khinchine.
    fn mcox1_qbd(lambda: f64, cox: (f64, f64, f64)) -> Qbd {
        let (mu1, mu2, q) = cox;
        // Phase 0 = service stage 1, phase 1 = service stage 2.
        let a0 = Matrix::from_rows(&[&[lambda, 0.0], &[0.0, lambda]]);
        let a1 = Matrix::from_rows(&[&[0.0, q * mu1], &[0.0, 0.0]]);
        // Completion hands the server to the next job, which starts stage 1.
        let a2 = Matrix::from_rows(&[&[(1.0 - q) * mu1, 0.0], &[mu2, 0.0]]);
        // Boundary: level 0 = empty system; arrivals start in stage 1.
        let u0 = Matrix::from_rows(&[&[lambda, 0.0], &[lambda, 0.0]]);
        let l0 = Matrix::zeros(2, 2);
        Qbd::new(vec![u0], vec![l0], vec![], a0, a1, a2).unwrap()
    }

    #[test]
    fn mcox1_matches_pollaczek_khinchine() {
        let (mu1, mu2, q) = (2.0, 0.5, 0.3);
        let cox = eirs_queueing::Coxian2::new(mu1, mu2, q);
        let moments = cox.moments();
        let lambda = 0.6 / moments.m1; // target rho = 0.6
        let sol = mcox1_qbd(lambda, (mu1, mu2, q)).solve().unwrap();
        let rho = lambda * moments.m1;
        let pk = rho + rho * rho * (1.0 + moments.cv2()) / (2.0 * (1.0 - rho));
        assert!(
            (sol.mean_level() - pk).abs() / pk < 1e-9,
            "QBD {} vs P-K {pk}",
            sol.mean_level()
        );
    }

    #[test]
    fn solvers_agree_on_multiphase_chain() {
        let qbd = mcox1_qbd(0.4, (2.0, 0.5, 0.3));
        let r_lr = qbd.solve_r(RSolver::LogarithmicReduction).unwrap();
        let r_fp = qbd.solve_r(RSolver::FixedPoint).unwrap();
        assert!(r_lr.max_abs_diff(&r_fp) < 1e-9);
    }

    #[test]
    fn workspace_path_reproduces_reference_bit_for_bit() {
        // The allocation-free iterations perform the same floating-point
        // operations in the same order as the reference, so R must match
        // exactly — not just to tolerance.
        let chains = [
            mcox1_qbd(0.4, (2.0, 0.5, 0.3)),
            mcox1_qbd(0.7, (1.5, 0.8, 0.6)),
        ];
        for qbd in &chains {
            for solver in [RSolver::FixedPoint, RSolver::LogarithmicReduction] {
                let fast = qbd.solve_r(solver).unwrap();
                let reference = qbd.solve_r_reference(solver).unwrap();
                assert_eq!(
                    fast.as_slice(),
                    reference.as_slice(),
                    "{solver:?} diverged from reference"
                );
            }
        }
    }

    #[test]
    fn workspace_is_reusable_across_solves_and_dimensions() {
        let mut ws = QbdWorkspace::new(2);
        let cox = mcox1_qbd(0.4, (2.0, 0.5, 0.3));
        let first = cox
            .solve_r_with_workspace(RSolver::LogarithmicReduction, &mut ws)
            .unwrap();
        // Same chain again through the dirty workspace: identical result.
        let second = cox
            .solve_r_with_workspace(RSolver::LogarithmicReduction, &mut ws)
            .unwrap();
        assert_eq!(first.as_slice(), second.as_slice());
        // A 1-phase chain through the same workspace: buffers regrow.
        let mm1 = mm1_qbd(0.5, 1.0);
        let r = mm1
            .solve_r_with_workspace(RSolver::FixedPoint, &mut ws)
            .unwrap();
        assert!((r[(0, 0)] - 0.5).abs() < 1e-12);
        assert_eq!(ws.phases(), 1);
    }

    #[test]
    fn unstable_chain_is_detected() {
        let qbd = mm1_qbd(1.5, 1.0);
        match qbd.solve() {
            Err(QbdError::Unstable { spectral_radius }) => {
                assert!(spectral_radius >= 1.0 - 1e-9);
            }
            other => panic!("expected Unstable, got {other:?}"),
        }
    }

    #[test]
    fn critically_loaded_chain_is_detected() {
        let qbd = mm1_qbd(1.0, 1.0);
        assert!(matches!(qbd.solve(), Err(QbdError::Unstable { .. })));
    }

    #[test]
    fn rate_fn_builder_reproduces_handwritten_mmk_blocks() {
        // M/M/k via the closure builder must match the handwritten QBD
        // bit for bit: same blocks in, same solver, same numbers out.
        let (lambda, mu, k) = (3.0, 1.0, 4usize);
        let built = Qbd::from_rate_fns(
            1,
            k,
            |_, _, _| lambda,
            |_, _, _| 0.0,
            |level, _, _| (level.min(k)) as f64 * mu,
        )
        .unwrap();
        let handwritten = mmk_qbd(lambda, mu, k);
        let a = built.solve().unwrap();
        let b = handwritten.solve().unwrap();
        assert_eq!(a.mean_level().to_bits(), b.mean_level().to_bits());
        assert_eq!(a.r().as_slice(), b.r().as_slice());
    }

    #[test]
    fn rate_fn_builder_supports_multiphase_chains() {
        // The M/Cox2/1 chain through the closure builder.
        let (mu1, mu2, q) = (2.0, 0.5, 0.3);
        let lambda = 0.4;
        let built = Qbd::from_rate_fns(
            2,
            1,
            |level, a, b| {
                // Arrivals: from an empty system (level 0) the next job
                // starts in stage 1; otherwise the phase is unchanged.
                if (level == 0 && b == 0) || (level > 0 && a == b) {
                    lambda
                } else {
                    0.0
                }
            },
            |level, a, b| {
                if level >= 1 && a == 0 && b == 1 {
                    q * mu1
                } else {
                    0.0
                }
            },
            |level, a, b| {
                if level == 0 || b != 0 {
                    0.0
                } else if a == 0 {
                    (1.0 - q) * mu1
                } else {
                    mu2
                }
            },
        )
        .unwrap();
        let reference = mcox1_qbd(lambda, (mu1, mu2, q));
        let a = built.solve().unwrap();
        let b = reference.solve().unwrap();
        assert_eq!(a.mean_level().to_bits(), b.mean_level().to_bits());
    }

    #[test]
    fn rate_fn_builder_validates_inputs() {
        assert!(matches!(
            Qbd::from_rate_fns(0, 1, |_, _, _| 0.0, |_, _, _| 0.0, |_, _, _| 0.0),
            Err(QbdError::Dimension(_))
        ));
        assert!(matches!(
            Qbd::from_rate_fns(1, 0, |_, _, _| 0.0, |_, _, _| 0.0, |_, _, _| 0.0),
            Err(QbdError::Dimension(_))
        ));
        // Negative rates are rejected by block validation.
        assert!(matches!(
            Qbd::from_rate_fns(1, 1, |_, _, _| -1.0, |_, _, _| 0.0, |_, _, _| 1.0),
            Err(QbdError::Dimension(_))
        ));
    }

    #[test]
    fn dimension_validation() {
        // Mismatched block size.
        let err = Qbd::new(
            vec![Matrix::zeros(2, 2)],
            vec![Matrix::zeros(2, 2)],
            vec![],
            Matrix::zeros(1, 1),
            Matrix::zeros(1, 1),
            Matrix::zeros(1, 1),
        );
        assert!(matches!(err, Err(QbdError::Dimension(_))));
        // Negative rate.
        let err = Qbd::new(
            vec![Matrix::from_rows(&[&[-1.0]])],
            vec![Matrix::zeros(1, 1)],
            vec![],
            Matrix::from_rows(&[&[0.5]]),
            Matrix::zeros(1, 1),
            Matrix::from_rows(&[&[1.0]]),
        );
        assert!(matches!(err, Err(QbdError::Dimension(_))));
    }

    #[test]
    fn marginal_phases_sum_to_one() {
        let sol = mcox1_qbd(0.4, (2.0, 0.5, 0.3)).solve().unwrap();
        let phases = sol.marginal_phases();
        let total: f64 = phases.iter().sum();
        assert!((total - 1.0).abs() < 1e-10, "total {total}");
    }

    #[test]
    fn deep_levels_decay_geometrically() {
        let sol = mm1_qbd(0.5, 1.0).solve().unwrap();
        let l10 = sol.level(10)[0];
        let l11 = sol.level(11)[0];
        assert!((l11 / l10 - 0.5).abs() < 1e-9);
    }

    #[test]
    fn high_load_still_solves_accurately() {
        let (lambda, mu) = (0.99, 1.0);
        let sol = mm1_qbd(lambda, mu).solve().unwrap();
        let rho: f64 = lambda / mu;
        let mean = rho / (1.0 - rho);
        assert!(
            (sol.mean_level() - mean).abs() / mean < 1e-8,
            "{} vs {mean}",
            sol.mean_level()
        );
    }

    #[test]
    fn map_ph1_with_poisson_and_exp_is_mm1() {
        let (lambda, mu) = (0.6, 1.0);
        let qbd = Qbd::map_ph1(
            &Matrix::from_rows(&[&[-lambda]]),
            &Matrix::from_rows(&[&[lambda]]),
            &[1.0],
            &Matrix::from_rows(&[&[-mu]]),
        )
        .unwrap();
        let sol = qbd.solve().unwrap();
        let rho: f64 = lambda / mu;
        let mean = rho / (1.0 - rho);
        assert!(
            (sol.mean_level() - mean).abs() < 1e-9,
            "{} vs {mean}",
            sol.mean_level()
        );
    }

    #[test]
    fn map_ph1_with_erlang_service_matches_pollaczek_khinchine() {
        // M/E2/1: E[N] = rho + rho^2 (1 + cv^2) / (2 (1 - rho)), cv^2 = 1/2.
        let lambda = 0.5;
        // Erlang(2) with total rate 2 per stage: mean 1, cv^2 = 1/2.
        let s = Matrix::from_rows(&[&[-2.0, 2.0], &[0.0, -2.0]]);
        let qbd = Qbd::map_ph1(
            &Matrix::from_rows(&[&[-lambda]]),
            &Matrix::from_rows(&[&[lambda]]),
            &[1.0, 0.0],
            &s,
        )
        .unwrap();
        let sol = qbd.solve().unwrap();
        let rho: f64 = 0.5;
        let pk = rho + rho * rho * (1.0 + 0.5) / (2.0 * (1.0 - rho));
        assert!(
            (sol.mean_level() - pk).abs() / pk < 1e-8,
            "{} vs {pk}",
            sol.mean_level()
        );
    }

    #[test]
    fn map_ph1_mmpp_arrivals_congest_more_than_poisson() {
        // MMPP-2 with the same stationary rate as a Poisson reference: the
        // bursty arrivals must increase the mean queue length.
        let (r01, r10, a0, a1) = (0.5, 0.5, 1.08, 0.12);
        let rate = 0.5 * a0 + 0.5 * a1; // pi = (1/2, 1/2)
        let d0 = Matrix::from_rows(&[&[-(r01 + a0), r01], &[r10, -(r10 + a1)]]);
        let d1 = Matrix::from_rows(&[&[a0, 0.0], &[0.0, a1]]);
        let sol = Qbd::map_ph1(&d0, &d1, &[1.0], &Matrix::from_rows(&[&[-1.0]]))
            .unwrap()
            .solve()
            .unwrap();
        let rho: f64 = rate / 1.0;
        let mm1_mean = rho / (1.0 - rho);
        assert!(
            sol.mean_level() > mm1_mean * 1.05,
            "bursty {} vs poisson {mm1_mean}",
            sol.mean_level()
        );
    }

    #[test]
    fn warm_start_from_converged_r_matches_cold() {
        let qbd = mcox1_qbd(0.7, (1.5, 0.8, 0.6));
        let cold = qbd.solve_r(RSolver::LogarithmicReduction).unwrap();
        // Seeding from the converged R itself: the refinement accepts
        // after validating the residual, and the answer is the same
        // solution to solver tolerance.
        let warm = qbd
            .solve_r_warm(&cold, RSolver::LogarithmicReduction)
            .unwrap();
        assert!(warm.max_abs_diff(&cold) < 1e-9);
        // The full warm solve agrees with the cold solve on observables.
        let warm_sol = qbd.solve_warm(&cold).unwrap();
        let cold_sol = qbd.solve().unwrap();
        let (a, b) = (warm_sol.mean_level(), cold_sol.mean_level());
        assert!((a - b).abs() <= 1e-9 * b.abs(), "{a} vs {b}");
    }

    #[test]
    fn warm_start_from_neighbor_r_matches_cold() {
        // The realistic sweep scenario: seed a cell from its neighbor's R.
        let neighbor = mcox1_qbd(0.4, (2.0, 0.5, 0.3));
        let target = mcox1_qbd(0.45, (2.0, 0.5, 0.3));
        let seed = neighbor.solve_r(RSolver::LogarithmicReduction).unwrap();
        let warm = target
            .solve_r_warm(&seed, RSolver::LogarithmicReduction)
            .unwrap();
        let cold = target.solve_r(RSolver::LogarithmicReduction).unwrap();
        assert!(warm.max_abs_diff(&cold) < 1e-9);
    }

    #[test]
    fn warm_start_with_unusable_seed_is_bitwise_cold() {
        let qbd = mcox1_qbd(0.4, (2.0, 0.5, 0.3));
        let cold = qbd.solve_r(RSolver::LogarithmicReduction).unwrap();
        // Wrong dimension, non-finite entries, and negative entries all
        // fall back to the cold path — bit-identical, not just close.
        let bad_seeds = [
            Matrix::zeros(1, 1),
            Matrix::from_rows(&[&[f64::NAN, 0.0], &[0.0, 0.0]]),
            Matrix::from_rows(&[&[-0.1, 0.0], &[0.0, 0.1]]),
        ];
        for seed in &bad_seeds {
            let warm = qbd
                .solve_r_warm(seed, RSolver::LogarithmicReduction)
                .unwrap();
            assert_eq!(warm.as_slice(), cold.as_slice());
        }
    }

    #[test]
    fn warm_start_survives_diverging_seed() {
        // A finite nonnegative seed far outside the basin of attraction:
        // the refinement blows up geometrically, and the guards must catch
        // it — `max_abs_diff`'s NaN-dropping fold would otherwise report a
        // diverged iterate as "converged" — then fall back to cold.
        let qbd = mcox1_qbd(0.7, (1.5, 0.8, 0.6));
        let cold = qbd.solve_r(RSolver::LogarithmicReduction).unwrap();
        let mut big = cold.clone();
        big.scale_mut(50.0);
        let warm = qbd
            .solve_r_warm(&big, RSolver::LogarithmicReduction)
            .unwrap();
        assert!(warm.is_finite());
        assert!(warm.max_abs_diff(&cold) < 1e-9);
    }

    #[test]
    fn warm_start_preserves_unstable_detection() {
        // A plausible-looking seed must not let an unstable chain slip
        // through: the sp(R) guard rejects the refinement and the cold
        // fallback reports Unstable.
        let qbd = mm1_qbd(1.5, 1.0);
        let seed = Matrix::from_rows(&[&[0.5]]);
        assert!(matches!(
            qbd.solve_r_warm(&seed, RSolver::LogarithmicReduction),
            Err(QbdError::Unstable { .. })
        ));
        assert!(matches!(
            qbd.solve_warm(&seed),
            Err(QbdError::Unstable { .. })
        ));
    }

    #[test]
    fn pooled_solves_are_bit_stable_across_dimension_churn() {
        // Interleave chains of different phase dimensions through the
        // thread-local pool: every repeat must reproduce the first solve
        // exactly, proving pooled buffers carry no state across solves.
        let cox = mcox1_qbd(0.4, (2.0, 0.5, 0.3)); // p = 2
        let mm1 = mm1_qbd(0.5, 1.0); // p = 1
        let first_cox = cox.solve().unwrap();
        let first_mm1 = mm1.solve().unwrap();
        for _ in 0..3 {
            let again_cox = cox.solve().unwrap();
            let again_mm1 = mm1.solve().unwrap();
            assert_eq!(again_cox.r().as_slice(), first_cox.r().as_slice());
            assert_eq!(
                again_cox.mean_level().to_bits(),
                first_cox.mean_level().to_bits()
            );
            assert_eq!(again_mm1.r().as_slice(), first_mm1.r().as_slice());
            assert_eq!(
                again_mm1.mean_level().to_bits(),
                first_mm1.mean_level().to_bits()
            );
        }
    }

    #[test]
    fn spectral_radius_estimate_terminates_on_defective_matrix() {
        // Jordan block: defective (one eigenvector), power iteration
        // converges only harmonically, so neither the eigenvector test nor
        // the stagnation guard fires — the estimate must still terminate
        // at the iteration cap with an answer close to the true radius.
        let defective = Matrix::from_rows(&[&[0.9, 1.0], &[0.0, 0.9]]);
        let est = spectral_radius_estimate(&defective);
        assert!(
            (est - 0.9).abs() < 0.01,
            "estimate {est} too far from sp = 0.9"
        );
    }

    #[test]
    fn map_ph1_rejects_malformed_inputs() {
        let one = Matrix::from_rows(&[&[-1.0]]);
        let pos = Matrix::from_rows(&[&[1.0]]);
        // alpha not a distribution.
        assert!(matches!(
            Qbd::map_ph1(&one, &pos, &[0.5], &one),
            Err(QbdError::Dimension(_))
        ));
        // shape mismatch between D0 and D1.
        assert!(matches!(
            Qbd::map_ph1(&Matrix::zeros(2, 2), &pos, &[1.0], &one),
            Err(QbdError::Dimension(_))
        ));
        // service rows must sum <= 0.
        assert!(matches!(
            Qbd::map_ph1(&one, &pos, &[1.0], &pos),
            Err(QbdError::Dimension(_))
        ));
    }
}
