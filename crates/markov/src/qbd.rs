//! Quasi-birth–death (QBD) chains and matrix-analytic solvers.
//!
//! A QBD is a CTMC whose states are organized into *levels* `ℓ = 0, 1, 2, …`
//! each holding `p` *phases*, where transitions only reach neighboring
//! levels. After a finite level-dependent boundary (levels `0..m-1`), the
//! transition blocks repeat:
//!
//! ```text
//! A0: level ℓ → ℓ+1     A1: within level (off-diagonal)     A2: level ℓ → ℓ−1
//! ```
//!
//! The stationary distribution then has a matrix-geometric tail
//! `π_{m+j} = π_m R^j`, where `R` is the minimal nonnegative solution of
//!
//! ```text
//! A0 + R Â1 + R² A2 = 0,       Â1 = A1 − diag(rowsums(A0 + A1 + A2)).
//! ```
//!
//! This module implements both the classical linear fixed-point iteration
//! and Latouche–Ramaswami logarithmic reduction (quadratically convergent,
//! the default), plus the boundary solve and level-distribution moments.
//! The busy-period-transformed EF and IF chains of the paper (Figures 3c
//! and 7c) are solved exactly through this interface.

use eirs_numerics::lu::{LinAlgError, LuDecomposition};
use eirs_numerics::Matrix;

/// Which algorithm computes the rate matrix `R`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RSolver {
    /// Latouche–Ramaswami logarithmic reduction (quadratic convergence).
    #[default]
    LogarithmicReduction,
    /// Classical fixed-point iteration `R ← −(A0 + R²A2)Â1^{-1}`
    /// (linear convergence; kept as an independent reference).
    FixedPoint,
}

/// Errors from QBD construction or solution.
#[derive(Debug, Clone, PartialEq)]
pub enum QbdError {
    /// Block shapes are inconsistent.
    Dimension(String),
    /// The chain is not positive recurrent: `sp(R) ≥ 1`.
    Unstable {
        /// Estimated spectral radius of `R`.
        spectral_radius: f64,
    },
    /// The R iteration failed to converge.
    NotConverged {
        /// Iterations performed before giving up.
        iterations: usize,
        /// Residual `‖A0 + RÂ1 + R²A2‖_max` at exit.
        residual: f64,
    },
    /// A linear solve failed (singular boundary system, etc.).
    LinAlg(LinAlgError),
}

impl std::fmt::Display for QbdError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QbdError::Dimension(msg) => write!(f, "QBD dimension error: {msg}"),
            QbdError::Unstable { spectral_radius } => {
                write!(f, "QBD is unstable: sp(R) = {spectral_radius:.6} >= 1")
            }
            QbdError::NotConverged {
                iterations,
                residual,
            } => {
                write!(f, "R iteration did not converge after {iterations} iterations (residual {residual:.3e})")
            }
            QbdError::LinAlg(e) => write!(f, "QBD linear algebra failure: {e}"),
        }
    }
}

impl std::error::Error for QbdError {}

impl From<LinAlgError> for QbdError {
    fn from(e: LinAlgError) -> Self {
        QbdError::LinAlg(e)
    }
}

/// A level-dependent-boundary QBD.
///
/// Levels `0..m-1` are the boundary (`m = boundary_local.len() ≥ 1`), level
/// `m` and beyond repeat with blocks `(a0, a1, a2)`. Off-diagonal rates
/// only; diagonals are derived.
#[derive(Debug, Clone)]
pub struct Qbd {
    /// `U_ℓ` for `ℓ = 0..m-1`: level `ℓ → ℓ+1` (the last one feeds level `m`).
    boundary_up: Vec<Matrix>,
    /// `L_ℓ` for `ℓ = 0..m-1`: within-level off-diagonal blocks.
    boundary_local: Vec<Matrix>,
    /// `D_ℓ` for `ℓ = 1..m-1` (indexed `boundary_down[ℓ-1]`): level `ℓ → ℓ−1`.
    boundary_down: Vec<Matrix>,
    a0: Matrix,
    a1: Matrix,
    a2: Matrix,
}

impl Qbd {
    /// Builds and validates a QBD. See type-level docs for block layout.
    pub fn new(
        boundary_up: Vec<Matrix>,
        boundary_local: Vec<Matrix>,
        boundary_down: Vec<Matrix>,
        a0: Matrix,
        a1: Matrix,
        a2: Matrix,
    ) -> Result<Self, QbdError> {
        let p = a0.rows();
        let m = boundary_local.len();
        if m == 0 {
            return Err(QbdError::Dimension(
                "need at least one boundary level".into(),
            ));
        }
        if boundary_up.len() != m {
            return Err(QbdError::Dimension(format!(
                "boundary_up has {} blocks, expected {m}",
                boundary_up.len()
            )));
        }
        if boundary_down.len() + 1 != m {
            return Err(QbdError::Dimension(format!(
                "boundary_down has {} blocks, expected {}",
                boundary_down.len(),
                m - 1
            )));
        }
        let all_blocks = boundary_up
            .iter()
            .chain(&boundary_local)
            .chain(&boundary_down)
            .chain([&a0, &a1, &a2]);
        for b in all_blocks {
            if b.rows() != p || b.cols() != p {
                return Err(QbdError::Dimension(format!(
                    "block is {}x{}, expected {p}x{p}",
                    b.rows(),
                    b.cols()
                )));
            }
            if b.as_slice().iter().any(|&v| v < 0.0 || !v.is_finite()) {
                return Err(QbdError::Dimension(
                    "blocks must be nonnegative and finite".into(),
                ));
            }
        }
        Ok(Self {
            boundary_up,
            boundary_local,
            boundary_down,
            a0,
            a1,
            a2,
        })
    }

    /// Builds a QBD from a **level-homogeneous rate map**: three closures
    /// giving the off-diagonal transition rates out of `(level, phase)`
    /// states, queried as `(level, from_phase, to_phase)`.
    ///
    /// * `up(ℓ, a, b)` — rate from `(ℓ, a)` to `(ℓ+1, b)`;
    /// * `local(ℓ, a, b)` — rate from `(ℓ, a)` to `(ℓ, b)` (`a ≠ b`);
    /// * `down(ℓ, a, b)` — rate from `(ℓ, a)` to `(ℓ−1, b)` (unused at
    ///   `ℓ = 0`).
    ///
    /// Levels `0..boundary_levels-1` form the level-dependent boundary; the
    /// repeating blocks `(A0, A1, A2)` are sampled at
    /// `level = boundary_levels`, so the closures **must** be
    /// level-independent from there on (this is what "level-homogeneous"
    /// means; [`Qbd::new`] still validates shapes and nonnegativity, and a
    /// debug assertion cross-checks homogeneity one level deeper). This is
    /// the generator behind the policy-generic analysis in `eirs-core`:
    /// an allocation policy's `(π_I, π_E)` map becomes service rates, and
    /// this builder turns them into QBD blocks.
    pub fn from_rate_fns(
        phases: usize,
        boundary_levels: usize,
        up: impl Fn(usize, usize, usize) -> f64,
        local: impl Fn(usize, usize, usize) -> f64,
        down: impl Fn(usize, usize, usize) -> f64,
    ) -> Result<Self, QbdError> {
        if phases == 0 {
            return Err(QbdError::Dimension("need at least one phase".into()));
        }
        if boundary_levels == 0 {
            return Err(QbdError::Dimension(
                "need at least one boundary level".into(),
            ));
        }
        let fill = |f: &dyn Fn(usize, usize, usize) -> f64, level: usize| {
            let mut m = Matrix::zeros(phases, phases);
            for a in 0..phases {
                for b in 0..phases {
                    let v = f(level, a, b);
                    if v != 0.0 {
                        m[(a, b)] = v;
                    }
                }
            }
            m
        };
        let boundary_up: Vec<Matrix> = (0..boundary_levels).map(|l| fill(&up, l)).collect();
        let boundary_local: Vec<Matrix> = (0..boundary_levels).map(|l| fill(&local, l)).collect();
        let boundary_down: Vec<Matrix> = (1..boundary_levels).map(|l| fill(&down, l)).collect();
        let m = boundary_levels;
        let a0 = fill(&up, m);
        let a1 = fill(&local, m);
        let a2 = fill(&down, m);
        debug_assert!(
            {
                let next = m + 1;
                fill(&up, next) == a0 && fill(&local, next) == a1 && fill(&down, next) == a2
            },
            "rate map is not level-homogeneous beyond the boundary"
        );
        Self::new(boundary_up, boundary_local, boundary_down, a0, a1, a2)
    }

    /// Assembles the classical **MAP/PH/1** queue as a QBD: arrivals from a
    /// Markovian arrival process `(d0, d1)` on `p_a` phases, service times
    /// phase-type `PH(alpha, s)` on `p_s` phases, one server.
    ///
    /// Level `n` is the number of jobs in system; the phase is the pair
    /// (arrival phase `m`, service phase `j`), indexed `m·p_s + j`:
    ///
    /// * **up** — an arrival transition `d1[m][m']` (service phase kept);
    /// * **local** — a silent arrival-phase change `d0[m][m']` or an
    ///   internal service transition `s[j][j']` (at level 0 nothing is in
    ///   service, so only the arrival part runs);
    /// * **down** — a service completion `s⁰[j]·alpha[j']`, pre-drawing
    ///   the next job's initial service phase from `alpha`.
    ///
    /// The chain is level-homogeneous from level 1, so the boundary is a
    /// single level. Takes raw matrices (this crate is deliberately
    /// independent of `eirs_queueing`); `eirs_core::scenario` wires
    /// `MapProcess` and `PhaseType` values into it for the analytically
    /// tractable workload scenarios.
    pub fn map_ph1(d0: &Matrix, d1: &Matrix, alpha: &[f64], s: &Matrix) -> Result<Self, QbdError> {
        let p_a = d0.rows();
        let p_s = alpha.len();
        if !d0.is_square() || !d1.is_square() || d1.rows() != p_a {
            return Err(QbdError::Dimension("D0/D1 must be square and equal".into()));
        }
        if !s.is_square() || s.rows() != p_s {
            return Err(QbdError::Dimension(
                "service sub-generator must be p_s x p_s".into(),
            ));
        }
        if p_a == 0 || p_s == 0 {
            return Err(QbdError::Dimension("need at least one phase".into()));
        }
        let alpha_sum: f64 = alpha.iter().sum();
        if (alpha_sum - 1.0).abs() > 1e-9 || alpha.iter().any(|&a| a < 0.0) {
            return Err(QbdError::Dimension(
                "alpha must be a probability distribution".into(),
            ));
        }
        // Absorption (completion) rate out of each service phase.
        let exit: Vec<f64> = (0..p_s)
            .map(|j| -(0..p_s).map(|l| s[(j, l)]).sum::<f64>())
            .collect();
        if exit.iter().any(|&e| e < -1e-9) {
            return Err(QbdError::Dimension(
                "service sub-generator rows must sum <= 0".into(),
            ));
        }
        let phases = p_a * p_s;
        let split = |idx: usize| (idx / p_s, idx % p_s);
        Self::from_rate_fns(
            phases,
            1,
            |_, a, b| {
                let ((m, j), (m2, j2)) = (split(a), split(b));
                if j == j2 {
                    d1[(m, m2)]
                } else {
                    0.0
                }
            },
            |level, a, b| {
                if a == b {
                    return 0.0;
                }
                let ((m, j), (m2, j2)) = (split(a), split(b));
                if j == j2 && m != m2 {
                    d0[(m, m2)]
                } else if m == m2 && level >= 1 {
                    // Internal service transition; frozen below level 1.
                    s[(j, j2)]
                } else {
                    0.0
                }
            },
            |_, a, b| {
                let ((m, j), (m2, j2)) = (split(a), split(b));
                if m == m2 {
                    exit[j].max(0.0) * alpha[j2]
                } else {
                    0.0
                }
            },
        )
    }

    /// Phase dimension `p`.
    pub fn phases(&self) -> usize {
        self.a0.rows()
    }

    /// Number of boundary levels `m` (levels `0..m-1`; level `m` repeats).
    pub fn boundary_levels(&self) -> usize {
        self.boundary_local.len()
    }

    /// The repeating local block with its diagonal filled in:
    /// `Â1 = A1 − diag(rowsums(A0 + A1 + A2))`.
    fn a1_hat(&self) -> Matrix {
        let p = self.phases();
        let mut a1h = self.a1.clone();
        for i in 0..p {
            let exit: f64 = self.a0.row(i).iter().sum::<f64>()
                + self.a1.row(i).iter().sum::<f64>()
                + self.a2.row(i).iter().sum::<f64>();
            a1h[(i, i)] -= exit;
        }
        a1h
    }

    /// Computes the rate matrix `R` with the requested algorithm, using a
    /// fresh scratch workspace.
    pub fn solve_r(&self, solver: RSolver) -> Result<Matrix, QbdError> {
        let mut ws = QbdWorkspace::new(self.phases());
        self.solve_r_with_workspace(solver, &mut ws)
    }

    /// Computes the rate matrix `R`, reusing `ws` as scratch storage so
    /// that the iteration allocates nothing per step. This is the hot path
    /// behind every figure sweep; callers solving many QBDs of the same
    /// phase dimension should reuse one workspace across solves.
    pub fn solve_r_with_workspace(
        &self,
        solver: RSolver,
        ws: &mut QbdWorkspace,
    ) -> Result<Matrix, QbdError> {
        let a1h = self.a1_hat();
        ws.reset(self.phases());
        let r = match solver {
            RSolver::FixedPoint => self.r_fixed_point(&a1h, ws)?,
            RSolver::LogarithmicReduction => self.r_logarithmic_reduction(&a1h, ws)?,
        };
        // Positive recurrence check: sp(R) < 1.
        let sp = spectral_radius_estimate_into(&r, &mut ws.pv, &mut ws.pw);
        if sp >= 1.0 - 1e-10 {
            return Err(QbdError::Unstable {
                spectral_radius: sp,
            });
        }
        Ok(r)
    }

    /// Computes `R` with the original allocation-per-step implementation.
    ///
    /// Kept as an independent reference for differential tests (the
    /// workspace path must reproduce it bit for bit) and for the
    /// `sweep_speedup` benchmark that records the speedup of the
    /// allocation-free path. Not for production use.
    pub fn solve_r_reference(&self, solver: RSolver) -> Result<Matrix, QbdError> {
        let a1h = self.a1_hat();
        let r = match solver {
            RSolver::FixedPoint => self.r_fixed_point_reference(&a1h)?,
            RSolver::LogarithmicReduction => self.r_logarithmic_reduction_reference(&a1h)?,
        };
        let sp = spectral_radius_estimate(&r);
        if sp >= 1.0 - 1e-10 {
            return Err(QbdError::Unstable {
                spectral_radius: sp,
            });
        }
        Ok(r)
    }

    /// Fixed point `R ← C0 + R² C2` with `C0 = −A0 Â1^{-1}`,
    /// `C2 = −A2 Â1^{-1}`. The constant `Â1` is LU-factored exactly once,
    /// before the loop; each iteration then runs entirely in workspace
    /// buffers (two `mul_into`, one copy, one AXPY — zero allocations).
    fn r_fixed_point(&self, a1h: &Matrix, ws: &mut QbdWorkspace) -> Result<Matrix, QbdError> {
        // One-time factorization of the constant Â1, done before the loop.
        ws.lu.refactor(a1h)?;
        ws.lu.inverse_into(&mut ws.w, &mut ws.col)?;
        // C0 = −A0 Â1^{-1}, C2 = −A2 Â1^{-1}: the loop constants.
        self.a0.mul_into(&ws.w, &mut ws.c0);
        ws.c0.scale_mut(-1.0);
        self.a2.mul_into(&ws.w, &mut ws.c2);
        ws.c2.scale_mut(-1.0);

        ws.r.fill(0.0);
        let max_iter = 500_000;
        for it in 0..max_iter {
            // R² into m0, then (R²)C2 into m2, then next = C0 + R²C2.
            Matrix::mul_into(&ws.r, &ws.r, &mut ws.m0);
            ws.m0.mul_into(&ws.c2, &mut ws.m2);
            ws.next.copy_from(&ws.c0);
            ws.next.add_assign(&ws.m2);
            let diff = ws.next.max_abs_diff(&ws.r);
            std::mem::swap(&mut ws.r, &mut ws.next);
            if diff < 1e-14 {
                return Ok(ws.r.clone());
            }
            if !ws.r.is_finite() {
                return Err(QbdError::NotConverged {
                    iterations: it,
                    residual: f64::INFINITY,
                });
            }
        }
        let residual = self.r_residual_with(a1h, ws);
        // Accept a slightly loose fixed point only if the defining equation
        // is satisfied tightly.
        if residual < 1e-9 {
            Ok(ws.r.clone())
        } else {
            Err(QbdError::NotConverged {
                iterations: max_iter,
                residual,
            })
        }
    }

    /// Reference implementation of [`Qbd::r_fixed_point`] (allocating).
    fn r_fixed_point_reference(&self, a1h: &Matrix) -> Result<Matrix, QbdError> {
        let p = self.phases();
        let a1h_inv = LuDecomposition::new(a1h)?.inverse()?;
        // R ← C0 + R² C2 with C0 = −A0 Â1^{-1}, C2 = −A2 Â1^{-1}.
        let c0 = -&self.a0.matmul(&a1h_inv);
        let c2 = -&self.a2.matmul(&a1h_inv);
        let mut r = Matrix::zeros(p, p);
        let max_iter = 500_000;
        for it in 0..max_iter {
            let r2 = r.matmul(&r);
            let next = &c0 + &r2.matmul(&c2);
            let diff = next.max_abs_diff(&r);
            r = next;
            if diff < 1e-14 {
                return Ok(r);
            }
            if !r.is_finite() {
                return Err(QbdError::NotConverged {
                    iterations: it,
                    residual: f64::INFINITY,
                });
            }
        }
        let residual = self.r_residual(&r, a1h);
        if residual < 1e-9 {
            Ok(r)
        } else {
            Err(QbdError::NotConverged {
                iterations: max_iter,
                residual,
            })
        }
    }

    /// Latouche–Ramaswami logarithmic reduction in workspace buffers: each
    /// of the ~`log₂(1/ε)` iterations performs six `mul_into`, one LU
    /// refactorization into reused storage, and one in-place inverse —
    /// zero allocations per step.
    fn r_logarithmic_reduction(
        &self,
        a1h: &Matrix,
        ws: &mut QbdWorkspace,
    ) -> Result<Matrix, QbdError> {
        // (−Â1)^{-1}, factored into the workspace decomposition.
        ws.scratch.copy_from(a1h);
        ws.scratch.scale_mut(-1.0);
        ws.lu.refactor(&ws.scratch)?;
        ws.lu.inverse_into(&mut ws.w, &mut ws.col)?;
        // Probabilistic blocks: B0 = (−Â1)^{-1} A0, B2 = (−Â1)^{-1} A2.
        ws.w.mul_into(&self.a0, &mut ws.b0);
        ws.w.mul_into(&self.a2, &mut ws.b2);
        ws.g.copy_from(&ws.b2);
        ws.t.copy_from(&ws.b0);
        ws.identity.set_identity();
        let max_iter = 200;
        for _ in 0..max_iter {
            // U = B0 B2 + B2 B0.
            ws.b0.mul_into(&ws.b2, &mut ws.u);
            ws.b2.mul_into(&ws.b0, &mut ws.tmp);
            ws.u.add_assign(&ws.tmp);
            // M0 = B0², M2 = B2².
            ws.b0.mul_into(&ws.b0, &mut ws.m0);
            ws.b2.mul_into(&ws.b2, &mut ws.m2);
            // W = (I − U)^{-1}, then B0 ← W M0, B2 ← W M2. (Explicit
            // inverse + matmul beats direct LU solves here: at these block
            // sizes the vectorized matmul outruns sequential substitution,
            // and it keeps the path bit-identical to the reference.)
            ws.identity.sub_into(&ws.u, &mut ws.scratch);
            ws.lu.refactor(&ws.scratch)?;
            ws.lu.inverse_into(&mut ws.w, &mut ws.col)?;
            ws.w.mul_into(&ws.m0, &mut ws.b0);
            ws.w.mul_into(&ws.m2, &mut ws.b2);
            // G ← G + T B2,  T ← T B0.
            ws.t.mul_into(&ws.b2, &mut ws.tmp);
            ws.g.add_assign(&ws.tmp);
            let increment_max = ws.tmp.max_abs();
            ws.t.mul_into(&ws.b0, &mut ws.next);
            std::mem::swap(&mut ws.t, &mut ws.next);
            if ws.t.max_abs() < 1e-15 || increment_max < 1e-15 {
                break;
            }
            // For nearly-unstable chains logarithmic reduction can stall;
            // the residual check below catches a bad G either way.
        }
        // R = A0 · (−(Â1 + A0 G))^{-1}.
        self.a0.mul_into(&ws.g, &mut ws.tmp);
        ws.scratch.copy_from(a1h);
        ws.scratch.add_assign(&ws.tmp);
        ws.scratch.scale_mut(-1.0);
        ws.lu.refactor(&ws.scratch)?;
        ws.lu.inverse_into(&mut ws.w, &mut ws.col)?;
        self.a0.mul_into(&ws.w, &mut ws.r);
        let residual = self.r_residual_with(a1h, ws);
        if residual > 1e-8 * (1.0 + a1h.max_abs()) {
            return Err(QbdError::NotConverged {
                iterations: max_iter,
                residual,
            });
        }
        Ok(ws.r.clone())
    }

    /// Reference implementation of [`Qbd::r_logarithmic_reduction`]
    /// (allocating).
    fn r_logarithmic_reduction_reference(&self, a1h: &Matrix) -> Result<Matrix, QbdError> {
        let p = self.phases();
        let neg_a1h_inv = LuDecomposition::new(&(-a1h))?.inverse()?;
        // Probabilistic blocks: B0 = (−Â1)^{-1} A0, B2 = (−Â1)^{-1} A2.
        let mut b0 = neg_a1h_inv.matmul(&self.a0);
        let mut b2 = neg_a1h_inv.matmul(&self.a2);
        let mut g = b2.clone();
        let mut t = b0.clone();
        let identity = Matrix::identity(p);
        let max_iter = 200;
        for _ in 0..max_iter {
            let u = &b0.matmul(&b2) + &b2.matmul(&b0);
            let m0 = b0.matmul(&b0);
            let m2 = b2.matmul(&b2);
            let w = LuDecomposition::new(&(&identity - &u))?.inverse()?;
            b0 = w.matmul(&m0);
            b2 = w.matmul(&m2);
            let increment = t.matmul(&b2);
            g = &g + &increment;
            t = t.matmul(&b0);
            if t.max_abs() < 1e-15 || increment.max_abs() < 1e-15 {
                break;
            }
        }
        // R = A0 · (−(Â1 + A0 G))^{-1}.
        let inner = -&(a1h + &self.a0.matmul(&g));
        let inner_inv = LuDecomposition::new(&inner)?.inverse()?;
        let r = self.a0.matmul(&inner_inv);
        let residual = self.r_residual(&r, a1h);
        if residual > 1e-8 * (1.0 + a1h.max_abs()) {
            return Err(QbdError::NotConverged {
                iterations: max_iter,
                residual,
            });
        }
        Ok(r)
    }

    /// `‖A0 + RÂ1 + R²A2‖_max`, the defect of the R equation.
    fn r_residual(&self, r: &Matrix, a1h: &Matrix) -> f64 {
        let lhs = &(&self.a0 + &r.matmul(a1h)) + &r.matmul(r).matmul(&self.a2);
        lhs.max_abs()
    }

    /// [`Qbd::r_residual`] on `ws.r`, evaluated entirely in workspace
    /// buffers (same operations, same order, zero allocations).
    fn r_residual_with(&self, a1h: &Matrix, ws: &mut QbdWorkspace) -> f64 {
        ws.r.mul_into(a1h, &mut ws.m0); // R Â1
        Matrix::mul_into(&ws.r, &ws.r, &mut ws.m2); // R²
        ws.m2.mul_into(&self.a2, &mut ws.next); // R² A2
        ws.scratch.copy_from(&self.a0);
        ws.scratch.add_assign(&ws.m0);
        ws.scratch.add_assign(&ws.next);
        ws.scratch.max_abs()
    }

    /// Solves the QBD: computes `R`, the boundary probabilities, and wraps
    /// them in a [`QbdSolution`].
    pub fn solve(&self) -> Result<QbdSolution, QbdError> {
        self.solve_with(RSolver::default())
    }

    /// Like [`Qbd::solve`] but with an explicit choice of R algorithm.
    pub fn solve_with(&self, solver: RSolver) -> Result<QbdSolution, QbdError> {
        let mut ws = QbdWorkspace::new(self.phases());
        self.solve_with_workspace(solver, &mut ws)
    }

    /// Like [`Qbd::solve_with`], reusing `ws` for the R iteration scratch —
    /// the path for sweeps that solve many same-dimension chains.
    pub fn solve_with_workspace(
        &self,
        solver: RSolver,
        ws: &mut QbdWorkspace,
    ) -> Result<QbdSolution, QbdError> {
        let p = self.phases();
        let m = self.boundary_levels();
        let r = self.solve_r_with_workspace(solver, ws)?;
        let a1h = self.a1_hat();
        let identity = Matrix::identity(p);
        let i_minus_r_inv = LuDecomposition::new(&(&identity - &r))?.inverse()?;

        // Assemble the boundary balance system over levels 0..=m:
        // unknown row vector x = (π_0, …, π_m), one balance column per state,
        // with column 0 replaced by the normalization equation.
        let n = (m + 1) * p;
        let mut bmat = Matrix::zeros(n, n);
        let idx = |level: usize, phase: usize| level * p + phase;

        // Boundary levels 0..m-1.
        for level in 0..m {
            let up = &self.boundary_up[level];
            let local = &self.boundary_local[level];
            let down = if level >= 1 {
                Some(&self.boundary_down[level - 1])
            } else {
                None
            };
            for i in 0..p {
                let mut exit = 0.0;
                for j in 0..p {
                    let u = up[(i, j)];
                    if u != 0.0 {
                        bmat[(idx(level, i), idx(level + 1, j))] += u;
                        exit += u;
                    }
                    let l = local[(i, j)];
                    if l != 0.0 && i != j {
                        bmat[(idx(level, i), idx(level, j))] += l;
                        exit += l;
                    }
                    if let Some(d) = down {
                        let dv = d[(i, j)];
                        if dv != 0.0 {
                            bmat[(idx(level, i), idx(level - 1, j))] += dv;
                            exit += dv;
                        }
                    }
                }
                bmat[(idx(level, i), idx(level, i))] -= exit;
            }
        }
        // Level m: local part Â1 + R·A2 (the R closure of π_{m+1} A2), plus
        // the physical A2 flow down into level m-1.
        let ra2 = r.matmul(&self.a2);
        for i in 0..p {
            for j in 0..p {
                let v = a1h[(i, j)] + ra2[(i, j)];
                if v != 0.0 {
                    bmat[(idx(m, i), idx(m, j))] += v;
                }
                let d = self.a2[(i, j)];
                if d != 0.0 {
                    bmat[(idx(m, i), idx(m - 1, j))] += d;
                }
            }
        }

        // Replace the column of state (0,0) with normalization coefficients:
        // Σ_{ℓ<m} π_ℓ·1 + π_m (I−R)^{-1}·1 = 1.
        let tail_weights = i_minus_r_inv.row_sums();
        for level in 0..m {
            for i in 0..p {
                bmat[(idx(level, i), 0)] = 1.0;
            }
        }
        for i in 0..p {
            bmat[(idx(m, i), 0)] = tail_weights[i];
        }

        // Solve xᵀ from Bᵀ xᵀ = e_0.
        let bt = bmat.transpose();
        let mut rhs = vec![0.0; n];
        rhs[0] = 1.0;
        let mut x = LuDecomposition::new(&bt)?.solve(&rhs)?;
        // Numerical noise can leave tiny negative entries; clamp them.
        for v in &mut x {
            if *v < 0.0 {
                debug_assert!(
                    *v > -1e-8,
                    "boundary solve produced negative probability {v}"
                );
                *v = 0.0;
            }
        }
        Ok(QbdSolution {
            p,
            m,
            boundary: x,
            r,
            i_minus_r_inv,
        })
    }
}

/// Reusable scratch storage for the QBD `R`-matrix iterations.
///
/// Holds every intermediate the fixed-point and logarithmic-reduction
/// algorithms need — matrices, an LU factorization with reusable storage,
/// and a substitution column — so that a solve performs **zero heap
/// allocations per iteration**. Construct once and pass to
/// [`Qbd::solve_r_with_workspace`] (or let [`Qbd::solve_r`] build a
/// throwaway one); a workspace automatically regrows when handed a chain
/// with a different phase dimension.
#[derive(Debug, Clone)]
pub struct QbdWorkspace {
    p: usize,
    lu: LuDecomposition,
    col: Vec<f64>,
    pv: Vec<f64>,
    pw: Vec<f64>,
    r: Matrix,
    next: Matrix,
    c0: Matrix,
    c2: Matrix,
    b0: Matrix,
    b2: Matrix,
    g: Matrix,
    t: Matrix,
    u: Matrix,
    tmp: Matrix,
    m0: Matrix,
    m2: Matrix,
    w: Matrix,
    scratch: Matrix,
    identity: Matrix,
}

impl QbdWorkspace {
    /// A workspace for chains with phase dimension `p`.
    pub fn new(p: usize) -> Self {
        let z = || Matrix::zeros(p, p);
        Self {
            p,
            lu: LuDecomposition::identity(p.max(1)),
            col: vec![0.0; p],
            pv: vec![0.0; p],
            pw: vec![0.0; p],
            r: z(),
            next: z(),
            c0: z(),
            c2: z(),
            b0: z(),
            b2: z(),
            g: z(),
            t: z(),
            u: z(),
            tmp: z(),
            m0: z(),
            m2: z(),
            w: z(),
            scratch: z(),
            identity: Matrix::identity(p.max(1)),
        }
    }

    /// Phase dimension the buffers are currently sized for.
    pub fn phases(&self) -> usize {
        self.p
    }

    /// Regrows the buffers when the phase dimension changes.
    fn reset(&mut self, p: usize) {
        if self.p != p || self.identity.rows() != p {
            *self = Self::new(p);
        }
    }
}

/// Spectral radius estimate by power iteration on |R|.
fn spectral_radius_estimate(r: &Matrix) -> f64 {
    let p = r.rows();
    spectral_radius_estimate_into(r, &mut vec![1.0; p], &mut vec![0.0; p])
}

/// [`spectral_radius_estimate`] into caller-provided buffers: `v` and `w`
/// must have length `r.rows()`; no allocation per power-iteration step.
/// Performs the same floating-point operations in the same order as
/// allocating afresh.
fn spectral_radius_estimate_into(r: &Matrix, v: &mut [f64], w: &mut [f64]) -> f64 {
    v.fill(1.0);
    let mut lambda = 0.0;
    for _ in 0..500 {
        r.vecmat_into(v, w);
        let norm = w.iter().fold(0.0f64, |a, &x| a.max(x.abs()));
        if norm == 0.0 {
            return 0.0;
        }
        let mut delta: f64 = 0.0;
        for (wi, vi) in w.iter().zip(v.iter()) {
            delta = delta.max((wi / norm - vi).abs());
        }
        for (vi, wi) in v.iter_mut().zip(w.iter()) {
            *vi = wi / norm;
        }
        lambda = norm;
        if delta < 1e-13 {
            break;
        }
    }
    lambda
}

/// The solved stationary distribution of a [`Qbd`].
#[derive(Debug, Clone)]
pub struct QbdSolution {
    p: usize,
    m: usize,
    /// π_0, …, π_m concatenated.
    boundary: Vec<f64>,
    r: Matrix,
    i_minus_r_inv: Matrix,
}

impl QbdSolution {
    /// Phase dimension.
    pub fn phases(&self) -> usize {
        self.p
    }

    /// First repeating level `m`.
    pub fn repeating_level(&self) -> usize {
        self.m
    }

    /// The rate matrix `R`.
    pub fn r(&self) -> &Matrix {
        &self.r
    }

    /// Stationary probability vector of level `ℓ` (phase-indexed).
    pub fn level(&self, level: usize) -> Vec<f64> {
        if level <= self.m {
            self.boundary[level * self.p..(level + 1) * self.p].to_vec()
        } else {
            let mut v = self.boundary[self.m * self.p..(self.m + 1) * self.p].to_vec();
            for _ in self.m..level {
                v = self.r.vecmat(&v);
            }
            v
        }
    }

    /// Total probability mass (should be 1; useful as a diagnostic).
    pub fn total_probability(&self) -> f64 {
        let head: f64 = self.boundary[..self.m * self.p].iter().sum();
        let pim = &self.boundary[self.m * self.p..];
        let tail: f64 = self
            .i_minus_r_inv
            .row_sums()
            .iter()
            .zip(pim)
            .map(|(w, pi)| w * pi)
            .sum();
        head + tail
    }

    /// Marginal phase distribution `Σ_ℓ π_ℓ` (sums to 1).
    pub fn marginal_phases(&self) -> Vec<f64> {
        let mut acc = vec![0.0; self.p];
        for level in 0..self.m {
            let slice = &self.boundary[level * self.p..(level + 1) * self.p];
            for (a, pi) in acc.iter_mut().zip(slice) {
                *a += pi;
            }
        }
        // Geometric tail: π_m (I−R)^{-1}, a row vector times a matrix.
        let pim = &self.boundary[self.m * self.p..];
        let tail = self.i_minus_r_inv.vecmat(pim);
        for (a, t) in acc.iter_mut().zip(&tail) {
            *a += t;
        }
        acc
    }

    /// Mean level `E[L] = Σ_ℓ ℓ · π_ℓ·1`, using the closed-form geometric
    /// tail `Σ_{j≥0} (m+j) π_m R^j = m·π_m(I−R)^{-1} + π_m R (I−R)^{-2}`.
    pub fn mean_level(&self) -> f64 {
        let mut acc = 0.0;
        for level in 1..self.m {
            let slice = &self.boundary[level * self.p..(level + 1) * self.p];
            acc += level as f64 * slice.iter().sum::<f64>();
        }
        let pim = &self.boundary[self.m * self.p..];
        // m · π_m (I−R)^{-1} 1
        let w1 = self.i_minus_r_inv.row_sums();
        let s0: f64 = pim.iter().zip(&w1).map(|(pi, w)| pi * w).sum();
        // π_m R (I−R)^{-2} 1
        let inv2 = self.i_minus_r_inv.matmul(&self.i_minus_r_inv);
        let rw = self.r.matmul(&inv2).row_sums();
        let s1: f64 = pim.iter().zip(&rw).map(|(pi, w)| pi * w).sum();
        acc + self.m as f64 * s0 + s1
    }

    /// Second moment of the level, `E[L²]`, via
    /// `Σ j² R^j = R(I+R)(I−R)^{-3}`.
    pub fn second_moment_level(&self) -> f64 {
        let mut acc = 0.0;
        for level in 1..self.m {
            let slice = &self.boundary[level * self.p..(level + 1) * self.p];
            acc += (level * level) as f64 * slice.iter().sum::<f64>();
        }
        let pim = &self.boundary[self.m * self.p..];
        let m = self.m as f64;
        let inv = &self.i_minus_r_inv;
        let inv2 = inv.matmul(inv);
        let inv3 = inv2.matmul(inv);
        let identity = Matrix::identity(self.p);
        let s0w = inv.row_sums();
        let s1w = self.r.matmul(&inv2).row_sums();
        let s2w = self
            .r
            .matmul(&(&identity + &self.r))
            .matmul(&inv3)
            .row_sums();
        let s0: f64 = pim.iter().zip(&s0w).map(|(pi, w)| pi * w).sum();
        let s1: f64 = pim.iter().zip(&s1w).map(|(pi, w)| pi * w).sum();
        let s2: f64 = pim.iter().zip(&s2w).map(|(pi, w)| pi * w).sum();
        acc + m * m * s0 + 2.0 * m * s1 + s2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// M/M/1 as a trivial QBD: one phase, one boundary level.
    fn mm1_qbd(lambda: f64, mu: f64) -> Qbd {
        Qbd::new(
            vec![Matrix::from_rows(&[&[lambda]])],
            vec![Matrix::zeros(1, 1)],
            vec![],
            Matrix::from_rows(&[&[lambda]]),
            Matrix::zeros(1, 1),
            Matrix::from_rows(&[&[mu]]),
        )
        .unwrap()
    }

    #[test]
    fn mm1_r_is_rho() {
        let qbd = mm1_qbd(0.5, 1.0);
        for solver in [RSolver::FixedPoint, RSolver::LogarithmicReduction] {
            let r = qbd.solve_r(solver).unwrap();
            assert!((r[(0, 0)] - 0.5).abs() < 1e-12, "{solver:?}: {}", r[(0, 0)]);
        }
    }

    #[test]
    fn mm1_levels_are_geometric() {
        let (lambda, mu) = (0.7, 1.0);
        let sol = mm1_qbd(lambda, mu).solve().unwrap();
        let rho: f64 = lambda / mu;
        for level in 0..20 {
            let got = sol.level(level)[0];
            let want = (1.0 - rho) * rho.powi(level as i32);
            assert!((got - want).abs() < 1e-12, "level {level}: {got} vs {want}");
        }
        assert!((sol.total_probability() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mm1_mean_and_second_moment() {
        let (lambda, mu) = (0.8, 1.0);
        let sol = mm1_qbd(lambda, mu).solve().unwrap();
        let rho: f64 = lambda / mu;
        let mean = rho / (1.0 - rho);
        let second = rho * (1.0 + rho) / ((1.0 - rho) * (1.0 - rho));
        assert!(
            (sol.mean_level() - mean).abs() < 1e-10,
            "mean {}",
            sol.mean_level()
        );
        assert!(
            (sol.second_moment_level() - second).abs() < 1e-9,
            "second {}",
            sol.second_moment_level()
        );
    }

    /// M/M/k as a QBD with k boundary levels (level = number in system).
    fn mmk_qbd(lambda: f64, mu: f64, k: usize) -> Qbd {
        let up = vec![Matrix::from_rows(&[&[lambda]]); k];
        let local = vec![Matrix::zeros(1, 1); k];
        let down = (1..k)
            .map(|l| Matrix::from_rows(&[&[l as f64 * mu]]))
            .collect();
        Qbd::new(
            up,
            local,
            down,
            Matrix::from_rows(&[&[lambda]]),
            Matrix::zeros(1, 1),
            Matrix::from_rows(&[&[k as f64 * mu]]),
        )
        .unwrap()
    }

    #[test]
    fn mmk_mean_number_matches_erlang_c() {
        for (lambda, mu, k) in [(3.0, 1.0, 4u32), (1.0, 1.0, 2), (13.0, 1.0, 16)] {
            let sol = mmk_qbd(lambda, mu, k as usize).solve().unwrap();
            let reference = eirs_queueing::MMk::new(lambda, mu, k).mean_number_in_system();
            assert!(
                (sol.mean_level() - reference).abs() / reference < 1e-9,
                "k={k}: {} vs {reference}",
                sol.mean_level()
            );
            assert!((sol.total_probability() - 1.0).abs() < 1e-10);
        }
    }

    /// M/Cox2/1: service is a two-phase Coxian; phase tracks service stage.
    /// Validated against Pollaczek–Khinchine.
    fn mcox1_qbd(lambda: f64, cox: (f64, f64, f64)) -> Qbd {
        let (mu1, mu2, q) = cox;
        // Phase 0 = service stage 1, phase 1 = service stage 2.
        let a0 = Matrix::from_rows(&[&[lambda, 0.0], &[0.0, lambda]]);
        let a1 = Matrix::from_rows(&[&[0.0, q * mu1], &[0.0, 0.0]]);
        // Completion hands the server to the next job, which starts stage 1.
        let a2 = Matrix::from_rows(&[&[(1.0 - q) * mu1, 0.0], &[mu2, 0.0]]);
        // Boundary: level 0 = empty system; arrivals start in stage 1.
        let u0 = Matrix::from_rows(&[&[lambda, 0.0], &[lambda, 0.0]]);
        let l0 = Matrix::zeros(2, 2);
        Qbd::new(vec![u0], vec![l0], vec![], a0, a1, a2).unwrap()
    }

    #[test]
    fn mcox1_matches_pollaczek_khinchine() {
        let (mu1, mu2, q) = (2.0, 0.5, 0.3);
        let cox = eirs_queueing::Coxian2::new(mu1, mu2, q);
        let moments = cox.moments();
        let lambda = 0.6 / moments.m1; // target rho = 0.6
        let sol = mcox1_qbd(lambda, (mu1, mu2, q)).solve().unwrap();
        let rho = lambda * moments.m1;
        let pk = rho + rho * rho * (1.0 + moments.cv2()) / (2.0 * (1.0 - rho));
        assert!(
            (sol.mean_level() - pk).abs() / pk < 1e-9,
            "QBD {} vs P-K {pk}",
            sol.mean_level()
        );
    }

    #[test]
    fn solvers_agree_on_multiphase_chain() {
        let qbd = mcox1_qbd(0.4, (2.0, 0.5, 0.3));
        let r_lr = qbd.solve_r(RSolver::LogarithmicReduction).unwrap();
        let r_fp = qbd.solve_r(RSolver::FixedPoint).unwrap();
        assert!(r_lr.max_abs_diff(&r_fp) < 1e-9);
    }

    #[test]
    fn workspace_path_reproduces_reference_bit_for_bit() {
        // The allocation-free iterations perform the same floating-point
        // operations in the same order as the reference, so R must match
        // exactly — not just to tolerance.
        let chains = [
            mcox1_qbd(0.4, (2.0, 0.5, 0.3)),
            mcox1_qbd(0.7, (1.5, 0.8, 0.6)),
        ];
        for qbd in &chains {
            for solver in [RSolver::FixedPoint, RSolver::LogarithmicReduction] {
                let fast = qbd.solve_r(solver).unwrap();
                let reference = qbd.solve_r_reference(solver).unwrap();
                assert_eq!(
                    fast.as_slice(),
                    reference.as_slice(),
                    "{solver:?} diverged from reference"
                );
            }
        }
    }

    #[test]
    fn workspace_is_reusable_across_solves_and_dimensions() {
        let mut ws = QbdWorkspace::new(2);
        let cox = mcox1_qbd(0.4, (2.0, 0.5, 0.3));
        let first = cox
            .solve_r_with_workspace(RSolver::LogarithmicReduction, &mut ws)
            .unwrap();
        // Same chain again through the dirty workspace: identical result.
        let second = cox
            .solve_r_with_workspace(RSolver::LogarithmicReduction, &mut ws)
            .unwrap();
        assert_eq!(first.as_slice(), second.as_slice());
        // A 1-phase chain through the same workspace: buffers regrow.
        let mm1 = mm1_qbd(0.5, 1.0);
        let r = mm1
            .solve_r_with_workspace(RSolver::FixedPoint, &mut ws)
            .unwrap();
        assert!((r[(0, 0)] - 0.5).abs() < 1e-12);
        assert_eq!(ws.phases(), 1);
    }

    #[test]
    fn unstable_chain_is_detected() {
        let qbd = mm1_qbd(1.5, 1.0);
        match qbd.solve() {
            Err(QbdError::Unstable { spectral_radius }) => {
                assert!(spectral_radius >= 1.0 - 1e-9);
            }
            other => panic!("expected Unstable, got {other:?}"),
        }
    }

    #[test]
    fn critically_loaded_chain_is_detected() {
        let qbd = mm1_qbd(1.0, 1.0);
        assert!(matches!(qbd.solve(), Err(QbdError::Unstable { .. })));
    }

    #[test]
    fn rate_fn_builder_reproduces_handwritten_mmk_blocks() {
        // M/M/k via the closure builder must match the handwritten QBD
        // bit for bit: same blocks in, same solver, same numbers out.
        let (lambda, mu, k) = (3.0, 1.0, 4usize);
        let built = Qbd::from_rate_fns(
            1,
            k,
            |_, _, _| lambda,
            |_, _, _| 0.0,
            |level, _, _| (level.min(k)) as f64 * mu,
        )
        .unwrap();
        let handwritten = mmk_qbd(lambda, mu, k);
        let a = built.solve().unwrap();
        let b = handwritten.solve().unwrap();
        assert_eq!(a.mean_level().to_bits(), b.mean_level().to_bits());
        assert_eq!(a.r().as_slice(), b.r().as_slice());
    }

    #[test]
    fn rate_fn_builder_supports_multiphase_chains() {
        // The M/Cox2/1 chain through the closure builder.
        let (mu1, mu2, q) = (2.0, 0.5, 0.3);
        let lambda = 0.4;
        let built = Qbd::from_rate_fns(
            2,
            1,
            |level, a, b| {
                // Arrivals: from an empty system (level 0) the next job
                // starts in stage 1; otherwise the phase is unchanged.
                if (level == 0 && b == 0) || (level > 0 && a == b) {
                    lambda
                } else {
                    0.0
                }
            },
            |level, a, b| {
                if level >= 1 && a == 0 && b == 1 {
                    q * mu1
                } else {
                    0.0
                }
            },
            |level, a, b| {
                if level == 0 || b != 0 {
                    0.0
                } else if a == 0 {
                    (1.0 - q) * mu1
                } else {
                    mu2
                }
            },
        )
        .unwrap();
        let reference = mcox1_qbd(lambda, (mu1, mu2, q));
        let a = built.solve().unwrap();
        let b = reference.solve().unwrap();
        assert_eq!(a.mean_level().to_bits(), b.mean_level().to_bits());
    }

    #[test]
    fn rate_fn_builder_validates_inputs() {
        assert!(matches!(
            Qbd::from_rate_fns(0, 1, |_, _, _| 0.0, |_, _, _| 0.0, |_, _, _| 0.0),
            Err(QbdError::Dimension(_))
        ));
        assert!(matches!(
            Qbd::from_rate_fns(1, 0, |_, _, _| 0.0, |_, _, _| 0.0, |_, _, _| 0.0),
            Err(QbdError::Dimension(_))
        ));
        // Negative rates are rejected by block validation.
        assert!(matches!(
            Qbd::from_rate_fns(1, 1, |_, _, _| -1.0, |_, _, _| 0.0, |_, _, _| 1.0),
            Err(QbdError::Dimension(_))
        ));
    }

    #[test]
    fn dimension_validation() {
        // Mismatched block size.
        let err = Qbd::new(
            vec![Matrix::zeros(2, 2)],
            vec![Matrix::zeros(2, 2)],
            vec![],
            Matrix::zeros(1, 1),
            Matrix::zeros(1, 1),
            Matrix::zeros(1, 1),
        );
        assert!(matches!(err, Err(QbdError::Dimension(_))));
        // Negative rate.
        let err = Qbd::new(
            vec![Matrix::from_rows(&[&[-1.0]])],
            vec![Matrix::zeros(1, 1)],
            vec![],
            Matrix::from_rows(&[&[0.5]]),
            Matrix::zeros(1, 1),
            Matrix::from_rows(&[&[1.0]]),
        );
        assert!(matches!(err, Err(QbdError::Dimension(_))));
    }

    #[test]
    fn marginal_phases_sum_to_one() {
        let sol = mcox1_qbd(0.4, (2.0, 0.5, 0.3)).solve().unwrap();
        let phases = sol.marginal_phases();
        let total: f64 = phases.iter().sum();
        assert!((total - 1.0).abs() < 1e-10, "total {total}");
    }

    #[test]
    fn deep_levels_decay_geometrically() {
        let sol = mm1_qbd(0.5, 1.0).solve().unwrap();
        let l10 = sol.level(10)[0];
        let l11 = sol.level(11)[0];
        assert!((l11 / l10 - 0.5).abs() < 1e-9);
    }

    #[test]
    fn high_load_still_solves_accurately() {
        let (lambda, mu) = (0.99, 1.0);
        let sol = mm1_qbd(lambda, mu).solve().unwrap();
        let rho: f64 = lambda / mu;
        let mean = rho / (1.0 - rho);
        assert!(
            (sol.mean_level() - mean).abs() / mean < 1e-8,
            "{} vs {mean}",
            sol.mean_level()
        );
    }

    #[test]
    fn map_ph1_with_poisson_and_exp_is_mm1() {
        let (lambda, mu) = (0.6, 1.0);
        let qbd = Qbd::map_ph1(
            &Matrix::from_rows(&[&[-lambda]]),
            &Matrix::from_rows(&[&[lambda]]),
            &[1.0],
            &Matrix::from_rows(&[&[-mu]]),
        )
        .unwrap();
        let sol = qbd.solve().unwrap();
        let rho: f64 = lambda / mu;
        let mean = rho / (1.0 - rho);
        assert!(
            (sol.mean_level() - mean).abs() < 1e-9,
            "{} vs {mean}",
            sol.mean_level()
        );
    }

    #[test]
    fn map_ph1_with_erlang_service_matches_pollaczek_khinchine() {
        // M/E2/1: E[N] = rho + rho^2 (1 + cv^2) / (2 (1 - rho)), cv^2 = 1/2.
        let lambda = 0.5;
        // Erlang(2) with total rate 2 per stage: mean 1, cv^2 = 1/2.
        let s = Matrix::from_rows(&[&[-2.0, 2.0], &[0.0, -2.0]]);
        let qbd = Qbd::map_ph1(
            &Matrix::from_rows(&[&[-lambda]]),
            &Matrix::from_rows(&[&[lambda]]),
            &[1.0, 0.0],
            &s,
        )
        .unwrap();
        let sol = qbd.solve().unwrap();
        let rho: f64 = 0.5;
        let pk = rho + rho * rho * (1.0 + 0.5) / (2.0 * (1.0 - rho));
        assert!(
            (sol.mean_level() - pk).abs() / pk < 1e-8,
            "{} vs {pk}",
            sol.mean_level()
        );
    }

    #[test]
    fn map_ph1_mmpp_arrivals_congest_more_than_poisson() {
        // MMPP-2 with the same stationary rate as a Poisson reference: the
        // bursty arrivals must increase the mean queue length.
        let (r01, r10, a0, a1) = (0.5, 0.5, 1.08, 0.12);
        let rate = 0.5 * a0 + 0.5 * a1; // pi = (1/2, 1/2)
        let d0 = Matrix::from_rows(&[&[-(r01 + a0), r01], &[r10, -(r10 + a1)]]);
        let d1 = Matrix::from_rows(&[&[a0, 0.0], &[0.0, a1]]);
        let sol = Qbd::map_ph1(&d0, &d1, &[1.0], &Matrix::from_rows(&[&[-1.0]]))
            .unwrap()
            .solve()
            .unwrap();
        let rho: f64 = rate / 1.0;
        let mm1_mean = rho / (1.0 - rho);
        assert!(
            sol.mean_level() > mm1_mean * 1.05,
            "bursty {} vs poisson {mm1_mean}",
            sol.mean_level()
        );
    }

    #[test]
    fn map_ph1_rejects_malformed_inputs() {
        let one = Matrix::from_rows(&[&[-1.0]]);
        let pos = Matrix::from_rows(&[&[1.0]]);
        // alpha not a distribution.
        assert!(matches!(
            Qbd::map_ph1(&one, &pos, &[0.5], &one),
            Err(QbdError::Dimension(_))
        ));
        // shape mismatch between D0 and D1.
        assert!(matches!(
            Qbd::map_ph1(&Matrix::zeros(2, 2), &pos, &[1.0], &one),
            Err(QbdError::Dimension(_))
        ));
        // service rows must sum <= 0.
        assert!(matches!(
            Qbd::map_ph1(&one, &pos, &[1.0], &pos),
            Err(QbdError::Dimension(_))
        ));
    }
}
