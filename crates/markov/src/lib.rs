//! Continuous-time Markov chain solvers for the `eirs` reproduction.
//!
//! Three layers, matching how Berg et al. (SPAA 2020) use Markov chains:
//!
//! * [`ctmc`] — finite chains: generator assembly and stationary
//!   distributions (dense LU on the balance equations). Used for truncated
//!   cross-checks and small examples.
//! * [`absorbing`] — transient analysis of absorbing chains: expected
//!   accumulated cost until absorption by first-step analysis. The Theorem 6
//!   counterexample (`E[ΣT]` for IF vs EF with no arrivals) is an instance
//!   with cost rate = number of jobs in system.
//! * [`transient`] — time-dependent distributions by uniformization
//!   (Jensen's method), for relaxation and warm-up questions.
//! * [`qbd`] — quasi-birth–death chains: level-independent repeating blocks
//!   `(A0, A1, A2)` after a finite level-dependent boundary, solved by
//!   matrix-analytic methods (Neuts; Latouche & Ramaswami). This is the
//!   engine behind the paper's Section 5 response-time analysis: the
//!   busy-period-transformed EF and IF chains are exactly such QBDs, and
//!   the workload scenario engine assembles MAP×phase-type chains through
//!   [`qbd::Qbd::from_rate_fns`] and [`qbd::Qbd::map_ph1`].
//!
//! # Example: the M/M/1 queue as a one-phase QBD
//!
//! The level is the number in system; arrivals go up at rate `λ`, services
//! down at rate `µ`. Solving the chain recovers the classical mean queue
//! length `ρ/(1−ρ)`:
//!
//! ```
//! use eirs_markov::Qbd;
//!
//! let (lambda, mu) = (0.5, 1.0);
//! let qbd = Qbd::from_rate_fns(
//!     1,                                              // one phase
//!     1,                                              // boundary = level 0
//!     |_, _, _| lambda,                               // up
//!     |_, _, _| 0.0,                                  // within level
//!     |_, _, _| mu,                                   // down
//! ).unwrap();
//! let solution = qbd.solve().unwrap();
//! let rho = lambda / mu;
//! assert!((solution.mean_level() - rho / (1.0 - rho)).abs() < 1e-10);
//! ```

pub mod absorbing;
pub mod ctmc;
pub mod qbd;
pub mod transient;

pub use absorbing::AbsorbingCtmc;
pub use ctmc::FiniteCtmc;
pub use qbd::{Qbd, QbdError, QbdSolution, QbdWorkspace, RSolver};
pub use transient::{transient_distribution, transient_mean};
