//! Absorbing (transient) CTMC analysis by first-step equations.
//!
//! Theorem 6 of the paper computes expected *total* response time for a
//! closed system (no arrivals) by summing, over the transient trajectory,
//! `∫ N(t) dt` — the time-integral of the number of jobs in system. For an
//! absorbing CTMC with transient generator `Q_T` and per-state cost rate
//! `c`, the vector of expected accumulated costs until absorption solves
//!
//! ```text
//! (−Q_T) x = c.
//! ```
//!
//! With `c ≡ 1` this is the expected time to absorption; with `c(s) =`
//! number of jobs in state `s` it is the expected sum of response times
//! (each job contributes its own sojourn to the integral).

use eirs_numerics::lu::{LinAlgError, LuDecomposition};
use eirs_numerics::Matrix;

/// An absorbing CTMC described by its transient states.
///
/// Transient states are indices `0..n`; transitions may lead to another
/// transient state or to "absorption" (anywhere outside).
#[derive(Debug, Clone)]
pub struct AbsorbingCtmc {
    n: usize,
    /// Off-diagonal transient-to-transient rates.
    rates: Matrix,
    /// Rate from each transient state straight to absorption.
    to_absorbing: Vec<f64>,
}

impl AbsorbingCtmc {
    /// A chain with `n` transient states and no transitions yet.
    pub fn new(n: usize) -> Self {
        assert!(n > 0);
        Self {
            n,
            rates: Matrix::zeros(n, n),
            to_absorbing: vec![0.0; n],
        }
    }

    /// Number of transient states.
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` when there are no transient states (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Adds `rate` from transient state `from` to transient state `to`.
    pub fn add_rate(&mut self, from: usize, to: usize, rate: f64) {
        assert!(from < self.n && to < self.n);
        assert_ne!(from, to);
        assert!(rate >= 0.0 && rate.is_finite());
        self.rates[(from, to)] += rate;
    }

    /// Adds `rate` from `from` directly to the absorbing state.
    pub fn add_absorbing_rate(&mut self, from: usize, rate: f64) {
        assert!(from < self.n);
        assert!(rate >= 0.0 && rate.is_finite());
        self.to_absorbing[from] += rate;
    }

    /// Expected accumulated cost until absorption, starting from each
    /// transient state: solves `(−Q_T) x = cost_rates`.
    ///
    /// Fails when some transient state cannot reach absorption (the system
    /// is then singular).
    pub fn expected_cost_to_absorption(&self, cost_rates: &[f64]) -> Result<Vec<f64>, LinAlgError> {
        assert_eq!(cost_rates.len(), self.n);
        let mut neg_qt = Matrix::zeros(self.n, self.n);
        for i in 0..self.n {
            let exit: f64 = self.rates.row(i).iter().sum::<f64>() + self.to_absorbing[i];
            neg_qt[(i, i)] = exit;
            for j in 0..self.n {
                if i != j {
                    neg_qt[(i, j)] = -self.rates[(i, j)];
                }
            }
        }
        LuDecomposition::new(&neg_qt)?.solve(cost_rates)
    }

    /// Expected time to absorption from each transient state.
    pub fn expected_time_to_absorption(&self) -> Result<Vec<f64>, LinAlgError> {
        self.expected_cost_to_absorption(&vec![1.0; self.n])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_state_exponential_absorption() {
        let mut c = AbsorbingCtmc::new(1);
        c.add_absorbing_rate(0, 2.0);
        let t = c.expected_time_to_absorption().unwrap();
        assert!((t[0] - 0.5).abs() < 1e-14);
    }

    #[test]
    fn two_stage_erlang_absorption_time() {
        // 0 -> 1 at rate µ, 1 -> absorb at rate µ: E[time] = 2/µ.
        let mu = 4.0;
        let mut c = AbsorbingCtmc::new(2);
        c.add_rate(0, 1, mu);
        c.add_absorbing_rate(1, mu);
        let t = c.expected_time_to_absorption().unwrap();
        assert!((t[0] - 2.0 / mu).abs() < 1e-14);
        assert!((t[1] - 1.0 / mu).abs() < 1e-14);
    }

    #[test]
    fn branching_chain_weights_costs_by_path_probability() {
        // From 0: rate 1 to state 1, rate 3 to absorption.
        // From 1: rate 2 to absorption. Cost rate 1 everywhere.
        // E[T from 0] = 1/4 + (1/4)(1/2) = 0.375.
        let mut c = AbsorbingCtmc::new(2);
        c.add_rate(0, 1, 1.0);
        c.add_absorbing_rate(0, 3.0);
        c.add_absorbing_rate(1, 2.0);
        let t = c.expected_time_to_absorption().unwrap();
        assert!((t[0] - 0.375).abs() < 1e-14);
    }

    #[test]
    fn cost_rates_scale_the_answer() {
        let mut c = AbsorbingCtmc::new(1);
        c.add_absorbing_rate(0, 1.0);
        let x = c.expected_cost_to_absorption(&[7.0]).unwrap();
        assert!((x[0] - 7.0).abs() < 1e-14);
    }

    #[test]
    fn unreachable_absorption_is_singular() {
        // State 0 <-> 1 with no path to absorption.
        let mut c = AbsorbingCtmc::new(2);
        c.add_rate(0, 1, 1.0);
        c.add_rate(1, 0, 1.0);
        assert!(c.expected_time_to_absorption().is_err());
    }

    #[test]
    fn mm1_draining_matches_hand_computation() {
        // Two jobs in an M/M/1 with no arrivals, service rate µ = 1:
        // E[Σ response times] = E[∫N dt] = 2·(1/µ) + 1·(1/µ) = 3.
        // States: 0 = two jobs, 1 = one job.
        let mut c = AbsorbingCtmc::new(2);
        c.add_rate(0, 1, 1.0);
        c.add_absorbing_rate(1, 1.0);
        let x = c.expected_cost_to_absorption(&[2.0, 1.0]).unwrap();
        assert!((x[0] - 3.0).abs() < 1e-14);
    }
}
