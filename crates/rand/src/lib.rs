//! Vendored, dependency-free stand-in for the subset of the `rand` crate API
//! this workspace uses.
//!
//! The build environment is fully offline, so instead of the crates.io
//! `rand` this path dependency provides the same names with a deterministic
//! xoshiro256++ generator behind [`rngs::StdRng`]:
//!
//! * [`RngCore`] — raw 32/64-bit output,
//! * [`Rng`] — the `random::<T>()` convenience (blanket-implemented for all
//!   `RngCore`, including `dyn RngCore`),
//! * [`SeedableRng`] — `seed_from_u64` / `from_seed`,
//! * [`rngs::StdRng`] — the workspace's only concrete generator.
//!
//! Streams seeded with different values are decorrelated by running the
//! 64-bit seed through SplitMix64 to fill the 256-bit state, exactly the
//! scheme the xoshiro authors recommend. The reproduction only needs
//! determinism and good statistical quality — not compatibility with the
//! real `rand`'s byte streams — and every test in the workspace seeds
//! explicitly.

/// A source of random 32/64-bit words.
pub trait RngCore {
    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32;

    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types samplable uniformly from raw random bits (the "standard"
/// distribution: `f64` in `[0, 1)`, integers over their full range).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits → [0, 1) with full double precision.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Convenience sampling on top of [`RngCore`].
pub trait Rng: RngCore {
    /// Draws one value of `T` from the standard distribution.
    #[inline]
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of generators from seeds.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: AsMut<[u8]> + Default;

    /// Builds the generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a 64-bit seed (SplitMix64-expanded).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64 { state };
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next_u64().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// SplitMix64: seed expander (public so seed-stream derivation elsewhere in
/// the workspace can reuse it).
#[derive(Debug, Clone, Copy)]
pub struct SplitMix64 {
    /// Current state.
    pub state: u64,
}

impl SplitMix64 {
    /// The next 64-bit output, advancing the state.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    ///
    /// Not byte-compatible with the crates.io `StdRng` (which is ChaCha12);
    /// every consumer in this repository seeds explicitly and only relies on
    /// run-to-run determinism.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (word, chunk) in s.iter_mut().zip(seed.chunks_exact(8)) {
                *word = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            // An all-zero state is a fixed point of xoshiro; nudge it.
            if s == [0, 0, 0, 0] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            Self { s }
        }
    }
}

/// Glob-import convenience, mirroring `rand::prelude`.
pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::SplitMix64;

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn f64_samples_lie_in_unit_interval_with_sane_mean() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn works_through_dyn_rng_core() {
        let mut rng = StdRng::seed_from_u64(3);
        let dynr: &mut dyn super::RngCore = &mut rng;
        let x: f64 = super::Rng::random(&mut *dynr);
        assert!((0.0..1.0).contains(&x));
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn splitmix_matches_reference_vector() {
        // Reference values for seed 1234567 from the published SplitMix64.
        let mut sm = SplitMix64 { state: 1234567 };
        assert_eq!(sm.next_u64(), 6457827717110365317);
        assert_eq!(sm.next_u64(), 3203168211198807973);
    }
}
