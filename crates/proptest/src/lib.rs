//! Vendored, dependency-free stand-in for the subset of the `proptest` API
//! this workspace's property tests use.
//!
//! The build environment is offline, so instead of the crates.io `proptest`
//! this path dependency provides the same surface backed by plain seeded
//! random sampling:
//!
//! * [`Strategy`] with [`Strategy::prop_map`], range strategies for the
//!   numeric types the tests draw, tuple strategies, and
//!   [`prop::collection::vec`];
//! * the [`proptest!`] macro (with optional
//!   `#![proptest_config(ProptestConfig::with_cases(n))]` header);
//! * [`prop_assert!`] / [`prop_assert_eq!`].
//!
//! Differences from the real crate: cases are sampled from a fixed
//! per-test seed (derived from the test name, so failures reproduce), and
//! there is **no shrinking** — a failing case panics with the assertion
//! message directly. That trade keeps the workspace self-contained while
//! preserving the tests' semantics.

use rand::prelude::*;
use std::ops::{Range, RangeInclusive};

/// Number of cases to run per property.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Cases sampled per property test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// A value generator: the sampling core of a proptest strategy.
pub trait Strategy {
    /// Type of generated values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn sample(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut StdRng) -> f64 {
        let u: f64 = rng.random();
        self.start + u * (self.end - self.start)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut StdRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut StdRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64 + 1;
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

/// Strategy modules, mirroring `proptest::prop`.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::Strategy;
        use rand::prelude::*;
        use std::ops::Range;

        /// Admissible length specs for [`vec()`]: a fixed count or a range.
        #[derive(Debug, Clone)]
        pub struct SizeRange {
            lo: usize,
            hi: usize,
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> Self {
                Self { lo: n, hi: n + 1 }
            }
        }

        impl From<Range<usize>> for SizeRange {
            fn from(r: Range<usize>) -> Self {
                assert!(r.start < r.end, "empty size range");
                Self {
                    lo: r.start,
                    hi: r.end,
                }
            }
        }

        impl From<i32> for SizeRange {
            fn from(n: i32) -> Self {
                usize::try_from(n).expect("nonnegative length").into()
            }
        }

        impl From<Range<i32>> for SizeRange {
            fn from(r: Range<i32>) -> Self {
                let lo = usize::try_from(r.start).expect("nonnegative length");
                let hi = usize::try_from(r.end).expect("nonnegative length");
                (lo..hi).into()
            }
        }

        /// Vectors of `element` with length drawn from `size`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }

        /// Strategy produced by [`vec()`].
        #[derive(Debug, Clone)]
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
                let span = (self.size.hi - self.size.lo) as u64;
                let len = self.size.lo
                    + if span > 0 {
                        (rng.next_u64() % span) as usize
                    } else {
                        0
                    };
                (0..len).map(|_| self.element.sample(rng)).collect()
            }
        }
    }
}

/// Deterministic per-test RNG derived from the test's name (FNV-1a), so a
/// failing case reproduces run to run.
pub fn test_rng(test_name: &str) -> StdRng {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    StdRng::seed_from_u64(hash)
}

/// Assertion inside a property body (no shrinking: panics directly).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assertion inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Inequality assertion inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` sampled cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr) $(#[$attr:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block $($rest:tt)*) => {
        $(#[$attr])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::test_rng(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                let _ = case;
                $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)*
                $body
            }
        }
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    (($cfg:expr)) => {};
}

/// Glob import mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::prop;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{ProptestConfig, Strategy};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(x in 1u32..10, y in -2.0f64..3.0, z in 5u64..=6) {
            prop_assert!((1..10).contains(&x));
            prop_assert!((-2.0..3.0).contains(&y));
            prop_assert!(z == 5 || z == 6);
        }

        #[test]
        fn vec_lengths_and_maps(v in prop::collection::vec(0.0f64..1.0, 3..7)) {
            prop_assert!((3..7).contains(&v.len()));
            prop_assert!(v.iter().all(|x| (0.0..1.0).contains(x)));
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(pair in (1u32..4, 0.0f64..1.0)) {
            prop_assert!(pair.0 < 4);
        }
    }

    #[test]
    fn prop_map_transforms() {
        let strat = (0u32..5).prop_map(|x| x * 2);
        let mut rng = super::test_rng("prop_map_transforms");
        for _ in 0..50 {
            let v = strat.sample(&mut rng);
            assert!(v % 2 == 0 && v < 10);
        }
    }

    #[test]
    fn test_rng_is_stable_per_name() {
        use rand::RngCore;
        let a = super::test_rng("x").next_u64();
        let b = super::test_rng("x").next_u64();
        let c = super::test_rng("y").next_u64();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
