//! Floating-point comparison helpers shared across the workspace tests.

/// Absolute difference `|a - b|`.
#[inline]
pub fn abs_diff(a: f64, b: f64) -> f64 {
    (a - b).abs()
}

/// Relative difference `|a - b| / max(|a|, |b|)`, or the absolute difference
/// when both magnitudes are below `1e-12` (where a relative measure is
/// meaningless).
#[inline]
pub fn rel_diff(a: f64, b: f64) -> f64 {
    let scale = a.abs().max(b.abs());
    if scale < 1e-12 {
        abs_diff(a, b)
    } else {
        abs_diff(a, b) / scale
    }
}

/// `true` when `a` and `b` agree to within `tol` relatively (or absolutely
/// for tiny magnitudes). NaNs never compare equal.
#[inline]
pub fn approx_eq(a: f64, b: f64, tol: f64) -> bool {
    rel_diff(a, b) <= tol
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_values_are_equal() {
        assert!(approx_eq(1.0, 1.0, 0.0));
        assert!(approx_eq(0.0, 0.0, 0.0));
    }

    #[test]
    fn relative_tolerance_scales_with_magnitude() {
        assert!(approx_eq(1e12, 1e12 + 1.0, 1e-9));
        assert!(!approx_eq(1.0, 1.001, 1e-6));
    }

    #[test]
    fn tiny_magnitudes_use_absolute_difference() {
        assert!(approx_eq(1e-15, -1e-15, 1e-12));
        assert!(!approx_eq(1e-15, 1e-3, 1e-12));
    }

    #[test]
    fn nan_is_never_equal() {
        assert!(!approx_eq(f64::NAN, f64::NAN, 1.0));
        assert!(!approx_eq(f64::NAN, 0.0, 1.0));
    }
}
