//! Deterministic fork-join parallelism on scoped OS threads.
//!
//! This is the substrate under `eirs_core::sweep` (figure-grid fan-out) and
//! `eirs_sim::replicate` (replication fan-out). It is intentionally tiny:
//! a work queue over an index counter, scoped `std::thread` workers (so
//! closures may borrow locals), and slot-addressed result storage so output
//! order always equals input order no matter how the OS schedules workers.
//! Determinism therefore reduces to the mapped function being a pure
//! function of its input — which every sweep point and seeded replication
//! in this workspace is.
//!
//! No work-stealing, no rayon: the workloads here are hundreds of
//! independent solves. Workers claim **chunks** of consecutive items from
//! a shared atomic counter (several chunks per worker, so stragglers still
//! balance) and buffer results locally; the caller reassembles them into
//! input order after the join. Compared to the original per-item counter +
//! mutexed result vector, this amortizes all cross-thread synchronization
//! over a chunk — the difference between 0.94× and real speedup when the
//! per-item cost is tens of microseconds (dense figure-4 sweep cells).

use std::sync::atomic::{AtomicUsize, Ordering};

/// Environment variable overriding the worker-thread count.
pub const THREADS_ENV: &str = "EIRS_THREADS";

/// Process-wide programmatic override (0 = unset). Takes precedence over
/// [`THREADS_ENV`] so a command-line flag can win over the environment.
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Sets a process-wide worker-thread count, overriding both the
/// `EIRS_THREADS` environment variable and the detected core count.
/// `None` clears the override. Used by the `eirs --threads N` flag.
pub fn set_num_threads(threads: Option<usize>) {
    THREAD_OVERRIDE.store(threads.unwrap_or(0), Ordering::SeqCst);
}

/// Worker threads to use by default: the [`set_num_threads`] override if
/// set, else `EIRS_THREADS` if set and positive, otherwise the machine's
/// available parallelism.
pub fn num_threads() -> usize {
    let forced = THREAD_OVERRIDE.load(Ordering::SeqCst);
    if forced >= 1 {
        return forced;
    }
    if let Ok(raw) = std::env::var(THREADS_ENV) {
        if let Ok(n) = raw.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// How many chunks each worker should see on average. More chunks → finer
/// load balancing; fewer → less counter traffic. Four is enough that one
/// straggler chunk costs at most ~1/4 of a worker's share of the sweep.
const CHUNKS_PER_WORKER: usize = 4;

/// Maps `f` over `items` on `threads` scoped worker threads, returning
/// results in input order. With `threads <= 1` (or fewer than two items)
/// the map runs inline on the caller's thread with no synchronization —
/// the serial reference path.
///
/// Work is claimed in chunks of consecutive items (a few chunks per
/// worker — see `CHUNKS_PER_WORKER`) from one atomic counter;
/// each worker buffers its `(chunk start, results)` pairs locally and the
/// caller stitches them back into input order, so there is no shared
/// result lock and the per-item overhead is a plain function call.
/// Items remain evaluated exactly once, in-chunk order, by a pure `f` —
/// output is bit-identical to the serial path regardless of scheduling.
///
/// Panics in `f` propagate to the caller once all workers have stopped.
pub fn par_map_ordered<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    if threads <= 1 || items.len() <= 1 {
        return items.iter().map(f).collect();
    }
    let workers = threads.min(items.len());
    let chunk = items.len().div_ceil(workers * CHUNKS_PER_WORKER).max(1);
    let nchunks = items.len().div_ceil(chunk);
    let next = AtomicUsize::new(0);

    let pieces: Vec<(usize, Vec<R>)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut mine: Vec<(usize, Vec<R>)> = Vec::new();
                    loop {
                        let c = next.fetch_add(1, Ordering::Relaxed);
                        if c >= nchunks {
                            break;
                        }
                        let start = c * chunk;
                        let end = (start + chunk).min(items.len());
                        mine.push((start, items[start..end].iter().map(&f).collect()));
                    }
                    mine
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| match h.join() {
                Ok(v) => v,
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    });

    let mut slots: Vec<Option<R>> = Vec::with_capacity(items.len());
    slots.resize_with(items.len(), || None);
    for (start, rs) in pieces {
        for (offset, r) in rs.into_iter().enumerate() {
            slots[start + offset] = Some(r);
        }
    }
    slots
        .into_iter()
        .map(|r| r.expect("every chunk claimed exactly once"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let items: Vec<u64> = (0..257).collect();
        let out = par_map_ordered(&items, 4, |&x| x * x);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, (i * i) as u64);
        }
    }

    #[test]
    fn single_thread_is_inline() {
        let items = vec![1, 2, 3];
        let out = par_map_ordered(&items, 1, |&x| x + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn parallel_equals_serial() {
        let items: Vec<f64> = (0..100).map(|i| i as f64 * 0.37).collect();
        let f = |x: &f64| (x.sin() * 1e6).to_bits();
        let serial = par_map_ordered(&items, 1, f);
        let parallel = par_map_ordered(&items, 8, f);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty: Vec<u32> = vec![];
        assert!(par_map_ordered(&empty, 4, |&x| x).is_empty());
        assert_eq!(par_map_ordered(&[7], 4, |&x| x * 2), vec![14]);
    }

    #[test]
    fn closures_may_borrow_locals() {
        let offset = 10;
        let items = vec![1, 2, 3];
        let out = par_map_ordered(&items, 2, |&x| x + offset);
        assert_eq!(out, vec![11, 12, 13]);
    }

    #[test]
    fn chunked_claiming_covers_ragged_lengths() {
        // Lengths that don't divide evenly into chunks, plus more workers
        // than items: every slot must still be filled exactly once.
        for len in [2usize, 3, 7, 17, 63, 100, 257] {
            for threads in [2usize, 3, 8, 300] {
                let items: Vec<usize> = (0..len).collect();
                let out = par_map_ordered(&items, threads, |&x| x * 3);
                assert_eq!(out.len(), len);
                for (i, v) in out.iter().enumerate() {
                    assert_eq!(*v, i * 3, "len={len} threads={threads}");
                }
            }
        }
    }

    #[test]
    fn worker_panics_propagate_to_caller() {
        let result = std::panic::catch_unwind(|| {
            let items: Vec<u32> = (0..64).collect();
            par_map_ordered(&items, 4, |&x| {
                assert!(x != 33, "injected failure");
                x
            })
        });
        assert!(result.is_err());
    }

    #[test]
    fn num_threads_is_positive() {
        assert!(num_threads() >= 1);
    }

    #[test]
    fn programmatic_override_wins_and_clears() {
        // Note: other tests in this module do not touch the override, so
        // setting and clearing it here is race-free in practice (and the
        // assertion with the override set is exact either way).
        set_num_threads(Some(3));
        assert_eq!(num_threads(), 3);
        set_num_threads(None);
        assert!(num_threads() >= 1);
    }
}
