//! Deterministic fork-join parallelism on scoped OS threads.
//!
//! This is the substrate under `eirs_core::sweep` (figure-grid fan-out) and
//! `eirs_sim::replicate` (replication fan-out). It is intentionally tiny:
//! a work queue over an index counter, scoped `std::thread` workers (so
//! closures may borrow locals), and slot-addressed result storage so output
//! order always equals input order no matter how the OS schedules workers.
//! Determinism therefore reduces to the mapped function being a pure
//! function of its input — which every sweep point and seeded replication
//! in this workspace is.
//!
//! No work-stealing, no rayon: the workloads here are hundreds of
//! independent, multi-millisecond solves, where a shared atomic counter
//! already balances load to within one item.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Environment variable overriding the worker-thread count.
pub const THREADS_ENV: &str = "EIRS_THREADS";

/// Process-wide programmatic override (0 = unset). Takes precedence over
/// [`THREADS_ENV`] so a command-line flag can win over the environment.
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Sets a process-wide worker-thread count, overriding both the
/// `EIRS_THREADS` environment variable and the detected core count.
/// `None` clears the override. Used by the `eirs --threads N` flag.
pub fn set_num_threads(threads: Option<usize>) {
    THREAD_OVERRIDE.store(threads.unwrap_or(0), Ordering::SeqCst);
}

/// Worker threads to use by default: the [`set_num_threads`] override if
/// set, else `EIRS_THREADS` if set and positive, otherwise the machine's
/// available parallelism.
pub fn num_threads() -> usize {
    let forced = THREAD_OVERRIDE.load(Ordering::SeqCst);
    if forced >= 1 {
        return forced;
    }
    if let Ok(raw) = std::env::var(THREADS_ENV) {
        if let Ok(n) = raw.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Maps `f` over `items` on `threads` scoped worker threads, returning
/// results in input order. With `threads <= 1` (or fewer than two items)
/// the map runs inline on the caller's thread with no synchronization —
/// the serial reference path.
///
/// Panics in `f` propagate to the caller once all workers have stopped.
pub fn par_map_ordered<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    if threads <= 1 || items.len() <= 1 {
        return items.iter().map(f).collect();
    }
    let workers = threads.min(items.len());
    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<R>> = Vec::with_capacity(items.len());
    slots.resize_with(items.len(), || None);
    let results = Mutex::new(slots);

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let idx = next.fetch_add(1, Ordering::Relaxed);
                if idx >= items.len() {
                    break;
                }
                let r = f(&items[idx]);
                results.lock().expect("no poisoned result lock")[idx] = Some(r);
            });
        }
    });

    results
        .into_inner()
        .expect("no poisoned result lock")
        .into_iter()
        .map(|r| r.expect("every slot filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let items: Vec<u64> = (0..257).collect();
        let out = par_map_ordered(&items, 4, |&x| x * x);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, (i * i) as u64);
        }
    }

    #[test]
    fn single_thread_is_inline() {
        let items = vec![1, 2, 3];
        let out = par_map_ordered(&items, 1, |&x| x + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn parallel_equals_serial() {
        let items: Vec<f64> = (0..100).map(|i| i as f64 * 0.37).collect();
        let f = |x: &f64| (x.sin() * 1e6).to_bits();
        let serial = par_map_ordered(&items, 1, f);
        let parallel = par_map_ordered(&items, 8, f);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty: Vec<u32> = vec![];
        assert!(par_map_ordered(&empty, 4, |&x| x).is_empty());
        assert_eq!(par_map_ordered(&[7], 4, |&x| x * 2), vec![14]);
    }

    #[test]
    fn closures_may_borrow_locals() {
        let offset = 10;
        let items = vec![1, 2, 3];
        let out = par_map_ordered(&items, 2, |&x| x + offset);
        assert_eq!(out, vec![11, 12, 13]);
    }

    #[test]
    fn num_threads_is_positive() {
        assert!(num_threads() >= 1);
    }

    #[test]
    fn programmatic_override_wins_and_clears() {
        // Note: other tests in this module do not touch the override, so
        // setting and clearing it here is race-free in practice (and the
        // assertion with the override set is exact either way).
        set_num_threads(Some(3));
        assert_eq!(num_threads(), 3);
        set_num_threads(None);
        assert!(num_threads() >= 1);
    }
}
