//! Scalar root finding: closed-form quadratics/cubics and safeguarded
//! iteration.
//!
//! The Coxian moment fit in `eirs-queueing` reduces to a quadratic whose
//! coefficients can be nearly degenerate (the leading coefficient vanishes as
//! the busy period approaches an exponential), so [`solve_quadratic`] handles
//! the linear limit explicitly and uses the numerically stable "citardauq"
//! form for the smaller root.

/// Real roots of `a x^2 + b x + c = 0`, ascending. Degenerate cases:
/// `a == 0` falls back to the linear equation; no real roots yields an empty
/// vector; a double root is reported once.
pub fn solve_quadratic(a: f64, b: f64, c: f64) -> Vec<f64> {
    if a == 0.0 {
        if b == 0.0 {
            return Vec::new();
        }
        return vec![-c / b];
    }
    let disc = b * b - 4.0 * a * c;
    if disc < 0.0 {
        return Vec::new();
    }
    if disc == 0.0 {
        return vec![-b / (2.0 * a)];
    }
    let sq = disc.sqrt();
    // q = -(b + sign(b) * sqrt(disc)) / 2 avoids cancellation between -b and
    // the square root.
    let q = -0.5 * (b + b.signum() * sq);
    let (r1, r2) = if b == 0.0 {
        let r = sq / (2.0 * a);
        (-r, r)
    } else {
        (q / a, c / q)
    };
    let mut roots = vec![r1, r2];
    roots.sort_by(|x, y| x.partial_cmp(y).expect("roots are finite"));
    roots
}

/// Real roots of `x^3 + p x^2 + q x + r = 0`, ascending, via the
/// trigonometric method on the depressed cubic (Cardano for the
/// one-real-root case).
pub fn solve_cubic_monic(p: f64, q: f64, r: f64) -> Vec<f64> {
    // Depress: x = t - p/3 gives t^3 + at + b = 0.
    let a = q - p * p / 3.0;
    let b = 2.0 * p * p * p / 27.0 - p * q / 3.0 + r;
    let shift = -p / 3.0;
    let disc = -(4.0 * a * a * a + 27.0 * b * b);
    let mut roots = if disc > 0.0 {
        // Three distinct real roots.
        let m = 2.0 * (-a / 3.0).sqrt();
        let theta = (3.0 * b / (a * m)).clamp(-1.0, 1.0).acos() / 3.0;
        (0..3)
            .map(|k| m * (theta - 2.0 * std::f64::consts::PI * k as f64 / 3.0).cos() + shift)
            .collect()
    } else if disc == 0.0 {
        if a == 0.0 {
            vec![shift]
        } else {
            // Double root and a simple root.
            vec![3.0 * b / a + shift, -3.0 * b / (2.0 * a) + shift]
        }
    } else {
        // One real root (Cardano).
        let half_b = b / 2.0;
        let delta = (half_b * half_b + a * a * a / 27.0).sqrt();
        let u = cbrt(-half_b + delta);
        let v = cbrt(-half_b - delta);
        vec![u + v + shift]
    };
    roots.sort_by(|x, y| x.partial_cmp(y).expect("roots are finite"));
    roots.dedup_by(|x, y| (*x - *y).abs() < 1e-12 * (1.0 + x.abs()));
    roots
}

#[inline]
fn cbrt(x: f64) -> f64 {
    x.signum() * x.abs().powf(1.0 / 3.0)
}

/// Robust bisection on `[lo, hi]`: requires a sign change, returns a point
/// where `|f|` is tiny or the bracket has shrunk below `tol`.
pub fn bisect<F: Fn(f64) -> f64>(f: F, mut lo: f64, mut hi: f64, tol: f64) -> Option<f64> {
    let mut flo = f(lo);
    let fhi = f(hi);
    if flo == 0.0 {
        return Some(lo);
    }
    if fhi == 0.0 {
        return Some(hi);
    }
    if flo.signum() == fhi.signum() {
        return None;
    }
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        let fmid = f(mid);
        if fmid == 0.0 || hi - lo < tol {
            return Some(mid);
        }
        if fmid.signum() == flo.signum() {
            lo = mid;
            flo = fmid;
        } else {
            hi = mid;
        }
    }
    Some(0.5 * (lo + hi))
}

/// Newton iteration with a bisection fallback bracket. `f` must return the
/// pair `(value, derivative)`.
pub fn newton_bracketed<F>(f: F, mut lo: f64, mut hi: f64, x0: f64, tol: f64) -> Option<f64>
where
    F: Fn(f64) -> (f64, f64),
{
    let (flo, _) = f(lo);
    let (fhi, _) = f(hi);
    if flo == 0.0 {
        return Some(lo);
    }
    if fhi == 0.0 {
        return Some(hi);
    }
    if flo.signum() == fhi.signum() {
        return None;
    }
    let mut x = x0.clamp(lo, hi);
    for _ in 0..100 {
        let (fx, dfx) = f(x);
        if fx.abs() < tol {
            return Some(x);
        }
        // Maintain the bracket.
        if fx.signum() == flo.signum() {
            lo = x;
        } else {
            hi = x;
        }
        let newton = if dfx != 0.0 { x - fx / dfx } else { f64::NAN };
        x = if newton.is_finite() && newton > lo && newton < hi {
            newton
        } else {
            0.5 * (lo + hi)
        };
        if hi - lo < tol {
            return Some(x);
        }
    }
    Some(x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx::approx_eq;

    #[test]
    fn quadratic_simple_roots() {
        let r = solve_quadratic(1.0, -3.0, 2.0);
        assert_eq!(r.len(), 2);
        assert!(approx_eq(r[0], 1.0, 1e-14));
        assert!(approx_eq(r[1], 2.0, 1e-14));
    }

    #[test]
    fn quadratic_no_real_roots() {
        assert!(solve_quadratic(1.0, 0.0, 1.0).is_empty());
    }

    #[test]
    fn quadratic_double_root() {
        let r = solve_quadratic(1.0, -2.0, 1.0);
        assert_eq!(r.len(), 1);
        assert!(approx_eq(r[0], 1.0, 1e-14));
    }

    #[test]
    fn quadratic_linear_fallback() {
        let r = solve_quadratic(0.0, 2.0, -4.0);
        assert_eq!(r, vec![2.0]);
        assert!(solve_quadratic(0.0, 0.0, 1.0).is_empty());
    }

    #[test]
    fn quadratic_is_stable_under_cancellation() {
        // x^2 - 1e8 x + 1 = 0 has roots ~1e8 and ~1e-8; the naive formula
        // destroys the small one.
        let r = solve_quadratic(1.0, -1e8, 1.0);
        assert_eq!(r.len(), 2);
        assert!(approx_eq(r[0], 1e-8, 1e-9));
        assert!(approx_eq(r[1], 1e8, 1e-12));
    }

    #[test]
    fn quadratic_zero_b() {
        let r = solve_quadratic(1.0, 0.0, -4.0);
        assert_eq!(r.len(), 2);
        assert!(approx_eq(r[0], -2.0, 1e-14));
        assert!(approx_eq(r[1], 2.0, 1e-14));
    }

    #[test]
    fn cubic_three_real_roots() {
        // (x-1)(x-2)(x-3) = x^3 - 6x^2 + 11x - 6
        let r = solve_cubic_monic(-6.0, 11.0, -6.0);
        assert_eq!(r.len(), 3);
        for (got, want) in r.iter().zip([1.0, 2.0, 3.0]) {
            assert!(approx_eq(*got, want, 1e-10), "{got} vs {want}");
        }
    }

    #[test]
    fn cubic_single_real_root() {
        // x^3 + x + 1 has one real root near -0.6823278
        let r = solve_cubic_monic(0.0, 1.0, 1.0);
        assert_eq!(r.len(), 1);
        assert!(approx_eq(r[0], -0.682_327_803_828_019_3, 1e-10));
    }

    #[test]
    fn cubic_triple_root() {
        // (x-2)^3 = x^3 - 6x^2 + 12x - 8
        let r = solve_cubic_monic(-6.0, 12.0, -8.0);
        assert_eq!(r.len(), 1);
        assert!(approx_eq(r[0], 2.0, 1e-9));
    }

    #[test]
    fn bisect_finds_sqrt2() {
        let root = bisect(|x| x * x - 2.0, 0.0, 2.0, 1e-12).unwrap();
        assert!(approx_eq(root, std::f64::consts::SQRT_2, 1e-10));
    }

    #[test]
    fn bisect_requires_sign_change() {
        assert!(bisect(|x| x * x + 1.0, -1.0, 1.0, 1e-12).is_none());
    }

    #[test]
    fn newton_converges_quadratically_inside_bracket() {
        let f = |x: f64| (x * x - 2.0, 2.0 * x);
        let root = newton_bracketed(f, 0.0, 2.0, 1.0, 1e-14).unwrap();
        assert!(approx_eq(root, std::f64::consts::SQRT_2, 1e-12));
    }
}
