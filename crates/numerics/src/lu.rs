//! LU factorization with partial pivoting.
//!
//! This is the workhorse behind every linear solve in the reproduction: QBD
//! boundary systems, `(I - R)^{-1}` for geometric tails, stationary
//! distributions of finite chains, and first-step analysis of absorbing
//! chains. Partial pivoting with a relative singularity check is plenty for
//! the well-conditioned generator blocks that arise here.

use crate::matrix::Matrix;

/// Errors from linear-algebra routines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinAlgError {
    /// Factorization found no usable pivot: matrix is singular to working
    /// precision.
    Singular {
        /// Elimination column where factorization broke down.
        column: usize,
    },
    /// The operation requires a square matrix.
    NotSquare {
        /// Offending shape.
        rows: usize,
        /// Offending shape.
        cols: usize,
    },
    /// Vector length incompatible with the factorized matrix.
    DimensionMismatch {
        /// Expected length.
        expected: usize,
        /// Received length.
        got: usize,
    },
}

impl std::fmt::Display for LinAlgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LinAlgError::Singular { column } => {
                write!(
                    f,
                    "matrix is singular to working precision (column {column})"
                )
            }
            LinAlgError::NotSquare { rows, cols } => {
                write!(f, "operation requires a square matrix, got {rows}x{cols}")
            }
            LinAlgError::DimensionMismatch { expected, got } => {
                write!(f, "dimension mismatch: expected {expected}, got {got}")
            }
        }
    }
}

impl std::error::Error for LinAlgError {}

/// An LU factorization `P A = L U` with partial pivoting.
#[derive(Debug, Clone)]
pub struct LuDecomposition {
    /// Packed L (unit lower, implicit diagonal) and U factors.
    lu: Matrix,
    /// Row permutation: `perm[i]` is the original row now in position `i`.
    perm: Vec<usize>,
    /// Sign of the permutation, for determinants.
    perm_sign: f64,
}

impl LuDecomposition {
    /// Factorizes `a`. Fails when `a` is not square or is singular to working
    /// precision (pivot smaller than `n * eps * max_abs(a)`).
    pub fn new(a: &Matrix) -> Result<Self, LinAlgError> {
        Self::from_matrix(a.clone())
    }

    /// Factorizes `a`, consuming it as the factor storage (no clone).
    pub fn from_matrix(a: Matrix) -> Result<Self, LinAlgError> {
        if !a.is_square() {
            return Err(LinAlgError::NotSquare {
                rows: a.rows(),
                cols: a.cols(),
            });
        }
        let n = a.rows();
        let mut this = Self {
            lu: a,
            perm: (0..n).collect(),
            perm_sign: 1.0,
        };
        this.factorize_in_place()?;
        Ok(this)
    }

    /// The (trivial) factorization of the `n x n` identity: `L = U = I`,
    /// no pivoting. O(n²) storage initialization with no elimination work —
    /// use it to preallocate a decomposition whose storage will be filled
    /// by [`LuDecomposition::refactor`] before any solve.
    pub fn identity(n: usize) -> Self {
        Self {
            lu: Matrix::identity(n),
            perm: (0..n).collect(),
            perm_sign: 1.0,
        }
    }

    /// Re-factorizes `a` into this decomposition's existing storage —
    /// the allocation-free path for solver loops that factor a same-sized
    /// matrix every iteration. `a` must have the dimension of the original
    /// factorization.
    pub fn refactor(&mut self, a: &Matrix) -> Result<(), LinAlgError> {
        if !a.is_square() {
            return Err(LinAlgError::NotSquare {
                rows: a.rows(),
                cols: a.cols(),
            });
        }
        if a.rows() != self.dim() {
            return Err(LinAlgError::DimensionMismatch {
                expected: self.dim(),
                got: a.rows(),
            });
        }
        self.lu.copy_from(a);
        for (i, p) in self.perm.iter_mut().enumerate() {
            *p = i;
        }
        self.perm_sign = 1.0;
        self.factorize_in_place()
    }

    /// Panel width of the blocked factorization: a 32-column panel keeps the
    /// panel-row U block L1/L2-resident through the trailing update, cutting
    /// the trailing-matrix memory traffic of the unblocked elimination by
    /// the panel width.
    const LU_PANEL: usize = 32;

    /// Gaussian elimination with partial pivoting over `self.lu`, which holds
    /// the input matrix on entry and the packed factors on success.
    ///
    /// Columns are eliminated in panels of [`LuDecomposition::LU_PANEL`]:
    /// pivoting and the eager updates run inside the panel, then the
    /// trailing columns receive the panel's deferred updates in elimination
    /// order. Every per-element operation (pivot choice, swap, subtraction
    /// sequence) is performed in the same order as the single-panel
    /// elimination, so the blocked factors are **bit-identical** to the
    /// [`LuDecomposition::new_unblocked`] reference (property-tested).
    fn factorize_in_place(&mut self) -> Result<(), LinAlgError> {
        let n = self.lu.rows();
        let tol = self.pivot_tolerance();
        let mut cb = 0;
        while cb < n {
            let ce = (cb + Self::LU_PANEL).min(n);
            // Panel factorization: pivot + eliminate columns cb..ce,
            // updating only the panel columns eagerly.
            self.eliminate_panel(cb, ce, ce, tol)?;
            if ce == n {
                break;
            }
            // Deferred updates to the trailing columns ce..n, applied in
            // elimination order (ascending col) per element — exactly the
            // subtraction sequence the unblocked loop performs.
            // First the panel rows' own U block (row r is only updated by
            // columns before it)...
            for r in (cb + 1)..ce {
                self.apply_deferred_updates(r, cb, r, ce, n);
            }
            // ...then the rows below the panel, by the whole panel.
            for r in ce..n {
                self.apply_deferred_updates(r, cb, ce, ce, n);
            }
            cb = ce;
        }
        Ok(())
    }

    /// Relative singularity threshold, computed once from the matrix being
    /// factorized (before any elimination).
    fn pivot_tolerance(&self) -> f64 {
        let n = self.lu.rows();
        (n as f64) * f64::EPSILON * self.lu.max_abs().max(f64::MIN_POSITIVE)
    }

    /// Eliminates columns `cb..ce` with partial pivoting (full-row swaps),
    /// updating columns up to `update_end` eagerly. With
    /// `(cb, ce, update_end) = (0, n, n)` this is the classical unblocked
    /// elimination.
    fn eliminate_panel(
        &mut self,
        cb: usize,
        ce: usize,
        update_end: usize,
        tol: f64,
    ) -> Result<(), LinAlgError> {
        let n = self.lu.rows();
        let lu = &mut self.lu;
        let perm = &mut self.perm;
        for col in cb..ce {
            // Pivot search over rows col..n.
            let mut pivot_row = col;
            let mut pivot_val = lu[(col, col)].abs();
            for r in (col + 1)..n {
                let v = lu[(r, col)].abs();
                if v > pivot_val {
                    pivot_val = v;
                    pivot_row = r;
                }
            }
            if pivot_val <= tol {
                return Err(LinAlgError::Singular { column: col });
            }
            if pivot_row != col {
                perm.swap(col, pivot_row);
                self.perm_sign = -self.perm_sign;
                let (a, b) = lu.two_rows_mut(col, pivot_row);
                a.swap_with_slice(b);
            }
            let pivot = lu[(col, col)];
            for r in (col + 1)..n {
                let (dst, src) = lu.two_rows_mut(r, col);
                let factor = dst[col] / pivot;
                dst[col] = factor;
                if factor != 0.0 {
                    for (d, &s) in dst[(col + 1)..update_end]
                        .iter_mut()
                        .zip(&src[(col + 1)..update_end])
                    {
                        *d -= factor * s;
                    }
                }
            }
        }
        Ok(())
    }

    /// Applies the deferred trailing updates of panel columns `cb..ce_row`
    /// to row `r`, columns `c0..c1`. The column range is tiled so the row-`r`
    /// segment stays L1-resident across the whole panel; each element still
    /// receives its subtractions in ascending elimination order, which is
    /// all bit-identity requires.
    #[inline]
    fn apply_deferred_updates(&mut self, r: usize, cb: usize, ce_row: usize, c0: usize, c1: usize) {
        const TILE: usize = 128;
        let mut t0 = c0;
        while t0 < c1 {
            let t1 = (t0 + TILE).min(c1);
            for col in cb..ce_row {
                let (dst, src) = self.lu.two_rows_mut(r, col);
                let factor = dst[col];
                if factor != 0.0 {
                    for (d, &s) in dst[t0..t1].iter_mut().zip(&src[t0..t1]) {
                        *d -= factor * s;
                    }
                }
            }
            t0 = t1;
        }
    }

    /// Factorizes `a` with the original single-panel (unblocked)
    /// elimination, retained as the differential reference for the
    /// panel-blocked [`LuDecomposition::new`] path. Same pivoting, same
    /// factors — bit for bit.
    pub fn new_unblocked(a: &Matrix) -> Result<Self, LinAlgError> {
        if !a.is_square() {
            return Err(LinAlgError::NotSquare {
                rows: a.rows(),
                cols: a.cols(),
            });
        }
        let n = a.rows();
        let mut this = Self {
            lu: a.clone(),
            perm: (0..n).collect(),
            perm_sign: 1.0,
        };
        let tol = this.pivot_tolerance();
        this.eliminate_panel(0, n, n, tol)?;
        Ok(this)
    }

    /// Dimension of the factorized matrix.
    pub fn dim(&self) -> usize {
        self.lu.rows()
    }

    /// Solves `A x = b` for a single right-hand side.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, LinAlgError> {
        let mut x = vec![0.0; self.dim()];
        self.solve_into(b, &mut x)?;
        Ok(x)
    }

    /// Solves `A x = b` into a caller-provided buffer (no allocation).
    /// `x` must have length `dim()`; `b` is left untouched.
    pub fn solve_into(&self, b: &[f64], x: &mut [f64]) -> Result<(), LinAlgError> {
        let n = self.dim();
        if b.len() != n {
            return Err(LinAlgError::DimensionMismatch {
                expected: n,
                got: b.len(),
            });
        }
        if x.len() != n {
            return Err(LinAlgError::DimensionMismatch {
                expected: n,
                got: x.len(),
            });
        }
        // Apply permutation, then forward- and back-substitution.
        for (xi, &p) in x.iter_mut().zip(&self.perm) {
            *xi = b[p];
        }
        self.substitute_in_place(x);
        Ok(())
    }

    /// Forward- and back-substitution on a vector that already holds the
    /// permuted right-hand side.
    fn substitute_in_place(&self, x: &mut [f64]) {
        let n = self.dim();
        for i in 1..n {
            let row = self.lu.row(i);
            let mut acc = x[i];
            for (&lij, &xj) in row[..i].iter().zip(x[..i].iter()) {
                acc -= lij * xj;
            }
            x[i] = acc;
        }
        for i in (0..n).rev() {
            let row = self.lu.row(i);
            let mut acc = x[i];
            for (&lij, &xj) in row[(i + 1)..].iter().zip(x[(i + 1)..].iter()) {
                acc -= lij * xj;
            }
            x[i] = acc / row[i];
        }
    }

    /// Solves `A X = B` column by column.
    pub fn solve_matrix(&self, b: &Matrix) -> Result<Matrix, LinAlgError> {
        let mut out = Matrix::zeros(self.dim(), b.cols());
        let mut col = vec![0.0; self.dim()];
        self.solve_matrix_into(b, &mut out, &mut col)?;
        Ok(out)
    }

    /// Solves `A X = B` into a caller-provided matrix using one length-`n`
    /// scratch column (no allocation). `out` must be `dim() x b.cols()`.
    pub fn solve_matrix_into(
        &self,
        b: &Matrix,
        out: &mut Matrix,
        col: &mut [f64],
    ) -> Result<(), LinAlgError> {
        let n = self.dim();
        if b.rows() != n {
            return Err(LinAlgError::DimensionMismatch {
                expected: n,
                got: b.rows(),
            });
        }
        if out.rows() != n || out.cols() != b.cols() {
            return Err(LinAlgError::DimensionMismatch {
                expected: n * b.cols(),
                got: out.rows() * out.cols(),
            });
        }
        if col.len() != n {
            return Err(LinAlgError::DimensionMismatch {
                expected: n,
                got: col.len(),
            });
        }
        for c in 0..b.cols() {
            // Build the permuted right-hand side directly in the scratch.
            for (r, &p) in self.perm.iter().enumerate() {
                col[r] = b[(p, c)];
            }
            self.substitute_in_place(col);
            for r in 0..n {
                out[(r, c)] = col[r];
            }
        }
        Ok(())
    }

    /// The inverse matrix `A^{-1}`.
    pub fn inverse(&self) -> Result<Matrix, LinAlgError> {
        let mut out = Matrix::zeros(self.dim(), self.dim());
        let mut col = vec![0.0; self.dim()];
        self.inverse_into(&mut out, &mut col)?;
        Ok(out)
    }

    /// Writes `A^{-1}` into `out` using one length-`n` scratch column (no
    /// allocation). `out` must be `dim() x dim()`.
    pub fn inverse_into(&self, out: &mut Matrix, col: &mut [f64]) -> Result<(), LinAlgError> {
        let n = self.dim();
        if out.rows() != n || out.cols() != n {
            return Err(LinAlgError::DimensionMismatch {
                expected: n * n,
                got: out.rows() * out.cols(),
            });
        }
        if col.len() != n {
            return Err(LinAlgError::DimensionMismatch {
                expected: n,
                got: col.len(),
            });
        }
        // All-columns-at-once substitution: the right-hand side is the
        // permuted identity held in `out` row-major, and each elimination
        // step updates a whole row, vectorizing across the n columns
        // instead of striding down one. Per column this performs exactly
        // the operations of `substitute_in_place` in the same order, so
        // the result is bit-identical to the column-by-column version.
        out.as_mut_slice().fill(0.0);
        for (r, &p) in self.perm.iter().enumerate() {
            out[(r, p)] = 1.0;
        }
        for i in 1..n {
            for k in 0..i {
                let lik = self.lu[(i, k)];
                let (dst, src) = out.two_rows_mut(i, k);
                for (d, &s) in dst.iter_mut().zip(src.iter()) {
                    *d -= lik * s;
                }
            }
        }
        for i in (0..n).rev() {
            for k in (i + 1)..n {
                let lik = self.lu[(i, k)];
                let (dst, src) = out.two_rows_mut(i, k);
                for (d, &s) in dst.iter_mut().zip(src.iter()) {
                    *d -= lik * s;
                }
            }
            let piv = self.lu[(i, i)];
            for d in out.row_mut(i) {
                *d /= piv;
            }
        }
        Ok(())
    }

    /// Determinant of the factorized matrix.
    pub fn determinant(&self) -> f64 {
        let mut det = self.perm_sign;
        for i in 0..self.dim() {
            det *= self.lu[(i, i)];
        }
        det
    }
}

/// Convenience wrapper: factorize and solve `A x = b` in one call.
pub fn solve(a: &Matrix, b: &[f64]) -> Result<Vec<f64>, LinAlgError> {
    LuDecomposition::new(a)?.solve(b)
}

/// Convenience wrapper: `A^{-1}` in one call.
pub fn inverse(a: &Matrix) -> Result<Matrix, LinAlgError> {
    LuDecomposition::new(a)?.inverse()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx::approx_eq;

    fn assert_vec_close(a: &[f64], b: &[f64], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert!(approx_eq(*x, *y, tol), "{x} vs {y}");
        }
    }

    #[test]
    fn solves_small_system() {
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]);
        let x = solve(&a, &[3.0, 5.0]).unwrap();
        assert_vec_close(&x, &[0.8, 1.4], 1e-12);
    }

    #[test]
    fn solves_system_requiring_pivoting() {
        // Zero in the (0,0) position forces a row swap.
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let x = solve(&a, &[2.0, 5.0]).unwrap();
        assert_vec_close(&x, &[5.0, 2.0], 1e-14);
    }

    #[test]
    fn inverse_times_original_is_identity() {
        let a = Matrix::from_rows(&[&[4.0, -2.0, 1.0], &[-2.0, 4.0, -2.0], &[1.0, -2.0, 4.0]]);
        let inv = inverse(&a).unwrap();
        let prod = a.matmul(&inv);
        assert!(prod.max_abs_diff(&Matrix::identity(3)) < 1e-12);
    }

    #[test]
    fn determinant_matches_hand_computation() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let lu = LuDecomposition::new(&a).unwrap();
        assert!(approx_eq(lu.determinant(), -2.0, 1e-14));
    }

    #[test]
    fn determinant_sign_tracks_permutations() {
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let lu = LuDecomposition::new(&a).unwrap();
        assert!(approx_eq(lu.determinant(), -1.0, 1e-14));
    }

    #[test]
    fn rejects_singular_matrix() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        assert!(matches!(
            LuDecomposition::new(&a),
            Err(LinAlgError::Singular { .. })
        ));
    }

    #[test]
    fn rejects_non_square() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(
            LuDecomposition::new(&a),
            Err(LinAlgError::NotSquare { rows: 2, cols: 3 })
        ));
    }

    #[test]
    fn rejects_wrong_rhs_length() {
        let a = Matrix::identity(3);
        let lu = LuDecomposition::new(&a).unwrap();
        assert!(matches!(
            lu.solve(&[1.0, 2.0]),
            Err(LinAlgError::DimensionMismatch {
                expected: 3,
                got: 2
            })
        ));
    }

    #[test]
    fn solve_matrix_handles_multiple_rhs() {
        let a = Matrix::from_rows(&[&[3.0, 1.0], &[1.0, 2.0]]);
        let b = Matrix::from_rows(&[&[9.0, 4.0], &[8.0, 3.0]]);
        let x = LuDecomposition::new(&a).unwrap().solve_matrix(&b).unwrap();
        let back = a.matmul(&x);
        assert!(back.max_abs_diff(&b) < 1e-12);
    }

    #[test]
    fn refactor_reuses_storage_and_matches_fresh_factorization() {
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]);
        let b = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let mut lu = LuDecomposition::new(&a).unwrap();
        lu.refactor(&b).unwrap();
        let fresh = LuDecomposition::new(&b).unwrap();
        assert_eq!(
            lu.solve(&[2.0, 5.0]).unwrap(),
            fresh.solve(&[2.0, 5.0]).unwrap()
        );
        assert!(approx_eq(lu.determinant(), fresh.determinant(), 1e-15));
        // And back again: permutation state fully resets.
        lu.refactor(&a).unwrap();
        let x = lu.solve(&[3.0, 5.0]).unwrap();
        assert_vec_close(&x, &[0.8, 1.4], 1e-12);
    }

    #[test]
    fn refactor_rejects_wrong_dimension() {
        let mut lu = LuDecomposition::new(&Matrix::identity(2)).unwrap();
        assert!(matches!(
            lu.refactor(&Matrix::identity(3)),
            Err(LinAlgError::DimensionMismatch {
                expected: 2,
                got: 3
            })
        ));
    }

    #[test]
    fn in_place_solves_match_allocating_forms() {
        let a = Matrix::from_rows(&[&[4.0, -2.0, 1.0], &[-2.0, 4.0, -2.0], &[1.0, -2.0, 4.0]]);
        let lu = LuDecomposition::new(&a).unwrap();
        let b = [1.0, -2.0, 0.5];
        let mut x = [0.0; 3];
        lu.solve_into(&b, &mut x).unwrap();
        assert_eq!(x.to_vec(), lu.solve(&b).unwrap());

        let rhs = Matrix::from_rows(&[&[1.0, 0.0], &[2.0, 1.0], &[3.0, -1.0]]);
        let mut out = Matrix::zeros(3, 2);
        let mut col = [0.0; 3];
        lu.solve_matrix_into(&rhs, &mut out, &mut col).unwrap();
        assert_eq!(out, lu.solve_matrix(&rhs).unwrap());

        let mut inv = Matrix::zeros(3, 3);
        lu.inverse_into(&mut inv, &mut col).unwrap();
        assert_eq!(inv, lu.inverse().unwrap());
    }

    #[test]
    fn identity_decomposition_solves_trivially_and_refactors() {
        let lu = LuDecomposition::identity(3);
        assert_eq!(lu.solve(&[1.0, 2.0, 3.0]).unwrap(), vec![1.0, 2.0, 3.0]);
        assert!(approx_eq(lu.determinant(), 1.0, 1e-15));
        let mut lu = lu;
        let a = Matrix::from_rows(&[&[2.0, 1.0, 0.0], &[1.0, 3.0, 1.0], &[0.0, 1.0, 2.0]]);
        lu.refactor(&a).unwrap();
        let x = [0.5, -1.0, 2.0];
        let b = a.matvec(&x);
        assert_vec_close(&lu.solve(&b).unwrap(), &x, 1e-12);
    }

    #[test]
    fn from_matrix_consumes_without_clone() {
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]);
        let lu = LuDecomposition::from_matrix(a.clone()).unwrap();
        assert_eq!(
            lu.solve(&[3.0, 5.0]).unwrap(),
            LuDecomposition::new(&a)
                .unwrap()
                .solve(&[3.0, 5.0])
                .unwrap()
        );
    }

    #[test]
    fn random_round_trip() {
        use rand::prelude::*;
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        for n in [1usize, 2, 5, 12, 30] {
            let mut a = Matrix::zeros(n, n);
            for i in 0..n {
                for j in 0..n {
                    a[(i, j)] = rng.random::<f64>() - 0.5;
                }
                // Diagonal dominance keeps the instance well conditioned.
                a[(i, i)] += n as f64;
            }
            let xs: Vec<f64> = (0..n).map(|_| rng.random::<f64>() * 4.0 - 2.0).collect();
            let b = a.matvec(&xs);
            let solved = solve(&a, &b).unwrap();
            assert_vec_close(&solved, &xs, 1e-10);
        }
    }
}
