//! Compensated summation.
//!
//! Long simulation runs accumulate `time * value` integrals over hundreds of
//! millions of events; naive `f64` accumulation loses digits once the running
//! sum dwarfs the increments. Neumaier's variant of Kahan summation keeps the
//! error bounded independent of the number of terms, at the cost of a couple
//! of extra flops per add — irrelevant next to the surrounding simulation
//! work.

/// A running compensated sum (Neumaier's improved Kahan–Babuška algorithm).
#[derive(Debug, Clone, Copy, Default)]
pub struct NeumaierSum {
    sum: f64,
    compensation: f64,
}

impl NeumaierSum {
    /// A fresh accumulator at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `value` to the running sum.
    #[inline]
    pub fn add(&mut self, value: f64) {
        let t = self.sum + value;
        if self.sum.abs() >= value.abs() {
            self.compensation += (self.sum - t) + value;
        } else {
            self.compensation += (value - t) + self.sum;
        }
        self.sum = t;
    }

    /// The compensated total.
    #[inline]
    pub fn value(&self) -> f64 {
        self.sum + self.compensation
    }

    /// Resets the accumulator to zero.
    pub fn reset(&mut self) {
        *self = Self::default();
    }
}

impl std::iter::FromIterator<f64> for NeumaierSum {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut acc = NeumaierSum::new();
        for v in iter {
            acc.add(v);
        }
        acc
    }
}

/// Compensated sum of a slice.
pub fn compensated_sum(values: &[f64]) -> f64 {
    values.iter().copied().collect::<NeumaierSum>().value()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sums_simple_sequence() {
        let s = compensated_sum(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s, 10.0);
    }

    #[test]
    fn recovers_catastrophic_cancellation() {
        // Naive summation of [1e16, 1.0, -1e16] returns 0.0; Neumaier
        // recovers the 1.0.
        let s = compensated_sum(&[1e16, 1.0, -1e16]);
        assert_eq!(s, 1.0);
    }

    #[test]
    fn many_small_increments_keep_precision() {
        let mut acc = NeumaierSum::new();
        acc.add(1e9);
        for _ in 0..1_000_000 {
            acc.add(1e-7);
        }
        // Exact: 1e9 + 0.1. Naive summation drifts by orders of magnitude
        // more than this tolerance.
        assert!((acc.value() - (1e9 + 0.1)).abs() < 1e-6);
    }

    #[test]
    fn reset_clears_state() {
        let mut acc = NeumaierSum::new();
        acc.add(5.0);
        acc.reset();
        assert_eq!(acc.value(), 0.0);
    }
}
