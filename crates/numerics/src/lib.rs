//! Numeric substrate for the `eirs` workspace.
//!
//! The matrix-analytic solver in `eirs-markov` and the moment-matching code in
//! `eirs-queueing` need a small, dependable dense linear-algebra kernel plus a
//! handful of scalar utilities. Rather than pulling in a large linear-algebra
//! dependency, this crate implements exactly the pieces the reproduction
//! needs:
//!
//! * [`matrix::Matrix`] — dense row-major matrices with the usual arithmetic,
//! * [`lu::LuDecomposition`] — LU factorization with partial pivoting
//!   (solve / inverse / determinant),
//! * [`roots`] — closed-form quadratic/cubic solvers and safeguarded
//!   Newton/bisection iteration,
//! * [`sum`] — compensated (Neumaier) summation for long accumulations,
//! * [`approx`] — tolerance helpers shared by tests across the workspace.
//!
//! Everything is `f64`; the chains solved in this project are small (phase
//! dimensions of a few dozen), so cache-blocked kernels or SIMD would be
//! overkill. Correctness and numerical robustness are the priorities.

pub mod approx;
pub mod lu;
pub mod matrix;
pub mod parallel;
pub mod roots;
pub mod sum;

pub use approx::{abs_diff, approx_eq, rel_diff};
pub use lu::{LinAlgError, LuDecomposition};
pub use matrix::Matrix;
pub use sum::NeumaierSum;
