//! Dense row-major matrices.
//!
//! The QBD blocks manipulated by `eirs-markov` are small (phase dimension
//! `k + 2` at most, with `k` a server count in the tens), so a straightforward
//! row-major `Vec<f64>` representation with textbook `O(n^3)` multiplication
//! is the right tool: simple, cache-friendly at these sizes, and easy to
//! verify.

use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Neg, Sub};

/// A dense row-major matrix of `f64`.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// An `rows x cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// The `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// A square diagonal matrix with the given diagonal entries.
    pub fn diag(entries: &[f64]) -> Self {
        let n = entries.len();
        let mut m = Self::zeros(n, n);
        for (i, &v) in entries.iter().enumerate() {
            m[(i, i)] = v;
        }
        m
    }

    /// Builds a matrix from nested row slices. Panics when rows are ragged.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "ragged rows in Matrix::from_rows");
            data.extend_from_slice(row);
        }
        Self { rows: r, cols: c, data }
    }

    /// Builds a matrix from a flat row-major buffer.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "buffer length must be rows*cols");
        Self { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `true` when the matrix is square.
    #[inline]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Borrow of the flat row-major data.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable borrow of the flat row-major data.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Borrow of row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable borrow of row `r` as a slice.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// The transpose.
    pub fn transpose(&self) -> Self {
        let mut t = Self::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Scales every entry by `s`, in place.
    pub fn scale_mut(&mut self, s: f64) {
        for v in &mut self.data {
            *v *= s;
        }
    }

    /// Returns `self * s` without mutating.
    pub fn scaled(&self, s: f64) -> Self {
        let mut m = self.clone();
        m.scale_mut(s);
        m
    }

    /// Matrix product `self * rhs`. Panics on dimension mismatch.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, rhs.rows,
            "matmul dimension mismatch: {}x{} * {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        // i-k-j loop order keeps both the `rhs` row and the output row
        // streaming contiguously.
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                let rhs_row = rhs.row(k);
                let out_row = out.row_mut(i);
                for (o, &b) in out_row.iter_mut().zip(rhs_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Row-vector times matrix: `x * self`, with `x.len() == rows`.
    pub fn vecmat(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.rows, "vecmat dimension mismatch");
        let mut out = vec![0.0; self.cols];
        for (i, &xi) in x.iter().enumerate() {
            if xi == 0.0 {
                continue;
            }
            for (o, &m) in out.iter_mut().zip(self.row(i)) {
                *o += xi * m;
            }
        }
        out
    }

    /// Matrix times column vector: `self * x`, with `x.len() == cols`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "matvec dimension mismatch");
        (0..self.rows)
            .map(|i| self.row(i).iter().zip(x).map(|(&m, &v)| m * v).sum())
            .collect()
    }

    /// Sum of the entries of each row (`self * 1`).
    pub fn row_sums(&self) -> Vec<f64> {
        (0..self.rows).map(|i| self.row(i).iter().sum()).collect()
    }

    /// Largest absolute entry.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0, |acc, v| acc.max(v.abs()))
    }

    /// Infinity norm (maximum absolute row sum).
    pub fn norm_inf(&self) -> f64 {
        (0..self.rows)
            .map(|i| self.row(i).iter().map(|v| v.abs()).sum::<f64>())
            .fold(0.0, f64::max)
    }

    /// Largest absolute entry of `self - other`. Panics on shape mismatch.
    pub fn max_abs_diff(&self, other: &Matrix) -> f64 {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        self.data
            .iter()
            .zip(&other.data)
            .fold(0.0, |acc, (a, b)| acc.max((a - b).abs()))
    }

    /// `true` when every entry is finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }
}

impl Add<&Matrix> for &Matrix {
    type Output = Matrix;

    fn add(self, rhs: &Matrix) -> Matrix {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols));
        let data = self.data.iter().zip(&rhs.data).map(|(a, b)| a + b).collect();
        Matrix { rows: self.rows, cols: self.cols, data }
    }
}

impl Sub<&Matrix> for &Matrix {
    type Output = Matrix;

    fn sub(self, rhs: &Matrix) -> Matrix {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols));
        let data = self.data.iter().zip(&rhs.data).map(|(a, b)| a - b).collect();
        Matrix { rows: self.rows, cols: self.cols, data }
    }
}

impl Mul<&Matrix> for &Matrix {
    type Output = Matrix;

    fn mul(self, rhs: &Matrix) -> Matrix {
        self.matmul(rhs)
    }
}

impl Neg for &Matrix {
    type Output = Matrix;

    fn neg(self) -> Matrix {
        self.scaled(-1.0)
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows {
            write!(f, "  [")?;
            for j in 0..self.cols {
                if j > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{:>12.6}", self[(i, j)])?;
            }
            writeln!(f, "]")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx::approx_eq;

    #[test]
    fn identity_is_multiplicative_unit() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let i = Matrix::identity(2);
        assert_eq!(a.matmul(&i), a);
        assert_eq!(i.matmul(&a), a);
    }

    #[test]
    fn matmul_matches_hand_computation() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let b = Matrix::from_rows(&[&[7.0, 8.0], &[9.0, 10.0], &[11.0, 12.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_rows(&[&[58.0, 64.0], &[139.0, 154.0]]));
    }

    #[test]
    #[should_panic(expected = "matmul dimension mismatch")]
    fn matmul_rejects_bad_shapes() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose()[(2, 1)], 6.0);
    }

    #[test]
    fn vecmat_and_matvec_are_consistent_with_matmul() {
        let a = Matrix::from_rows(&[&[1.0, -2.0], &[0.5, 4.0]]);
        let x = [3.0, 7.0];
        let as_row = a.vecmat(&x);
        let at = a.transpose();
        let via_transpose = at.matvec(&x);
        for (u, v) in as_row.iter().zip(&via_transpose) {
            assert!(approx_eq(*u, *v, 1e-14));
        }
    }

    #[test]
    fn row_sums_and_norms() {
        let a = Matrix::from_rows(&[&[1.0, -2.0], &[3.0, 4.0]]);
        assert_eq!(a.row_sums(), vec![-1.0, 7.0]);
        assert_eq!(a.norm_inf(), 7.0);
        assert_eq!(a.max_abs(), 4.0);
    }

    #[test]
    fn diag_builds_square_diagonal() {
        let d = Matrix::diag(&[1.0, 2.0, 3.0]);
        assert_eq!(d[(1, 1)], 2.0);
        assert_eq!(d[(0, 1)], 0.0);
        assert_eq!(d.rows(), 3);
    }

    #[test]
    fn arithmetic_operators() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[4.0, 3.0], &[2.0, 1.0]]);
        let sum = &a + &b;
        let diff = &a - &b;
        assert_eq!(sum, Matrix::from_rows(&[&[5.0, 5.0], &[5.0, 5.0]]));
        assert_eq!(diff, Matrix::from_rows(&[&[-3.0, -1.0], &[1.0, 3.0]]));
        assert_eq!((&a).neg()[(0, 0)], -1.0);
    }

    #[test]
    fn max_abs_diff_detects_perturbation() {
        let a = Matrix::identity(3);
        let mut b = a.clone();
        b[(2, 0)] = 0.25;
        assert!(approx_eq(a.max_abs_diff(&b), 0.25, 1e-15));
    }
}
