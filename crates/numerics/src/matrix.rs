//! Dense row-major matrices.
//!
//! The QBD blocks manipulated by `eirs-markov` are small (phase dimension
//! `k + 2` at most, with `k` a server count in the tens), so a straightforward
//! row-major `Vec<f64>` representation with textbook `O(n^3)` multiplication
//! is the right tool: simple, cache-friendly at these sizes, and easy to
//! verify.

use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Neg, Sub};

/// A dense row-major matrix of `f64`.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// An `rows x cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// The `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// A square diagonal matrix with the given diagonal entries.
    pub fn diag(entries: &[f64]) -> Self {
        let n = entries.len();
        let mut m = Self::zeros(n, n);
        for (i, &v) in entries.iter().enumerate() {
            m[(i, i)] = v;
        }
        m
    }

    /// Builds a matrix from nested row slices. Panics when rows are ragged.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "ragged rows in Matrix::from_rows");
            data.extend_from_slice(row);
        }
        Self {
            rows: r,
            cols: c,
            data,
        }
    }

    /// Builds a matrix from a flat row-major buffer.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "buffer length must be rows*cols");
        Self { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `true` when the matrix is square.
    #[inline]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Borrow of the flat row-major data.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable borrow of the flat row-major data.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Borrow of row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable borrow of row `r` as a slice.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Simultaneous mutable borrows of two distinct rows (panics when
    /// `r1 == r2` or either is out of range). Lets elimination kernels
    /// update one row from another through slice iterators instead of
    /// per-element indexing.
    #[inline]
    pub fn two_rows_mut(&mut self, r1: usize, r2: usize) -> (&mut [f64], &mut [f64]) {
        assert!(r1 != r2, "two_rows_mut requires distinct rows");
        let cols = self.cols;
        if r1 < r2 {
            let (head, tail) = self.data.split_at_mut(r2 * cols);
            (&mut head[r1 * cols..(r1 + 1) * cols], &mut tail[..cols])
        } else {
            let (head, tail) = self.data.split_at_mut(r1 * cols);
            let row2 = &mut head[r2 * cols..(r2 + 1) * cols];
            (&mut tail[..cols], row2)
        }
    }

    /// The transpose.
    pub fn transpose(&self) -> Self {
        let mut t = Self::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Scales every entry by `s`, in place.
    pub fn scale_mut(&mut self, s: f64) {
        for v in &mut self.data {
            *v *= s;
        }
    }

    /// Returns `self * s` without mutating.
    #[must_use]
    pub fn scaled(&self, s: f64) -> Self {
        Self {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|v| v * s).collect(),
        }
    }

    /// Overwrites every entry with `v`.
    pub fn fill(&mut self, v: f64) {
        self.data.fill(v);
    }

    /// Overwrites `self` with the identity (requires a square matrix).
    pub fn set_identity(&mut self) {
        assert!(self.is_square(), "set_identity requires a square matrix");
        self.data.fill(0.0);
        for i in 0..self.rows {
            self[(i, i)] = 1.0;
        }
    }

    /// Copies `src` into `self`. Panics on shape mismatch.
    pub fn copy_from(&mut self, src: &Matrix) {
        assert_eq!(
            (self.rows, self.cols),
            (src.rows, src.cols),
            "copy_from shape mismatch"
        );
        self.data.copy_from_slice(&src.data);
    }

    /// In-place entrywise sum `self += rhs`. Panics on shape mismatch.
    pub fn add_assign(&mut self, rhs: &Matrix) {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols));
        for (a, b) in self.data.iter_mut().zip(&rhs.data) {
            *a += b;
        }
    }

    /// In-place entrywise difference `self -= rhs`. Panics on shape mismatch.
    pub fn sub_assign(&mut self, rhs: &Matrix) {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols));
        for (a, b) in self.data.iter_mut().zip(&rhs.data) {
            *a -= b;
        }
    }

    /// In-place scaled accumulation `self += s * rhs` — the AXPY kernel of
    /// the allocation-free QBD iterations. Panics on shape mismatch.
    pub fn add_assign_scaled(&mut self, rhs: &Matrix, s: f64) {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols));
        for (a, b) in self.data.iter_mut().zip(&rhs.data) {
            *a += s * b;
        }
    }

    /// Writes `self - rhs` into `out` without allocating. Panics on shape
    /// mismatch.
    pub fn sub_into(&self, rhs: &Matrix, out: &mut Matrix) {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols));
        assert_eq!((self.rows, self.cols), (out.rows, out.cols));
        for ((o, a), b) in out.data.iter_mut().zip(&self.data).zip(&rhs.data) {
            *o = a - b;
        }
    }

    /// Matrix product `self * rhs`. Panics on dimension mismatch.
    #[must_use]
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        self.mul_into(rhs, &mut out);
        out
    }

    /// Tile edge (in elements) of the blocked matmul: a `TILE x TILE` f64
    /// block is 18 KiB, so one `rhs` tile plus the streaming rows stay
    /// resident in a 32 KiB L1d across the whole inner sweep.
    const MUL_TILE: usize = 48;

    /// Writes `self * rhs` into `out` without allocating. `out` must already
    /// have shape `self.rows x rhs.cols` and must not alias either operand.
    /// Panics on dimension mismatch.
    ///
    /// Large operands run a tiled kernel blocked to L1; per-output-element
    /// accumulation stays in increasing-`k` order, so the result is
    /// **bit-identical** to [`Matrix::mul_into_naive`] (property-tested).
    pub fn mul_into(&self, rhs: &Matrix, out: &mut Matrix) {
        self.check_mul_shapes(rhs, out);
        out.data.fill(0.0);
        const TILE: usize = Matrix::MUL_TILE;
        if self.cols <= TILE && rhs.cols <= TILE {
            // Small operands: tiling would degenerate to the naive
            // traversal; run it directly.
            self.mul_accumulate(rhs, out, 0, self.cols, 0, rhs.cols);
            return;
        }
        // j-panel outer, k-tile inner: each `rhs` tile (`TILE x TILE`) is
        // reused across every row of `self` while it is L1-resident.
        let mut j0 = 0;
        while j0 < rhs.cols {
            let j1 = (j0 + TILE).min(rhs.cols);
            let mut k0 = 0;
            while k0 < self.cols {
                let k1 = (k0 + TILE).min(self.cols);
                self.mul_accumulate(rhs, out, k0, k1, j0, j1);
                k0 = k1;
            }
            j0 = j1;
        }
    }

    /// The original i-k-j kernel, retained as the differential reference
    /// for the tiled [`Matrix::mul_into`]. Same contract; same bits.
    pub fn mul_into_naive(&self, rhs: &Matrix, out: &mut Matrix) {
        self.check_mul_shapes(rhs, out);
        out.data.fill(0.0);
        self.mul_accumulate(rhs, out, 0, self.cols, 0, rhs.cols);
    }

    fn check_mul_shapes(&self, rhs: &Matrix, out: &Matrix) {
        assert_eq!(
            self.cols, rhs.rows,
            "matmul dimension mismatch: {}x{} * {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        assert_eq!(
            (out.rows, out.cols),
            (self.rows, rhs.cols),
            "mul_into output shape mismatch"
        );
    }

    /// Accumulates `self[.., k0..k1] * rhs[k0..k1, j0..j1]` into
    /// `out[.., j0..j1]`. The i-k-j order keeps the `rhs` rows and the
    /// output row segment streaming contiguously, and every output element
    /// sees its `k` contributions in increasing order — the invariant that
    /// makes tiled and naive traversals bit-identical.
    #[inline]
    fn mul_accumulate(
        &self,
        rhs: &Matrix,
        out: &mut Matrix,
        k0: usize,
        k1: usize,
        j0: usize,
        j1: usize,
    ) {
        // Narrow outputs (the p ≤ 8 QBD phase blocks that dominate sweep
        // time) dispatch to a const-width kernel whose accumulator row
        // lives in registers across the whole k loop.
        match j1 - j0 {
            2 => return self.mul_accumulate_narrow::<2>(rhs, out, k0, k1, j0),
            3 => return self.mul_accumulate_narrow::<3>(rhs, out, k0, k1, j0),
            4 => return self.mul_accumulate_narrow::<4>(rhs, out, k0, k1, j0),
            5 => return self.mul_accumulate_narrow::<5>(rhs, out, k0, k1, j0),
            6 => return self.mul_accumulate_narrow::<6>(rhs, out, k0, k1, j0),
            7 => return self.mul_accumulate_narrow::<7>(rhs, out, k0, k1, j0),
            8 => return self.mul_accumulate_narrow::<8>(rhs, out, k0, k1, j0),
            _ => {}
        }
        for i in 0..self.rows {
            let lhs_row = &self.row(i)[k0..k1];
            let out_row = &mut out.row_mut(i)[j0..j1];
            for (k, &a) in (k0..k1).zip(lhs_row) {
                if a == 0.0 {
                    continue;
                }
                let rhs_row = &rhs.row(k)[j0..j1];
                for (o, &b) in out_row.iter_mut().zip(rhs_row) {
                    *o += a * b;
                }
            }
        }
    }

    /// [`Matrix::mul_accumulate`] for a compile-time output width `W`:
    /// the accumulator row is a `[f64; W]` the compiler keeps in registers,
    /// so the k loop performs only the `W` fused multiply-adds plus one
    /// `rhs` row load per step. Identical per-element operation order and
    /// zero-skip behavior as the general kernel — bit-identical results.
    #[inline]
    fn mul_accumulate_narrow<const W: usize>(
        &self,
        rhs: &Matrix,
        out: &mut Matrix,
        k0: usize,
        k1: usize,
        j0: usize,
    ) {
        for i in 0..self.rows {
            let lhs_row = &self.row(i)[k0..k1];
            let out_row = &mut out.row_mut(i)[j0..j0 + W];
            let mut acc = [0.0f64; W];
            acc.copy_from_slice(out_row);
            for (k, &a) in (k0..k1).zip(lhs_row) {
                if a == 0.0 {
                    continue;
                }
                let rhs_row = &rhs.row(k)[j0..j0 + W];
                for (o, &b) in acc.iter_mut().zip(rhs_row) {
                    *o += a * b;
                }
            }
            out_row.copy_from_slice(&acc);
        }
    }

    /// Row-vector times matrix: `x * self`, with `x.len() == rows`.
    pub fn vecmat(&self, x: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; self.cols];
        self.vecmat_into(x, &mut out);
        out
    }

    /// Writes `x * self` into `out` without allocating (`out.len() == cols`).
    pub fn vecmat_into(&self, x: &[f64], out: &mut [f64]) {
        assert_eq!(x.len(), self.rows, "vecmat dimension mismatch");
        assert_eq!(out.len(), self.cols, "vecmat output length mismatch");
        out.fill(0.0);
        for (i, &xi) in x.iter().enumerate() {
            if xi == 0.0 {
                continue;
            }
            for (o, &m) in out.iter_mut().zip(self.row(i)) {
                *o += xi * m;
            }
        }
    }

    /// Matrix times column vector: `self * x`, with `x.len() == cols`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "matvec dimension mismatch");
        (0..self.rows)
            .map(|i| self.row(i).iter().zip(x).map(|(&m, &v)| m * v).sum())
            .collect()
    }

    /// Sum of the entries of each row (`self * 1`).
    pub fn row_sums(&self) -> Vec<f64> {
        (0..self.rows).map(|i| self.row(i).iter().sum()).collect()
    }

    /// Largest absolute entry.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0, |acc, v| acc.max(v.abs()))
    }

    /// Infinity norm (maximum absolute row sum).
    pub fn norm_inf(&self) -> f64 {
        (0..self.rows)
            .map(|i| self.row(i).iter().map(|v| v.abs()).sum::<f64>())
            .fold(0.0, f64::max)
    }

    /// Largest absolute entry of `self - other`. Panics on shape mismatch.
    pub fn max_abs_diff(&self, other: &Matrix) -> f64 {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        self.data
            .iter()
            .zip(&other.data)
            .fold(0.0, |acc, (a, b)| acc.max((a - b).abs()))
    }

    /// `true` when every entry is finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }
}

impl Add<&Matrix> for &Matrix {
    type Output = Matrix;

    fn add(self, rhs: &Matrix) -> Matrix {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols));
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| a + b)
            .collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }
}

impl Sub<&Matrix> for &Matrix {
    type Output = Matrix;

    fn sub(self, rhs: &Matrix) -> Matrix {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols));
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| a - b)
            .collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }
}

impl Mul<&Matrix> for &Matrix {
    type Output = Matrix;

    fn mul(self, rhs: &Matrix) -> Matrix {
        self.matmul(rhs)
    }
}

impl Neg for &Matrix {
    type Output = Matrix;

    fn neg(self) -> Matrix {
        self.scaled(-1.0)
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows {
            write!(f, "  [")?;
            for j in 0..self.cols {
                if j > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{:>12.6}", self[(i, j)])?;
            }
            writeln!(f, "]")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx::approx_eq;

    #[test]
    fn identity_is_multiplicative_unit() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let i = Matrix::identity(2);
        assert_eq!(a.matmul(&i), a);
        assert_eq!(i.matmul(&a), a);
    }

    #[test]
    fn matmul_matches_hand_computation() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let b = Matrix::from_rows(&[&[7.0, 8.0], &[9.0, 10.0], &[11.0, 12.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_rows(&[&[58.0, 64.0], &[139.0, 154.0]]));
    }

    #[test]
    #[should_panic(expected = "matmul dimension mismatch")]
    fn matmul_rejects_bad_shapes() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose()[(2, 1)], 6.0);
    }

    #[test]
    fn vecmat_and_matvec_are_consistent_with_matmul() {
        let a = Matrix::from_rows(&[&[1.0, -2.0], &[0.5, 4.0]]);
        let x = [3.0, 7.0];
        let as_row = a.vecmat(&x);
        let at = a.transpose();
        let via_transpose = at.matvec(&x);
        for (u, v) in as_row.iter().zip(&via_transpose) {
            assert!(approx_eq(*u, *v, 1e-14));
        }
    }

    #[test]
    fn row_sums_and_norms() {
        let a = Matrix::from_rows(&[&[1.0, -2.0], &[3.0, 4.0]]);
        assert_eq!(a.row_sums(), vec![-1.0, 7.0]);
        assert_eq!(a.norm_inf(), 7.0);
        assert_eq!(a.max_abs(), 4.0);
    }

    #[test]
    fn diag_builds_square_diagonal() {
        let d = Matrix::diag(&[1.0, 2.0, 3.0]);
        assert_eq!(d[(1, 1)], 2.0);
        assert_eq!(d[(0, 1)], 0.0);
        assert_eq!(d.rows(), 3);
    }

    #[test]
    fn arithmetic_operators() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[4.0, 3.0], &[2.0, 1.0]]);
        let sum = &a + &b;
        let diff = &a - &b;
        assert_eq!(sum, Matrix::from_rows(&[&[5.0, 5.0], &[5.0, 5.0]]));
        assert_eq!(diff, Matrix::from_rows(&[&[-3.0, -1.0], &[1.0, 3.0]]));
        assert_eq!((&a).neg()[(0, 0)], -1.0);
    }

    #[test]
    fn mul_into_matches_matmul() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let b = Matrix::from_rows(&[&[7.0, 8.0], &[9.0, 10.0], &[11.0, 12.0]]);
        let mut out = Matrix::from_rows(&[&[99.0, 99.0], &[99.0, 99.0]]); // stale
        a.mul_into(&b, &mut out);
        assert_eq!(out, a.matmul(&b));
    }

    #[test]
    fn in_place_kernels_match_operator_forms() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[4.0, 3.0], &[2.0, 1.0]]);

        let mut sum = a.clone();
        sum.add_assign(&b);
        assert_eq!(sum, &a + &b);

        let mut diff = a.clone();
        diff.sub_assign(&b);
        assert_eq!(diff, &a - &b);

        let mut axpy = a.clone();
        axpy.add_assign_scaled(&b, 2.0);
        assert_eq!(axpy, &a + &b.scaled(2.0));

        let mut out = Matrix::zeros(2, 2);
        a.sub_into(&b, &mut out);
        assert_eq!(out, &a - &b);
    }

    #[test]
    fn fill_set_identity_copy_from() {
        let mut m = Matrix::zeros(3, 3);
        m.fill(2.5);
        assert_eq!(m[(1, 2)], 2.5);
        m.set_identity();
        assert_eq!(m, Matrix::identity(3));
        let src = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0], &[7.0, 8.0, 9.0]]);
        m.copy_from(&src);
        assert_eq!(m, src);
    }

    #[test]
    #[should_panic(expected = "mul_into output shape mismatch")]
    fn mul_into_rejects_bad_output_shape() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(3, 4);
        let mut out = Matrix::zeros(2, 3);
        a.mul_into(&b, &mut out);
    }

    #[test]
    fn max_abs_diff_detects_perturbation() {
        let a = Matrix::identity(3);
        let mut b = a.clone();
        b[(2, 0)] = 0.25;
        assert!(approx_eq(a.max_abs_diff(&b), 0.25, 1e-15));
    }
}
