//! The sharded online cluster engine.
//!
//! A [`ServeEngine`] is the production-shaped loop around a
//! [`CompiledTable`]: arrival events stream in (from
//! `eirs_sim::MapStream`, a replayed
//! [`ArrivalTrace`](eirs_sim::arrivals::ArrivalTrace), or any other
//! [`ArrivalSource`]), get hash-routed over
//! [`EngineConfig::route_shards`] independent cluster shards, and every
//! shard advances its own occupancy state making one table lookup per
//! event-loop step — the **decision**.
//!
//! # Shard semantics and determinism
//!
//! The routing partition is part of the *workload semantics*: shard
//! `mix64(seq) % route_shards` owns the `seq`-th arrival, always. The
//! worker count ([`EngineConfig::workers`], the CLI's `--shards`) is pure
//! *processing* parallelism over that fixed partition — the same
//! discipline as `eirs_core::sweep` and `eirs_sim::replicate`. Because
//! each shard's trajectory is a pure function of its routed substream,
//! parallel runs are bit-identical to serial, and the shard-ordered
//! [decision digest](ServeEngine::decision_digest) is invariant to the
//! worker count. The CI determinism gate replays the bundled trace with
//! 1 and 4 workers and asserts equal digests.
//!
//! # Exactness against the simulator
//!
//! Each shard's event mechanics deliberately mirror
//! [`eirs_sim::des::Simulation`] step for step (same FCFS rate
//! assignment, same float-operation order, same departure sweep, same
//! arrival-admission tie-breaks). Replaying a recorded trace through a
//! single-shard engine therefore reproduces the DES allocation sequence
//! **exactly** — asserted by the `serve_layer` tests and recorded in
//! `BENCH_serve.json`.
//!
//! # Degraded mode (capacity churn)
//!
//! With a [`ChurnConfig`] attached, every shard replays its own seeded
//! [`FaultSchedule`](eirs_sim::FaultSchedule) (derived from the shard
//! *index*, so faults — like routing — are workload semantics, invariant
//! to the worker count) and tracks an effective capacity `avail ≤ k`.
//! The degraded-decision rule matches the DES exactly: at full capacity
//! the compiled grid serves (the hot path); at zero capacity the shard
//! idles without consulting the policy; in between, lookups are capped
//! to the available count by delegating to the source policy
//! ([`CompiledTable::lookup_capped`]). Capacity drops preempt-restart
//! partially-served inelastic jobs that no longer fit (progress resets,
//! the job re-enters at the back of its queue; see
//! [`eirs_sim::des`]); elastic jobs shrink gracefully. Optional bounded
//! admission shedding ([`EngineConfig::shed_limit`]) rejects arrivals
//! into an over-occupied degraded shard, accounted in
//! [`ShardMetrics::rejections`].

use crate::metrics::ShardMetrics;
use crate::table::CompiledTable;
use eirs_sim::arrivals::{Arrival, ArrivalSource};
use eirs_sim::availability::{CapacityEvent, FaultSpec};
use eirs_sim::job::{Job, JobClass};
use eirs_sim::policy::{assert_feasible, AllocationPolicy, ClassAllocation};
use std::collections::VecDeque;
use std::sync::Arc;

/// One allocation decision: the occupancy queried and the allocation
/// served. The decision stream is the engine's product; digests, logs,
/// and the DES cross-checks are all defined over it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Decision {
    /// Inelastic occupancy at decision time.
    pub i: usize,
    /// Elastic occupancy at decision time.
    pub j: usize,
    /// The allocation served.
    pub allocation: ClassAllocation,
}

/// SplitMix64 finalizer: the engine's one hash, used for both shard
/// routing and decision digests.
#[inline]
pub(crate) fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Folds one decision into a running digest.
#[inline]
fn fold_decision(digest: u64, i: usize, j: usize, a: ClassAllocation) -> u64 {
    let mut h = mix64(digest ^ (((i as u64) << 32) | j as u64));
    h = mix64(h ^ a.inelastic.to_bits());
    mix64(h ^ a.elastic.to_bits())
}

/// The shard owning global arrival number `seq` in an engine with
/// `route_shards` shards — [`ServeEngine::route`] as a free function,
/// so front ends (e.g. the network router) can partition traffic into
/// per-shard queues without holding a reference to the engine.
#[inline]
pub fn route_for(seq: u64, route_shards: usize) -> usize {
    (mix64(seq) % route_shards as u64) as usize
}

/// Computes the digest of an explicit decision sequence — the same fold
/// the shards apply online, so a recorded DES log can be digested and
/// compared against a live engine.
pub fn digest_decisions(decisions: &[Decision]) -> u64 {
    decisions
        .iter()
        .fold(0, |d, dec| fold_decision(d, dec.i, dec.j, dec.allocation))
}

/// One journaled policy hot-swap: at global arrival `seq` the engine
/// switched to generation `generation`, serving the policy identified
/// by `hash` ([`CompiledTable::identity_hash`]) and recompilable from
/// `spec`. The ordered swap list is an engine's *generation schedule*;
/// replaying a journal with the same schedule reproduces the live
/// decision digest bit for bit.
#[derive(Debug, Clone, PartialEq)]
pub struct SwapRecord {
    /// Global arrival sequence number the swap took effect at: arrivals
    /// `< seq` were decided by the previous generation, arrivals
    /// `>= seq` by this one.
    pub seq: u64,
    /// Policy generation installed (the fresh engine is generation 0;
    /// the first swap installs generation 1).
    pub generation: u32,
    /// [`CompiledTable::identity_hash`] of the installed table.
    pub hash: u64,
    /// Parseable policy spec (the CLI `--policy` grammar) the table was
    /// compiled from, so replay can recompile it.
    pub spec: String,
}

/// The per-arrival acknowledgment produced by
/// [`ServeEngine::ingest_batch_admissions`]: which shard served the
/// arrival, whether it was admitted or shed, the post-admission
/// occupancy, and the allocation the table serves at that occupancy.
/// This is what the network front end writes back as a decision frame.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Admission {
    /// Route shard that owns the arrival.
    pub shard: usize,
    /// Shard inelastic occupancy after the arrival was processed.
    pub i: usize,
    /// Shard elastic occupancy after the arrival was processed.
    pub j: usize,
    /// Allocation the table serves at `(i, j)` under the shard's
    /// current capacity (a pure read — no digest/metrics side effects).
    pub allocation: ClassAllocation,
    /// `false` when degraded-mode admission shedding rejected the
    /// arrival ([`EngineConfig::shed_limit`]).
    pub admitted: bool,
    /// Policy generation that decided the arrival.
    pub generation: u32,
}

/// The capacity-churn identity of an engine: which fault model runs,
/// under which seed, over which horizon. Part of the serving identity —
/// snapshots and journals record it, and restore refuses a mismatch
/// (continuing under different faults would break the bit-identical
/// continuation).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChurnConfig {
    /// The fault model.
    pub spec: FaultSpec,
    /// Base fault seed; shard `s` replays the schedule seeded from
    /// `(seed, s)` (see [`FaultSpec::schedule_for_shard`]).
    pub seed: u64,
    /// Horizon the schedules are generated to; capacity is fully
    /// recovered from the horizon on.
    pub horizon: f64,
}

impl ChurnConfig {
    /// Canonical identity line: `spec=<label> seed=<s> horizon=<h>`.
    /// Round-trips through [`ChurnConfig::parse_identity`].
    pub fn identity(&self) -> String {
        format!(
            "spec={} seed={} horizon={}",
            self.spec.label(),
            self.seed,
            self.horizon
        )
    }

    /// Parses the [`ChurnConfig::identity`] form.
    pub fn parse_identity(raw: &str) -> Result<Self, String> {
        let bad = || format!("cannot parse churn identity '{raw}'");
        let mut spec = None;
        let mut seed = None;
        let mut horizon = None;
        for field in raw.split_whitespace() {
            let (key, value) = field.split_once('=').ok_or_else(bad)?;
            match key {
                "spec" => spec = Some(FaultSpec::parse(value)?),
                "seed" => seed = Some(value.parse().map_err(|_| bad())?),
                "horizon" => horizon = Some(value.parse().map_err(|_| bad())?),
                _ => return Err(bad()),
            }
        }
        match (spec, seed, horizon) {
            (Some(spec), Some(seed), Some(horizon)) => Ok(Self {
                spec,
                seed,
                horizon,
            }),
            _ => Err(bad()),
        }
    }
}

/// Engine shape: cluster size, routing partition, worker parallelism,
/// ingestion batching, and the fault model.
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// Servers per cluster shard.
    pub k: u32,
    /// Independent cluster shards the traffic is hash-partitioned over.
    /// Part of the workload semantics: changing it changes which shard
    /// serves which job (and hence the decisions).
    pub route_shards: usize,
    /// Shard workers advancing the partition in parallel (`1` is the
    /// serial reference path; results are bit-identical either way).
    pub workers: usize,
    /// Arrivals per ingestion round in [`ServeEngine::run`].
    pub batch: usize,
    /// Keep a full per-shard [`Decision`] log (differential testing /
    /// audit; costs memory proportional to the decision count).
    pub record_decisions: bool,
    /// Capacity churn; `None` serves at full capacity forever. Like the
    /// routing partition, churn is workload semantics, not a processing
    /// knob.
    pub churn: Option<ChurnConfig>,
    /// Degraded-mode admission shedding: while a shard is below full
    /// capacity, arrivals finding `i + j >= shed_limit` jobs present are
    /// rejected instead of queued. `None` never sheds.
    pub shed_limit: Option<usize>,
}

impl EngineConfig {
    /// Defaults: 4 route shards, 1 worker, batches of 1024, no log, no
    /// churn, no shedding.
    pub fn new(k: u32) -> Self {
        Self {
            k,
            route_shards: 4,
            workers: 1,
            batch: 1024,
            record_decisions: false,
            churn: None,
            shed_limit: None,
        }
    }

    /// Sets the routing partition width.
    pub fn route_shards(mut self, n: usize) -> Self {
        self.route_shards = n;
        self
    }

    /// Sets the shard-worker count.
    pub fn workers(mut self, n: usize) -> Self {
        self.workers = n;
        self
    }

    /// Sets the ingestion batch size.
    pub fn batch(mut self, n: usize) -> Self {
        self.batch = n;
        self
    }

    /// Enables the full decision log.
    pub fn record_decisions(mut self, on: bool) -> Self {
        self.record_decisions = on;
        self
    }

    /// Attaches a capacity-churn model.
    pub fn churn(mut self, churn: ChurnConfig) -> Self {
        self.churn = Some(churn);
        self
    }

    /// Sets the degraded-mode admission-shedding occupancy bound.
    pub fn shed_limit(mut self, limit: usize) -> Self {
        self.shed_limit = Some(limit);
        self
    }
}

/// One independent cluster shard: `k` servers, its own occupancy state
/// and clock, advancing with the DES's exact event mechanics.
pub(crate) struct ClusterShard {
    pub(crate) k: u32,
    pub(crate) time: f64,
    pub(crate) next_id: u64,
    pub(crate) inelastic: VecDeque<Job>,
    pub(crate) elastic: VecDeque<Job>,
    pub(crate) digest: u64,
    pub(crate) metrics: ShardMetrics,
    pub(crate) log: Option<Vec<Decision>>,
    /// Servers currently available (`k` when the shard is healthy).
    pub(crate) avail: u32,
    /// This shard's capacity-change schedule (empty without churn).
    pub(crate) faults: Vec<CapacityEvent>,
    /// Index of the next unapplied event in `faults`.
    pub(crate) fault_cursor: usize,
    shed_limit: Option<usize>,
    /// Wall-clock decision latency (nanoseconds), recorded only while
    /// the `eirs_obs` layer is enabled. Deliberately *not* part of
    /// [`ShardMetrics`]: wall time is nondeterministic, and the
    /// determinism gates compare per-shard metrics bit for bit.
    pub(crate) latency: eirs_obs::LatencyHistogram,
}

impl ClusterShard {
    pub(crate) fn new(
        k: u32,
        record: bool,
        faults: Vec<CapacityEvent>,
        shed_limit: Option<usize>,
    ) -> Self {
        Self {
            k,
            time: 0.0,
            next_id: 0,
            inelastic: VecDeque::with_capacity(16),
            elastic: VecDeque::with_capacity(16),
            digest: 0,
            metrics: ShardMetrics::new(k),
            log: record.then(Vec::new),
            avail: k,
            faults,
            fault_cursor: 0,
            shed_limit,
            latency: eirs_obs::LatencyHistogram::new(),
        }
    }

    /// One allocation decision at the current occupancy, under the
    /// degraded-decision rule (see the [module docs](self)).
    fn decide(&mut self, table: &CompiledTable) -> ClassAllocation {
        // Telemetry is write-only: the timing never feeds back into any
        // decision, so enabling it cannot perturb the digest.
        let t0 = eirs_obs::enabled().then(std::time::Instant::now);
        let (i, j) = (self.inelastic.len(), self.elastic.len());
        let (allocation, in_grid) = if self.avail == self.k {
            (table.lookup(i, j), table.in_grid(i, j))
        } else if self.avail == 0 {
            // Dark shard: idle without consulting the policy.
            (ClassAllocation::IDLE, true)
        } else {
            (table.lookup_capped(i, j, self.avail), true)
        };
        assert_feasible(allocation, i, j, self.avail, "compiled table");
        self.metrics.record_decision(i, j, allocation, in_grid);
        if self.avail < self.k {
            self.metrics.degraded_decisions += 1;
        }
        self.digest = fold_decision(self.digest, i, j, allocation);
        if let Some(log) = &mut self.log {
            log.push(Decision { i, j, allocation });
        }
        if let Some(t0) = t0 {
            self.latency.record(t0.elapsed().as_nanos() as u64);
        }
        allocation
    }

    /// Time to the next capacity event (`∞` when the schedule is spent).
    fn next_fault_dt(&self) -> f64 {
        self.faults
            .get(self.fault_cursor)
            .map_or(f64::INFINITY, |e| e.time - self.time)
    }

    /// Applies every capacity event due at the current clock — the same
    /// sequencing as [`eirs_sim::des::Simulation`]: after simultaneous
    /// completions have been collected, before the next decision.
    fn apply_due_capacity_events(&mut self) {
        while let Some(&e) = self.faults.get(self.fault_cursor) {
            if e.time <= self.time + 1e-12 {
                self.fault_cursor += 1;
                self.apply_capacity(e.available);
            } else {
                break;
            }
        }
    }

    /// Sets available capacity, preempt-restarting partially-served
    /// inelastic jobs beyond the surviving prefix (the DES's exact
    /// rule: progress resets to full size, the job re-enters at the
    /// back of the queue). Elastic jobs keep all progress.
    fn apply_capacity(&mut self, available: u32) {
        self.avail = available;
        let keep = available as usize;
        if keep >= self.inelastic.len() {
            return;
        }
        let mut preempted: Vec<Job> = Vec::new();
        let mut idx = keep;
        while idx < self.inelastic.len() {
            let job = &self.inelastic[idx];
            if job.remaining < job.size {
                let mut job = self.inelastic.remove(idx).expect("index in range");
                job.remaining = job.size;
                self.metrics.preemptions += 1;
                preempted.push(job);
            } else {
                idx += 1;
            }
        }
        self.inelastic.extend(preempted);
    }

    /// Degraded-mode admission shedding: reject when below full
    /// capacity with `shed_limit` or more jobs already present.
    fn should_shed(&self) -> bool {
        match self.shed_limit {
            Some(limit) => {
                self.avail < self.k && self.inelastic.len() + self.elastic.len() >= limit
            }
            None => false,
        }
    }

    /// Earliest completion under `alloc` (FCFS rate assignment, exactly
    /// as the DES computes it).
    fn next_completion_dt(&self, alloc: ClassAllocation) -> f64 {
        let whole = alloc.inelastic.floor() as usize;
        let frac = alloc.inelastic - whole as f64;
        let mut dt = f64::INFINITY;
        for (idx, job) in self.inelastic.iter().enumerate().take(whole + 1) {
            let rate = if idx < whole { 1.0 } else { frac };
            if rate > 0.0 {
                dt = dt.min(job.remaining / rate);
            }
        }
        if alloc.elastic > 0.0 {
            if let Some(head) = self.elastic.front() {
                dt = dt.min(head.remaining / alloc.elastic);
            }
        }
        dt
    }

    /// Advances served jobs by `dt` (float-operation order matches the
    /// DES bit for bit; no-op at `dt = 0`, like the DES).
    fn advance(&mut self, alloc: ClassAllocation, dt: f64) {
        if dt > 0.0 {
            let whole = alloc.inelastic.floor() as usize;
            let frac = alloc.inelastic - whole as f64;
            for (idx, job) in self.inelastic.iter_mut().enumerate().take(whole + 1) {
                let rate = if idx < whole { 1.0 } else { frac };
                if rate > 0.0 {
                    job.remaining = (job.remaining - rate * dt).max(0.0);
                }
            }
            if alloc.elastic > 0.0 {
                if let Some(head) = self.elastic.front_mut() {
                    head.remaining = (head.remaining - alloc.elastic * dt).max(0.0);
                }
            }
            self.time += dt;
            self.metrics.sim_time = self.time;
        }
    }

    fn complete(&mut self, job: Job) {
        self.metrics.record_response(self.time - job.arrival);
    }

    /// Removes finished jobs, in the DES's sweep order (inelastic front
    /// pops, then a positional sweep for fractionally-served stragglers,
    /// then elastic front pops).
    fn collect_departures(&mut self) {
        while let Some(front) = self.inelastic.front() {
            if front.is_done() {
                let job = self.inelastic.pop_front().expect("front exists");
                self.complete(job);
            } else {
                break;
            }
        }
        let mut idx = 0;
        while idx < self.inelastic.len() {
            if self.inelastic[idx].is_done() {
                let job = self.inelastic.remove(idx).expect("index in range");
                self.complete(job);
            } else {
                idx += 1;
            }
        }
        while let Some(front) = self.elastic.front() {
            if front.is_done() {
                let job = self.elastic.pop_front().expect("front exists");
                self.complete(job);
            } else {
                break;
            }
        }
    }

    /// A pure read of the allocation the shard would serve at its
    /// current occupancy — the same degraded-decision rule as `decide`,
    /// but with **no** side effects (no digest fold, no metrics, no
    /// log). Used to build [`Admission`] acknowledgments; because it
    /// never mutates, acking cannot perturb the decision stream.
    pub(crate) fn peek(&self, table: &CompiledTable) -> (usize, usize, ClassAllocation) {
        let (i, j) = (self.inelastic.len(), self.elastic.len());
        let allocation = if self.avail == self.k {
            table.lookup(i, j)
        } else if self.avail == 0 {
            ClassAllocation::IDLE
        } else {
            table.lookup_capped(i, j, self.avail)
        };
        (i, j, allocation)
    }

    /// Processes all completions up to `a.time`, then admits the arrival
    /// — the incremental form of one-or-more DES loop iterations ending
    /// in an arrival event. Returns `false` when degraded-mode admission
    /// shedding rejected the arrival.
    pub(crate) fn ingest(&mut self, table: &CompiledTable, a: Arrival) -> bool {
        loop {
            self.apply_due_capacity_events();
            let alloc = self.decide(table);
            let dt_completion = self.next_completion_dt(alloc);
            let dt_arrival = a.time - self.time;
            debug_assert!(dt_arrival >= -1e-9, "arrival in the past");
            let dt = dt_completion
                .min(dt_arrival.max(0.0))
                .min(self.next_fault_dt().max(0.0));
            self.advance(alloc, dt);
            self.collect_departures();
            if a.time <= self.time + 1e-12 && dt_arrival <= dt_completion {
                self.time = self.time.max(a.time);
                self.metrics.arrivals += 1;
                match a.class {
                    JobClass::Inelastic => self.metrics.arrivals_inelastic += 1,
                    JobClass::Elastic => self.metrics.arrivals_elastic += 1,
                }
                self.metrics.sim_time = self.time;
                if self.should_shed() {
                    self.metrics.rejections += 1;
                    return false;
                }
                let job = Job::new(self.next_id, a.class, a.size, a.time);
                self.next_id += 1;
                match a.class {
                    JobClass::Inelastic => self.inelastic.push_back(job),
                    JobClass::Elastic => self.elastic.push_back(job),
                }
                // Zero-size jobs depart immediately.
                self.collect_departures();
                return true;
            }
        }
    }

    /// Runs remaining work to completion (no further arrivals; pending
    /// capacity events still fire, so an outage mid-drain degrades
    /// exactly as it would mid-stream).
    pub(crate) fn drain(&mut self, table: &CompiledTable) {
        while !(self.inelastic.is_empty() && self.elastic.is_empty()) {
            self.apply_due_capacity_events();
            let alloc = self.decide(table);
            let dt = self
                .next_completion_dt(alloc)
                .min(self.next_fault_dt().max(0.0));
            assert!(
                dt.is_finite(),
                "{} idles forever with jobs present (state ({},{}), {}/{} servers available)",
                table.name(),
                self.inelastic.len(),
                self.elastic.len(),
                self.avail,
                self.k
            );
            self.advance(alloc, dt);
            self.collect_departures();
        }
    }
}

/// Runs `f(item_index, item)` for every item (a shard, or a shard
/// zipped with its per-shard output buffer), fanned over `workers`
/// scoped threads in fixed index chunks (`workers <= 1` runs inline —
/// the serial reference path). Items are independent, so parallel
/// execution is bit-identical to serial.
fn fan_out<T, F>(items: &mut [T], workers: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut T) + Sync,
{
    let workers = workers.max(1).min(items.len().max(1));
    if workers <= 1 {
        for (idx, item) in items.iter_mut().enumerate() {
            f(idx, item);
        }
        return;
    }
    let per = items.len().div_ceil(workers);
    std::thread::scope(|scope| {
        for (chunk_no, chunk) in items.chunks_mut(per).enumerate() {
            let f = &f;
            scope.spawn(move || {
                for (off, item) in chunk.iter_mut().enumerate() {
                    f(chunk_no * per + off, item);
                }
            });
        }
    });
}

/// The online allocation server: a compiled table shared across a fixed
/// partition of independent cluster shards. See the [module
/// docs](self) for the determinism contract.
pub struct ServeEngine {
    pub(crate) config: EngineConfig,
    pub(crate) table: Arc<CompiledTable>,
    pub(crate) shards: Vec<ClusterShard>,
    pub(crate) seq: u64,
    /// Policy generation currently serving (0 until the first
    /// [`ServeEngine::install_table`]).
    pub(crate) generation: u32,
    /// Ordered swap history (the generation schedule).
    pub(crate) swap_log: Vec<SwapRecord>,
    scratch: Vec<Vec<Arrival>>,
}

impl ServeEngine {
    /// A fresh engine serving `table` under `config`.
    pub fn new(table: CompiledTable, config: EngineConfig) -> Self {
        assert_eq!(
            table.k(),
            config.k,
            "table compiled for k={}, engine configured for k={}",
            table.k(),
            config.k
        );
        assert!(config.route_shards >= 1, "need at least one route shard");
        assert!(config.batch >= 1, "need a positive batch size");
        let shards = (0..config.route_shards)
            .map(|idx| {
                // Each routing shard replays its own seeded schedule,
                // derived from the shard index — never the worker id.
                let faults = match &config.churn {
                    Some(c) => c
                        .spec
                        .schedule_for_shard(config.k, c.seed, idx, c.horizon)
                        .events()
                        .to_vec(),
                    None => Vec::new(),
                };
                ClusterShard::new(config.k, config.record_decisions, faults, config.shed_limit)
            })
            .collect();
        let scratch = (0..config.route_shards).map(|_| Vec::new()).collect();
        Self {
            config,
            table: Arc::new(table),
            shards,
            seq: 0,
            generation: 0,
            swap_log: Vec::new(),
            scratch,
        }
    }

    /// Atomically installs a freshly compiled table as the next policy
    /// generation. The engine is advanced synchronously (one
    /// [`ServeEngine::ingest_batch`] at a time), so calling this between
    /// batches *is* the snapshot barrier: every shard has fully drained
    /// its routed share of the previous batch, arrivals `< seq` were
    /// decided by the old generation and arrivals `>= seq` by the new
    /// one. Returns the [`SwapRecord`] (also appended to
    /// [`ServeEngine::swap_log`]) for journaling.
    pub fn install_table(&mut self, table: CompiledTable, spec: &str) -> SwapRecord {
        assert_eq!(
            table.k(),
            self.config.k,
            "swap table compiled for k={}, engine serves k={}",
            table.k(),
            self.config.k
        );
        self.generation += 1;
        let record = SwapRecord {
            seq: self.seq,
            generation: self.generation,
            hash: table.identity_hash(),
            spec: spec.to_string(),
        };
        self.table = Arc::new(table);
        self.swap_log.push(record.clone());
        record
    }

    /// The policy generation currently serving (0 = the boot policy).
    pub fn generation(&self) -> u32 {
        self.generation
    }

    /// The ordered hot-swap history.
    pub fn swap_log(&self) -> &[SwapRecord] {
        &self.swap_log
    }

    /// The engine's configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// The compiled table being served.
    pub fn table(&self) -> &CompiledTable {
        &self.table
    }

    /// Global arrivals ingested so far (the routing sequence counter).
    pub fn ingested(&self) -> u64 {
        self.seq
    }

    /// The shard owning global arrival number `seq`.
    #[inline]
    pub fn route(&self, seq: u64) -> usize {
        route_for(seq, self.config.route_shards)
    }

    /// Ingests one batch of time-ordered arrivals: routes each to its
    /// shard, then advances all shards (in parallel when
    /// `config.workers > 1`). Completions are produced by the shards
    /// themselves as their clocks pass the completion epochs.
    pub fn ingest_batch(&mut self, arrivals: &[Arrival]) {
        for bucket in &mut self.scratch {
            bucket.clear();
        }
        for &a in arrivals {
            let s = self.route(self.seq);
            self.seq += 1;
            self.scratch[s].push(a);
        }
        let table = &*self.table;
        let scratch = &self.scratch;
        fan_out(&mut self.shards, self.config.workers, |idx, shard| {
            for &a in &scratch[idx] {
                shard.ingest(table, a);
            }
        });
    }

    /// [`ServeEngine::ingest_batch`] with per-arrival acknowledgments:
    /// routes and ingests exactly like `ingest_batch` (same seq
    /// consumption, same digests, same metrics), additionally returning
    /// one [`Admission`] per input arrival, in input order. The network
    /// front end uses this to write decision frames back to clients;
    /// ack collection is side-effect-free, so a run through this path
    /// is bit-identical to one through `ingest_batch`.
    pub fn ingest_batch_admissions(&mut self, arrivals: &[Arrival]) -> Vec<Admission> {
        let mut buckets: Vec<Vec<(u32, Arrival)>> =
            (0..self.config.route_shards).map(|_| Vec::new()).collect();
        for (n, &a) in arrivals.iter().enumerate() {
            let s = self.route(self.seq);
            self.seq += 1;
            buckets[s].push((n as u32, a));
        }
        let generation = self.generation;
        let table = &*self.table;
        type AckWork<'a> = (
            usize,
            &'a mut ClusterShard,
            Vec<(u32, Arrival)>,
            Vec<(u32, Admission)>,
        );
        let mut work: Vec<AckWork<'_>> = self
            .shards
            .iter_mut()
            .zip(buckets)
            .enumerate()
            .map(|(idx, (shard, bucket))| (idx, shard, bucket, Vec::new()))
            .collect();
        fan_out(&mut work, self.config.workers, |_, item| {
            let (idx, shard, bucket, out) = item;
            for &(n, a) in bucket.iter() {
                let admitted = shard.ingest(table, a);
                let (i, j, allocation) = shard.peek(table);
                out.push((
                    n,
                    Admission {
                        shard: *idx,
                        i,
                        j,
                        allocation,
                        admitted,
                        generation,
                    },
                ));
            }
        });
        let mut acks: Vec<Option<Admission>> = vec![None; arrivals.len()];
        for (_, _, _, out) in &work {
            for &(n, adm) in out {
                acks[n as usize] = Some(adm);
            }
        }
        acks.into_iter()
            .map(|a| a.expect("every arrival acknowledged"))
            .collect()
    }

    /// Runs every shard's remaining work to completion.
    pub fn drain(&mut self) {
        let table = &*self.table;
        fan_out(&mut self.shards, self.config.workers, |_, shard| {
            shard.drain(table);
        });
    }

    /// Pulls arrivals from `source` up to simulated time `until`,
    /// ingesting them in `config.batch`-sized rounds, then drains.
    /// Returns the number of arrivals ingested. (The first arrival past
    /// the horizon is consumed from the source and dropped.)
    pub fn run(&mut self, source: &mut dyn ArrivalSource, until: f64) -> u64 {
        let before = self.seq;
        let mut buf: Vec<Arrival> = Vec::with_capacity(self.config.batch);
        while let Some(a) = source.next_arrival() {
            if a.time > until {
                break;
            }
            buf.push(a);
            if buf.len() >= self.config.batch {
                self.ingest_batch(&buf);
                buf.clear();
            }
        }
        self.ingest_batch(&buf);
        self.drain();
        self.seq - before
    }

    /// The engine-wide decision digest: per-shard digests folded in
    /// shard order. Equal digests mean equal decision streams — this is
    /// the CI determinism gate's currency, invariant to the worker count.
    pub fn decision_digest(&self) -> u64 {
        self.shards.iter().fold(0, |d, s| mix64(d ^ s.digest))
    }

    /// Per-shard decision digests, in shard order.
    pub fn shard_digests(&self) -> Vec<u64> {
        self.shards.iter().map(|s| s.digest).collect()
    }

    /// Per-shard metrics, in shard order.
    pub fn metrics_per_shard(&self) -> Vec<ShardMetrics> {
        self.shards.iter().map(|s| s.metrics.clone()).collect()
    }

    /// Engine-wide metrics (all shards merged).
    pub fn metrics_total(&self) -> ShardMetrics {
        let mut total = ShardMetrics::new(self.config.k);
        for s in &self.shards {
            total.merge(&s.metrics);
        }
        total
    }

    /// Wall-clock decision-latency histogram, all shards merged
    /// (nanoseconds per shard `decide` call). Empty unless the
    /// `eirs_obs` layer was enabled while the engine ran — timing is
    /// telemetry, never an input, so the decision stream is identical
    /// either way.
    pub fn decision_latency(&self) -> eirs_obs::LatencyHistogram {
        let mut total = eirs_obs::LatencyHistogram::new();
        for s in &self.shards {
            total.merge(&s.latency);
        }
        total
    }

    /// Cluster-wide response-time histogram (simulated seconds), merged
    /// exactly from the per-shard histograms — the source for merged
    /// P50/P95/P99/P99.9, since the per-shard P² sketches cannot merge.
    pub fn response_histogram(&self) -> eirs_obs::LatencyHistogram {
        let mut total = eirs_obs::LatencyHistogram::new();
        for s in &self.shards {
            total.merge(&s.metrics.response_hist);
        }
        total
    }

    /// Current occupancy `(i, j)` of every shard.
    pub fn occupancy(&self) -> Vec<(usize, usize)> {
        self.shards
            .iter()
            .map(|s| (s.inelastic.len(), s.elastic.len()))
            .collect()
    }

    /// The recorded decision sequences concatenated in shard order
    /// (empty unless [`EngineConfig::record_decisions`] is on). With a
    /// single route shard this is the engine's exact global decision
    /// sequence — what the DES cross-checks compare.
    pub fn decision_log(&self) -> Vec<Decision> {
        self.shards
            .iter()
            .flat_map(|s| s.log.iter().flatten().copied())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::replay::{des_decision_log, RecordingPolicy};
    use eirs_queueing::Exponential;
    use eirs_sim::arrivals::ArrivalTrace;
    use eirs_sim::policy::{AllocationPolicy, FairShare, InelasticFirst};

    fn poisson_trace(seed: u64, horizon: f64) -> ArrivalTrace {
        ArrivalTrace::record_poisson(
            0.9,
            0.6,
            Box::new(Exponential::new(1.0)),
            Box::new(Exponential::new(0.8)),
            seed,
            horizon,
        )
    }

    fn engine_for(policy: Box<dyn AllocationPolicy>, config: EngineConfig) -> ServeEngine {
        ServeEngine::new(CompiledTable::compile(policy, config.k, 24, 24), config)
    }

    #[test]
    fn single_shard_replay_reproduces_the_des_decision_sequence() {
        let trace = poisson_trace(7, 80.0);
        for policy in [
            Box::new(InelasticFirst) as Box<dyn AllocationPolicy>,
            Box::new(FairShare),
        ] {
            let reference = des_decision_log(policy.as_ref(), 3, &trace);
            let cfg = EngineConfig::new(3).route_shards(1).record_decisions(true);
            let mut engine = engine_for(policy, cfg);
            let mut source = trace.stream();
            engine.run(&mut source, f64::INFINITY);
            let served = engine.decision_log();
            assert_eq!(served.len(), reference.len(), "decision counts differ");
            for (n, (a, b)) in served.iter().zip(&reference).enumerate() {
                assert_eq!((a.i, a.j), (b.i, b.j), "state at decision {n}");
                assert_eq!(
                    a.allocation.inelastic.to_bits(),
                    b.allocation.inelastic.to_bits(),
                    "inelastic allocation at decision {n}"
                );
                assert_eq!(
                    a.allocation.elastic.to_bits(),
                    b.allocation.elastic.to_bits(),
                    "elastic allocation at decision {n}"
                );
            }
            assert_ne!(engine.decision_digest(), 0);
            assert_eq!(
                mix64(digest_decisions(&reference)),
                engine.decision_digest(),
                "digest of the DES log must match the live engine"
            );
        }
    }

    #[test]
    fn worker_count_does_not_change_the_decision_digest() {
        let trace = poisson_trace(11, 120.0);
        let digest_with = |workers: usize| {
            let cfg = EngineConfig::new(2)
                .route_shards(6)
                .workers(workers)
                .batch(32);
            let mut engine = engine_for(Box::new(FairShare), cfg);
            let mut source = trace.stream();
            engine.run(&mut source, f64::INFINITY);
            (engine.decision_digest(), engine.shard_digests())
        };
        let serial = digest_with(1);
        for workers in [2, 3, 6, 8] {
            assert_eq!(digest_with(workers), serial, "{workers} workers diverged");
        }
    }

    #[test]
    fn routing_is_deterministic_and_covers_all_shards() {
        let cfg = EngineConfig::new(2).route_shards(5);
        let engine = engine_for(Box::new(InelasticFirst), cfg);
        let shards: Vec<usize> = (0..200).map(|s| engine.route(s)).collect();
        assert_eq!(
            shards,
            (0..200).map(|s| engine.route(s)).collect::<Vec<_>>()
        );
        for target in 0..5 {
            assert!(shards.contains(&target), "shard {target} never routed to");
        }
    }

    #[test]
    fn metrics_account_for_every_arrival_and_completion() {
        let trace = poisson_trace(3, 60.0);
        let cfg = EngineConfig::new(2).route_shards(3).batch(16);
        let mut engine = engine_for(Box::new(InelasticFirst), cfg);
        let mut source = trace.stream();
        let ingested = engine.run(&mut source, f64::INFINITY);
        assert_eq!(ingested, trace.len() as u64);
        let total = engine.metrics_total();
        assert_eq!(total.arrivals, trace.len() as u64);
        // run() drains, so every job completes and every shard is empty.
        assert_eq!(total.completions, total.arrivals);
        assert!(engine.occupancy().iter().all(|&(i, j)| i == 0 && j == 0));
        assert!(total.decisions >= total.events());
        assert!(total.mean_response() > 0.0);
        let histogram_total: u64 = total.busy_histogram.iter().sum();
        assert_eq!(histogram_total, total.decisions);
        // Per-shard metrics merge to the total.
        let merged = engine
            .metrics_per_shard()
            .iter()
            .fold(ShardMetrics::new(2), |mut acc, m| {
                acc.merge(m);
                acc
            });
        assert_eq!(merged, total);
    }

    #[test]
    fn single_shard_faulted_replay_matches_the_des() {
        use eirs_sim::des::{DesConfig, Simulation};
        let trace = poisson_trace(19, 100.0);
        let spec = FaultSpec::parse("crash:mtbf=20,mttr=6").unwrap();
        let churn = ChurnConfig {
            spec,
            seed: 5,
            horizon: 400.0,
        };
        let cfg = EngineConfig::new(3).route_shards(1).churn(churn);
        let mut engine = engine_for(Box::new(FairShare), cfg);
        let mut source = trace.stream();
        engine.run(&mut source, f64::INFINITY);
        let totals = engine.metrics_total();

        // The DES twin runs the same schedule shard 0 replays.
        let schedule = spec.schedule_for_shard(3, 5, 0, 400.0);
        let mut des_source = trace.stream();
        let report = Simulation::new(DesConfig::drain(3))
            .with_faults(&schedule)
            .run(&FairShare, &mut des_source);
        assert!(totals.degraded_decisions > 0, "schedule must actually bite");
        assert_eq!(
            totals.completions,
            report.completed[0] + report.completed[1]
        );
        assert_eq!(totals.preemptions, report.preemptions);
        assert_eq!(
            totals.total_response.to_bits(),
            report.total_response.to_bits(),
            "serve {} vs DES {}",
            totals.total_response,
            report.total_response
        );
        assert_eq!(totals.sim_time.to_bits(), report.end_time.to_bits());
    }

    #[test]
    fn worker_count_invariance_holds_under_churn_and_shedding() {
        let trace = poisson_trace(29, 150.0);
        let churn = ChurnConfig {
            spec: FaultSpec::parse("mmpp:r01=0.2,r10=0.3,a0=0.05,a1=0.8,mttr=8").unwrap(),
            seed: 17,
            horizon: 600.0,
        };
        let run_with = |workers: usize| {
            let cfg = EngineConfig::new(2)
                .route_shards(6)
                .workers(workers)
                .batch(32)
                .churn(churn)
                .shed_limit(4);
            let mut engine = engine_for(Box::new(FairShare), cfg);
            let mut source = trace.stream();
            engine.run(&mut source, f64::INFINITY);
            (
                engine.decision_digest(),
                engine.shard_digests(),
                engine.metrics_per_shard(),
            )
        };
        let serial = run_with(1);
        for workers in [2, 4, 6] {
            assert_eq!(run_with(workers), serial, "{workers} workers diverged");
        }
    }

    #[test]
    fn degraded_shedding_accounts_for_every_arrival() {
        let trace = poisson_trace(37, 200.0);
        // Periodic full outages: occupancy piles up, the shed bound
        // rejects the excess.
        let churn = ChurnConfig {
            spec: FaultSpec::parse("drain:period=20,down=10,servers=2").unwrap(),
            seed: 0,
            horizon: 800.0,
        };
        let cfg = EngineConfig::new(2)
            .route_shards(2)
            .churn(churn)
            .shed_limit(3);
        let mut engine = engine_for(Box::new(FairShare), cfg);
        let mut source = trace.stream();
        let ingested = engine.run(&mut source, f64::INFINITY);
        assert_eq!(ingested, trace.len() as u64);
        let totals = engine.metrics_total();
        assert_eq!(totals.arrivals, trace.len() as u64);
        assert!(totals.rejections > 0, "outages must shed under the bound");
        assert!(totals.degraded_decisions > 0);
        // The acceptance identity: admitted + rejected = arrivals, and
        // after the drain every admitted job has completed.
        assert_eq!(totals.completions + totals.rejections, totals.arrivals);
        assert_eq!(totals.admitted(), totals.completions);
        assert!(engine.occupancy().iter().all(|&(i, j)| i == 0 && j == 0));
    }

    #[test]
    fn zero_capacity_never_consults_the_policy() {
        /// Panics if asked for an allocation on an empty cluster.
        struct NoZero;
        impl AllocationPolicy for NoZero {
            fn allocate(&self, i: usize, j: usize, k: u32) -> ClassAllocation {
                assert!(k >= 1, "policy consulted at zero capacity");
                let inelastic = i.min(k as usize) as f64;
                let spare = (k as f64 - inelastic).max(0.0);
                ClassAllocation {
                    inelastic,
                    elastic: if j > 0 { spare } else { 0.0 },
                }
            }
            fn name(&self) -> String {
                "NoZero".into()
            }
        }
        let trace = poisson_trace(41, 60.0);
        let churn = ChurnConfig {
            spec: FaultSpec::parse("drain:period=10,down=5,servers=2").unwrap(),
            seed: 0,
            horizon: 400.0,
        };
        let cfg = EngineConfig::new(2).route_shards(2).churn(churn);
        let mut engine = engine_for(Box::new(NoZero), cfg);
        let mut source = trace.stream();
        engine.run(&mut source, f64::INFINITY);
        let totals = engine.metrics_total();
        assert_eq!(totals.completions, totals.arrivals);
        assert!(totals.degraded_decisions > 0);
    }

    #[test]
    fn churn_identity_round_trips() {
        let churn = ChurnConfig {
            spec: FaultSpec::parse("crash:mtbf=50,mttr=5").unwrap(),
            seed: 42,
            horizon: 1000.0,
        };
        let parsed = ChurnConfig::parse_identity(&churn.identity()).unwrap();
        assert_eq!(parsed, churn);
        assert!(ChurnConfig::parse_identity("spec=crash:mtbf=50,mttr=5").is_err());
        assert!(ChurnConfig::parse_identity("nonsense").is_err());
    }

    #[test]
    fn recording_policy_mirrors_its_inner_policy() {
        let rec = RecordingPolicy::new(&FairShare);
        let a = rec.allocate(3, 2, 4);
        assert_eq!(a, FairShare.allocate(3, 2, 4));
        assert_eq!(rec.name(), FairShare.name());
        let log = rec.into_log();
        assert_eq!(
            log,
            vec![Decision {
                i: 3,
                j: 2,
                allocation: a
            }]
        );
    }

    #[test]
    fn empty_stream_makes_no_decisions() {
        let cfg = EngineConfig::new(2).route_shards(2);
        let mut engine = engine_for(Box::new(InelasticFirst), cfg);
        let empty = ArrivalTrace::default();
        let mut source = empty.stream();
        assert_eq!(engine.run(&mut source, f64::INFINITY), 0);
        assert_eq!(engine.metrics_total().decisions, 0);
        // Folding two untouched shard digests: mix64(mix64(0 ^ 0) ^ 0).
        assert_eq!(engine.decision_digest(), mix64(mix64(0)));
    }
}
