//! The chaos harness: one call that proves the three fault-tolerance
//! contracts on a concrete workload.
//!
//! Given a policy, an engine shape, and an arrival trace, [`run_chaos`]
//! executes three runs:
//!
//! 1. **serial** — one worker, full run to drain;
//! 2. **parallel** — several workers over the same routing partition;
//! 3. **kill + recover** — a write-ahead-journaled run snapshotted at
//!    one arrival index and killed (no drain, simulating a crash) at a
//!    later one, then recovered via [`recover`] and resumed on the rest
//!    of the workload.
//!
//! and asserts all three shard-ordered decision digests are equal. Under
//! capacity churn this is the strongest determinism statement the layer
//! makes: worker parallelism, crashing, and restoring are all invisible
//! to the decision stream. The CI chaos gate runs exactly this harness
//! (via `eirs serve`) on the bundled smoke trace.

use crate::engine::{EngineConfig, ServeEngine};
use crate::journal::{recover, run_journaled, Journal, JournalWriter, RunControls};
use crate::metrics::ShardMetrics;
use crate::table::CompiledTable;
use eirs_sim::arrivals::ArrivalTrace;

/// What one chaos run observed. All three digests are asserted equal by
/// [`run_chaos`] before this is returned, so the report is for display
/// and accounting, not verdicts.
#[derive(Debug, Clone)]
pub struct ChaosReport {
    /// Digest of the serial (one-worker) run.
    pub serial_digest: u64,
    /// Digest of the parallel run.
    pub parallel_digest: u64,
    /// Digest of the killed-and-recovered run.
    pub recovered_digest: u64,
    /// Arrival index the snapshot was taken at.
    pub snapshot_at: u64,
    /// Arrival index the journaled run was killed at.
    pub killed_at: u64,
    /// Merged metrics of the serial run (equal to the recovered run's —
    /// also asserted).
    pub metrics: ShardMetrics,
}

/// Runs the serial / parallel / kill-and-recover triple described in the
/// [module docs](self) and asserts digest equality. `make_table` is
/// called once per run (compiled tables are not `Clone` — they own their
/// source policy); `config` carries the shape, churn, and shedding knobs
/// (its `workers` field is overridden per run: 1 for serial, `workers`
/// for parallel). `snapshot_at < kill_after ≤ trace.len()` is required —
/// the harness must actually crash mid-workload to test anything.
///
/// # Panics
///
/// Panics if any digest or metrics total differs — that is the point.
pub fn run_chaos(
    make_table: &dyn Fn() -> CompiledTable,
    config: EngineConfig,
    trace: &ArrivalTrace,
    snapshot_at: u64,
    kill_after: u64,
) -> ChaosReport {
    assert!(
        snapshot_at < kill_after && kill_after <= trace.len() as u64,
        "need snapshot_at < kill_after <= {} arrivals, got {snapshot_at} / {kill_after}",
        trace.len()
    );
    let workers = config.workers.max(2);

    // 1. Serial reference.
    let mut serial = ServeEngine::new(make_table(), config.workers(1));
    let mut src = trace.stream();
    serial.run(&mut src, f64::INFINITY);
    let serial_digest = serial.decision_digest();

    // 2. Parallel over the same partition.
    let mut parallel = ServeEngine::new(make_table(), config.workers(workers));
    let mut src = trace.stream();
    parallel.run(&mut src, f64::INFINITY);
    let parallel_digest = parallel.decision_digest();
    assert_eq!(
        parallel_digest, serial_digest,
        "parallel run diverged from serial under churn"
    );

    // 3. Journaled run, snapshotted, killed, recovered, resumed.
    let mut crashed = ServeEngine::new(make_table(), config.workers(1));
    let mut src = trace.stream();
    let mut journal =
        JournalWriter::create(Vec::new(), &crashed).expect("journaling to memory cannot fail");
    let outcome = run_journaled(
        &mut crashed,
        &mut src,
        f64::INFINITY,
        &mut journal,
        RunControls {
            snapshot_at: Some(snapshot_at),
            kill_after: Some(kill_after),
        },
    )
    .expect("journaling to memory cannot fail");
    assert!(outcome.killed, "the controlled run must actually be killed");
    let snap = outcome
        .snapshot
        .expect("snapshot boundary precedes the kill");
    drop(crashed); // the crashed engine's state is dead — only the WAL survives
    let bytes = journal.into_inner().expect("flushing memory cannot fail");
    let journal = Journal::load_prefix(&mut std::io::Cursor::new(bytes))
        .expect("the WAL must parse after a kill");
    let mut recovered = recover(make_table(), config.workers(workers), &snap, &journal)
        .expect("recovery from a clean WAL must succeed");
    let resume_from = recovered.ingested() as usize;
    recovered.ingest_batch(&trace.arrivals()[resume_from..]);
    recovered.drain();
    let recovered_digest = recovered.decision_digest();
    assert_eq!(
        recovered_digest, serial_digest,
        "kill-and-recover run diverged from the unfaulted run"
    );
    assert_eq!(
        recovered.metrics_total(),
        serial.metrics_total(),
        "recovered metrics diverged from the unfaulted run"
    );

    ChaosReport {
        serial_digest,
        parallel_digest,
        recovered_digest,
        snapshot_at,
        killed_at: kill_after,
        metrics: serial.metrics_total(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::ChurnConfig;
    use eirs_queueing::Exponential;
    use eirs_sim::availability::FaultSpec;
    use eirs_sim::policy::{FairShare, InelasticFirst};

    fn trace() -> ArrivalTrace {
        ArrivalTrace::record_poisson(
            1.0,
            0.7,
            Box::new(Exponential::new(1.0)),
            Box::new(Exponential::new(1.0)),
            13,
            140.0,
        )
    }

    #[test]
    fn chaos_triple_agrees_under_crash_churn_and_shedding() {
        let config = EngineConfig::new(3)
            .route_shards(4)
            .batch(16)
            .workers(4)
            .churn(ChurnConfig {
                spec: FaultSpec::parse("crash:mtbf=30,mttr=6").unwrap(),
                seed: 3,
                horizon: 220.0,
            })
            .shed_limit(6);
        let t = trace();
        let n = t.len() as u64;
        let report = run_chaos(
            &|| CompiledTable::compile(Box::new(FairShare), 3, 24, 24),
            config,
            &t,
            n / 3,
            2 * n / 3,
        );
        assert_eq!(report.serial_digest, report.recovered_digest);
        assert!(
            report.metrics.degraded_decisions > 0,
            "mtbf=30 over a 140-epoch trace must degrade some decisions"
        );
        assert_eq!(
            report.metrics.completions + report.metrics.rejections,
            report.metrics.arrivals,
            "every arrival is either served or accounted as rejected"
        );
    }

    #[test]
    fn chaos_triple_agrees_without_churn_too() {
        let t = trace();
        let report = run_chaos(
            &|| CompiledTable::compile(Box::new(InelasticFirst), 3, 24, 24),
            EngineConfig::new(3).route_shards(2).workers(3),
            &t,
            5,
            (t.len() as u64).min(60),
        );
        assert_eq!(report.parallel_digest, report.serial_digest);
    }
}
