//! Online allocation-decision serving: the deployment surface of the
//! policy layer.
//!
//! Every other substrate in this workspace (analysis, DES, MDP, optimizer)
//! evaluates policies *offline*. A real cluster consumes the same
//! `(i, j) → (π_I, π_E)` map **online**: arrival and completion events
//! stream in, and every event needs an allocation decision *now*. This
//! crate turns any [`AllocationPolicy`] into that service:
//!
//! * [`table::CompiledTable`] — bakes a policy into a dense, cache-friendly
//!   O(1) lookup table over the `(i, j)` occupancy grid, with an explicit
//!   clamp region for overflow states that delegates to the source policy
//!   so decisions stay **bit-identical** to direct `allocate` calls
//!   everywhere (not just on the grid);
//! * [`engine::ServeEngine`] — a sharded cluster engine: the traffic is
//!   hash-routed over [`EngineConfig::route_shards`] independent cluster
//!   shards, each advancing its own occupancy state with the same event
//!   mechanics as the discrete-event simulator, so replaying a recorded
//!   trace through the server reproduces the DES allocation sequence
//!   exactly. `--shards`-style worker parallelism follows the
//!   `sweep`/`replicate` discipline: parallel runs are bit-identical to
//!   serial, and the [decision digest](engine::ServeEngine::decision_digest)
//!   is invariant to the worker count;
//! * an **ops surface** — per-shard [`metrics::ShardMetrics`]
//!   (decision counts, queue depths, allocation histogram, overflow rate),
//!   [`snapshot::EngineSnapshot`] save/restore of live engine state, and
//!   [`replay::RecordingPolicy`] for differential testing against the DES;
//! * a **fault-tolerance layer** — seeded capacity churn
//!   ([`engine::ChurnConfig`]) with graceful degradation (capped lookups,
//!   preempt-restart, bounded admission shedding), a write-ahead decision
//!   [`journal`] composing with snapshots for crash recovery, and the
//!   [`chaos`] harness proving serial, parallel, and kill-and-recover
//!   runs produce the same decision digest.
//!
//! The `eirs serve` CLI subcommand and the `serve_throughput` bench
//! (`BENCH_serve.json`) are thin wrappers over these types.
//!
//! # Example
//!
//! Serve Inelastic-First decisions for a short recorded trace:
//!
//! ```
//! use eirs_serve::engine::{EngineConfig, ServeEngine};
//! use eirs_serve::table::CompiledTable;
//! use eirs_sim::policy::InelasticFirst;
//! use eirs_sim::{Arrival, ArrivalTrace, JobClass};
//!
//! let table = CompiledTable::compile(Box::new(InelasticFirst), 4, 32, 32);
//! let mut engine = ServeEngine::new(table, EngineConfig::new(4));
//! let trace = ArrivalTrace::new(vec![
//!     Arrival { time: 0.0, class: JobClass::Inelastic, size: 1.0 },
//!     Arrival { time: 0.5, class: JobClass::Elastic, size: 2.0 },
//! ]);
//! let mut source = trace.stream();
//! engine.run(&mut source, f64::INFINITY);
//! let totals = engine.metrics_total();
//! assert_eq!(totals.arrivals, 2);
//! assert_eq!(totals.completions, 2);
//! assert!(engine.decision_digest() != 0);
//! ```

pub mod chaos;
pub mod engine;
pub mod journal;
pub mod metrics;
pub mod replay;
pub mod snapshot;
pub mod table;

pub use chaos::{run_chaos, ChaosReport};
pub use eirs_sim::policy::AllocationPolicy;
pub use engine::{
    route_for, Admission, ChurnConfig, Decision, EngineConfig, ServeEngine, SwapRecord,
};
pub use journal::{
    recover, recover_with, replay_journal, run_journaled, Journal, JournalWriter, RunControls,
    RunOutcome,
};
pub use metrics::ShardMetrics;
pub use replay::RecordingPolicy;
pub use snapshot::EngineSnapshot;
pub use table::CompiledTable;
