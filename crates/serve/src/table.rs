//! The policy table compiler: any [`AllocationPolicy`] baked into a
//! dense O(1) lookup table.
//!
//! A policy in this workspace is a pure map `(i, j) → (π_I, π_E)`; online
//! serving calls it once per cluster event, so the decision path should be
//! one bounds check and one array read — not a virtual dispatch into
//! whatever arithmetic the family happens to use. [`CompiledTable`]
//! pre-evaluates the policy on the occupancy grid
//! `(i, j) ∈ [0, max_i] × [0, max_j]` into one contiguous row-major
//! allocation array.
//!
//! **The clamp region.** States beyond the grid are the *clamp region*.
//! Edge-clamping the indices (the [`TabularPolicy`] discipline) is exact
//! for threshold-like families but not for state-dependent fractional ones
//! — fair-share and water-filling keep changing their split for every
//! additional queued job, forever. Serving must never silently change a
//! decision, so the clamp region delegates to the retained source policy:
//! overflow lookups are bit-identical to a direct `allocate` call, just
//! slower. The engine counts them ([`ShardMetrics::overflow_lookups`]) so
//! operators can size grids to keep the hot path at ~100 % coverage.
//!
//! [`TabularPolicy`]: eirs_sim::policy::TabularPolicy
//! [`ShardMetrics::overflow_lookups`]: crate::metrics::ShardMetrics::overflow_lookups

use eirs_sim::policy::{AllocationPolicy, ClassAllocation};

/// A policy compiled to a dense allocation table plus its source policy
/// for the clamp region. Implements [`AllocationPolicy`] itself, so a
/// compiled table drops into every substrate (DES, analysis, MDP grid)
/// unchanged — which is how the replay tests prove the server reproduces
/// the simulator's decision sequence.
pub struct CompiledTable {
    name: String,
    k: u32,
    max_i: usize,
    max_j: usize,
    stride: usize,
    table: Vec<ClassAllocation>,
    source: Box<dyn AllocationPolicy>,
}

impl CompiledTable {
    /// Evaluates `policy` on the full `(i, j) ∈ [0, max_i] × [0, max_j]`
    /// grid for a `k`-server cluster and packs the decisions row-major.
    /// The policy is retained for clamp-region (overflow) lookups.
    pub fn compile(policy: Box<dyn AllocationPolicy>, k: u32, max_i: usize, max_j: usize) -> Self {
        assert!(k >= 1, "need at least one server");
        let stride = max_j + 1;
        let mut table = Vec::with_capacity((max_i + 1) * stride);
        for i in 0..=max_i {
            for j in 0..=max_j {
                table.push(policy.allocate(i, j, k));
            }
        }
        Self {
            name: format!("Compiled[{}]", policy.name()),
            k,
            max_i,
            max_j,
            stride,
            table,
            source: policy,
        }
    }

    /// The allocation decision for occupancy `(i, j)`: one array read on
    /// the grid, a delegated policy call in the clamp region.
    #[inline]
    pub fn lookup(&self, i: usize, j: usize) -> ClassAllocation {
        if i <= self.max_i && j <= self.max_j {
            self.table[i * self.stride + j]
        } else {
            self.source.allocate(i, j, self.k)
        }
    }

    /// The allocation decision when only `available ≤ k` servers are up
    /// (degraded mode). The dense grid is compiled for full capacity, so
    /// any genuinely degraded lookup falls back to the retained source
    /// policy called with the available count — exact, just slower; the
    /// engine counts these in
    /// [`ShardMetrics::degraded_decisions`](crate::metrics::ShardMetrics::degraded_decisions).
    /// At `available >= k` this is exactly [`CompiledTable::lookup`].
    #[inline]
    pub fn lookup_capped(&self, i: usize, j: usize, available: u32) -> ClassAllocation {
        if available >= self.k {
            self.lookup(i, j)
        } else {
            self.source.allocate(i, j, available)
        }
    }

    /// `true` when `(i, j)` hits the precompiled grid (the O(1) hot path).
    #[inline]
    pub fn in_grid(&self, i: usize, j: usize) -> bool {
        i <= self.max_i && j <= self.max_j
    }

    /// Servers the table was compiled for.
    pub fn k(&self) -> u32 {
        self.k
    }

    /// Grid bound in `i` (inclusive).
    pub fn max_i(&self) -> usize {
        self.max_i
    }

    /// Grid bound in `j` (inclusive).
    pub fn max_j(&self) -> usize {
        self.max_j
    }

    /// Number of precompiled grid entries.
    pub fn entries(&self) -> usize {
        self.table.len()
    }

    /// Bytes held by the dense table (the cache footprint of the hot path).
    pub fn table_bytes(&self) -> usize {
        self.table.len() * std::mem::size_of::<ClassAllocation>()
    }

    /// The retained source policy (serves the clamp region; also the
    /// reference the bit-identity property tests compare against).
    pub fn source(&self) -> &dyn AllocationPolicy {
        self.source.as_ref()
    }

    /// A decision-behavior fingerprint of the compiled policy: a hash
    /// over `k`, the source policy's name, and the allocation bits on a
    /// **fixed** `33 × 33` probe grid, independent of the grid this
    /// table was compiled with. Because grid and clamp-region lookups
    /// are both bit-identical to the source policy, recompiling the
    /// same policy at any `max_i`/`max_j` yields the same hash — which
    /// is what lets snapshots pin policy identity without pinning grid
    /// size. Used by the hot-swap journal records and
    /// [`EngineSnapshot`](crate::EngineSnapshot) identity checks.
    pub fn identity_hash(&self) -> u64 {
        let mut h = crate::engine::mix64(self.k as u64);
        for b in self.source.name().as_bytes() {
            h = crate::engine::mix64(h ^ *b as u64);
        }
        for i in 0..=32usize {
            for j in 0..=32usize {
                let a = self.lookup(i, j);
                h = crate::engine::mix64(h ^ (((i as u64) << 32) | j as u64));
                h = crate::engine::mix64(h ^ a.inelastic.to_bits());
                h = crate::engine::mix64(h ^ a.elastic.to_bits());
            }
        }
        h
    }
}

impl AllocationPolicy for CompiledTable {
    fn allocate(&self, i: usize, j: usize, k: u32) -> ClassAllocation {
        debug_assert_eq!(k, self.k, "table compiled for k={}, asked k={k}", self.k);
        self.lookup(i, j)
    }

    fn name(&self) -> String {
        self.name.clone()
    }
}

impl std::fmt::Debug for CompiledTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "CompiledTable({}, k={}, grid {}x{})",
            self.name,
            self.k,
            self.max_i + 1,
            self.max_j + 1
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eirs_sim::policy::{FairShare, InelasticFirst, WeightedWaterFilling};

    fn bits(a: ClassAllocation) -> (u64, u64) {
        (a.inelastic.to_bits(), a.elastic.to_bits())
    }

    #[test]
    fn grid_lookups_are_bit_identical_to_the_policy() {
        let table = CompiledTable::compile(Box::new(FairShare), 4, 12, 12);
        for i in 0..=12 {
            for j in 0..=12 {
                assert!(table.in_grid(i, j));
                assert_eq!(bits(table.lookup(i, j)), bits(FairShare.allocate(i, j, 4)));
            }
        }
    }

    #[test]
    fn clamp_region_stays_exact_even_for_state_dependent_fractions() {
        // Water-filling keeps changing its split beyond any finite grid —
        // the clamp region must still be exact.
        let p = WeightedWaterFilling {
            elastic_weight: 2.0,
        };
        let table = CompiledTable::compile(Box::new(p), 4, 6, 6);
        for (i, j) in [(7, 3), (3, 7), (40, 40), (100, 2), (0, 99)] {
            assert!(!table.in_grid(i, j));
            assert_eq!(bits(table.lookup(i, j)), bits(p.allocate(i, j, 4)));
        }
    }

    #[test]
    fn compiled_table_reports_its_shape() {
        let table = CompiledTable::compile(Box::new(InelasticFirst), 2, 5, 3);
        assert_eq!(table.k(), 2);
        assert_eq!((table.max_i(), table.max_j()), (5, 3));
        assert_eq!(table.entries(), 6 * 4);
        assert_eq!(
            table.table_bytes(),
            24 * std::mem::size_of::<ClassAllocation>()
        );
        assert_eq!(table.name(), "Compiled[Inelastic-First]");
        assert_eq!(table.source().name(), "Inelastic-First");
    }

    #[test]
    fn identity_hash_is_grid_size_invariant_but_policy_sensitive() {
        let small = CompiledTable::compile(Box::new(FairShare), 4, 4, 4);
        let large = CompiledTable::compile(Box::new(FairShare), 4, 64, 64);
        assert_eq!(small.identity_hash(), large.identity_hash());
        let other = CompiledTable::compile(Box::new(InelasticFirst), 4, 4, 4);
        assert_ne!(small.identity_hash(), other.identity_hash());
        let other_k = CompiledTable::compile(Box::new(FairShare), 3, 4, 4);
        assert_ne!(small.identity_hash(), other_k.identity_hash());
    }

    #[test]
    fn compiled_table_is_itself_an_allocation_policy() {
        let table = CompiledTable::compile(Box::new(InelasticFirst), 4, 8, 8);
        let a = AllocationPolicy::allocate(&table, 2, 3, 4);
        assert_eq!(bits(a), bits(InelasticFirst.allocate(2, 3, 4)));
    }
}
