//! Differential testing against the discrete-event simulator.
//!
//! The server's correctness claim is *exactness*: replaying a recorded
//! trace through a single-shard engine makes the same allocation
//! decisions, in the same order, as [`eirs_sim::des::Simulation`] running
//! the raw policy. This module provides the reference side of that
//! comparison: [`RecordingPolicy`] taps every `allocate` call the
//! simulator makes, and [`des_decision_log`] packages a full drain-mode
//! DES run into a [`Decision`] sequence.

use crate::engine::Decision;
use eirs_sim::arrivals::ArrivalTrace;
use eirs_sim::des::{DesConfig, Simulation};
use eirs_sim::policy::{AllocationPolicy, ClassAllocation};
use std::sync::Mutex;

/// Wraps a policy and records every decision made through it. The
/// simulator queries its policy exactly once per event-loop step, so the
/// recorded sequence *is* the DES decision stream.
pub struct RecordingPolicy<'a> {
    inner: &'a dyn AllocationPolicy,
    log: Mutex<Vec<Decision>>,
}

impl<'a> RecordingPolicy<'a> {
    /// Starts recording decisions of `inner`.
    pub fn new(inner: &'a dyn AllocationPolicy) -> Self {
        Self {
            inner,
            log: Mutex::new(Vec::new()),
        }
    }

    /// The decisions recorded so far, in call order.
    pub fn log(&self) -> Vec<Decision> {
        self.log.lock().expect("no poisoned log").clone()
    }

    /// Consumes the recorder, returning the decision sequence.
    pub fn into_log(self) -> Vec<Decision> {
        self.log.into_inner().expect("no poisoned log")
    }
}

impl AllocationPolicy for RecordingPolicy<'_> {
    fn allocate(&self, i: usize, j: usize, k: u32) -> ClassAllocation {
        let allocation = self.inner.allocate(i, j, k);
        self.log
            .lock()
            .expect("no poisoned log")
            .push(Decision { i, j, allocation });
        allocation
    }

    fn name(&self) -> String {
        self.inner.name()
    }
}

/// The decision sequence of a drain-mode DES run of `policy` over
/// `trace` on `k` servers — the reference the engine replay tests (and
/// the `serve_throughput` bench) compare against.
pub fn des_decision_log(
    policy: &dyn AllocationPolicy,
    k: u32,
    trace: &ArrivalTrace,
) -> Vec<Decision> {
    let recorder = RecordingPolicy::new(policy);
    let mut source = trace.stream();
    Simulation::new(DesConfig::drain(k)).run(&recorder, &mut source);
    recorder.into_log()
}

#[cfg(test)]
mod tests {
    use super::*;
    use eirs_sim::arrivals::Arrival;
    use eirs_sim::job::JobClass;
    use eirs_sim::policy::InelasticFirst;

    #[test]
    fn des_decision_log_covers_every_event_step() {
        let trace = ArrivalTrace::new(vec![
            Arrival {
                time: 0.0,
                class: JobClass::Inelastic,
                size: 1.0,
            },
            Arrival {
                time: 0.5,
                class: JobClass::Elastic,
                size: 2.0,
            },
        ]);
        let log = des_decision_log(&InelasticFirst, 2, &trace);
        // First decision sees the empty system.
        assert_eq!((log[0].i, log[0].j), (0, 0));
        assert_eq!(log[0].allocation, ClassAllocation::IDLE);
        // Every subsequent decision is feasible-by-construction IF.
        assert!(
            log.len() >= 4,
            "one decision per event step, got {}",
            log.len()
        );
        assert!(log.iter().all(|d| d.allocation.total() <= 2.0 + 1e-9));
    }
}
