//! Snapshot/restore of live engine state.
//!
//! Operationally a decision server must survive restarts without
//! forgetting in-flight work: a snapshot freezes every shard's clock,
//! queues (with per-job remaining work), digest, and counters into a
//! line-oriented text format (the same discipline as the arrival-trace
//! files: floats print in Rust's shortest round-trippable form, so a
//! restored engine is **bit-identical** to the original — continuing
//! both from the same point produces the same decision digest, which the
//! `serve_layer` tests assert).
//!
//! The optional decision log ([`EngineConfig::record_decisions`]) is an
//! audit/debug surface, not state — it is not snapshotted.
//!
//! [`EngineConfig::record_decisions`]: crate::engine::EngineConfig::record_decisions

use crate::engine::{ChurnConfig, ClusterShard, EngineConfig, ServeEngine};
use crate::metrics::ShardMetrics;
use crate::table::CompiledTable;
use eirs_sim::job::{Job, JobClass};
use eirs_sim::policy::AllocationPolicy;
use std::io::{BufRead, Write};

/// One frozen job: class, remaining work, inherent size, arrival epoch,
/// and id (ids keep restored queues byte-equal to the originals).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JobSnapshot {
    /// Job id within its shard.
    pub id: u64,
    /// Job class.
    pub class: JobClass,
    /// Remaining work.
    pub remaining: f64,
    /// Inherent size (sets the completion tolerance).
    pub size: f64,
    /// Arrival epoch (for response-time accounting on completion).
    pub arrival: f64,
}

/// One frozen shard: clock, digest, counters, fault-replay position,
/// and both queues in order.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardSnapshot {
    /// Shard clock.
    pub time: f64,
    /// Running decision digest.
    pub digest: u64,
    /// Next job id.
    pub next_id: u64,
    /// Servers available at snapshot time (`k` when healthy).
    pub avail: u32,
    /// Applied-event count into the shard's fault schedule.
    pub fault_cursor: usize,
    /// Operational counters.
    pub metrics: ShardMetrics,
    /// Queued jobs: the inelastic queue front-to-back, then the elastic
    /// queue front-to-back (the class tag separates them on restore).
    pub jobs: Vec<JobSnapshot>,
}

/// A full engine snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineSnapshot {
    /// Servers per shard.
    pub k: u32,
    /// Routing partition width.
    pub route_shards: usize,
    /// Global arrival sequence counter.
    pub seq: u64,
    /// Name of the compiled table that was serving (policy identity:
    /// family plus parameters). Restore refuses a table with a different
    /// name — continuing a snapshot under another policy would silently
    /// break the bit-identical-continuation contract.
    pub policy: String,
    /// Capacity-churn identity the engine was running under (fault
    /// model, seed, horizon). Restore refuses a mismatch for the same
    /// reason it refuses a different policy.
    pub churn: Option<ChurnConfig>,
    /// Policy generation serving at snapshot time (0 = boot policy;
    /// incremented by every [`ServeEngine::install_table`] hot-swap).
    pub generation: u32,
    /// [`CompiledTable::identity_hash`] of the serving table — a
    /// grid-size-independent behavioral fingerprint. Restore refuses a
    /// table with a different hash (0 in pre-hot-swap snapshots, which
    /// skips the check and falls back to the name comparison alone).
    pub policy_hash: u64,
    /// Per-shard state, in shard order.
    pub shards: Vec<ShardSnapshot>,
}

/// Failures when parsing a snapshot.
#[derive(Debug, Clone, PartialEq)]
pub enum SnapshotError {
    /// Underlying I/O failure, with the [`std::io::ErrorKind`] preserved
    /// so callers can distinguish a missing file from a truncated or
    /// unreadable one without string-matching.
    Io {
        /// The kind of the underlying I/O failure ([`std::io::ErrorKind::UnexpectedEof`]
        /// for structurally truncated snapshots).
        kind: std::io::ErrorKind,
        /// Human-readable detail.
        message: String,
    },
    /// A malformed line: `(1-based line number, message)`.
    Line(usize, String),
    /// Structurally valid but inconsistent with the restoring engine.
    Mismatch(String),
}

impl SnapshotError {
    fn io(kind: std::io::ErrorKind, message: impl Into<String>) -> Self {
        SnapshotError::Io {
            kind,
            message: message.into(),
        }
    }
}

impl From<std::io::Error> for SnapshotError {
    fn from(e: std::io::Error) -> Self {
        SnapshotError::io(e.kind(), e.to_string())
    }
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Io { kind, message } => {
                write!(f, "snapshot I/O error ({kind}): {message}")
            }
            SnapshotError::Line(n, msg) => write!(f, "snapshot line {n}: {msg}"),
            SnapshotError::Mismatch(msg) => write!(f, "snapshot mismatch: {msg}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

impl EngineSnapshot {
    /// Serializes as text: a header, one `shard` line per shard with its
    /// scalars, a `hist` line, then one `job` line per queued job.
    pub fn to_writer(&self, w: &mut dyn Write) -> std::io::Result<()> {
        writeln!(w, "# eirs-serve-snapshot v1")?;
        writeln!(
            w,
            "k {} route_shards {} seq {}",
            self.k, self.route_shards, self.seq
        )?;
        writeln!(w, "policy {}", self.policy)?;
        writeln!(
            w,
            "generation {} policy_hash {}",
            self.generation, self.policy_hash
        )?;
        if let Some(churn) = &self.churn {
            writeln!(w, "churn {}", churn.identity())?;
        }
        for (idx, s) in self.shards.iter().enumerate() {
            let m = &s.metrics;
            writeln!(
                w,
                "shard {idx} time {} digest {} next_id {} avail {} fault_cursor {} arrivals {} \
                 arr_i {} arr_e {} \
                 completions {} decisions {} overflow {} degraded {} rejections {} preemptions {} \
                 peak_i {} peak_j {} total_response {} sim_time {}",
                s.time,
                s.digest,
                s.next_id,
                s.avail,
                s.fault_cursor,
                m.arrivals,
                m.arrivals_inelastic,
                m.arrivals_elastic,
                m.completions,
                m.decisions,
                m.overflow_lookups,
                m.degraded_decisions,
                m.rejections,
                m.preemptions,
                m.peak_inelastic,
                m.peak_elastic,
                m.total_response,
                m.sim_time,
            )?;
            let hist: Vec<String> = m.busy_histogram.iter().map(u64::to_string).collect();
            writeln!(w, "hist {}", hist.join(" "))?;
            // Response-time telemetry state, written only once populated
            // so pre-telemetry snapshots and fresh shards stay byte-for-
            // byte in the v1 shape (absent lines restore as fresh).
            if !m.response_hist.is_empty() {
                writeln!(w, "rhist {}", m.response_hist.encode())?;
            }
            if m.response_tails.count() > 0 {
                writeln!(w, "rtail {}", m.response_tails.encode())?;
            }
            for job in &s.jobs {
                let c = match job.class {
                    JobClass::Inelastic => 'I',
                    JobClass::Elastic => 'E',
                };
                writeln!(
                    w,
                    "job {} {c} {} {} {}",
                    job.id, job.remaining, job.size, job.arrival
                )?;
            }
        }
        writeln!(w, "end")
    }

    /// Parses the text format of [`EngineSnapshot::to_writer`].
    pub fn from_reader(r: &mut dyn BufRead) -> Result<Self, SnapshotError> {
        let mut header: Option<(u32, usize, u64)> = None;
        let mut policy: Option<String> = None;
        let mut churn: Option<ChurnConfig> = None;
        let mut generation = 0u32;
        let mut policy_hash = 0u64;
        let mut shards: Vec<ShardSnapshot> = Vec::new();
        let mut saw_end = false;
        for (idx, line) in r.lines().enumerate() {
            let line = line?;
            let n = idx + 1;
            let body = line.trim();
            if body.is_empty() || body.starts_with('#') {
                continue;
            }
            if saw_end {
                return Err(SnapshotError::Line(n, "content after end marker".into()));
            }
            let fields: Vec<&str> = body.split_whitespace().collect();
            let parse = |slot: usize, name: &str| -> Result<&str, SnapshotError> {
                fields
                    .get(slot)
                    .copied()
                    .ok_or_else(|| SnapshotError::Line(n, format!("missing {name} field")))
            };
            match fields[0] {
                "k" => {
                    // `k <k> route_shards <r> seq <s>`
                    let k = num(parse(1, "k")?, n, "k")?;
                    if parse(2, "route_shards")? != "route_shards" {
                        return Err(SnapshotError::Line(n, "expected route_shards".into()));
                    }
                    let route = num(parse(3, "route_shards")?, n, "route_shards")?;
                    if parse(4, "seq")? != "seq" {
                        return Err(SnapshotError::Line(n, "expected seq".into()));
                    }
                    let seq = num(parse(5, "seq")?, n, "seq")?;
                    header = Some((k as u32, route as usize, seq));
                }
                "policy" => {
                    // The rest of the line verbatim (names contain spaces).
                    let name = body["policy".len()..].trim();
                    if name.is_empty() {
                        return Err(SnapshotError::Line(n, "empty policy name".into()));
                    }
                    policy = Some(name.to_string());
                }
                "generation" => {
                    // `generation <g> policy_hash <h>` (absent in
                    // pre-hot-swap snapshots; defaults 0/0).
                    generation = num(parse(1, "generation")?, n, "generation")? as u32;
                    if parse(2, "policy_hash")? != "policy_hash" {
                        return Err(SnapshotError::Line(n, "expected policy_hash".into()));
                    }
                    policy_hash = num(parse(3, "policy_hash")?, n, "policy_hash")?;
                }
                "churn" => {
                    // The rest of the line verbatim (the identity string
                    // has internal spaces).
                    let raw = body["churn".len()..].trim();
                    churn = Some(
                        ChurnConfig::parse_identity(raw).map_err(|e| SnapshotError::Line(n, e))?,
                    );
                }
                "shard" => {
                    // Keyed `name value` pairs after the shard index.
                    let mut time = 0.0f64;
                    let mut digest = 0u64;
                    let mut next_id = 0u64;
                    // Pre-churn snapshots carry no `avail`; the sentinel
                    // is replaced by the header `k` (healthy) after the
                    // parse loop.
                    let mut avail = u32::MAX;
                    let mut fault_cursor = 0usize;
                    let mut m = ShardMetrics::new(1);
                    m.busy_histogram.clear();
                    for pair in fields[2..].chunks(2) {
                        let &[key, value] = pair else {
                            return Err(SnapshotError::Line(n, "dangling shard field".into()));
                        };
                        match key {
                            "time" => time = numf(value, n, key)?,
                            "digest" => digest = num(value, n, key)?,
                            "next_id" => next_id = num(value, n, key)?,
                            "avail" => avail = num(value, n, key)? as u32,
                            "fault_cursor" => fault_cursor = num(value, n, key)? as usize,
                            "arrivals" => m.arrivals = num(value, n, key)?,
                            "arr_i" => m.arrivals_inelastic = num(value, n, key)?,
                            "arr_e" => m.arrivals_elastic = num(value, n, key)?,
                            "completions" => m.completions = num(value, n, key)?,
                            "decisions" => m.decisions = num(value, n, key)?,
                            "overflow" => m.overflow_lookups = num(value, n, key)?,
                            "degraded" => m.degraded_decisions = num(value, n, key)?,
                            "rejections" => m.rejections = num(value, n, key)?,
                            "preemptions" => m.preemptions = num(value, n, key)?,
                            "peak_i" => m.peak_inelastic = num(value, n, key)? as usize,
                            "peak_j" => m.peak_elastic = num(value, n, key)? as usize,
                            "total_response" => m.total_response = numf(value, n, key)?,
                            "sim_time" => m.sim_time = numf(value, n, key)?,
                            other => {
                                return Err(SnapshotError::Line(
                                    n,
                                    format!("unknown shard field '{other}'"),
                                ))
                            }
                        }
                    }
                    shards.push(ShardSnapshot {
                        time,
                        digest,
                        next_id,
                        avail,
                        fault_cursor,
                        metrics: m,
                        jobs: Vec::new(),
                    });
                }
                "hist" => {
                    let shard = shards
                        .last_mut()
                        .ok_or_else(|| SnapshotError::Line(n, "hist before any shard".into()))?;
                    shard.metrics.busy_histogram = fields[1..]
                        .iter()
                        .map(|v| num(v, n, "hist"))
                        .collect::<Result<_, _>>()?;
                }
                "rhist" => {
                    let shard = shards
                        .last_mut()
                        .ok_or_else(|| SnapshotError::Line(n, "rhist before any shard".into()))?;
                    shard.metrics.response_hist =
                        eirs_obs::LatencyHistogram::decode(body["rhist".len()..].trim())
                            .map_err(|e| SnapshotError::Line(n, e))?;
                }
                "rtail" => {
                    let shard = shards
                        .last_mut()
                        .ok_or_else(|| SnapshotError::Line(n, "rtail before any shard".into()))?;
                    shard.metrics.response_tails =
                        eirs_sim::quantile::TailStats::decode(body["rtail".len()..].trim())
                            .map_err(|e| SnapshotError::Line(n, e))?;
                }
                "job" => {
                    let shard = shards
                        .last_mut()
                        .ok_or_else(|| SnapshotError::Line(n, "job before any shard".into()))?;
                    let id = num(parse(1, "id")?, n, "id")?;
                    let class = match parse(2, "class")? {
                        "I" => JobClass::Inelastic,
                        "E" => JobClass::Elastic,
                        other => {
                            return Err(SnapshotError::Line(n, format!("unknown class '{other}'")))
                        }
                    };
                    let remaining = numf(parse(3, "remaining")?, n, "remaining")?;
                    let size = numf(parse(4, "size")?, n, "size")?;
                    let arrival = numf(parse(5, "arrival")?, n, "arrival")?;
                    shard.jobs.push(JobSnapshot {
                        id,
                        class,
                        remaining,
                        size,
                        arrival,
                    });
                }
                "end" => saw_end = true,
                other => {
                    return Err(SnapshotError::Line(n, format!("unknown record '{other}'")));
                }
            }
        }
        if !saw_end {
            return Err(SnapshotError::io(
                std::io::ErrorKind::UnexpectedEof,
                "truncated snapshot (no end marker)",
            ));
        }
        let (k, route_shards, seq) = header.ok_or_else(|| {
            SnapshotError::io(std::io::ErrorKind::InvalidData, "snapshot has no header")
        })?;
        let policy = policy.ok_or_else(|| {
            SnapshotError::io(std::io::ErrorKind::InvalidData, "snapshot has no policy")
        })?;
        if shards.len() != route_shards {
            return Err(SnapshotError::Mismatch(format!(
                "header promises {route_shards} shards, found {}",
                shards.len()
            )));
        }
        for s in &mut shards {
            if s.avail == u32::MAX {
                s.avail = k;
            }
        }
        Ok(Self {
            k,
            route_shards,
            seq,
            policy,
            churn,
            generation,
            policy_hash,
            shards,
        })
    }

    /// Writes the snapshot to `path`.
    pub fn save(&self, path: &std::path::Path) -> std::io::Result<()> {
        let mut file = std::io::BufWriter::new(std::fs::File::create(path)?);
        self.to_writer(&mut file)
    }

    /// Loads a snapshot written by [`EngineSnapshot::save`].
    pub fn load(path: &std::path::Path) -> Result<Self, SnapshotError> {
        let file = std::fs::File::open(path)?;
        Self::from_reader(&mut std::io::BufReader::new(file))
    }
}

fn num(raw: &str, line: usize, name: &str) -> Result<u64, SnapshotError> {
    raw.parse()
        .map_err(|_| SnapshotError::Line(line, format!("unparsable {name} '{raw}'")))
}

fn numf(raw: &str, line: usize, name: &str) -> Result<f64, SnapshotError> {
    raw.parse()
        .map_err(|_| SnapshotError::Line(line, format!("unparsable {name} '{raw}'")))
}

impl ServeEngine {
    /// Freezes the engine's full state (see the [module docs](self)).
    pub fn snapshot(&self) -> EngineSnapshot {
        let shards = self
            .shards
            .iter()
            .map(|s| {
                let jobs = s
                    .inelastic
                    .iter()
                    .chain(s.elastic.iter())
                    .map(|job| JobSnapshot {
                        id: job.id,
                        class: job.class,
                        remaining: job.remaining,
                        size: job.size,
                        arrival: job.arrival,
                    })
                    .collect();
                ShardSnapshot {
                    time: s.time,
                    digest: s.digest,
                    next_id: s.next_id,
                    avail: s.avail,
                    fault_cursor: s.fault_cursor,
                    metrics: s.metrics.clone(),
                    jobs,
                }
            })
            .collect();
        EngineSnapshot {
            k: self.config.k,
            route_shards: self.config.route_shards,
            seq: self.seq,
            policy: self.table.name(),
            churn: self.config.churn,
            generation: self.generation,
            policy_hash: self.table.identity_hash(),
            shards,
        }
    }

    /// Rebuilds an engine from a snapshot. The table and config must
    /// match the snapshot's `k` and `route_shards`; worker count, batch
    /// size, and decision recording are free to differ (they are
    /// processing knobs, not state).
    pub fn from_snapshot(
        table: CompiledTable,
        config: EngineConfig,
        snap: &EngineSnapshot,
    ) -> Result<Self, SnapshotError> {
        if table.k() != snap.k || config.k != snap.k {
            return Err(SnapshotError::Mismatch(format!(
                "snapshot is for k={}, table k={}, config k={}",
                snap.k,
                table.k(),
                config.k
            )));
        }
        if table.name() != snap.policy {
            return Err(SnapshotError::Mismatch(format!(
                "snapshot was serving '{}', restoring table is '{}' — continuing under a \
                 different policy would break the bit-identical continuation",
                snap.policy,
                table.name()
            )));
        }
        if snap.policy_hash != 0 && table.identity_hash() != snap.policy_hash {
            return Err(SnapshotError::Mismatch(format!(
                "snapshot pins policy identity hash {:#018x}, restoring table hashes to \
                 {:#018x} — same name, different decision behavior",
                snap.policy_hash,
                table.identity_hash()
            )));
        }
        if config.route_shards != snap.route_shards {
            return Err(SnapshotError::Mismatch(format!(
                "snapshot has {} route shards, config {}",
                snap.route_shards, config.route_shards
            )));
        }
        let identity = |c: &Option<ChurnConfig>| match c {
            Some(c) => c.identity(),
            None => "none".to_string(),
        };
        if config.churn != snap.churn {
            return Err(SnapshotError::Mismatch(format!(
                "snapshot was taken under churn '{}', restoring config has '{}' — the fault \
                 schedule is part of the serving identity",
                identity(&snap.churn),
                identity(&config.churn)
            )));
        }
        let mut engine = ServeEngine::new(table, config);
        engine.seq = snap.seq;
        engine.generation = snap.generation;
        for (shard, frozen) in engine.shards.iter_mut().zip(&snap.shards) {
            restore_shard(shard, frozen, snap.k)?;
        }
        Ok(engine)
    }
}

fn restore_shard(
    shard: &mut ClusterShard,
    frozen: &ShardSnapshot,
    k: u32,
) -> Result<(), SnapshotError> {
    if frozen.metrics.busy_histogram.len() != k as usize + 1 {
        return Err(SnapshotError::Mismatch(format!(
            "histogram has {} buckets, expected {}",
            frozen.metrics.busy_histogram.len(),
            k + 1
        )));
    }
    if frozen.avail > k {
        return Err(SnapshotError::Mismatch(format!(
            "shard claims {} available servers of {k}",
            frozen.avail
        )));
    }
    if frozen.fault_cursor > shard.faults.len() {
        return Err(SnapshotError::Mismatch(format!(
            "fault cursor {} beyond the {}-event schedule",
            frozen.fault_cursor,
            shard.faults.len()
        )));
    }
    shard.time = frozen.time;
    shard.digest = frozen.digest;
    shard.next_id = frozen.next_id;
    shard.avail = frozen.avail;
    shard.fault_cursor = frozen.fault_cursor;
    shard.metrics = frozen.metrics.clone();
    shard.inelastic.clear();
    shard.elastic.clear();
    for js in &frozen.jobs {
        let mut job = Job::new(js.id, js.class, js.size, js.arrival);
        job.remaining = js.remaining;
        match js.class {
            JobClass::Inelastic => shard.inelastic.push_back(job),
            JobClass::Elastic => shard.elastic.push_back(job),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use eirs_queueing::Exponential;
    use eirs_sim::arrivals::ArrivalTrace;
    use eirs_sim::policy::FairShare;

    fn running_engine() -> (ServeEngine, ArrivalTrace) {
        let trace = ArrivalTrace::record_poisson(
            0.8,
            0.5,
            Box::new(Exponential::new(1.0)),
            Box::new(Exponential::new(1.0)),
            5,
            120.0,
        );
        let table = CompiledTable::compile(Box::new(FairShare), 2, 16, 16);
        let config = EngineConfig::new(2).route_shards(3).batch(8);
        let mut engine = ServeEngine::new(table, config);
        // Ingest the first half of the trace so queues are mid-flight.
        let half = trace.len() / 2;
        engine.ingest_batch(&trace.arrivals()[..half]);
        (engine, trace)
    }

    #[test]
    fn snapshot_round_trips_through_the_text_format() {
        let (engine, _) = running_engine();
        let snap = engine.snapshot();
        let mut buf = Vec::new();
        snap.to_writer(&mut buf).unwrap();
        let parsed = EngineSnapshot::from_reader(&mut std::io::Cursor::new(buf)).unwrap();
        assert_eq!(parsed, snap, "text round trip must be lossless");
    }

    #[test]
    fn restored_engine_continues_bit_identically() {
        let (mut original, trace) = running_engine();
        let snap = original.snapshot();
        let table = CompiledTable::compile(Box::new(FairShare), 2, 16, 16);
        let config = *original.config();
        let mut restored = ServeEngine::from_snapshot(table, config, &snap).unwrap();
        assert_eq!(restored.decision_digest(), original.decision_digest());
        // Continue both engines on the second half; they must agree on
        // everything observable.
        let half = trace.len() / 2;
        let rest = &trace.arrivals()[half..];
        original.ingest_batch(rest);
        original.drain();
        restored.ingest_batch(rest);
        restored.drain();
        assert_eq!(restored.decision_digest(), original.decision_digest());
        assert_eq!(restored.metrics_total(), original.metrics_total());
        assert_eq!(restored.ingested(), original.ingested());
    }

    #[test]
    fn restore_rejects_mismatched_shape() {
        let (engine, _) = running_engine();
        let snap = engine.snapshot();
        let wrong_k = CompiledTable::compile(Box::new(FairShare), 3, 8, 8);
        assert!(matches!(
            ServeEngine::from_snapshot(wrong_k, EngineConfig::new(3).route_shards(3), &snap),
            Err(SnapshotError::Mismatch(_))
        ));
        let table = CompiledTable::compile(Box::new(FairShare), 2, 8, 8);
        assert!(matches!(
            ServeEngine::from_snapshot(table, EngineConfig::new(2).route_shards(5), &snap),
            Err(SnapshotError::Mismatch(_))
        ));
    }

    #[test]
    fn restore_rejects_a_different_policy() {
        use eirs_sim::policy::InelasticFirst;
        let (engine, _) = running_engine();
        let snap = engine.snapshot();
        assert_eq!(snap.policy, "Compiled[Fair-Share]");
        // Same k and shape, different policy: silently continuing would
        // diverge from the snapshotting engine, so restore must refuse.
        let other = CompiledTable::compile(Box::new(InelasticFirst), 2, 16, 16);
        let err = ServeEngine::from_snapshot(other, *engine.config(), &snap)
            .err()
            .expect("different policy must be rejected");
        assert!(
            matches!(&err, SnapshotError::Mismatch(m) if m.contains("Fair-Share")),
            "{err:?}"
        );
    }

    #[test]
    fn fault_state_round_trips_and_guards_the_churn_identity() {
        use eirs_sim::availability::FaultSpec;
        let churn = crate::engine::ChurnConfig {
            spec: FaultSpec::parse("crash:mtbf=40,mttr=8").unwrap(),
            seed: 7,
            horizon: 300.0,
        };
        let trace = ArrivalTrace::record_poisson(
            0.8,
            0.5,
            Box::new(Exponential::new(1.0)),
            Box::new(Exponential::new(1.0)),
            5,
            120.0,
        );
        let table = CompiledTable::compile(Box::new(FairShare), 2, 16, 16);
        let config = EngineConfig::new(2).route_shards(3).churn(churn);
        let mut engine = ServeEngine::new(table, config);
        engine.ingest_batch(trace.arrivals());
        let snap = engine.snapshot();
        assert_eq!(snap.churn, Some(churn));
        assert!(
            snap.shards.iter().any(|s| s.fault_cursor > 0),
            "a 120-epoch run under mtbf=40 churn should have applied fault events"
        );
        // Text round trip preserves the fault-replay position exactly.
        let mut buf = Vec::new();
        snap.to_writer(&mut buf).unwrap();
        let parsed = EngineSnapshot::from_reader(&mut std::io::Cursor::new(buf)).unwrap();
        assert_eq!(parsed, snap);
        // Restoring without the churn config (or, symmetrically, with a
        // different one) must refuse: the fault schedule is identity.
        let table = CompiledTable::compile(Box::new(FairShare), 2, 16, 16);
        let err = ServeEngine::from_snapshot(table, EngineConfig::new(2).route_shards(3), &snap)
            .err()
            .expect("churn mismatch must be rejected");
        assert!(
            matches!(&err, SnapshotError::Mismatch(m) if m.contains("churn")),
            "{err:?}"
        );
        // With the matching churn the restore continues bit-identically.
        let table = CompiledTable::compile(Box::new(FairShare), 2, 16, 16);
        let mut restored = ServeEngine::from_snapshot(table, config, &snap).unwrap();
        engine.drain();
        restored.drain();
        assert_eq!(restored.decision_digest(), engine.decision_digest());
        assert_eq!(restored.metrics_total(), engine.metrics_total());
    }

    #[test]
    fn response_telemetry_state_round_trips_and_is_optional() {
        let (mut engine, _) = running_engine();
        engine.drain();
        let snap = engine.snapshot();
        let populated = snap
            .shards
            .iter()
            .any(|s| s.metrics.response_tails.count() > 0);
        assert!(populated, "drained engine must have recorded responses");
        let mut buf = Vec::new();
        snap.to_writer(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("\nrhist ") && text.contains("\nrtail "));
        let parsed = EngineSnapshot::from_reader(&mut std::io::Cursor::new(text.clone())).unwrap();
        assert_eq!(parsed, snap);
        // A pre-telemetry snapshot (no rhist/rtail lines) still parses;
        // the sketches restore fresh.
        let stripped: String = text
            .lines()
            .filter(|l| !l.starts_with("rhist") && !l.starts_with("rtail"))
            .map(|l| format!("{l}\n"))
            .collect();
        let old = EngineSnapshot::from_reader(&mut std::io::Cursor::new(stripped)).unwrap();
        assert!(old.shards.iter().all(|s| {
            s.metrics.response_tails.count() == 0 && s.metrics.response_hist.is_empty()
        }));
        // But a corrupted telemetry line is an error, not a silent skip.
        let bad = text.replacen("rtail ", "rtail x", 1);
        assert!(matches!(
            EngineSnapshot::from_reader(&mut std::io::Cursor::new(bad)),
            Err(SnapshotError::Line(..))
        ));
    }

    #[test]
    fn generation_and_policy_hash_round_trip_and_guard_restore() {
        use eirs_sim::policy::{AllocationPolicy, ClassAllocation};
        let (mut engine, _) = running_engine();
        // Hot-swap: the snapshot must pin the new generation and the
        // swapped table's identity hash.
        engine.install_table(CompiledTable::compile(Box::new(FairShare), 2, 8, 8), "fs");
        let snap = engine.snapshot();
        assert_eq!(snap.generation, 1);
        assert_eq!(snap.policy_hash, engine.table().identity_hash());
        let mut buf = Vec::new();
        snap.to_writer(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("\ngeneration 1 policy_hash "));
        let parsed = EngineSnapshot::from_reader(&mut std::io::Cursor::new(text.clone())).unwrap();
        assert_eq!(parsed, snap);
        let table = CompiledTable::compile(Box::new(FairShare), 2, 16, 16);
        let restored = ServeEngine::from_snapshot(table, *engine.config(), &snap).unwrap();
        assert_eq!(restored.generation(), 1);
        // A policy with the same *name* but different decision behavior
        // is refused by the hash even though the name check passes.
        struct Impostor;
        impl AllocationPolicy for Impostor {
            fn allocate(&self, _: usize, _: usize, _: u32) -> ClassAllocation {
                ClassAllocation::IDLE
            }
            fn name(&self) -> String {
                "Fair-Share".into()
            }
        }
        let fake = CompiledTable::compile(Box::new(Impostor), 2, 16, 16);
        let err = ServeEngine::from_snapshot(fake, *engine.config(), &snap)
            .err()
            .expect("impostor policy must be rejected");
        assert!(
            matches!(&err, SnapshotError::Mismatch(m) if m.contains("identity hash")),
            "{err:?}"
        );
        // Pre-hot-swap snapshots (no generation line) parse with the
        // defaults and restore without the hash check.
        let stripped: String = text
            .lines()
            .filter(|l| !l.starts_with("generation"))
            .map(|l| format!("{l}\n"))
            .collect();
        let old = EngineSnapshot::from_reader(&mut std::io::Cursor::new(stripped)).unwrap();
        assert_eq!((old.generation, old.policy_hash), (0, 0));
        let table = CompiledTable::compile(Box::new(FairShare), 2, 16, 16);
        assert!(ServeEngine::from_snapshot(table, *engine.config(), &old).is_ok());
    }

    #[test]
    fn truncated_files_surface_as_unexpected_eof() {
        let (engine, _) = running_engine();
        let mut buf = Vec::new();
        engine.snapshot().to_writer(&mut buf).unwrap();
        // Chop the file anywhere before the end marker: structurally
        // truncated, reported as UnexpectedEof (satellite: the error kind
        // survives, callers need not string-match).
        for cut in [buf.len() / 3, buf.len() / 2, buf.len() - 5] {
            let err = EngineSnapshot::from_reader(&mut std::io::Cursor::new(&buf[..cut]))
                .expect_err("truncated snapshot must fail");
            match err {
                SnapshotError::Io { kind, .. } => {
                    assert_eq!(kind, std::io::ErrorKind::UnexpectedEof)
                }
                // A cut mid-line can also leave a half token behind.
                SnapshotError::Line(..) => {}
                other => panic!("unexpected error {other:?}"),
            }
        }
    }

    #[test]
    fn corrupted_fields_report_the_offending_line() {
        let (engine, _) = running_engine();
        let mut buf = Vec::new();
        engine.snapshot().to_writer(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        // Garble one numeric field in the first shard line.
        let corrupted = text.replacen("digest ", "digest x", 1);
        let err = EngineSnapshot::from_reader(&mut std::io::Cursor::new(corrupted))
            .expect_err("corrupted snapshot must fail");
        assert!(
            matches!(&err, SnapshotError::Line(_, m) if m.contains("digest")),
            "{err:?}"
        );
        // A bogus churn identity is rejected with its line, not ignored.
        let with_churn = text.replacen("policy", "churn spec=bogus seed=1 horizon=1\npolicy", 1);
        let err = EngineSnapshot::from_reader(&mut std::io::Cursor::new(with_churn))
            .expect_err("bogus churn identity must fail");
        assert!(matches!(err, SnapshotError::Line(..)), "{err:?}");
    }

    #[test]
    fn parser_rejects_malformed_snapshots() {
        for bad in [
            "",                                        // no header, no end
            "k 2 route_shards 1 seq 0\n",              // truncated (no end)
            "k 2 route_shards 2 seq 0\nend\n",         // shard count mismatch
            "hist 1 2\nend\n",                         // hist before shard
            "job 0 I 1 1 0\nend\n",                    // job before shard
            "k 2 route_shards 0 seq 0\nwhat 3\nend\n", // unknown record
        ] {
            assert!(
                EngineSnapshot::from_reader(&mut std::io::Cursor::new(bad)).is_err(),
                "snapshot {bad:?} should fail"
            );
        }
    }
}
