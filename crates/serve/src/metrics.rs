//! Per-shard operational metrics: the ops surface of the serving engine.
//!
//! Every [`ClusterShard`](crate::engine::ServeEngine) keeps running
//! counters as it ingests events; nothing here samples or averages over
//! wall time — rates like decisions/sec are a driver concern (divide by
//! the wall clock around the run), so the counters stay exact and the
//! engine stays deterministic.

use eirs_obs::LatencyHistogram;
use eirs_sim::policy::ClassAllocation;
use eirs_sim::quantile::TailStats;

/// Running counters for one cluster shard.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardMetrics {
    /// Jobs routed to this shard.
    pub arrivals: u64,
    /// Inelastic share of `arrivals` (shed arrivals included). The
    /// per-class split is what re-optimization needs to estimate the
    /// observed `(λ_I, λ_E)` from a live engine.
    pub arrivals_inelastic: u64,
    /// Elastic share of `arrivals` (shed arrivals included).
    pub arrivals_elastic: u64,
    /// Jobs completed by this shard.
    pub completions: u64,
    /// Allocation decisions made (one per event-loop step).
    pub decisions: u64,
    /// Decisions that fell outside the compiled grid (clamp-region
    /// delegations to the source policy). Overflow is exact but slow;
    /// a nonzero rate means the table grid is undersized for the load.
    pub overflow_lookups: u64,
    /// Decisions made while the shard was below full capacity
    /// (capacity-capped source-policy calls or zero-capacity idles).
    pub degraded_decisions: u64,
    /// Arrivals rejected by degraded-mode admission shedding. Rejected
    /// arrivals still count in `arrivals`, so
    /// `admitted = arrivals - rejections` and after a drain
    /// `completions + rejections = arrivals`.
    pub rejections: u64,
    /// Inelastic jobs preempt-restarted by capacity-loss events.
    pub preemptions: u64,
    /// Deepest inelastic queue observed.
    pub peak_inelastic: usize,
    /// Deepest elastic queue observed.
    pub peak_elastic: usize,
    /// Decision histogram over rounded busy-server counts: bucket `b`
    /// counts decisions whose total allocation rounded to `b` servers
    /// (`k + 1` buckets).
    pub busy_histogram: Vec<u64>,
    /// Sum of response times over completed jobs (mean response =
    /// `total_response / completions`).
    pub total_response: f64,
    /// Streaming P50/P95/P99 of per-job response time (simulated time,
    /// so fully deterministic). P² sketches are order-dependent and
    /// cannot be merged across shards — per-shard tails read this,
    /// merged tails read [`response_hist`](Self::response_hist).
    pub response_tails: TailStats,
    /// Log-linear response-time histogram (seconds of simulated time).
    /// Unlike the P² sketch this merges exactly across shards, so
    /// cluster-wide quantiles (including P99.9) come from here.
    pub response_hist: LatencyHistogram,
    /// The shard's simulated clock.
    pub sim_time: f64,
}

impl ShardMetrics {
    /// Fresh counters for a `k`-server shard.
    pub fn new(k: u32) -> Self {
        Self {
            arrivals: 0,
            arrivals_inelastic: 0,
            arrivals_elastic: 0,
            completions: 0,
            decisions: 0,
            overflow_lookups: 0,
            degraded_decisions: 0,
            rejections: 0,
            preemptions: 0,
            peak_inelastic: 0,
            peak_elastic: 0,
            busy_histogram: vec![0; k as usize + 1],
            total_response: 0.0,
            response_tails: TailStats::new(),
            response_hist: LatencyHistogram::new(),
            sim_time: 0.0,
        }
    }

    /// Records one job completion with response time `rt` (simulated
    /// seconds), feeding the mean, the P² tail sketch, and the mergeable
    /// histogram together so the three can never drift apart.
    pub(crate) fn record_response(&mut self, rt: f64) {
        self.completions += 1;
        self.total_response += rt;
        self.response_tails.push(rt);
        self.response_hist.record_seconds(rt);
    }

    /// Records one decision at occupancy `(i, j)`.
    pub(crate) fn record_decision(
        &mut self,
        i: usize,
        j: usize,
        a: ClassAllocation,
        in_grid: bool,
    ) {
        self.decisions += 1;
        if !in_grid {
            self.overflow_lookups += 1;
        }
        self.peak_inelastic = self.peak_inelastic.max(i);
        self.peak_elastic = self.peak_elastic.max(j);
        let bucket = (a.total().round() as usize).min(self.busy_histogram.len() - 1);
        self.busy_histogram[bucket] += 1;
    }

    /// Mean response time of completed jobs (`NaN` before any complete).
    pub fn mean_response(&self) -> f64 {
        self.total_response / self.completions as f64
    }

    /// Total events ingested or produced (arrivals + completions).
    pub fn events(&self) -> u64 {
        self.arrivals + self.completions
    }

    /// Arrivals actually admitted (arrivals minus shed rejections).
    pub fn admitted(&self) -> u64 {
        self.arrivals - self.rejections
    }

    /// Per-shard response-time quantile estimates `(P50, P95, P99)` in
    /// simulated seconds (`NaN` before any completion). These come from
    /// the P² sketch and survive [`merge`](Self::merge) only on the
    /// receiving side; use [`response_hist`](Self::response_hist) for
    /// cluster-merged quantiles.
    pub fn response_quantiles(&self) -> (f64, f64, f64) {
        self.response_tails.estimates()
    }

    /// Folds `other` into `self` (histogram buckets must agree — all
    /// shards of one engine share `k`). Peaks take the max, `sim_time`
    /// the furthest shard clock, counters add. Panicking wrapper over
    /// [`try_merge`](Self::try_merge).
    pub fn merge(&mut self, other: &ShardMetrics) {
        self.try_merge(other)
            .expect("merging metrics of different k");
    }

    /// Fallible [`merge`](Self::merge): rejects metrics whose busy
    /// histograms were sized for a different server count `k` instead of
    /// silently truncating the fold, leaving `self` untouched on error.
    ///
    /// The P² tail sketches are deliberately *not* folded (their update
    /// is order-dependent, so a merged sketch would depend on merge
    /// order); `self.response_tails` keeps whatever it had, and merged
    /// quantiles should be read from the exactly-mergeable
    /// [`response_hist`](Self::response_hist).
    pub fn try_merge(&mut self, other: &ShardMetrics) -> Result<(), String> {
        if self.busy_histogram.len() != other.busy_histogram.len() {
            return Err(format!(
                "cannot merge shard metrics for k = {} into metrics for k = {}",
                other.busy_histogram.len() - 1,
                self.busy_histogram.len() - 1,
            ));
        }
        self.arrivals += other.arrivals;
        self.arrivals_inelastic += other.arrivals_inelastic;
        self.arrivals_elastic += other.arrivals_elastic;
        self.completions += other.completions;
        self.decisions += other.decisions;
        self.overflow_lookups += other.overflow_lookups;
        self.degraded_decisions += other.degraded_decisions;
        self.rejections += other.rejections;
        self.preemptions += other.preemptions;
        self.peak_inelastic = self.peak_inelastic.max(other.peak_inelastic);
        self.peak_elastic = self.peak_elastic.max(other.peak_elastic);
        for (mine, theirs) in self.busy_histogram.iter_mut().zip(&other.busy_histogram) {
            *mine += theirs;
        }
        self.total_response += other.total_response;
        self.response_hist.merge(&other.response_hist);
        self.sim_time = self.sim_time.max(other.sim_time);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decision_recording_tracks_peaks_overflow_and_histogram() {
        let mut m = ShardMetrics::new(4);
        let a = ClassAllocation {
            inelastic: 2.0,
            elastic: 1.6,
        };
        m.record_decision(3, 1, a, true);
        m.record_decision(5, 2, ClassAllocation::IDLE, false);
        assert_eq!(m.decisions, 2);
        assert_eq!(m.overflow_lookups, 1);
        assert_eq!((m.peak_inelastic, m.peak_elastic), (5, 2));
        // 3.6 rounds to bucket 4; idle lands in bucket 0.
        assert_eq!(m.busy_histogram, vec![1, 0, 0, 0, 1]);
    }

    #[test]
    fn merge_adds_counters_and_maxes_peaks() {
        let mut a = ShardMetrics::new(2);
        a.arrivals = 3;
        a.arrivals_inelastic = 2;
        a.arrivals_elastic = 1;
        a.completions = 2;
        a.total_response = 1.5;
        a.peak_elastic = 4;
        a.sim_time = 10.0;
        let mut b = ShardMetrics::new(2);
        b.arrivals = 1;
        b.arrivals_inelastic = 0;
        b.arrivals_elastic = 1;
        b.completions = 1;
        b.total_response = 0.5;
        b.peak_inelastic = 7;
        b.sim_time = 8.0;
        b.rejections = 1;
        b.degraded_decisions = 3;
        b.preemptions = 2;
        a.merge(&b);
        assert_eq!(a.arrivals, 4);
        assert_eq!((a.arrivals_inelastic, a.arrivals_elastic), (2, 2));
        assert_eq!(a.completions, 3);
        assert_eq!(a.events(), 7);
        assert_eq!(a.rejections, 1);
        assert_eq!(a.admitted(), 3);
        assert_eq!(a.degraded_decisions, 3);
        assert_eq!(a.preemptions, 2);
        assert!((a.mean_response() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!((a.peak_inelastic, a.peak_elastic), (7, 4));
        assert_eq!(a.sim_time, 10.0);
    }

    #[test]
    fn record_response_feeds_mean_tails_and_histogram_together() {
        let mut m = ShardMetrics::new(2);
        for i in 1..=100 {
            m.record_response(i as f64 * 0.01);
        }
        assert_eq!(m.completions, 100);
        assert!((m.mean_response() - 0.505).abs() < 1e-12);
        assert_eq!(m.response_tails.count(), 100);
        assert_eq!(m.response_hist.count(), 100);
        let (p50, p95, p99) = m.response_quantiles();
        assert!((p50 - 0.5).abs() < 0.05, "p50 = {p50}");
        assert!(p95 > p50 && p99 >= p95, "({p50}, {p95}, {p99})");
        // Histogram quantiles agree with the sketch to bucket precision.
        let h50 = m.response_hist.quantile_seconds(0.5);
        assert!((h50 - p50).abs() / p50 < 0.06, "{h50} vs {p50}");
    }

    #[test]
    fn try_merge_rejects_mismatched_k_without_mutating() {
        let mut a = ShardMetrics::new(2);
        a.arrivals = 5;
        let before = a.clone();
        let b = ShardMetrics::new(3);
        let err = a.try_merge(&b).expect_err("k mismatch must be rejected");
        assert!(err.contains("k = 3") && err.contains("k = 2"), "{err}");
        assert_eq!(a, before, "failed merge must leave self untouched");
    }

    #[test]
    #[should_panic(expected = "merging metrics of different k")]
    fn merge_panics_on_mismatched_k() {
        let mut a = ShardMetrics::new(2);
        a.merge(&ShardMetrics::new(3));
    }

    #[test]
    fn merge_folds_histograms_but_not_sketches() {
        let mut a = ShardMetrics::new(2);
        let mut b = ShardMetrics::new(2);
        for i in 0..50 {
            a.record_response(0.1 + i as f64 * 0.001);
            b.record_response(0.5 + i as f64 * 0.001);
        }
        let a_tail_count = a.response_tails.count();
        a.merge(&b);
        assert_eq!(a.completions, 100);
        assert_eq!(a.response_hist.count(), 100);
        // The order-dependent sketch keeps the receiver's state only.
        assert_eq!(a.response_tails.count(), a_tail_count);
    }
}
