//! Write-ahead decision journaling: crash recovery with bit-identical
//! replay.
//!
//! A snapshot freezes engine state at one instant; the journal covers the
//! gap between the last snapshot and a crash. The discipline is
//! write-ahead: every arrival batch is appended to the journal **and
//! flushed** before the engine ingests it, so after an abrupt kill the
//! journal always holds at least everything the engine has seen. Recovery
//! composes the two — restore the snapshot, then replay the journal's
//! suffix from the snapshot's sequence number — and, because the engine
//! is deterministic and batching does not affect semantics, the recovered
//! engine continues **bit-identically**: draining it yields the same
//! shard-ordered decision digest as the run that never crashed. The
//! `fault_tolerance` tests and the CI chaos gate assert exactly that,
//! including under capacity churn.
//!
//! The format follows the trace/snapshot discipline: line-oriented text,
//! `#` comments, floats in Rust's shortest round-trippable form. A header
//! records the serving identity (policy, shape, churn); each entry is one
//! arrival with its global sequence number:
//!
//! ```text
//! # eirs-serve-journal v1
//! k 2 route_shards 4
//! policy Compiled[Fair-Share]
//! churn spec=crash:mtbf=50,mttr=5 seed=7 horizon=200
//! a 0 0.3517 I 1.25
//! a 1 0.9102 E 0.75
//! ```
//!
//! There is no end marker: a journal is valid at every prefix of whole
//! lines, because a crash can happen at any time (a torn final line is
//! reported with its line number, and [`Journal::load_prefix`] recovers
//! the longest whole-line prefix).

use crate::engine::{ChurnConfig, EngineConfig, ServeEngine};
use crate::snapshot::{EngineSnapshot, SnapshotError};
use crate::table::CompiledTable;
use eirs_sim::arrivals::{Arrival, ArrivalSource};
use eirs_sim::job::JobClass;
use eirs_sim::policy::AllocationPolicy;
use std::io::{BufRead, Write};

/// One journaled arrival: the global routing sequence number it was
/// ingested as, plus the arrival itself.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JournalEntry {
    /// Global arrival sequence number (the engine's `seq` at ingest).
    pub seq: u64,
    /// The arrival.
    pub arrival: Arrival,
}

/// Failures when parsing or validating a journal.
#[derive(Debug, Clone, PartialEq)]
pub enum JournalError {
    /// Underlying I/O failure with its [`std::io::ErrorKind`] preserved.
    Io {
        /// The kind of the underlying failure.
        kind: std::io::ErrorKind,
        /// Human-readable detail.
        message: String,
    },
    /// A malformed line: `(1-based line number, message)`.
    Line(usize, String),
    /// Structurally valid but inconsistent with the recovering engine
    /// (wrong policy, shape, churn identity, or a sequence gap).
    Mismatch(String),
}

impl std::fmt::Display for JournalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JournalError::Io { kind, message } => {
                write!(f, "journal I/O error ({kind}): {message}")
            }
            JournalError::Line(n, msg) => write!(f, "journal line {n}: {msg}"),
            JournalError::Mismatch(msg) => write!(f, "journal mismatch: {msg}"),
        }
    }
}

impl std::error::Error for JournalError {}

impl From<std::io::Error> for JournalError {
    fn from(e: std::io::Error) -> Self {
        JournalError::Io {
            kind: e.kind(),
            message: e.to_string(),
        }
    }
}

impl From<SnapshotError> for JournalError {
    fn from(e: SnapshotError) -> Self {
        match e {
            SnapshotError::Io { kind, message } => JournalError::Io { kind, message },
            SnapshotError::Line(n, m) => JournalError::Line(n, format!("snapshot: {m}")),
            SnapshotError::Mismatch(m) => JournalError::Mismatch(m),
        }
    }
}

/// Appends journal lines ahead of ingestion (see the [module
/// docs](self) for the write-ahead contract).
#[derive(Debug)]
pub struct JournalWriter<W: Write> {
    w: W,
}

impl<W: Write> JournalWriter<W> {
    /// Starts a journal for `engine`, writing the identity header.
    pub fn create(mut w: W, engine: &ServeEngine) -> std::io::Result<Self> {
        writeln!(w, "# eirs-serve-journal v1")?;
        let c = engine.config();
        writeln!(w, "k {} route_shards {}", c.k, c.route_shards)?;
        writeln!(w, "policy {}", engine.table().name())?;
        if let Some(churn) = &c.churn {
            writeln!(w, "churn {}", churn.identity())?;
        }
        w.flush()?;
        Ok(Self { w })
    }

    /// Appends one batch starting at global sequence `start_seq` and
    /// flushes. Must be called **before** the batch is ingested — the
    /// flush is what makes the journal a write-ahead log.
    pub fn append_batch(&mut self, start_seq: u64, batch: &[Arrival]) -> std::io::Result<()> {
        for (offset, a) in batch.iter().enumerate() {
            let c = match a.class {
                JobClass::Inelastic => 'I',
                JobClass::Elastic => 'E',
            };
            writeln!(
                self.w,
                "a {} {} {c} {}",
                start_seq + offset as u64,
                a.time,
                a.size
            )?;
        }
        self.w.flush()
    }

    /// Unwraps the underlying writer (flushing first).
    pub fn into_inner(mut self) -> std::io::Result<W> {
        self.w.flush()?;
        Ok(self.w)
    }
}

/// A parsed journal: the identity header plus every entry in order.
#[derive(Debug, Clone, PartialEq)]
pub struct Journal {
    /// Servers per shard the journaled engine was configured for.
    pub k: u32,
    /// Routing partition width.
    pub route_shards: usize,
    /// Compiled-table name the engine was serving.
    pub policy: String,
    /// Churn identity, if the engine ran under capacity faults.
    pub churn: Option<ChurnConfig>,
    /// Journaled arrivals, in ingestion order with contiguous sequence
    /// numbers.
    pub entries: Vec<JournalEntry>,
}

impl Journal {
    /// Parses the text format of [`JournalWriter`]. Strict: a torn final
    /// line (the normal crash artifact) is an error here — use
    /// [`Journal::load_prefix`] to recover through it.
    pub fn from_reader(r: &mut dyn BufRead) -> Result<Self, JournalError> {
        let mut parsed = Self::parse_lines(r)?;
        if let Some((n, msg)) = parsed.torn.take() {
            return Err(JournalError::Line(n, msg));
        }
        parsed.finish()
    }

    /// Parses a journal, silently dropping a torn **final** line — the
    /// artifact of a crash mid-write. Malformed lines anywhere else are
    /// still errors.
    pub fn load_prefix(r: &mut dyn BufRead) -> Result<Self, JournalError> {
        Self::parse_lines(r)?.finish()
    }

    /// Loads a journal file written by [`JournalWriter`], strictly.
    pub fn load(path: &std::path::Path) -> Result<Self, JournalError> {
        let file = std::fs::File::open(path)?;
        Self::from_reader(&mut std::io::BufReader::new(file))
    }

    fn parse_lines(r: &mut dyn BufRead) -> Result<ParsedJournal, JournalError> {
        let mut header: Option<(u32, usize)> = None;
        let mut policy: Option<String> = None;
        let mut churn: Option<ChurnConfig> = None;
        let mut entries: Vec<JournalEntry> = Vec::new();
        let mut torn: Option<(usize, String)> = None;
        for (idx, line) in r.lines().enumerate() {
            let line = line?;
            let n = idx + 1;
            if let Some(t) = torn.take() {
                // The malformed line was not the last one — a real error,
                // not a crash artifact.
                return Err(JournalError::Line(t.0, t.1));
            }
            let body = line.trim();
            if body.is_empty() || body.starts_with('#') {
                continue;
            }
            let fields: Vec<&str> = body.split_whitespace().collect();
            let result = match fields[0] {
                "k" => parse_header(&fields).map(|h| header = Some(h)),
                "policy" => {
                    let name = body["policy".len()..].trim();
                    if name.is_empty() {
                        Err("empty policy name".to_string())
                    } else {
                        policy = Some(name.to_string());
                        Ok(())
                    }
                }
                "churn" => ChurnConfig::parse_identity(body["churn".len()..].trim())
                    .map(|c| churn = Some(c)),
                "a" => parse_entry(&fields).map(|e| entries.push(e)),
                other => Err(format!("unknown record '{other}'")),
            };
            if let Err(msg) = result {
                torn = Some((n, msg));
            }
        }
        Ok(ParsedJournal {
            header,
            policy,
            churn,
            entries,
            torn,
        })
    }
}

/// Intermediate parse state shared by the strict and prefix loaders.
struct ParsedJournal {
    header: Option<(u32, usize)>,
    policy: Option<String>,
    churn: Option<ChurnConfig>,
    entries: Vec<JournalEntry>,
    torn: Option<(usize, String)>,
}

impl ParsedJournal {
    fn finish(self) -> Result<Journal, JournalError> {
        let (k, route_shards) = self.header.ok_or_else(|| JournalError::Io {
            kind: std::io::ErrorKind::InvalidData,
            message: "journal has no header".into(),
        })?;
        let policy = self.policy.ok_or_else(|| JournalError::Io {
            kind: std::io::ErrorKind::InvalidData,
            message: "journal has no policy".into(),
        })?;
        for pair in self.entries.windows(2) {
            if pair[1].seq != pair[0].seq + 1 {
                return Err(JournalError::Mismatch(format!(
                    "sequence gap: entry {} follows entry {}",
                    pair[1].seq, pair[0].seq
                )));
            }
        }
        Ok(Journal {
            k,
            route_shards,
            policy,
            churn: self.churn,
            entries: self.entries,
        })
    }
}

fn parse_header(fields: &[&str]) -> Result<(u32, usize), String> {
    // `k <k> route_shards <r>`
    if fields.len() != 4 || fields[2] != "route_shards" {
        return Err("malformed header (expected 'k <k> route_shards <r>')".into());
    }
    let k = fields[1]
        .parse()
        .map_err(|_| format!("unparsable k '{}'", fields[1]))?;
    let route = fields[3]
        .parse()
        .map_err(|_| format!("unparsable route_shards '{}'", fields[3]))?;
    Ok((k, route))
}

fn parse_entry(fields: &[&str]) -> Result<JournalEntry, String> {
    // `a <seq> <time> <I|E> <size>`
    if fields.len() != 5 {
        return Err("malformed entry (expected 'a <seq> <time> <I|E> <size>')".into());
    }
    let seq = fields[1]
        .parse()
        .map_err(|_| format!("unparsable seq '{}'", fields[1]))?;
    let time: f64 = fields[2]
        .parse()
        .map_err(|_| format!("unparsable time '{}'", fields[2]))?;
    let class = match fields[3] {
        "I" => JobClass::Inelastic,
        "E" => JobClass::Elastic,
        other => return Err(format!("unknown class '{other}'")),
    };
    let size: f64 = fields[4]
        .parse()
        .map_err(|_| format!("unparsable size '{}'", fields[4]))?;
    if !time.is_finite() || !size.is_finite() || size <= 0.0 {
        return Err("non-finite time or non-positive size".into());
    }
    Ok(JournalEntry {
        seq,
        arrival: Arrival { time, class, size },
    })
}

/// Knobs for a controlled (journaled, snapshot-taking, killable) run —
/// the ingredients of the crash-recovery tests and the `eirs serve`
/// `--journal`/`--snapshot-at`/`--kill-after` flags.
#[derive(Debug, Clone, Copy, Default)]
pub struct RunControls {
    /// Take an [`EngineSnapshot`] exactly when this many arrivals have
    /// been ingested.
    pub snapshot_at: Option<u64>,
    /// Abort (as a crash would: no drain, no final flush beyond the
    /// write-ahead ones) once this many arrivals have been ingested.
    pub kill_after: Option<u64>,
}

/// What a controlled run produced.
#[derive(Debug)]
pub struct RunOutcome {
    /// Arrivals ingested by this run.
    pub ingested: u64,
    /// Whether the run was aborted by [`RunControls::kill_after`].
    pub killed: bool,
    /// The snapshot taken at [`RunControls::snapshot_at`], if reached.
    pub snapshot: Option<EngineSnapshot>,
}

/// Pulls arrivals from `source` up to time `until` like
/// [`ServeEngine::run`], but write-ahead journals every batch and honors
/// [`RunControls`]: batches are split at the exact `snapshot_at` /
/// `kill_after` sequence boundaries, a kill returns immediately
/// **without draining** (simulating a crash), and a completed run drains
/// as usual. Batch splitting never changes semantics — per-shard arrival
/// order is preserved under any batching, so the decision stream is
/// unaffected.
pub fn run_journaled<W: Write>(
    engine: &mut ServeEngine,
    source: &mut dyn ArrivalSource,
    until: f64,
    journal: &mut JournalWriter<W>,
    controls: RunControls,
) -> std::io::Result<RunOutcome> {
    let before = engine.ingested();
    let mut outcome = RunOutcome {
        ingested: 0,
        killed: false,
        snapshot: None,
    };
    let check_boundaries = |engine: &ServeEngine, outcome: &mut RunOutcome| -> bool {
        let at = engine.ingested();
        if controls.snapshot_at == Some(at) && outcome.snapshot.is_none() {
            outcome.snapshot = Some(engine.snapshot());
        }
        if controls.kill_after == Some(at) && at > before {
            outcome.killed = true;
        }
        outcome.killed
    };
    check_boundaries(engine, &mut outcome);
    let batch_len = engine.config().batch;
    let mut buf: Vec<Arrival> = Vec::with_capacity(batch_len);
    let mut flush = |engine: &mut ServeEngine, buf: &mut Vec<Arrival>| -> std::io::Result<()> {
        if !buf.is_empty() {
            journal.append_batch(engine.ingested(), buf)?;
            engine.ingest_batch(buf);
            buf.clear();
        }
        Ok(())
    };
    while let Some(a) = source.next_arrival() {
        if a.time > until {
            break;
        }
        buf.push(a);
        let next = engine.ingested() + buf.len() as u64;
        let boundary = controls.snapshot_at == Some(next) || controls.kill_after == Some(next);
        if buf.len() >= batch_len || boundary {
            flush(engine, &mut buf)?;
            if check_boundaries(engine, &mut outcome) {
                outcome.ingested = engine.ingested() - before;
                return Ok(outcome);
            }
        }
    }
    flush(engine, &mut buf)?;
    check_boundaries(engine, &mut outcome);
    outcome.ingested = engine.ingested() - before;
    if !outcome.killed {
        engine.drain();
    }
    Ok(outcome)
}

/// Rebuilds an engine after a crash: restores `snap`, then replays the
/// journal suffix from the snapshot's sequence number. The journal's
/// identity header must agree with the table, config, and snapshot, and
/// its entries must cover `snap.seq` onward without a gap. The returned
/// engine has ingested every journaled arrival but is **not drained**:
/// the caller resumes feeding it from arrival number
/// [`ServeEngine::ingested`] of the original workload.
pub fn recover(
    table: CompiledTable,
    config: EngineConfig,
    snap: &EngineSnapshot,
    journal: &Journal,
) -> Result<ServeEngine, JournalError> {
    if journal.k != snap.k || journal.route_shards != snap.route_shards {
        return Err(JournalError::Mismatch(format!(
            "journal is for k={} route_shards={}, snapshot k={} route_shards={}",
            journal.k, journal.route_shards, snap.k, snap.route_shards
        )));
    }
    if journal.policy != snap.policy {
        return Err(JournalError::Mismatch(format!(
            "journal was serving '{}', snapshot '{}'",
            journal.policy, snap.policy
        )));
    }
    if journal.churn != snap.churn {
        return Err(JournalError::Mismatch(
            "journal and snapshot disagree on the churn identity".into(),
        ));
    }
    let mut engine = ServeEngine::from_snapshot(table, config, snap)?;
    let suffix: Vec<&JournalEntry> = journal
        .entries
        .iter()
        .filter(|e| e.seq >= snap.seq)
        .collect();
    if let Some(first) = suffix.first() {
        if first.seq != snap.seq {
            return Err(JournalError::Mismatch(format!(
                "journal resumes at seq {}, snapshot ends at seq {} — the gap is unrecoverable",
                first.seq, snap.seq
            )));
        }
    }
    let batch = engine.config().batch;
    let mut buf: Vec<Arrival> = Vec::with_capacity(batch);
    for e in suffix {
        buf.push(e.arrival);
        if buf.len() >= batch {
            engine.ingest_batch(&buf);
            buf.clear();
        }
    }
    engine.ingest_batch(&buf);
    Ok(engine)
}

#[cfg(test)]
mod tests {
    use super::*;
    use eirs_queueing::Exponential;
    use eirs_sim::arrivals::ArrivalTrace;
    use eirs_sim::availability::FaultSpec;
    use eirs_sim::policy::FairShare;

    fn trace() -> ArrivalTrace {
        ArrivalTrace::record_poisson(
            0.9,
            0.6,
            Box::new(Exponential::new(1.0)),
            Box::new(Exponential::new(1.0)),
            9,
            150.0,
        )
    }

    fn table() -> CompiledTable {
        CompiledTable::compile(Box::new(FairShare), 2, 16, 16)
    }

    fn churned_config() -> EngineConfig {
        EngineConfig::new(2)
            .route_shards(3)
            .batch(8)
            .churn(ChurnConfig {
                spec: FaultSpec::parse("crash:mtbf=35,mttr=7").unwrap(),
                seed: 11,
                horizon: 200.0,
            })
    }

    #[test]
    fn journal_text_round_trips() {
        let engine = ServeEngine::new(table(), churned_config());
        let mut w = JournalWriter::create(Vec::new(), &engine).unwrap();
        let t = trace();
        w.append_batch(0, &t.arrivals()[..6]).unwrap();
        w.append_batch(6, &t.arrivals()[6..10]).unwrap();
        let bytes = w.into_inner().unwrap();
        let j = Journal::from_reader(&mut std::io::Cursor::new(bytes)).unwrap();
        assert_eq!((j.k, j.route_shards), (2, 3));
        assert_eq!(j.policy, "Compiled[Fair-Share]");
        assert_eq!(j.churn, engine.config().churn);
        assert_eq!(j.entries.len(), 10);
        for (n, e) in j.entries.iter().enumerate() {
            assert_eq!(e.seq, n as u64);
            assert_eq!(e.arrival, t.arrivals()[n], "entry {n} must round-trip");
        }
    }

    #[test]
    fn torn_final_lines_are_recoverable_but_strict_load_refuses() {
        let engine = ServeEngine::new(table(), churned_config());
        let mut w = JournalWriter::create(Vec::new(), &engine).unwrap();
        w.append_batch(0, &trace().arrivals()[..4]).unwrap();
        let full = String::from_utf8(w.into_inner().unwrap()).unwrap();
        // Simulate a crash mid-write: the fourth entry's class and size
        // never reached the disk.
        let kept: String = full
            .lines()
            .take(full.lines().count() - 1)
            .map(|l| format!("{l}\n"))
            .collect();
        let torn = format!("{kept}a 3 0.51");
        assert!(Journal::from_reader(&mut std::io::Cursor::new(&torn)).is_err());
        let j = Journal::load_prefix(&mut std::io::Cursor::new(&torn)).unwrap();
        assert_eq!(j.entries.len(), 3, "the torn fourth entry is dropped");
        // A malformed line that is NOT last stays an error either way.
        let garbled = format!("{torn}\na 3 0.5 I 1.0\n");
        assert!(Journal::load_prefix(&mut std::io::Cursor::new(&garbled)).is_err());
    }

    #[test]
    fn sequence_gaps_are_rejected() {
        let engine = ServeEngine::new(table(), EngineConfig::new(2).route_shards(3));
        let mut w = JournalWriter::create(Vec::new(), &engine).unwrap();
        let t = trace();
        w.append_batch(0, &t.arrivals()[..2]).unwrap();
        w.append_batch(5, &t.arrivals()[2..4]).unwrap(); // gap: 1 → 5
        let bytes = w.into_inner().unwrap();
        let err = Journal::from_reader(&mut std::io::Cursor::new(bytes)).unwrap_err();
        assert!(matches!(err, JournalError::Mismatch(_)), "{err:?}");
    }

    #[test]
    fn kill_and_recover_replays_bit_identically_under_churn() {
        let t = trace();
        let config = churned_config();
        // Reference: the run that never crashes.
        let mut reference = ServeEngine::new(table(), config);
        let mut src = t.stream();
        let mut sink = JournalWriter::create(Vec::new(), &reference).unwrap();
        run_journaled(
            &mut reference,
            &mut src,
            f64::INFINITY,
            &mut sink,
            RunControls::default(),
        )
        .unwrap();
        // Crashed run: snapshot at 40, killed at 90 of ~135 arrivals.
        let mut crashed = ServeEngine::new(table(), config);
        let mut src = t.stream();
        let mut journal = JournalWriter::create(Vec::new(), &crashed).unwrap();
        let outcome = run_journaled(
            &mut crashed,
            &mut src,
            f64::INFINITY,
            &mut journal,
            RunControls {
                snapshot_at: Some(40),
                kill_after: Some(90),
            },
        )
        .unwrap();
        assert!(outcome.killed);
        assert_eq!(outcome.ingested, 90);
        let snap = outcome.snapshot.expect("snapshot boundary was reached");
        assert_eq!(snap.seq, 40);
        // Recover from snapshot + journal, resume the workload where the
        // journal ends, drain, and compare against the unfaulted run.
        let journal =
            Journal::from_reader(&mut std::io::Cursor::new(journal.into_inner().unwrap())).unwrap();
        let mut recovered = recover(table(), config, &snap, &journal).unwrap();
        assert_eq!(recovered.ingested(), 90);
        let rest: Vec<Arrival> = t.arrivals()[90..].to_vec();
        recovered.ingest_batch(&rest);
        recovered.drain();
        assert_eq!(recovered.decision_digest(), reference.decision_digest());
        assert_eq!(recovered.metrics_total(), reference.metrics_total());
    }

    #[test]
    fn recover_rejects_identity_mismatches() {
        let t = trace();
        let config = churned_config();
        let mut engine = ServeEngine::new(table(), config);
        let mut src = t.stream();
        let mut w = JournalWriter::create(Vec::new(), &engine).unwrap();
        let outcome = run_journaled(
            &mut engine,
            &mut src,
            f64::INFINITY,
            &mut w,
            RunControls {
                snapshot_at: Some(20),
                kill_after: Some(30),
            },
        )
        .unwrap();
        let snap = outcome.snapshot.unwrap();
        let journal =
            Journal::from_reader(&mut std::io::Cursor::new(w.into_inner().unwrap())).unwrap();
        // A journal whose churn identity disagrees with the snapshot.
        let mut other = journal.clone();
        other.churn = None;
        assert!(matches!(
            recover(table(), config, &snap, &other),
            Err(JournalError::Mismatch(_))
        ));
        // A journal that starts after the snapshot's seq: unrecoverable gap.
        let mut gapped = journal.clone();
        gapped.entries.retain(|e| e.seq >= 25);
        assert!(matches!(
            recover(table(), config, &snap, &gapped),
            Err(JournalError::Mismatch(_))
        ));
    }
}
