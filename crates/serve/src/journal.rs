//! Write-ahead decision journaling: crash recovery with bit-identical
//! replay.
//!
//! A snapshot freezes engine state at one instant; the journal covers the
//! gap between the last snapshot and a crash. The discipline is
//! write-ahead: every arrival batch is appended to the journal **and
//! flushed** before the engine ingests it, so after an abrupt kill the
//! journal always holds at least everything the engine has seen. Recovery
//! composes the two — restore the snapshot, then replay the journal's
//! suffix from the snapshot's sequence number — and, because the engine
//! is deterministic and batching does not affect semantics, the recovered
//! engine continues **bit-identically**: draining it yields the same
//! shard-ordered decision digest as the run that never crashed. The
//! `fault_tolerance` tests and the CI chaos gate assert exactly that,
//! including under capacity churn.
//!
//! The format follows the trace/snapshot discipline: line-oriented text,
//! `#` comments, floats in Rust's shortest round-trippable form. A header
//! records the serving identity (policy, shape, churn); each entry is one
//! arrival with its global sequence number:
//!
//! ```text
//! # eirs-serve-journal v1
//! k 2 route_shards 4
//! policy Compiled[Fair-Share]
//! churn spec=crash:mtbf=50,mttr=5 seed=7 horizon=200
//! a 0 0.3517 I 1.25
//! a 1 0.9102 E 0.75
//! ```
//!
//! There is no end marker: a journal is valid at every prefix of whole
//! lines, because a crash can happen at any time (a torn final line is
//! reported with its line number, and [`Journal::load_prefix`] recovers
//! the longest whole-line prefix).

use crate::engine::{ChurnConfig, EngineConfig, ServeEngine, SwapRecord};
use crate::snapshot::{EngineSnapshot, SnapshotError};
use crate::table::CompiledTable;
use eirs_sim::arrivals::{Arrival, ArrivalSource};
use eirs_sim::job::JobClass;
use eirs_sim::policy::AllocationPolicy;
use std::io::{BufRead, Write};

/// One journaled arrival: the global routing sequence number it was
/// ingested as, plus the arrival itself.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JournalEntry {
    /// Global arrival sequence number (the engine's `seq` at ingest).
    pub seq: u64,
    /// The arrival.
    pub arrival: Arrival,
}

/// Failures when parsing or validating a journal.
#[derive(Debug, Clone, PartialEq)]
pub enum JournalError {
    /// Underlying I/O failure with its [`std::io::ErrorKind`] preserved.
    Io {
        /// The kind of the underlying failure.
        kind: std::io::ErrorKind,
        /// Human-readable detail.
        message: String,
    },
    /// A malformed line: `(1-based line number, message)`.
    Line(usize, String),
    /// Structurally valid but inconsistent with the recovering engine
    /// (wrong policy, shape, churn identity, or a sequence gap).
    Mismatch(String),
}

impl std::fmt::Display for JournalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JournalError::Io { kind, message } => {
                write!(f, "journal I/O error ({kind}): {message}")
            }
            JournalError::Line(n, msg) => write!(f, "journal line {n}: {msg}"),
            JournalError::Mismatch(msg) => write!(f, "journal mismatch: {msg}"),
        }
    }
}

impl std::error::Error for JournalError {}

impl From<std::io::Error> for JournalError {
    fn from(e: std::io::Error) -> Self {
        JournalError::Io {
            kind: e.kind(),
            message: e.to_string(),
        }
    }
}

impl From<SnapshotError> for JournalError {
    fn from(e: SnapshotError) -> Self {
        match e {
            SnapshotError::Io { kind, message } => JournalError::Io { kind, message },
            SnapshotError::Line(n, m) => JournalError::Line(n, format!("snapshot: {m}")),
            SnapshotError::Mismatch(m) => JournalError::Mismatch(m),
        }
    }
}

/// Appends journal lines ahead of ingestion (see the [module
/// docs](self) for the write-ahead contract).
#[derive(Debug)]
pub struct JournalWriter<W: Write> {
    w: W,
}

impl<W: Write> JournalWriter<W> {
    /// Starts a journal for `engine`, writing the identity header.
    pub fn create(w: W, engine: &ServeEngine) -> std::io::Result<Self> {
        Self::create_with_spec(w, engine, None)
    }

    /// [`JournalWriter::create`], additionally recording the parseable
    /// policy spec (the CLI `--policy` grammar) and the serving table's
    /// [identity hash](CompiledTable::identity_hash) in the header.
    /// Replay from the journal alone ([`replay_journal`]) needs the
    /// spec to recompile the boot policy; plain crash recovery does
    /// not, so `create` omits both lines and stays byte-compatible
    /// with pre-hot-swap journals.
    pub fn create_with_spec(
        mut w: W,
        engine: &ServeEngine,
        spec: Option<&str>,
    ) -> std::io::Result<Self> {
        writeln!(w, "# eirs-serve-journal v1")?;
        let c = engine.config();
        writeln!(w, "k {} route_shards {}", c.k, c.route_shards)?;
        writeln!(w, "policy {}", engine.table().name())?;
        if let Some(spec) = spec {
            writeln!(w, "policy_spec {spec}")?;
            writeln!(w, "policy_hash {}", engine.table().identity_hash())?;
        }
        if let Some(churn) = &c.churn {
            writeln!(w, "churn {}", churn.identity())?;
        }
        w.flush()?;
        Ok(Self { w })
    }

    /// Appends one batch starting at global sequence `start_seq` and
    /// flushes. Must be called **before** the batch is ingested — the
    /// flush is what makes the journal a write-ahead log.
    pub fn append_batch(&mut self, start_seq: u64, batch: &[Arrival]) -> std::io::Result<()> {
        for (offset, a) in batch.iter().enumerate() {
            let c = match a.class {
                JobClass::Inelastic => 'I',
                JobClass::Elastic => 'E',
            };
            writeln!(
                self.w,
                "a {} {} {c} {}",
                start_seq + offset as u64,
                a.time,
                a.size
            )?;
        }
        self.w.flush()
    }

    /// Journals one policy hot-swap and flushes. Like arrival batches
    /// this is write-ahead: append the record **before** serving any
    /// arrival under the new generation, so a crash can never leave
    /// served-but-unjournaled generations behind.
    pub fn append_swap(&mut self, rec: &SwapRecord) -> std::io::Result<()> {
        writeln!(
            self.w,
            "g {} {} {} {}",
            rec.seq, rec.generation, rec.hash, rec.spec
        )?;
        self.w.flush()
    }

    /// Unwraps the underlying writer (flushing first).
    pub fn into_inner(mut self) -> std::io::Result<W> {
        self.w.flush()?;
        Ok(self.w)
    }
}

/// A parsed journal: the identity header plus every entry in order.
#[derive(Debug, Clone, PartialEq)]
pub struct Journal {
    /// Servers per shard the journaled engine was configured for.
    pub k: u32,
    /// Routing partition width.
    pub route_shards: usize,
    /// Compiled-table name the engine was serving when the journal
    /// started (generation 0; hot-swaps change the serving policy
    /// without rewriting the header — see [`Journal::swaps`]).
    pub policy: String,
    /// Parseable spec the boot policy was compiled from, when the
    /// journal was written with [`JournalWriter::create_with_spec`].
    /// Required by [`replay_journal`].
    pub policy_spec: Option<String>,
    /// Identity hash of the boot table, when recorded.
    pub policy_hash: Option<u64>,
    /// Churn identity, if the engine ran under capacity faults.
    pub churn: Option<ChurnConfig>,
    /// The generation schedule: every journaled hot-swap, in order
    /// (contiguous generations from 1, non-decreasing swap seqs).
    pub swaps: Vec<SwapRecord>,
    /// Journaled arrivals, in ingestion order with contiguous sequence
    /// numbers.
    pub entries: Vec<JournalEntry>,
}

impl Journal {
    /// Parses the text format of [`JournalWriter`]. Strict: a torn final
    /// line (the normal crash artifact) is an error here — use
    /// [`Journal::load_prefix`] to recover through it.
    pub fn from_reader(r: &mut dyn BufRead) -> Result<Self, JournalError> {
        let mut parsed = Self::parse_lines(r)?;
        if let Some((n, msg)) = parsed.torn.take() {
            return Err(JournalError::Line(n, msg));
        }
        parsed.finish()
    }

    /// Parses a journal, silently dropping a torn **final** line — the
    /// artifact of a crash mid-write. Malformed lines anywhere else are
    /// still errors.
    pub fn load_prefix(r: &mut dyn BufRead) -> Result<Self, JournalError> {
        Self::parse_lines(r)?.finish()
    }

    /// Loads a journal file written by [`JournalWriter`], strictly.
    pub fn load(path: &std::path::Path) -> Result<Self, JournalError> {
        let file = std::fs::File::open(path)?;
        Self::from_reader(&mut std::io::BufReader::new(file))
    }

    fn parse_lines(r: &mut dyn BufRead) -> Result<ParsedJournal, JournalError> {
        let mut header: Option<(u32, usize)> = None;
        let mut policy: Option<String> = None;
        let mut policy_spec: Option<String> = None;
        let mut policy_hash: Option<u64> = None;
        let mut churn: Option<ChurnConfig> = None;
        let mut swaps: Vec<SwapRecord> = Vec::new();
        let mut entries: Vec<JournalEntry> = Vec::new();
        let mut torn: Option<(usize, String)> = None;
        for (idx, line) in r.lines().enumerate() {
            let line = line?;
            let n = idx + 1;
            if let Some(t) = torn.take() {
                // The malformed line was not the last one — a real error,
                // not a crash artifact.
                return Err(JournalError::Line(t.0, t.1));
            }
            let body = line.trim();
            if body.is_empty() || body.starts_with('#') {
                continue;
            }
            let fields: Vec<&str> = body.split_whitespace().collect();
            let result = match fields[0] {
                "k" => parse_header(&fields).map(|h| header = Some(h)),
                "policy" => {
                    let name = body["policy".len()..].trim();
                    if name.is_empty() {
                        Err("empty policy name".to_string())
                    } else {
                        policy = Some(name.to_string());
                        Ok(())
                    }
                }
                "policy_spec" => {
                    let spec = body["policy_spec".len()..].trim();
                    if spec.is_empty() {
                        Err("empty policy spec".to_string())
                    } else {
                        policy_spec = Some(spec.to_string());
                        Ok(())
                    }
                }
                "policy_hash" => match fields.get(1).and_then(|v| v.parse().ok()) {
                    Some(h) => {
                        policy_hash = Some(h);
                        Ok(())
                    }
                    None => Err("unparsable policy_hash".to_string()),
                },
                "churn" => ChurnConfig::parse_identity(body["churn".len()..].trim())
                    .map(|c| churn = Some(c)),
                "g" => parse_swap(&fields).map(|s| swaps.push(s)),
                "a" => parse_entry(&fields).map(|e| entries.push(e)),
                other => Err(format!("unknown record '{other}'")),
            };
            if let Err(msg) = result {
                torn = Some((n, msg));
            }
        }
        Ok(ParsedJournal {
            header,
            policy,
            policy_spec,
            policy_hash,
            churn,
            swaps,
            entries,
            torn,
        })
    }
}

/// Intermediate parse state shared by the strict and prefix loaders.
struct ParsedJournal {
    header: Option<(u32, usize)>,
    policy: Option<String>,
    policy_spec: Option<String>,
    policy_hash: Option<u64>,
    churn: Option<ChurnConfig>,
    swaps: Vec<SwapRecord>,
    entries: Vec<JournalEntry>,
    torn: Option<(usize, String)>,
}

impl ParsedJournal {
    fn finish(self) -> Result<Journal, JournalError> {
        let (k, route_shards) = self.header.ok_or_else(|| JournalError::Io {
            kind: std::io::ErrorKind::InvalidData,
            message: "journal has no header".into(),
        })?;
        let policy = self.policy.ok_or_else(|| JournalError::Io {
            kind: std::io::ErrorKind::InvalidData,
            message: "journal has no policy".into(),
        })?;
        for pair in self.entries.windows(2) {
            if pair[1].seq != pair[0].seq + 1 {
                return Err(JournalError::Mismatch(format!(
                    "sequence gap: entry {} follows entry {}",
                    pair[1].seq, pair[0].seq
                )));
            }
        }
        // The generation schedule must be a valid swap history:
        // generations count 1, 2, … and swap points never move backward.
        for (n, s) in self.swaps.iter().enumerate() {
            if s.generation != n as u32 + 1 {
                return Err(JournalError::Mismatch(format!(
                    "swap record {} carries generation {}, expected {}",
                    n + 1,
                    s.generation,
                    n + 1
                )));
            }
        }
        for pair in self.swaps.windows(2) {
            if pair[1].seq < pair[0].seq {
                return Err(JournalError::Mismatch(format!(
                    "swap at seq {} follows swap at seq {}",
                    pair[1].seq, pair[0].seq
                )));
            }
        }
        Ok(Journal {
            k,
            route_shards,
            policy,
            policy_spec: self.policy_spec,
            policy_hash: self.policy_hash,
            churn: self.churn,
            swaps: self.swaps,
            entries: self.entries,
        })
    }
}

fn parse_swap(fields: &[&str]) -> Result<SwapRecord, String> {
    // `g <seq> <generation> <hash> <spec>`
    if fields.len() < 5 {
        return Err("malformed swap (expected 'g <seq> <generation> <hash> <spec>')".into());
    }
    let seq = fields[1]
        .parse()
        .map_err(|_| format!("unparsable swap seq '{}'", fields[1]))?;
    let generation = fields[2]
        .parse()
        .map_err(|_| format!("unparsable swap generation '{}'", fields[2]))?;
    let hash = fields[3]
        .parse()
        .map_err(|_| format!("unparsable swap hash '{}'", fields[3]))?;
    Ok(SwapRecord {
        seq,
        generation,
        hash,
        spec: fields[4..].join(" "),
    })
}

fn parse_header(fields: &[&str]) -> Result<(u32, usize), String> {
    // `k <k> route_shards <r>`
    if fields.len() != 4 || fields[2] != "route_shards" {
        return Err("malformed header (expected 'k <k> route_shards <r>')".into());
    }
    let k = fields[1]
        .parse()
        .map_err(|_| format!("unparsable k '{}'", fields[1]))?;
    let route = fields[3]
        .parse()
        .map_err(|_| format!("unparsable route_shards '{}'", fields[3]))?;
    Ok((k, route))
}

fn parse_entry(fields: &[&str]) -> Result<JournalEntry, String> {
    // `a <seq> <time> <I|E> <size>`
    if fields.len() != 5 {
        return Err("malformed entry (expected 'a <seq> <time> <I|E> <size>')".into());
    }
    let seq = fields[1]
        .parse()
        .map_err(|_| format!("unparsable seq '{}'", fields[1]))?;
    let time: f64 = fields[2]
        .parse()
        .map_err(|_| format!("unparsable time '{}'", fields[2]))?;
    let class = match fields[3] {
        "I" => JobClass::Inelastic,
        "E" => JobClass::Elastic,
        other => return Err(format!("unknown class '{other}'")),
    };
    let size: f64 = fields[4]
        .parse()
        .map_err(|_| format!("unparsable size '{}'", fields[4]))?;
    if !time.is_finite() || !size.is_finite() || size <= 0.0 {
        return Err("non-finite time or non-positive size".into());
    }
    Ok(JournalEntry {
        seq,
        arrival: Arrival { time, class, size },
    })
}

/// Knobs for a controlled (journaled, snapshot-taking, killable) run —
/// the ingredients of the crash-recovery tests and the `eirs serve`
/// `--journal`/`--snapshot-at`/`--kill-after` flags.
#[derive(Debug, Clone, Copy, Default)]
pub struct RunControls {
    /// Take an [`EngineSnapshot`] exactly when this many arrivals have
    /// been ingested.
    pub snapshot_at: Option<u64>,
    /// Abort (as a crash would: no drain, no final flush beyond the
    /// write-ahead ones) once this many arrivals have been ingested.
    pub kill_after: Option<u64>,
}

/// What a controlled run produced.
#[derive(Debug)]
pub struct RunOutcome {
    /// Arrivals ingested by this run.
    pub ingested: u64,
    /// Whether the run was aborted by [`RunControls::kill_after`].
    pub killed: bool,
    /// The snapshot taken at [`RunControls::snapshot_at`], if reached.
    pub snapshot: Option<EngineSnapshot>,
}

/// Pulls arrivals from `source` up to time `until` like
/// [`ServeEngine::run`], but write-ahead journals every batch and honors
/// [`RunControls`]: batches are split at the exact `snapshot_at` /
/// `kill_after` sequence boundaries, a kill returns immediately
/// **without draining** (simulating a crash), and a completed run drains
/// as usual. Batch splitting never changes semantics — per-shard arrival
/// order is preserved under any batching, so the decision stream is
/// unaffected.
pub fn run_journaled<W: Write>(
    engine: &mut ServeEngine,
    source: &mut dyn ArrivalSource,
    until: f64,
    journal: &mut JournalWriter<W>,
    controls: RunControls,
) -> std::io::Result<RunOutcome> {
    let before = engine.ingested();
    let mut outcome = RunOutcome {
        ingested: 0,
        killed: false,
        snapshot: None,
    };
    let check_boundaries = |engine: &ServeEngine, outcome: &mut RunOutcome| -> bool {
        let at = engine.ingested();
        if controls.snapshot_at == Some(at) && outcome.snapshot.is_none() {
            outcome.snapshot = Some(engine.snapshot());
        }
        if controls.kill_after == Some(at) && at > before {
            outcome.killed = true;
        }
        outcome.killed
    };
    check_boundaries(engine, &mut outcome);
    let batch_len = engine.config().batch;
    let mut buf: Vec<Arrival> = Vec::with_capacity(batch_len);
    let mut flush = |engine: &mut ServeEngine, buf: &mut Vec<Arrival>| -> std::io::Result<()> {
        if !buf.is_empty() {
            journal.append_batch(engine.ingested(), buf)?;
            engine.ingest_batch(buf);
            buf.clear();
        }
        Ok(())
    };
    while let Some(a) = source.next_arrival() {
        if a.time > until {
            break;
        }
        buf.push(a);
        let next = engine.ingested() + buf.len() as u64;
        let boundary = controls.snapshot_at == Some(next) || controls.kill_after == Some(next);
        if buf.len() >= batch_len || boundary {
            flush(engine, &mut buf)?;
            if check_boundaries(engine, &mut outcome) {
                outcome.ingested = engine.ingested() - before;
                return Ok(outcome);
            }
        }
    }
    flush(engine, &mut buf)?;
    check_boundaries(engine, &mut outcome);
    outcome.ingested = engine.ingested() - before;
    if !outcome.killed {
        engine.drain();
    }
    Ok(outcome)
}

/// Rebuilds an engine after a crash: restores `snap`, then replays the
/// journal suffix from the snapshot's sequence number. The journal's
/// identity header must agree with the table, config, and snapshot, and
/// its entries must cover `snap.seq` onward without a gap. The returned
/// engine has ingested every journaled arrival but is **not drained**:
/// the caller resumes feeding it from arrival number
/// [`ServeEngine::ingested`] of the original workload.
pub fn recover(
    table: CompiledTable,
    config: EngineConfig,
    snap: &EngineSnapshot,
    journal: &Journal,
) -> Result<ServeEngine, JournalError> {
    recover_with(table, config, snap, journal, &|rec| {
        Err(format!(
            "journal hot-swaps to '{}' after the snapshot; plain recover cannot compile it — \
             use recover_with and supply a table compiler",
            rec.spec
        ))
    })
}

/// [`recover`] for journals whose suffix crosses hot-swap points:
/// `compile` turns each post-snapshot [`SwapRecord`] back into a
/// [`CompiledTable`] (normally by parsing `rec.spec` through the CLI
/// policy grammar and compiling at any grid size — decisions are
/// grid-size-invariant). Each compiled table's identity hash must match
/// the journaled hash, and swaps are re-installed at their exact
/// sequence points, so the recovered engine's generation schedule is
/// bit-identical to the crashed run's.
pub fn recover_with(
    table: CompiledTable,
    config: EngineConfig,
    snap: &EngineSnapshot,
    journal: &Journal,
    compile: &dyn Fn(&SwapRecord) -> Result<CompiledTable, String>,
) -> Result<ServeEngine, JournalError> {
    if journal.k != snap.k || journal.route_shards != snap.route_shards {
        return Err(JournalError::Mismatch(format!(
            "journal is for k={} route_shards={}, snapshot k={} route_shards={}",
            journal.k, journal.route_shards, snap.k, snap.route_shards
        )));
    }
    // The generation schedule must agree with the snapshot: exactly
    // `snap.generation` swaps happened at or before the snapshot point.
    // A mismatch means the journal belongs to a different run (or a
    // different policy history) and replaying it would silently produce
    // a cross-policy decision stream.
    let pre_swaps = journal.swaps.iter().filter(|s| s.seq <= snap.seq).count() as u32;
    if pre_swaps != snap.generation {
        return Err(JournalError::Mismatch(format!(
            "journal records {pre_swaps} swaps at or before seq {}, snapshot is generation {} — \
             the generation schedules disagree",
            snap.seq, snap.generation
        )));
    }
    if snap.generation == 0 {
        // No swap yet: the boot policy name must agree, as always.
        if journal.policy != snap.policy {
            return Err(JournalError::Mismatch(format!(
                "journal was serving '{}', snapshot '{}'",
                journal.policy, snap.policy
            )));
        }
    }
    // When both sides pin an identity hash, the policy serving at the
    // snapshot point must hash the same.
    let effective_hash = journal
        .swaps
        .iter()
        .rfind(|s| s.seq <= snap.seq)
        .map(|s| Some(s.hash))
        .unwrap_or(journal.policy_hash);
    if let Some(h) = effective_hash {
        if snap.policy_hash != 0 && h != snap.policy_hash {
            return Err(JournalError::Mismatch(format!(
                "journal pins policy hash {h:#018x} at seq {}, snapshot pins {:#018x}",
                snap.seq, snap.policy_hash
            )));
        }
    }
    if journal.churn != snap.churn {
        return Err(JournalError::Mismatch(
            "journal and snapshot disagree on the churn identity".into(),
        ));
    }
    let mut engine = ServeEngine::from_snapshot(table, config, snap)?;
    let suffix: Vec<&JournalEntry> = journal
        .entries
        .iter()
        .filter(|e| e.seq >= snap.seq)
        .collect();
    if let Some(first) = suffix.first() {
        if first.seq != snap.seq {
            return Err(JournalError::Mismatch(format!(
                "journal resumes at seq {}, snapshot ends at seq {} — the gap is unrecoverable",
                first.seq, snap.seq
            )));
        }
    }
    let batch = engine.config().batch;
    let mut pending: Vec<&SwapRecord> = journal.swaps.iter().filter(|s| s.seq > snap.seq).collect();
    pending.reverse(); // pop() yields the earliest swap first
    let mut buf: Vec<Arrival> = Vec::with_capacity(batch);
    let install = |engine: &mut ServeEngine, rec: &SwapRecord| -> Result<(), JournalError> {
        let table = compile(rec).map_err(JournalError::Mismatch)?;
        let installed = engine.install_table(table, &rec.spec);
        if installed.hash != rec.hash || installed.generation != rec.generation {
            return Err(JournalError::Mismatch(format!(
                "recompiled swap '{}' hashes to {:#018x} generation {}, journal recorded \
                 {:#018x} generation {}",
                rec.spec, installed.hash, installed.generation, rec.hash, rec.generation
            )));
        }
        Ok(())
    };
    for e in suffix {
        while pending.last().is_some_and(|s| s.seq == e.seq) {
            engine.ingest_batch(&buf);
            buf.clear();
            let rec = pending.pop().expect("just checked");
            install(&mut engine, rec)?;
        }
        buf.push(e.arrival);
        if buf.len() >= batch {
            engine.ingest_batch(&buf);
            buf.clear();
        }
    }
    engine.ingest_batch(&buf);
    // Swaps recorded at the very end of the journal (at the crash
    // point, after the last journaled arrival) still install.
    while let Some(rec) = pending.pop() {
        install(&mut engine, rec)?;
    }
    Ok(engine)
}

/// Rebuilds the **entire** run from the journal alone: compiles the
/// boot policy from the journal's recorded `policy_spec`, ingests every
/// entry from seq 0, and re-installs each journaled hot-swap at its
/// exact sequence point. The returned engine is **not** drained (call
/// [`ServeEngine::drain`] to match a live run that shut down cleanly).
/// Because the engine is deterministic and decisions are
/// grid-size-invariant, the replayed decision digest is bit-identical
/// to the live run's — the hot-swap CI gate's currency.
///
/// `config` supplies processing knobs (workers, batch) and must agree
/// with the journal's `k`/`route_shards`/churn identity; `compile`
/// turns a policy spec into a table (the boot spec compiles via
/// `compile(&SwapRecord{generation: 0, ...})`-style call with the
/// header spec).
pub fn replay_journal(
    config: EngineConfig,
    journal: &Journal,
    compile: &dyn Fn(&str) -> Result<CompiledTable, String>,
) -> Result<ServeEngine, JournalError> {
    if journal.k != config.k || journal.route_shards != config.route_shards {
        return Err(JournalError::Mismatch(format!(
            "journal is for k={} route_shards={}, config k={} route_shards={}",
            journal.k, journal.route_shards, config.k, config.route_shards
        )));
    }
    if journal.churn != config.churn {
        return Err(JournalError::Mismatch(
            "journal and config disagree on the churn identity".into(),
        ));
    }
    let spec = journal.policy_spec.as_deref().ok_or_else(|| {
        JournalError::Mismatch(
            "journal records no policy_spec — it was not written for standalone replay \
             (re-serve with --policy to journal the spec)"
                .into(),
        )
    })?;
    let table = compile(spec).map_err(JournalError::Mismatch)?;
    if let Some(h) = journal.policy_hash {
        if table.identity_hash() != h {
            return Err(JournalError::Mismatch(format!(
                "boot spec '{spec}' recompiles to identity hash {:#018x}, journal recorded \
                 {h:#018x}",
                table.identity_hash()
            )));
        }
    } else if table.name() != journal.policy {
        return Err(JournalError::Mismatch(format!(
            "boot spec '{spec}' compiles to '{}', journal was serving '{}'",
            table.name(),
            journal.policy
        )));
    }
    if let Some(first) = journal.entries.first() {
        if first.seq != 0 {
            return Err(JournalError::Mismatch(format!(
                "journal starts at seq {} — standalone replay needs the full history from seq 0",
                first.seq
            )));
        }
    }
    let mut engine = ServeEngine::new(table, config);
    let batch = engine.config().batch;
    let mut pending: Vec<&SwapRecord> = journal.swaps.iter().collect();
    pending.reverse();
    let mut buf: Vec<Arrival> = Vec::with_capacity(batch);
    let install = |engine: &mut ServeEngine, rec: &SwapRecord| -> Result<(), JournalError> {
        let table = compile(&rec.spec).map_err(JournalError::Mismatch)?;
        let installed = engine.install_table(table, &rec.spec);
        if installed.hash != rec.hash || installed.generation != rec.generation {
            return Err(JournalError::Mismatch(format!(
                "recompiled swap '{}' hashes to {:#018x} generation {}, journal recorded \
                 {:#018x} generation {}",
                rec.spec, installed.hash, installed.generation, rec.hash, rec.generation
            )));
        }
        Ok(())
    };
    for e in &journal.entries {
        while pending.last().is_some_and(|s| s.seq == e.seq) {
            engine.ingest_batch(&buf);
            buf.clear();
            let rec = pending.pop().expect("just checked");
            install(&mut engine, rec)?;
        }
        buf.push(e.arrival);
        if buf.len() >= batch {
            engine.ingest_batch(&buf);
            buf.clear();
        }
    }
    engine.ingest_batch(&buf);
    while let Some(rec) = pending.pop() {
        install(&mut engine, rec)?;
    }
    Ok(engine)
}

#[cfg(test)]
mod tests {
    use super::*;
    use eirs_queueing::Exponential;
    use eirs_sim::arrivals::ArrivalTrace;
    use eirs_sim::availability::FaultSpec;
    use eirs_sim::policy::FairShare;

    fn trace() -> ArrivalTrace {
        ArrivalTrace::record_poisson(
            0.9,
            0.6,
            Box::new(Exponential::new(1.0)),
            Box::new(Exponential::new(1.0)),
            9,
            150.0,
        )
    }

    fn table() -> CompiledTable {
        CompiledTable::compile(Box::new(FairShare), 2, 16, 16)
    }

    fn churned_config() -> EngineConfig {
        EngineConfig::new(2)
            .route_shards(3)
            .batch(8)
            .churn(ChurnConfig {
                spec: FaultSpec::parse("crash:mtbf=35,mttr=7").unwrap(),
                seed: 11,
                horizon: 200.0,
            })
    }

    #[test]
    fn journal_text_round_trips() {
        let engine = ServeEngine::new(table(), churned_config());
        let mut w = JournalWriter::create(Vec::new(), &engine).unwrap();
        let t = trace();
        w.append_batch(0, &t.arrivals()[..6]).unwrap();
        w.append_batch(6, &t.arrivals()[6..10]).unwrap();
        let bytes = w.into_inner().unwrap();
        let j = Journal::from_reader(&mut std::io::Cursor::new(bytes)).unwrap();
        assert_eq!((j.k, j.route_shards), (2, 3));
        assert_eq!(j.policy, "Compiled[Fair-Share]");
        assert_eq!(j.churn, engine.config().churn);
        assert_eq!(j.entries.len(), 10);
        for (n, e) in j.entries.iter().enumerate() {
            assert_eq!(e.seq, n as u64);
            assert_eq!(e.arrival, t.arrivals()[n], "entry {n} must round-trip");
        }
    }

    #[test]
    fn torn_final_lines_are_recoverable_but_strict_load_refuses() {
        let engine = ServeEngine::new(table(), churned_config());
        let mut w = JournalWriter::create(Vec::new(), &engine).unwrap();
        w.append_batch(0, &trace().arrivals()[..4]).unwrap();
        let full = String::from_utf8(w.into_inner().unwrap()).unwrap();
        // Simulate a crash mid-write: the fourth entry's class and size
        // never reached the disk.
        let kept: String = full
            .lines()
            .take(full.lines().count() - 1)
            .map(|l| format!("{l}\n"))
            .collect();
        let torn = format!("{kept}a 3 0.51");
        assert!(Journal::from_reader(&mut std::io::Cursor::new(&torn)).is_err());
        let j = Journal::load_prefix(&mut std::io::Cursor::new(&torn)).unwrap();
        assert_eq!(j.entries.len(), 3, "the torn fourth entry is dropped");
        // A malformed line that is NOT last stays an error either way.
        let garbled = format!("{torn}\na 3 0.5 I 1.0\n");
        assert!(Journal::load_prefix(&mut std::io::Cursor::new(&garbled)).is_err());
    }

    #[test]
    fn sequence_gaps_are_rejected() {
        let engine = ServeEngine::new(table(), EngineConfig::new(2).route_shards(3));
        let mut w = JournalWriter::create(Vec::new(), &engine).unwrap();
        let t = trace();
        w.append_batch(0, &t.arrivals()[..2]).unwrap();
        w.append_batch(5, &t.arrivals()[2..4]).unwrap(); // gap: 1 → 5
        let bytes = w.into_inner().unwrap();
        let err = Journal::from_reader(&mut std::io::Cursor::new(bytes)).unwrap_err();
        assert!(matches!(err, JournalError::Mismatch(_)), "{err:?}");
    }

    #[test]
    fn kill_and_recover_replays_bit_identically_under_churn() {
        let t = trace();
        let config = churned_config();
        // Reference: the run that never crashes.
        let mut reference = ServeEngine::new(table(), config);
        let mut src = t.stream();
        let mut sink = JournalWriter::create(Vec::new(), &reference).unwrap();
        run_journaled(
            &mut reference,
            &mut src,
            f64::INFINITY,
            &mut sink,
            RunControls::default(),
        )
        .unwrap();
        // Crashed run: snapshot at 40, killed at 90 of ~135 arrivals.
        let mut crashed = ServeEngine::new(table(), config);
        let mut src = t.stream();
        let mut journal = JournalWriter::create(Vec::new(), &crashed).unwrap();
        let outcome = run_journaled(
            &mut crashed,
            &mut src,
            f64::INFINITY,
            &mut journal,
            RunControls {
                snapshot_at: Some(40),
                kill_after: Some(90),
            },
        )
        .unwrap();
        assert!(outcome.killed);
        assert_eq!(outcome.ingested, 90);
        let snap = outcome.snapshot.expect("snapshot boundary was reached");
        assert_eq!(snap.seq, 40);
        // Recover from snapshot + journal, resume the workload where the
        // journal ends, drain, and compare against the unfaulted run.
        let journal =
            Journal::from_reader(&mut std::io::Cursor::new(journal.into_inner().unwrap())).unwrap();
        let mut recovered = recover(table(), config, &snap, &journal).unwrap();
        assert_eq!(recovered.ingested(), 90);
        let rest: Vec<Arrival> = t.arrivals()[90..].to_vec();
        recovered.ingest_batch(&rest);
        recovered.drain();
        assert_eq!(recovered.decision_digest(), reference.decision_digest());
        assert_eq!(recovered.metrics_total(), reference.metrics_total());
    }

    #[test]
    fn hot_swap_replay_from_journal_is_bit_identical_to_live() {
        use eirs_sim::policy::InelasticFirst;
        let t = trace();
        let config = EngineConfig::new(2).route_shards(3).batch(8);
        let compile = |spec: &str| -> Result<CompiledTable, String> {
            match spec {
                "fs" => Ok(CompiledTable::compile(Box::new(FairShare), 2, 16, 16)),
                "if" => Ok(CompiledTable::compile(Box::new(InelasticFirst), 2, 12, 12)),
                other => Err(format!("unknown spec '{other}'")),
            }
        };
        // Live run: boot on fair-share, hot-swap to inelastic-first at
        // arrival 50, journaling both the arrivals and the swap.
        let mut live = ServeEngine::new(compile("fs").unwrap(), config);
        let mut w = JournalWriter::create_with_spec(Vec::new(), &live, Some("fs")).unwrap();
        let arrivals = t.arrivals();
        for (n, chunk) in [&arrivals[..50], &arrivals[50..]].into_iter().enumerate() {
            if n == 1 {
                let rec = live.install_table(compile("if").unwrap(), "if");
                assert_eq!((rec.seq, rec.generation), (50, 1));
                w.append_swap(&rec).unwrap();
            }
            w.append_batch(live.ingested(), chunk).unwrap();
            live.ingest_batch(chunk);
        }
        live.drain();
        assert_eq!(live.generation(), 1);
        // Replay from the journal alone — different batch size AND a
        // different grid for the swapped table (decisions are
        // grid-size-invariant, so the digest must not care).
        let journal =
            Journal::from_reader(&mut std::io::Cursor::new(w.into_inner().unwrap())).unwrap();
        assert_eq!(journal.policy_spec.as_deref(), Some("fs"));
        assert_eq!(journal.swaps.len(), 1);
        let mut replayed = replay_journal(config.batch(32), &journal, &compile).unwrap();
        replayed.drain();
        assert_eq!(replayed.decision_digest(), live.decision_digest());
        assert_eq!(replayed.metrics_total(), live.metrics_total());
        assert_eq!(replayed.generation(), 1);
        // A compiler that resolves the swap spec to a different policy
        // is caught by the journaled identity hash.
        let lying = |spec: &str| -> Result<CompiledTable, String> {
            match spec {
                "fs" => compile("fs"),
                _ => compile("fs"), // claims "if", compiles fair-share
            }
        };
        let err = replay_journal(config, &journal, &lying)
            .err()
            .expect("lying compiler");
        assert!(
            matches!(&err, JournalError::Mismatch(m) if m.contains("hashes to")),
            "{err:?}"
        );
    }

    #[test]
    fn recover_refuses_a_mismatched_generation_schedule() {
        let t = trace();
        let config = EngineConfig::new(2).route_shards(3).batch(8);
        let compile = |spec: &str| -> Result<CompiledTable, String> {
            match spec {
                "fs" => Ok(CompiledTable::compile(Box::new(FairShare), 2, 16, 16)),
                other => Err(format!("unknown spec '{other}'")),
            }
        };
        let mut engine = ServeEngine::new(compile("fs").unwrap(), config);
        let mut w = JournalWriter::create_with_spec(Vec::new(), &engine, Some("fs")).unwrap();
        let arrivals = t.arrivals();
        w.append_batch(0, &arrivals[..40]).unwrap();
        engine.ingest_batch(&arrivals[..40]);
        let snap = engine.snapshot();
        assert_eq!(snap.generation, 0);
        w.append_batch(40, &arrivals[40..60]).unwrap();
        engine.ingest_batch(&arrivals[40..60]);
        let journal =
            Journal::from_reader(&mut std::io::Cursor::new(w.into_inner().unwrap())).unwrap();
        // Doctor the journal so it claims a swap happened before the
        // snapshot: recover must refuse the schedule, not replay across
        // a policy the snapshot never served.
        let mut doctored = journal.clone();
        doctored.swaps.push(SwapRecord {
            seq: 20,
            generation: 1,
            hash: 123,
            spec: "fs".into(),
        });
        let err = recover(compile("fs").unwrap(), config, &snap, &doctored)
            .err()
            .expect("doctored");
        assert!(
            matches!(&err, JournalError::Mismatch(m) if m.contains("generation schedules")),
            "{err:?}"
        );
        // The undoctored journal recovers fine, and a post-snapshot
        // swap is replayed through recover_with at its exact seq.
        let recovered = recover(compile("fs").unwrap(), config, &snap, &journal).unwrap();
        assert_eq!(recovered.ingested(), 60);
    }

    #[test]
    fn recover_with_replays_post_snapshot_swaps_bit_identically() {
        use eirs_sim::policy::InelasticFirst;
        let t = trace();
        let config = EngineConfig::new(2).route_shards(3).batch(8);
        let compile = |spec: &str| -> Result<CompiledTable, String> {
            match spec {
                "fs" => Ok(CompiledTable::compile(Box::new(FairShare), 2, 16, 16)),
                "if" => Ok(CompiledTable::compile(Box::new(InelasticFirst), 2, 16, 16)),
                other => Err(format!("unknown spec '{other}'")),
            }
        };
        let arrivals = trace_arrivals(&t);
        // Live: snapshot at 30, swap at 55, crash at 80.
        let mut live = ServeEngine::new(compile("fs").unwrap(), config);
        let mut w = JournalWriter::create_with_spec(Vec::new(), &live, Some("fs")).unwrap();
        w.append_batch(0, &arrivals[..30]).unwrap();
        live.ingest_batch(&arrivals[..30]);
        let snap = live.snapshot();
        w.append_batch(30, &arrivals[30..55]).unwrap();
        live.ingest_batch(&arrivals[30..55]);
        let rec = live.install_table(compile("if").unwrap(), "if");
        w.append_swap(&rec).unwrap();
        w.append_batch(55, &arrivals[55..80]).unwrap();
        live.ingest_batch(&arrivals[55..80]);
        // Reference continues to the end without crashing.
        live.ingest_batch(&arrivals[80..]);
        live.drain();
        let journal =
            Journal::from_reader(&mut std::io::Cursor::new(w.into_inner().unwrap())).unwrap();
        // Plain recover refuses the post-snapshot swap...
        let err = recover(compile("fs").unwrap(), config, &snap, &journal)
            .err()
            .expect("swap refused");
        assert!(
            matches!(&err, JournalError::Mismatch(m) if m.contains("recover_with")),
            "{err:?}"
        );
        // ...recover_with replays it and continues bit-identically.
        let mut recovered = recover_with(compile("fs").unwrap(), config, &snap, &journal, &|r| {
            compile(&r.spec)
        })
        .unwrap();
        assert_eq!(recovered.ingested(), 80);
        assert_eq!(recovered.generation(), 1);
        recovered.ingest_batch(&arrivals[80..]);
        recovered.drain();
        assert_eq!(recovered.decision_digest(), live.decision_digest());
        assert_eq!(recovered.metrics_total(), live.metrics_total());
    }

    fn trace_arrivals(t: &ArrivalTrace) -> Vec<Arrival> {
        t.arrivals().to_vec()
    }

    #[test]
    fn recover_rejects_identity_mismatches() {
        let t = trace();
        let config = churned_config();
        let mut engine = ServeEngine::new(table(), config);
        let mut src = t.stream();
        let mut w = JournalWriter::create(Vec::new(), &engine).unwrap();
        let outcome = run_journaled(
            &mut engine,
            &mut src,
            f64::INFINITY,
            &mut w,
            RunControls {
                snapshot_at: Some(20),
                kill_after: Some(30),
            },
        )
        .unwrap();
        let snap = outcome.snapshot.unwrap();
        let journal =
            Journal::from_reader(&mut std::io::Cursor::new(w.into_inner().unwrap())).unwrap();
        // A journal whose churn identity disagrees with the snapshot.
        let mut other = journal.clone();
        other.churn = None;
        assert!(matches!(
            recover(table(), config, &snap, &other),
            Err(JournalError::Mismatch(_))
        ));
        // A journal that starts after the snapshot's seq: unrecoverable gap.
        let mut gapped = journal.clone();
        gapped.entries.retain(|e| e.seq >= 25);
        assert!(matches!(
            recover(table(), config, &snap, &gapped),
            Err(JournalError::Mismatch(_))
        ));
    }
}
