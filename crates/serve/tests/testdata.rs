//! The bundled `testdata/smoke.trace` consumed by the CI determinism
//! gate (`eirs serve --workload trace:crates/serve/testdata/smoke.trace`
//! with 1 and 4 shard workers must produce the same decision digest).
//!
//! The checked-in file is a frozen artifact; the ignored test below
//! regenerates it (`cargo test -p eirs-serve regenerate -- --ignored`)
//! and the live test pins that the committed bytes still parse and
//! replay deterministically.

use eirs_queueing::Exponential;
use eirs_serve::{CompiledTable, EngineConfig, ServeEngine};
use eirs_sim::arrivals::ArrivalTrace;
use eirs_sim::policy::SwitchingCurvePolicy;
use std::path::Path;

fn smoke_trace() -> ArrivalTrace {
    ArrivalTrace::record_poisson(
        0.9,
        0.6,
        Box::new(Exponential::new(1.0)),
        Box::new(Exponential::new(0.8)),
        2024,
        160.0,
    )
}

fn testdata_path() -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("testdata/smoke.trace")
}

#[test]
#[ignore = "regenerates the committed testdata/smoke.trace"]
fn regenerate_smoke_trace() {
    let path = testdata_path();
    std::fs::create_dir_all(path.parent().unwrap()).unwrap();
    smoke_trace().save(&path).unwrap();
}

#[test]
fn bundled_smoke_trace_replays_identically_across_worker_counts() {
    let trace = ArrivalTrace::load(&testdata_path()).expect("bundled trace parses");
    assert!(trace.len() > 100, "smoke trace too small: {}", trace.len());
    assert_eq!(
        trace,
        smoke_trace(),
        "committed trace drifted from its recipe"
    );
    let digest_with = |workers: usize| {
        let table = CompiledTable::compile(
            Box::new(SwitchingCurvePolicy {
                intercept: 2,
                slope: 0.5,
            }),
            4,
            32,
            32,
        );
        let mut engine =
            ServeEngine::new(table, EngineConfig::new(4).route_shards(4).workers(workers));
        let mut source = trace.stream();
        engine.run(&mut source, f64::INFINITY);
        engine.decision_digest()
    };
    assert_eq!(digest_with(1), digest_with(4));
}
