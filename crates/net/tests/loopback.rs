//! End-to-end loopback tests: server + client over 127.0.0.1, checked
//! against the offline engine for bit-identical digests and exact
//! accounting.

use eirs_core::policy::parse_policy;
use eirs_net::{run_client, serve, ClientConfig, NetConfig, ServeReport, SwapTrigger};
use eirs_serve::{
    replay_journal, CompiledTable, EngineConfig, Journal, JournalWriter, ServeEngine,
};
use eirs_sim::{Arrival, JobClass};
use std::net::TcpListener;

const K: u32 = 3;
const GRID: usize = 16;

fn compile(spec: &str) -> Result<CompiledTable, String> {
    Ok(CompiledTable::compile(parse_policy(spec)?, K, GRID, GRID))
}

fn config() -> EngineConfig {
    EngineConfig::new(K).route_shards(4).batch(32)
}

/// A deterministic, time-ordered workload mixing both classes.
fn workload(n: usize) -> Vec<Arrival> {
    (0..n)
        .map(|i| Arrival {
            time: i as f64 * 0.05,
            class: if i % 3 == 0 {
                JobClass::Elastic
            } else {
                JobClass::Inelastic
            },
            size: 0.4 + 0.1 * ((i % 7) as f64),
        })
        .collect()
}

/// Runs server and client over loopback, returning both reports.
fn loopback_run(
    arrivals: &[Arrival],
    net: NetConfig,
    swaps: Vec<SwapTrigger>,
    client: ClientConfig,
    journal_path: Option<&std::path::Path>,
) -> (ServeReport, eirs_net::ClientReport) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("local addr").to_string();
    let engine = ServeEngine::new(compile("fairshare").unwrap(), config());
    let journal = journal_path.map(|p| {
        let file = std::fs::File::create(p).expect("journal file");
        JournalWriter::create_with_spec(
            Box::new(file) as Box<dyn std::io::Write + Send>,
            &engine,
            Some("fairshare"),
        )
        .expect("journal header")
    });
    std::thread::scope(|scope| {
        let server = scope
            .spawn(move || serve(listener, engine, journal, swaps, net, &compile).expect("serve"));
        let client_report = run_client(&addr, arrivals, &client).expect("client");
        (server.join().expect("server thread"), client_report)
    })
}

#[test]
fn networked_run_matches_the_offline_engine_bit_for_bit() {
    let arrivals = workload(150);
    let (report, client) = loopback_run(
        &arrivals,
        NetConfig::default(),
        Vec::new(),
        ClientConfig {
            clients: 1,
            swap: None,
        },
        None,
    );
    // Offline reference: the same arrivals through a bare engine.
    let mut offline = ServeEngine::new(compile("fairshare").unwrap(), config());
    offline.ingest_batch(&arrivals);
    offline.drain();
    assert_eq!(report.digest, offline.decision_digest(), "digest drift");
    assert_eq!(report.ingested, 150);
    assert_eq!(report.client_arrivals, 150);
    assert_eq!(report.completions, offline.metrics_total().completions);
    assert!(report.accounting_balanced(), "{report:?}");
    assert_eq!(client.decisions, 150);
    assert_eq!(client.admitted, 150);
    assert_eq!(client.latency.count(), 150);
    assert_eq!(report.protocol_errors, 0);
}

#[test]
fn multi_connection_run_keeps_exact_accounting() {
    let arrivals = workload(200);
    let (report, client) = loopback_run(
        &arrivals,
        NetConfig::default(),
        Vec::new(),
        ClientConfig {
            clients: 4,
            swap: None,
        },
        None,
    );
    // Interleaving across 4 connections makes the global order
    // nondeterministic (the digest varies run to run), but accounting
    // must stay exact.
    assert_eq!(report.connections, 4);
    assert_eq!(report.client_arrivals, 200);
    assert_eq!(report.ingested, 200);
    assert!(report.accounting_balanced(), "{report:?}");
    assert_eq!(client.decisions, 200);
    assert_eq!(client.latency.count(), 200);
}

#[test]
fn control_frame_hot_swap_journals_and_replays_bit_identically() {
    let arrivals = workload(160);
    let dir = std::env::temp_dir().join("eirs_net_swap_replay");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("live.wal");
    let (report, client) = loopback_run(
        &arrivals,
        NetConfig::default(),
        Vec::new(),
        ClientConfig {
            clients: 1,
            swap: Some((80, "if".into())),
        },
        Some(&path),
    );
    assert_eq!(report.generation, 1, "{:?}", report.swap_errors);
    assert_eq!(report.swaps.len(), 1);
    assert_eq!(report.swaps[0].spec, "if");
    // The swap barrier is >= the request index: request 80 is routed
    // before the control frame on the same connection.
    assert!(report.swaps[0].seq >= 80, "swap at {}", report.swaps[0].seq);
    assert_eq!(client.max_generation, 1);
    assert_eq!(client.control_replies.len(), 1);
    assert!(
        client.control_replies[0].contains("swap to 'if'"),
        "{:?}",
        client.control_replies
    );

    // Replaying the journal alone reproduces the live digest exactly.
    let journal = Journal::load(&path).expect("load journal");
    let mut replayed = replay_journal(config(), &journal, &|spec| compile(spec)).expect("replay");
    replayed.drain();
    assert_eq!(replayed.decision_digest(), report.digest, "replay drift");
    assert_eq!(replayed.generation(), 1);
    assert_eq!(replayed.swap_log(), &report.swaps[..]);
    std::fs::remove_file(&path).ok();
}

#[test]
fn cli_scheduled_swap_fires_at_the_exact_sequence_barrier() {
    let arrivals = workload(120);
    let (report, client) = loopback_run(
        &arrivals,
        NetConfig::default(),
        vec![SwapTrigger {
            at_seq: 50,
            spec: "threshold:2".into(),
        }],
        ClientConfig {
            clients: 1,
            swap: None,
        },
        None,
    );
    assert_eq!(report.generation, 1, "{:?}", report.swap_errors);
    assert_eq!(report.swaps[0].seq, 50);
    assert_eq!(report.swaps[0].spec, "threshold:2");
    assert_eq!(client.max_generation, 1);
    // A single-connection in-order run is reproducible offline with the
    // same swap at the same barrier.
    let mut offline = ServeEngine::new(compile("fairshare").unwrap(), config());
    offline.ingest_batch(&arrivals[..50]);
    offline.install_table(compile("threshold:2").unwrap(), "threshold:2");
    offline.ingest_batch(&arrivals[50..]);
    offline.drain();
    assert_eq!(
        report.digest,
        offline.decision_digest(),
        "swap barrier drift"
    );
}

#[test]
fn observe_reoptimize_hot_swap_installs_a_tuned_policy() {
    // Spread the arrivals out so the observed per-shard load is
    // feasible (ρ < 1) — an overloaded estimate is refused by design.
    let mut arrivals = workload(140);
    for (i, a) in arrivals.iter_mut().enumerate() {
        a.time = i as f64 * 0.8;
    }
    let (report, client) = loopback_run(
        &arrivals,
        NetConfig::default(),
        vec![SwapTrigger {
            at_seq: 100,
            spec: "optimize:threshold".into(),
        }],
        ClientConfig {
            clients: 1,
            swap: None,
        },
        None,
    );
    assert_eq!(report.generation, 1, "{:?}", report.swap_errors);
    let installed = &report.swaps[0];
    assert_eq!(installed.seq, 100);
    assert!(
        installed.spec.starts_with("threshold:"),
        "re-optimized spec '{}'",
        installed.spec
    );
    assert_eq!(client.max_generation, 1);
    assert!(report.accounting_balanced());
}

#[test]
fn shed_mode_refuses_overload_with_exact_accounting() {
    let arrivals = workload(300);
    let (report, client) = loopback_run(
        &arrivals,
        NetConfig {
            queue_cap: 1,
            batch: 1,
            shed: true,
            ..NetConfig::default()
        },
        Vec::new(),
        ClientConfig {
            clients: 3,
            swap: None,
        },
        None,
    );
    assert_eq!(report.client_arrivals, 300);
    assert_eq!(report.ingested + report.net_sheds, 300);
    assert!(report.accounting_balanced(), "{report:?}");
    // Every request got exactly one decision, shed or served.
    assert_eq!(client.decisions, 300);
    assert_eq!(client.net_sheds, report.net_sheds);
    assert_eq!(
        client.admitted + client.net_sheds + client.engine_rejections,
        300
    );
}

#[test]
fn bad_control_command_tears_the_connection_down_with_an_error_frame() {
    let arrivals = workload(10);
    let (report, client) = loopback_run(
        &arrivals,
        NetConfig::default(),
        Vec::new(),
        ClientConfig {
            clients: 1,
            swap: Some((5, "bogus@policy!!".into())),
        },
        None,
    );
    // The swap spec does not compile: the server answers with an ERROR
    // frame and closes; arrivals routed before the control frame are
    // still decided and accounted.
    assert_eq!(report.generation, 0);
    assert_eq!(report.protocol_errors, 1);
    assert_eq!(client.server_errors.len(), 1, "{:?}", client.server_errors);
    assert!(report.accounting_balanced(), "{report:?}");
}
