//! The serving front end: a blocking TCP accept loop feeding per-shard
//! bounded queues into a [`ServeEngine`], with atomic policy hot-swap.
//!
//! ## Data path
//!
//! ```text
//! conn 0 ─ reader ─┐                 ┌─ queue[0] ─┐
//! conn 1 ─ reader ─┼─▶ router lock ──┼─ queue[1] ─┼─▶ engine loop ─▶ decision
//! conn N ─ reader ─┘   (seq, WAL)    └─ queue[s] ─┘   (batched)       frames
//! ```
//!
//! Reader threads decode [`Frame::Arrival`]s and hand them to the
//! **router**: one mutex that assigns the global arrival sequence
//! number, clamps the stream clock to its running maximum (multiple
//! connections interleave arbitrary workload clocks), appends the
//! arrival to the write-ahead journal, and pushes it onto the queue of
//! the shard that owns the sequence number ([`route_for`]). Because
//! assignment and push happen under one lock, each queue sees strictly
//! increasing sequence numbers and the engine loop can merge the queues
//! back into the exact global order by always taking the smallest head.
//!
//! A full queue exerts **backpressure** (the router blocks, which
//! blocks that reader's TCP stream) or, with [`NetConfig::shed`],
//! **sheds**: the arrival is refused *before* a sequence number is
//! assigned, a not-admitted decision frame goes straight back, and the
//! engine/journal/digest never see the arrival — so accounting stays
//! exact: `completions + engine rejections + net sheds = client
//! arrivals`.
//!
//! ## Hot swap
//!
//! A swap is requested by a [`Frame::Control`] `swap <spec>` command or
//! scheduled up front (CLI `--swap-policy`/`--swap-at`). Each request
//! pins a barrier sequence number; the engine loop never ingests across
//! a barrier. At the barrier it builds the new table — compiling `spec`
//! directly, or for `optimize:<family>` re-running the optimizer
//! against the engine's live observed per-class arrival rates — then
//! journals the [`SwapRecord`] (write-ahead: before any arrival is
//! served under the new generation) and installs it. Replaying the
//! journal reproduces the swap at the same sequence number and the
//! decision digest bit for bit.

use crate::protocol::{encode_frame, read_frame, read_magic, write_magic, Frame};
use crate::queue::BoundedQueue;
use eirs_obs::{publish_histogram, LatencyHistogram, LazyCounter};
use eirs_opt::optim::Budget;
use eirs_opt::reoptimize::{reoptimize, ObservedLoad};
use eirs_opt::space::parse_family;
use eirs_serve::metrics::ShardMetrics;
use eirs_serve::{route_for, CompiledTable, JournalWriter, ServeEngine, SwapRecord};
use eirs_sim::Arrival;
use std::collections::BTreeMap;
use std::io::Write;
use std::net::{Shutdown, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

static NET_CONNECTIONS: LazyCounter = LazyCounter::new("net.connections");
static NET_FRAMES_IN: LazyCounter = LazyCounter::new("net.frames_in");
static NET_FRAMES_OUT: LazyCounter = LazyCounter::new("net.frames_out");
static NET_BYTES_OUT: LazyCounter = LazyCounter::new("net.bytes_out");
static NET_ARRIVALS: LazyCounter = LazyCounter::new("net.arrivals");
static NET_SHEDS: LazyCounter = LazyCounter::new("net.sheds");
static NET_PROTOCOL_ERRORS: LazyCounter = LazyCounter::new("net.protocol_errors");
static NET_TIME_CLAMPED: LazyCounter = LazyCounter::new("net.time_clamped");
static SWAP_COUNT: LazyCounter = LazyCounter::new("swap.count");
static SWAP_FAILED: LazyCounter = LazyCounter::new("swap.failed");

/// Compiles a parseable policy spec into a serving table (supplied by
/// the CLI so the net layer stays agnostic of spec grammars and grid
/// sizing).
pub type CompileFn = dyn Fn(&str) -> Result<CompiledTable, String> + Send + Sync;

/// Front-end shape: queue capacity, engine batching, overload behavior,
/// and re-optimization parameters.
#[derive(Debug, Clone, Copy)]
pub struct NetConfig {
    /// Per-shard ingest queue capacity (backpressure threshold).
    pub queue_cap: usize,
    /// Max arrivals per engine ingestion round.
    pub batch: usize,
    /// `true`: a full shard queue sheds the arrival (not-admitted
    /// decision, never enters the stream). `false`: the router blocks,
    /// back-pressuring the client connection.
    pub shed: bool,
    /// Model parameters for `optimize:<family>` swaps.
    pub reopt: ReoptSettings,
}

impl Default for NetConfig {
    fn default() -> Self {
        Self {
            queue_cap: 1024,
            batch: 256,
            shed: false,
            reopt: ReoptSettings::default(),
        }
    }
}

/// Service-rate model and search budget for `optimize:<family>` swaps
/// (arrival rates come from the live engine; service rates cannot be
/// observed from arrivals alone, so the operator supplies them).
#[derive(Debug, Clone, Copy)]
pub struct ReoptSettings {
    /// Inelastic service rate `µ_I`.
    pub mu_inelastic: f64,
    /// Elastic service rate `µ_E`.
    pub mu_elastic: f64,
    /// Optimizer evaluation budget.
    pub max_evals: usize,
    /// Optimizer seed.
    pub seed: u64,
}

impl Default for ReoptSettings {
    fn default() -> Self {
        Self {
            mu_inelastic: 1.0,
            mu_elastic: 1.0,
            max_evals: 60,
            seed: 1,
        }
    }
}

/// A swap scheduled before the server starts (CLI `--swap-policy` +
/// `--swap-at`).
#[derive(Debug, Clone)]
pub struct SwapTrigger {
    /// Global arrival sequence number to swap at. Arrivals `< at_seq`
    /// are decided by the old generation. If the stream ends earlier,
    /// the swap takes effect at end of stream (and is journaled at the
    /// actual barrier).
    pub at_seq: u64,
    /// Policy spec to install, or `optimize:<family>` to re-optimize
    /// from observed traffic at the barrier.
    pub spec: String,
}

/// What a serving session did, end to end.
#[derive(Debug)]
pub struct ServeReport {
    /// Connections accepted.
    pub connections: usize,
    /// Arrival frames received from clients.
    pub client_arrivals: u64,
    /// Arrivals that entered the stream (assigned a sequence number).
    pub ingested: u64,
    /// Arrivals shed at the router (full queue under
    /// [`NetConfig::shed`]); never entered the stream.
    pub net_sheds: u64,
    /// Arrivals the engine's degraded-mode admission control rejected.
    pub engine_rejections: u64,
    /// Jobs completed after the final drain.
    pub completions: u64,
    /// The engine's decision digest.
    pub digest: u64,
    /// Final policy generation.
    pub generation: u32,
    /// The generation schedule (ordered swap records).
    pub swaps: Vec<SwapRecord>,
    /// Wall-clock pause of each swap barrier (compile + install).
    pub swap_pause_seconds: Vec<f64>,
    /// Swaps that failed (bad spec at the barrier, infeasible observed
    /// load, ...); the old policy kept serving.
    pub swap_errors: Vec<String>,
    /// Protocol errors that tore down connections.
    pub protocol_errors: u64,
    /// Journal append failures (journaling stops at the first one).
    pub journal_errors: Vec<String>,
    /// Merged engine metrics after the final drain.
    pub totals: ShardMetrics,
}

impl ServeReport {
    /// The exact-accounting identity the front end guarantees:
    /// `completions + engine rejections + net sheds = client arrivals`.
    pub fn accounting_balanced(&self) -> bool {
        self.completions + self.engine_rejections + self.net_sheds == self.client_arrivals
    }
}

/// One arrival in flight between the router and the engine loop.
struct Routed {
    seq: u64,
    arrival: Arrival,
    conn: usize,
    req_id: u64,
}

/// A requested swap pinned to its barrier sequence number.
struct PendingSwap {
    at_seq: u64,
    spec: String,
    /// Pre-compiled at request time for plain specs; `optimize:` swaps
    /// compile at the barrier (they need the metrics observed *then*).
    table: Option<CompiledTable>,
}

/// Router state: everything that must change atomically per arrival.
struct Router {
    next_seq: u64,
    time_max: f64,
    client_arrivals: u64,
    net_sheds: u64,
    protocol_errors: u64,
    journal: Option<JournalWriter<Box<dyn Write + Send>>>,
    journal_errors: Vec<String>,
    swap_errors: Vec<String>,
    pending: Vec<PendingSwap>,
}

/// One accepted connection's write half and accounting.
struct Conn {
    stream: TcpStream,
    outstanding: u64,
    reader_done: bool,
    closed: bool,
}

struct Shared<'a> {
    router: Mutex<Router>,
    queues: Vec<BoundedQueue<Routed>>,
    registry: Mutex<Vec<Conn>>,
    conns_seen: AtomicUsize,
    stop: AtomicBool,
    shed: bool,
    k: u32,
    route_shards: usize,
    compile: &'a CompileFn,
}

/// Writes `frame` to connection `conn` (serialized by the registry
/// lock); a failed write closes the connection.
fn conn_write(shared: &Shared<'_>, conn: usize, frame: &Frame) {
    let mut reg = shared.registry.lock().expect("registry poisoned");
    let c = &mut reg[conn];
    if c.closed {
        return;
    }
    let bytes = encode_frame(frame);
    NET_FRAMES_OUT.inc();
    NET_BYTES_OUT.add(bytes.len() as u64);
    if c.stream
        .write_all(&bytes)
        .and_then(|()| c.stream.flush())
        .is_err()
    {
        c.closed = true;
        let _ = c.stream.shutdown(Shutdown::Both);
    }
}

/// Routes one decoded arrival: assign seq, clamp time, journal, queue.
/// Returns the shed decision frame to send, if the arrival was shed.
/// The not-admitted decision for an arrival refused before it entered
/// the stream (full queue under `shed`, or the server is stopping):
/// no sequence number, no shard, no journal line.
fn shed_frame(req_id: u64) -> Frame {
    Frame::Decision {
        req_id,
        seq: u64::MAX,
        shard: u32::MAX,
        i: 0,
        j: 0,
        generation: 0, // shed before the stream: generation is moot
        alloc_inelastic: 0.0,
        alloc_elastic: 0.0,
        admitted: false,
    }
}

fn route_arrival(
    shared: &Shared<'_>,
    conn: usize,
    req_id: u64,
    mut arrival: Arrival,
) -> Option<Frame> {
    let mut r = shared.router.lock().expect("router poisoned");
    r.client_arrivals += 1;
    NET_ARRIVALS.inc();
    // Shutdown is decided under this same lock (see the engine loop),
    // so a set stop flag here means the queues are already closed: shed
    // instead of journaling an arrival the engine will never ingest.
    if shared.stop.load(Ordering::SeqCst) {
        r.net_sheds += 1;
        NET_SHEDS.inc();
        return Some(shed_frame(req_id));
    }
    if arrival.time < r.time_max {
        arrival.time = r.time_max;
        NET_TIME_CLAMPED.inc();
    } else {
        r.time_max = arrival.time;
    }
    let seq = r.next_seq;
    let shard = route_for(seq, shared.route_shards);
    if shared.shed && shared.queues[shard].is_full() {
        r.net_sheds += 1;
        NET_SHEDS.inc();
        return Some(shed_frame(req_id));
    }
    // Write-ahead: the journal line lands (and flushes) before the
    // arrival can reach the engine.
    if let Some(journal) = r.journal.as_mut() {
        if let Err(e) = journal.append_batch(seq, &[arrival]) {
            r.journal_errors
                .push(format!("journal append at seq {seq}: {e}"));
            r.journal = None;
        }
    }
    {
        let mut reg = shared.registry.lock().expect("registry poisoned");
        reg[conn].outstanding += 1;
    }
    // Push while holding the router lock: queues see strictly
    // increasing seqs with no gaps. A full queue blocks here — that is
    // the backpressure path.
    if shared.queues[shard]
        .push(Routed {
            seq,
            arrival,
            conn,
            req_id,
        })
        .is_err()
    {
        // Only possible when the server is already shutting down.
        let mut reg = shared.registry.lock().expect("registry poisoned");
        reg[conn].outstanding -= 1;
        return None;
    }
    r.next_seq += 1;
    None
}

/// Handles a control command. Returns `false` when the command was
/// invalid and the connection must be torn down.
fn handle_control(shared: &Shared<'_>, conn: usize, cmd: &str) -> bool {
    let reject = |why: String| {
        NET_PROTOCOL_ERRORS.inc();
        shared
            .router
            .lock()
            .expect("router poisoned")
            .protocol_errors += 1;
        conn_write(shared, conn, &Frame::Error(why));
        false
    };
    let Some(spec) = cmd.strip_prefix("swap ") else {
        return reject(format!("unknown control command '{cmd}'"));
    };
    let spec = spec.trim().to_string();
    let table = if let Some(family) = spec.strip_prefix("optimize:") {
        if let Err(e) = parse_family(family, shared.k) {
            return reject(format!("cannot re-optimize '{family}': {e}"));
        }
        None
    } else {
        match (shared.compile)(&spec) {
            Ok(table) => Some(table),
            Err(e) => return reject(format!("cannot compile swap policy '{spec}': {e}")),
        }
    };
    let at_seq = {
        let mut r = shared.router.lock().expect("router poisoned");
        let at_seq = r.next_seq;
        r.pending.push(PendingSwap {
            at_seq,
            spec: spec.clone(),
            table,
        });
        at_seq
    };
    conn_write(
        shared,
        conn,
        &Frame::ControlOk(format!(
            "swap to '{spec}' scheduled at arrival seq {at_seq}"
        )),
    );
    true
}

/// One connection's read loop: handshake, then frames until BYE, EOF,
/// or a protocol error (terminal — the stream is never resynchronized).
fn run_reader(shared: &Shared<'_>, conn: usize, mut stream: TcpStream) {
    NET_CONNECTIONS.inc();
    // Echo the handshake before any other traffic can reach this
    // connection (nothing is routed for it yet, so the write half is
    // exclusively ours here).
    let ok = read_magic(&mut stream).is_ok() && write_magic(&mut stream).is_ok();
    if ok {
        loop {
            match read_frame(&mut stream) {
                Ok(None) => break,
                Ok(Some(frame)) => {
                    NET_FRAMES_IN.inc();
                    match frame {
                        Frame::Arrival {
                            req_id,
                            class,
                            time,
                            size,
                        } => {
                            let shed =
                                route_arrival(shared, conn, req_id, Arrival { time, class, size });
                            if let Some(frame) = shed {
                                conn_write(shared, conn, &frame);
                            }
                        }
                        Frame::Control(cmd) => {
                            if !handle_control(shared, conn, &cmd) {
                                break;
                            }
                        }
                        Frame::Bye => break,
                        other => {
                            NET_PROTOCOL_ERRORS.inc();
                            shared
                                .router
                                .lock()
                                .expect("router poisoned")
                                .protocol_errors += 1;
                            conn_write(
                                shared,
                                conn,
                                &Frame::Error(format!(
                                    "unexpected client frame {other:?}; closing"
                                )),
                            );
                            break;
                        }
                    }
                }
                Err(e) => {
                    NET_PROTOCOL_ERRORS.inc();
                    shared
                        .router
                        .lock()
                        .expect("router poisoned")
                        .protocol_errors += 1;
                    conn_write(shared, conn, &Frame::Error(e.to_string()));
                    break;
                }
            }
        }
    } else {
        NET_PROTOCOL_ERRORS.inc();
        shared
            .router
            .lock()
            .expect("router poisoned")
            .protocol_errors += 1;
    }
    shared.registry.lock().expect("registry poisoned")[conn].reader_done = true;
}

/// Sends BYE to (and closes) every connection whose reader finished and
/// whose decisions are all flushed.
fn close_finished(shared: &Shared<'_>) {
    let mut reg = shared.registry.lock().expect("registry poisoned");
    for c in reg.iter_mut() {
        if !c.closed && c.reader_done && c.outstanding == 0 {
            let bytes = encode_frame(&Frame::Bye);
            NET_FRAMES_OUT.inc();
            NET_BYTES_OUT.add(bytes.len() as u64);
            let _ = c.stream.write_all(&bytes).and_then(|()| c.stream.flush());
            let _ = c.stream.shutdown(Shutdown::Both);
            c.closed = true;
        }
    }
}

/// Builds the table for a pending swap at the barrier (the engine's
/// metrics are the ones observed *now*).
fn swap_table(
    shared: &Shared<'_>,
    engine: &ServeEngine,
    swap: PendingSwap,
    reopt: &ReoptSettings,
) -> Result<(CompiledTable, String), String> {
    if let Some(table) = swap.table {
        return Ok((table, swap.spec));
    }
    if let Some(family) = swap.spec.strip_prefix("optimize:") {
        let totals = engine.metrics_total();
        let stream_time: f64 = engine.metrics_per_shard().iter().map(|m| m.sim_time).sum();
        let load = ObservedLoad::from_counts(
            totals.arrivals_inelastic,
            totals.arrivals_elastic,
            stream_time,
        )?;
        let budget = Budget {
            max_evals: reopt.max_evals,
            seed: reopt.seed,
        };
        let outcome = reoptimize(
            family,
            shared.k,
            &load,
            reopt.mu_inelastic,
            reopt.mu_elastic,
            &budget,
        )?;
        let table = (shared.compile)(&outcome.spec)?;
        return Ok((table, outcome.spec));
    }
    let table = (shared.compile)(&swap.spec)?;
    Ok((table, swap.spec))
}

/// Installs one pending swap at the current barrier: build the table,
/// journal the record **write-ahead**, install. On failure the old
/// policy keeps serving and the error is reported.
fn perform_swap(
    shared: &Shared<'_>,
    engine: &mut ServeEngine,
    swap: PendingSwap,
    reopt: &ReoptSettings,
    report_pauses: &mut Vec<f64>,
) {
    let started = Instant::now();
    let requested = swap.spec.clone();
    match swap_table(shared, engine, swap, reopt) {
        Ok((table, spec)) => {
            let record = SwapRecord {
                seq: engine.ingested(),
                generation: engine.generation() + 1,
                hash: table.identity_hash(),
                spec: spec.clone(),
            };
            {
                let mut r = shared.router.lock().expect("router poisoned");
                if let Some(journal) = r.journal.as_mut() {
                    if let Err(e) = journal.append_swap(&record) {
                        r.journal_errors
                            .push(format!("journal swap at seq {}: {e}", record.seq));
                        r.journal = None;
                    }
                }
            }
            let installed = engine.install_table(table, &spec);
            debug_assert_eq!(installed, record, "journaled swap differs from installed");
            SWAP_COUNT.inc();
            let pause = started.elapsed().as_secs_f64();
            report_pauses.push(pause);
            let mut h = LatencyHistogram::new();
            h.record_seconds(pause);
            publish_histogram("swap.pause", &h);
        }
        Err(e) => {
            SWAP_FAILED.inc();
            shared
                .router
                .lock()
                .expect("router poisoned")
                .swap_errors
                .push(format!("swap to '{requested}' failed (policy kept): {e}"));
        }
    }
}

/// Serves connections on `listener` until at least one client has
/// connected and all clients have disconnected, then drains the engine
/// and reports. See the [module docs](self) for the data path.
///
/// `journal`, when given, receives the write-ahead log (header already
/// written by the caller via [`JournalWriter::create_with_spec`]).
/// `swaps` are CLI-scheduled hot-swaps; control frames can add more at
/// runtime. `compile` turns a policy spec into a serving table.
pub fn serve(
    listener: TcpListener,
    mut engine: ServeEngine,
    journal: Option<JournalWriter<Box<dyn Write + Send>>>,
    swaps: Vec<SwapTrigger>,
    config: NetConfig,
    compile: &CompileFn,
) -> Result<ServeReport, String> {
    assert_eq!(engine.ingested(), 0, "serve() needs a fresh engine");
    let route_shards = engine.config().route_shards;
    let shared = Shared {
        router: Mutex::new(Router {
            next_seq: 0,
            time_max: f64::NEG_INFINITY,
            client_arrivals: 0,
            net_sheds: 0,
            protocol_errors: 0,
            journal,
            journal_errors: Vec::new(),
            swap_errors: Vec::new(),
            pending: swaps
                .into_iter()
                .map(|s| PendingSwap {
                    at_seq: s.at_seq,
                    spec: s.spec,
                    table: None,
                })
                .collect(),
        }),
        queues: (0..route_shards)
            .map(|_| BoundedQueue::new(config.queue_cap))
            .collect(),
        registry: Mutex::new(Vec::new()),
        conns_seen: AtomicUsize::new(0),
        stop: AtomicBool::new(false),
        shed: config.shed,
        k: engine.config().k,
        route_shards,
        compile,
    };
    listener
        .set_nonblocking(true)
        .map_err(|e| format!("listener: {e}"))?;

    let mut swap_pauses = Vec::new();
    std::thread::scope(|scope| {
        let shared = &shared;
        // Accept loop: registers the write half, hands the read half to
        // a reader thread.
        scope.spawn(move || loop {
            match listener.accept() {
                Ok((stream, _peer)) => {
                    let reader = match stream.try_clone() {
                        Ok(r) => r,
                        Err(_) => continue,
                    };
                    let conn = {
                        let mut reg = shared.registry.lock().expect("registry poisoned");
                        reg.push(Conn {
                            stream,
                            outstanding: 0,
                            reader_done: false,
                            closed: false,
                        });
                        reg.len() - 1
                    };
                    shared.conns_seen.fetch_add(1, Ordering::SeqCst);
                    scope.spawn(move || run_reader(shared, conn, reader));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    if shared.stop.load(Ordering::SeqCst) {
                        break;
                    }
                    std::thread::sleep(Duration::from_millis(2));
                }
                Err(_) => break,
            }
        });

        // Engine loop: merge the shard queues back into global seq
        // order and ingest in batches, honoring swap barriers.
        let mut holdover: BTreeMap<u64, Routed> = BTreeMap::new();
        let mut scratch: Vec<Routed> = Vec::new();
        let mut next_expected: u64 = 0;
        loop {
            for q in &shared.queues {
                q.drain_into(&mut scratch, usize::MAX);
            }
            for item in scratch.drain(..) {
                holdover.insert(item.seq, item);
            }

            // Install every swap whose barrier is exactly here.
            loop {
                let due = {
                    let mut r = shared.router.lock().expect("router poisoned");
                    let idx = r.pending.iter().position(|p| p.at_seq <= next_expected);
                    idx.map(|i| r.pending.remove(i))
                };
                match due {
                    Some(swap) => {
                        perform_swap(shared, &mut engine, swap, &config.reopt, &mut swap_pauses)
                    }
                    None => break,
                }
            }
            // Never ingest across the earliest remaining barrier.
            let barrier = {
                let r = shared.router.lock().expect("router poisoned");
                r.pending.iter().map(|p| p.at_seq).min().unwrap_or(u64::MAX)
            };

            let mut batch: Vec<Routed> = Vec::new();
            while (batch.len() as u64) < config.batch as u64
                && next_expected + batch.len() as u64 != barrier
            {
                match holdover.remove(&(next_expected + batch.len() as u64)) {
                    Some(item) => batch.push(item),
                    None => break,
                }
            }
            if !batch.is_empty() {
                let arrivals: Vec<Arrival> = batch.iter().map(|b| b.arrival).collect();
                let acks = engine.ingest_batch_admissions(&arrivals);
                next_expected += batch.len() as u64;
                let mut reg = shared.registry.lock().expect("registry poisoned");
                for (routed, ack) in batch.iter().zip(&acks) {
                    let c = &mut reg[routed.conn];
                    c.outstanding -= 1;
                    if c.closed {
                        continue;
                    }
                    let bytes = encode_frame(&Frame::Decision {
                        req_id: routed.req_id,
                        seq: routed.seq,
                        shard: ack.shard as u32,
                        i: ack.i as u32,
                        j: ack.j as u32,
                        generation: ack.generation,
                        alloc_inelastic: ack.allocation.inelastic,
                        alloc_elastic: ack.allocation.elastic,
                        admitted: ack.admitted,
                    });
                    NET_FRAMES_OUT.inc();
                    NET_BYTES_OUT.add(bytes.len() as u64);
                    if c.stream
                        .write_all(&bytes)
                        .and_then(|()| c.stream.flush())
                        .is_err()
                    {
                        c.closed = true;
                        let _ = c.stream.shutdown(Shutdown::Both);
                    }
                }
                continue;
            }

            close_finished(shared);
            let all_closed = {
                let reg = shared.registry.lock().expect("registry poisoned");
                !reg.is_empty() && reg.iter().all(|c| c.closed)
            };
            if all_closed && holdover.is_empty() {
                // Decide shutdown under the router lock: route_arrival
                // holds that lock across its whole admit→journal→queue
                // sequence, so nothing can land in a queue between this
                // emptiness check and the close. A connection racing
                // the stop from here on is shed, not journaled (see
                // route_arrival), so the journal stays an exact record
                // of what the engine ingested.
                let decided = {
                    let _r = shared.router.lock().expect("router poisoned");
                    let empty = shared.queues.iter().all(|q| q.is_empty());
                    if empty {
                        shared.stop.store(true, Ordering::SeqCst);
                        for q in &shared.queues {
                            q.close();
                        }
                    }
                    empty
                };
                if !decided {
                    continue; // late arrivals landed; keep serving them
                }
                // End-of-stream barrier: remaining swaps (scheduled past
                // the last arrival) take effect here, in order.
                loop {
                    let due = {
                        let mut r = shared.router.lock().expect("router poisoned");
                        if r.pending.is_empty() {
                            None
                        } else {
                            Some(r.pending.remove(0))
                        }
                    };
                    match due {
                        Some(swap) => {
                            perform_swap(shared, &mut engine, swap, &config.reopt, &mut swap_pauses)
                        }
                        None => break,
                    }
                }
                break;
            }
            std::thread::sleep(Duration::from_micros(200));
        }
        shared.stop.store(true, Ordering::SeqCst);
    });

    engine.drain();
    let totals = engine.metrics_total();
    let r = shared.router.into_inner().expect("router poisoned");
    if let Some(journal) = r.journal {
        journal
            .into_inner()
            .map_err(|e| format!("journal close: {e}"))?;
    }
    Ok(ServeReport {
        connections: shared.conns_seen.load(Ordering::SeqCst),
        client_arrivals: r.client_arrivals,
        ingested: engine.ingested(),
        net_sheds: r.net_sheds,
        engine_rejections: totals.rejections,
        completions: totals.completions,
        digest: engine.decision_digest(),
        generation: engine.generation(),
        swaps: engine.swap_log().to_vec(),
        swap_pause_seconds: swap_pauses,
        swap_errors: r.swap_errors,
        protocol_errors: r.protocol_errors,
        journal_errors: r.journal_errors,
        totals,
    })
}
