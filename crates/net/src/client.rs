//! The load-generating client: drives a serving front end over N
//! concurrent connections and measures per-request wall-clock latency.
//!
//! The workload (a time-ordered arrival list) is split round-robin by
//! arrival index across the connections; each arrival's global index is
//! its request id, so decisions can be matched back regardless of
//! arrival order on the wire. Every connection pipelines: a writer
//! streams arrivals without waiting while a receiver thread drains
//! decision frames, recording the send→decision wall-clock latency of
//! each request into an [`LatencyHistogram`] (published as
//! `net.request_latency`).

use crate::protocol::{read_frame, read_magic, write_frame, write_magic, Frame};
use eirs_obs::{publish_histogram, LatencyHistogram};
use eirs_sim::Arrival;
use std::collections::HashMap;
use std::net::TcpStream;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Client shape: connection fan-out and an optional mid-stream swap.
#[derive(Debug, Clone, Default)]
pub struct ClientConfig {
    /// Concurrent connections (`>= 1`).
    pub clients: usize,
    /// `Some((n, spec))`: after sending arrival with global index `n`,
    /// send the control command `swap <spec>` on that arrival's
    /// connection (or on connection 0 before BYE when `n` is past the
    /// end of the workload).
    pub swap: Option<(u64, String)>,
}

/// Per-connection tallies, merged into the final [`ClientReport`].
#[derive(Debug, Default)]
struct ConnStats {
    arrivals: u64,
    decisions: u64,
    admitted: u64,
    net_sheds: u64,
    engine_rejections: u64,
    max_generation: u32,
    latency: LatencyHistogram,
    control_replies: Vec<String>,
    server_errors: Vec<String>,
}

/// What the whole client run saw, across all connections.
#[derive(Debug)]
pub struct ClientReport {
    /// Connections opened.
    pub connections: usize,
    /// Arrival frames sent.
    pub arrivals: u64,
    /// Decision frames received.
    pub decisions: u64,
    /// Decisions with `admitted = true`.
    pub admitted: u64,
    /// Router sheds observed (`admitted = false`, `seq = u64::MAX`).
    pub net_sheds: u64,
    /// Engine admission rejections observed (`admitted = false` with a
    /// real sequence number).
    pub engine_rejections: u64,
    /// Highest policy generation seen in any decision.
    pub max_generation: u32,
    /// Send→decision wall-clock latency over all requests (also
    /// published to the telemetry registry as `net.request_latency`).
    pub latency: LatencyHistogram,
    /// CONTROL_OK texts received.
    pub control_replies: Vec<String>,
    /// ERROR frame texts received.
    pub server_errors: Vec<String>,
}

/// Connects and completes the magic handshake. The server registers a
/// connection *before* echoing the magic, so a returned pair is
/// guaranteed to be visible to the server's liveness accounting —
/// `run_client` handshakes every lane up front so the server cannot
/// mistake a fast first lane's disconnect for "all clients done" while
/// the other lanes are still in the accept backlog.
fn open_connection(addr: &str) -> Result<(TcpStream, TcpStream), String> {
    let err = |what: &str, e: &dyn std::fmt::Display| format!("{what} ({addr}): {e}");
    let mut writer = TcpStream::connect(addr).map_err(|e| err("connect", &e))?;
    writer
        .set_read_timeout(Some(Duration::from_secs(60)))
        .map_err(|e| err("read timeout", &e))?;
    let mut reader = writer.try_clone().map_err(|e| err("clone stream", &e))?;
    write_magic(&mut writer).map_err(|e| err("handshake send", &e))?;
    read_magic(&mut reader).map_err(|e| err("handshake echo", &e))?;
    Ok((writer, reader))
}

fn drive_connection(
    addr: &str,
    conn: (TcpStream, TcpStream),
    work: &[(u64, Arrival)],
    swap: Option<&(u64, String)>,
    send_swap_before_bye: bool,
) -> Result<ConnStats, String> {
    let err = |what: &str, e: &dyn std::fmt::Display| format!("{what} ({addr}): {e}");
    let (mut writer, mut reader) = conn;

    let sent: Mutex<HashMap<u64, Instant>> = Mutex::new(HashMap::new());
    let mut stats = ConnStats::default();
    std::thread::scope(|scope| -> Result<(), String> {
        let sent = &sent;
        let receiver = scope.spawn(move || -> Result<ConnStats, String> {
            let mut s = ConnStats::default();
            loop {
                match read_frame(&mut reader) {
                    Ok(None) | Ok(Some(Frame::Bye)) => break,
                    Ok(Some(Frame::Decision {
                        req_id,
                        seq,
                        generation,
                        admitted,
                        ..
                    })) => {
                        s.decisions += 1;
                        if admitted {
                            s.admitted += 1;
                        } else if seq == u64::MAX {
                            s.net_sheds += 1;
                        } else {
                            s.engine_rejections += 1;
                        }
                        s.max_generation = s.max_generation.max(generation);
                        if let Some(at) = sent.lock().expect("send map").remove(&req_id) {
                            s.latency.record_seconds(at.elapsed().as_secs_f64());
                        }
                    }
                    Ok(Some(Frame::ControlOk(text))) => s.control_replies.push(text),
                    Ok(Some(Frame::Error(text))) => {
                        s.server_errors.push(text);
                        break;
                    }
                    Ok(Some(other)) => {
                        return Err(format!("unexpected server frame {other:?}"));
                    }
                    Err(e) => return Err(format!("decision stream: {e}")),
                }
            }
            Ok(s)
        });

        for &(req_id, arrival) in work {
            sent.lock()
                .expect("send map")
                .insert(req_id, Instant::now());
            write_frame(
                &mut writer,
                &Frame::Arrival {
                    req_id,
                    class: arrival.class,
                    time: arrival.time,
                    size: arrival.size,
                },
            )
            .map_err(|e| err("send arrival", &e))?;
            if let Some((at, spec)) = swap {
                if *at == req_id {
                    write_frame(&mut writer, &Frame::Control(format!("swap {spec}")))
                        .map_err(|e| err("send control", &e))?;
                }
            }
        }
        if send_swap_before_bye {
            if let Some((_, spec)) = swap {
                write_frame(&mut writer, &Frame::Control(format!("swap {spec}")))
                    .map_err(|e| err("send control", &e))?;
            }
        }
        write_frame(&mut writer, &Frame::Bye).map_err(|e| err("send bye", &e))?;
        stats = receiver.join().expect("receiver panicked")?;
        Ok(())
    })?;
    stats.arrivals = work.len() as u64;
    Ok(stats)
}

/// Runs the full workload against the server at `addr` over
/// [`ClientConfig::clients`] concurrent connections. Arrivals must be
/// time-ordered (the workload clock); the server clamps interleaved
/// clocks to its running maximum. Errors on connection or protocol
/// failure of any connection.
pub fn run_client(
    addr: &str,
    arrivals: &[Arrival],
    config: &ClientConfig,
) -> Result<ClientReport, String> {
    let clients = config.clients.max(1);
    let lanes: Vec<Vec<(u64, Arrival)>> = (0..clients)
        .map(|c| {
            arrivals
                .iter()
                .enumerate()
                .filter(|(idx, _)| idx % clients == c)
                .map(|(idx, &a)| (idx as u64, a))
                .collect()
        })
        .collect();
    let swap_in_range = config
        .swap
        .as_ref()
        .is_some_and(|(at, _)| *at < arrivals.len() as u64);

    // Handshake every lane before the first arrival is sent: the server
    // treats "all known connections closed" as end of stream, so all
    // lanes must be known to it before any lane can finish.
    let conns: Vec<(TcpStream, TcpStream)> = (0..clients)
        .map(|_| open_connection(addr))
        .collect::<Result<_, _>>()?;

    let results: Vec<Result<ConnStats, String>> = std::thread::scope(|scope| {
        let handles: Vec<_> = conns
            .into_iter()
            .zip(&lanes)
            .enumerate()
            .map(|(c, (conn, lane))| {
                let swap = config.swap.as_ref();
                scope.spawn(move || {
                    drive_connection(addr, conn, lane, swap, c == 0 && !swap_in_range)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("connection thread panicked"))
            .collect()
    });

    let mut report = ClientReport {
        connections: clients,
        arrivals: 0,
        decisions: 0,
        admitted: 0,
        net_sheds: 0,
        engine_rejections: 0,
        max_generation: 0,
        latency: LatencyHistogram::new(),
        control_replies: Vec::new(),
        server_errors: Vec::new(),
    };
    for result in results {
        let s = result?;
        report.arrivals += s.arrivals;
        report.decisions += s.decisions;
        report.admitted += s.admitted;
        report.net_sheds += s.net_sheds;
        report.engine_rejections += s.engine_rejections;
        report.max_generation = report.max_generation.max(s.max_generation);
        report.latency.merge(&s.latency);
        report.control_replies.extend(s.control_replies);
        report.server_errors.extend(s.server_errors);
    }
    publish_histogram("net.request_latency", &report.latency);
    Ok(report)
}
