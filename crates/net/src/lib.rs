//! # eirs-net — the networked serving front end.
//!
//! Everything below `eirs_serve` is a library call: you hand the engine
//! a batch of arrivals and read decisions back. This crate puts that
//! engine behind a socket, closing the loop a real deployment needs:
//!
//! ```text
//!  clients ──(eirsnp01 frames)──▶ listener ─▶ per-shard queues ─▶ ServeEngine
//!     ▲                                                              │
//!     └────────────── decision frames ◀── batched admissions ────────┘
//!
//!        observe (ShardMetrics) ─▶ re-optimize (eirs_opt) ─▶ hot-swap
//! ```
//!
//! * [`protocol`] — the `eirsnp01` wire format: length-prefixed,
//!   checksummed binary frames. Decoding is strict; corrupt streams are
//!   torn down, never resynchronized or silently truncated.
//! * [`queue`] — bounded hand-off queues between the connection router
//!   and the engine loop; capacity is the backpressure/shed mechanism.
//! * [`server`] — the accept loop, seq-assigning router, write-ahead
//!   journaling, batched engine loop, and the **atomic policy
//!   hot-swap**: control frames or CLI triggers install a freshly
//!   compiled table at an exact arrival-sequence barrier, journaled so
//!   replay reproduces the decision digest bit for bit. An
//!   `optimize:<family>` swap re-runs the `eirs_opt` search against the
//!   live engine's observed per-class arrival rates.
//! * [`client`] — the load generator: N concurrent pipelined
//!   connections, per-request wall-clock latency histograms.
//!
//! The front end preserves the serving layer's accounting exactly:
//! `completions + engine rejections + net sheds = client arrivals`
//! ([`ServeReport::accounting_balanced`]), and a journaled networked
//! run replays offline to the same digest
//! (`eirs_serve::replay_journal`).

pub mod client;
pub mod protocol;
pub mod queue;
pub mod server;

pub use client::{run_client, ClientConfig, ClientReport};
pub use protocol::{Frame, ProtocolError};
pub use queue::BoundedQueue;
pub use server::{serve, CompileFn, NetConfig, ReoptSettings, ServeReport, SwapTrigger};
