//! Bounded FIFO hand-off queues between the connection router and the
//! engine loop.
//!
//! One queue per route shard. The router is the only pusher (it holds
//! the router lock while pushing, so pushes are serialized and each
//! queue sees strictly increasing sequence numbers); the engine loop is
//! the only popper. Capacity is the backpressure mechanism: a full
//! queue either blocks the router ([`BoundedQueue::push`]) or sheds the
//! arrival ([`BoundedQueue::is_full`] checked first), per the server's
//! `shed` setting.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::Duration;

struct State<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded multi-purpose FIFO with blocking push and draining pop.
pub struct BoundedQueue<T> {
    cap: usize,
    state: Mutex<State<T>>,
    not_full: Condvar,
    not_empty: Condvar,
}

impl<T> BoundedQueue<T> {
    /// An empty queue holding at most `cap` items (`cap >= 1`).
    pub fn new(cap: usize) -> Self {
        assert!(cap >= 1, "queue capacity must be positive");
        Self {
            cap,
            state: Mutex::new(State {
                items: VecDeque::new(),
                closed: false,
            }),
            not_full: Condvar::new(),
            not_empty: Condvar::new(),
        }
    }

    /// The capacity the queue was built with.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Items currently queued.
    pub fn len(&self) -> usize {
        self.state.lock().expect("queue poisoned").items.len()
    }

    /// Whether the queue holds nothing.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether a push would block (or shed) right now.
    pub fn is_full(&self) -> bool {
        self.len() >= self.cap
    }

    /// Pushes `item`, blocking while the queue is full. Returns the
    /// item back if the queue was closed.
    pub fn push(&self, item: T) -> Result<(), T> {
        let mut s = self.state.lock().expect("queue poisoned");
        while s.items.len() >= self.cap && !s.closed {
            s = self.not_full.wait(s).expect("queue poisoned");
        }
        if s.closed {
            return Err(item);
        }
        s.items.push_back(item);
        drop(s);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Pops up to `max` items into `out` without blocking. Returns how
    /// many were taken.
    pub fn drain_into(&self, out: &mut Vec<T>, max: usize) -> usize {
        let mut s = self.state.lock().expect("queue poisoned");
        let take = max.min(s.items.len());
        out.extend(s.items.drain(..take));
        if take > 0 {
            self.not_full.notify_all();
        }
        take
    }

    /// Blocks until the queue is nonempty, closed, or `timeout`
    /// elapses. Returns whether items are available.
    pub fn wait_nonempty(&self, timeout: Duration) -> bool {
        let s = self.state.lock().expect("queue poisoned");
        if !s.items.is_empty() || s.closed {
            return !s.items.is_empty();
        }
        let (s, _) = self
            .not_empty
            .wait_timeout(s, timeout)
            .expect("queue poisoned");
        !s.items.is_empty()
    }

    /// Closes the queue: pending items stay poppable, further pushes
    /// fail, blocked pushers wake.
    pub fn close(&self) {
        self.state.lock().expect("queue poisoned").closed = true;
        self.not_full.notify_all();
        self.not_empty.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_order_and_bounded_drain() {
        let q = BoundedQueue::new(8);
        for n in 0..5 {
            q.push(n).unwrap();
        }
        let mut out = Vec::new();
        assert_eq!(q.drain_into(&mut out, 3), 3);
        assert_eq!(out, vec![0, 1, 2]);
        assert_eq!(q.drain_into(&mut out, 10), 2);
        assert_eq!(out, vec![0, 1, 2, 3, 4]);
        assert!(q.is_empty());
    }

    #[test]
    fn full_queue_blocks_push_until_popped() {
        let q = Arc::new(BoundedQueue::new(2));
        q.push(1).unwrap();
        q.push(2).unwrap();
        assert!(q.is_full());
        let pusher = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.push(3))
        };
        // The pusher is stuck until we make room.
        std::thread::sleep(Duration::from_millis(20));
        assert!(!pusher.is_finished(), "push through a full queue");
        let mut out = Vec::new();
        q.drain_into(&mut out, 1);
        pusher.join().unwrap().unwrap();
        q.drain_into(&mut out, 10);
        assert_eq!(out, vec![1, 2, 3]);
    }

    #[test]
    fn close_fails_pushes_but_keeps_pending_items() {
        let q = BoundedQueue::new(4);
        q.push("kept").unwrap();
        q.close();
        assert_eq!(q.push("dropped"), Err("dropped"));
        let mut out = Vec::new();
        assert_eq!(q.drain_into(&mut out, 10), 1);
        assert_eq!(out, vec!["kept"]);
        // wait_nonempty on a closed empty queue returns immediately.
        assert!(!q.wait_nonempty(Duration::from_secs(5)));
    }

    #[test]
    fn close_wakes_a_blocked_pusher() {
        let q = Arc::new(BoundedQueue::new(1));
        q.push(1).unwrap();
        let pusher = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.push(2))
        };
        std::thread::sleep(Duration::from_millis(20));
        q.close();
        assert_eq!(pusher.join().unwrap(), Err(2));
    }
}
