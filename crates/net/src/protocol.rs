//! The `eirsnp01` wire protocol: length-prefixed, checksummed binary
//! frames over a byte stream.
//!
//! A connection opens with an 8-byte magic handshake ([`MAGIC`]): the
//! client sends it, the server echoes it back. Every subsequent message
//! is one frame:
//!
//! ```text
//! ┌──────┬──────┬──────────┬───────────────┬──────────────┐
//! │ type │ aux  │ len (LE) │    payload    │ checksum(LE) │
//! │ 1 B  │ 1 B  │   2 B    │   len bytes   │     8 B      │
//! └──────┴──────┴──────────┴───────────────┴──────────────┘
//! ```
//!
//! The checksum is a SplitMix64 fold over the header and payload
//! ([`frame_checksum`]). Decoding is **strict**: an unknown type, a
//! length outside the type's cap, a payload that does not parse, or a
//! checksum mismatch is a hard [`ProtocolError`] — the connection is
//! torn down rather than resynchronized, so a corrupt stream can never
//! silently truncate into a shorter valid one. Clean EOF is only legal
//! *between* frames ([`read_frame`] returns `Ok(None)` there); EOF
//! inside a frame is [`ProtocolError::Truncated`].

use eirs_sim::JobClass;
use std::io::{Read, Write};

/// Handshake magic: protocol name and version on the wire. Bump the
/// trailing digits on any incompatible frame-format change.
pub const MAGIC: [u8; 8] = *b"eirsnp01";

/// Frame type tags on the wire.
pub mod frame_type {
    /// Client → server: one job arrival awaiting an allocation decision.
    pub const ARRIVAL: u8 = 1;
    /// Server → client: the decision for one arrival.
    pub const DECISION: u8 = 2;
    /// Client → server: a control command (UTF-8 text).
    pub const CONTROL: u8 = 3;
    /// Server → client: a control command was accepted.
    pub const CONTROL_OK: u8 = 4;
    /// Either direction: terminal error description; sender closes.
    pub const ERROR: u8 = 5;
    /// Client → server: no more frames follow. Server echoes it back
    /// once every outstanding decision has been written.
    pub const BYE: u8 = 6;
}

/// Hard cap on any payload length; per-type caps are tighter.
pub const MAX_PAYLOAD: usize = 4096;

const ARRIVAL_LEN: usize = 24;
const DECISION_LEN: usize = 48;

/// SplitMix64 finalizer (the same mix the serving engine digests with).
#[inline]
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Frame checksum: a SplitMix64 fold over the 4 header bytes followed
/// by the payload in 8-byte little-endian chunks (last chunk
/// zero-padded). Cheap, order-sensitive, and independent of framing
/// state — flipping any bit anywhere in the frame changes it.
pub fn frame_checksum(ty: u8, aux: u8, payload: &[u8]) -> u64 {
    let header = (ty as u64) | ((aux as u64) << 8) | ((payload.len() as u64) << 16);
    let mut h = mix64(header);
    for chunk in payload.chunks(8) {
        let mut buf = [0u8; 8];
        buf[..chunk.len()].copy_from_slice(chunk);
        h = mix64(h ^ u64::from_le_bytes(buf));
    }
    h
}

/// A decoded protocol frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// One job arrival: the client's request id (echoed back in the
    /// decision), the job class, the arrival's stream time, and its
    /// size.
    Arrival {
        /// Client-chosen id correlating the decision with the request.
        req_id: u64,
        /// Job class (carried in the frame's aux byte: 0 = inelastic,
        /// 1 = elastic).
        class: JobClass,
        /// Arrival time on the client's workload clock.
        time: f64,
        /// Job size (inherent work).
        size: f64,
    },
    /// The allocation decision for one arrival.
    Decision {
        /// The request id from the matching [`Frame::Arrival`].
        req_id: u64,
        /// Global arrival sequence number the server assigned
        /// (`u64::MAX` when the arrival was shed at the router and
        /// never entered the stream).
        seq: u64,
        /// Route shard that served the arrival (`u32::MAX` on router
        /// shed).
        shard: u32,
        /// Shard inelastic occupancy after the arrival.
        i: u32,
        /// Shard elastic occupancy after the arrival.
        j: u32,
        /// Policy generation that decided the arrival.
        generation: u32,
        /// Inelastic allocation served at `(i, j)`.
        alloc_inelastic: f64,
        /// Elastic allocation served at `(i, j)`.
        alloc_elastic: f64,
        /// Whether the arrival was admitted (aux bit 0). `false` means
        /// shed — either at the router (full queue) or by the engine's
        /// degraded-mode admission control.
        admitted: bool,
    },
    /// A control command, e.g. `swap threshold:3`.
    Control(String),
    /// Acknowledgment text for an accepted control command.
    ControlOk(String),
    /// Terminal error description.
    Error(String),
    /// End of stream marker.
    Bye,
}

/// Why a byte stream failed to decode. Every variant is terminal: the
/// reader must close the connection, never skip bytes and resume.
#[derive(Debug, Clone, PartialEq)]
pub enum ProtocolError {
    /// The 8-byte handshake did not match [`MAGIC`].
    BadMagic([u8; 8]),
    /// Unknown frame type tag.
    BadType(u8),
    /// Payload length outside the cap for this frame type.
    BadLength {
        /// The offending frame type.
        ty: u8,
        /// The declared payload length.
        len: usize,
    },
    /// Checksum mismatch: the frame was corrupted in flight.
    BadChecksum {
        /// Checksum computed over the received bytes.
        computed: u64,
        /// Checksum carried by the frame.
        received: u64,
    },
    /// The payload did not decode (bad UTF-8, non-finite float, bad
    /// class tag, ...).
    BadPayload(String),
    /// The stream ended inside a frame (or inside the handshake).
    Truncated,
    /// An I/O error from the underlying stream.
    Io(String),
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::BadMagic(got) => write!(f, "bad handshake magic {got:?}"),
            Self::BadType(ty) => write!(f, "unknown frame type {ty}"),
            Self::BadLength { ty, len } => {
                write!(f, "frame type {ty} declares illegal payload length {len}")
            }
            Self::BadChecksum { computed, received } => write!(
                f,
                "frame checksum mismatch: computed {computed:#x}, received {received:#x}"
            ),
            Self::BadPayload(why) => write!(f, "bad frame payload: {why}"),
            Self::Truncated => write!(f, "stream truncated mid-frame"),
            Self::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for ProtocolError {}

impl From<std::io::Error> for ProtocolError {
    fn from(e: std::io::Error) -> Self {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            Self::Truncated
        } else {
            Self::Io(e.to_string())
        }
    }
}

/// Sends the handshake magic.
pub fn write_magic<W: Write>(w: &mut W) -> Result<(), ProtocolError> {
    w.write_all(&MAGIC)?;
    w.flush()?;
    Ok(())
}

/// Reads and verifies the handshake magic.
pub fn read_magic<R: Read>(r: &mut R) -> Result<(), ProtocolError> {
    let mut got = [0u8; 8];
    r.read_exact(&mut got)?;
    if got != MAGIC {
        return Err(ProtocolError::BadMagic(got));
    }
    Ok(())
}

/// Serializes `frame` into wire bytes (header, payload, checksum).
pub fn encode_frame(frame: &Frame) -> Vec<u8> {
    let (ty, aux, payload) = match frame {
        Frame::Arrival {
            req_id,
            class,
            time,
            size,
        } => {
            let mut p = Vec::with_capacity(ARRIVAL_LEN);
            p.extend_from_slice(&req_id.to_le_bytes());
            p.extend_from_slice(&time.to_le_bytes());
            p.extend_from_slice(&size.to_le_bytes());
            let aux = match class {
                JobClass::Inelastic => 0,
                JobClass::Elastic => 1,
            };
            (frame_type::ARRIVAL, aux, p)
        }
        Frame::Decision {
            req_id,
            seq,
            shard,
            i,
            j,
            generation,
            alloc_inelastic,
            alloc_elastic,
            admitted,
        } => {
            let mut p = Vec::with_capacity(DECISION_LEN);
            p.extend_from_slice(&req_id.to_le_bytes());
            p.extend_from_slice(&seq.to_le_bytes());
            p.extend_from_slice(&shard.to_le_bytes());
            p.extend_from_slice(&i.to_le_bytes());
            p.extend_from_slice(&j.to_le_bytes());
            p.extend_from_slice(&generation.to_le_bytes());
            p.extend_from_slice(&alloc_inelastic.to_le_bytes());
            p.extend_from_slice(&alloc_elastic.to_le_bytes());
            (frame_type::DECISION, u8::from(*admitted), p)
        }
        Frame::Control(text) => (frame_type::CONTROL, 0, text.as_bytes().to_vec()),
        Frame::ControlOk(text) => (frame_type::CONTROL_OK, 0, text.as_bytes().to_vec()),
        Frame::Error(text) => (frame_type::ERROR, 0, text.as_bytes().to_vec()),
        Frame::Bye => (frame_type::BYE, 0, Vec::new()),
    };
    debug_assert!(payload.len() <= MAX_PAYLOAD);
    let mut out = Vec::with_capacity(4 + payload.len() + 8);
    out.push(ty);
    out.push(aux);
    out.extend_from_slice(&(payload.len() as u16).to_le_bytes());
    out.extend_from_slice(&payload);
    out.extend_from_slice(&frame_checksum(ty, aux, &payload).to_le_bytes());
    out
}

/// Writes one frame and flushes.
pub fn write_frame<W: Write>(w: &mut W, frame: &Frame) -> Result<(), ProtocolError> {
    w.write_all(&encode_frame(frame))?;
    w.flush()?;
    Ok(())
}

/// Legal payload length range for a frame type (`None`: unknown type).
fn length_cap(ty: u8) -> Option<(usize, usize)> {
    match ty {
        frame_type::ARRIVAL => Some((ARRIVAL_LEN, ARRIVAL_LEN)),
        frame_type::DECISION => Some((DECISION_LEN, DECISION_LEN)),
        frame_type::CONTROL | frame_type::CONTROL_OK | frame_type::ERROR => Some((0, MAX_PAYLOAD)),
        frame_type::BYE => Some((0, 0)),
        _ => None,
    }
}

fn le_u64(b: &[u8]) -> u64 {
    u64::from_le_bytes(b.try_into().expect("8-byte slice"))
}

fn le_u32(b: &[u8]) -> u32 {
    u32::from_le_bytes(b.try_into().expect("4-byte slice"))
}

fn le_f64(field: &str, b: &[u8]) -> Result<f64, ProtocolError> {
    let v = f64::from_le_bytes(b.try_into().expect("8-byte slice"));
    if v.is_nan() {
        return Err(ProtocolError::BadPayload(format!("{field} is NaN")));
    }
    Ok(v)
}

fn utf8(payload: &[u8]) -> Result<String, ProtocolError> {
    String::from_utf8(payload.to_vec())
        .map_err(|_| ProtocolError::BadPayload("text payload is not UTF-8".into()))
}

/// Decodes a validated `(type, aux, payload)` triple into a [`Frame`].
fn decode_payload(ty: u8, aux: u8, payload: &[u8]) -> Result<Frame, ProtocolError> {
    match ty {
        frame_type::ARRIVAL => {
            let class = match aux {
                0 => JobClass::Inelastic,
                1 => JobClass::Elastic,
                other => {
                    return Err(ProtocolError::BadPayload(format!(
                        "unknown job class tag {other}"
                    )))
                }
            };
            let time = le_f64("arrival time", &payload[8..16])?;
            let size = le_f64("arrival size", &payload[16..24])?;
            if !time.is_finite() || !size.is_finite() || size <= 0.0 {
                return Err(ProtocolError::BadPayload(format!(
                    "arrival (time {time}, size {size}) is not a finite positive-size job"
                )));
            }
            Ok(Frame::Arrival {
                req_id: le_u64(&payload[0..8]),
                class,
                time,
                size,
            })
        }
        frame_type::DECISION => Ok(Frame::Decision {
            req_id: le_u64(&payload[0..8]),
            seq: le_u64(&payload[8..16]),
            shard: le_u32(&payload[16..20]),
            i: le_u32(&payload[20..24]),
            j: le_u32(&payload[24..28]),
            generation: le_u32(&payload[28..32]),
            alloc_inelastic: le_f64("inelastic allocation", &payload[32..40])?,
            alloc_elastic: le_f64("elastic allocation", &payload[40..48])?,
            admitted: aux & 1 == 1,
        }),
        frame_type::CONTROL => Ok(Frame::Control(utf8(payload)?)),
        frame_type::CONTROL_OK => Ok(Frame::ControlOk(utf8(payload)?)),
        frame_type::ERROR => Ok(Frame::Error(utf8(payload)?)),
        frame_type::BYE => Ok(Frame::Bye),
        other => Err(ProtocolError::BadType(other)),
    }
}

/// Reads one frame. `Ok(None)` is a clean EOF **at a frame boundary**;
/// any EOF inside a frame is [`ProtocolError::Truncated`], and any
/// validation failure is terminal — the caller must close the
/// connection rather than resynchronize.
pub fn read_frame<R: Read>(r: &mut R) -> Result<Option<Frame>, ProtocolError> {
    let mut header = [0u8; 4];
    // Distinguish clean EOF (zero bytes before a frame) from truncation.
    let mut filled = 0;
    while filled < header.len() {
        match r.read(&mut header[filled..]) {
            Ok(0) if filled == 0 => return Ok(None),
            Ok(0) => return Err(ProtocolError::Truncated),
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e.into()),
        }
    }
    let (ty, aux) = (header[0], header[1]);
    let len = u16::from_le_bytes([header[2], header[3]]) as usize;
    let (min, max) = length_cap(ty).ok_or(ProtocolError::BadType(ty))?;
    if len < min || len > max {
        return Err(ProtocolError::BadLength { ty, len });
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    let mut sum = [0u8; 8];
    r.read_exact(&mut sum)?;
    let received = u64::from_le_bytes(sum);
    let computed = frame_checksum(ty, aux, &payload);
    if computed != received {
        return Err(ProtocolError::BadChecksum { computed, received });
    }
    // A payload failing semantic validation is terminal too.
    decode_payload(ty, aux, &payload).map(Some)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(frame: Frame) {
        let bytes = encode_frame(&frame);
        let mut cursor = &bytes[..];
        let got = read_frame(&mut cursor).unwrap().expect("one frame");
        assert_eq!(got, frame);
        assert!(cursor.is_empty(), "decoder must consume the whole frame");
    }

    #[test]
    fn frames_round_trip_bit_exactly() {
        round_trip(Frame::Arrival {
            req_id: 42,
            class: JobClass::Elastic,
            time: 1.25,
            size: 3.5,
        });
        round_trip(Frame::Decision {
            req_id: 42,
            seq: 7,
            shard: 3,
            i: 2,
            j: 5,
            generation: 1,
            alloc_inelastic: 2.0,
            alloc_elastic: 1.5,
            admitted: true,
        });
        round_trip(Frame::Control("swap threshold:3".into()));
        round_trip(Frame::ControlOk("generation 1".into()));
        round_trip(Frame::Error("boom".into()));
        round_trip(Frame::Bye);
    }

    #[test]
    fn corrupt_bytes_are_hard_errors_not_resyncs() {
        let good = encode_frame(&Frame::Control("swap if".into()));
        // Flip every single byte in turn: every corruption must be
        // caught (type, length, checksum, or payload validation), and
        // none may decode to a *different* valid frame.
        for pos in 0..good.len() {
            let mut bad = good.clone();
            bad[pos] ^= 0x01;
            let mut cursor = &bad[..];
            match read_frame(&mut cursor) {
                Err(_) => {}
                Ok(decoded) => panic!("byte {pos} corruption decoded as {decoded:?}"),
            }
        }
    }

    #[test]
    fn truncation_is_distinguished_from_clean_eof() {
        let good = encode_frame(&Frame::Arrival {
            req_id: 1,
            class: JobClass::Inelastic,
            time: 0.0,
            size: 1.0,
        });
        // Clean EOF at the boundary.
        assert_eq!(read_frame(&mut &[][..]).unwrap(), None);
        // EOF anywhere inside the frame is truncation.
        for cut in 1..good.len() {
            let mut cursor = &good[..cut];
            assert_eq!(
                read_frame(&mut cursor),
                Err(ProtocolError::Truncated),
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn oversized_and_malformed_declarations_are_rejected() {
        // Unknown type.
        let mut raw = vec![99u8, 0, 0, 0];
        raw.extend_from_slice(&frame_checksum(99, 0, &[]).to_le_bytes());
        assert_eq!(
            read_frame(&mut &raw[..]),
            Err(ProtocolError::BadType(99)),
            "unknown type tag"
        );
        // BYE with a payload.
        let raw = [frame_type::BYE, 0, 1, 0, 0xAB];
        assert!(matches!(
            read_frame(&mut &raw[..]),
            Err(ProtocolError::BadLength { .. })
        ));
        // Arrival with a short payload declaration.
        let raw = [frame_type::ARRIVAL, 0, 8, 0];
        assert!(matches!(
            read_frame(&mut &raw[..]),
            Err(ProtocolError::BadLength { .. })
        ));
        // Control declaring more than the cap.
        let raw = [frame_type::CONTROL, 0, 0xFF, 0xFF];
        assert!(matches!(
            read_frame(&mut &raw[..]),
            Err(ProtocolError::BadLength { len: 0xFFFF, .. })
        ));
    }

    #[test]
    fn semantic_validation_rejects_hostile_arrivals() {
        for (time, size) in [
            (f64::NAN, 1.0),
            (0.0, f64::NAN),
            (f64::INFINITY, 1.0),
            (0.0, 0.0),
            (0.0, -1.0),
        ] {
            let mut p = Vec::new();
            p.extend_from_slice(&1u64.to_le_bytes());
            p.extend_from_slice(&time.to_le_bytes());
            p.extend_from_slice(&size.to_le_bytes());
            let mut raw = vec![frame_type::ARRIVAL, 0, p.len() as u8, 0];
            raw.extend_from_slice(&p);
            raw.extend_from_slice(&frame_checksum(frame_type::ARRIVAL, 0, &p).to_le_bytes());
            assert!(
                matches!(read_frame(&mut &raw[..]), Err(ProtocolError::BadPayload(_))),
                "time {time} size {size} must be rejected"
            );
        }
    }

    #[test]
    fn handshake_round_trips_and_rejects_imposters() {
        let mut buf = Vec::new();
        write_magic(&mut buf).unwrap();
        read_magic(&mut &buf[..]).unwrap();
        assert!(matches!(
            read_magic(&mut &b"eirsnp99"[..]),
            Err(ProtocolError::BadMagic(_))
        ));
        assert_eq!(read_magic(&mut &b"eir"[..]), Err(ProtocolError::Truncated));
    }
}
