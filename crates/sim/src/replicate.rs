//! Parallel simulation replications with per-replication seed streams.
//!
//! Robustness and open-regime experiments average many independent
//! replications of the same configuration. Replications only interact
//! through their *seeds*, so they parallelize perfectly — provided each
//! replication owns its entire RNG stream. This module derives one
//! decorrelated seed per replication from a base seed with SplitMix64
//! ([`replication_seeds`]) and fans the replications out over scoped
//! worker threads through the same ordered-result primitive as the figure
//! sweeps.
//!
//! Because replication `r` is a pure function of `seeds[r]`, the parallel
//! result vector is **bit-identical** to running the replications
//! serially — asserted by the workspace's determinism tests.

use crate::des::{run_markovian, SimReport};
use crate::policy::AllocationPolicy;
use eirs_numerics::parallel;
use rand::SplitMix64;

/// Derives `n` decorrelated replication seeds from `base_seed` via the
/// SplitMix64 stream (the scheme the xoshiro authors recommend for
/// seeding independent generators).
pub fn replication_seeds(base_seed: u64, n: usize) -> Vec<u64> {
    let mut sm = SplitMix64 { state: base_seed };
    (0..n).map(|_| sm.next_u64()).collect()
}

/// Runs `f` once per seed in parallel (all cores), returning results in
/// seed order. `f` must be a pure function of the seed — every simulation
/// entry point in this crate is, because all randomness flows through the
/// seed's RNG stream.
pub fn run_replications<R, F>(base_seed: u64, n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(u64) -> R + Sync,
{
    run_replications_with_threads(base_seed, n, parallel::num_threads(), f)
}

/// [`run_replications`] with an explicit worker-thread count
/// (`threads <= 1` runs inline — the serial reference path).
pub fn run_replications_with_threads<R, F>(base_seed: u64, n: usize, threads: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(u64) -> R + Sync,
{
    let seeds = replication_seeds(base_seed, n);
    parallel::par_map_ordered(&seeds, threads, |&seed| f(seed))
}

/// Parallel steady-state replications of the Markovian model under
/// `policy`: `n` independent [`run_markovian`] runs with seeds derived
/// from `base_seed`, in seed order.
#[allow(clippy::too_many_arguments)]
pub fn run_markovian_replications(
    policy: &dyn AllocationPolicy,
    k: u32,
    lambda_i: f64,
    lambda_e: f64,
    mu_i: f64,
    mu_e: f64,
    base_seed: u64,
    n: usize,
    warmup: u64,
    departures: u64,
) -> Vec<SimReport> {
    run_replications(base_seed, n, |seed| {
        run_markovian(
            policy, k, lambda_i, lambda_e, mu_i, mu_e, seed, warmup, departures,
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::InelasticFirst;

    #[test]
    fn seeds_are_deterministic_and_distinct() {
        let a = replication_seeds(42, 64);
        let b = replication_seeds(42, 64);
        assert_eq!(a, b);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 64, "seed collision in stream");
        assert_ne!(a, replication_seeds(43, 64));
    }

    #[test]
    fn parallel_replications_are_bit_identical_to_serial() {
        let run = |threads: usize| {
            run_replications_with_threads(7, 6, threads, |seed| {
                run_markovian(&InelasticFirst, 2, 0.6, 0.4, 1.0, 0.8, seed, 200, 4_000)
            })
        };
        let serial = run(1);
        let parallel = run(4);
        assert_eq!(serial.len(), parallel.len());
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(s.mean_response.to_bits(), p.mean_response.to_bits());
            assert_eq!(s.end_time.to_bits(), p.end_time.to_bits());
            assert_eq!(s.completed, p.completed);
            assert_eq!(s.mean_work.to_bits(), p.mean_work.to_bits());
        }
    }

    #[test]
    fn replications_vary_across_seeds_but_agree_in_distribution() {
        let reports = run_markovian_replications(
            &InelasticFirst,
            1,
            0.5,
            0.0,
            1.0,
            1.0,
            11,
            8,
            2_000,
            30_000,
        );
        assert_eq!(reports.len(), 8);
        // Different seeds → different sample paths.
        assert!(reports
            .windows(2)
            .any(|w| w[0].mean_response != w[1].mean_response));
        // But all near the M/M/1 truth E[T] = 2.
        let mean: f64 = reports.iter().map(|r| r.mean_response).sum::<f64>() / reports.len() as f64;
        assert!((mean - 2.0).abs() / 2.0 < 0.05, "replication mean {mean}");
    }
}
