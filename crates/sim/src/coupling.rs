//! Coupled sample-path experiments (the experimental face of Theorem 3).
//!
//! Theorem 3 couples Inelastic-First with an arbitrary class-P policy on a
//! *fixed arrival sequence* and shows the total work `W(t)` and inelastic
//! work `W_I(t)` are pointwise smaller under IF. This module records those
//! trajectories from the simulator and checks dominance.
//!
//! Work trajectories are piecewise linear between events (service drains
//! work at the constant allocated rate) with upward jumps at arrivals, so a
//! trajectory is stored as the sequence of event-epoch samples, recording
//! *both* the pre-jump and post-jump value at arrival instants. Evaluation
//! between samples is exact linear interpolation, and dominance over all
//! `t ≥ 0` reduces to dominance at the merged epochs of the two
//! trajectories.

use crate::arrivals::{Arrival, ArrivalSource, ArrivalTrace};
use crate::job::{Job, JobClass};
use crate::policy::{assert_feasible, AllocationPolicy};
use std::collections::VecDeque;

/// One sampled point of a work trajectory.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkSample {
    /// Event epoch.
    pub time: f64,
    /// Total remaining work in system.
    pub total: f64,
    /// Remaining inelastic work in system.
    pub inelastic: f64,
}

/// A recorded piecewise-linear work trajectory.
#[derive(Debug, Clone, Default)]
pub struct WorkTrajectory {
    samples: Vec<WorkSample>,
}

impl WorkTrajectory {
    /// Runs `policy` on `trace` (drain-to-empty) with `k` servers and
    /// records `(W(t), W_I(t))` at every event epoch.
    pub fn record(policy: &dyn AllocationPolicy, trace: &ArrivalTrace, k: u32) -> Self {
        let mut stream = trace.stream();
        Self::record_from_source(policy, &mut stream, k)
    }

    fn record_from_source(
        policy: &dyn AllocationPolicy,
        source: &mut dyn ArrivalSource,
        k: u32,
    ) -> Self {
        let name = policy.name();
        let mut inelastic: VecDeque<Job> = VecDeque::new();
        let mut elastic: VecDeque<Job> = VecDeque::new();
        let mut time = 0.0f64;
        let mut next_id = 0u64;
        let mut pending = source.next_arrival();
        let mut samples = Vec::new();

        let snapshot = |time: f64, inel: &VecDeque<Job>, el: &VecDeque<Job>| {
            let wi: f64 = inel.iter().map(|j| j.remaining).sum();
            let we: f64 = el.iter().map(|j| j.remaining).sum();
            WorkSample {
                time,
                total: wi + we,
                inelastic: wi,
            }
        };
        samples.push(snapshot(0.0, &inelastic, &elastic));

        loop {
            if pending.is_none() && inelastic.is_empty() && elastic.is_empty() {
                break;
            }
            let i = inelastic.len();
            let j = elastic.len();
            let alloc = policy.allocate(i, j, k);
            assert_feasible(alloc, i, j, k, &name);

            let whole = alloc.inelastic.floor() as usize;
            let frac = alloc.inelastic - whole as f64;
            let rate_of = |idx: usize| -> f64 {
                if idx < whole {
                    1.0
                } else if idx == whole {
                    frac
                } else {
                    0.0
                }
            };

            let mut dt = f64::INFINITY;
            for (idx, job) in inelastic.iter().enumerate().take(whole + 1) {
                let r = rate_of(idx);
                if r > 0.0 {
                    dt = dt.min(job.remaining / r);
                }
            }
            if alloc.elastic > 0.0 {
                if let Some(head) = elastic.front() {
                    dt = dt.min(head.remaining / alloc.elastic);
                }
            }
            let dt_arr = pending.map_or(f64::INFINITY, |a: Arrival| (a.time - time).max(0.0));
            let arrival_next = dt_arr <= dt;
            dt = dt.min(dt_arr);
            assert!(
                dt.is_finite(),
                "policy {name} idles forever with jobs present in state ({i},{j})"
            );

            if dt > 0.0 {
                for (idx, job) in inelastic.iter_mut().enumerate().take(whole + 1) {
                    let r = rate_of(idx);
                    if r > 0.0 {
                        job.remaining = (job.remaining - r * dt).max(0.0);
                    }
                }
                if alloc.elastic > 0.0 {
                    if let Some(head) = elastic.front_mut() {
                        head.remaining = (head.remaining - alloc.elastic * dt).max(0.0);
                    }
                }
                time += dt;
            }
            if arrival_next {
                if let Some(a) = pending {
                    // Snap exactly onto the trace's arrival epoch: the
                    // accumulated clock can overshoot `a.time` by an ulp,
                    // and coupled trajectories must place the identical
                    // arrival jump at the identical epoch or the merged
                    // comparison reads one of them pre-jump.
                    debug_assert!((time - a.time).abs() <= 1e-9 * (1.0 + a.time.abs()));
                    time = a.time;
                }
            }

            inelastic.retain(|jb| !jb.is_done());
            elastic.retain(|jb| !jb.is_done());

            // Pre-jump sample at this epoch.
            samples.push(snapshot(time, &inelastic, &elastic));

            if arrival_next {
                if let Some(a) = pending {
                    let job = Job::new(next_id, a.class, a.size, a.time);
                    next_id += 1;
                    match a.class {
                        JobClass::Inelastic => inelastic.push_back(job),
                        JobClass::Elastic => elastic.push_back(job),
                    }
                    pending = source.next_arrival();
                    // Post-jump sample (same epoch, larger work).
                    samples.push(snapshot(time, &inelastic, &elastic));
                }
            }
        }
        Self { samples }
    }

    /// The recorded samples.
    pub fn samples(&self) -> &[WorkSample] {
        &self.samples
    }

    /// Final epoch of the trajectory (system empty afterwards).
    pub fn end_time(&self) -> f64 {
        self.samples.last().map_or(0.0, |s| s.time)
    }

    /// Exact `(W(t), W_I(t))` by linear interpolation. At an arrival epoch
    /// the post-jump value is returned; beyond the final sample the system
    /// stays as recorded there (empty, for drained traces).
    pub fn value_at(&self, t: f64) -> (f64, f64) {
        if self.samples.is_empty() {
            return (0.0, 0.0);
        }
        let first = self.samples[0];
        if t < first.time {
            return (first.total, first.inelastic);
        }
        let last_idx = self.samples.len() - 1;
        if self.samples[last_idx].time <= t {
            let last = self.samples[last_idx];
            return (last.total, last.inelastic);
        }
        // Maximal index with time <= t (rightmost among equal epochs, i.e.
        // the post-jump twin); invariant samples[lo].time <= t < samples[hi].time.
        let mut lo = 0usize;
        let mut hi = last_idx;
        while lo + 1 < hi {
            let mid = (lo + hi) / 2;
            if self.samples[mid].time <= t {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        let a = self.samples[lo];
        if a.time == t {
            return (a.total, a.inelastic);
        }
        let b = self.samples[hi];
        let frac = (t - a.time) / (b.time - a.time);
        (
            a.total + frac * (b.total - a.total),
            a.inelastic + frac * (b.inelastic - a.inelastic),
        )
    }

    /// All distinct epochs in the trajectory.
    pub fn epochs(&self) -> Vec<f64> {
        let mut e: Vec<f64> = self.samples.iter().map(|s| s.time).collect();
        e.dedup();
        e
    }
}

/// Checks `a.W(t) ≤ b.W(t) + tol` and `a.W_I(t) ≤ b.W_I(t) + tol` at every
/// merged event epoch of the two trajectories (sufficient for all `t` since
/// both are linear between merged epochs). Returns the first violating
/// epoch, or `None` when dominance holds throughout.
pub fn dominates_throughout(a: &WorkTrajectory, b: &WorkTrajectory, tol: f64) -> Option<f64> {
    let mut epochs: Vec<f64> = a.epochs();
    epochs.extend(b.epochs());
    epochs.sort_by(|x, y| x.partial_cmp(y).expect("finite epochs"));
    epochs.dedup();
    for &t in &epochs {
        let (wa, wia) = a.value_at(t);
        let (wb, wib) = b.value_at(t);
        if wa > wb + tol || wia > wib + tol {
            return Some(t);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{ElasticFirst, FairShare, InelasticFirst, TablePolicy};
    use eirs_queueing::Exponential;

    fn sample_trace(seed: u64, horizon: f64) -> ArrivalTrace {
        ArrivalTrace::record_poisson(
            1.0,
            0.8,
            Box::new(Exponential::new(1.0)),
            Box::new(Exponential::new(0.5)),
            seed,
            horizon,
        )
    }

    #[test]
    fn trajectory_starts_at_zero_and_ends_empty() {
        let tr = sample_trace(1, 30.0);
        let w = WorkTrajectory::record(&InelasticFirst, &tr, 4);
        assert_eq!(w.samples()[0].total, 0.0);
        let last = w.samples().last().unwrap();
        assert!(last.total < 1e-9);
        assert!(last.inelastic < 1e-9);
    }

    #[test]
    fn interpolation_is_exact_on_a_single_job() {
        // One inelastic job of size 2, k=1: W(t) = 2 − t on [0, 2].
        let tr = ArrivalTrace::new(vec![Arrival {
            time: 0.0,
            class: JobClass::Inelastic,
            size: 2.0,
        }]);
        let w = WorkTrajectory::record(&InelasticFirst, &tr, 1);
        for t in [0.0, 0.5, 1.0, 1.5, 2.0, 3.0] {
            let (total, inelastic) = w.value_at(t);
            let want = (2.0 - t).max(0.0);
            assert!((total - want).abs() < 1e-12, "t={t}: {total} vs {want}");
            assert!((inelastic - want).abs() < 1e-12);
        }
    }

    #[test]
    fn arrival_jumps_are_recorded_pre_and_post() {
        let tr = ArrivalTrace::new(vec![
            Arrival {
                time: 0.0,
                class: JobClass::Inelastic,
                size: 1.0,
            },
            Arrival {
                time: 0.5,
                class: JobClass::Inelastic,
                size: 1.0,
            },
        ]);
        let w = WorkTrajectory::record(&InelasticFirst, &tr, 1);
        // Just after t=0.5 the work is 0.5 (old job) + 1.0 (new) = 1.5.
        let (total, _) = w.value_at(0.5);
        assert!((total - 1.5).abs() < 1e-12, "post-jump {total}");
        // Just before: 0.5 + ε of work. Interpolating at 0.499 ≈ 0.501.
        let (just_before, _) = w.value_at(0.499);
        assert!((just_before - 0.501).abs() < 1e-9, "pre-jump {just_before}");
    }

    #[test]
    fn if_dominates_ef_in_work_on_random_traces() {
        // Theorem 3: IF has pointwise-minimal W and W_I among class-P
        // policies (EF is in class P).
        for seed in 0..8 {
            let tr = sample_trace(seed, 60.0);
            let wif = WorkTrajectory::record(&InelasticFirst, &tr, 4);
            let wef = WorkTrajectory::record(&ElasticFirst, &tr, 4);
            let violation = dominates_throughout(&wif, &wef, 1e-7);
            assert!(
                violation.is_none(),
                "seed {seed}: violation at {violation:?}"
            );
        }
    }

    #[test]
    fn if_dominates_random_class_p_policies() {
        for seed in 0..6 {
            let tr = sample_trace(100 + seed, 40.0);
            let wif = WorkTrajectory::record(&InelasticFirst, &tr, 4);
            let pol = TablePolicy::random_class_p(seed);
            let wp = WorkTrajectory::record(&pol, &tr, 4);
            let violation = dominates_throughout(&wif, &wp, 1e-7);
            assert!(
                violation.is_none(),
                "seed {seed}: violation at {violation:?}"
            );
        }
    }

    #[test]
    fn if_dominates_fair_share() {
        let tr = sample_trace(55, 50.0);
        let wif = WorkTrajectory::record(&InelasticFirst, &tr, 8);
        let wfs = WorkTrajectory::record(&FairShare, &tr, 8);
        assert!(dominates_throughout(&wif, &wfs, 1e-7).is_none());
    }

    #[test]
    fn dominance_detects_real_violations() {
        // EF does NOT dominate IF in inelastic work: inelastic work piles up
        // while EF serves elastic jobs.
        let tr = ArrivalTrace::new(vec![
            Arrival {
                time: 0.0,
                class: JobClass::Inelastic,
                size: 1.0,
            },
            Arrival {
                time: 0.0,
                class: JobClass::Elastic,
                size: 4.0,
            },
        ]);
        let wif = WorkTrajectory::record(&InelasticFirst, &tr, 2);
        let wef = WorkTrajectory::record(&ElasticFirst, &tr, 2);
        // IF should dominate EF…
        assert!(dominates_throughout(&wif, &wef, 1e-9).is_none());
        // …and EF must NOT dominate IF here (inelastic work ordering breaks).
        assert!(dominates_throughout(&wef, &wif, 1e-9).is_some());
    }
}
