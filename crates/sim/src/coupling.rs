//! Coupled sample-path experiments (the experimental face of Theorem 3)
//! and common-random-numbers paired comparisons.
//!
//! Theorem 3 couples Inelastic-First with an arbitrary class-P policy on a
//! *fixed arrival sequence* and shows the total work `W(t)` and inelastic
//! work `W_I(t)` are pointwise smaller under IF. This module records those
//! trajectories from the simulator and checks dominance.
//!
//! The same coupling idea powers variance reduction for *steady-state
//! policy comparisons*: [`paired_comparison`] runs two policies on the
//! identical arrival sample path per replication (the arrival source is
//! rebuilt from the same seed, and every random quantity — interarrival
//! times, classes, and job sizes — lives in the source), so the
//! difference estimator `E[T_A] − E[T_B]` keeps only the policy effect
//! and sheds the common arrival noise. The `eirs_opt` DES objective is
//! built on this: candidates in a policy search are scored on one fixed
//! seed set, making every pairwise comparison a paired one.
//!
//! Work trajectories are piecewise linear between events (service drains
//! work at the constant allocated rate) with upward jumps at arrivals, so a
//! trajectory is stored as the sequence of event-epoch samples, recording
//! *both* the pre-jump and post-jump value at arrival instants. Evaluation
//! between samples is exact linear interpolation, and dominance over all
//! `t ≥ 0` reduces to dominance at the merged epochs of the two
//! trajectories.

use crate::arrivals::{Arrival, ArrivalSource, ArrivalTrace};
use crate::des::{DesConfig, SimReport, Simulation};
use crate::job::{Job, JobClass};
use crate::policy::{assert_feasible, AllocationPolicy};
use crate::replicate::replication_seeds;
use crate::stats::ReplicationStats;
use eirs_numerics::parallel;
use std::collections::VecDeque;

/// One sampled point of a work trajectory.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkSample {
    /// Event epoch.
    pub time: f64,
    /// Total remaining work in system.
    pub total: f64,
    /// Remaining inelastic work in system.
    pub inelastic: f64,
}

/// A recorded piecewise-linear work trajectory.
#[derive(Debug, Clone, Default)]
pub struct WorkTrajectory {
    samples: Vec<WorkSample>,
}

impl WorkTrajectory {
    /// Runs `policy` on `trace` (drain-to-empty) with `k` servers and
    /// records `(W(t), W_I(t))` at every event epoch.
    pub fn record(policy: &dyn AllocationPolicy, trace: &ArrivalTrace, k: u32) -> Self {
        let mut stream = trace.stream();
        Self::record_from_source(policy, &mut stream, k)
    }

    fn record_from_source(
        policy: &dyn AllocationPolicy,
        source: &mut dyn ArrivalSource,
        k: u32,
    ) -> Self {
        let name = policy.name();
        let mut inelastic: VecDeque<Job> = VecDeque::new();
        let mut elastic: VecDeque<Job> = VecDeque::new();
        let mut time = 0.0f64;
        let mut next_id = 0u64;
        let mut pending = source.next_arrival();
        let mut samples = Vec::new();

        let snapshot = |time: f64, inel: &VecDeque<Job>, el: &VecDeque<Job>| {
            let wi: f64 = inel.iter().map(|j| j.remaining).sum();
            let we: f64 = el.iter().map(|j| j.remaining).sum();
            WorkSample {
                time,
                total: wi + we,
                inelastic: wi,
            }
        };
        samples.push(snapshot(0.0, &inelastic, &elastic));

        loop {
            if pending.is_none() && inelastic.is_empty() && elastic.is_empty() {
                break;
            }
            let i = inelastic.len();
            let j = elastic.len();
            let alloc = policy.allocate(i, j, k);
            assert_feasible(alloc, i, j, k, &name);

            let whole = alloc.inelastic.floor() as usize;
            let frac = alloc.inelastic - whole as f64;
            let rate_of = |idx: usize| -> f64 {
                if idx < whole {
                    1.0
                } else if idx == whole {
                    frac
                } else {
                    0.0
                }
            };

            let mut dt = f64::INFINITY;
            for (idx, job) in inelastic.iter().enumerate().take(whole + 1) {
                let r = rate_of(idx);
                if r > 0.0 {
                    dt = dt.min(job.remaining / r);
                }
            }
            if alloc.elastic > 0.0 {
                if let Some(head) = elastic.front() {
                    dt = dt.min(head.remaining / alloc.elastic);
                }
            }
            let dt_arr = pending.map_or(f64::INFINITY, |a: Arrival| (a.time - time).max(0.0));
            let arrival_next = dt_arr <= dt;
            dt = dt.min(dt_arr);
            assert!(
                dt.is_finite(),
                "policy {name} idles forever with jobs present in state ({i},{j})"
            );

            if dt > 0.0 {
                for (idx, job) in inelastic.iter_mut().enumerate().take(whole + 1) {
                    let r = rate_of(idx);
                    if r > 0.0 {
                        job.remaining = (job.remaining - r * dt).max(0.0);
                    }
                }
                if alloc.elastic > 0.0 {
                    if let Some(head) = elastic.front_mut() {
                        head.remaining = (head.remaining - alloc.elastic * dt).max(0.0);
                    }
                }
                time += dt;
            }
            if arrival_next {
                if let Some(a) = pending {
                    // Snap exactly onto the trace's arrival epoch: the
                    // accumulated clock can overshoot `a.time` by an ulp,
                    // and coupled trajectories must place the identical
                    // arrival jump at the identical epoch or the merged
                    // comparison reads one of them pre-jump.
                    debug_assert!((time - a.time).abs() <= 1e-9 * (1.0 + a.time.abs()));
                    time = a.time;
                }
            }

            inelastic.retain(|jb| !jb.is_done());
            elastic.retain(|jb| !jb.is_done());

            // Pre-jump sample at this epoch.
            samples.push(snapshot(time, &inelastic, &elastic));

            if arrival_next {
                if let Some(a) = pending {
                    let job = Job::new(next_id, a.class, a.size, a.time);
                    next_id += 1;
                    match a.class {
                        JobClass::Inelastic => inelastic.push_back(job),
                        JobClass::Elastic => elastic.push_back(job),
                    }
                    pending = source.next_arrival();
                    // Post-jump sample (same epoch, larger work).
                    samples.push(snapshot(time, &inelastic, &elastic));
                }
            }
        }
        Self { samples }
    }

    /// The recorded samples.
    pub fn samples(&self) -> &[WorkSample] {
        &self.samples
    }

    /// Final epoch of the trajectory (system empty afterwards).
    pub fn end_time(&self) -> f64 {
        self.samples.last().map_or(0.0, |s| s.time)
    }

    /// Exact `(W(t), W_I(t))` by linear interpolation. At an arrival epoch
    /// the post-jump value is returned; beyond the final sample the system
    /// stays as recorded there (empty, for drained traces).
    pub fn value_at(&self, t: f64) -> (f64, f64) {
        if self.samples.is_empty() {
            return (0.0, 0.0);
        }
        let first = self.samples[0];
        if t < first.time {
            return (first.total, first.inelastic);
        }
        let last_idx = self.samples.len() - 1;
        if self.samples[last_idx].time <= t {
            let last = self.samples[last_idx];
            return (last.total, last.inelastic);
        }
        // Maximal index with time <= t (rightmost among equal epochs, i.e.
        // the post-jump twin); invariant samples[lo].time <= t < samples[hi].time.
        let mut lo = 0usize;
        let mut hi = last_idx;
        while lo + 1 < hi {
            let mid = (lo + hi) / 2;
            if self.samples[mid].time <= t {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        let a = self.samples[lo];
        if a.time == t {
            return (a.total, a.inelastic);
        }
        let b = self.samples[hi];
        let frac = (t - a.time) / (b.time - a.time);
        (
            a.total + frac * (b.total - a.total),
            a.inelastic + frac * (b.inelastic - a.inelastic),
        )
    }

    /// All distinct epochs in the trajectory.
    pub fn epochs(&self) -> Vec<f64> {
        let mut e: Vec<f64> = self.samples.iter().map(|s| s.time).collect();
        e.dedup();
        e
    }
}

/// Checks `a.W(t) ≤ b.W(t) + tol` and `a.W_I(t) ≤ b.W_I(t) + tol` at every
/// merged event epoch of the two trajectories (sufficient for all `t` since
/// both are linear between merged epochs). Returns the first violating
/// epoch, or `None` when dominance holds throughout.
pub fn dominates_throughout(a: &WorkTrajectory, b: &WorkTrajectory, tol: f64) -> Option<f64> {
    let mut epochs: Vec<f64> = a.epochs();
    epochs.extend(b.epochs());
    epochs.sort_by(|x, y| x.partial_cmp(y).expect("finite epochs"));
    epochs.dedup();
    for &t in &epochs {
        let (wa, wia) = a.value_at(t);
        let (wb, wib) = b.value_at(t);
        if wa > wb + tol || wia > wib + tol {
            return Some(t);
        }
    }
    None
}

/// Runs `policy_a` and `policy_b` on the **same** arrival sample path for
/// each of `n` replications (common random numbers): replication `r`
/// derives its seed from `base_seed` via the SplitMix64 stream, builds the
/// arrival source from that seed *twice* through `make_source`, and feeds
/// one copy to each policy. Because every random quantity of the model —
/// interarrival times, job classes, and job sizes — is drawn inside the
/// source, the two runs see bit-identical traffic and differ only in the
/// allocation decisions.
///
/// Returns the per-replication report pairs in seed order (parallel over
/// the sweep workers, bit-identical to serial). Feed them to
/// [`paired_diff`] for the variance-reduced difference CI.
#[allow(clippy::too_many_arguments)]
pub fn paired_comparison<S>(
    policy_a: &dyn AllocationPolicy,
    policy_b: &dyn AllocationPolicy,
    k: u32,
    base_seed: u64,
    n: usize,
    warmup: u64,
    departures: u64,
    make_source: S,
) -> Vec<(SimReport, SimReport)>
where
    S: Fn(u64) -> Box<dyn ArrivalSource> + Sync,
{
    let seeds = replication_seeds(base_seed, n);
    parallel::par_map_ordered(&seeds, parallel::num_threads(), |&seed| {
        let cfg = DesConfig::steady_state(k, warmup, departures);
        let mut source_a = make_source(seed);
        let a = Simulation::new(cfg).run(policy_a, source_a.as_mut());
        let mut source_b = make_source(seed);
        let b = Simulation::new(cfg).run(policy_b, source_b.as_mut());
        (a, b)
    })
}

/// Collapses [`paired_comparison`] output into replication statistics of
/// the per-replication mean-response **difference** `E[T_A] − E[T_B]`.
/// The resulting CI is the paired-t interval: strictly tighter than the
/// independent-seeds interval whenever the two runs are positively
/// correlated, which common random numbers guarantee in practice (the
/// module tests assert the reduction on an EF-vs-IF comparison).
pub fn paired_diff(pairs: &[(SimReport, SimReport)]) -> ReplicationStats {
    pairs
        .iter()
        .map(|(a, b)| a.mean_response - b.mean_response)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrivals::PoissonStream;
    use crate::policy::{ElasticFirst, FairShare, InelasticFirst, TablePolicy};
    use eirs_queueing::Exponential;

    fn sample_trace(seed: u64, horizon: f64) -> ArrivalTrace {
        ArrivalTrace::record_poisson(
            1.0,
            0.8,
            Box::new(Exponential::new(1.0)),
            Box::new(Exponential::new(0.5)),
            seed,
            horizon,
        )
    }

    #[test]
    fn trajectory_starts_at_zero_and_ends_empty() {
        let tr = sample_trace(1, 30.0);
        let w = WorkTrajectory::record(&InelasticFirst, &tr, 4);
        assert_eq!(w.samples()[0].total, 0.0);
        let last = w.samples().last().unwrap();
        assert!(last.total < 1e-9);
        assert!(last.inelastic < 1e-9);
    }

    #[test]
    fn interpolation_is_exact_on_a_single_job() {
        // One inelastic job of size 2, k=1: W(t) = 2 − t on [0, 2].
        let tr = ArrivalTrace::new(vec![Arrival {
            time: 0.0,
            class: JobClass::Inelastic,
            size: 2.0,
        }]);
        let w = WorkTrajectory::record(&InelasticFirst, &tr, 1);
        for t in [0.0, 0.5, 1.0, 1.5, 2.0, 3.0] {
            let (total, inelastic) = w.value_at(t);
            let want = (2.0 - t).max(0.0);
            assert!((total - want).abs() < 1e-12, "t={t}: {total} vs {want}");
            assert!((inelastic - want).abs() < 1e-12);
        }
    }

    #[test]
    fn arrival_jumps_are_recorded_pre_and_post() {
        let tr = ArrivalTrace::new(vec![
            Arrival {
                time: 0.0,
                class: JobClass::Inelastic,
                size: 1.0,
            },
            Arrival {
                time: 0.5,
                class: JobClass::Inelastic,
                size: 1.0,
            },
        ]);
        let w = WorkTrajectory::record(&InelasticFirst, &tr, 1);
        // Just after t=0.5 the work is 0.5 (old job) + 1.0 (new) = 1.5.
        let (total, _) = w.value_at(0.5);
        assert!((total - 1.5).abs() < 1e-12, "post-jump {total}");
        // Just before: 0.5 + ε of work. Interpolating at 0.499 ≈ 0.501.
        let (just_before, _) = w.value_at(0.499);
        assert!((just_before - 0.501).abs() < 1e-9, "pre-jump {just_before}");
    }

    #[test]
    fn if_dominates_ef_in_work_on_random_traces() {
        // Theorem 3: IF has pointwise-minimal W and W_I among class-P
        // policies (EF is in class P).
        for seed in 0..8 {
            let tr = sample_trace(seed, 60.0);
            let wif = WorkTrajectory::record(&InelasticFirst, &tr, 4);
            let wef = WorkTrajectory::record(&ElasticFirst, &tr, 4);
            let violation = dominates_throughout(&wif, &wef, 1e-7);
            assert!(
                violation.is_none(),
                "seed {seed}: violation at {violation:?}"
            );
        }
    }

    #[test]
    fn if_dominates_random_class_p_policies() {
        for seed in 0..6 {
            let tr = sample_trace(100 + seed, 40.0);
            let wif = WorkTrajectory::record(&InelasticFirst, &tr, 4);
            let pol = TablePolicy::random_class_p(seed);
            let wp = WorkTrajectory::record(&pol, &tr, 4);
            let violation = dominates_throughout(&wif, &wp, 1e-7);
            assert!(
                violation.is_none(),
                "seed {seed}: violation at {violation:?}"
            );
        }
    }

    #[test]
    fn if_dominates_fair_share() {
        let tr = sample_trace(55, 50.0);
        let wif = WorkTrajectory::record(&InelasticFirst, &tr, 8);
        let wfs = WorkTrajectory::record(&FairShare, &tr, 8);
        assert!(dominates_throughout(&wif, &wfs, 1e-7).is_none());
    }

    /// An open-regime (µ_I < µ_E) Poisson source at load 0.6 on 4 servers;
    /// everything random is drawn inside the source, so two sources built
    /// from the same seed replay the identical sample path.
    fn crn_source(seed: u64) -> Box<dyn ArrivalSource> {
        Box::new(PoissonStream::new(
            0.8,
            0.8,
            Box::new(Exponential::new(0.5)),
            Box::new(Exponential::new(1.0)),
            seed,
        ))
    }

    #[test]
    fn paired_runs_share_the_exact_sample_path() {
        // Same policy on both sides of the pairing: with common random
        // numbers the two runs are bit-identical, so every difference is 0.
        let pairs = paired_comparison(
            &InelasticFirst,
            &InelasticFirst,
            4,
            11,
            4,
            500,
            5_000,
            crn_source,
        );
        for (a, b) in &pairs {
            assert_eq!(a.mean_response.to_bits(), b.mean_response.to_bits());
            assert_eq!(a.completed, b.completed);
        }
        let diff = paired_diff(&pairs);
        assert_eq!(diff.mean(), 0.0);
    }

    #[test]
    fn paired_variance_is_strictly_below_independent_seed_variance() {
        // EF vs IF in the open regime: the policies genuinely differ, so
        // the difference is nonzero, and common random numbers must shrink
        // its replication CI strictly below the independent-seeds CI.
        let n = 8;
        let (warmup, departures) = (2_000, 20_000);
        let pairs = paired_comparison(
            &ElasticFirst,
            &InelasticFirst,
            4,
            7,
            n,
            warmup,
            departures,
            crn_source,
        );
        let paired = paired_diff(&pairs);

        let run_one = |policy: &dyn AllocationPolicy, seed: u64| {
            let mut src = crn_source(seed);
            Simulation::new(DesConfig::steady_state(4, warmup, departures))
                .run(policy, src.as_mut())
        };
        let seeds_a = replication_seeds(7, n);
        let seeds_b = replication_seeds(1_007, n);
        let independent: ReplicationStats = seeds_a
            .iter()
            .zip(&seeds_b)
            .map(|(&sa, &sb)| {
                run_one(&ElasticFirst, sa).mean_response
                    - run_one(&InelasticFirst, sb).mean_response
            })
            .collect();

        let hw_paired = paired.confidence_interval().half_width;
        let hw_independent = independent.confidence_interval().half_width;
        assert!(
            hw_paired < hw_independent,
            "paired CI {hw_paired} should beat independent CI {hw_independent}"
        );
        // The comparison itself is real, and the paired CI is tight
        // enough to resolve it: at µ_I < µ_E this operating point is in
        // the regime where EF beats IF (Theorem 6's direction), and the
        // interval must exclude zero.
        let ci = paired.confidence_interval();
        assert!(
            ci.mean + ci.half_width < 0.0,
            "paired EF - IF CI should resolve the winner: {ci:?}"
        );
    }

    #[test]
    fn dominance_detects_real_violations() {
        // EF does NOT dominate IF in inelastic work: inelastic work piles up
        // while EF serves elastic jobs.
        let tr = ArrivalTrace::new(vec![
            Arrival {
                time: 0.0,
                class: JobClass::Inelastic,
                size: 1.0,
            },
            Arrival {
                time: 0.0,
                class: JobClass::Elastic,
                size: 4.0,
            },
        ]);
        let wif = WorkTrajectory::record(&InelasticFirst, &tr, 2);
        let wef = WorkTrajectory::record(&ElasticFirst, &tr, 2);
        // IF should dominate EF…
        assert!(dominates_throughout(&wif, &wef, 1e-9).is_none());
        // …and EF must NOT dominate IF here (inelastic work ordering breaks).
        assert!(dominates_throughout(&wef, &wif, 1e-9).is_some());
    }
}
