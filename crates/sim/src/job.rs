//! Jobs and job classes.

/// The two job classes of the model (paper Section 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum JobClass {
    /// Runs on at most one server at a time.
    Inelastic,
    /// Parallelizes linearly across any (fractional) number of servers.
    Elastic,
}

impl JobClass {
    /// Both classes, in a fixed order.
    pub const ALL: [JobClass; 2] = [JobClass::Inelastic, JobClass::Elastic];

    /// Short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            JobClass::Inelastic => "inelastic",
            JobClass::Elastic => "elastic",
        }
    }
}

/// A job inside the simulated system.
#[derive(Debug, Clone, PartialEq)]
pub struct Job {
    /// Unique id, in arrival order.
    pub id: u64,
    /// Elastic or inelastic.
    pub class: JobClass,
    /// Inherent work (running time on one server).
    pub size: f64,
    /// Work still to be done.
    pub remaining: f64,
    /// Time the job entered the system.
    pub arrival: f64,
}

impl Job {
    /// A fresh job with full remaining work.
    pub fn new(id: u64, class: JobClass, size: f64, arrival: f64) -> Self {
        debug_assert!(size >= 0.0 && size.is_finite());
        Self {
            id,
            class,
            size,
            remaining: size,
            arrival,
        }
    }

    /// `true` once the job has no work left (to numerical tolerance).
    pub fn is_done(&self) -> bool {
        self.remaining <= 1e-12 * self.size.max(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_job_has_full_remaining() {
        let j = Job::new(1, JobClass::Elastic, 2.5, 0.0);
        assert_eq!(j.remaining, 2.5);
        assert!(!j.is_done());
    }

    #[test]
    fn done_detection_is_tolerant() {
        let mut j = Job::new(1, JobClass::Inelastic, 1.0, 0.0);
        j.remaining = 1e-15;
        assert!(j.is_done());
    }

    #[test]
    fn labels() {
        assert_eq!(JobClass::Elastic.label(), "elastic");
        assert_eq!(JobClass::Inelastic.label(), "inelastic");
    }
}
