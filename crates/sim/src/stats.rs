//! Simulation statistics: streaming moments, time averages, and replication
//! confidence intervals.

use eirs_numerics::NeumaierSum;

/// Streaming mean/variance via Welford's algorithm.
#[derive(Debug, Clone, Default)]
pub struct Welford {
    n: u64,
    mean: f64,
    m2: f64,
}

impl Welford {
    /// Fresh accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance (0 with fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }
}

/// A time-weighted average: accumulates `∫ value dt` and divides by elapsed
/// time. Used for `E[N]`, `E[W]`, utilization, etc.
#[derive(Debug, Clone, Default)]
pub struct TimeAverage {
    integral: NeumaierSum,
    elapsed: f64,
}

impl TimeAverage {
    /// Fresh accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records that the tracked quantity held `value` for `dt` time units.
    pub fn add(&mut self, value: f64, dt: f64) {
        debug_assert!(dt >= 0.0, "negative dt {dt}");
        self.integral.add(value * dt);
        self.elapsed += dt;
    }

    /// The accumulated integral `∫ value dt`.
    pub fn integral(&self) -> f64 {
        self.integral.value()
    }

    /// Total observed time.
    pub fn elapsed(&self) -> f64 {
        self.elapsed
    }

    /// The time average (0 when no time has elapsed).
    pub fn average(&self) -> f64 {
        if self.elapsed > 0.0 {
            self.integral.value() / self.elapsed
        } else {
            0.0
        }
    }
}

/// A symmetric confidence interval around a point estimate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConfidenceInterval {
    /// Point estimate (mean of replication means).
    pub mean: f64,
    /// Half-width of the interval.
    pub half_width: f64,
}

impl ConfidenceInterval {
    /// `true` when `value` lies inside the interval.
    pub fn contains(&self, value: f64) -> bool {
        (value - self.mean).abs() <= self.half_width
    }

    /// Relative half-width `half_width / mean` (precision of the estimate).
    pub fn relative_precision(&self) -> f64 {
        self.half_width / self.mean.abs().max(f64::MIN_POSITIVE)
    }
}

/// Aggregates independent replication estimates into a 95% CI.
///
/// Uses Student-t critical values for small replication counts (the usual
/// simulation-methodology practice) and the normal 1.96 beyond 30.
#[derive(Debug, Clone, Default)]
pub struct ReplicationStats {
    w: Welford,
}

impl ReplicationStats {
    /// Fresh accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one replication's point estimate.
    pub fn push(&mut self, estimate: f64) {
        self.w.push(estimate);
    }

    /// Number of replications so far.
    pub fn count(&self) -> u64 {
        self.w.count()
    }

    /// Mean across replications.
    pub fn mean(&self) -> f64 {
        self.w.mean()
    }

    /// 95% confidence interval for the mean. Requires ≥ 2 replications.
    pub fn confidence_interval(&self) -> ConfidenceInterval {
        let n = self.w.count();
        assert!(n >= 2, "confidence interval needs at least 2 replications");
        let t = t_critical_95(n - 1);
        let se = (self.w.variance() / n as f64).sqrt();
        ConfidenceInterval {
            mean: self.w.mean(),
            half_width: t * se,
        }
    }
}

impl FromIterator<f64> for ReplicationStats {
    /// Collects replication point estimates, so callers of the
    /// replication drivers can go straight from reports to a CI:
    /// `reports.iter().map(|r| r.mean_response).collect()`.
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut stats = Self::new();
        for estimate in iter {
            stats.push(estimate);
        }
        stats
    }
}

/// Batch-means confidence intervals from a *single* long run.
///
/// Consecutive observations from a steady-state simulation are
/// autocorrelated, so the naive sample variance understates the error.
/// Batch means groups the stream into `batch_size`-observation batches;
/// batch averages are approximately independent once batches span several
/// autocorrelation times, and a replication-style CI applies to them.
#[derive(Debug, Clone)]
pub struct BatchMeans {
    batch_size: u64,
    current_sum: f64,
    current_count: u64,
    batches: ReplicationStats,
}

impl BatchMeans {
    /// Batches of `batch_size` observations each.
    pub fn new(batch_size: u64) -> Self {
        assert!(batch_size >= 1);
        Self {
            batch_size,
            current_sum: 0.0,
            current_count: 0,
            batches: ReplicationStats::new(),
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.current_sum += x;
        self.current_count += 1;
        if self.current_count == self.batch_size {
            self.batches.push(self.current_sum / self.batch_size as f64);
            self.current_sum = 0.0;
            self.current_count = 0;
        }
    }

    /// Completed batches so far.
    pub fn batch_count(&self) -> u64 {
        self.batches.count()
    }

    /// Mean over completed batches.
    pub fn mean(&self) -> f64 {
        self.batches.mean()
    }

    /// 95% CI over completed batches (requires ≥ 2 complete batches).
    pub fn confidence_interval(&self) -> ConfidenceInterval {
        self.batches.confidence_interval()
    }
}

/// Two-sided 95% Student-t critical values by degrees of freedom.
fn t_critical_95(df: u64) -> f64 {
    const TABLE: [f64; 30] = [
        12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179, 2.160,
        2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
        2.052, 2.048, 2.045, 2.042,
    ];
    if df == 0 {
        f64::INFINITY
    } else if (df as usize) <= TABLE.len() {
        TABLE[df as usize - 1]
    } else {
        1.96
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_closed_form() {
        let mut w = Welford::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            w.push(x);
        }
        assert!((w.mean() - 5.0).abs() < 1e-12);
        // Population variance is 4 → sample variance is 4 * 8/7.
        assert!((w.variance() - 32.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn time_average_weights_by_duration() {
        let mut ta = TimeAverage::new();
        ta.add(1.0, 3.0);
        ta.add(5.0, 1.0);
        assert!((ta.average() - 2.0).abs() < 1e-12);
        assert!((ta.integral() - 8.0).abs() < 1e-12);
        assert!((ta.elapsed() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn empty_time_average_is_zero() {
        assert_eq!(TimeAverage::new().average(), 0.0);
    }

    #[test]
    fn replication_ci_covers_true_mean() {
        // Deterministic pseudo-replications around 10.
        let mut rs = ReplicationStats::new();
        for d in [-0.3, 0.1, 0.4, -0.2, 0.05, -0.1, 0.2, -0.15] {
            rs.push(10.0 + d);
        }
        let ci = rs.confidence_interval();
        assert!(ci.contains(10.0), "{ci:?}");
        assert!(ci.half_width > 0.0);
    }

    #[test]
    fn batch_means_groups_observations() {
        let mut bm = BatchMeans::new(3);
        for x in [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0] {
            bm.push(x);
        }
        // Two complete batches: means 2 and 5; the 7.0 is still pending.
        assert_eq!(bm.batch_count(), 2);
        assert!((bm.mean() - 3.5).abs() < 1e-12);
    }

    #[test]
    fn batch_means_ci_covers_the_mean_of_an_iid_stream() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(17);
        let mut bm = BatchMeans::new(500);
        for _ in 0..50_000 {
            bm.push(rng.random::<f64>()); // Uniform(0,1), mean 0.5
        }
        let ci = bm.confidence_interval();
        assert!(ci.contains(0.5), "{ci:?}");
        assert!(ci.half_width < 0.01);
    }

    #[test]
    fn t_critical_decreases_with_df() {
        assert!(t_critical_95(1) > t_critical_95(5));
        assert!(t_critical_95(5) > t_critical_95(29));
        assert!((t_critical_95(1000) - 1.96).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least 2 replications")]
    fn ci_requires_two_replications() {
        let mut rs = ReplicationStats::new();
        rs.push(1.0);
        let _ = rs.confidence_interval();
    }
}
