//! Fast state-level CTMC simulation.
//!
//! In the Markovian model (Poisson arrivals, exponential sizes) the process
//! `(N_I(t), N_E(t))` is itself a CTMC whose transition rates depend only on
//! the policy's class-level allocation (paper Figure 1) — exactly the
//! observation behind Theorem 2. Simulating this jump chain avoids tracking
//! individual jobs and is an order of magnitude faster than the job-level
//! DES; mean response times follow from Little's law. Used for the tight
//! validation columns of the Section 5 experiments.

use crate::policy::AllocationPolicy;
use crate::stats::TimeAverage;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of a state-level run.
#[derive(Debug, Clone, Copy)]
pub struct CtmcSimConfig {
    /// Servers.
    pub k: u32,
    /// Inelastic arrival rate λ_I.
    pub lambda_i: f64,
    /// Elastic arrival rate λ_E.
    pub lambda_e: f64,
    /// Inelastic size rate µ_I.
    pub mu_i: f64,
    /// Elastic size rate µ_E.
    pub mu_e: f64,
    /// Jumps to simulate after warm-up.
    pub jumps: u64,
    /// Jumps to discard as warm-up.
    pub warmup_jumps: u64,
    /// RNG seed.
    pub seed: u64,
}

/// Mean-value estimates from a state-level run.
#[derive(Debug, Clone, Copy)]
pub struct CtmcSimReport {
    /// Time-average number of inelastic jobs `E[N_I]`.
    pub mean_n_i: f64,
    /// Time-average number of elastic jobs `E[N_E]`.
    pub mean_n_e: f64,
    /// Mean response time over both classes (Little's law).
    pub mean_response: f64,
    /// Mean inelastic response time `E[N_I]/λ_I` (`NaN` when `λ_I = 0`).
    pub mean_response_i: f64,
    /// Mean elastic response time `E[N_E]/λ_E` (`NaN` when `λ_E = 0`).
    pub mean_response_e: f64,
    /// Simulated (post-warm-up) time span.
    pub elapsed: f64,
}

/// Simulates the `(N_I, N_E)` jump chain under `policy`.
pub fn simulate_state_level(policy: &dyn AllocationPolicy, cfg: CtmcSimConfig) -> CtmcSimReport {
    assert!(cfg.lambda_i >= 0.0 && cfg.lambda_e >= 0.0);
    assert!(cfg.mu_i > 0.0 && cfg.mu_e > 0.0);
    assert!(cfg.lambda_i + cfg.lambda_e > 0.0);
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut i: usize = 0;
    let mut j: usize = 0;
    let mut n_i = TimeAverage::new();
    let mut n_e = TimeAverage::new();

    let total_jumps = cfg.warmup_jumps + cfg.jumps;
    for step in 0..total_jumps {
        let alloc = policy.allocate(i, j, cfg.k);
        let d_i = alloc.inelastic * cfg.mu_i;
        let d_e = alloc.elastic * cfg.mu_e;
        let total = cfg.lambda_i + cfg.lambda_e + d_i + d_e;
        let u: f64 = rng.random();
        let dt = -(1.0 - u).ln() / total;
        if step >= cfg.warmup_jumps {
            n_i.add(i as f64, dt);
            n_e.add(j as f64, dt);
        }
        let pick: f64 = rng.random::<f64>() * total;
        if pick < cfg.lambda_i {
            i += 1;
        } else if pick < cfg.lambda_i + cfg.lambda_e {
            j += 1;
        } else if pick < cfg.lambda_i + cfg.lambda_e + d_i {
            debug_assert!(i > 0, "inelastic departure from empty class");
            i -= 1;
        } else {
            debug_assert!(j > 0, "elastic departure from empty class");
            j -= 1;
        }
    }

    let lambda = cfg.lambda_i + cfg.lambda_e;
    let mean_n_i = n_i.average();
    let mean_n_e = n_e.average();
    CtmcSimReport {
        mean_n_i,
        mean_n_e,
        mean_response: (mean_n_i + mean_n_e) / lambda,
        mean_response_i: if cfg.lambda_i > 0.0 {
            mean_n_i / cfg.lambda_i
        } else {
            f64::NAN
        },
        mean_response_e: if cfg.lambda_e > 0.0 {
            mean_n_e / cfg.lambda_e
        } else {
            f64::NAN
        },
        elapsed: n_i.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{ElasticFirst, InelasticFirst};

    fn cfg(k: u32, li: f64, le: f64, mi: f64, me: f64, seed: u64) -> CtmcSimConfig {
        CtmcSimConfig {
            k,
            lambda_i: li,
            lambda_e: le,
            mu_i: mi,
            mu_e: me,
            jumps: 2_000_000,
            warmup_jumps: 100_000,
            seed,
        }
    }

    #[test]
    fn mm1_mean_number_matches() {
        let r = simulate_state_level(&InelasticFirst, cfg(1, 0.5, 0.0, 1.0, 1.0, 1));
        assert!((r.mean_n_i - 1.0).abs() < 0.03, "E[N] {}", r.mean_n_i);
        assert!((r.mean_response_i - 2.0).abs() < 0.06);
    }

    #[test]
    fn mmk_mean_number_matches_erlang_c() {
        let r = simulate_state_level(&InelasticFirst, cfg(4, 3.0, 0.0, 1.0, 1.0, 2));
        let want = eirs_queueing::MMk::new(3.0, 1.0, 4).mean_number_in_system();
        assert!(
            (r.mean_n_i - want).abs() / want < 0.02,
            "{} vs {want}",
            r.mean_n_i
        );
    }

    #[test]
    fn ef_elastic_is_mm1_at_rate_k_mu() {
        let r = simulate_state_level(&ElasticFirst, cfg(4, 0.0, 2.0, 1.0, 1.0, 3));
        let want = eirs_queueing::MM1::new(2.0, 4.0).mean_number_in_system();
        assert!(
            (r.mean_n_e - want).abs() / want < 0.03,
            "{} vs {want}",
            r.mean_n_e
        );
    }

    #[test]
    fn state_level_and_job_level_simulators_agree() {
        // Same model through both engines; they share no code path beyond
        // the policy, so agreement is a strong mutual check.
        let (k, li, le, mi, me) = (4u32, 1.2, 0.9, 1.0, 0.7);
        let state = simulate_state_level(&InelasticFirst, cfg(k, li, le, mi, me, 4));
        let job = crate::des::run_markovian(&InelasticFirst, k, li, le, mi, me, 5, 30_000, 400_000);
        let rel = (state.mean_response - job.mean_response).abs() / job.mean_response;
        assert!(
            rel < 0.03,
            "state {} vs job {}",
            state.mean_response,
            job.mean_response
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let a = simulate_state_level(&InelasticFirst, cfg(2, 0.5, 0.5, 1.0, 1.0, 9));
        let b = simulate_state_level(&InelasticFirst, cfg(2, 0.5, 0.5, 1.0, 1.0, 9));
        assert_eq!(a.mean_response, b.mean_response);
    }
}
