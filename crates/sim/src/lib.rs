//! Discrete-event simulation of multiserver allocation policies for elastic
//! and inelastic jobs.
//!
//! This crate is the experimental testbed of the reproduction. It implements
//! the model of Berg et al. (SPAA 2020) Section 2 — `k` unit-speed servers,
//! two Poisson job classes, preemptible jobs, fractional server allocations —
//! without baking in any particular policy:
//!
//! * [`policy`] — the [`policy::AllocationPolicy`] trait: a stationary
//!   state-dependent allocation `(i, j) ↦ (π_I, π_E)` exactly as in the
//!   paper, with Inelastic-First, Elastic-First, class-P table policies, and
//!   fair-share baselines.
//! * [`des`] — a job-level discrete-event simulator that tracks every job's
//!   remaining work. Sizes may come from *any* distribution, which lets the
//!   tests exercise the distribution-free sample-path results (Theorem 3).
//! * [`availability`] — seeded server-fault processes (per-server
//!   crash/repair, scheduled maintenance drains, MMPP-modulated
//!   reclamation bursts) expanded into deterministic capacity-change
//!   schedules that the simulator consumes as first-class events.
//! * [`coupling`] — runs several policies against one frozen arrival trace
//!   and records total-work trajectories, the experimental twin of the
//!   paper's coupling argument.
//! * [`ctmc`] — a fast state-level simulator exploiting memorylessness for
//!   mean-value validation of the analytic solver.
//! * [`stats`] — time averages, replication confidence intervals.
//! * [`trace`] — streaming binary trace storage (bounded-memory chunked
//!   replay, bit-exact with the text format) and a standard-workload-format
//!   importer for real cluster logs.
//!
//! Reproducibility: every stochastic component takes an explicit seed, and
//! all randomness flows through [`rand::rngs::StdRng`].
//!
//! # Example: a deterministic trace through the simulator
//!
//! Freeze three jobs into an [`ArrivalTrace`], drain the system under
//! Inelastic-First on two servers, and read off the hand-computable total
//! response time (the worked example from the `des` module tests):
//!
//! ```
//! use eirs_sim::arrivals::{Arrival, ArrivalTrace};
//! use eirs_sim::des::{DesConfig, Simulation};
//! use eirs_sim::policy::InelasticFirst;
//! use eirs_sim::JobClass;
//!
//! let trace = ArrivalTrace::new(vec![
//!     Arrival { time: 0.0, class: JobClass::Inelastic, size: 2.0 },
//!     Arrival { time: 0.0, class: JobClass::Inelastic, size: 1.0 },
//!     Arrival { time: 0.0, class: JobClass::Elastic, size: 1.0 },
//! ]);
//! let mut stream = trace.stream();
//! let report = Simulation::new(DesConfig::drain(2)).run(&InelasticFirst, &mut stream);
//! // IF: inelastic done at t = 1 and 2; elastic (1 unit on 1 server from
//! // t = 1) done at t = 2. Sum of response times = 1 + 2 + 2 = 5.
//! assert!((report.total_response - 5.0).abs() < 1e-9);
//! assert_eq!(report.completed, [2, 1]);
//! ```

pub mod arrivals;
pub mod availability;
pub mod coupling;
pub mod ctmc;
pub mod des;
pub mod job;
pub mod policy;
pub mod quantile;
pub mod replicate;
pub mod stats;
pub mod trace;

pub use arrivals::{
    Arrival, ArrivalSource, ArrivalTrace, BurstyStream, MapStream, OwnedTraceStream, PoissonStream,
    TraceError, TraceStream,
};
pub use availability::{CapacityEvent, FaultSchedule, FaultSpec};
pub use coupling::{dominates_throughout, WorkTrajectory};
pub use des::{DesConfig, SimReport, Simulation, StopRule};
pub use job::{Job, JobClass};
pub use policy::{
    AllocationPolicy, ClassAllocation, ElasticFirst, ElasticThresholdPolicy, FairShare,
    InelasticFirst, ReservePolicy, SwitchingCurvePolicy, TablePolicy, TabularPolicy,
    WeightedWaterFilling,
};
pub use quantile::{P2Quantile, TailStats};
pub use replicate::{replication_seeds, run_markovian_replications, run_replications};
pub use stats::{BatchMeans, ConfidenceInterval, ReplicationStats, TimeAverage};
pub use trace::{
    import_swf, load_binary, open_trace_source, save_binary, sniff_binary, BinaryTraceReader,
    BinaryTraceWriter, SwfOptions,
};
